// Integration tests for the `polyfuse` command-line tool (runs the real
// binary; path injected by CMake).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli_modes.h"
#include "json_check.h"

namespace {

#ifndef POLYFUSE_CLI_PATH
#error "POLYFUSE_CLI_PATH must be defined by the build"
#endif

struct CmdResult {
  int exit_code;
  std::string output;  // stdout + stderr
};

// ctest -j runs many cli_test processes concurrently against the same
// TempDir, so every temp filename must be unique per process.
std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "cli_" +
         std::to_string(::getpid()) + "_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// `env` is prepended verbatim, e.g. "POLYFUSE_TRACE=/tmp/t.json".
CmdResult run_cli(const std::string& args, const std::string& env = "") {
  const std::string out_file = temp_path("out");
  const std::string cmd = (env.empty() ? "" : env + " ") +
                          std::string(POLYFUSE_CLI_PATH) + " " + args + " > " +
                          out_file + " 2>&1";
  const int rc = std::system(cmd.c_str());
  return CmdResult{WEXITSTATUS(rc), slurp(out_file)};
}

struct SplitResult {
  int exit_code;
  std::string out, err;
};

// Like run_cli but keeps stdout and stderr apart, so stderr-only channels
// (--explain) can be validated without the emitted program mixed in.
SplitResult run_cli_split(const std::string& args) {
  const std::string out_file = temp_path("stdout");
  const std::string err_file = temp_path("stderr");
  const std::string cmd = std::string(POLYFUSE_CLI_PATH) + " " + args + " > " +
                          out_file + " 2> " + err_file;
  const int rc = std::system(cmd.c_str());
  return SplitResult{WEXITSTATUS(rc), slurp(out_file), slurp(err_file)};
}

std::string write_program(const std::string& name, const std::string& text) {
  const std::string path = temp_path(name);
  std::ofstream out(path);
  out << text;
  return path;
}

const char* kPipeline = R"(
scop pipeline(N) {
  context N >= 4;
  array a[N]; array b[N]; array c[N];
  for (i = 0 .. N-1) { S1: a[i] = i * 0.5; }
  for (i = 0 .. N-1) { S2: b[i] = a[i] * 2.0; }
  for (i = 0 .. N-1) { S3: c[i] = a[i] + b[i]; }
}
)";

TEST(Cli, EmitsCWithOpenMP) {
  const std::string path = write_program("p.pf", kPipeline);
  const CmdResult r = run_cli("--model=wisefuse --emit=c " + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("void pf_kernel"), std::string::npos);
  EXPECT_NE(r.output.find("#pragma omp parallel for"), std::string::npos);
}

TEST(Cli, NoOpenmpFlag) {
  const std::string path = write_program("p.pf", kPipeline);
  const CmdResult r = run_cli("--emit=c --no-openmp " + path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output.find("#pragma"), std::string::npos);
}

TEST(Cli, ValidateReportsOk) {
  const std::string path = write_program("p.pf", kPipeline);
  const CmdResult r = run_cli("--validate --emit=ast " + path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("validation max |diff| = 0 (ok)"),
            std::string::npos);
}

TEST(Cli, ReportShowsPartitionsAndSchedules) {
  const std::string path = write_program("p.pf", kPipeline);
  const CmdResult r = run_cli("--report --emit=sched " + path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("fusion partitions=1"), std::string::npos);
  EXPECT_NE(r.output.find("T_S1"), std::string::npos);
}

TEST(Cli, EmitDepsAndSource) {
  const std::string path = write_program("p.pf", kPipeline);
  EXPECT_NE(run_cli("--emit=deps " + path).output.find("flow"),
            std::string::npos);
  EXPECT_NE(run_cli("--emit=source " + path).output.find("scop pipeline"),
            std::string::npos);
}

TEST(Cli, TilingReportsBands) {
  const std::string mm = write_program("mm.pf", R"(
    scop mm(N) { context N >= 4;
      array A[N][N]; array B[N][N]; array C[N][N];
      for (i = 0 .. N-1) { for (j = 0 .. N-1) { for (k = 0 .. N-1) {
        S1: C[i][j] = C[i][j] + A[i][k]*B[k][j]; } } } })");
  const CmdResult r = run_cli("--tile=16 --emit=c " + mm);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("tiled 1 band(s) with size 16"), std::string::npos);
  EXPECT_NE(r.output.find("pf_floord"), std::string::npos);
}

TEST(Cli, MachineReport) {
  const std::string path = write_program("p.pf", kPipeline);
  const CmdResult r = run_cli("--machine-report --params=64 --emit=ast " + path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("modeled cycles"), std::string::npos);
}

TEST(Cli, ErrorsAreClean) {
  EXPECT_NE(run_cli("/nonexistent.pf").exit_code, 0);
  EXPECT_NE(run_cli("").exit_code, 0);  // no input
  const std::string path = write_program("p.pf", kPipeline);
  EXPECT_NE(run_cli("--model=bogus " + path).exit_code, 0);
  EXPECT_NE(run_cli("--emit=bogus " + path).exit_code, 0);
  const std::string bad = write_program("bad.pf", "scop x(N) {");
  const CmdResult r = run_cli(bad);
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("parse error"), std::string::npos);
}

TEST(Cli, BaselineModelWorks) {
  const std::string path = write_program("p.pf", kPipeline);
  const CmdResult r = run_cli("--model=baseline --emit=sched " + path);
  EXPECT_EQ(r.exit_code, 0);
  // Identity: leading scalar positions 0,1,2.
  EXPECT_NE(r.output.find("T_S1 = (0, i, 0)"), std::string::npos);
  EXPECT_NE(r.output.find("T_S3 = (2, i, 0)"), std::string::npos);
}

TEST(Cli, JobsProduceByteIdenticalOutput) {
  const std::string path = write_program("p.pf", kPipeline);
  for (const char* emit : {"--emit=c", "--emit=deps", "--emit=sched"}) {
    const CmdResult serial =
        run_cli(std::string("--jobs=1 ") + emit + " " + path);
    const CmdResult parallel =
        run_cli(std::string("--jobs=4 ") + emit + " " + path);
    EXPECT_EQ(serial.exit_code, 0) << serial.output;
    EXPECT_EQ(parallel.exit_code, 0) << parallel.output;
    EXPECT_EQ(serial.output, parallel.output) << emit;
  }
  EXPECT_NE(run_cli("--jobs=0 " + path).exit_code, 0);
  EXPECT_NE(run_cli("--jobs=x " + path).exit_code, 0);
}

TEST(Cli, FastlaneProducesByteIdenticalOutput) {
  // The int64 fast lane is a pure performance path: --emit output must
  // be byte-identical with the lane disabled (flag or env) at any job
  // count. This is the acceptance bar for the lane's fallback contract.
  const std::string path = write_program("p.pf", kPipeline);
  for (const char* emit : {"--emit=c", "--emit=deps", "--emit=sched"}) {
    for (const char* jobs : {"--jobs=1", "--jobs=8"}) {
      const std::string base = std::string(jobs) + " " + emit + " " + path;
      const CmdResult lane_on = run_cli(base);
      const CmdResult lane_off = run_cli("--no-fastlane " + base);
      const CmdResult env_off = run_cli(base, "POLYFUSE_NO_FASTLANE=1");
      EXPECT_EQ(lane_on.exit_code, 0) << lane_on.output;
      EXPECT_EQ(lane_off.exit_code, 0) << lane_off.output;
      EXPECT_EQ(lane_on.output, lane_off.output) << emit << " " << jobs;
      EXPECT_EQ(lane_on.output, env_off.output) << emit << " " << jobs;
    }
  }
}

TEST(Cli, FastlaneCountersAppearInStats) {
  const std::string path = write_program("p.pf", kPipeline);
  const CmdResult r = run_cli("--stats --emit=sched " + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("fastlane_solves"), std::string::npos);
  EXPECT_NE(r.output.find("fastlane_rate"), std::string::npos);
  // With the lane off, solves and fallbacks both stay zero.
  const CmdResult off = run_cli("--stats --no-fastlane --emit=sched " + path);
  EXPECT_EQ(off.exit_code, 0) << off.output;
  EXPECT_NE(off.output.find("fastlane_solves = 0"), std::string::npos)
      << off.output;
  // An lp.fastlane injection forces fallbacks without failing the run.
  // fail-after=0 fires once per per-pair sub-budget (docs/robustness.md
  // "Determinism across --jobs"), so assert nonzero rather than a count.
  const CmdResult inj = run_cli(
      "--stats --inject=lp.fastlane:fail-after=0 --emit=sched " + path);
  EXPECT_EQ(inj.exit_code, 0) << inj.output;
  EXPECT_EQ(inj.output.find("fastlane_fallbacks = 0"), std::string::npos)
      << inj.output;
  EXPECT_EQ(inj.output.find("budget_injected_faults = 0"), std::string::npos)
      << inj.output;
}

TEST(Cli, StatsReportShowsSolverWork) {
  const std::string path = write_program("p.pf", kPipeline);
  const CmdResult r = run_cli("--stats --emit=c " + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("simplex_pivots"), std::string::npos);
  EXPECT_NE(r.output.find("solve_cache_hit_rate"), std::string::npos);
  EXPECT_NE(r.output.find("phase parse"), std::string::npos);
  EXPECT_NE(r.output.find("phase deps"), std::string::npos);

  const CmdResult j = run_cli("--stats=json --emit=sched " + path);
  EXPECT_EQ(j.exit_code, 0) << j.output;
  EXPECT_NE(j.output.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.output.find("\"phase_seconds\""), std::string::npos);

  // With the cache disabled, the hit/miss counters stay zero.
  const CmdResult n = run_cli("--stats --no-solve-cache --emit=c " + path);
  EXPECT_EQ(n.exit_code, 0) << n.output;
  EXPECT_NE(n.output.find("solve_cache_hits"), std::string::npos);
}

TEST(Cli, TraceAndExplainEmitWellFormedJson) {
  const std::string path = write_program("p.pf", kPipeline);
  const std::string trace = temp_path("trace.json");
  const SplitResult r =
      run_cli_split("--trace=" + trace + " --explain=json " + path);
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_TRUE(pf::testjson::valid(r.err)) << r.err;
  EXPECT_NE(r.err.find("\"remarks\""), std::string::npos);
  EXPECT_NE(r.err.find("\"verdict\""), std::string::npos);

  const std::string tj = slurp(trace);
  EXPECT_TRUE(pf::testjson::valid(tj));
  EXPECT_NE(tj.find("\"traceEvents\""), std::string::npos);
  // Spans from every instrumented pipeline layer land in one trace.
  for (const char* cat :
       {"\"deps\"", "\"lp\"", "\"sched\"", "\"fusion\"", "\"phase\""})
    EXPECT_NE(tj.find(cat), std::string::npos) << cat;
}

TEST(Cli, ExplainIsByteIdenticalAcrossJobs) {
  const std::string path = write_program("p.pf", kPipeline);
  const SplitResult serial = run_cli_split("--jobs=1 --explain " + path);
  const SplitResult parallel = run_cli_split("--jobs=4 --explain " + path);
  EXPECT_EQ(serial.exit_code, 0) << serial.err;
  EXPECT_EQ(parallel.exit_code, 0) << parallel.err;
  EXPECT_FALSE(serial.err.empty());
  EXPECT_EQ(serial.err, parallel.err);
  // Every fusion candidate gets a remark naming the cost-model verdict.
  EXPECT_NE(serial.err.find("fusion candidate"), std::string::npos);
  EXPECT_NE(serial.err.find("verdict=fused"), std::string::npos);
  EXPECT_NE(serial.err.find("outer_parallelism="), std::string::npos);
}

TEST(Cli, PolyfuseTraceEnvVarEnablesTracing) {
  const std::string path = write_program("p.pf", kPipeline);
  const std::string trace = temp_path("env_trace.json");
  const CmdResult r =
      run_cli("--emit=c " + path, "POLYFUSE_TRACE=" + trace);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const std::string tj = slurp(trace);
  EXPECT_TRUE(pf::testjson::valid(tj));
  EXPECT_NE(tj.find("\"traceEvents\""), std::string::npos);
}

TEST(Cli, VerifyStrictPassesUnderEveryModel) {
  const std::string path = write_program("p.pf", kPipeline);
  for (const char* model :
       {"nofuse", "smartfuse", "maxfuse", "wisefuse", "baseline"}) {
    const SplitResult r = run_cli_split(std::string("--verify=strict --model=") +
                                        model + " --emit=c " + path);
    EXPECT_EQ(r.exit_code, 0) << model << ": " << r.err;
    EXPECT_NE(r.err.find("verify: checked"), std::string::npos) << model;
    EXPECT_NE(r.err.find(": ok"), std::string::npos) << model;
    EXPECT_EQ(r.err.find("VIOLATION"), std::string::npos) << model;
  }
}

TEST(Cli, VerifyCoversTiledOutputAndSchedOnlyEmit) {
  const std::string mm = write_program("mm.pf", R"(
    scop mm(N) { context N >= 4;
      array A[N][N]; array B[N][N]; array C[N][N];
      for (i = 0 .. N-1) { for (j = 0 .. N-1) { for (k = 0 .. N-1) {
        S1: C[i][j] = C[i][j] + A[i][k]*B[k][j]; } } } })");
  const SplitResult tiled =
      run_cli_split("--verify=strict --tile=16 --emit=c " + mm);
  EXPECT_EQ(tiled.exit_code, 0) << tiled.err;
  EXPECT_NE(tiled.err.find("race check(s)"), std::string::npos) << tiled.err;
  EXPECT_NE(tiled.err.find(": ok"), std::string::npos) << tiled.err;
  // Tile + point loops both claim parallel, so races were really checked.
  EXPECT_EQ(tiled.err.find(" 0 race check(s)"), std::string::npos) << tiled.err;

  // --emit=sched verifies schedule-level checks (no AST -> no race check).
  const SplitResult sched = run_cli_split("--verify=strict --emit=sched " + mm);
  EXPECT_EQ(sched.exit_code, 0) << sched.err;
  EXPECT_NE(sched.err.find("verify: checked"), std::string::npos);

  // Pre-schedule emit modes have nothing to verify: usage error.
  const CmdResult deps = run_cli("--verify --emit=deps " + mm);
  EXPECT_EQ(deps.exit_code, 2);
  EXPECT_NE(deps.output.find("usage:"), std::string::npos);
}

TEST(Cli, VerifyCountsLandInStatsJson) {
  const std::string path = write_program("p.pf", kPipeline);
  const SplitResult r =
      run_cli_split("--verify --stats=json --emit=sched " + path);
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.err.find("\"verify_checked_deps\": 3"), std::string::npos)
      << r.err;
  EXPECT_NE(r.err.find("\"verify_violations\": 0"), std::string::npos);
  EXPECT_NE(r.err.find("\"verify_race_checks\""), std::string::npos);
  // The stats block (after the summary lines) must still be valid JSON.
  const std::size_t brace = r.err.find('{');
  ASSERT_NE(brace, std::string::npos);
  EXPECT_TRUE(pf::testjson::valid(r.err.substr(brace))) << r.err;
}

TEST(Cli, HelpDocumentsEveryOptionAndCheckMode) {
  // The option table (tools/cli_modes.h) is the single source of truth:
  // --help must render every flag, and README.md must mention every
  // program-checking mode, so the docs cannot drift from the binary.
  const CmdResult r = run_cli("--help");
  for (const pf::cli::OptionDoc& doc : pf::cli::kOptionDocs) {
    std::string flag = doc.flag;
    flag = flag.substr(0, flag.find_first_of("[="));
    EXPECT_NE(r.output.find(flag), std::string::npos)
        << flag << " missing from --help";
  }
  const std::string readme = slurp(POLYFUSE_README_PATH);
  ASSERT_FALSE(readme.empty()) << "README not found at " << POLYFUSE_README_PATH;
  for (const char* mode : pf::cli::kCheckModes) {
    EXPECT_NE(r.output.find(mode), std::string::npos)
        << mode << " missing from --help";
    EXPECT_NE(readme.find(mode), std::string::npos)
        << mode << " missing from README.md";
  }
}

TEST(Cli, LintStrictPassesOnEveryExample) {
  namespace fs = std::filesystem;
  std::size_t n = 0;
  for (const fs::directory_entry& e : fs::directory_iterator(
           POLYFUSE_EXAMPLES_DIR)) {
    if (e.path().extension() != ".pf") continue;
    ++n;
    const SplitResult r =
        run_cli_split("--lint=strict --emit=sched " + e.path().string());
    EXPECT_EQ(r.exit_code, 0) << e.path() << ":\n" << r.err;
    EXPECT_NE(r.err.find("lint: checked"), std::string::npos) << e.path();
    EXPECT_EQ(r.err.find("lint: error"), std::string::npos)
        << e.path() << ":\n" << r.err;
  }
  EXPECT_GE(n, 2u) << "examples/ should hold at least matmul and pipeline";
}

TEST(Cli, LintStrictCatchesInjectedBugs) {
  struct Case {
    const char* name;
    const char* text;
    const char* expect;  // diagnostic substring
  };
  const Case cases[] = {
      {"oob.pf",
       "scop oob(N) { context N >= 4; array a[N];\n"
       "for (i = 0 .. N) { S1: a[i] = i * 1.0; } }",
       "error out-of-bounds S1 a (dim 0)"},
      {"uninit.pf",
       "scop uninit(N) { context N >= 4; local array t[N]; array b[N];\n"
       "for (i = 1 .. N-1) { S1: t[i] = i * 1.0; }\n"
       "for (i = 0 .. N-1) { S2: b[i] = t[i]; } }",
       "error uninitialized-read S2 t"},
      {"dead.pf",
       "scop dead(N) { context N >= 4; local array t[N]; array b[N];\n"
       "for (i = 0 .. N-1) { S1: t[i] = i * 1.0; }\n"
       "for (i = 0 .. N-1) { S2: b[i] = i * 2.0; } }",
       "error dead-write S1 t"},
  };
  for (const Case& c : cases) {
    const std::string path = write_program(c.name, c.text);
    const SplitResult strict =
        run_cli_split("--lint=strict --emit=sched " + path);
    EXPECT_EQ(strict.exit_code, 1) << c.name << ":\n" << strict.err;
    EXPECT_NE(strict.err.find(c.expect), std::string::npos)
        << c.name << ":\n" << strict.err;
    // Non-strict mode reports the same finding but does not fail.
    const SplitResult lax = run_cli_split("--lint --emit=sched " + path);
    EXPECT_EQ(lax.exit_code, 0) << c.name << ":\n" << lax.err;
    EXPECT_NE(lax.err.find(c.expect), std::string::npos) << c.name;
  }
}

TEST(Cli, LintWorksWithEveryEmitMode) {
  // Unlike --verify (which needs a schedule), lint checks the *input*
  // program: it composes with every emit mode, including the
  // pre-schedule ones.
  const std::string path = write_program("p.pf", kPipeline);
  for (const char* emit :
       {"--emit=source", "--emit=deps", "--emit=sched", "--emit=c"}) {
    const SplitResult r =
        run_cli_split(std::string("--lint=strict ") + emit + " " + path);
    EXPECT_EQ(r.exit_code, 0) << emit << ":\n" << r.err;
    EXPECT_NE(r.err.find("lint: checked 6 access(es), 3 value flow(s): ok"),
              std::string::npos)
        << emit << ":\n" << r.err;
  }
}

TEST(Cli, LintRemarksByteIdenticalAcrossJobs) {
  const std::string path = write_program("p.pf", kPipeline);
  const SplitResult serial = run_cli_split("--jobs=1 --lint --explain " + path);
  const SplitResult parallel =
      run_cli_split("--jobs=4 --lint --explain " + path);
  EXPECT_EQ(serial.exit_code, 0) << serial.err;
  EXPECT_EQ(serial.err, parallel.err);
  EXPECT_NE(serial.err.find("[lint]"), std::string::npos) << serial.err;
}

TEST(Cli, LintCountsLandInStatsJson) {
  const std::string path = write_program("p.pf", kPipeline);
  const SplitResult r = run_cli_split("--lint --stats=json --emit=sched " + path);
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.err.find("\"lint_checked_accesses\": 6"), std::string::npos)
      << r.err;
  EXPECT_NE(r.err.find("\"lint_value_flows\": 3"), std::string::npos);
  EXPECT_NE(r.err.find("\"lint_errors\": 0"), std::string::npos);
  const std::size_t brace = r.err.find('{');
  ASSERT_NE(brace, std::string::npos);
  EXPECT_TRUE(pf::testjson::valid(r.err.substr(brace))) << r.err;
}

TEST(Cli, AnalyzeReportsExactCounts) {
  const std::string path = write_program("p.pf", kPipeline);
  const SplitResult r =
      run_cli_split("--analyze --params=8 --emit=sched " + path);
  EXPECT_EQ(r.exit_code, 0) << r.err;
  for (const char* line :
       {"analyze: params N=8", "analyze: statement S1: 8 instance(s)",
        "analyze: array a: footprint 8, accesses 24, reuse 16",
        "analyze: array c: footprint 8, accesses 8, reuse 0",
        "analyze: pair S1/S1: 0 shared cell(s)",
        "analyze: pair S1/S2: 8 shared cell(s)",
        "analyze: pair S2/S3: 16 shared cell(s)",
        "analyze: 3 statement(s), 3 array(s), 0 finding(s), 6 pair(s)"})
    EXPECT_NE(r.err.find(line), std::string::npos) << line << "\n" << r.err;
}

TEST(Cli, AnalyzeJsonIsValidAndByteIdenticalAcrossJobs) {
  const std::string path = write_program("p.pf", kPipeline);
  const std::string base = "--analyze=json --params=8 --emit=source " + path;
  const SplitResult serial = run_cli_split("--jobs=1 " + base);
  const SplitResult parallel = run_cli_split("--jobs=8 " + base);
  EXPECT_EQ(serial.exit_code, 0) << serial.err;
  EXPECT_EQ(parallel.exit_code, 0) << parallel.err;
  EXPECT_EQ(serial.err, parallel.err);
  EXPECT_TRUE(pf::testjson::valid(serial.err)) << serial.err;
  for (const char* want :
       {"\"analyze\"", "\"params\": {\"N\": 8}",
        "{\"name\": \"a\", \"footprint\": 8, \"accesses\": 24, \"reuse\": 16}",
        "{\"s\": \"S2\", \"t\": \"S3\", \"shared_cells\": 16}"})
    EXPECT_NE(serial.err.find(want), std::string::npos)
        << want << "\n" << serial.err;
}

TEST(Cli, AnalyzeWorksWithEveryEmitMode) {
  // Like --lint, --analyze inspects the *input* program and composes
  // with every emit mode, including the pre-schedule ones.
  const std::string path = write_program("p.pf", kPipeline);
  for (const char* emit :
       {"--emit=source", "--emit=deps", "--emit=sched", "--emit=c"}) {
    const SplitResult r =
        run_cli_split(std::string("--analyze ") + emit + " " + path);
    EXPECT_EQ(r.exit_code, 0) << emit << ":\n" << r.err;
    EXPECT_NE(
        r.err.find("analyze: 3 statement(s), 3 array(s), 0 finding(s)"),
        std::string::npos)
        << emit << ":\n" << r.err;
  }
}

TEST(Cli, AnalyzeCountsLandInDeterministicStats) {
  // The count_* counters and the steps histogram live in the
  // deterministic part of --stats=json (everything before "runtime"):
  // byte-identical at every --jobs.
  const std::string path = write_program("p.pf", kPipeline);
  const std::string base =
      "--analyze --stats=json --no-solve-cache --emit=sched " + path;
  const SplitResult serial = run_cli_split("--jobs=1 " + base);
  const SplitResult parallel = run_cli_split("--jobs=8 " + base);
  EXPECT_EQ(serial.exit_code, 0) << serial.err;
  const auto deterministic_part = [](const std::string& err) {
    const std::size_t runtime = err.find("\"runtime\"");
    EXPECT_NE(runtime, std::string::npos) << err;
    return err.substr(0, runtime);
  };
  const std::string det = deterministic_part(serial.err);
  EXPECT_EQ(det, deterministic_part(parallel.err));
  for (const char* c :
       {"\"count_solves\"", "\"count_steps\"", "\"count_cache_hits\"",
        "\"count_cache_misses\"", "\"count_unknowns\": 0",
        "\"count_steps_per_solve\""})
    EXPECT_NE(det.find(c), std::string::npos) << c << "\n" << det;
  // The wall-clock histogram is runtime-only.
  EXPECT_EQ(det.find("\"count_solve_us\""), std::string::npos);
  EXPECT_NE(serial.err.find("\"count_solve_us\""), std::string::npos);
}

TEST(Cli, AnalyzeFuelDegradesToStructuredUnknown) {
  // Out of fuel the counts must degrade to the structured "unknown" --
  // never a number -- and the run still succeeds end to end.
  const std::string path = write_program("p.pf", kPipeline);
  const SplitResult r =
      run_cli_split("--analyze=json --fuel=5 --emit=source " + path);
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_TRUE(pf::testjson::valid(r.err)) << r.err;
  EXPECT_NE(r.err.find("\"instances\": \"unknown\""), std::string::npos)
      << r.err;
  EXPECT_NE(r.err.find("\"shared_cells\": \"unknown\""), std::string::npos)
      << r.err;
}

TEST(Cli, AnalyzeFeedsExplainAndMachineReport) {
  const std::string path = write_program("p.pf", kPipeline);
  // The profitability oracle enriches wisefuse's candidate remarks with
  // exact shared-cell counts (S3 vs the fused {S1, S2}: 16 + 32 cells
  // at the default N=16).
  const SplitResult e =
      run_cli_split("--analyze --explain --emit=sched " + path);
  EXPECT_EQ(e.exit_code, 0) << e.err;
  EXPECT_NE(e.err.find("verdict=fused, shared_cells=48"), std::string::npos)
      << e.err;
  // Without --analyze no oracle is installed: remarks stay unchanged.
  const SplitResult plain = run_cli_split("--explain --emit=sched " + path);
  EXPECT_EQ(plain.err.find("shared_cells"), std::string::npos) << plain.err;
  // The machine report gains the counted compulsory-traffic floor:
  // 3 arrays x 16 cells x 8 bytes.
  const SplitResult m =
      run_cli_split("--analyze --machine-report --params=16 --emit=c " + path);
  EXPECT_EQ(m.exit_code, 0) << m.err;
  EXPECT_NE(m.err.find("counted footprint:    384 bytes"), std::string::npos)
      << m.err;
  const SplitResult m0 =
      run_cli_split("--machine-report --params=16 --emit=c " + path);
  EXPECT_EQ(m0.err.find("counted footprint"), std::string::npos) << m0.err;
}

TEST(Cli, AnalyzeCountsSurviveFastlaneFallback) {
  // Counting differential under the fast-lane fault injection and with
  // the lane disabled outright: the exact Rational lane must produce the
  // byte-identical report.
  const std::string path = write_program("p.pf", kPipeline);
  const std::string base = "--analyze=json --params=8 --emit=source " + path;
  const SplitResult lane_on = run_cli_split(base);
  const SplitResult lane_off = run_cli_split("--no-fastlane " + base);
  const SplitResult inj =
      run_cli_split("--inject=lp.fastlane:fail-after=0 " + base);
  EXPECT_EQ(lane_on.exit_code, 0) << lane_on.err;
  EXPECT_EQ(lane_off.exit_code, 0) << lane_off.err;
  EXPECT_EQ(inj.exit_code, 0) << inj.err;
  EXPECT_EQ(lane_on.err, lane_off.err);
  EXPECT_EQ(lane_on.err, inj.err);
}

// ---------------------------------------------------------------------------
// --reductions / --no-reductions (docs/reductions.md).
// ---------------------------------------------------------------------------

std::string example_path(const char* name) {
  return std::string(POLYFUSE_EXAMPLES_DIR) + "/" + name;
}

TEST(Cli, ReductionsReportByteIdenticalAcrossJobs) {
  const std::string base =
      "--reductions=json --emit=sched " + example_path("dotprod.pf");
  const SplitResult serial = run_cli_split("--jobs=1 " + base);
  const SplitResult parallel = run_cli_split("--jobs=8 " + base);
  EXPECT_EQ(serial.exit_code, 0) << serial.err;
  EXPECT_EQ(parallel.exit_code, 0) << parallel.err;
  EXPECT_EQ(serial.err, parallel.err);
  EXPECT_TRUE(pf::testjson::valid(serial.err)) << serial.err;
  for (const char* want :
       {"\"reductions\"", "\"scop\": \"dotprod\"", "\"degraded\": false",
        "\"stmt\": \"S2\"", "\"op\": \"+\"", "\"array\": \"s\"",
        "\"relaxable_dep_ids\""})
    EXPECT_NE(serial.err.find(want), std::string::npos)
        << want << "\n" << serial.err;

  // Text mode names the accumulator and the relaxable count.
  const SplitResult text = run_cli_split("--reductions --emit=sched " +
                                         example_path("dotprod.pf"));
  EXPECT_EQ(text.exit_code, 0) << text.err;
  EXPECT_NE(text.err.find("reductions: dotprod"), std::string::npos)
      << text.err;
  EXPECT_NE(text.err.find("relaxable dependences:"), std::string::npos)
      << text.err;
}

TEST(Cli, ReductionExamplesSurviveFullCliMatrix) {
  // The two reduction examples compose with every inspection mode.
  for (const char* example : {"dotprod.pf", "histogram.pf"}) {
    for (const char* mode :
         {"--analyze", "--lint", "--verify=strict --validate", "--explain",
          "--reductions"}) {
      const SplitResult r = run_cli_split(std::string(mode) + " --emit=c " +
                                          example_path(example));
      EXPECT_EQ(r.exit_code, 0) << example << " " << mode << ":\n" << r.err;
      EXPECT_NE(r.out.find("void pf_kernel"), std::string::npos)
          << example << " " << mode;
    }
  }
}

TEST(Cli, NoReductionsKeepsAccumulationSerial) {
  // The dot-product accumulation parallelizes only via the relaxed
  // self-dependence: with the pass on, the emitted C carries an OpenMP
  // reduction clause; --no-reductions falls back to the classic serial
  // loop (and still verifies).
  const SplitResult on = run_cli_split("--verify=strict --emit=c " +
                                       example_path("dotprod.pf"));
  EXPECT_EQ(on.exit_code, 0) << on.err;
  EXPECT_NE(on.out.find("reduction(+:"), std::string::npos) << on.out;

  const SplitResult off = run_cli_split(
      "--no-reductions --verify=strict --emit=c " + example_path("dotprod.pf"));
  EXPECT_EQ(off.exit_code, 0) << off.err;
  EXPECT_EQ(off.out.find("reduction("), std::string::npos) << off.out;
}

TEST(Cli, ReductionInjectionDegradesGracefully) {
  // An injected fault at analysis.reductions empties the analysis --
  // nothing relaxed, no clause -- but the pipeline still emits a correct
  // serial kernel, verifies strictly, and reports the degradation.
  const SplitResult r = run_cli_split(
      "--inject=analysis.reductions:fail-after=0 --reductions --explain "
      "--verify=strict --emit=c " +
      example_path("dotprod.pf"));
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("void pf_kernel"), std::string::npos);
  EXPECT_EQ(r.out.find("reduction("), std::string::npos) << r.out;
  EXPECT_NE(r.err.find("(degraded: budget exhausted; nothing claimed)"),
            std::string::npos)
      << r.err;
  EXPECT_NE(r.err.find("reduction analysis degraded"), std::string::npos)
      << r.err;
  EXPECT_NE(r.err.find("fault-injected"), std::string::npos) << r.err;
}

TEST(Cli, ReductionCountersLandInDeterministicStats) {
  const std::string base = "--verify --stats=json --no-solve-cache --emit=c " +
                           example_path("dotprod.pf");
  const SplitResult serial = run_cli_split("--jobs=1 " + base);
  const SplitResult parallel = run_cli_split("--jobs=8 " + base);
  EXPECT_EQ(serial.exit_code, 0) << serial.err;
  const auto deterministic_part = [](const std::string& err) {
    const std::size_t runtime = err.find("\"runtime\"");
    EXPECT_NE(runtime, std::string::npos) << err;
    return err.substr(0, runtime);
  };
  const std::string det = deterministic_part(serial.err);
  EXPECT_EQ(det, deterministic_part(parallel.err));
  for (const char* c :
       {"\"reduction_statements\": 1", "\"reduction_relaxed_deps\": 3",
        "\"reduction_priv_arrays\": 0", "\"reduction_clauses\": 1",
        "\"verify_reduction_checks\"", "\"verify_reduction_waivers\""})
    EXPECT_NE(det.find(c), std::string::npos) << c << "\n" << det;
}

TEST(Cli, MalformedProgramsProduceLocatedDiagnostics) {
  struct Case {
    const char* name;
    const char* text;
    const char* expect;
  };
  const Case cases[] = {
      {"unterminated.pf",
       "scop u(N) { context N >= 4; array a[N];\n"
       "for (i = 0 .. N-1) { S1: a[i] = 1.0 } }",
       "parse error at"},
      {"nonaffine.pf",
       "scop u(N) { context N >= 4; array a[N*N];\n"
       "for (i = 0 .. N-1) { for (j = 0 .. N-1) {\n"
       "S1: a[i*j] = 1.0; } } }",
       "parse error at"},
      {"hugeint.pf",
       "scop u(N) { context N >= 99999999999999999999; array a[N];\n"
       "for (i = 0 .. N-1) { S1: a[i] = 1.0; } }",
       "lex error at"},
  };
  for (const Case& c : cases) {
    const std::string path = write_program(c.name, c.text);
    const CmdResult r = run_cli(path);
    EXPECT_EQ(r.exit_code, 1) << c.name << ": " << r.output;
    EXPECT_NE(r.output.find(c.expect), std::string::npos)
        << c.name << ": " << r.output;
    // A user input error is not an internal invariant failure: no source
    // locations of the compiler itself, no bare stdlib exceptions.
    EXPECT_EQ(r.output.find("check failed"), std::string::npos) << r.output;
    EXPECT_EQ(r.output.find("stoll"), std::string::npos) << r.output;
  }
}

TEST(Cli, StatsJsonHistogramsDeterministicAcrossJobs) {
  // The determinism contract of docs/observability.md: everything outside
  // the "runtime" subtree of --stats=json is byte-identical at every
  // --jobs (cache off; hit/miss totals depend on interleaving). The
  // histograms of per-solve work live in the deterministic part.
  const std::string path = write_program("p.pf", kPipeline);
  const std::string base = "--stats=json --no-solve-cache --emit=sched " + path;
  const SplitResult serial = run_cli_split("--jobs=1 " + base);
  const SplitResult parallel = run_cli_split("--jobs=8 " + base);
  EXPECT_EQ(serial.exit_code, 0) << serial.err;
  EXPECT_EQ(parallel.exit_code, 0) << parallel.err;
  const auto deterministic_part = [](const std::string& err) {
    const std::size_t runtime = err.find("\"runtime\"");
    EXPECT_NE(runtime, std::string::npos) << err;
    return err.substr(0, runtime);
  };
  EXPECT_EQ(deterministic_part(serial.err), deterministic_part(parallel.err));
  // Every histogram the registry defines is present.
  for (const char* h :
       {"\"simplex_pivots_per_solve\"", "\"ilp_nodes_per_solve\"",
        "\"fme_rows_per_elimination\"", "\"fastlane_fallback_cause\"",
        "\"simplex_solve_us\"", "\"ilp_solve_us\"", "\"dep_pair_us\""})
    EXPECT_NE(serial.err.find(h), std::string::npos) << h;
  EXPECT_TRUE(pf::testjson::valid(
      serial.err.substr(0, serial.err.find_last_of('}') + 1)))
      << serial.err;
}

// The polyfuse-diag.*.json files a run directed at `dir` left behind.
std::vector<std::string> diag_files_in(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    if (e.path().filename().string().rfind("polyfuse-diag.", 0) == 0)
      out.push_back(e.path().string());
  return out;
}

std::string make_diag_dir(const std::string& name) {
  const std::string dir = temp_path(name);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(Cli, HardInjectionLeavesParseableCrashDiagnostic) {
  // --inject=SITE:abort-after=K kills the run with SIGABRT at a
  // deterministic operation; the crash handler must leave a parseable
  // flight-recorder dump with recent events and a metrics snapshot.
  const std::string path = write_program("p.pf", kPipeline);
  const std::string dir = make_diag_dir("crashdiag");
  const CmdResult r = run_cli("--inject=lp_solve:abort-after=0 " + path,
                              "POLYFUSE_DIAG_DIR=" + dir);
  EXPECT_NE(r.exit_code, 0);
  const auto diags = diag_files_in(dir);
  ASSERT_EQ(diags.size(), 1u) << r.output;
  const std::string dump = slurp(diags[0]);
  EXPECT_TRUE(pf::testjson::valid(dump)) << dump;
  EXPECT_NE(dump.find("\"cause\": \"signal:SIGABRT\""), std::string::npos);
  // The hard injection's own breadcrumb is the last recorded event.
  EXPECT_NE(dump.find("\"abort-injected\""), std::string::npos) << dump;
  // Recent spans/phases and the metrics snapshot are all present.
  EXPECT_NE(dump.find("\"events\""), std::string::npos);
  EXPECT_NE(dump.find("\"parse\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"metrics\""), std::string::npos);
  EXPECT_NE(dump.find("\"simplex_pivots\""), std::string::npos);
  EXPECT_NE(dump.find("\"invocation\""), std::string::npos);
}

TEST(Cli, DiagnoseFlagWritesReportOnNormalExit) {
  const std::string path = write_program("p.pf", kPipeline);
  const std::string diag = temp_path("diagnose.json");
  const CmdResult r = run_cli("--diagnose=" + diag + " --emit=sched " + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const std::string dump = slurp(diag);
  ASSERT_FALSE(dump.empty());
  EXPECT_TRUE(pf::testjson::valid(dump)) << dump;
  EXPECT_NE(dump.find("\"cause\": \"requested\""), std::string::npos);
  EXPECT_NE(dump.find("\"events\""), std::string::npos);
  EXPECT_NE(dump.find("\"metrics\""), std::string::npos);
}

TEST(Cli, StrictLintFailureStillPrintsStatsAndDumpsDiag) {
  // Early-exit paths owe the user their requested outputs: a strict lint
  // failure exits 1 but --stats must still report, and a crash-style
  // diagnostic records why the run was rejected.
  const std::string bad = write_program(
      "oobstats.pf",
      "scop oob(N) { context N >= 4; array a[N];\n"
      "for (i = 0 .. N) { S1: a[i] = i * 1.0; } }");
  const std::string dir = make_diag_dir("lintdiag");
  const std::string out_file = temp_path("lintout");
  const std::string cmd = "POLYFUSE_DIAG_DIR=" + dir + " " +
                          std::string(POLYFUSE_CLI_PATH) +
                          " --lint=strict --stats --emit=sched " + bad +
                          " > " + out_file + " 2>&1";
  const int rc = std::system(cmd.c_str());
  const std::string output = slurp(out_file);
  EXPECT_EQ(WEXITSTATUS(rc), 1) << output;
  EXPECT_NE(output.find("compile pipeline stats:"), std::string::npos)
      << output;
  EXPECT_NE(output.find("lint_errors = 1"), std::string::npos) << output;
  const auto diags = diag_files_in(dir);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(slurp(diags[0]).find("\"cause\": \"lint-strict-failure\""),
            std::string::npos);
}

TEST(Cli, TraceMaxEventsEnvCapsBufferAndCounts) {
  const std::string path = write_program("p.pf", kPipeline);
  const std::string trace = temp_path("capped_trace.json");
  const SplitResult uncapped =
      run_cli_split("--trace=" + trace + " --stats --emit=sched " + path);
  EXPECT_EQ(uncapped.exit_code, 0) << uncapped.err;
  EXPECT_NE(uncapped.err.find("trace_events_dropped = 0"), std::string::npos)
      << uncapped.err;

  const std::string out_file = temp_path("capout");
  const std::string cmd = "POLYFUSE_TRACE_MAX_EVENTS=1 " +
                          std::string(POLYFUSE_CLI_PATH) + " --trace=" + trace +
                          " --stats --emit=sched " + path + " > /dev/null 2> " +
                          out_file;
  const int rc = std::system(cmd.c_str());
  const std::string err = slurp(out_file);
  EXPECT_EQ(WEXITSTATUS(rc), 0) << err;
  // With a one-event cap nearly everything is dropped -- and counted.
  EXPECT_EQ(err.find("trace_events_dropped = 0"), std::string::npos) << err;
  EXPECT_NE(err.find("trace_events_dropped"), std::string::npos) << err;
  // The capped trace file is still well-formed JSON.
  EXPECT_TRUE(pf::testjson::valid(slurp(trace)));
}

TEST(Cli, MalformedNumericOptionsExitWithUsage) {
  const std::string path = write_program("p.pf", kPipeline);
  for (const char* bad :
       {"--tile=abc", "--tile=32xyz", "--tile=", "--tile=0",
        "--params=1,x", "--jobs=99999999999999999999"}) {
    const CmdResult r = run_cli(std::string(bad) + " " + path);
    EXPECT_EQ(r.exit_code, 2) << bad << ": " << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos) << bad;
  }
}

}  // namespace
