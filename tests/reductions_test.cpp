// Reduction analysis end to end: the matcher (positives and negatives),
// the relaxed scheduler + OpenMP clause emission on the acceptance
// benchmarks, a randomized differential proof that relaxed schedules are
// interpreter-identical on integer data, the verifier's rejection of
// bogus relaxations, and a JIT round-trip of an emitted reduction(...)
// kernel (TSan-instrumented when the test binary itself runs under TSan).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/reductions.h"
#include "codegen/cemit.h"
#include "codegen/codegen.h"
#include "ddg/dependences.h"
#include "exec/interp.h"
#include "exec/jit.h"
#include "exec/storage.h"
#include "frontend/parser.h"
#include "fusion/models.h"
#include "sched/analysis.h"
#include "sched/pluto.h"
#include "suite/suite.h"
#include "verify/verify.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PF_TEST_TSAN 1
#endif
#endif
#if !defined(PF_TEST_TSAN) && defined(__SANITIZE_THREAD__)
#define PF_TEST_TSAN 1
#endif

namespace pf {
namespace {

using ir::ReductionOp;

ir::Scop parse(const std::string& src) { return frontend::parse_scop(src); }

// Wrap a single-statement body in a minimal scop and return whether the
// analysis matcher recognizes it (and as which operator).
bool matches(const std::string& scop_src, std::size_t stmt, ReductionOp* op) {
  const ir::Scop scop = parse(scop_src);
  return analysis::match_reduction(scop.statement(stmt), op);
}

// ---------------------------------------------------------------------------
// Matcher: all four operators are recognized...
// ---------------------------------------------------------------------------

TEST(ReductionMatcher, RecognizesSum) {
  ReductionOp op;
  ASSERT_TRUE(matches(R"(scop t(N) { context N >= 4;
    array a[N]; array s[1];
    for (i = 0 .. N-1) { S1: s[0] = s[0] + a[i]; } })",
                      0, &op));
  EXPECT_EQ(op, ReductionOp::kSum);
}

TEST(ReductionMatcher, RecognizesProduct) {
  ReductionOp op;
  ASSERT_TRUE(matches(R"(scop t(N) { context N >= 4;
    array a[N]; array s[1];
    for (i = 0 .. N-1) { S1: s[0] = s[0] * a[i]; } })",
                      0, &op));
  EXPECT_EQ(op, ReductionOp::kProd);
}

TEST(ReductionMatcher, RecognizesMin) {
  ReductionOp op;
  ASSERT_TRUE(matches(R"(scop t(N) { context N >= 4;
    array a[N]; array s[1];
    for (i = 0 .. N-1) { S1: s[0] = fmin(s[0], a[i]); } })",
                      0, &op));
  EXPECT_EQ(op, ReductionOp::kMin);
}

TEST(ReductionMatcher, RecognizesMax) {
  ReductionOp op;
  ASSERT_TRUE(matches(R"(scop t(N) { context N >= 4;
    array a[N]; array s[1];
    for (i = 0 .. N-1) { S1: s[0] = fmax(s[0], a[i]); } })",
                      0, &op));
  EXPECT_EQ(op, ReductionOp::kMax);
}

TEST(ReductionMatcher, RecognizesLongChainAndVectorAccumulator) {
  ReductionOp op;
  // Chain of three operands into a per-row accumulator cell.
  ASSERT_TRUE(matches(R"(scop t(N) { context N >= 4;
    array A[N][N]; array B[N][N]; array r[N];
    for (i = 0 .. N-1) { for (j = 0 .. N-1) {
      S1: r[i] = r[i] + A[i][j] + B[i][j];
    } } })",
                      0, &op));
  EXPECT_EQ(op, ReductionOp::kSum);
}

// ---------------------------------------------------------------------------
// ... and none of the near-misses.
// ---------------------------------------------------------------------------

TEST(ReductionMatcher, RejectsScan) {
  // The extra a[i-1] operand touches the accumulator array: a prefix
  // scan, not a reduction -- reordering changes the result.
  ReductionOp op;
  EXPECT_FALSE(matches(R"(scop t(N) { context N >= 4;
    array a[N];
    for (i = 1 .. N-1) { S1: a[i] = a[i] + a[i-1]; } })",
                       0, &op));
}

TEST(ReductionMatcher, RejectsTwoSelfReads) {
  ReductionOp op;
  EXPECT_FALSE(matches(R"(scop t(N) { context N >= 4;
    array s[1]; array a[N];
    for (i = 0 .. N-1) { S1: s[0] = s[0] + s[0]; } })",
                       0, &op));
}

TEST(ReductionMatcher, RejectsNonCommutativeUpdate) {
  // Subtraction is not a chain of any recognized operator, so the body
  // flattens to a single leaf and fails the >= 2 operand requirement.
  ReductionOp op;
  EXPECT_FALSE(matches(R"(scop t(N) { context N >= 4;
    array s[1]; array a[N];
    for (i = 0 .. N-1) { S1: s[0] = s[0] - a[i]; } })",
                       0, &op));
}

TEST(ReductionMatcher, RejectsPlainCopyAndInit) {
  ReductionOp op;
  const ir::Scop scop = parse(R"(scop t(N) { context N >= 4;
    array a[N]; array b[N];
    for (i = 0 .. N-1) { S1: b[i] = a[i]; }
    S2: a[0] = 0.0; })");
  EXPECT_FALSE(analysis::match_reduction(scop.statement(0), &op));
  EXPECT_FALSE(analysis::match_reduction(scop.statement(1), &op));
}

TEST(ReductionMatcher, RejectsMixedOperatorChain) {
  // + over * is a sum whose non-self leaf is a product -- fine. But the
  // self-read buried inside the product means the *sum* chain has no
  // self-read leaf.
  ReductionOp op;
  EXPECT_FALSE(matches(R"(scop t(N) { context N >= 4;
    array s[1]; array a[N];
    for (i = 0 .. N-1) { S1: s[0] = s[0] * 2.0 + a[i]; } })",
                       0, &op));
}

// ---------------------------------------------------------------------------
// Analysis: non-commutative updates are never relaxed.
// ---------------------------------------------------------------------------

TEST(ReductionAnalysis, NonCommutativeUpdateNotRelaxed) {
  const ir::Scop scop = parse(R"(scop t(N) { context N >= 4;
    array s[1]; array a[N];
    for (i = 0 .. N-1) { S1: s[0] = s[0] - a[i]; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const analysis::ReductionInfo info = analysis::analyze_reductions(scop, dg);
  EXPECT_TRUE(info.statements.empty());
  EXPECT_TRUE(info.relaxable.empty());
  EXPECT_FALSE(info.degraded);
}

TEST(ReductionAnalysis, DotprodRelaxableTargetsTheSelfDependence) {
  const ir::Scop scop = parse(R"(scop dot(N) { context N >= 4;
    array x[N]; array y[N]; array s[1];
    S1: s[0] = 0.0;
    for (i = 0 .. N-1) { S2: s[0] = s[0] + x[i] * y[i]; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const analysis::ReductionInfo info = analysis::analyze_reductions(scop, dg);
  ASSERT_EQ(info.statements.size(), 1u);
  EXPECT_EQ(info.statements[0].stmt, 1u);
  EXPECT_EQ(info.statements[0].op, ReductionOp::kSum);
  ASSERT_FALSE(info.relaxable.empty());
  for (const ir::ReductionDep& rd : info.relaxable) {
    // dep_id is positional into dg.deps(); every relaxable dep is a real
    // self-dependence of the accumulation statement on its accumulator.
    ASSERT_LT(rd.dep_id, dg.deps().size());
    const ddg::Dependence& d = dg.deps()[rd.dep_id];
    EXPECT_TRUE(d.is_real());
    EXPECT_EQ(d.src, rd.stmt);
    EXPECT_EQ(d.dst, rd.stmt);
    EXPECT_EQ(rd.stmt, 1u);
    EXPECT_EQ(rd.array_id, scop.statement(1).write().array_id);
  }
}

TEST(ReductionAnalysis, ReportsAreDeterministic) {
  const ir::Scop scop = suite::parse(suite::benchmark("gemver"));
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const analysis::ReductionInfo a = analysis::analyze_reductions(scop, dg);
  const analysis::ReductionInfo b = analysis::analyze_reductions(scop, dg);
  EXPECT_EQ(analysis::render_reductions_text(scop, dg, a),
            analysis::render_reductions_text(scop, dg, b));
  EXPECT_EQ(analysis::render_reductions_json(scop, dg, a),
            analysis::render_reductions_json(scop, dg, b));
}

// ---------------------------------------------------------------------------
// Scheduler + emitter acceptance: gemver, swim and advect each gain at
// least one parallel reduction loop, and the schedule verifies strictly.
// ---------------------------------------------------------------------------

sched::Schedule relaxed_schedule(const ir::Scop& scop,
                                 const ddg::DependenceGraph& dg) {
  const analysis::ReductionInfo info = analysis::analyze_reductions(scop, dg);
  auto policy = fusion::make_policy(fusion::FusionModel::kWisefuse);
  sched::SchedulerOptions opts;
  opts.relaxed_deps = info.relaxable;
  return sched::compute_schedule(scop, dg, *policy, opts);
}

int count_reduction_loops(const codegen::AstNode& n) {
  int c = 0;
  switch (n.kind) {
    case codegen::AstNode::Kind::kLoop:
      c += n.reductions.empty() ? 0 : 1;
      c += count_reduction_loops(*n.body);
      break;
    case codegen::AstNode::Kind::kBlock:
      for (const codegen::AstPtr& ch : n.children)
        c += count_reduction_loops(*ch);
      break;
    case codegen::AstNode::Kind::kStmt:
      break;
  }
  return c;
}

class ReductionAcceptance : public ::testing::TestWithParam<const char*> {};

TEST_P(ReductionAcceptance, GainsClauseAndVerifiesStrict) {
  const suite::Benchmark& b = suite::benchmark(GetParam());
  const ir::Scop scop = suite::parse(b);
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const sched::Schedule sch = relaxed_schedule(scop, dg);
  ASSERT_FALSE(sch.relaxed_deps.empty()) << b.name;

  const codegen::AstPtr ast = codegen::generate_ast(scop, sch);
  EXPECT_GE(count_reduction_loops(*ast), 1) << b.name;
  const std::string c = codegen::emit_c(*ast, scop);
  EXPECT_NE(c.find("reduction("), std::string::npos) << b.name;

  const verify::Report rep = verify::run_all(scop, dg, sch, ast.get());
  EXPECT_TRUE(rep.ok()) << b.name << ": " << rep.summary();
  EXPECT_GT(rep.reduction_waivers, 0u) << b.name;
}

INSTANTIATE_TEST_SUITE_P(AcceptanceBenchmarks, ReductionAcceptance,
                         ::testing::Values("gemver", "swim", "advect"));

// ---------------------------------------------------------------------------
// Randomized differential: on integer-valued data a relaxed schedule is
// bit-identical to the untransformed program -- reassociating an integer
// sum/min/max is exact in doubles at these magnitudes.
// ---------------------------------------------------------------------------

// Pure function of (seed, array, index): both stores see identical data
// without sharing a generator, and every seed is a fresh data set.
double integer_cell(std::uint64_t seed, std::size_t array,
                    const IntVector& idx) {
  std::uint64_t h = (seed + 1) * 0x9E3779B97F4A7C15ull;
  h ^= (array + 1) * 0x100000001B3ull;
  for (const i64 v : idx) h = (h ^ static_cast<std::uint64_t>(v + 7)) *
                              0x100000001B3ull;
  h ^= h >> 33;
  return static_cast<double>(static_cast<i64>(h % 17) - 8);
}

void fill_integer(exec::ArrayStore& store, const ir::Scop& scop,
                  std::uint64_t seed) {
  for (std::size_t a = 0; a < scop.arrays().size(); ++a)
    store.fill(a, [&](const IntVector& idx) {
      return integer_cell(seed, a, idx);
    });
}

class ReductionDifferential : public ::testing::TestWithParam<const char*> {};

TEST_P(ReductionDifferential, RelaxedMatchesOriginalOnIntegerData) {
  const suite::Benchmark& b = suite::benchmark(GetParam());
  const ir::Scop scop = suite::parse(b);
  const auto dg = ddg::DependenceGraph::analyze(scop);

  sched::Schedule ident = sched::identity_schedule(scop);
  sched::annotate_dependences(ident, dg);
  const codegen::AstPtr ref_ast = codegen::generate_ast(scop, ident);

  const sched::Schedule sch = relaxed_schedule(scop, dg);
  ASSERT_FALSE(sch.relaxed_deps.empty()) << b.name;
  const codegen::AstPtr got_ast = codegen::generate_ast(scop, sch);

  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    exec::ArrayStore ref(scop, b.test_params), got(scop, b.test_params);
    fill_integer(ref, scop, seed);
    fill_integer(got, scop, seed);
    ASSERT_EQ(exec::ArrayStore::max_abs_diff(ref, got), 0.0);
    exec::interpret(*ref_ast, ref);
    exec::interpret(*got_ast, got);
    EXPECT_EQ(exec::ArrayStore::max_abs_diff(ref, got), 0.0)
        << b.name << " diverges under relaxation at seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AcceptanceBenchmarks, ReductionDifferential,
                         ::testing::Values("gemver", "swim", "advect"));

// ---------------------------------------------------------------------------
// The verifier rejects bogus relaxations with its own matcher.
// ---------------------------------------------------------------------------

TEST(ReductionVerify, InjectedBogusRelaxationIsCaught) {
  // Pipeline has only cross-statement flow dependences: none is a
  // legitimate reduction. Claim the first one is and watch all three
  // verifier layers refuse.
  const ir::Scop scop = parse(R"(scop pipe(N) { context N >= 4;
    array a[N]; array b[N];
    for (i = 0 .. N-1) { S1: a[i] = i * 0.5; }
    for (i = 0 .. N-1) { S2: b[i] = a[i] * 2.0; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  ASSERT_FALSE(dg.deps().empty());

  sched::Schedule sch = sched::identity_schedule(scop);
  sched::annotate_dependences(sch, dg);
  ir::ReductionDep bogus;
  bogus.dep_id = 0;  // positional: first real dependence
  bogus.stmt = dg.deps()[0].src;
  bogus.array_id = scop.statement(dg.deps()[0].src).write().array_id;
  bogus.op = ReductionOp::kSum;
  sch.relaxed_deps.push_back(bogus);

  const verify::Report rep = verify::check_reductions(dg, sch);
  ASSERT_EQ(rep.findings.size(), 1u);
  EXPECT_EQ(rep.findings[0].kind, verify::CheckKind::kReduction);

  // And the unconfirmed claim earns no legality waiver.
  const verify::Report legal = verify::check_legality(dg, sch);
  EXPECT_EQ(legal.reduction_waivers, 0u);
}

TEST(ReductionVerify, GenuineRelaxationIsWaivedNotViolated) {
  const ir::Scop scop = parse(R"(scop dot(N) { context N >= 4;
    array x[N]; array s[1];
    S1: s[0] = 0.0;
    for (i = 0 .. N-1) { S2: s[0] = s[0] + x[i]; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const sched::Schedule sch = relaxed_schedule(scop, dg);
  ASSERT_FALSE(sch.relaxed_deps.empty());
  const codegen::AstPtr ast = codegen::generate_ast(scop, sch);
  const verify::Report rep = verify::run_all(scop, dg, sch, ast.get());
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_GT(rep.reduction_waivers, 0u);
}

// ---------------------------------------------------------------------------
// JIT round-trip: the emitted OpenMP reduction kernel computes the same
// integer result as the interpreter. When this test binary is built with
// -fsanitize=thread the kernel is compiled with TSan too, so the ci.sh
// TSan stage races the actual emitted pragma across real threads.
// ---------------------------------------------------------------------------

TEST(ReductionJit, OpenMPReductionKernelMatchesInterpreter) {
  exec::JitOptions jopts;
#if defined(PF_TEST_TSAN)
  jopts.opt_flags = "-O1 -fsanitize=thread";
#endif
  if (!exec::jit_available(jopts)) GTEST_SKIP() << "no usable C compiler";

  const ir::Scop scop = parse(R"(scop dot(N) { context N >= 4;
    array x[N]; array y[N]; array s[1];
    S1: s[0] = 0.0;
    for (i = 0 .. N-1) { S2: s[0] = s[0] + x[i] * y[i]; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const sched::Schedule sch = relaxed_schedule(scop, dg);
  ASSERT_FALSE(sch.relaxed_deps.empty());
  const codegen::AstPtr ast = codegen::generate_ast(scop, sch);
  const std::string c = codegen::emit_c(*ast, scop);
  ASSERT_NE(c.find("reduction("), std::string::npos) << c;

  std::string error;
  auto kernel = exec::JitKernel::compile(c, "pf_kernel", jopts, &error);
  ASSERT_TRUE(kernel.has_value()) << error << "\n" << c;

  const IntVector params = {64};
  exec::ArrayStore ref(scop, params), got(scop, params);
  fill_integer(ref, scop, 9);
  fill_integer(got, scop, 9);
  exec::interpret(*ast, ref);
  kernel->run(got);
  EXPECT_EQ(exec::ArrayStore::max_abs_diff(ref, got), 0.0);
}

}  // namespace
}  // namespace pf
