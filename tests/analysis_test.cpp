// Tests for src/analysis: value-based dataflow (compute_dataflow) and
// the lints (run_lint). Negative tests inject one bug each -- an
// out-of-bounds write, a read of a never-written local-array cell, a
// fully dead local-array write -- and assert the exact structured
// finding (kind, statement, array, access, dim). A randomized test
// asserts every generator-produced program lints clean, mirroring the
// CLI acceptance bar.
#include <gtest/gtest.h>

#include <set>

#include "analysis/dataflow.h"
#include "analysis/lint.h"
#include "analysis/locality.h"
#include "codegen/codegen.h"
#include "ddg/dependences.h"
#include "exec/interp.h"
#include "frontend/parser.h"
#include "sched/analysis.h"
#include "suite/suite.h"
#include "suite/synthetic.h"
#include "support/budget.h"

namespace pf::analysis {
namespace {

struct Linted {
  ir::Scop scop;
  ddg::DependenceGraph dg;
  LintReport report;

  explicit Linted(const std::string& src)
      : scop(frontend::parse_scop(src)),
        dg(ddg::DependenceGraph::analyze(scop)),
        report(run_lint(scop, dg)) {}
};

std::size_t array_id(const ir::Scop& scop, const std::string& name) {
  for (std::size_t i = 0; i < scop.arrays().size(); ++i)
    if (scop.arrays()[i].name == name) return i;
  ADD_FAILURE() << "no array named " << name;
  return SIZE_MAX;
}

// ---------------------------------------------------------------------------
// Value-based dataflow.
// ---------------------------------------------------------------------------

TEST(Dataflow, PipelineFlows) {
  Linted l(R"(scop pipeline(N) {
    context N >= 4;
    array a[N]; array b[N]; array c[N];
    for (i = 0 .. N-1) { S1: a[i] = i * 0.5; }
    for (i = 0 .. N-1) { S2: b[i] = a[i] * 2.0; }
    for (i = 0 .. N-1) { S3: c[i] = a[i] + b[i]; }
  })");
  const Dataflow df = compute_dataflow(l.scop, l.dg);

  // Exactly the three producer/consumer value flows, no overwrites to
  // subtract: S1->S2 (a), S1->S3 (a), S2->S3 (b).
  ASSERT_EQ(df.flows.size(), 3u);
  for (const ValueFlow& f : df.flows) {
    EXPECT_FALSE(f.poly.is_empty());
    EXPECT_EQ(f.poly.dims(), f.src_dim + f.dst_dim + f.num_params);
  }
  EXPECT_EQ(df.flows[0].src, 0u);
  EXPECT_EQ(df.flows[0].dst, 1u);
  EXPECT_EQ(df.flows[1].src, 0u);
  EXPECT_EQ(df.flows[1].dst, 2u);
  EXPECT_EQ(df.flows[2].src, 1u);
  EXPECT_EQ(df.flows[2].dst, 2u);

  // Every read is covered by a write, so no read observes initial
  // array contents ...
  for (const ReadCover& rc : df.covers)
    EXPECT_TRUE(rc.uncovered.is_empty())
        << "S" << rc.stmt + 1 << " access " << rc.access;
  // ... and every written value is consumed (c is live-out: "unused"
  // under value flow, but never overwritten).
  EXPECT_TRUE(df.writes[0].unused.is_empty());
  EXPECT_TRUE(df.writes[1].unused.is_empty());
  EXPECT_FALSE(df.writes[2].unused.is_empty());
  EXPECT_TRUE(df.writes[2].killed.is_empty());
}

TEST(Dataflow, LastWriterSubtraction) {
  // S2 overwrites every cell S1 wrote, so only S2 feeds S3: the
  // memory-based flow S1->S3 must vanish under value-based dataflow.
  Linted l(R"(scop overwrite(N) {
    context N >= 4;
    array a[N]; array b[N];
    for (i = 0 .. N-1) { S1: a[i] = i * 1.0; }
    for (i = 0 .. N-1) { S2: a[i] = i * 2.0; }
    for (i = 0 .. N-1) { S3: b[i] = a[i]; }
  })");
  const Dataflow df = compute_dataflow(l.scop, l.dg);
  for (const ValueFlow& f : df.flows)
    EXPECT_FALSE(f.src == 0 && f.dst == 2)
        << "killed memory flow S1->S3 survived subtraction";
  bool s2_feeds_s3 = false;
  for (const ValueFlow& f : df.flows)
    if (f.src == 1 && f.dst == 2) s2_feeds_s3 = true;
  EXPECT_TRUE(s2_feeds_s3);
  // S1's writes are all overwritten and never consumed.
  EXPECT_FALSE(df.writes[0].unused.is_empty());
  EXPECT_FALSE(df.writes[0].killed.is_empty());
}

TEST(Dataflow, PartialOverwriteSplitsFlow) {
  // S2 overwrites only the first half; S1 still feeds S3 on the second
  // half. The surviving flow is a proper subset -- SetUnion territory.
  Linted l(R"(scop half(N) {
    context N >= 8;
    array a[N]; array b[N];
    for (i = 0 .. N-1) { S1: a[i] = i * 1.0; }
    for (i = 0 .. N-5) { S2: a[i] = i * 2.0; }
    for (i = 0 .. N-1) { S3: b[i] = a[i]; }
  })");
  const Dataflow df = compute_dataflow(l.scop, l.dg);
  bool s1_feeds_s3 = false;
  for (const ValueFlow& f : df.flows)
    if (f.src == 0 && f.dst == 2) {
      s1_feeds_s3 = true;
      // The flow lives only where S2 did not overwrite: src iterator
      // (dim 0) must exceed N-5 everywhere in the flow.
      for (const poly::IntegerSet& d : f.poly.disjuncts()) {
        const auto pt = d.sample_point();
        ASSERT_TRUE(pt.has_value());
        // Space is [s, t, N]: s = (*pt)[0], N = (*pt)[2].
        EXPECT_GT((*pt)[0], (*pt)[2] - 5);
      }
    }
  EXPECT_TRUE(s1_feeds_s3);
}

// ---------------------------------------------------------------------------
// Negative lints: injected bugs, exact findings.
// ---------------------------------------------------------------------------

TEST(Lint, OutOfBoundsWrite) {
  // Loop runs to N inclusive; a has extent N (valid indices 0..N-1).
  Linted l(R"(scop oob(N) {
    context N >= 4;
    array a[N];
    for (i = 0 .. N) { S1: a[i] = i * 1.0; }
  })");
  ASSERT_EQ(l.report.num_errors(), 1u);
  const LintFinding* f = nullptr;
  for (const LintFinding& x : l.report.findings)
    if (x.severity == Severity::kError) f = &x;
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->kind, LintKind::kOutOfBounds);
  EXPECT_EQ(f->stmt, 0u);
  EXPECT_EQ(f->array, array_id(l.scop, "a"));
  EXPECT_EQ(f->access, 0u);  // the write
  EXPECT_EQ(f->dim, 0u);
  EXPECT_FALSE(l.report.ok());
}

TEST(Lint, OutOfBoundsReadBelowZero) {
  Linted l(R"(scop under(N) {
    context N >= 4;
    array a[N]; array b[N];
    for (i = 0 .. N-1) { S1: b[i] = a[i-1]; }
  })");
  ASSERT_EQ(l.report.num_errors(), 1u);
  const LintFinding& f = l.report.findings[0];
  EXPECT_EQ(f.kind, LintKind::kOutOfBounds);
  EXPECT_EQ(f.stmt, 0u);
  EXPECT_EQ(f.array, array_id(l.scop, "a"));
  EXPECT_EQ(f.access, 1u);  // first read
  EXPECT_EQ(f.dim, 0u);
}

TEST(Lint, UninitializedLocalRead) {
  // t[0] is read but never written (writes start at i = 1).
  Linted l(R"(scop uninit(N) {
    context N >= 4;
    local array t[N]; array b[N];
    for (i = 1 .. N-1) { S1: t[i] = i * 1.0; }
    for (i = 0 .. N-1) { S2: b[i] = t[i]; }
  })");
  const LintFinding* f = nullptr;
  for (const LintFinding& x : l.report.findings)
    if (x.kind == LintKind::kUninitRead) f = &x;
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->stmt, 1u);  // S2, the reader
  EXPECT_EQ(f->array, array_id(l.scop, "t"));
  EXPECT_EQ(f->access, 1u);
  EXPECT_FALSE(l.report.ok());
}

TEST(Lint, UncoveredReadOfGlobalArrayIsLiveIn) {
  // Identical shape, but t is a regular array: the uncovered read is
  // the scop's live-in set, not a bug.
  Linted l(R"(scop livein(N) {
    context N >= 4;
    array t[N]; array b[N];
    for (i = 1 .. N-1) { S1: t[i] = i * 1.0; }
    for (i = 0 .. N-1) { S2: b[i] = t[i]; }
  })");
  for (const LintFinding& x : l.report.findings)
    EXPECT_NE(x.kind, LintKind::kUninitRead);
  EXPECT_TRUE(l.report.ok());
}

TEST(Lint, DeadLocalWrite) {
  // Every write to t is unconsumed: local array, so all of them are
  // dead (no live-out role to excuse them).
  Linted l(R"(scop dead(N) {
    context N >= 4;
    local array t[N]; array b[N];
    for (i = 0 .. N-1) { S1: t[i] = i * 1.0; }
    for (i = 0 .. N-1) { S2: b[i] = i * 2.0; }
  })");
  const LintFinding* f = nullptr;
  for (const LintFinding& x : l.report.findings)
    if (x.kind == LintKind::kDeadWrite) f = &x;
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->stmt, 0u);
  EXPECT_EQ(f->array, array_id(l.scop, "t"));
  EXPECT_FALSE(l.report.ok());
}

TEST(Lint, OverwrittenGlobalWriteIsWarning) {
  // S1's writes are overwritten by S2 and never read: a classical dead
  // store on a regular array -- warning severity, lint still passes.
  Linted l(R"(scop shadow(N) {
    context N >= 4;
    array a[N];
    for (i = 0 .. N-1) { S1: a[i] = i * 1.0; }
    for (i = 0 .. N-1) { S2: a[i] = i * 2.0; }
  })");
  const LintFinding* f = nullptr;
  for (const LintFinding& x : l.report.findings)
    if (x.kind == LintKind::kDeadWrite) f = &x;
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_EQ(f->stmt, 0u);
  EXPECT_TRUE(l.report.ok());
}

TEST(Lint, FinalGlobalWriteIsNotDead) {
  // An un-overwritten, unread write to a regular array is the scop's
  // output -- no finding at all.
  Linted l(R"(scop out(N) {
    context N >= 4;
    array a[N];
    for (i = 0 .. N-1) { S1: a[i] = i * 1.0; }
  })");
  for (const LintFinding& x : l.report.findings)
    EXPECT_NE(x.kind, LintKind::kDeadWrite);
  EXPECT_TRUE(l.report.ok());
}

// ---------------------------------------------------------------------------
// Performance diagnostics (never affect ok()).
// ---------------------------------------------------------------------------

TEST(Lint, TransposedAccessPerfNote) {
  Linted l(R"(scop matmul(N) {
    context N >= 4;
    array A[N][N]; array B[N][N]; array C[N][N];
    for (i = 0 .. N-1) { for (j = 0 .. N-1) { for (k = 0 .. N-1) {
      S1: C[i][j] = C[i][j] + A[i][k] * B[k][j];
    } } }
  })");
  const LintFinding* f = nullptr;
  for (const LintFinding& x : l.report.findings)
    if (x.kind == LintKind::kNonContiguous) f = &x;
  ASSERT_NE(f, nullptr) << l.report.to_string(&l.scop);
  EXPECT_EQ(f->severity, Severity::kPerf);
  EXPECT_EQ(f->array, array_id(l.scop, "B"));  // B[k][j]: k innermost, dim 0
  EXPECT_EQ(f->dim, 0u);
  EXPECT_TRUE(l.report.ok());  // perf notes never fail a lint
}

TEST(Lint, FusionDistancePerfNote) {
  // Consumer reads a[i-2]: constant nonzero producer distance.
  Linted l(R"(scop shifted(N) {
    context N >= 4;
    array a[N]; array b[N];
    for (i = 0 .. N-1) { S1: a[i] = i * 1.0; }
    for (i = 2 .. N-1) { S2: b[i] = a[i-2]; }
  })");
  const LintFinding* f = nullptr;
  for (const LintFinding& x : l.report.findings)
    if (x.kind == LintKind::kFusionDistance) f = &x;
  ASSERT_NE(f, nullptr) << l.report.to_string(&l.scop);
  EXPECT_EQ(f->severity, Severity::kPerf);
  EXPECT_EQ(f->stmt, 0u);
  EXPECT_EQ(f->stmt2, 1u);
  EXPECT_TRUE(l.report.ok());
}

// ---------------------------------------------------------------------------
// Clean programs stay clean.
// ---------------------------------------------------------------------------

TEST(Lint, ReportCountsAndSummary) {
  Linted l(R"(scop clean(N) {
    context N >= 4;
    array a[N]; array b[N];
    for (i = 0 .. N-1) { S1: a[i] = i * 0.5; }
    for (i = 0 .. N-1) { S2: b[i] = a[i] * 2.0; }
  })");
  EXPECT_TRUE(l.report.ok());
  EXPECT_EQ(l.report.num_errors(), 0u);
  EXPECT_EQ(l.report.checked_accesses, 3u);
  EXPECT_EQ(l.report.value_flows, 1u);
  EXPECT_NE(l.report.summary().find("ok"), std::string::npos);
}

TEST(Lint, SyntheticProgramsLintClean) {
  // The generator only emits in-bounds accesses of regular (live-in /
  // live-out) arrays: no error-severity finding may ever fire. This is
  // the test-suite twin of the CLI bar "--lint=strict exits 0 on
  // generator output".
  for (unsigned seed = 0; seed < 12; ++seed) {
    Linted l(suite::synthetic_program(seed));
    EXPECT_TRUE(l.report.ok())
        << "seed " << seed << ":\n"
        << l.report.to_string(&l.scop) << "\n"
        << suite::synthetic_program(seed);
  }
}

// ---------------------------------------------------------------------------
// Locality analysis (--analyze): exact counts vs hand computation and vs
// a brute-force ground truth from actually running the program -- the
// interpreter's per-statement execution counts and the set of distinct
// cells its trace hook touches per array.
// ---------------------------------------------------------------------------

struct GroundTruth {
  std::vector<std::size_t> instances;  // per statement
  std::vector<i64> footprint;          // per array: distinct cells touched
  std::vector<i64> accesses;           // per array: dynamic accesses
};

GroundTruth interpret_ground_truth(const ir::Scop& scop,
                                   const ddg::DependenceGraph& dg,
                                   const IntVector& params) {
  sched::Schedule ident = sched::identity_schedule(scop);
  sched::annotate_dependences(ident, dg);
  const codegen::AstPtr ast = codegen::generate_ast(scop, ident);
  exec::ArrayStore store(scop, params);
  std::vector<std::set<i64>> cells(scop.arrays().size());
  GroundTruth gt;
  gt.footprint.assign(scop.arrays().size(), 0);
  gt.accesses.assign(scop.arrays().size(), 0);
  const exec::TraceHook hook = [&](std::size_t array, i64 idx, bool) {
    cells[array].insert(idx);
    ++gt.accesses[array];
  };
  const exec::InterpStats stats = exec::interpret(*ast, store, hook);
  gt.instances = stats.per_statement;
  for (std::size_t a = 0; a < cells.size(); ++a)
    gt.footprint[a] = static_cast<i64>(cells[a].size());
  return gt;
}

void expect_matches_ground_truth(const ir::Scop& scop,
                                 const ddg::DependenceGraph& dg,
                                 const IntVector& params,
                                 const std::string& label) {
  const LocalityReport rep = analyze_locality(scop, dg, params);
  const GroundTruth gt = interpret_ground_truth(scop, dg, params);
  ASSERT_TRUE(rep.context_satisfied) << label;
  ASSERT_EQ(rep.statements.size(), gt.instances.size()) << label;
  for (const StatementVolume& sv : rep.statements) {
    ASSERT_TRUE(sv.instances.is_exact())
        << label << " S" << sv.stmt + 1 << " -> " << sv.instances.to_string();
    EXPECT_EQ(sv.instances.value, static_cast<i64>(gt.instances[sv.stmt]))
        << label << " S" << sv.stmt + 1;
  }
  ASSERT_EQ(rep.arrays.size(), scop.arrays().size()) << label;
  for (const ArrayLocality& al : rep.arrays) {
    const std::string& name = scop.arrays()[al.array].name;
    ASSERT_TRUE(al.footprint.is_exact())
        << label << " " << name << " -> " << al.footprint.to_string();
    ASSERT_TRUE(al.accesses.is_exact()) << label << " " << name;
    ASSERT_TRUE(al.reuse.is_exact()) << label << " " << name;
    EXPECT_EQ(al.footprint.value, gt.footprint[al.array])
        << label << " footprint of " << name;
    EXPECT_EQ(al.accesses.value, gt.accesses[al.array])
        << label << " accesses of " << name;
    EXPECT_EQ(al.reuse.value, al.accesses.value - al.footprint.value)
        << label << " reuse of " << name;
  }
}

TEST(Locality, PipelineExactCounts) {
  Linted l(R"(scop pipeline(N) {
    context N >= 4;
    array a[N]; array b[N]; array c[N];
    for (i = 0 .. N-1) { S1: a[i] = i * 0.5; }
    for (i = 0 .. N-1) { S2: b[i] = a[i] * 2.0; }
    for (i = 0 .. N-1) { S3: c[i] = a[i] + b[i]; }
  })");
  const IntVector params{8};
  const LocalityReport rep = analyze_locality(l.scop, l.dg, params);

  ASSERT_EQ(rep.statements.size(), 3u);
  for (const StatementVolume& sv : rep.statements) {
    ASSERT_TRUE(sv.instances.is_exact());
    EXPECT_EQ(sv.instances.value, 8);
  }
  // a: written by S1, read by S2 and S3 -> 8 cells, 24 accesses.
  ASSERT_EQ(rep.arrays.size(), 3u);
  EXPECT_EQ(rep.arrays[0].footprint.value, 8);
  EXPECT_EQ(rep.arrays[0].accesses.value, 24);
  EXPECT_EQ(rep.arrays[0].reuse.value, 16);
  EXPECT_EQ(rep.arrays[1].accesses.value, 16);
  EXPECT_EQ(rep.arrays[2].reuse.value, 0);
  EXPECT_TRUE(rep.findings.empty());

  // Pairs: S1/S2 share a (8), S1/S3 share a (8), S2/S3 share a and b
  // (16), plus one self pair per statement (no cell is revisited by a
  // second instance here, so all three count 0).
  ASSERT_EQ(rep.pairs.size(), 6u);
  EXPECT_EQ(rep.shared_cells_or_negative(0, 1), 8);
  EXPECT_EQ(rep.shared_cells_or_negative(2, 0), 8);  // order-insensitive
  EXPECT_EQ(rep.shared_cells_or_negative(1, 2), 16);
  EXPECT_EQ(rep.shared_cells_or_negative(0, 0), 0);  // no self-reuse
  EXPECT_EQ(rep.shared_cells_or_negative(2, 2), 0);

  // And the whole report agrees with actually running the program.
  expect_matches_ground_truth(l.scop, l.dg, params, "pipeline");
}

TEST(Locality, SelfPairCountsReductionReuse) {
  // The self pair counts cells touched by two *distinct* instances of
  // the same statement: the accumulator cell of a reduction is
  // self-reuse (the reason fusing a reduction with its producer pays),
  // while streaming statements like the pipeline above count 0.
  Linted l(R"(scop dot(N) {
    context N >= 8;
    array x[N]; array s[1];
    S1: s[0] = 0.0;
    for (i = 0 .. N-1) { S2: s[0] = s[0] + x[i]; }
  })");
  const LocalityReport rep = analyze_locality(l.scop, l.dg, {8});
  // S2 revisits exactly the accumulator cell; x[i] is touched once per
  // instance. S1 has a single instance, so no pair of distinct ones.
  EXPECT_EQ(rep.shared_cells_or_negative(1, 1), 1);
  EXPECT_EQ(rep.shared_cells_or_negative(0, 0), 0);
  EXPECT_EQ(rep.shared_cells_or_negative(0, 1), 1);

  // 2-d anti-diagonal binning: hist[i+j] at N=8 has 15 bins, of which
  // the two corner bins (0 and 14) are touched by a single (i, j) --
  // 13 cells see at least two distinct instances.
  Linted h(R"(scop histo(N) {
    context N >= 8;
    array A[N][N]; array hist[2*N - 1];
    for (i = 0 .. N-1) { for (j = 0 .. N-1) {
      S1: hist[i + j] = hist[i + j] + A[i][j];
    } }
  })");
  const LocalityReport hrep = analyze_locality(h.scop, h.dg, {8});
  EXPECT_EQ(hrep.shared_cells_or_negative(0, 0), 13);
}

TEST(Locality, CountedFindingVolumes) {
  // Two injected defects with different volumes: every t-write is dead
  // (local array, never read -> volume N) and S3 reads u[0..3] before
  // any write (uninit volume 4).
  Linted l(R"(scop buggy(N) {
    context N >= 8;
    local array t[N]; local array u[N]; array b[N];
    for (i = 0 .. N-1) { S1: t[i] = i * 1.0; }
    for (i = 4 .. N-1) { S2: u[i] = i * 2.0; }
    for (i = 0 .. N-1) { S3: b[i] = u[i]; }
  })");
  const LocalityReport rep = analyze_locality(l.scop, l.dg, {8});
  // Expect a dead-write volume of 8 (S1 on t, plus S2's u-writes that
  // are consumed -- only t's are dead) and an uninit-read volume of 4
  // (S3 reads u[0..3]).
  const VolumeFinding* dead = nullptr;
  const VolumeFinding* uninit = nullptr;
  for (const VolumeFinding& f : rep.findings) {
    if (f.kind == VolumeFinding::kDeadWrite && f.stmt == 0) dead = &f;
    if (f.kind == VolumeFinding::kUninitRead) uninit = &f;
  }
  ASSERT_NE(dead, nullptr);
  EXPECT_EQ(dead->array, array_id(l.scop, "t"));
  ASSERT_TRUE(dead->volume.is_exact());
  EXPECT_EQ(dead->volume.value, 8);
  ASSERT_NE(uninit, nullptr);
  EXPECT_EQ(uninit->stmt, 2u);
  EXPECT_EQ(uninit->array, array_id(l.scop, "u"));
  ASSERT_TRUE(uninit->volume.is_exact());
  EXPECT_EQ(uninit->volume.value, 4);
  // Findings rank by volume, descending.
  for (std::size_t i = 1; i < rep.findings.size(); ++i)
    if (rep.findings[i - 1].volume.is_exact() &&
        rep.findings[i].volume.is_exact())
      EXPECT_GE(rep.findings[i - 1].volume.value,
                rep.findings[i].volume.value);
}

TEST(Locality, StridedFootprintIsExactNotRationalShadow) {
  // a[2*i]: 8 iterations touch 8 distinct cells; the FM rational shadow
  // of the access relation would span 15.
  Linted l(R"(scop strided(N) {
    context N >= 8;
    array a[2*N]; array b[N];
    for (i = 0 .. N-1) { S1: a[2*i] = i * 1.0; }
    for (i = 0 .. N-1) { S2: b[i] = a[2*i]; }
  })");
  const LocalityReport rep = analyze_locality(l.scop, l.dg, {8});
  EXPECT_EQ(rep.arrays[array_id(l.scop, "a")].footprint.value, 8);
  EXPECT_EQ(rep.arrays[array_id(l.scop, "a")].accesses.value, 16);
  EXPECT_EQ(rep.shared_cells_or_negative(0, 1), 8);
  expect_matches_ground_truth(l.scop, l.dg, {8}, "strided");
}

TEST(Locality, BudgetDegradesToUnknownNeverWrong) {
  Linted l(R"(scop small(N) {
    context N >= 4;
    array a[N];
    for (i = 0 .. N-1) { S1: a[i] = i * 1.0; }
  })");
  support::BudgetSpec spec;
  spec.fuel = 0;
  support::Budget budget(spec);
  support::BudgetScope scope(&budget);
  const LocalityReport rep = analyze_locality(l.scop, l.dg, {8});
  ASSERT_EQ(rep.statements.size(), 1u);
  EXPECT_EQ(rep.statements[0].instances.kind, poly::Count::kUnknown);
  for (const ArrayLocality& al : rep.arrays) {
    EXPECT_NE(al.footprint.kind, poly::Count::kUnbounded);
    EXPECT_EQ(al.footprint.to_string(), "unknown");
  }
  EXPECT_EQ(rep.shared_cells_or_negative(0, 0), -1);
}

TEST(Locality, BenchmarksMatchInterpretedGroundTruth) {
  // The acceptance differential: gemver, advect and swim at their test
  // parameters -- every count the analyzer reports must equal what an
  // actual run observes.
  for (const char* name : {"gemver", "advect", "swim"}) {
    const suite::Benchmark& b = suite::benchmark(name);
    const ir::Scop scop = suite::parse(b);
    const ddg::DependenceGraph dg = ddg::DependenceGraph::analyze(scop);
    expect_matches_ground_truth(scop, dg, b.test_params, b.name);
  }
}

TEST(Locality, SyntheticProgramsMatchInterpretedGroundTruth) {
  for (unsigned seed = 0; seed < 6; ++seed) {
    const ir::Scop scop = frontend::parse_scop(suite::synthetic_program(seed));
    const ddg::DependenceGraph dg = ddg::DependenceGraph::analyze(scop);
    IntVector params(scop.num_params(), 6);
    if (!scop.context().contains(params))
      params.assign(scop.num_params(), 16);
    expect_matches_ground_truth(scop, dg, params,
                                "synthetic seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace pf::analysis
