// Randomized end-to-end property tests.
//
// A generator produces random (but always valid) affine programs:
// random arrays, nests, subscript shifts/transposes and read sets. For
// each seed and each fusion model the full pipeline runs and we check
//   * the scheduler terminates and satisfies every dependence,
//   * interpreting the transformed AST reproduces the original program's
//     results bit-for-bit,
//   * the tiled AST does too,
//   * the independent verifier (src/verify) agrees: legality, parallel
//     marks and fusion partitions check out on every schedule/AST pair.
// This exercises parser-free construction (builder), dependence analysis,
// Farkas scheduling, cuts, codegen (incl. guards and shifts), tiling, the
// interpreter and the static verifier against each other.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "codegen/codegen.h"
#include "codegen/tiling.h"
#include "ddg/dependences.h"
#include "exec/interp.h"
#include "frontend/parser.h"
#include "fusion/models.h"
#include "sched/analysis.h"
#include "sched/pluto.h"
#include "suite/synthetic.h"
#include "verify/verify.h"

namespace pf {
namespace {

// The shared generator (suite/synthetic.h); also exercised at larger
// sizes by bench/compile_scaling.cpp.
std::string random_program(unsigned seed) {
  return suite::synthetic_program(seed);
}

void run_store(const codegen::AstNode& ast, exec::ArrayStore& store) {
  for (std::size_t a = 0; a < store.num_arrays(); ++a) {
    const double salt = static_cast<double>(a + 1);
    store.fill(a, [&](const IntVector& idx) {
      double v = 0.5 + salt;
      for (std::size_t d = 0; d < idx.size(); ++d)
        v += 0.03 * static_cast<double>(idx[d]) * (1.0 + static_cast<double>(d));
      return v;
    });
  }
  exec::interpret(ast, store);
}

class RandomPrograms : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomPrograms, AllModelsPreserveSemantics) {
  const std::string src = random_program(GetParam());
  SCOPED_TRACE(src);
  const ir::Scop scop = frontend::parse_scop(src);
  const auto dg = ddg::DependenceGraph::analyze(scop);

  sched::Schedule ident = sched::identity_schedule(scop);
  sched::annotate_dependences(ident, dg);
  const auto orig_ast = codegen::generate_ast(scop, ident);
  {
    const verify::Report r = verify::run_all(scop, dg, ident, orig_ast.get());
    EXPECT_TRUE(r.ok()) << "identity schedule:\n" << r.to_string(&scop);
  }
  exec::ArrayStore ref(scop, {7});
  run_store(*orig_ast, ref);

  for (int m = 0; m < 4; ++m) {
    auto policy = fusion::make_policy(static_cast<fusion::FusionModel>(m));
    const sched::Schedule sch = sched::compute_schedule(scop, dg, *policy);
    // Every dependence satisfied.
    for (const std::size_t lvl : sch.satisfied_at) EXPECT_NE(lvl, SIZE_MAX);

    auto ast = codegen::generate_ast(scop, sch);
    // Independent legality/race/partition oracle on the untiled AST.
    {
      const verify::Report r = verify::run_all(scop, dg, sch, ast.get());
      EXPECT_TRUE(r.ok()) << "model " << m << " seed " << GetParam() << ":\n"
                          << r.to_string(&scop);
    }
    exec::ArrayStore got(scop, {7});
    run_store(*ast, got);
    EXPECT_EQ(exec::ArrayStore::max_abs_diff(ref, got), 0.0)
        << "model " << m << " seed " << GetParam();

    // Tiling must not change results either -- and the tiled AST's
    // parallel marks must still withstand the race detector.
    codegen::tile_ast(*ast, sch, dg, {.tile_size = 3});
    {
      const verify::Report r = verify::check_races(dg, sch, *ast);
      EXPECT_TRUE(r.ok()) << "tiled model " << m << " seed " << GetParam()
                          << ":\n" << r.to_string(&scop);
    }
    exec::ArrayStore tiled(scop, {7});
    run_store(*ast, tiled);
    EXPECT_EQ(exec::ArrayStore::max_abs_diff(ref, tiled), 0.0)
        << "tiled model " << m << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms, ::testing::Range(0u, 30u));

TEST(RandomPrograms, GeneratorIsDeterministic) {
  EXPECT_EQ(random_program(5), random_program(5));
  EXPECT_NE(random_program(5), random_program(6));
}

}  // namespace
}  // namespace pf
