// Randomized end-to-end property tests.
//
// A generator produces random (but always valid) affine programs:
// random arrays, nests, subscript shifts/transposes and read sets. For
// each seed and each fusion model the full pipeline runs and we check
//   * the scheduler terminates and satisfies every dependence,
//   * interpreting the transformed AST reproduces the original program's
//     results bit-for-bit,
//   * the tiled AST does too.
// This exercises parser-free construction (builder), dependence analysis,
// Farkas scheduling, cuts, codegen (incl. guards and shifts), tiling and
// the interpreter against each other.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "codegen/codegen.h"
#include "codegen/tiling.h"
#include "ddg/dependences.h"
#include "exec/interp.h"
#include "frontend/parser.h"
#include "fusion/models.h"
#include "sched/analysis.h"
#include "sched/pluto.h"

namespace pf {
namespace {

// Generates a random PolyLang program. All loops run 2 .. N+1 and all
// subscript shifts are within [-2, +2] against extents N+4, so accesses
// are always in bounds.
std::string random_program(unsigned seed) {
  std::mt19937 rng(seed);
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };

  const int num_arrays = pick(3, 5);
  std::vector<int> rank(num_arrays);
  std::ostringstream os;
  os << "scop r" << seed << "(N) { context N >= 6;\n";
  for (int a = 0; a < num_arrays; ++a) {
    rank[a] = pick(1, 2);
    os << "array a" << a << (rank[a] == 1 ? "[N+4]" : "[N+4][N+4]") << ";\n";
  }

  auto subscript = [&](const char* iter) {
    const int shift = pick(-2, 2);
    std::ostringstream ss;
    ss << iter;
    if (shift > 0) ss << "+" << shift;
    if (shift < 0) ss << "-" << (-shift);
    // Indices live in [0, N+3]: loop range [2, N+1] plus shift in [-2,2].
    return ss.str();
  };
  auto access = [&](int a, int depth) {
    std::ostringstream ss;
    ss << "a" << a;
    if (rank[a] == 1) {
      ss << "[" << subscript(depth >= 1 ? (pick(0, 1) && depth >= 2 ? "j" : "i")
                                        : "i")
         << "]";
    } else {
      const bool transpose = depth >= 2 && pick(0, 1) == 1;
      const char* first = depth >= 2 ? (transpose ? "j" : "i") : "i";
      const char* second = depth >= 2 ? (transpose ? "i" : "j") : "i";
      ss << "[" << subscript(first) << "][" << subscript(second) << "]";
    }
    return ss.str();
  };

  const int nests = pick(2, 4);
  int label = 1;
  for (int n = 0; n < nests; ++n) {
    const int depth = pick(1, 2);
    os << "for (i = 2 .. N+1) {";
    if (depth == 2) os << " for (j = 2 .. N+1) {";
    const int stmts = pick(1, 2);
    for (int s = 0; s < stmts; ++s) {
      const int wa = pick(0, num_arrays - 1);
      os << " S" << label++ << ": a" << wa;
      if (rank[wa] == 1)
        os << "[i]";
      else
        os << (depth == 2 ? "[i][j]" : "[i][i]");
      os << " = ";
      const int reads = pick(1, 3);
      for (int r = 0; r < reads; ++r) {
        if (r > 0) os << (pick(0, 1) ? " + " : " - ");
        os << "0." << pick(1, 9) << "*" << access(pick(0, num_arrays - 1), depth);
      }
      os << " + 0.25;";
    }
    os << (depth == 2 ? " } }" : " }") << "\n";
  }
  os << "}\n";
  return os.str();
}

void run_store(const codegen::AstNode& ast, exec::ArrayStore& store) {
  for (std::size_t a = 0; a < store.num_arrays(); ++a) {
    const double salt = static_cast<double>(a + 1);
    store.fill(a, [&](const IntVector& idx) {
      double v = 0.5 + salt;
      for (std::size_t d = 0; d < idx.size(); ++d)
        v += 0.03 * static_cast<double>(idx[d]) * (1.0 + static_cast<double>(d));
      return v;
    });
  }
  exec::interpret(ast, store);
}

class RandomPrograms : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomPrograms, AllModelsPreserveSemantics) {
  const std::string src = random_program(GetParam());
  SCOPED_TRACE(src);
  const ir::Scop scop = frontend::parse_scop(src);
  const auto dg = ddg::DependenceGraph::analyze(scop);

  sched::Schedule ident = sched::identity_schedule(scop);
  sched::annotate_dependences(ident, dg);
  const auto orig_ast = codegen::generate_ast(scop, ident);
  exec::ArrayStore ref(scop, {7});
  run_store(*orig_ast, ref);

  for (int m = 0; m < 4; ++m) {
    auto policy = fusion::make_policy(static_cast<fusion::FusionModel>(m));
    const sched::Schedule sch = sched::compute_schedule(scop, dg, *policy);
    // Every dependence satisfied.
    for (const std::size_t lvl : sch.satisfied_at) EXPECT_NE(lvl, SIZE_MAX);

    auto ast = codegen::generate_ast(scop, sch);
    exec::ArrayStore got(scop, {7});
    run_store(*ast, got);
    EXPECT_EQ(exec::ArrayStore::max_abs_diff(ref, got), 0.0)
        << "model " << m << " seed " << GetParam();

    // Tiling must not change results either.
    codegen::tile_ast(*ast, sch, dg, {.tile_size = 3});
    exec::ArrayStore tiled(scop, {7});
    run_store(*ast, tiled);
    EXPECT_EQ(exec::ArrayStore::max_abs_diff(ref, tiled), 0.0)
        << "tiled model " << m << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms, ::testing::Range(0u, 30u));

TEST(RandomPrograms, GeneratorIsDeterministic) {
  EXPECT_EQ(random_program(5), random_program(5));
  EXPECT_NE(random_program(5), random_program(6));
}

}  // namespace
}  // namespace pf
