// Tests for the independent schedule verifier (src/verify).
//
// Positive direction: everything the real pipeline produces -- every
// fusion policy, every suite benchmark, synthetic programs, identity
// schedules, tiled ASTs -- must verify clean.
//
// Negative direction (the checker itself is under test): hand-crafted
// illegal schedules and falsely-parallel-marked AST loops must be
// detected with the exact diagnostic kind, statement pair and level.
#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "codegen/tiling.h"
#include "ddg/dependences.h"
#include "frontend/parser.h"
#include "fusion/models.h"
#include "sched/analysis.h"
#include "sched/pluto.h"
#include "suite/suite.h"
#include "suite/synthetic.h"
#include "support/stats.h"
#include "support/trace.h"
#include "verify/verify.h"

namespace pf {
namespace {

struct Pipeline {
  ir::Scop scop;
  ddg::DependenceGraph dg;

  explicit Pipeline(const std::string& src)
      : scop(frontend::parse_scop(src)),
        dg(ddg::DependenceGraph::analyze(scop)) {}
};

codegen::AstNode* first_loop(codegen::AstNode& n) {
  if (n.kind == codegen::AstNode::Kind::kLoop) return &n;
  for (const codegen::AstPtr& c : n.children)
    if (codegen::AstNode* l = first_loop(*c)) return l;
  return nullptr;
}

const char* kProducerConsumer = R"(
  scop pc(N) { context N >= 4;
    array a[N]; array b[N];
    for (i = 0 .. N-1) { S1: a[i] = i * 1.5; }
    for (i = 0 .. N-1) { S2: b[i] = a[i] + 1.0; }
  })";

const char* kSequentialChain = R"(
  scop chain(N) { context N >= 4;
    array a[N+2];
    for (i = 1 .. N) { S1: a[i] = a[i-1] * 0.5; }
  })";

// ---------------------------------------------------------------------------
// Positive: real pipeline output verifies under every policy.
// ---------------------------------------------------------------------------

void expect_verifies(const Pipeline& p, const sched::Schedule& sch,
                     const std::string& what) {
  const auto ast = codegen::generate_ast(p.scop, sch);
  const verify::Report r = verify::run_all(p.scop, p.dg, sch, ast.get());
  EXPECT_TRUE(r.ok()) << what << ":\n" << r.to_string(&p.scop);
  EXPECT_EQ(r.checked_deps, p.dg.deps().size()) << what;
}

TEST(Verify, AllPoliciesVerifyOnHandPrograms) {
  for (const char* src : {kProducerConsumer, kSequentialChain}) {
    Pipeline p(src);
    for (int m = 0; m < 4; ++m) {
      auto policy = fusion::make_policy(static_cast<fusion::FusionModel>(m));
      const sched::Schedule sch = sched::compute_schedule(p.scop, p.dg, *policy);
      expect_verifies(p, sch, "model " + std::to_string(m));
    }
    sched::Schedule ident = sched::identity_schedule(p.scop);
    sched::annotate_dependences(ident, p.dg);
    expect_verifies(p, ident, "identity");
  }
}

TEST(Verify, SkewedStencilVerifies) {
  // Needs skewing for parallelism: exercises non-trivial rows.
  Pipeline p(R"(
    scop st(N) { context N >= 4;
      array a[N+2][N+2];
      for (i = 1 .. N) { for (j = 1 .. N) {
        S1: a[i][j] = a[i-1][j] + a[i][j-1]; } } })");
  for (int m = 0; m < 4; ++m) {
    auto policy = fusion::make_policy(static_cast<fusion::FusionModel>(m));
    const sched::Schedule sch = sched::compute_schedule(p.scop, p.dg, *policy);
    expect_verifies(p, sch, "stencil model " + std::to_string(m));
  }
}

TEST(Verify, TiledAstStillVerifies) {
  Pipeline p(R"(
    scop mm(N) { context N >= 4;
      array A[N][N]; array B[N][N]; array C[N][N];
      for (i = 0 .. N-1) { for (j = 0 .. N-1) { for (k = 0 .. N-1) {
        S1: C[i][j] = C[i][j] + A[i][k]*B[k][j]; } } } })");
  auto policy = fusion::make_policy(fusion::FusionModel::kSmartfuse);
  const sched::Schedule sch = sched::compute_schedule(p.scop, p.dg, *policy);
  auto ast = codegen::generate_ast(p.scop, sch);
  codegen::tile_ast(*ast, sch, p.dg, {.tile_size = 4});
  const verify::Report r = verify::run_all(p.scop, p.dg, sch, ast.get());
  EXPECT_TRUE(r.ok()) << r.to_string(&p.scop);
  EXPECT_GT(r.race_checks, 0u);  // tile + point loops both claim parallel
}

TEST(Verify, WholeSuiteVerifiesUnderAllPolicies) {
  for (const suite::Benchmark& b : suite::all_benchmarks()) {
    const ir::Scop scop = suite::parse(b);
    const auto dg = ddg::DependenceGraph::analyze(scop);
    for (int m = 0; m < 4; ++m) {
      auto policy = fusion::make_policy(static_cast<fusion::FusionModel>(m));
      const sched::Schedule sch = sched::compute_schedule(scop, dg, *policy);
      const auto ast = codegen::generate_ast(scop, sch);
      const verify::Report r = verify::run_all(scop, dg, sch, ast.get());
      EXPECT_TRUE(r.ok()) << b.name << " model " << m << ":\n"
                          << r.to_string(&scop);
    }
  }
}

TEST(Verify, SyntheticProgramsVerify) {
  for (unsigned seed = 0; seed < 6; ++seed) {
    Pipeline p(suite::synthetic_program(seed));
    for (int m = 0; m < 4; ++m) {
      auto policy = fusion::make_policy(static_cast<fusion::FusionModel>(m));
      const sched::Schedule sch = sched::compute_schedule(p.scop, p.dg, *policy);
      expect_verifies(p, sch,
                      "seed " + std::to_string(seed) + " model " +
                          std::to_string(m));
    }
  }
}

// ---------------------------------------------------------------------------
// Negative: injected bugs must be caught with precise diagnostics.
// ---------------------------------------------------------------------------

// Hand-built single-level schedule: statement 0 runs as phi = coeff * i.
sched::Schedule one_level_schedule(const ir::Scop& scop, i64 coeff) {
  sched::Schedule sch;
  sch.scop = &scop;
  sch.level_linear = {true};
  for (std::size_t s = 0; s < scop.num_statements(); ++s) {
    const std::size_t dims = scop.statement(s).dim() + scop.num_params();
    poly::AffineExpr row(dims);
    row.set_coeff(0, coeff);
    sch.rows.push_back({row});
  }
  return sch;
}

TEST(Verify, DetectsLoopReversalAsLegalityViolation) {
  // a[i] = a[i-1]: flow dep with distance 1. Reversing the loop (phi=-i)
  // runs consumers before producers.
  Pipeline p(kSequentialChain);
  ASSERT_EQ(p.dg.deps().size(), 1u);  // single flow self-dependence
  const sched::Schedule bad = one_level_schedule(p.scop, -1);
  const verify::Report r = verify::check_legality(p.dg, bad);
  ASSERT_EQ(r.findings.size(), 1u) << r.to_string(&p.scop);
  const verify::Finding& f = r.findings[0];
  EXPECT_EQ(f.kind, verify::CheckKind::kLegality);
  EXPECT_EQ(f.dep_kind, ddg::DepKind::kFlow);
  EXPECT_EQ(f.src, 0u);
  EXPECT_EQ(f.dst, 0u);
  EXPECT_EQ(f.level, 0u);  // violated at the one and only level

  // The legal direction is clean.
  EXPECT_TRUE(verify::check_legality(p.dg, one_level_schedule(p.scop, 1)).ok());
}

TEST(Verify, DetectsFalselyParallelMarkedLoop) {
  // The chain's loop carries its flow dependence; codegen correctly
  // leaves it sequential. Force the parallel mark and the race detector
  // must object with the exact dependence and level.
  Pipeline p(kSequentialChain);
  sched::Schedule sch = one_level_schedule(p.scop, 1);
  sched::annotate_dependences(sch, p.dg);
  auto ast = codegen::generate_ast(p.scop, sch);
  codegen::AstNode* loop = first_loop(*ast);
  ASSERT_NE(loop, nullptr);
  ASSERT_FALSE(loop->parallel);  // codegen got it right

  loop->parallel = true;  // inject the bug the emitter would trust
  loop->mark_parallel = true;
  const verify::Report r = verify::check_races(p.dg, sch, *ast);
  ASSERT_EQ(r.findings.size(), 1u) << r.to_string(&p.scop);
  const verify::Finding& f = r.findings[0];
  EXPECT_EQ(f.kind, verify::CheckKind::kRace);
  EXPECT_EQ(f.dep_kind, ddg::DepKind::kFlow);
  EXPECT_EQ(f.src, 0u);
  EXPECT_EQ(f.dst, 0u);
  EXPECT_EQ(f.level, 0u);
  EXPECT_EQ(r.race_checks, 1u);
}

TEST(Verify, ParallelLoopWithNoCarriedDepStaysClean) {
  // b[i] = a[i] fused loops: the real pipeline marks the fused loop
  // parallel, and the race detector agrees.
  Pipeline p(kProducerConsumer);
  auto policy = fusion::make_policy(fusion::FusionModel::kMaxfuse);
  const sched::Schedule sch = sched::compute_schedule(p.scop, p.dg, *policy);
  auto ast = codegen::generate_ast(p.scop, sch);
  const verify::Report r = verify::check_races(p.dg, sch, *ast);
  EXPECT_TRUE(r.ok()) << r.to_string(&p.scop);
  EXPECT_GT(r.race_checks, 0u);  // the claim was actually checked
}

// Hand-built (scalar, linear) schedule putting statement s at outer
// position pos[s] -- the shape fusion cuts produce.
sched::Schedule two_level_schedule(const ir::Scop& scop,
                                   const std::vector<i64>& pos) {
  sched::Schedule sch;
  sch.scop = &scop;
  sch.level_linear = {false, true};
  for (std::size_t s = 0; s < scop.num_statements(); ++s) {
    const std::size_t dims = scop.statement(s).dim() + scop.num_params();
    poly::AffineExpr scalar(dims, pos[s]);
    poly::AffineExpr linear = poly::AffineExpr::var(dims, 0);
    sch.rows.push_back({scalar, linear});
  }
  return sch;
}

TEST(Verify, DetectsBackwardFusionPartitionOrder) {
  // S1 produces a, S2 consumes it. Ordering the S2 partition first breaks
  // the topological order of the SCC condensation.
  Pipeline p(kProducerConsumer);
  const sched::Schedule bad = two_level_schedule(p.scop, {1, 0});
  const verify::Report r = verify::check_partition(p.dg, bad);
  ASSERT_EQ(r.findings.size(), 1u) << r.to_string(&p.scop);
  const verify::Finding& f = r.findings[0];
  EXPECT_EQ(f.kind, verify::CheckKind::kPartition);
  EXPECT_EQ(f.src, 0u);
  EXPECT_EQ(f.dst, 1u);
  EXPECT_EQ(f.level, 0u);  // the scalar level whose values disagree

  // The same shape in program order is a valid topological order.
  EXPECT_TRUE(verify::check_partition(p.dg, two_level_schedule(p.scop, {0, 1}))
                  .ok());
  // Fusing both into one partition is fine too.
  EXPECT_TRUE(verify::check_partition(p.dg, two_level_schedule(p.scop, {0, 0}))
                  .ok());
  // And the backward order is of course also a legality violation.
  EXPECT_FALSE(verify::check_legality(p.dg, bad).ok());
}

TEST(Verify, DetectsSplitScc) {
  // S1 and S2 feed each other across iterations: a statement-level
  // dependence cycle that no fusion cut may separate.
  Pipeline p(R"(
    scop cyc(N) { context N >= 4;
      array a[N+2]; array b[N+2];
      for (i = 1 .. N) {
        S1: a[i] = b[i-1] + 1.0;
        S2: b[i] = a[i-1] * 0.5;
      } })");
  const sched::Schedule split = two_level_schedule(p.scop, {0, 1});
  const verify::Report r = verify::check_partition(p.dg, split);
  ASSERT_FALSE(r.ok());
  bool saw_split = false;
  for (const verify::Finding& f : r.findings)
    saw_split = saw_split || (f.kind == verify::CheckKind::kPartition &&
                              f.detail.find("split") != std::string::npos);
  EXPECT_TRUE(saw_split) << r.to_string(&p.scop);

  EXPECT_TRUE(verify::check_partition(p.dg, two_level_schedule(p.scop, {0, 0}))
                  .ok());
}

TEST(Verify, DetectsNeverSatisfiedDependence) {
  // Both statements collapse onto the same time point at every level:
  // the flow dependence S1 -> S2 is never strongly separated.
  Pipeline p(kProducerConsumer);
  const sched::Schedule tied = two_level_schedule(p.scop, {0, 0});
  // One linear level only -- drop the scalar one so nothing separates
  // the statements.
  sched::Schedule flat;
  flat.scop = tied.scop;
  flat.level_linear = {true};
  for (const auto& rows : tied.rows) flat.rows.push_back({rows[1]});
  const verify::Report r = verify::check_legality(p.dg, flat);
  ASSERT_EQ(r.findings.size(), 1u) << r.to_string(&p.scop);
  EXPECT_EQ(r.findings[0].kind, verify::CheckKind::kUnsatisfied);
  EXPECT_EQ(r.findings[0].src, 0u);
  EXPECT_EQ(r.findings[0].dst, 1u);
}

// ---------------------------------------------------------------------------
// Reporting plumbing: counters, remarks, rendering.
// ---------------------------------------------------------------------------

TEST(Verify, FeedsStatsCountersAndRemarks) {
  support::Stats::instance().reset();
  support::Tracer::instance().reset();
  support::Tracer::instance().set_remarks_enabled(true);

  Pipeline p(kProducerConsumer);
  auto policy = fusion::make_policy(fusion::FusionModel::kWisefuse);
  const sched::Schedule sch = sched::compute_schedule(p.scop, p.dg, *policy);
  const auto ast = codegen::generate_ast(p.scop, sch);
  const verify::Report r = verify::run_all(p.scop, p.dg, sch, ast.get());
  ASSERT_TRUE(r.ok());

  const support::Stats& st = support::Stats::instance();
  EXPECT_EQ(st.get(support::Counter::kVerifyCheckedDeps),
            static_cast<i64>(r.checked_deps));
  EXPECT_EQ(st.get(support::Counter::kVerifyRaceChecks),
            static_cast<i64>(r.race_checks));
  EXPECT_EQ(st.get(support::Counter::kVerifyViolations), 0);

  bool saw_summary = false;
  for (const support::Remark& rem : support::Tracer::instance().remarks())
    saw_summary = saw_summary || (rem.category == "verify" &&
                                  rem.message.find("checked") == 0);
  EXPECT_TRUE(saw_summary);
  support::Tracer::instance().set_remarks_enabled(false);
  support::Tracer::instance().reset();
  support::Stats::instance().reset();
}

TEST(Verify, FindingRendersPreciseDiagnostic) {
  Pipeline p(kSequentialChain);
  const verify::Report r =
      verify::check_legality(p.dg, one_level_schedule(p.scop, -1));
  ASSERT_EQ(r.findings.size(), 1u);
  const std::string line = r.findings[0].to_string(&p.scop);
  EXPECT_NE(line.find("legality"), std::string::npos) << line;
  EXPECT_NE(line.find("flow dependence S1 -> S1"), std::string::npos) << line;
  EXPECT_NE(line.find("level 0"), std::string::npos) << line;
  const std::string full = r.to_string(&p.scop);
  EXPECT_NE(full.find("VIOLATION"), std::string::npos);
  EXPECT_NE(full.find("1 violation(s)"), std::string::npos);
}

TEST(Verify, MalformedScheduleIsDiagnosedNotFatal) {
  Pipeline p(kProducerConsumer);
  sched::Schedule sch = one_level_schedule(p.scop, 1);
  sch.rows[0] = {poly::AffineExpr(1)};  // wrong dimensionality
  const verify::Report r = verify::check_legality(p.dg, sch);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].kind, verify::CheckKind::kMalformed);
}

}  // namespace
}  // namespace pf
