// Tests for the machine model: cache simulator (against hand-computed
// hit/miss patterns and a reference fully-associative model) and the
// multicore performance model's classification/arithmetic.
#include <gtest/gtest.h>

#include <deque>
#include <random>

#include "ddg/dependences.h"
#include "frontend/parser.h"
#include "fusion/models.h"
#include "machine/cachesim.h"
#include "machine/perfmodel.h"
#include "codegen/codegen.h"
#include "sched/analysis.h"
#include "sched/pluto.h"

namespace pf::machine {
namespace {

TEST(CacheSim, ColdMissesThenHits) {
  CacheSim sim(CacheConfig::tiny());  // L1: 256B, 64B lines, 2-way
  sim.access(0, false);
  sim.access(8, false);   // same line
  sim.access(64, false);  // next line
  const auto& st = sim.stats();
  EXPECT_EQ(st.accesses, 3u);
  EXPECT_EQ(st.misses[0], 2u);  // two cold lines
  EXPECT_EQ(st.hits[0], 1u);
}

TEST(CacheSim, LruEvictionWithinSet) {
  // Tiny L1: 256B / 64B lines / 2-way => 2 sets. Lines 0, 2, 4 map to set
  // 0 (line_addr % 2). Two ways: accessing 0, 2, 4 evicts 0.
  CacheSim sim(CacheConfig::tiny());
  sim.access(0 * 64, false);
  sim.access(2 * 64, false);
  sim.access(4 * 64, false);
  sim.access(0 * 64, false);  // evicted: L1 miss again
  EXPECT_EQ(sim.stats().misses[0], 4u);
  // But LRU: re-access 2 before adding 4 keeps 2 resident.
  CacheSim sim2(CacheConfig::tiny());
  sim2.access(0 * 64, false);
  sim2.access(2 * 64, false);
  sim2.access(2 * 64, false);  // MRU now 2
  sim2.access(4 * 64, false);  // evicts 0
  sim2.access(2 * 64, false);  // hit
  EXPECT_EQ(sim2.stats().hits[0], 2u);
}

TEST(CacheSim, SecondLevelCatchesL1Evictions) {
  CacheSim sim(CacheConfig::tiny());  // L2 = 1024B, 4-way, 4 sets
  // Touch 8 distinct lines (512B): L1 (4 lines) thrashes, L2 holds all.
  for (int rep = 0; rep < 2; ++rep)
    for (int l = 0; l < 8; ++l) sim.access(static_cast<uint64_t>(l) * 64, false);
  const auto& st = sim.stats();
  EXPECT_EQ(st.misses[0], 16u);           // L1 too small for the footprint
  EXPECT_EQ(st.misses[1], 8u);            // only cold misses reach memory
  EXPECT_EQ(st.hits[1], 8u);              // second round hits L2
}

TEST(CacheSim, StatsResetWorks) {
  CacheSim sim(CacheConfig::tiny());
  sim.access(0, true);
  sim.reset_stats();
  EXPECT_EQ(sim.stats().accesses, 0u);
  EXPECT_EQ(sim.stats().misses[0], 0u);
  sim.access(0, false);
  EXPECT_EQ(sim.stats().hits[0], 1u);  // line still resident after reset
}

TEST(CacheSim, XeonConfigShape) {
  const auto cfg = CacheConfig::xeon_e5_2650();
  ASSERT_EQ(cfg.levels.size(), 3u);
  EXPECT_EQ(cfg.levels[0].size_bytes, 32u * 1024);
  EXPECT_EQ(cfg.levels[2].size_bytes, 20u * 1024 * 1024);
  CacheSim sim(cfg);  // constructible
  sim.access(123456, false);
  EXPECT_EQ(sim.stats().memory_accesses(), 1u);
}

TEST(CacheSim, BadConfigRejected) {
  CacheConfig bad;
  bad.levels = {CacheLevelConfig{64, 64, 2, "L1"}};  // size < line*assoc
  EXPECT_THROW(CacheSim{bad}, Error);
  CacheConfig empty;
  EXPECT_THROW(CacheSim{empty}, Error);
}

// Property: single-level simulator matches a reference fully-associative
// LRU model when the cache has one set.
TEST(CacheSim, MatchesFullyAssociativeReference) {
  CacheConfig cfg;
  cfg.levels = {CacheLevelConfig{8 * 64, 64, 8, "L1"}};  // 1 set, 8 ways
  CacheSim sim(cfg);
  std::deque<uint64_t> lru;  // front = MRU
  std::mt19937 rng(11);
  std::uint64_t expected_hits = 0;
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t line = rng() % 16;
    const bool hit_ref = std::find(lru.begin(), lru.end(), line) != lru.end();
    if (hit_ref) {
      lru.erase(std::find(lru.begin(), lru.end(), line));
      ++expected_hits;
    }
    lru.push_front(line);
    if (lru.size() > 8) lru.pop_back();
    sim.access(line * 64, false);
  }
  EXPECT_EQ(sim.stats().hits[0], expected_hits);
}

TEST(AddressMap, DisjointLineAlignedBases) {
  AddressMap map({10, 3, 100}, 64);
  EXPECT_EQ(map.address(0, 0) % 64, 0u);
  EXPECT_EQ(map.address(1, 0) % 64, 0u);
  // No overlap between arrays.
  EXPECT_GT(map.address(1, 0), map.address(0, 9));
  EXPECT_GT(map.address(2, 0), map.address(1, 2));
  EXPECT_THROW(map.address(0, 10), Error);
  EXPECT_THROW(map.address(0, -1), Error);
}

// ---------------------------------------------------------------------------
// Performance model.
// ---------------------------------------------------------------------------

struct Built {
  ir::Scop scop;
  sched::Schedule sch;
  codegen::AstPtr ast;
};

Built build(const char* src, fusion::FusionModel m) {
  ir::Scop scop = frontend::parse_scop(src);
  const auto dg = ddg::DependenceGraph::analyze(scop);
  auto policy = fusion::make_policy(m);
  sched::Schedule sch = sched::compute_schedule(scop, dg, *policy);
  auto ast = codegen::generate_ast(scop, sch);
  return Built{std::move(scop), std::move(sch), std::move(ast)};
}

TEST(PerfModel, ParallelNestClassified) {
  auto b = build(R"(
    scop t(N) { context N >= 4; array a[N];
      for (i = 0 .. N-1) { S1: a[i] = 2.0; } })",
                 fusion::FusionModel::kSmartfuse);
  exec::ArrayStore store(b.scop, {64});
  const ModelReport r = evaluate(*b.ast, store);
  ASSERT_EQ(r.nests.size(), 1u);
  EXPECT_EQ(r.nests[0].parallelism, NestParallelism::kParallel);
  EXPECT_EQ(r.nests[0].instances, 64u);
  // Parallel: modeled < serial (64 iterations >> 8 cores), up to sync.
  EXPECT_LT(r.nests[0].modeled_cycles,
            r.nests[0].serial_cycles + 2 * 20000.0);
}

TEST(PerfModel, SerialNestClassified) {
  auto b = build(R"(
    scop t(N) { context N >= 4; array a[N];
      for (i = 1 .. N-1) { S1: a[i] = a[i-1] * 0.5; } })",
                 fusion::FusionModel::kSmartfuse);
  exec::ArrayStore store(b.scop, {64});
  const ModelReport r = evaluate(*b.ast, store);
  ASSERT_EQ(r.nests.size(), 1u);
  EXPECT_EQ(r.nests[0].parallelism, NestParallelism::kSerial);
  EXPECT_DOUBLE_EQ(r.nests[0].modeled_cycles, r.nests[0].serial_cycles);
}

TEST(PerfModel, PipelinedNestPaysPerWavefrontSync) {
  // Dependences carried in both dimensions: no outer parallel loop exists,
  // but the 2-d nest runs as a doacross pipeline.
  auto b = build(R"(
    scop t(N) { context N >= 4; array a[N+1][N+1];
      for (i = 1 .. N) { for (j = 1 .. N) {
        S1: a[i][j] = a[i-1][j] + a[i][j-1]; } } })",
                 fusion::FusionModel::kSmartfuse);
  exec::ArrayStore store(b.scop, {32});
  const ModelReport r = evaluate(*b.ast, store);
  ASSERT_EQ(r.nests.size(), 1u);
  EXPECT_EQ(r.nests[0].parallelism, NestParallelism::kPipelined);
  EXPECT_EQ(r.nests[0].wavefronts, 32u);
  // Sync cost dominates at this size: 32 x 20000 cycles.
  EXPECT_GE(r.nests[0].modeled_cycles, 32 * 20000.0);
}

TEST(PerfModel, FusionReducesMemoryCycles) {
  // Producer-consumer over an L2-busting array: fused version must show
  // fewer memory cycles than distributed.
  constexpr const char* src = R"(
    scop t(N) { context N >= 4; array a[N]; array b[N]; array c[N];
      for (i = 0 .. N-1) { S1: a[i] = 1.5; }
      for (i = 0 .. N-1) { S2: b[i] = a[i] * 2.0; }
      for (i = 0 .. N-1) { S3: c[i] = a[i] + b[i]; } })";
  const i64 n = 200000;  // 1.6MB per array: beyond L2
  auto fused = build(src, fusion::FusionModel::kSmartfuse);
  auto split = build(src, fusion::FusionModel::kNofuse);
  exec::ArrayStore s1(fused.scop, {n}), s2(split.scop, {n});
  const ModelReport rf = evaluate(*fused.ast, s1);
  const ModelReport rs = evaluate(*split.ast, s2);
  // The arrays fit in L3 (4.8 MB < 20 MB), so the reuse difference shows
  // up as L2 misses and total memory cycles, not memory accesses.
  EXPECT_LT(rf.cache.misses[1], rs.cache.misses[1]);
  double mf = 0, ms = 0;
  for (const auto& nst : rf.nests) mf += nst.memory_cycles;
  for (const auto& nst : rs.nests) ms += nst.memory_cycles;
  EXPECT_LT(mf, ms);
}

TEST(PerfModel, ReportIsReadable) {
  auto b = build(R"(
    scop t(N) { context N >= 4; array a[N];
      for (i = 0 .. N-1) { S1: a[i] = 2.0; } })",
                 fusion::FusionModel::kSmartfuse);
  exec::ArrayStore store(b.scop, {16});
  const ModelReport r = evaluate(*b.ast, store);
  const std::string text = r.to_string();
  EXPECT_NE(text.find("parallel"), std::string::npos);
  EXPECT_NE(text.find("modeled cycles"), std::string::npos);
}

TEST(PerfModel, ModelRunUpdatesStoreLikeNormalRun) {
  auto b = build(R"(
    scop t(N) { context N >= 4; array a[N];
      for (i = 0 .. N-1) { S1: a[i] = 7.5; } })",
                 fusion::FusionModel::kSmartfuse);
  exec::ArrayStore store(b.scop, {8});
  evaluate(*b.ast, store);
  for (i64 i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(store.at(0, {i}), 7.5);
}

}  // namespace
}  // namespace pf::machine
