// Minimal structural JSON checker shared by the test binaries. Accepts a
// string and reports whether it is exactly one syntactically well-formed
// JSON value (objects, arrays, strings with escapes, numbers, literals).
// No DOM is built and no semantics are checked -- just enough to assert
// that --trace / --explain=json output would load in a real parser.
#pragma once

#include <cctype>
#include <string>

namespace pf::testjson {

class Checker {
 public:
  static bool valid(const std::string& text) {
    Checker c(text);
    c.skip_ws();
    if (!c.value()) return false;
    c.skip_ws();
    return c.pos_ == text.size();
  }

 private:
  explicit Checker(const std::string& text) : text_(text) {}

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p)
      if (!eat(*p)) return false;
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        ++pos_;  // escaped char (a \uXXXX tail is plain chars, also fine)
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    const std::size_t start = pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return pos_ > start;
  }

  bool number() {
    eat('-');
    if (!digits()) return false;
    if (eat('.') && !digits()) return false;
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      return eat('}');
    }
  }

  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      return eat(']');
    }
  }

  bool value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline bool valid(const std::string& text) { return Checker::valid(text); }

}  // namespace pf::testjson
