// CLI-level degradation-matrix tests (runs the real binary): every
// --inject site must recover with the documented remark and still emit
// verified, validated code; budgeted and injected runs must be
// byte-identical at every --jobs; malformed budget flags must be
// rejected; and unbudgeted runs must match a huge-fuel run exactly.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "json_check.h"

namespace {

#ifndef POLYFUSE_CLI_PATH
#error "POLYFUSE_CLI_PATH must be defined by the build"
#endif

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "robust_" +
         std::to_string(::getpid()) + "_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct SplitResult {
  int exit_code;
  std::string out, err;
};

// `env` is prepended verbatim, e.g. "POLYFUSE_FUEL=0".
SplitResult run_cli(const std::string& args, const std::string& env = "") {
  const std::string out_file = temp_path("stdout");
  const std::string err_file = temp_path("stderr");
  const std::string cmd = (env.empty() ? "" : env + " ") +
                          std::string(POLYFUSE_CLI_PATH) + " " + args + " > " +
                          out_file + " 2> " + err_file;
  const int rc = std::system(cmd.c_str());
  return SplitResult{WEXITSTATUS(rc), slurp(out_file), slurp(err_file)};
}

std::string write_program(const std::string& name, const std::string& text) {
  const std::string path = temp_path(name);
  std::ofstream out(path);
  out << text;
  return path;
}

const char* kPipeline = R"(
scop pipeline(N) {
  context N >= 4;
  array a[N]; array b[N]; array c[N];
  for (i = 0 .. N-1) { S1: a[i] = i * 0.5; }
  for (i = 0 .. N-1) { S2: b[i] = a[i] * 2.0; }
  for (i = 0 .. N-1) { S3: c[i] = a[i] + b[i]; }
}
)";

// The full set of correctness gates every degraded run must pass.
const std::string kChecks = " --verify=strict --validate --params=16 ";

// ---- degradation matrix: one injection per site ----------------------

struct SiteCase {
  const char* site;
  const char* remark;  // the recovery remark the site must produce
};

class InjectionMatrix : public ::testing::TestWithParam<SiteCase> {};

TEST_P(InjectionMatrix, RecoversWithRemarkAndStaysCorrect) {
  const SiteCase c = GetParam();
  const std::string path = write_program("p.pf", kPipeline);
  const SplitResult r =
      run_cli("--model=wisefuse --inject=" + std::string(c.site) +
              ":fail-after=0 --explain" + kChecks + path);
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.err.find(c.remark), std::string::npos)
      << "expected remark '" << c.remark << "' for site " << c.site
      << "; stderr:\n" << r.err;
  EXPECT_NE(r.err.find("fault-injected"), std::string::npos) << r.err;
  EXPECT_NE(r.out.find("void pf_kernel"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Sites, InjectionMatrix,
    ::testing::Values(
        SiteCase{"lp_solve", "degraded"},
        SiteCase{"fme_project", "degraded"},
        SiteCase{"dep_pair", "dependence pair degraded to over-approximation"},
        SiteCase{"pluto_level", "pluto level degraded to scalar cut"},
        SiteCase{"fusion_model", "fusion model degraded"}),
    [](const ::testing::TestParamInfo<SiteCase>& info) {
      return std::string(info.param.site);
    });

// ---- determinism across --jobs ---------------------------------------

TEST(Robustness, InjectionIsByteIdenticalAcrossJobs) {
  const std::string path = write_program("p.pf", kPipeline);
  const std::string args = "--model=wisefuse --inject=dep_pair:fail-after=0 "
                           "--explain --emit=c " + path;
  const SplitResult serial = run_cli("--jobs=1 " + args);
  const SplitResult parallel = run_cli("--jobs=8 " + args);
  EXPECT_EQ(serial.exit_code, 0) << serial.err;
  EXPECT_EQ(serial.exit_code, parallel.exit_code);
  EXPECT_EQ(serial.out, parallel.out);
  EXPECT_EQ(serial.err, parallel.err);
}

TEST(Robustness, FuelIsByteIdenticalAcrossJobs) {
  const std::string path = write_program("p.pf", kPipeline);
  for (const char* fuel : {"0", "200", "1000"}) {
    const std::string args = std::string("--model=wisefuse --fuel=") + fuel +
                             " --explain --emit=c " + path;
    const SplitResult serial = run_cli("--jobs=1 " + args);
    const SplitResult parallel = run_cli("--jobs=8 " + args);
    EXPECT_EQ(serial.exit_code, 0) << "fuel=" << fuel << "\n" << serial.err;
    EXPECT_EQ(serial.out, parallel.out) << "fuel=" << fuel;
    EXPECT_EQ(serial.err, parallel.err) << "fuel=" << fuel;
  }
}

// ---- acceptance: tight budgets stay correct --------------------------

TEST(Robustness, Fuel1000OnPipelineDegradesButStaysCorrect) {
  const std::string path = write_program("p.pf", kPipeline);
  const SplitResult r =
      run_cli("--model=wisefuse --fuel=1000 --explain" + kChecks + path);
  EXPECT_EQ(r.exit_code, 0) << r.err;
  // The budget must actually bind on this input: at least one downgrade.
  EXPECT_NE(r.err.find("budget"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("degraded"), std::string::npos) << r.err;
  EXPECT_NE(r.out.find("void pf_kernel"), std::string::npos);
}

TEST(Robustness, ZeroFuelStillEmitsCorrectCode) {
  const std::string path = write_program("p.pf", kPipeline);
  const SplitResult r =
      run_cli("--model=wisefuse --fuel=0 --explain" + kChecks + path);
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("void pf_kernel"), std::string::npos);
}

TEST(Robustness, TimeBudgetRunsThePipeline) {
  const std::string path = write_program("p.pf", kPipeline);
  // A generous deadline: must not degrade anything on this tiny input,
  // and must not crash. (Deadline-triggered degradation is timing
  // dependent by design, so only the happy path is asserted.)
  const SplitResult r =
      run_cli("--model=wisefuse --time-budget=60000" + kChecks + path);
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("void pf_kernel"), std::string::npos);
}

TEST(Robustness, AssumedDependencesAreMarkedInDepsOutput) {
  const std::string path = write_program("p.pf", kPipeline);
  const SplitResult r = run_cli(
      "--inject=dep_pair:fail-after=0 --emit=deps " + path);
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("assumed"), std::string::npos) << r.out;
}

// ---- no budget flags => exactly the unbudgeted pipeline --------------

TEST(Robustness, HugeFuelMatchesUnbudgetedOutput) {
  const std::string path = write_program("p.pf", kPipeline);
  const std::string args = "--model=wisefuse --explain --emit=c " + path;
  const SplitResult plain = run_cli(args);
  const SplitResult budgeted = run_cli("--fuel=1000000000 " + args);
  EXPECT_EQ(plain.exit_code, 0) << plain.err;
  EXPECT_EQ(budgeted.exit_code, 0) << budgeted.err;
  EXPECT_EQ(plain.out, budgeted.out);
  // No downgrade may have happened with effectively unlimited fuel.
  EXPECT_EQ(budgeted.err.find("degraded"), std::string::npos) << budgeted.err;
}

// ---- env equivalents -------------------------------------------------

TEST(Robustness, EnvVarsMirrorTheFlags) {
  const std::string path = write_program("p.pf", kPipeline);
  const std::string args = "--model=wisefuse --explain --emit=c " + path;
  const SplitResult flag = run_cli("--fuel=0 " + args);
  const SplitResult env = run_cli(args, "POLYFUSE_FUEL=0");
  EXPECT_EQ(flag.exit_code, 0) << flag.err;
  EXPECT_EQ(flag.out, env.out);
  EXPECT_EQ(flag.err, env.err);

  const SplitResult inj_flag =
      run_cli("--inject=fusion_model:fail-after=0 " + args);
  const SplitResult inj_env =
      run_cli(args, "POLYFUSE_INJECT=fusion_model:fail-after=0");
  EXPECT_EQ(inj_flag.exit_code, 0) << inj_flag.err;
  EXPECT_EQ(inj_flag.out, inj_env.out);
  EXPECT_EQ(inj_flag.err, inj_env.err);
}

// ---- malformed flags -------------------------------------------------

TEST(Robustness, MalformedBudgetFlagsAreRejected) {
  const std::string path = write_program("p.pf", kPipeline);
  for (const char* bad : {
           "--fuel=-1", "--fuel=abc", "--fuel=",
           "--time-budget=0", "--time-budget=x",
           "--inject=bogus",
           "--inject=warp_core:fail-after=1",
           "--inject=lp_solve:fail-after=-2",
           "--inject=lp_solve:fail=1",
       }) {
    const SplitResult r = run_cli(std::string(bad) + " " + path);
    EXPECT_EQ(r.exit_code, 2) << bad << ":\n" << r.err;
    EXPECT_NE(r.err.find("usage:"), std::string::npos) << bad;
  }
  const SplitResult env_bad = run_cli(path, "POLYFUSE_FUEL=nope");
  EXPECT_EQ(env_bad.exit_code, 2) << env_bad.err;
}

// ---- stats surface ---------------------------------------------------

TEST(Robustness, StatsJsonReportsBudgetCounters) {
  const std::string path = write_program("p.pf", kPipeline);
  const SplitResult r = run_cli(
      "--model=wisefuse --fuel=0 --stats=json --emit=c " + path);
  EXPECT_EQ(r.exit_code, 0) << r.err;
  const std::size_t brace = r.err.find('{');
  ASSERT_NE(brace, std::string::npos) << r.err;
  EXPECT_TRUE(pf::testjson::valid(r.err.substr(brace))) << r.err;
  for (const char* key :
       {"budget_exhaustions", "budget_downgrades", "budget_assumed_deps",
        "budget_fuel_dep_pair"}) {
    EXPECT_NE(r.err.find(key), std::string::npos) << key << "\n" << r.err;
  }
  // Zero fuel means the very first charge exhausted: nonzero counter.
  EXPECT_EQ(r.err.find("\"budget_exhaustions\": 0"), std::string::npos)
      << r.err;
}

TEST(Robustness, TinyFuelSweepNeverCrashesAnyModel) {
  const std::string path = write_program("p.pf", kPipeline);
  for (const char* model : {"wisefuse", "smartfuse", "nofuse", "maxfuse"}) {
    for (const char* fuel : {"0", "7", "63", "250"}) {
      const SplitResult r = run_cli(std::string("--model=") + model +
                                    " --fuel=" + fuel + kChecks + path);
      EXPECT_EQ(r.exit_code, 0)
          << "model=" << model << " fuel=" << fuel << "\n" << r.err;
    }
  }
}

}  // namespace
