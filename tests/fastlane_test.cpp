// Differential tests for the int64 fast lane (lp/fastlane.h): the
// integer simplex tableau, the integer FM row combination, and the
// warm-started lexmin must all return bit-identical results with the
// lane on or off -- on random inputs, on inputs engineered to overflow
// the lane mid-solve, and with fallbacks forced through the
// `lp.fastlane` injection site.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "ddg/dependences.h"
#include "frontend/parser.h"
#include "fusion/models.h"
#include "lp/fastlane.h"
#include "lp/ilp.h"
#include "lp/simplex.h"
#include "poly/set.h"
#include "sched/pluto.h"
#include "suite/synthetic.h"
#include "support/budget.h"
#include "support/stats.h"

namespace pf {
namespace {

// Force the lane on/off for one scope; restore the suite default (on --
// the env override only matters for the CLI binary) on exit.
class LaneGuard {
 public:
  explicit LaneGuard(bool enabled) { lp::set_fastlane_enabled(enabled); }
  ~LaneGuard() { lp::set_fastlane_enabled(true); }
};

i64 counter(support::Counter c) { return support::Stats::instance().get(c); }

void expect_same_result(const lp::SimplexSolver::Result& fast,
                        const lp::SimplexSolver::Result& exact,
                        const std::string& context) {
  ASSERT_EQ(fast.status, exact.status) << context;
  if (fast.status != lp::Status::kOptimal) return;
  EXPECT_EQ(fast.objective, exact.objective) << context;
  ASSERT_EQ(fast.point.size(), exact.point.size()) << context;
  for (std::size_t i = 0; i < fast.point.size(); ++i)
    EXPECT_EQ(fast.point[i], exact.point[i]) << context << " x" << i;
}

TEST(Fastlane, RandomizedSimplexMatchesExactLane) {
  std::mt19937 rng(20240);
  std::uniform_int_distribution<i64> coef(-9, 9);
  std::uniform_int_distribution<i64> den(1, 4);
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t nvars = 1 + rng() % 4;
    const bool nonneg = rng() % 2 == 0;
    auto s = nonneg ? lp::SimplexSolver::all_nonneg(nvars)
                    : lp::SimplexSolver::all_free(nvars);
    const std::size_t nrows = 1 + rng() % (2 * nvars + 1);
    for (std::size_t r = 0; r < nrows; ++r) {
      RatVector row;
      for (std::size_t v = 0; v < nvars; ++v)
        row.push_back(Rational(coef(rng), den(rng)));
      const Rational c(coef(rng), den(rng));
      if (rng() % 4 == 0)
        s.add_equality(row, c);
      else
        s.add_inequality(row, c);
    }
    RatVector obj;
    for (std::size_t v = 0; v < nvars; ++v)
      obj.push_back(Rational(coef(rng), den(rng)));

    lp::SimplexSolver::Result fast, exact;
    {
      LaneGuard g(true);
      fast = s.minimize(obj);
    }
    {
      LaneGuard g(false);
      exact = s.minimize(obj);
    }
    expect_same_result(fast, exact, "iter " + std::to_string(iter));
  }
}

TEST(Fastlane, OverflowFallsBackToExactLaneMidPipeline) {
  // Row denominators whose LCM exceeds the 2^62 tableau bound: the fast
  // lane must bail while building the row and the exact Rational lane
  // must transparently take over, with the fallback counted.
  const i64 primes[4] = {99991, 99989, 99971, 99961};
  auto s = lp::SimplexSolver::all_nonneg(4);
  RatVector row;
  for (const i64 p : primes) row.push_back(Rational(1, p));
  s.add_inequality(row, Rational(-1));  // sum x_i/p_i >= 1
  const RatVector obj(4, Rational(1));

  support::Stats::instance().reset();
  lp::SimplexSolver::Result fast, exact;
  {
    LaneGuard g(true);
    fast = s.minimize(obj);
  }
  EXPECT_EQ(counter(support::Counter::kFastlaneSolves), 0);
  EXPECT_EQ(counter(support::Counter::kFastlaneFallbacks), 1);
  {
    LaneGuard g(false);
    exact = s.minimize(obj);
  }
  expect_same_result(fast, exact, "lcm overflow");
  ASSERT_EQ(fast.status, lp::Status::kOptimal);
  // Cheapest way to reach sum x_i/p_i = 1 is the smallest prime.
  EXPECT_EQ(fast.objective, Rational(99961));
}

TEST(Fastlane, InjectionForcesSimplexFallbackWithoutFault) {
  support::BudgetSpec spec;
  spec.injections.push_back({support::BudgetSite::kLpFastlane, 1});
  support::Budget b(spec);
  support::BudgetScope scope(&b);
  support::Stats::instance().reset();

  auto s = lp::SimplexSolver::all_nonneg(2);
  s.add_inequality(RatVector{Rational(1), Rational(0)}, Rational(-2));
  s.add_inequality(RatVector{Rational(0), Rational(1)}, Rational(-3));
  const RatVector obj{Rational(1), Rational(1)};

  LaneGuard g(true);
  const auto r0 = s.minimize(obj);  // ordinal 0: fast lane
  const auto r1 = s.minimize(obj);  // ordinal 1: injected -> exact lane
  const auto r2 = s.minimize(obj);  // ordinal 2: single-shot, fast again
  expect_same_result(r0, r1, "injected solve");
  expect_same_result(r0, r2, "post-injection solve");
  EXPECT_EQ(r0.objective, Rational(5));

  EXPECT_EQ(counter(support::Counter::kFastlaneSolves), 2);
  EXPECT_EQ(counter(support::Counter::kFastlaneFallbacks), 1);
  EXPECT_EQ(counter(support::Counter::kBudgetInjectedFaults), 1);
  // A forced fallback is not a fault: nothing throws, nothing degrades.
  EXPECT_EQ(b.faults(), 0);
}

poly::IntegerSet random_set(std::mt19937& rng, std::size_t dims) {
  std::uniform_int_distribution<i64> coef(-6, 6);
  poly::IntegerSet set(dims);
  const std::size_t nrows = 2 + rng() % (2 * dims);
  for (std::size_t r = 0; r < nrows; ++r) {
    IntVector coeffs;
    for (std::size_t d = 0; d < dims; ++d) coeffs.push_back(coef(rng));
    poly::AffineExpr e(std::move(coeffs), coef(rng));
    if (rng() % 5 == 0)
      set.add_constraint(poly::Constraint::eq0(std::move(e)));
    else
      set.add_constraint(poly::Constraint::ge0(std::move(e)));
  }
  return set;
}

TEST(Fastlane, RandomizedFmEliminationMatchesExactLane) {
  std::mt19937 rng(77);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t dims = 3 + rng() % 3;
    const poly::IntegerSet set = random_set(rng, dims);
    std::vector<bool> remove(dims, false);
    const std::size_t nremove = 1 + rng() % 2;
    for (std::size_t i = 0; i < nremove; ++i) remove[rng() % dims] = true;

    std::string fast, exact;
    {
      LaneGuard g(true);
      fast = set.eliminate_dims(remove).to_string();
    }
    {
      LaneGuard g(false);
      exact = set.eliminate_dims(remove).to_string();
    }
    EXPECT_EQ(fast, exact) << "iter " << iter;
  }
}

TEST(Fastlane, InjectionForcesFmeFallback) {
  support::BudgetSpec spec;
  spec.injections.push_back({support::BudgetSite::kLpFastlane, 0});
  support::Budget b(spec);
  support::BudgetScope scope(&b);
  support::Stats::instance().reset();

  std::mt19937 rng(5);
  const poly::IntegerSet set = random_set(rng, 4);
  std::vector<bool> remove{false, true, false, true};
  std::string forced;
  {
    LaneGuard g(true);
    forced = set.eliminate_dims(remove).to_string();
  }
  EXPECT_GE(counter(support::Counter::kFastlaneFmeFallbacks), 1);
  EXPECT_EQ(counter(support::Counter::kBudgetInjectedFaults), 1);
  EXPECT_EQ(b.faults(), 0);

  std::string exact;
  {
    LaneGuard g(false);
    exact = set.eliminate_dims(remove).to_string();
  }
  EXPECT_EQ(forced, exact);
}

TEST(Fastlane, LexminWarmStartReturnsTheColdAnswer) {
  // min lex (x0, x1) over x0 + x1 >= 4, x0 <= 3, nonneg integers.
  auto p = lp::IlpProblem::all_nonneg(2);
  p.add_inequality(IntVector{1, 1}, -4);
  p.add_upper_bound(0, 3);
  const std::vector<IntVector> objectives{IntVector{1, 0}, IntVector{0, 1}};

  LaneGuard g(true);
  const auto cold = p.lexmin(objectives);
  ASSERT_EQ(cold.status, lp::IlpStatus::kOptimal);

  support::Stats::instance().reset();
  // A feasible warm point (not the optimum): accepted, same answer.
  const IntVector feasible{3, 1};
  const auto warm = p.lexmin(objectives, {}, &feasible);
  EXPECT_EQ(counter(support::Counter::kFastlaneWarmHits), 1);
  ASSERT_EQ(warm.status, lp::IlpStatus::kOptimal);
  EXPECT_EQ(warm.point, cold.point);

  // A stale point (violates x0 + x1 >= 4): rejected, same answer.
  const IntVector stale{0, 0};
  const auto rejected = p.lexmin(objectives, {}, &stale);
  EXPECT_EQ(counter(support::Counter::kFastlaneWarmMisses), 1);
  ASSERT_EQ(rejected.status, lp::IlpStatus::kOptimal);
  EXPECT_EQ(rejected.point, cold.point);

  // A wrong-arity point: rejected, same answer.
  const IntVector wrong_size{1};
  const auto sized = p.lexmin(objectives, {}, &wrong_size);
  EXPECT_EQ(counter(support::Counter::kFastlaneWarmMisses), 2);
  ASSERT_EQ(sized.status, lp::IlpStatus::kOptimal);
  EXPECT_EQ(sized.point, cold.point);
}

TEST(Fastlane, EndToEndSchedulesIdenticalLaneOnOff) {
  // Full pipeline (parse -> analyze -> Pluto with warm starts) on
  // synthetic programs: the schedule must be identical lane on/off.
  for (const unsigned seed : {3u, 11u, 42u}) {
    const ir::Scop scop =
        frontend::parse_scop(suite::synthetic_program(seed));
    const auto run = [&scop] {
      poly::clear_solve_cache();
      const auto dg = ddg::DependenceGraph::analyze(scop);
      const auto policy =
          fusion::make_policy(fusion::FusionModel::kWisefuse);
      return sched::compute_schedule(scop, dg, *policy).to_string();
    };
    std::string fast, exact;
    {
      LaneGuard g(true);
      fast = run();
    }
    {
      LaneGuard g(false);
      exact = run();
    }
    EXPECT_EQ(fast, exact) << "seed " << seed;
  }
}

}  // namespace
}  // namespace pf
