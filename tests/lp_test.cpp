// Tests for the exact LP/ILP substrate: two-phase simplex, branch-and-
// bound, lexicographic minimization, plus randomized property tests
// against brute-force enumeration over small boxes.
#include <gtest/gtest.h>

#include <random>

#include "lp/ilp.h"
#include "lp/simplex.h"

namespace pf::lp {
namespace {

RatVector rv(std::initializer_list<i64> xs) {
  RatVector v;
  for (i64 x : xs) v.push_back(Rational(x));
  return v;
}

TEST(Simplex, SimpleBoundedMinimum) {
  // min x0 + x1 s.t. x0 >= 2, x1 >= 3 (nonneg vars).
  auto s = SimplexSolver::all_nonneg(2);
  s.add_inequality(rv({1, 0}), Rational(-2));
  s.add_inequality(rv({0, 1}), Rational(-3));
  const auto r = s.minimize(rv({1, 1}));
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_EQ(r.objective, Rational(5));
  EXPECT_EQ(r.point[0], Rational(2));
  EXPECT_EQ(r.point[1], Rational(3));
}

TEST(Simplex, Maximize) {
  // max x0 + 2*x1 s.t. x0 + x1 <= 4, x0 <= 3, nonneg.
  auto s = SimplexSolver::all_nonneg(2);
  s.add_inequality(rv({-1, -1}), Rational(4));
  s.add_inequality(rv({-1, 0}), Rational(3));
  const auto r = s.maximize(rv({1, 2}));
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_EQ(r.objective, Rational(8));  // x0=0, x1=4
}

TEST(Simplex, InfeasibleDetected) {
  auto s = SimplexSolver::all_nonneg(1);
  s.add_inequality(rv({1}), Rational(-5));   // x >= 5
  s.add_inequality(rv({-1}), Rational(2));   // x <= 2
  EXPECT_EQ(s.minimize(rv({1})).status, Status::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  auto s = SimplexSolver::all_free(1);
  const auto r = s.minimize(rv({1}));
  EXPECT_EQ(r.status, Status::kUnbounded);
}

TEST(Simplex, FreeVariablesCanGoNegative) {
  // min x s.t. x >= -7 with x free.
  auto s = SimplexSolver::all_free(1);
  s.add_inequality(rv({1}), Rational(7));
  const auto r = s.minimize(rv({1}));
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_EQ(r.objective, Rational(-7));
}

TEST(Simplex, EqualityConstraints) {
  // min x0 s.t. x0 + x1 == 10, x1 <= 4 (nonneg).
  auto s = SimplexSolver::all_nonneg(2);
  s.add_equality(rv({1, 1}), Rational(-10));
  s.add_inequality(rv({0, -1}), Rational(4));
  const auto r = s.minimize(rv({1, 0}));
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_EQ(r.objective, Rational(6));
}

TEST(Simplex, RationalOptimum) {
  // min x s.t. 2x >= 1 -> x = 1/2.
  auto s = SimplexSolver::all_nonneg(1);
  s.add_inequality(rv({2}), Rational(-1));
  const auto r = s.minimize(rv({1}));
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_EQ(r.objective, Rational(1, 2));
}

TEST(Simplex, DegenerateProblemTerminates) {
  // A classic cycling-prone degenerate LP; Bland's rule must terminate.
  auto s = SimplexSolver::all_nonneg(4);
  s.add_inequality(rv({-1, 1, -1, 1}), Rational(0));
  s.add_inequality(rv({1, -1, -1, 1}), Rational(0));
  s.add_inequality(rv({-1, -1, 1, 1}), Rational(0));
  s.add_inequality(rv({-1, -1, -1, -1}), Rational(1));
  const auto r = s.minimize(rv({-1, -1, -1, -1}));
  ASSERT_EQ(r.status, Status::kOptimal);
}

TEST(Simplex, FeasiblePointSatisfiesConstraints) {
  auto s = SimplexSolver::all_free(2);
  s.add_inequality(rv({1, 1}), Rational(-3));   // x+y >= 3
  s.add_inequality(rv({-1, 2}), Rational(0));   // 2y >= x
  const auto r = s.feasible_point();
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_GE(r.point[0] + r.point[1], Rational(3));
  EXPECT_GE(r.point[1] * Rational(2), r.point[0]);
}

TEST(Ilp, IntegerMinimumDiffersFromRelaxation) {
  // min x s.t. 2x >= 1 over integers -> x = 1 (relaxation: 1/2).
  auto p = IlpProblem::all_nonneg(1);
  p.add_inequality({2}, -1);
  const auto r = p.minimize({1});
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_EQ(r.objective, 1);
}

TEST(Ilp, GcdNormalizationProvesEmptiness) {
  // 2x == 1 has no integer solution; no branching needed.
  auto p = IlpProblem::all_free(1);
  p.add_equality({2}, -1);
  EXPECT_TRUE(p.proven_empty());
}

TEST(Ilp, GcdTighteningOfInequalities) {
  // 2x >= 1 and 2x <= 1 -> x >= 1 and x <= 0 after tightening: empty.
  auto p = IlpProblem::all_free(1);
  p.add_inequality({2}, -1);
  p.add_inequality({-2}, 1);
  EXPECT_TRUE(p.proven_empty());
}

TEST(Ilp, FindPointInUnboundedRegion) {
  auto p = IlpProblem::all_free(2);
  p.add_inequality({1, -1}, 0);  // x >= y
  const auto r = p.find_point();
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_GE(r.point[0], r.point[1]);
}

TEST(Ilp, KnapsackStyleOptimum) {
  // max 3x + 4y s.t. 2x + 3y <= 7, x,y >= 0 integers. Optimum: x=3(6<=7),y=0 ->9?
  // Check against brute force below; here assert a known value:
  // candidates: (3,0)=9, (2,1)=10, (0,2)=8, (1,1)=7 -> best 10.
  auto p = IlpProblem::all_nonneg(2);
  p.add_inequality({-2, -3}, 7);
  const auto r = p.maximize({3, 4});
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_EQ(r.objective, 10);
}

TEST(Ilp, BoundsHelpers) {
  auto p = IlpProblem::all_free(1);
  p.add_lower_bound(0, -3);
  p.add_upper_bound(0, 8);
  EXPECT_EQ(p.minimize({1}).objective, -3);
  EXPECT_EQ(p.maximize({1}).objective, 8);
}

TEST(Ilp, LexminOrdersObjectives) {
  // Box 0 <= x,y <= 3 with x + y >= 3. Lexmin (x, then y): x=0, y=3.
  auto p = IlpProblem::all_nonneg(2);
  p.add_upper_bound(0, 3);
  p.add_upper_bound(1, 3);
  p.add_inequality({1, 1}, -3);
  const auto r = p.lexmin({{1, 0}, {0, 1}});
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_EQ(r.point, (IntVector{0, 3}));
}

TEST(Ilp, LexminSecondObjectiveRespectsFirst) {
  // min (x+y) then min x over x+2y >= 5, 0<=x,y<=5.
  // First: x+y minimized: options (1,2)->3, (0,3)->3, (5,0)->5 ... min 3.
  // Then min x with x+y==3 and x+2y>=5: (1,2) or (0,3); min x = 0.
  auto p = IlpProblem::all_nonneg(2);
  p.add_upper_bound(0, 5);
  p.add_upper_bound(1, 5);
  p.add_inequality({1, 2}, -5);
  const auto r = p.lexmin({{1, 1}, {1, 0}});
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_EQ(r.point, (IntVector{0, 3}));
}

TEST(Ilp, NodeCapReported) {
  // A deliberately nasty region with a tiny cap.
  auto p = IlpProblem::all_free(3);
  p.add_inequality({3, -7, 11}, -1);
  p.add_inequality({-3, 7, -11}, 1);
  IlpOptions opts;
  opts.node_cap = 1;
  const auto r = p.find_point(opts);
  // With cap 1 we either got lucky with an integral vertex or hit the cap;
  // both are legal, but infeasible would be wrong (points exist).
  EXPECT_NE(r.status, IlpStatus::kInfeasible);
}

TEST(Ilp, TrivialEmptyConstant) {
  auto p = IlpProblem::all_free(2);
  p.add_inequality({0, 0}, -1);  // 0 >= 1: false
  EXPECT_TRUE(p.proven_empty());
}

// ---------------------------------------------------------------------------
// Property test: ILP optimum over random small boxed problems must match
// brute-force enumeration.
// ---------------------------------------------------------------------------

struct RandomIlpCase {
  unsigned seed;
};

class IlpVsBruteForce : public ::testing::TestWithParam<unsigned> {};

TEST_P(IlpVsBruteForce, MatchesEnumeration) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<i64> coef(-4, 4);
  std::uniform_int_distribution<i64> cst(-6, 6);
  std::uniform_int_distribution<int> nc(1, 4);

  const int kVars = 3;
  const i64 kLo = -4, kHi = 4;

  auto p = IlpProblem::all_free(kVars);
  for (int v = 0; v < kVars; ++v) {
    p.add_lower_bound(v, kLo);
    p.add_upper_bound(v, kHi);
  }
  std::vector<IntVector> ineqs;
  std::vector<i64> consts;
  const int n = nc(rng);
  for (int i = 0; i < n; ++i) {
    IntVector c = {coef(rng), coef(rng), coef(rng)};
    const i64 k = cst(rng);
    p.add_inequality(c, k);
    ineqs.push_back(c);
    consts.push_back(k);
  }
  IntVector obj = {coef(rng), coef(rng), coef(rng)};

  // Brute force.
  bool any = false;
  i64 best = 0;
  for (i64 x = kLo; x <= kHi; ++x)
    for (i64 y = kLo; y <= kHi; ++y)
      for (i64 z = kLo; z <= kHi; ++z) {
        bool ok = true;
        for (std::size_t i = 0; i < ineqs.size() && ok; ++i)
          ok = ineqs[i][0] * x + ineqs[i][1] * y + ineqs[i][2] * z +
                   consts[i] >=
               0;
        if (!ok) continue;
        const i64 v = obj[0] * x + obj[1] * y + obj[2] * z;
        if (!any || v < best) best = v;
        any = true;
      }

  const auto r = p.minimize(obj);
  if (!any) {
    EXPECT_EQ(r.status, IlpStatus::kInfeasible) << "seed " << GetParam();
  } else {
    ASSERT_EQ(r.status, IlpStatus::kOptimal) << "seed " << GetParam();
    EXPECT_EQ(r.objective, best) << "seed " << GetParam();
    // The returned point must itself be feasible and achieve the optimum.
    i64 v = 0;
    for (int d = 0; d < kVars; ++d) v += obj[d] * r.point[d];
    EXPECT_EQ(v, best);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomBoxes, IlpVsBruteForce,
                         ::testing::Range(0u, 40u));

}  // namespace
}  // namespace pf::lp
