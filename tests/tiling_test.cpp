// Tests for AST-level loop tiling: structure, semantics preservation
// across programs/models/tile sizes, and the cache-locality payoff.
#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "codegen/tiling.h"
#include "ddg/dependences.h"
#include "exec/interp.h"
#include "frontend/parser.h"
#include "fusion/models.h"
#include "machine/perfmodel.h"
#include "sched/analysis.h"
#include "sched/pluto.h"

namespace pf::codegen {
namespace {

struct Built {
  std::shared_ptr<ir::Scop> scop_ptr;
  ddg::DependenceGraph dg;
  sched::Schedule sch;
  AstPtr ast;

  const ir::Scop& scop() const { return *scop_ptr; }
  std::size_t tile(const TilingOptions& opts) {
    return tile_ast(*ast, sch, dg, opts);
  }
};

Built build(const char* src, fusion::FusionModel m) {
  auto scop = std::make_shared<ir::Scop>(frontend::parse_scop(src));
  auto dg = ddg::DependenceGraph::analyze(*scop);
  auto policy = fusion::make_policy(m);
  sched::Schedule sch = sched::compute_schedule(*scop, dg, *policy);
  AstPtr ast = generate_ast(*scop, sch);
  return Built{std::move(scop), std::move(dg), std::move(sch), std::move(ast)};
}

constexpr const char* kMatmulLike = R"(
  scop mm(N) { context N >= 4;
    array A[N][N]; array B[N][N]; array C[N][N];
    for (i = 0 .. N-1) { for (j = 0 .. N-1) { for (k = 0 .. N-1) {
      S1: C[i][j] = C[i][j] + A[i][k]*B[k][j]; } } } })";

TEST(Tiling, StripMinesARectangularBand) {
  auto b = build(kMatmulLike, fusion::FusionModel::kSmartfuse);
  TilingOptions opts;
  opts.tile_size = 8;
  const std::size_t bands = b.tile(opts);
  EXPECT_EQ(bands, 1u);
  // Depth doubled: 3 tile loops + 3 point loops.
  std::size_t depth = 0;
  const AstNode* n = b.ast.get();
  while (n->kind == AstNode::Kind::kLoop) {
    ++depth;
    n = n->body.get();
  }
  EXPECT_EQ(depth, 6u);
  const std::string text = ast_to_string(*b.ast, b.scop());
  EXPECT_NE(text.find("ceild"), std::string::npos);
  EXPECT_NE(text.find("floord"), std::string::npos);
}

TEST(Tiling, PreservesSemantics) {
  for (const i64 tile : {2, 3, 8, 100}) {
    auto plain = build(kMatmulLike, fusion::FusionModel::kSmartfuse);
    auto tiled = build(kMatmulLike, fusion::FusionModel::kSmartfuse);
    TilingOptions opts;
    opts.tile_size = tile;
    ASSERT_GT(tiled.tile(opts), 0u);

    exec::ArrayStore a(plain.scop(), {13}), c(tiled.scop(), {13});
    auto init = [](exec::ArrayStore& s) {
      for (std::size_t arr = 0; arr < s.num_arrays(); ++arr)
        s.fill(arr, [&](const IntVector& idx) {
          return 1.0 + 0.5 * static_cast<double>(idx[0]) +
                 0.25 * static_cast<double>(idx[1]) +
                 static_cast<double>(arr);
        });
    };
    init(a);
    init(c);
    exec::interpret(*plain.ast, a);
    exec::interpret(*tiled.ast, c);
    EXPECT_EQ(exec::ArrayStore::max_abs_diff(a, c), 0.0) << "tile " << tile;
  }
}

TEST(Tiling, PreservesSemanticsOnFusedMultiStatementPrograms) {
  constexpr const char* src = R"(
    scop t(N) { context N >= 4;
      array A[N][N]; array B[N][N]; array C[N][N];
      for (i = 0 .. N-1) { for (j = 0 .. N-1) { S1: A[i][j] = i + 2.0*j; } }
      for (i = 0 .. N-1) { for (j = 0 .. N-1) { S2: B[i][j] = A[i][j] * 2.0; } }
      for (i = 0 .. N-1) { for (j = 0 .. N-1) { S3: C[i][j] = A[i][j] + B[i][j]; } }
    })";
  for (const auto model :
       {fusion::FusionModel::kWisefuse, fusion::FusionModel::kNofuse}) {
    auto plain = build(src, model);
    auto tiled = build(src, model);
    ASSERT_GT(tiled.tile({.tile_size = 4}), 0u);
    exec::ArrayStore a(plain.scop(), {11}), c(tiled.scop(), {11});
    exec::interpret(*plain.ast, a);
    exec::interpret(*tiled.ast, c);
    EXPECT_EQ(exec::ArrayStore::max_abs_diff(a, c), 0.0)
        << fusion::to_string(model);
  }
}

TEST(Tiling, TriangularBandsAreLeftAlone) {
  // LU's bounds reference outer t vars; the rectangular tiler must skip
  // them rather than produce wrong code.
  auto b = build(R"(
    scop lu(N) { context N >= 3; array A[N][N];
      for (k = 0 .. N-2) {
        for (i = k+1 .. N-1) { S1: A[i][k] = A[i][k] / A[k][k]; }
        for (i = k+1 .. N-1) { for (j = k+1 .. N-1) {
          S2: A[i][j] = A[i][j] - A[i][k] * A[k][j]; } }
      } })",
                 fusion::FusionModel::kSmartfuse);
  auto before = ast_to_string(*b.ast, b.scop());
  b.tile({.tile_size = 8});
  // Whatever was tiled (possibly nothing), semantics must hold.
  auto plain = build(R"(
    scop lu(N) { context N >= 3; array A[N][N];
      for (k = 0 .. N-2) {
        for (i = k+1 .. N-1) { S1: A[i][k] = A[i][k] / A[k][k]; }
        for (i = k+1 .. N-1) { for (j = k+1 .. N-1) {
          S2: A[i][j] = A[i][j] - A[i][k] * A[k][j]; } }
      } })",
                     fusion::FusionModel::kSmartfuse);
  exec::ArrayStore x(plain.scop(), {12}), y(b.scop(), {12});
  auto init = [](exec::ArrayStore& s) {
    s.fill(0, [](const IntVector& idx) {
      return idx[0] == idx[1] ? 40.0 : 1.0 + 0.1 * static_cast<double>(idx[1]);
    });
  };
  init(x);
  init(y);
  exec::interpret(*plain.ast, x);
  exec::interpret(*b.ast, y);
  EXPECT_EQ(exec::ArrayStore::max_abs_diff(x, y), 0.0);
}

TEST(Tiling, ParallelMarksStayOnOutermostParallelLoop) {
  auto b = build(kMatmulLike, fusion::FusionModel::kSmartfuse);
  ASSERT_GT(b.tile({.tile_size = 8}), 0u);
  // Root is now the tile loop of the (parallel) i loop: it must carry the
  // pragma; nothing below should.
  ASSERT_EQ(b.ast->kind, AstNode::Kind::kLoop);
  EXPECT_TRUE(b.ast->mark_parallel);
  std::size_t marks = 0;
  const std::function<void(const AstNode&)> count = [&](const AstNode& n) {
    if (n.kind == AstNode::Kind::kLoop) {
      marks += n.mark_parallel ? 1 : 0;
      count(*n.body);
    } else if (n.kind == AstNode::Kind::kBlock) {
      for (const AstPtr& c : n.children) count(*c);
    }
  };
  count(*b.ast);
  EXPECT_EQ(marks, 1u);
}

TEST(Tiling, NoBandNoChange) {
  auto b = build(R"(
    scop t(N) { context N >= 4; array a[N];
      for (i = 0 .. N-1) { S1: a[i] = 1.0; } })",
                 fusion::FusionModel::kSmartfuse);
  // Single loop: below min_band_depth.
  EXPECT_EQ(b.tile({.tile_size = 8}), 0u);
}

TEST(Tiling, RejectsSillyTileSize) {
  auto b = build(kMatmulLike, fusion::FusionModel::kSmartfuse);
  TilingOptions opts;
  opts.tile_size = 1;
  EXPECT_THROW(b.tile(opts), Error);
}

TEST(Tiling, ImprovesCacheBehaviorOnMatmul) {
  // The classic: untiled matmul streams B column-wise through the cache;
  // tiled matmul keeps a tile of B resident. Compare L2 misses at a size
  // where a row of B exceeds L1 but a tile set fits L2.
  auto plain = build(kMatmulLike, fusion::FusionModel::kSmartfuse);
  auto tiled = build(kMatmulLike, fusion::FusionModel::kSmartfuse);
  ASSERT_GT(tiled.tile({.tile_size = 32}), 0u);
  const i64 n = 192;  // 3 arrays x 288KB
  exec::ArrayStore a(plain.scop(), {n}), c(tiled.scop(), {n});
  const machine::ModelReport rp = machine::evaluate(*plain.ast, a);
  const machine::ModelReport rt = machine::evaluate(*tiled.ast, c);
  EXPECT_LT(rt.cache.misses[1], rp.cache.misses[1] / 2)
      << "tiling should cut L2 misses decisively";
}

}  // namespace
}  // namespace pf::codegen
