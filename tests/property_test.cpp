// Cross-cutting randomized property tests for the math foundations:
//  * Farkas linearization is exact: the generated constraint system on the
//    unknowns accepts exactly those coefficient vectors for which the
//    affine form is non-negative over the polyhedron (checked by
//    enumeration on boxed instances).
//  * remove_redundant() preserves set membership.
//  * lexmin() agrees with brute-force lexicographic search.
//  * permutable_bands() never groups a level that breaks a satisfied
//    dependence's non-negativity.
//  * the independent verifier (src/verify) is consistent with the
//    scheduler's own legality bookkeeping (annotate_dependences) as a
//    differential oracle over random programs and schedules.
#include <gtest/gtest.h>

#include <random>

#include "ddg/dependences.h"
#include "frontend/parser.h"
#include "fusion/models.h"
#include "lp/simplex.h"
#include "poly/set.h"
#include "sched/analysis.h"
#include "sched/farkas.h"
#include "sched/pluto.h"
#include "suite/synthetic.h"
#include "verify/verify.h"

namespace pf {
namespace {

// ---------------------------------------------------------------------------
// Farkas exactness.
// ---------------------------------------------------------------------------

class FarkasExactness : public ::testing::TestWithParam<unsigned> {};

TEST_P(FarkasExactness, MatchesUniversalCheck) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<i64> coef(-2, 2);
  std::uniform_int_distribution<i64> cst(0, 4);

  // P: a random non-empty subset of the box [0,B]^2.
  const i64 kBox = 4;
  poly::IntegerSet p(2);
  for (std::size_t d = 0; d < 2; ++d) {
    p.add_constraint(poly::Constraint::ge(poly::AffineExpr::var(2, d),
                                          poly::AffineExpr::constant(2, 0)));
    p.add_constraint(poly::Constraint::le(poly::AffineExpr::var(2, d),
                                          poly::AffineExpr::constant(2, kBox)));
  }
  // One random extra constraint that keeps the origin feasible.
  {
    poly::AffineExpr e(2, cst(rng));
    e.set_coeff(0, coef(rng));
    e.set_coeff(1, coef(rng));
    p.add_constraint(poly::Constraint::ge0(e));
  }
  ASSERT_FALSE(p.is_empty());

  // E(x) = (y0) * x0 + (y1) * x1 + y2, unknowns y = (y0, y1, y2).
  std::vector<sched::ParamAffine> coeffs(2, sched::ParamAffine(3));
  coeffs[0].coeffs = {1, 0, 0};
  coeffs[1].coeffs = {0, 1, 0};
  sched::ParamAffine constant(3);
  constant.coeffs = {0, 0, 1};
  const auto system = sched::farkas_constraints(p, coeffs, constant, 3);

  // For every small y: the Farkas system accepts y iff min E(x) >= 0 over
  // the RATIONAL polytope (the affine Farkas lemma is exact over the
  // rationals; fractional vertices make integer enumeration insufficient).
  for (i64 y0 = -2; y0 <= 2; ++y0) {
    for (i64 y1 = -2; y1 <= 2; ++y1) {
      for (i64 y2 = -3; y2 <= 3; ++y2) {
        const IntVector y = {y0, y1, y2};
        bool farkas_ok = true;
        for (const poly::Constraint& c : system) {
          const i64 v = c.expr.eval(y);
          if (c.is_equality ? v != 0 : v < 0) {
            farkas_ok = false;
            break;
          }
        }
        lp::SimplexSolver solver = lp::SimplexSolver::all_free(2);
        for (const poly::Constraint& c : p.constraints()) {
          RatVector coeffs = {Rational(c.expr.coeff(0)),
                              Rational(c.expr.coeff(1))};
          if (c.is_equality)
            solver.add_equality(std::move(coeffs),
                                Rational(c.expr.const_term()));
          else
            solver.add_inequality(std::move(coeffs),
                                  Rational(c.expr.const_term()));
        }
        const auto mn = solver.minimize({Rational(y0), Rational(y1)});
        ASSERT_EQ(mn.status, lp::Status::kOptimal);
        const bool universal = mn.objective + Rational(y2) >= Rational(0);
        EXPECT_EQ(farkas_ok, universal)
            << "seed " << GetParam() << " y=(" << y0 << "," << y1 << ","
            << y2 << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FarkasExactness, ::testing::Range(0u, 15u));

// ---------------------------------------------------------------------------
// Redundancy removal preserves membership.
// ---------------------------------------------------------------------------

class RedundancyRemoval : public ::testing::TestWithParam<unsigned> {};

TEST_P(RedundancyRemoval, MembershipUnchanged) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<i64> coef(-3, 3);
  std::uniform_int_distribution<i64> cst(-4, 8);

  poly::IntegerSet s(2);
  for (std::size_t d = 0; d < 2; ++d) {
    s.add_constraint(poly::Constraint::ge(poly::AffineExpr::var(2, d),
                                          poly::AffineExpr::constant(2, -5)));
    s.add_constraint(poly::Constraint::le(poly::AffineExpr::var(2, d),
                                          poly::AffineExpr::constant(2, 5)));
  }
  for (int k = 0; k < 5; ++k) {
    poly::AffineExpr e(2, cst(rng));
    e.set_coeff(0, coef(rng));
    e.set_coeff(1, coef(rng));
    s.add_constraint(poly::Constraint::ge0(e));
  }
  poly::IntegerSet reduced = s;
  reduced.remove_redundant();
  EXPECT_LE(reduced.num_constraints(), s.num_constraints());
  for (i64 x = -6; x <= 6; ++x)
    for (i64 y = -6; y <= 6; ++y)
      EXPECT_EQ(s.contains({x, y}), reduced.contains({x, y}))
          << "seed " << GetParam() << " point (" << x << "," << y << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedundancyRemoval, ::testing::Range(0u, 20u));

// ---------------------------------------------------------------------------
// Lexicographic minimization vs brute force.
// ---------------------------------------------------------------------------

class LexminProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(LexminProperty, MatchesBruteForce) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<i64> coef(-3, 3);
  std::uniform_int_distribution<i64> cst(-4, 8);

  const i64 kLo = -3, kHi = 3;
  lp::IlpProblem p = lp::IlpProblem::all_free(2);
  p.add_lower_bound(0, kLo);
  p.add_upper_bound(0, kHi);
  p.add_lower_bound(1, kLo);
  p.add_upper_bound(1, kHi);
  std::vector<IntVector> rows;
  std::vector<i64> consts;
  for (int k = 0; k < 3; ++k) {
    IntVector c = {coef(rng), coef(rng)};
    const i64 b = cst(rng);
    p.add_inequality(c, b);
    rows.push_back(c);
    consts.push_back(b);
  }
  // lexmin of (x, then y).
  const auto r = p.lexmin({{1, 0}, {0, 1}});

  bool found = false;
  IntVector best;
  for (i64 x = kLo; x <= kHi && !found; ++x) {
    for (i64 y = kLo; y <= kHi; ++y) {
      bool ok = true;
      for (std::size_t k = 0; k < rows.size() && ok; ++k)
        ok = rows[k][0] * x + rows[k][1] * y + consts[k] >= 0;
      if (ok) {
        best = {x, y};
        found = true;
        break;  // smallest y for this (smallest feasible) x
      }
    }
  }
  if (!found) {
    EXPECT_EQ(r.status, lp::IlpStatus::kInfeasible) << "seed " << GetParam();
  } else {
    ASSERT_EQ(r.status, lp::IlpStatus::kOptimal) << "seed " << GetParam();
    EXPECT_EQ(r.point, best) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LexminProperty, ::testing::Range(0u, 30u));

// ---------------------------------------------------------------------------
// Permutable bands are sound.
// ---------------------------------------------------------------------------

TEST(PermutableBands, SeidelBreaksMatmulDoesNot) {
  {
    // Matmul: one fully permutable 3-d band.
    const ir::Scop scop = frontend::parse_scop(R"(
      scop mm(N) { context N >= 4;
        array A[N][N]; array B[N][N]; array C[N][N];
        for (i = 0 .. N-1) { for (j = 0 .. N-1) { for (k = 0 .. N-1) {
          S1: C[i][j] = C[i][j] + A[i][k]*B[k][j]; } } } })");
    const auto dg = ddg::DependenceGraph::analyze(scop);
    auto policy = fusion::make_policy(fusion::FusionModel::kSmartfuse);
    const auto sch = sched::compute_schedule(scop, dg, *policy);
    const auto bands = sched::permutable_bands(sch, dg);
    ASSERT_EQ(bands.size(), 3u);
    EXPECT_EQ(bands[0], bands[1]);
    EXPECT_EQ(bands[1], bands[2]);
  }
  {
    // A dependence satisfied at level 0 with a NEGATIVE level-1 component
    // must split the band: a[i][j] = a[i-1][j+1].
    const ir::Scop scop = frontend::parse_scop(R"(
      scop sk(N) { context N >= 4;
        array a[N+2][N+2];
        for (i = 1 .. N) { for (j = 1 .. N) {
          S1: a[i][j] = a[i-1][j+1] * 0.5; } } })");
    const auto dg = ddg::DependenceGraph::analyze(scop);
    auto policy = fusion::make_policy(fusion::FusionModel::kSmartfuse);
    const auto sch = sched::compute_schedule(scop, dg, *policy);
    const auto bands = sched::permutable_bands(sch, dg);
    // However the scheduler chose the rows, grouping both levels into one
    // band is only allowed if the satisfied dep keeps min >= 0 at the
    // inner level -- verify the reported banding against that definition.
    std::vector<std::size_t> linear;
    for (std::size_t l = 0; l < sch.num_levels(); ++l)
      if (sch.level_linear[l]) linear.push_back(l);
    ASSERT_EQ(bands.size(), linear.size());
    for (std::size_t k = 1; k < linear.size(); ++k) {
      if (bands[k] != bands[k - 1]) continue;
      for (std::size_t i = 0; i < dg.deps().size(); ++i) {
        if (sch.satisfied_at[i] != linear[k - 1]) continue;
        const ddg::Dependence& d = dg.deps()[i];
        const auto mn = d.poly.integer_min(
            d.lift_dst(sch.rows[d.dst][linear[k]]) -
            d.lift_src(sch.rows[d.src][linear[k]]));
        EXPECT_TRUE(mn.kind == poly::IntegerSet::Opt::kOk && mn.value >= 0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Differential legality oracle: verifier vs annotate_dependences.
//
// The scheduler's bookkeeping enforces *constructive* legality: at each
// level the schedule difference must be non-negative over the whole
// dependence polyhedron until the dependence is strongly satisfied. The
// verifier checks exact lexicographic positivity, which is strictly
// weaker (e.g. loop reversal below a satisfied level passes the verifier
// but not the constructive check). So the properties are implications,
// not equivalences:
//   (1) annotate_dependences accepts  =>  verifier reports ok;
//   (2) verifier reports a legality/unsatisfied finding
//                                     =>  annotate_dependences throws.
// ---------------------------------------------------------------------------

class VerifierDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(VerifierDifferential, AcceptedSchedulesVerifyAndCorruptedAgree) {
  const std::string src = suite::synthetic_program(GetParam());
  SCOPED_TRACE(src);
  const ir::Scop scop = frontend::parse_scop(src);
  const auto dg = ddg::DependenceGraph::analyze(scop);

  for (int m = 0; m < 4; ++m) {
    auto policy = fusion::make_policy(static_cast<fusion::FusionModel>(m));
    sched::Schedule sch = sched::compute_schedule(scop, dg, *policy);

    // (1) The scheduler's own output passes its constructive check, so
    // the weaker exact check must pass too.
    const verify::Report good = verify::check_legality(dg, sch);
    EXPECT_TRUE(good.ok()) << "model " << m << ":\n" << good.to_string(&scop);

    // Corrupt one linear row per statement by negation and compare
    // verdicts via implication (2).
    sched::Schedule bad = sch;
    for (std::size_t s = 0; s < bad.num_statements(); ++s)
      for (std::size_t l = 0; l < bad.num_levels(); ++l)
        if (bad.level_linear[l] && !bad.rows[s][l].is_constant()) {
          bad.rows[s][l] = -bad.rows[s][l];
          break;
        }
    const verify::Report r = verify::check_legality(dg, bad);
    bool annotate_throws = false;
    try {
      sched::annotate_dependences(bad, dg);
    } catch (const std::exception&) {
      annotate_throws = true;
    }
    if (!r.ok()) {
      EXPECT_TRUE(annotate_throws)
          << "model " << m
          << ": verifier found violations but annotate accepted:\n"
          << r.to_string(&scop);
    }
    if (!annotate_throws) {
      EXPECT_TRUE(r.ok()) << "model " << m
                          << ": annotate accepted but verifier objected:\n"
                          << r.to_string(&scop);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierDifferential, ::testing::Range(0u, 12u));

}  // namespace
}  // namespace pf
