// Tests for the Pluto-style scheduler and the fusion policies, on the
// paper's own examples (gemver Fig. 1/3, advect Fig. 4/6) plus legality
// property tests over every policy.
#include <gtest/gtest.h>

#include "ddg/dependences.h"
#include "frontend/parser.h"
#include "fusion/models.h"
#include "sched/farkas.h"
#include "sched/pluto.h"

namespace pf::sched {
namespace {

using fusion::FusionModel;

// Legality property: every real dependence must be lexicographically
// positive under the schedule -- strongly satisfied at its satisfaction
// level, with zero difference at all earlier levels' minima >= 0.
void expect_legal(const ir::Scop& scop, const ddg::DependenceGraph& dg,
                  const Schedule& sch) {
  ASSERT_EQ(sch.satisfied_at.size(), dg.deps().size());
  for (std::size_t i = 0; i < dg.deps().size(); ++i) {
    const ddg::Dependence& d = dg.deps()[i];
    ASSERT_NE(sch.satisfied_at[i], SIZE_MAX)
        << "dependence " << scop.statement(d.src).name() << " -> "
        << scop.statement(d.dst).name() << " never satisfied";
    const std::size_t sat = sch.satisfied_at[i];
    for (std::size_t l = 0; l <= sat; ++l) {
      const poly::AffineExpr diff =
          d.lift_dst(sch.rows[d.dst][l]) - d.lift_src(sch.rows[d.src][l]);
      const auto mn = d.poly.integer_min(diff);
      ASSERT_EQ(mn.kind, poly::IntegerSet::Opt::kOk);
      if (l < sat)
        EXPECT_GE(mn.value, 0) << "level " << l;
      else
        EXPECT_GE(mn.value, 1) << "satisfaction level " << l;
    }
  }
}

Schedule run_model(const ir::Scop& scop, const ddg::DependenceGraph& dg,
                   FusionModel m) {
  auto policy = fusion::make_policy(m);
  return compute_schedule(scop, dg, *policy);
}

// ---------------------------------------------------------------------------
// Farkas lemma unit tests.
// ---------------------------------------------------------------------------

TEST(Farkas, NonNegativityOnASegment) {
  // P = { x : 0 <= x <= 10 }; E(x) = a*x + b >= 0 on P  iff  b >= 0 and
  // 10a + b >= 0. Check a few instantiations against the generated system.
  poly::IntegerSet p(1);
  p.add_constraint(poly::Constraint::ge0(poly::AffineExpr::var(1, 0)));
  p.add_constraint(poly::Constraint::ge0(
      poly::AffineExpr::constant(1, 10) - poly::AffineExpr::var(1, 0)));
  // Unknowns y = (a, b); E coeff of x is a, const is b.
  ParamAffine coeff(2), cst(2);
  coeff.coeffs = {1, 0};
  cst.coeffs = {0, 1};
  const auto cs = farkas_constraints(p, {coeff}, cst, 2);
  ASSERT_FALSE(cs.empty());
  auto ok = [&](i64 a, i64 b) {
    for (const poly::Constraint& c : cs) {
      const i64 v = c.expr.eval({a, b});
      if (c.is_equality ? v != 0 : v < 0) return false;
    }
    return true;
  };
  EXPECT_TRUE(ok(0, 0));
  EXPECT_TRUE(ok(1, 0));
  EXPECT_TRUE(ok(-1, 10));
  EXPECT_FALSE(ok(-1, 5));  // at x=10: -10+5 < 0
  EXPECT_FALSE(ok(0, -1));
}

TEST(Farkas, HandlesEqualitiesInP) {
  // P = { (x, y) : x == y, 0 <= x <= 5 }. E = a*x - a*y is 0 on P for any
  // a; E = x - y + b needs b >= 0.
  poly::IntegerSet p(2);
  p.add_constraint(poly::Constraint::eq(poly::AffineExpr::var(2, 0),
                                        poly::AffineExpr::var(2, 1)));
  p.add_constraint(poly::Constraint::ge0(poly::AffineExpr::var(2, 0)));
  p.add_constraint(poly::Constraint::ge0(
      poly::AffineExpr::constant(2, 5) - poly::AffineExpr::var(2, 0)));
  // Unknown y = (b); E = x - y + b.
  ParamAffine cx(1), cy(1), cst(1);
  cx.constant = 1;
  cy.constant = -1;
  cst.coeffs = {1};
  const auto cs = farkas_constraints(p, {cx, cy}, cst, 1);
  auto ok = [&](i64 b) {
    for (const poly::Constraint& c : cs) {
      const i64 v = c.expr.eval({b});
      if (c.is_equality ? v != 0 : v < 0) return false;
    }
    return true;
  };
  EXPECT_TRUE(ok(0));
  EXPECT_TRUE(ok(3));
  EXPECT_FALSE(ok(-1));
}

// ---------------------------------------------------------------------------
// Scheduler on tiny programs.
// ---------------------------------------------------------------------------

TEST(Scheduler, SingleStatementIdentityLike) {
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N][N];
      for (i = 0 .. N-1) { for (j = 0 .. N-1) {
        S1: a[i][j] = a[i][j] * 2.0; } } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  EXPECT_TRUE(dg.deps().empty());
  const Schedule sch = run_model(scop, dg, FusionModel::kSmartfuse);
  // Two linear levels, no scalar dims needed.
  ASSERT_EQ(sch.num_levels(), 2u);
  EXPECT_TRUE(sch.level_linear[0]);
  EXPECT_TRUE(sch.level_linear[1]);
  // Both levels parallel (no deps at all).
  EXPECT_TRUE(sch.is_parallel_for({0}, 0));
  EXPECT_TRUE(sch.is_parallel_for({0}, 1));
}

TEST(Scheduler, StencilGetsSequentialOuterLoop) {
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N];
      for (i = 1 .. N-1) { S1: a[i] = a[i-1] * 0.5; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const Schedule sch = run_model(scop, dg, FusionModel::kSmartfuse);
  expect_legal(scop, dg, sch);
  ASSERT_EQ(sch.num_levels(), 1u);
  EXPECT_TRUE(sch.level_linear[0]);
  EXPECT_FALSE(sch.is_parallel_for({0}, 0));  // carries the flow dep
}

TEST(Scheduler, ProducerConsumerFusesWithTextualOrder) {
  // S1: a[i] = ...; S2: b[i] = a[i]: fusable; the loop-independent dep is
  // satisfied by a trailing scalar level (body order), not distribution.
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N]; array b[N];
      for (i = 0 .. N-1) { S1: a[i] = 1.0; }
      for (i = 0 .. N-1) { S2: b[i] = a[i] + 1.0; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const Schedule sch = run_model(scop, dg, FusionModel::kSmartfuse);
  expect_legal(scop, dg, sch);
  // Fused: same outer partition.
  const auto parts = sch.outer_partitions();
  EXPECT_EQ(parts[0], parts[1]);
  // The fused loop is parallel.
  ASSERT_TRUE(sch.level_linear[0]);
  EXPECT_TRUE(sch.is_parallel_for({0, 1}, 0));
}

TEST(Scheduler, NofuseDistributesEverything) {
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N]; array b[N];
      for (i = 0 .. N-1) { S1: a[i] = 1.0; }
      for (i = 0 .. N-1) { S2: b[i] = a[i] + 1.0; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const Schedule sch = run_model(scop, dg, FusionModel::kNofuse);
  expect_legal(scop, dg, sch);
  const auto parts = sch.outer_partitions();
  EXPECT_NE(parts[0], parts[1]);
}

// ---------------------------------------------------------------------------
// gemver (paper Figures 1 and 3).
// ---------------------------------------------------------------------------

constexpr const char* kGemver = R"(
scop gemver(N) {
  context N >= 4;
  array A[N][N]; array B[N][N];
  array u1[N]; array v1[N]; array u2[N]; array v2[N];
  array x[N]; array y[N]; array w[N]; array z[N];
  for (i = 0 .. N-1) { for (j = 0 .. N-1) {
    S1: B[i][j] = A[i][j] + u1[i]*v1[j] + u2[i]*v2[j]; } }
  for (i = 0 .. N-1) { for (j = 0 .. N-1) {
    S2: x[i] = x[i] + 2.5*B[j][i]*y[j]; } }
  for (i = 0 .. N-1) {
    S3: x[i] = x[i] + z[i]; }
  for (i = 0 .. N-1) { for (j = 0 .. N-1) {
    S4: w[i] = w[i] + 1.5*B[i][j]*x[j]; } }
}
)";

TEST(Scheduler, GemverFusesS1S2WithInterchange) {
  const ir::Scop scop = frontend::parse_scop(kGemver);
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const Schedule sch = run_model(scop, dg, FusionModel::kSmartfuse);
  expect_legal(scop, dg, sch);

  // Paper Figure 3: S1 and S2 perfectly fused; S3 and S4 distributed
  // (partition vector (0, 0, 1, 2)). Our scheduler additionally fuses the
  // parallel outer loop across all four statements -- strictly more reuse,
  // same legality -- so Figure 3's scalar dimension appears one level in.
  const auto parts = sch.nest_partitions();
  EXPECT_EQ(parts, (std::vector<int>{0, 0, 1, 2}));
  EXPECT_EQ(parts[0], parts[1]);
  EXPECT_NE(parts[1], parts[2]);
  EXPECT_NE(parts[2], parts[3]);
  EXPECT_NE(parts[1], parts[3]);

  // The fusion requires interchanging S1's loops: at the first linear
  // level, S1's hyperplane must be j (coeff on dim 1) while S2's is i
  // (coeff on dim 0).
  std::size_t first_linear = 0;
  while (!sch.level_linear[first_linear]) ++first_linear;
  const poly::AffineExpr& r1 = sch.rows[0][first_linear];
  const poly::AffineExpr& r2 = sch.rows[1][first_linear];
  EXPECT_EQ(r1.coeff(0), 0);
  EXPECT_EQ(r1.coeff(1), 1);
  EXPECT_EQ(r2.coeff(0), 1);
  EXPECT_EQ(r2.coeff(1), 0);
  // And the fused outer loop is parallel (communication-free).
  EXPECT_TRUE(sch.is_parallel_for({0, 1}, first_linear));
}

TEST(Scheduler, GemverWisefuseMatchesSmartfusePartitioning) {
  // Paper Section 5.3: wisefuse and smartfuse achieve identical fusion
  // partitioning on gemver.
  const ir::Scop scop = frontend::parse_scop(kGemver);
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const auto a = run_model(scop, dg, FusionModel::kWisefuse);
  const auto b = run_model(scop, dg, FusionModel::kSmartfuse);
  expect_legal(scop, dg, a);
  // Same grouping into nests (S1+S2 fused; S3, S4 apart). wisefuse
  // additionally distributes S4's reduction at the outermost level
  // (Algorithm 2's parallelism preservation), which smartfuse does not --
  // so nest partitions agree while outer partitions may differ.
  EXPECT_EQ(a.nest_partitions(), b.nest_partitions());
  EXPECT_EQ(a.nest_partitions()[0], a.nest_partitions()[1]);
}

// ---------------------------------------------------------------------------
// advect (paper Figures 4 and 6).
// ---------------------------------------------------------------------------

constexpr const char* kAdvect = R"(
scop advect(N) {
  context N >= 4;
  array wk1[N+2][N+2]; array wk2[N+2][N+2]; array wk4[N+2][N+2];
  array u[N+2][N+2]; array v[N+2][N+2];
  for (i = 1 .. N) { for (j = 1 .. N) {
    S1: wk1[i][j] = u[i][j] + u[i][j+1]; } }
  for (i = 1 .. N) { for (j = 1 .. N) {
    S2: wk2[i][j] = v[i][j] + v[i+1][j]; } }
  for (i = 1 .. N) { for (j = 1 .. N) {
    S3: wk4[i][j] = wk1[i][j] + wk2[i][j]; } }
  for (i = 1 .. N) { for (j = 1 .. N) {
    S4: u[i][j] = wk4[i][j] - wk4[i][j+1] + wk4[i+1][j]; } }
}
)";

TEST(Scheduler, AdvectMaxfuseLosesOuterParallelism) {
  // Figure 4(c): full fusion is legal only with shifting, and the outer
  // loop becomes a forward-dependence (pipelined) loop.
  const ir::Scop scop = frontend::parse_scop(kAdvect);
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const Schedule sch = run_model(scop, dg, FusionModel::kMaxfuse);
  expect_legal(scop, dg, sch);
  const auto parts = sch.outer_partitions();
  // Everything in one nest.
  EXPECT_EQ(parts[0], parts[3]);
  // ... but the outermost loop is not parallel for the full group.
  std::size_t first_linear = 0;
  while (!sch.level_linear[first_linear]) ++first_linear;
  EXPECT_FALSE(sch.is_parallel_for({0, 1, 2, 3}, first_linear));
}

TEST(Scheduler, AdvectWisefuseCutsS4AndStaysParallel) {
  // Figure 6: wisefuse keeps S1-S3 fused (parallel) and distributes S4.
  const ir::Scop scop = frontend::parse_scop(kAdvect);
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const Schedule sch = run_model(scop, dg, FusionModel::kWisefuse);
  expect_legal(scop, dg, sch);
  const auto parts = sch.outer_partitions();
  EXPECT_EQ(parts[0], parts[1]);
  EXPECT_EQ(parts[1], parts[2]);
  EXPECT_NE(parts[2], parts[3]);
  std::size_t first_linear = 0;
  while (!sch.level_linear[first_linear]) ++first_linear;
  EXPECT_TRUE(sch.is_parallel_for({0, 1, 2}, first_linear));
  EXPECT_TRUE(sch.is_parallel_for({3}, first_linear));
}

// ---------------------------------------------------------------------------
// Every model must produce a legal schedule on every program.
// ---------------------------------------------------------------------------

class AllModelsLegal
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(AllModelsLegal, ScheduleIsLegal) {
  const ir::Scop scop = frontend::parse_scop(std::get<1>(GetParam()));
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const Schedule sch =
      run_model(scop, dg, static_cast<FusionModel>(std::get<0>(GetParam())));
  expect_legal(scop, dg, sch);
  // Structure invariants: all statements have rows at every level.
  for (std::size_t s = 0; s < scop.num_statements(); ++s)
    EXPECT_EQ(sch.rows[s].size(), sch.num_levels());
}

constexpr const char* kPrograms[] = {
    // producer-consumer chain
    R"(scop t(N) { context N >= 4; array a[N]; array b[N]; array c[N];
       for (i = 0 .. N-1) { a[i] = 1.0; }
       for (i = 0 .. N-1) { b[i] = a[i] + 1.0; }
       for (i = 0 .. N-1) { c[i] = b[i] * 2.0; } })",
    // reversal-free stencil chain with shifts
    R"(scop t(N) { context N >= 4; array a[N+2]; array b[N+2];
       for (i = 1 .. N) { a[i] = b[i-1] + b[i+1]; }
       for (i = 1 .. N) { b[i] = a[i] * 0.5; } })",
    // triangular (lu-like)
    R"(scop t(N) { context N >= 3; array A[N][N];
       for (k = 0 .. N-2) {
         for (i = k+1 .. N-1) { A[i][k] = A[i][k] / A[k][k]; }
         for (i = k+1 .. N-1) { for (j = k+1 .. N-1) {
           A[i][j] = A[i][j] - A[i][k] * A[k][j]; } }
       } })",
    // mixed dimensionality
    R"(scop t(N) { context N >= 4; array a[N]; array B[N][N];
       for (i = 0 .. N-1) { a[i] = 2.0; }
       for (i = 0 .. N-1) { for (j = 0 .. N-1) { B[i][j] = a[i] + a[j]; } }
       for (i = 0 .. N-1) { a[i] = B[i][i]; } })",
};

INSTANTIATE_TEST_SUITE_P(
    ModelsTimesPrograms, AllModelsLegal,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::ValuesIn(kPrograms)));

// ---------------------------------------------------------------------------
// Wisefuse pre-fusion order (Algorithm 1) unit behavior.
// ---------------------------------------------------------------------------

TEST(Wisefuse, OrdersRarNeighborsConsecutively) {
  // S1 and S3 read the same array c (RAR reuse) and have the same dim;
  // S2 is unrelated 2-d. Algorithm 1 pulls S3 right after S1.
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N]; array b[N]; array c[N];
      array D[N][N];
      for (i = 0 .. N-1) { S1: a[i] = c[i]; }
      for (i = 0 .. N-1) { for (j = 0 .. N-1) { S2: D[i][j] = 1.0; } }
      for (i = 0 .. N-1) { S3: b[i] = c[i] * 2.0; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const auto sccs = dg.sccs();
  const auto order = fusion::wisefuse_prefusion_order(scop, dg, sccs, {});
  // Positions of S1's and S3's SCCs must be adjacent, before S2's.
  std::vector<std::size_t> pos(sccs.num_sccs());
  for (std::size_t p = 0; p < order.size(); ++p) pos[order[p]] = p;
  const auto p1 = pos[static_cast<std::size_t>(sccs.scc_of[0])];
  const auto p2 = pos[static_cast<std::size_t>(sccs.scc_of[1])];
  const auto p3 = pos[static_cast<std::size_t>(sccs.scc_of[2])];
  EXPECT_EQ(p3, p1 + 1);
  EXPECT_GT(p2, p3);
}

TEST(Wisefuse, RarDisabledKeepsOriginalOrder) {
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N]; array b[N]; array c[N];
      array D[N][N];
      for (i = 0 .. N-1) { S1: a[i] = c[i]; }
      for (i = 0 .. N-1) { for (j = 0 .. N-1) { S2: D[i][j] = 1.0; } }
      for (i = 0 .. N-1) { S3: b[i] = c[i] * 2.0; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const auto sccs = dg.sccs();
  fusion::WisefuseOptions opts;
  opts.use_rar = false;
  const auto order = fusion::wisefuse_prefusion_order(scop, dg, sccs, opts);
  // No reuse edges at all here without RAR: program order retained.
  std::vector<std::size_t> pos(sccs.num_sccs());
  for (std::size_t p = 0; p < order.size(); ++p) pos[order[p]] = p;
  EXPECT_LT(pos[static_cast<std::size_t>(sccs.scc_of[0])],
            pos[static_cast<std::size_t>(sccs.scc_of[1])]);
  EXPECT_LT(pos[static_cast<std::size_t>(sccs.scc_of[1])],
            pos[static_cast<std::size_t>(sccs.scc_of[2])]);
}

TEST(Wisefuse, PrecedenceConstraintBlocksReordering) {
  // S3 reuses with S1 but depends on S2 (unvisited when S1 is seeded), so
  // it must NOT be pulled ahead of S2.
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N]; array b[N]; array c[N];
      array D[N][N];
      for (i = 0 .. N-1) { S1: a[i] = c[i]; }
      for (i = 0 .. N-1) { for (j = 0 .. N-1) { S2: D[i][j] = 3.0; } }
      for (i = 0 .. N-1) { S3: b[i] = c[i] + D[i][i]; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const auto sccs = dg.sccs();
  const auto order = fusion::wisefuse_prefusion_order(scop, dg, sccs, {});
  std::vector<std::size_t> pos(sccs.num_sccs());
  for (std::size_t p = 0; p < order.size(); ++p) pos[order[p]] = p;
  EXPECT_LT(pos[static_cast<std::size_t>(sccs.scc_of[1])],
            pos[static_cast<std::size_t>(sccs.scc_of[2])]);
}

}  // namespace
}  // namespace pf::sched
