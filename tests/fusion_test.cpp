// Tests for the fusion policies themselves: Algorithm 1 ablations, policy
// metadata, and the cut recipes.
#include <gtest/gtest.h>

#include "ddg/dependences.h"
#include "frontend/parser.h"
#include "fusion/models.h"
#include "sched/pluto.h"

namespace pf::fusion {
namespace {

TEST(Models, NamesAndFactory) {
  EXPECT_STREQ(to_string(FusionModel::kWisefuse), "wisefuse");
  EXPECT_STREQ(to_string(FusionModel::kSmartfuse), "smartfuse");
  EXPECT_STREQ(to_string(FusionModel::kNofuse), "nofuse");
  EXPECT_STREQ(to_string(FusionModel::kMaxfuse), "maxfuse");
  for (int m = 0; m < 4; ++m) {
    auto p = make_policy(static_cast<FusionModel>(m));
    ASSERT_NE(p, nullptr);
    EXPECT_STREQ(p->name().c_str(), to_string(static_cast<FusionModel>(m)));
  }
}

TEST(Models, OnlyWisefuseEnforcesOuterParallelism) {
  EXPECT_TRUE(make_policy(FusionModel::kWisefuse)->enforce_outer_parallelism());
  EXPECT_FALSE(
      make_policy(FusionModel::kSmartfuse)->enforce_outer_parallelism());
  EXPECT_FALSE(make_policy(FusionModel::kNofuse)->enforce_outer_parallelism());
  EXPECT_FALSE(make_policy(FusionModel::kMaxfuse)->enforce_outer_parallelism());
  WisefuseOptions opts;
  opts.enforce_outer_parallelism = false;
  EXPECT_FALSE(make_wisefuse(opts)->enforce_outer_parallelism());
}

TEST(CutRecipes, CutAllAndBoundary) {
  EXPECT_EQ(sched::cut_all(4), (std::vector<i64>{0, 1, 2, 3}));
  EXPECT_EQ(sched::cut_at_boundary(4, 1), (std::vector<i64>{0, 1, 1, 1}));
  EXPECT_EQ(sched::cut_at_boundary(4, 3), (std::vector<i64>{0, 0, 0, 1}));
  EXPECT_THROW(sched::cut_at_boundary(4, 0), Error);
  EXPECT_THROW(sched::cut_at_boundary(4, 4), Error);
}

// A program whose wisefuse order depends on every Algorithm-1 ingredient:
// S1 (1-d) and S4 (1-d) share only a RAR edge; S2 is an unrelated 2-d
// statement between them; S3 (1-d) depends on S2.
constexpr const char* kProgram = R"(
  scop t(N) { context N >= 4;
    array a[N]; array b[N]; array c[N]; array d[N]; array E[N][N];
    for (i = 0 .. N-1) { S1: a[i] = c[i] + 1.0; }
    for (i = 0 .. N-1) { for (j = 0 .. N-1) { S2: E[i][j] = 2.0; } }
    for (i = 0 .. N-1) { S3: d[i] = E[i][i] + c[i]; }
    for (i = 0 .. N-1) { S4: b[i] = c[i] * 3.0; }
  })";

std::vector<std::size_t> positions(const ir::Scop& scop,
                                   const ddg::DependenceGraph& dg,
                                   const WisefuseOptions& opts) {
  const auto sccs = dg.sccs();
  const auto order = wisefuse_prefusion_order(scop, dg, sccs, opts);
  std::vector<std::size_t> pos_of_scc(sccs.num_sccs());
  for (std::size_t p = 0; p < order.size(); ++p) pos_of_scc[order[p]] = p;
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < scop.num_statements(); ++s)
    out.push_back(pos_of_scc[static_cast<std::size_t>(sccs.scc_of[s])]);
  return out;
}

TEST(Algorithm1, FullOptionsPullRarNeighborForward) {
  const ir::Scop scop = frontend::parse_scop(kProgram);
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const auto pos = positions(scop, dg, WisefuseOptions{});
  // S4 ordered right after S1 (RAR on c, same dim, precedence fine).
  EXPECT_EQ(pos[3], pos[0] + 1);
  // S3 cannot move before S2 (flow dep).
  EXPECT_GT(pos[2], pos[1]);
}

TEST(Algorithm1, AblationNoRarKeepsProgramOrder) {
  const ir::Scop scop = frontend::parse_scop(kProgram);
  const auto dg = ddg::DependenceGraph::analyze(scop);
  WisefuseOptions opts;
  opts.use_rar = false;
  const auto pos = positions(scop, dg, opts);
  // Without RAR edges S4 has no reuse with S1: stays last.
  EXPECT_EQ(pos[3], 3u);
}

TEST(Algorithm1, AblationNoDimCheckStillRespectsPrecedence) {
  const ir::Scop scop = frontend::parse_scop(kProgram);
  const auto dg = ddg::DependenceGraph::analyze(scop);
  WisefuseOptions opts;
  opts.require_same_dim = false;
  const auto pos = positions(scop, dg, opts);
  // Precedence still holds for S2 -> S3.
  EXPECT_GT(pos[2], pos[1]);
}

TEST(Algorithm1, AblationNoReorderIsIdentity) {
  const ir::Scop scop = frontend::parse_scop(kProgram);
  const auto dg = ddg::DependenceGraph::analyze(scop);
  WisefuseOptions opts;
  opts.reorder = false;
  const auto sccs = dg.sccs();
  const auto order = wisefuse_prefusion_order(scop, dg, sccs, opts);
  for (std::size_t p = 0; p < order.size(); ++p) EXPECT_EQ(order[p], p);
}

TEST(Algorithm1, OrderIsAlwaysAValidPermutation) {
  for (const char* src : {kProgram, R"(
    scop u(N) { context N >= 4; array a[N]; array b[N];
      for (i = 1 .. N-1) { S1: a[i] = b[i-1] + 1.0; S2: b[i] = a[i] * 2.0; }
    })"}) {
    const ir::Scop scop = frontend::parse_scop(src);
    const auto dg = ddg::DependenceGraph::analyze(scop);
    const auto sccs = dg.sccs();
    const auto order = wisefuse_prefusion_order(scop, dg, sccs, {});
    std::vector<bool> seen(sccs.num_sccs(), false);
    for (const std::size_t id : order) {
      ASSERT_LT(id, sccs.num_sccs());
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
    }
  }
}

TEST(Algorithm1, SccsMoveAsAUnit) {
  // S1 and S2 form an SCC; the order must keep them in one position.
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N]; array b[N];
      for (i = 1 .. N-1) {
        S1: a[i] = b[i-1] + 1.0;
        S2: b[i] = a[i] * 2.0;
      }
      for (i = 0 .. N-1) { S3: a[i] = a[i] + 0.5; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const auto sccs = dg.sccs();
  EXPECT_EQ(sccs.scc_of[0], sccs.scc_of[1]);
  const auto order = wisefuse_prefusion_order(scop, dg, sccs, {});
  EXPECT_EQ(order.size(), sccs.num_sccs());
}

TEST(Ablation, Algorithm2OffAllowsPipelinedFusion) {
  // advect: with Algorithm 2 off, wisefuse behaves like maxfuse here
  // (full fusion with a shift; outer loop pipelined).
  const ir::Scop scop = frontend::parse_scop(R"(
scop advect(N) {
  context N >= 4;
  array wk1[N+2][N+2]; array wk2[N+2][N+2]; array wk4[N+2][N+2];
  array u[N+2][N+2]; array v[N+2][N+2];
  for (i = 1 .. N) { for (j = 1 .. N) { S1: wk1[i][j] = u[i][j] + u[i][j+1]; } }
  for (i = 1 .. N) { for (j = 1 .. N) { S2: wk2[i][j] = v[i][j] + v[i+1][j]; } }
  for (i = 1 .. N) { for (j = 1 .. N) { S3: wk4[i][j] = wk1[i][j] + wk2[i][j]; } }
  for (i = 1 .. N) { for (j = 1 .. N) {
    S4: u[i][j] = wk4[i][j] - wk4[i][j+1] + wk4[i+1][j]; } }
})");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  WisefuseOptions opts;
  opts.enforce_outer_parallelism = false;
  auto policy = make_wisefuse(opts);
  const auto sch = sched::compute_schedule(scop, dg, *policy);
  const auto parts = sch.nest_partitions();
  EXPECT_EQ(parts[0], parts[3]);  // fully fused
  std::size_t fl = 0;
  while (!sch.level_linear[fl]) ++fl;
  EXPECT_FALSE(sch.is_parallel_for({0, 1, 2, 3}, fl));

  WisefuseOptions on;
  auto policy_on = make_wisefuse(on);
  const auto sch_on = sched::compute_schedule(scop, dg, *policy_on);
  EXPECT_NE(sch_on.nest_partitions()[2], sch_on.nest_partitions()[3]);
}

}  // namespace
}  // namespace pf::fusion
