// Tests for dependence analysis and graph utilities, including a
// property test validating dependence polyhedra against brute-force
// instance-pair enumeration on small concrete domains.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

#include "ddg/dependences.h"
#include "ddg/graph.h"
#include "frontend/parser.h"
#include "suite/synthetic.h"

namespace pf::ddg {
namespace {

// ---------------------------------------------------------------------------
// Graph utilities.
// ---------------------------------------------------------------------------

TEST(Scc, SingleCycle) {
  // 0 -> 1 -> 2 -> 0 plus 2 -> 3.
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 0}, {2, 3}};
  for (auto algo : {kosaraju_sccs, tarjan_sccs}) {
    const SccResult r = algo(4, edges);
    EXPECT_EQ(r.num_sccs(), 2u);
    EXPECT_EQ(r.scc_of[0], r.scc_of[1]);
    EXPECT_EQ(r.scc_of[1], r.scc_of[2]);
    EXPECT_NE(r.scc_of[0], r.scc_of[3]);
    // Topological numbering: the cycle precedes vertex 3.
    EXPECT_LT(r.scc_of[0], r.scc_of[3]);
  }
}

TEST(Scc, DisconnectedVerticesAreSingletons) {
  const SccResult r = kosaraju_sccs(3, {});
  EXPECT_EQ(r.num_sccs(), 3u);
}

TEST(Scc, KosarajuMatchesTarjanOnRandomGraphs) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng() % 8;
    std::vector<Edge> edges;
    const std::size_t m = rng() % (2 * n + 1);
    for (std::size_t e = 0; e < m; ++e)
      edges.emplace_back(rng() % n, rng() % n);
    const SccResult a = kosaraju_sccs(n, edges);
    const SccResult b = tarjan_sccs(n, edges);
    ASSERT_EQ(a.num_sccs(), b.num_sccs()) << "trial " << trial;
    // Same partition: vertices grouped identically.
    for (std::size_t u = 0; u < n; ++u)
      for (std::size_t v = 0; v < n; ++v)
        EXPECT_EQ(a.scc_of[u] == a.scc_of[v], b.scc_of[u] == b.scc_of[v])
            << "trial " << trial;
  }
}

TEST(Graph, TopologicalOrderRespectsEdges) {
  const std::vector<Edge> edges{{2, 0}, {0, 1}, {2, 1}};
  const auto order = topological_order(3, edges);
  std::vector<std::size_t> pos(3);
  for (std::size_t i = 0; i < 3; ++i) pos[order[i]] = i;
  EXPECT_LT(pos[2], pos[0]);
  EXPECT_LT(pos[0], pos[1]);
}

TEST(Graph, TopologicalOrderThrowsOnCycle) {
  EXPECT_THROW(topological_order(2, {{0, 1}, {1, 0}}), Error);
}

TEST(Graph, CondensationEdges) {
  const std::vector<Edge> edges{{0, 1}, {1, 0}, {1, 2}, {0, 2}};
  const SccResult r = kosaraju_sccs(3, edges);
  const auto ce = condensation_edges(r, edges);
  ASSERT_EQ(ce.size(), 1u);  // {0,1} -> {2}, deduplicated
}

// ---------------------------------------------------------------------------
// Dependence analysis on hand-checked kernels.
// ---------------------------------------------------------------------------

// Count deps of a kind between two named statements.
int count_deps(const DependenceGraph& g, DepKind kind, const std::string& src,
               const std::string& dst) {
  int c = 0;
  const auto& list = kind == DepKind::kInput ? g.rar_deps() : g.deps();
  for (const Dependence& d : list) {
    if (d.kind != kind) continue;
    if (g.scop().statement(d.src).name() == src &&
        g.scop().statement(d.dst).name() == dst)
      ++c;
  }
  return c;
}

TEST(Dependences, FlowWithinStencilLoop) {
  // a[i] = a[i-1]: flow dep carried by the loop at depth 0.
  const ir::Scop s = frontend::parse_scop(R"(
    scop st(N) { context N >= 4; array a[N];
      for (i = 1 .. N-1) { S1: a[i] = a[i-1] * 0.5; } })");
  const auto g = DependenceGraph::analyze(s);
  ASSERT_GE(g.deps().size(), 1u);
  int flow_carried = 0;
  for (const Dependence& d : g.deps())
    if (d.kind == DepKind::kFlow && d.depth == 0 && d.src == 0 && d.dst == 0)
      ++flow_carried;
  EXPECT_EQ(flow_carried, 1);
}

TEST(Dependences, NoDepWhenDisjointArrays) {
  const ir::Scop s = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N]; array b[N];
      for (i = 0 .. N-1) { S1: a[i] = 1.0; }
      for (i = 0 .. N-1) { S2: b[i] = 2.0; } })");
  const auto g = DependenceGraph::analyze(s);
  EXPECT_TRUE(g.deps().empty());
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_reuse_edge(0, 1));
}

TEST(Dependences, LoopIndependentFlowAcrossNests) {
  // S1 writes a, S2 reads a in a later nest: flow at depth 0 (no shared
  // loops -> loop-independent case).
  const ir::Scop s = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N]; array b[N];
      for (i = 0 .. N-1) { S1: a[i] = 1.0; }
      for (i = 0 .. N-1) { S2: b[i] = a[i] + 1.0; } })");
  const auto g = DependenceGraph::analyze(s);
  EXPECT_EQ(count_deps(g, DepKind::kFlow, "S1", "S2"), 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  // No dependence case may run backwards in textual order here.
  EXPECT_EQ(count_deps(g, DepKind::kFlow, "S2", "S1"), 0);
}

TEST(Dependences, AntiAndOutputDetected) {
  const ir::Scop s = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N]; array b[N];
      for (i = 0 .. N-1) { S1: b[i] = a[i]; }
      for (i = 0 .. N-1) { S2: a[i] = 3.0; }
      for (i = 0 .. N-1) { S3: a[i] = 4.0; } })");
  const auto g = DependenceGraph::analyze(s);
  EXPECT_EQ(count_deps(g, DepKind::kAnti, "S1", "S2"), 1);
  EXPECT_EQ(count_deps(g, DepKind::kOutput, "S2", "S3"), 1);
}

TEST(Dependences, InputDepsKeptSeparately) {
  // S1 and S2 both read c: RAR edge, no DDG edge.
  const ir::Scop s = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N]; array b[N]; array c[N];
      for (i = 0 .. N-1) { S1: a[i] = c[i]; }
      for (i = 0 .. N-1) { S2: b[i] = c[i]; } })");
  const auto g = DependenceGraph::analyze(s);
  EXPECT_TRUE(g.deps().empty());
  EXPECT_EQ(count_deps(g, DepKind::kInput, "S1", "S2"), 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_reuse_edge(0, 1));
  EXPECT_TRUE(g.has_reuse_edge(1, 0));  // symmetric
}

TEST(Dependences, InputDepsCanBeDisabled) {
  const ir::Scop s = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N]; array b[N]; array c[N];
      for (i = 0 .. N-1) { S1: a[i] = c[i]; }
      for (i = 0 .. N-1) { S2: b[i] = c[i]; } })");
  AnalysisOptions opts;
  opts.compute_input_deps = false;
  const auto g = DependenceGraph::analyze(s, opts);
  EXPECT_TRUE(g.rar_deps().empty());
}

TEST(Dependences, GemverBackwardDependence) {
  // The paper's Figure 1: S1 writes B[i][j]; S2 reads B[j][i]. Within a
  // shared nest this would be fusion-preventing; across separate nests the
  // dependence is loop-independent S1 -> S2.
  const ir::Scop s = frontend::parse_scop(R"(
    scop g(N) { context N >= 4;
      array A[N][N]; array B[N][N]; array u1[N]; array v1[N];
      array x[N]; array y[N];
      for (i = 0 .. N-1) { for (j = 0 .. N-1) {
        S1: B[i][j] = A[i][j] + u1[i]*v1[j]; } }
      for (i = 0 .. N-1) { for (j = 0 .. N-1) {
        S2: x[i] = x[i] + B[j][i]*y[j]; } } })");
  const auto g = DependenceGraph::analyze(s);
  EXPECT_EQ(count_deps(g, DepKind::kFlow, "S1", "S2"), 1);
  // S1 and S2 are separate SCCs with an edge S1 -> S2.
  const SccResult sccs = g.sccs();
  EXPECT_EQ(sccs.num_sccs(), 2u);
  EXPECT_LT(sccs.scc_of[0], sccs.scc_of[1]);
}

TEST(Dependences, SelfOutputOnScalarLikeCell) {
  // a[0] accumulation: self output + flow + anti, all carried at depth 0.
  const ir::Scop s = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[1]; array b[N];
      for (i = 0 .. N-1) { S1: a[0] = a[0] + b[i]; } })");
  const auto g = DependenceGraph::analyze(s);
  EXPECT_EQ(count_deps(g, DepKind::kOutput, "S1", "S1"), 1);
  EXPECT_EQ(count_deps(g, DepKind::kFlow, "S1", "S1"), 1);
  EXPECT_EQ(count_deps(g, DepKind::kAnti, "S1", "S1"), 1);
}

TEST(Dependences, SccOfReductionCycle) {
  // S1 -> S2 -> S1 through arrays: one SCC.
  const ir::Scop s = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N]; array b[N];
      for (i = 1 .. N-1) {
        S1: a[i] = b[i-1] + 1.0;
        S2: b[i] = a[i] * 2.0;
      } })");
  const auto g = DependenceGraph::analyze(s);
  const SccResult sccs = g.sccs();
  EXPECT_EQ(sccs.num_sccs(), 1u);
}

TEST(Dependences, LiftHelpersMapSpacesCorrectly) {
  Dependence d;
  d.src_dim = 2;
  d.dst_dim = 1;
  d.num_params = 1;
  // src expr over [i, j, N]: i + 2N.
  poly::AffineExpr e(3);
  e.set_coeff(0, 1);
  e.set_coeff(2, 2);
  const auto ls = d.lift_src(e);
  EXPECT_EQ(ls.dims(), 4u);
  EXPECT_EQ(ls.coeff(0), 1);
  EXPECT_EQ(ls.coeff(3), 2);
  // dst expr over [k, N]: k - N.
  poly::AffineExpr f(2);
  f.set_coeff(0, 1);
  f.set_coeff(1, -1);
  const auto ld = d.lift_dst(f);
  EXPECT_EQ(ld.coeff(2), 1);
  EXPECT_EQ(ld.coeff(3), -1);
}

// ---------------------------------------------------------------------------
// Property test: dependence analysis vs brute-force instance enumeration.
//
// Build small 1-2 statement programs with random shifts, fix N = 6, and
// check: for every pair of instances (s, t) with s executed before t that
// touch the same cell (>= 1 write), SOME dependence polyhedron contains
// the pair, and every polyhedron point is a genuine conflicting pair.
// ---------------------------------------------------------------------------

class DepsVsBruteForce : public ::testing::TestWithParam<unsigned> {};

TEST_P(DepsVsBruteForce, ExactOnSmallDomains) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<i64> shift(-2, 2);
  const i64 kN = 6;

  // S1: a[i+s1] = a[i+s2] ...; S2: b[i] = a[i+s3]; single loop each, shared
  // program: two nests over 2..N-3 so shifted subscripts stay in bounds.
  const i64 s1 = shift(rng), s2 = shift(rng), s3 = shift(rng);
  std::ostringstream src;
  src << "scop t(N) { context N >= 6; array a[N+4]; array b[N+4];\n"
      << "for (i = 2 .. N-3) { S1: a[i+" << (s1 + 2) << "] = a[i+" << (s2 + 2)
      << "] * 0.5; }\n"
      << "for (i = 2 .. N-3) { S2: b[i+2] = a[i+" << (s3 + 2) << "]; } }";
  const ir::Scop scop = frontend::parse_scop(src.str());
  const auto g = DependenceGraph::analyze(scop);

  // Enumerate instance pairs. Execution order: all of S1's instances by i,
  // then all of S2's.
  struct Inst {
    int stmt;
    i64 i;
  };
  std::vector<Inst> order;
  for (i64 i = 2; i <= kN - 3; ++i) order.push_back({0, i});
  for (i64 i = 2; i <= kN - 3; ++i) order.push_back({1, i});

  auto cells = [&](int stmt, i64 i) {
    // Returns {write cell, read cell} on array a (array id 0); b ignored
    // (no sharing). Cell -1 means "no access".
    if (stmt == 0) return std::pair<i64, i64>{i + s1 + 2, i + s2 + 2};
    return std::pair<i64, i64>{-1, i + s3 + 2};
  };

  for (std::size_t x = 0; x < order.size(); ++x) {
    for (std::size_t y = x + 1; y < order.size(); ++y) {
      const auto [wx, rx] = cells(order[x].stmt, order[x].i);
      const auto [wy, ry] = cells(order[y].stmt, order[y].i);
      // Conflicting pairs with at least one write.
      const bool conflict = (wx >= 0 && wy >= 0 && wx == wy) ||
                            (wx >= 0 && wx == ry) || (rx >= 0 && rx == wy);
      if (!conflict) continue;
      // Some real dependence polyhedron must contain this pair.
      bool covered = false;
      for (const Dependence& d : g.deps()) {
        if (static_cast<int>(d.src) != order[x].stmt ||
            static_cast<int>(d.dst) != order[y].stmt)
          continue;
        const IntVector point{order[x].i, order[y].i, kN};
        if (d.poly.contains(point)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "seed " << GetParam() << ": uncovered pair S"
                           << order[x].stmt + 1 << "(" << order[x].i << ") -> S"
                           << order[y].stmt + 1 << "(" << order[y].i << ")";
    }
  }

  // Soundness of polyhedra: every integer point is a genuine conflict in
  // correct execution order.
  for (const Dependence& d : g.deps()) {
    for (i64 is = 2; is <= kN - 3; ++is) {
      for (i64 it = 2; it <= kN - 3; ++it) {
        if (!d.poly.contains({is, it, kN})) continue;
        // Execution order: same statement -> is < it; S1 before S2 always.
        if (d.src == d.dst)
          EXPECT_LT(is, it) << "seed " << GetParam();
        else
          EXPECT_LT(d.src, d.dst);
        const auto [ws, rs] = cells(static_cast<int>(d.src), is);
        const auto [wt, rt] = cells(static_cast<int>(d.dst), it);
        const bool conflict = (ws >= 0 && wt >= 0 && ws == wt) ||
                              (ws >= 0 && ws == rt) || (rs >= 0 && rs == wt);
        EXPECT_TRUE(conflict) << "seed " << GetParam();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShifts, DepsVsBruteForce,
                         ::testing::Range(0u, 25u));

// ---------------------------------------------------------------------------
// Parallel analysis determinism: the multi-threaded fan-out must produce a
// graph byte-identical to the serial path -- ids, ordering, kinds, depths
// and the dependence polyhedra themselves.
// ---------------------------------------------------------------------------

void expect_same_deps(const std::vector<Dependence>& a,
                      const std::vector<Dependence>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "dep " << i;
    EXPECT_EQ(a[i].src, b[i].src) << "dep " << i;
    EXPECT_EQ(a[i].dst, b[i].dst) << "dep " << i;
    EXPECT_EQ(a[i].src_access, b[i].src_access) << "dep " << i;
    EXPECT_EQ(a[i].dst_access, b[i].dst_access) << "dep " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "dep " << i;
    EXPECT_EQ(a[i].depth, b[i].depth) << "dep " << i;
    EXPECT_EQ(a[i].poly.to_string(), b[i].poly.to_string()) << "dep " << i;
  }
}

TEST(Dependences, ParallelAnalysisIsDeterministic) {
  for (const unsigned seed : {0u, 3u, 11u, 23u}) {
    const std::string src = suite::synthetic_program(seed);
    SCOPED_TRACE(src);
    const ir::Scop scop = frontend::parse_scop(src);
    AnalysisOptions serial;
    serial.jobs = 1;
    AnalysisOptions parallel;
    parallel.jobs = 4;
    const auto a = DependenceGraph::analyze(scop, serial);
    const auto b = DependenceGraph::analyze(scop, parallel);
    expect_same_deps(a.deps(), b.deps());
    expect_same_deps(a.rar_deps(), b.rar_deps());
    EXPECT_EQ(a.to_string(), b.to_string());
    EXPECT_EQ(a.stmt_edges(), b.stmt_edges());
  }
}

}  // namespace
}  // namespace pf::ddg
