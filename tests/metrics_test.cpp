// Unit tests for the observability substrate: the metrics registry
// (counters, gauges, log-bucket histograms, scoped absorption), the
// Stats compatibility shim, the tracer's buffer cap, and the flight
// recorder (ring recording, snapshots, async-signal-safe dumps).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "json_check.h"
#include "support/flightrec.h"
#include "support/metrics.h"
#include "support/stats.h"
#include "support/threadpool.h"
#include "support/trace.h"

namespace pf::support {
namespace {

TEST(HistBuckets, Log2Boundaries) {
  const HistLayout L = HistLayout::kLog2;
  // Non-positive values land in bucket 0.
  EXPECT_EQ(hist_bucket_index(L, -100), 0u);
  EXPECT_EQ(hist_bucket_index(L, 0), 0u);
  // Bucket i >= 1 covers [2^(i-1), 2^i - 1].
  EXPECT_EQ(hist_bucket_index(L, 1), 1u);
  EXPECT_EQ(hist_bucket_index(L, 2), 2u);
  EXPECT_EQ(hist_bucket_index(L, 3), 2u);
  EXPECT_EQ(hist_bucket_index(L, 4), 3u);
  EXPECT_EQ(hist_bucket_index(L, 7), 3u);
  EXPECT_EQ(hist_bucket_index(L, 8), 4u);
  for (std::size_t b = 1; b + 1 < kHistBuckets; ++b) {
    const i64 lo = hist_bucket_lower_bound(L, b);
    EXPECT_EQ(hist_bucket_index(L, lo), b) << "lower bound of bucket " << b;
    EXPECT_EQ(hist_bucket_index(L, 2 * lo - 1), b)
        << "upper bound of bucket " << b;
    EXPECT_EQ(hist_bucket_index(L, 2 * lo), b + 1)
        << "first value past bucket " << b;
  }
  // The last bucket absorbs the whole tail.
  EXPECT_EQ(hist_bucket_index(L, INT64_MAX), kHistBuckets - 1);
}

TEST(HistBuckets, LinearBoundaries) {
  const HistLayout L = HistLayout::kLinear;
  EXPECT_EQ(hist_bucket_index(L, -1), 0u);
  EXPECT_EQ(hist_bucket_index(L, 0), 0u);
  EXPECT_EQ(hist_bucket_index(L, 1), 1u);
  EXPECT_EQ(hist_bucket_index(L, 5), 5u);
  EXPECT_EQ(hist_bucket_index(L, 1000), kHistBuckets - 1);  // clamped
  EXPECT_EQ(hist_bucket_lower_bound(L, 7), 7);
}

TEST(MetricsRegistry, ObserveTracksCountSumMinMaxBuckets) {
  MetricsRegistry reg;
  const Hist h = Hist::kSimplexPivotsPerSolve;
  EXPECT_EQ(reg.hist_count(h), 0);
  EXPECT_EQ(reg.hist_min(h), 0);  // empty histogram reports 0, not sentinel
  EXPECT_EQ(reg.hist_max(h), 0);
  for (i64 v : {5, 1, 9, 0, 5}) reg.observe(h, v);
  EXPECT_EQ(reg.hist_count(h), 5);
  EXPECT_EQ(reg.hist_sum(h), 20);
  EXPECT_EQ(reg.hist_min(h), 0);
  EXPECT_EQ(reg.hist_max(h), 9);
  EXPECT_EQ(reg.hist_bucket(h, 0), 1);  // the 0
  EXPECT_EQ(reg.hist_bucket(h, 1), 1);  // the 1
  EXPECT_EQ(reg.hist_bucket(h, 3), 2);  // the two 5s
  EXPECT_EQ(reg.hist_bucket(h, 4), 1);  // the 9
}

TEST(MetricsRegistry, AbsorbMergesEverything) {
  MetricsRegistry parent, child;
  parent.add(Counter::kSimplexPivots, 10);
  child.add(Counter::kSimplexPivots, 32);
  parent.gauge_set(Gauge::kJobsConfigured, 2);
  child.gauge_set(Gauge::kJobsConfigured, 8);  // gauges merge by max
  parent.observe(Hist::kIlpNodesPerSolve, 3);
  child.observe(Hist::kIlpNodesPerSolve, 100);
  parent.add_phase_seconds("deps", 1.0);
  child.add_phase_seconds("deps", 0.5);
  child.add_phase_seconds("schedule", 2.0);

  parent.absorb(child);
  EXPECT_EQ(parent.get(Counter::kSimplexPivots), 42);
  EXPECT_EQ(parent.gauge(Gauge::kJobsConfigured), 8);
  EXPECT_EQ(parent.hist_count(Hist::kIlpNodesPerSolve), 2);
  EXPECT_EQ(parent.hist_sum(Hist::kIlpNodesPerSolve), 103);
  EXPECT_EQ(parent.hist_min(Hist::kIlpNodesPerSolve), 3);
  EXPECT_EQ(parent.hist_max(Hist::kIlpNodesPerSolve), 100);
  EXPECT_DOUBLE_EQ(parent.phase_seconds("deps"), 1.5);
  EXPECT_DOUBLE_EQ(parent.phase_seconds("schedule"), 2.0);
}

TEST(MetricsRegistry, AbsorbEmptyHistogramKeepsMinMax) {
  MetricsRegistry parent, child;
  parent.observe(Hist::kDepPairMicros, 7);
  parent.absorb(child);  // child never observed anything
  EXPECT_EQ(parent.hist_min(Hist::kDepPairMicros), 7);
  EXPECT_EQ(parent.hist_max(Hist::kDepPairMicros), 7);
  // And the mirror case: empty parent absorbs a filled child.
  MetricsRegistry parent2;
  parent2.absorb(parent);
  EXPECT_EQ(parent2.hist_min(Hist::kDepPairMicros), 7);
  EXPECT_EQ(parent2.hist_count(Hist::kDepPairMicros), 1);
}

TEST(MetricsRegistry, ResetZeroesAndEmptiesSentinels) {
  MetricsRegistry reg;
  reg.add(Counter::kIlpNodes, 3);
  reg.observe(Hist::kIlpNodesPerSolve, 12);
  reg.add_phase_seconds("parse", 0.1);
  reg.reset();
  EXPECT_EQ(reg.get(Counter::kIlpNodes), 0);
  EXPECT_EQ(reg.hist_count(Hist::kIlpNodesPerSolve), 0);
  EXPECT_EQ(reg.hist_min(Hist::kIlpNodesPerSolve), 0);
  EXPECT_DOUBLE_EQ(reg.phase_seconds("parse"), 0.0);
  // A fresh observation after reset re-establishes min/max from scratch.
  reg.observe(Hist::kIlpNodesPerSolve, 5);
  EXPECT_EQ(reg.hist_min(Hist::kIlpNodesPerSolve), 5);
  EXPECT_EQ(reg.hist_max(Hist::kIlpNodesPerSolve), 5);
}

TEST(MetricsScope, OwningScopeIsolatesAndAbsorbs) {
  MetricsRegistry outer;
  MetricsScope adopt_outer(&outer);
  const i64 before = outer.get(Counter::kFmeRowsGenerated);
  {
    MetricsScope inner;  // owning: fresh registry
    count(Counter::kFmeRowsGenerated, 4);
    EXPECT_EQ(inner.registry().get(Counter::kFmeRowsGenerated), 4);
    EXPECT_EQ(outer.get(Counter::kFmeRowsGenerated), before);  // isolated
  }
  // Scope close absorbed into the previously-current registry.
  EXPECT_EQ(outer.get(Counter::kFmeRowsGenerated), before + 4);
}

TEST(MetricsScope, ConcurrentScopesStayIsolated) {
  MetricsRegistry a, b;
  std::atomic<bool> go{false};
  auto work = [&go](MetricsRegistry* reg, i64 n) {
    MetricsScope scope(reg);
    while (!go.load()) std::this_thread::yield();
    for (i64 i = 0; i < n; ++i) {
      count(Counter::kDepPairsAnalyzed);
      observe(Hist::kDepPairMicros, i);
    }
  };
  std::thread ta(work, &a, 100), tb(work, &b, 37);
  go.store(true);
  ta.join();
  tb.join();
  EXPECT_EQ(a.get(Counter::kDepPairsAnalyzed), 100);
  EXPECT_EQ(b.get(Counter::kDepPairsAnalyzed), 37);
  EXPECT_EQ(a.hist_count(Hist::kDepPairMicros), 100);
  EXPECT_EQ(b.hist_count(Hist::kDepPairMicros), 37);
  EXPECT_EQ(b.hist_max(Hist::kDepPairMicros), 36);
}

TEST(MetricsScope, AbsorbIsDeterministicAcrossThreadCounts) {
  // The same work split across 1 or 8 scoped workers must absorb to the
  // same deterministic JSON subtree (the contract --stats=json tests
  // enforce end to end on the real binary).
  auto run = [](std::size_t workers) {
    MetricsRegistry total;
    MetricsScope adopt(&total);
    ThreadPool pool(workers);
    pool.parallel_for(0, 64, [](std::size_t i) {
      count(Counter::kSimplexPivots, static_cast<i64>(i));
      observe(Hist::kSimplexPivotsPerSolve, static_cast<i64>(i % 11));
    });
    std::string json = total.to_json();
    // Mask the runtime subtree: gauges and wall-clock data may differ.
    const std::size_t runtime = json.find("\"runtime\"");
    return json.substr(0, runtime);
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(MetricsScope, ThreadPoolWorkersReportIntoSubmitterScope) {
  MetricsRegistry total;
  {
    MetricsScope adopt(&total);
    ThreadPool pool(4);
    pool.parallel_for(0, 32, [](std::size_t) {
      count(Counter::kDepPolyhedraBuilt);
    });
  }
  EXPECT_EQ(total.get(Counter::kDepPolyhedraBuilt), 32);
}

TEST(StatsShim, RoutesToCurrentRegistry) {
  MetricsRegistry reg;
  MetricsScope scope(&reg);
  Stats::instance().add(Counter::kLintFindings, 3);
  EXPECT_EQ(reg.get(Counter::kLintFindings), 3);
  EXPECT_EQ(Stats::instance().get(Counter::kLintFindings), 3);
  Stats::instance().add_phase_seconds("verify", 0.25);
  EXPECT_DOUBLE_EQ(reg.phase_seconds("verify"), 0.25);
}

TEST(MetricsJson, OutputIsValidJsonWithHostilePhaseNames) {
  MetricsRegistry reg;
  reg.add(Counter::kSimplexPivots, 7);
  reg.observe(Hist::kFmeRowsPerElimination, 12);
  reg.gauge_set(Gauge::kTraceEventCap, 99);
  reg.add_phase_seconds("ph\"ase\\with\nnasties", 0.5);
  const std::string json = reg.to_json();
  EXPECT_TRUE(testjson::valid(json)) << json;
  // The deterministic/runtime split: histograms outside, gauges inside.
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"runtime\""), std::string::npos);
  EXPECT_LT(json.find("\"fme_rows_per_elimination\""), json.find("\"runtime\""));
  EXPECT_GT(json.find("\"jobs_configured\""), json.find("\"runtime\""));
}

TEST(MetricsText, ReportsHistogramSummaries) {
  MetricsRegistry reg;
  for (i64 v : {1, 2, 4, 8, 16}) reg.observe(Hist::kIlpNodesPerSolve, v);
  const std::string text = reg.to_string();
  EXPECT_NE(text.find("hist ilp_nodes_per_solve"), std::string::npos);
  EXPECT_NE(text.find("count=5"), std::string::npos);
}

TEST(TracerCap, DropsBeyondMaxEventsAndCounts) {
  Tracer& tracer = Tracer::instance();
  const std::size_t old_cap = Tracer::max_events();
  const bool old_remarks = Tracer::remarks_on();
  tracer.reset();
  tracer.set_remarks_enabled(true);
  Tracer::set_max_events(4);

  MetricsRegistry reg;
  {
    MetricsScope scope(&reg);
    for (int i = 0; i < 10; ++i) remark("test", "remark " + std::to_string(i));
  }
  EXPECT_EQ(tracer.num_remarks(), 4u);
  EXPECT_EQ(reg.get(Counter::kTraceEventsDropped), 6);

  Tracer::set_max_events(old_cap);
  tracer.set_remarks_enabled(old_remarks);
  tracer.reset();
}

TEST(FlightRec, RecordsAndSnapshotsInSequenceOrder) {
  flightrec::reset_for_test();
  flightrec::record(flightrec::EventKind::kMark, "test", "first", 1, 2);
  flightrec::record(flightrec::EventKind::kMark, "test", "second", 3);
  flightrec::record(flightrec::EventKind::kFault, "lp_solve", "fuel-exhausted",
                    -1);
  const auto events = flightrec::snapshot();
  ASSERT_GE(events.size(), 3u);
  EXPECT_GE(flightrec::events_recorded(), 3u);
  EXPECT_GE(flightrec::recording_threads(), 1);
  // Snapshot is ordered by global sequence.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  const auto& last = events[events.size() - 1];
  EXPECT_EQ(std::string(last.category), "lp_solve");
  EXPECT_EQ(std::string(last.name), "fuel-exhausted");
  EXPECT_EQ(last.kind, flightrec::EventKind::kFault);
  EXPECT_EQ(last.a, -1);
}

TEST(FlightRec, RingOverwritesKeepingLastEvents) {
  flightrec::reset_for_test();
  const std::size_t n = flightrec::kRingEvents + 50;
  for (std::size_t i = 0; i < n; ++i)
    flightrec::record(flightrec::EventKind::kMark, "test", "overflow",
                      static_cast<i64>(i));
  const auto events = flightrec::snapshot();
  EXPECT_EQ(events.size(), flightrec::kRingEvents);
  EXPECT_EQ(flightrec::events_recorded(), n);
  // The retained window is the most recent kRingEvents observations.
  EXPECT_EQ(events.front().a, static_cast<i64>(n - flightrec::kRingEvents));
  EXPECT_EQ(events.back().a, static_cast<i64>(n - 1));
}

TEST(FlightRec, TruncatesOverlongStringsSafely) {
  flightrec::reset_for_test();
  const std::string long_cat(100, 'c');
  const std::string long_name(300, 'n');
  flightrec::record(flightrec::EventKind::kMark, long_cat.c_str(),
                    long_name.c_str());
  const auto events = flightrec::snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].category),
            std::string(flightrec::kEventCategoryBytes - 1, 'c'));
  EXPECT_EQ(std::string(events[0].name),
            std::string(flightrec::kEventNameBytes - 1, 'n'));
}

std::string dump_to_string(const char* cause) {
  std::string path = ::testing::TempDir() + "flightrec_dump_test.json";
  EXPECT_TRUE(flightrec::write_diag_file(path, cause));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}

TEST(FlightRec, DumpIsValidSelfContainedJson) {
  flightrec::reset_for_test();
  // Hostile bytes in event strings must come out JSON-escaped.
  flightrec::record(flightrec::EventKind::kRemark, "fu\"sion",
                    "quote\" back\\slash \x01 tab\t", 5, 6);
  MetricsRegistry reg;
  reg.add(Counter::kSimplexPivots, 123);
  reg.observe(Hist::kSimplexPivotsPerSolve, 9);
  flightrec::set_metrics(&reg);
  const std::string dump = dump_to_string("requested");
  flightrec::set_metrics(nullptr);

  EXPECT_TRUE(testjson::valid(dump)) << dump;
  EXPECT_NE(dump.find("\"cause\": \"requested\""), std::string::npos);
  EXPECT_NE(dump.find("\"tool\": \"polyfuse\""), std::string::npos);
  EXPECT_NE(dump.find("quote\\\" back\\\\slash \\u0001 tab\\t"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("\"simplex_pivots\": 123"), std::string::npos);
  EXPECT_NE(dump.find("\"simplex_pivots_per_solve\""), std::string::npos);
}

TEST(FlightRec, DisabledRecorderStillDumpsMetrics) {
  flightrec::reset_for_test();
  flightrec::set_enabled(false);
  flightrec::record(flightrec::EventKind::kMark, "test", "ignored");
  EXPECT_EQ(flightrec::snapshot().size(), 0u);
  const std::string dump = dump_to_string("requested");
  flightrec::set_enabled(true);
  EXPECT_TRUE(testjson::valid(dump)) << dump;
  EXPECT_NE(dump.find("\"recorder_enabled\": false"), std::string::npos);
  EXPECT_NE(dump.find("\"metrics\""), std::string::npos);
}

}  // namespace
}  // namespace pf::support
