// Unit tests for the crash-safe persistent solve cache
// (src/support/diskcache.h): roundtrips, the run-id guard, corruption
// quarantine (truncation and bit flips), the LRU size cap, fault
// injection, and fingerprint invalidation.
#include "support/diskcache.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "support/metrics.h"

namespace pf::support {
namespace {

namespace fs = std::filesystem;
namespace dc = diskcache;

std::string fresh_dir(const std::string& tag) {
  const std::string d = std::string(::testing::TempDir()) + "pfdc_" +
                        std::to_string(::getpid()) + "_" + tag;
  fs::remove_all(d);
  return d;
}

// Each test reconfigures the process-wide cache; the fixture guarantees
// a clean slate and disables the cache afterwards so tests compose.
class DiskCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fresh_dir(::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
    ASSERT_TRUE(dc::configure(dir_, /*max_mb=*/64));
    dc::set_injections({});
    dc::set_fingerprint_salt("");
  }
  void TearDown() override {
    dc::set_injections({});
    dc::set_fingerprint_salt("");
    dc::configure("", 0);
    fs::remove_all(dir_);
  }

  // Entries written by this run are invisible to this run (the warm/cold
  // guard); renewing the run id simulates a process restart.
  void restart() { dc::renew_run_id(); }

  std::vector<fs::path> entries() const {
    std::vector<fs::path> out;
    for (const auto& e : fs::directory_iterator(dir_))
      if (e.is_regular_file() && e.path().extension() == ".pfc")
        out.push_back(e.path());
    return out;
  }

  std::string dir_;
};

TEST_F(DiskCacheTest, RoundTripAfterRestart) {
  const std::vector<i64> key = {1, 2, 3, -4};
  const std::vector<i64> value = {42, -7};
  dc::store("solve", key, value);

  // Same run: the entry must be invisible (determinism guard).
  std::vector<i64> got;
  EXPECT_FALSE(dc::lookup("solve", key, &got));

  restart();
  ASSERT_TRUE(dc::lookup("solve", key, &got));
  EXPECT_EQ(got, value);

  // Different domain, same key: distinct entry.
  EXPECT_FALSE(dc::lookup("count", key, &got));
}

TEST_F(DiskCacheTest, DistinctKeysDistinctEntries) {
  dc::store("solve", {1}, {10});
  dc::store("solve", {2}, {20});
  restart();
  std::vector<i64> got;
  ASSERT_TRUE(dc::lookup("solve", {1}, &got));
  EXPECT_EQ(got, std::vector<i64>({10}));
  ASSERT_TRUE(dc::lookup("solve", {2}, &got));
  EXPECT_EQ(got, std::vector<i64>({20}));
  EXPECT_EQ(entries().size(), 2u);
}

TEST_F(DiskCacheTest, EmptyValueRoundTrips) {
  dc::store("solve", {7, 7}, {});
  restart();
  std::vector<i64> got = {99};
  ASSERT_TRUE(dc::lookup("solve", {7, 7}, &got));
  EXPECT_TRUE(got.empty());
}

TEST_F(DiskCacheTest, TruncatedEntryIsQuarantinedMiss) {
  dc::store("solve", {5, 6}, {11, 12, 13});
  restart();
  auto files = entries();
  ASSERT_EQ(files.size(), 1u);

  // Truncate to every possible prefix length; each is a miss, never a
  // crash or a wrong value. Re-store after each round.
  std::error_code ec;
  const auto full = fs::file_size(files[0]);
  for (std::uintmax_t len : {std::uintmax_t(0), full / 2, full - 1}) {
    fs::resize_file(files[0], len, ec);
    ASSERT_FALSE(ec);
    std::vector<i64> got;
    EXPECT_FALSE(dc::lookup("solve", {5, 6}, &got)) << "len=" << len;
    // The corrupt file was moved out of the live directory.
    EXPECT_FALSE(fs::exists(files[0]));
    dc::store("solve", {5, 6}, {11, 12, 13});
    restart();
    files = entries();
    ASSERT_EQ(files.size(), 1u);
  }
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "quarantine"));
  EXPECT_GE(current_metrics().get(Counter::kDiskCacheCorrupt), 3);
}

TEST_F(DiskCacheTest, BitFlipFuzzNeverReturnsWrongValue) {
  const std::vector<i64> key = {17, -3, 1000000007};
  const std::vector<i64> value = {123456789, -987654321, 0, 5};
  std::mt19937 rng(1234);
  for (int round = 0; round < 32; ++round) {
    dc::store("solve", key, value);
    restart();
    auto files = entries();
    ASSERT_EQ(files.size(), 1u);
    // Flip one random bit anywhere in the entry.
    std::ifstream in(files[0], std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    ASSERT_FALSE(bytes.empty());
    const std::size_t pos = rng() % bytes.size();
    bytes[pos] = static_cast<char>(bytes[pos] ^ (1u << (rng() % 8)));
    {
      std::ofstream out(files[0], std::ios::binary | std::ios::trunc);
      out << bytes;
    }
    std::vector<i64> got;
    // Either a verified miss (checksum/magic/key mismatch -> quarantine)
    // or -- never -- a value different from what was stored.
    if (dc::lookup("solve", key, &got)) EXPECT_EQ(got, value);
    fs::remove_all(fs::path(dir_) / "quarantine");
    for (const auto& f : entries()) fs::remove(f);
  }
}

TEST_F(DiskCacheTest, RunIdGuardHidesOwnWritesOnly) {
  dc::store("solve", {1}, {1});
  restart();  // now "previous run"
  dc::store("solve", {2}, {2});
  std::vector<i64> got;
  EXPECT_TRUE(dc::lookup("solve", {1}, &got));   // other run: visible
  EXPECT_FALSE(dc::lookup("solve", {2}, &got));  // own run: hidden
}

TEST_F(DiskCacheTest, FingerprintSaltInvalidates) {
  dc::store("solve", {9}, {90});
  restart();
  std::vector<i64> got;
  ASSERT_TRUE(dc::lookup("solve", {9}, &got));

  // A "rebuilt solver" (different fingerprint) must not consume the old
  // entry -- and its own writes land under the new fingerprint.
  dc::set_fingerprint_salt("v2");
  EXPECT_FALSE(dc::lookup("solve", {9}, &got));
  dc::store("solve", {9}, {91});
  restart();
  ASSERT_TRUE(dc::lookup("solve", {9}, &got));
  EXPECT_EQ(got, std::vector<i64>({91}));
  dc::set_fingerprint_salt("");
  ASSERT_TRUE(dc::lookup("solve", {9}, &got));
  EXPECT_EQ(got, std::vector<i64>({90}));
}

TEST_F(DiskCacheTest, LruSweepEnforcesSizeCap) {
  // Reconfigure with a 1 MB cap and write ~4 MB of entries.
  ASSERT_TRUE(dc::configure(dir_, /*max_mb=*/1));
  const std::vector<i64> big(8192, 7);  // 64 KiB payload
  for (i64 i = 0; i < 64; ++i) dc::store("sweep", {i}, big);
  dc::sweep_now();
  std::uintmax_t total = 0;
  for (const auto& f : entries()) total += fs::file_size(f);
  EXPECT_LE(total, std::uintmax_t(1) << 20);
  EXPECT_GT(entries().size(), 0u);
  EXPECT_GT(current_metrics().get(Counter::kDiskCacheEvictions), 0);
}

TEST_F(DiskCacheTest, InjectedReadFaultIsMiss) {
  dc::store("solve", {3}, {30});
  restart();
  // Fail the first read after this point; the second read succeeds.
  dc::set_injections({Injection{BudgetSite::kDiskcacheRead, 0, false}});
  std::vector<i64> got;
  EXPECT_FALSE(dc::lookup("solve", {3}, &got));
  EXPECT_TRUE(dc::lookup("solve", {3}, &got));
  EXPECT_EQ(got, std::vector<i64>({30}));
}

TEST_F(DiskCacheTest, InjectedWriteFaultSkipsWrite) {
  dc::set_injections({Injection{BudgetSite::kDiskcacheWrite, 0, false}});
  dc::store("solve", {4}, {40});  // dropped
  dc::store("solve", {5}, {50});  // committed
  restart();
  std::vector<i64> got;
  EXPECT_FALSE(dc::lookup("solve", {4}, &got));
  EXPECT_TRUE(dc::lookup("solve", {5}, &got));
}

TEST_F(DiskCacheTest, DisabledCacheIsInert) {
  dc::configure("", 0);
  EXPECT_FALSE(dc::enabled());
  dc::store("solve", {1}, {1});
  std::vector<i64> got;
  EXPECT_FALSE(dc::lookup("solve", {1}, &got));
}

TEST_F(DiskCacheTest, UnwritableDirectoryDisables) {
  EXPECT_FALSE(dc::configure("/proc/definitely/not/writable", 64));
  EXPECT_FALSE(dc::enabled());
}

}  // namespace
}  // namespace pf::support
