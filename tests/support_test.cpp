// Unit tests for the support module: checked integer math, rationals,
// matrices, exact linear algebra, string/table helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "json_check.h"
#include "support/error.h"
#include "support/intmath.h"
#include "support/linalg.h"
#include "support/matrix.h"
#include "support/rational.h"
#include "support/stats.h"
#include "support/strings.h"
#include "support/threadpool.h"
#include "support/trace.h"

namespace pf {
namespace {

TEST(IntMath, CheckedAddDetectsOverflow) {
  EXPECT_EQ(checked_add(2, 3), 5);
  EXPECT_EQ(checked_add(INT64_MAX, -1), INT64_MAX - 1);
  EXPECT_THROW(checked_add(INT64_MAX, 1), Error);
  EXPECT_THROW(checked_add(INT64_MIN, -1), Error);
}

TEST(IntMath, CheckedMulDetectsOverflow) {
  EXPECT_EQ(checked_mul(1000000, 1000000), 1000000000000LL);
  EXPECT_THROW(checked_mul(INT64_MAX, 2), Error);
  EXPECT_THROW(checked_mul(INT64_MIN, -1), Error);
}

TEST(IntMath, GcdLcm) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(-12, 18), 6);
  EXPECT_EQ(gcd(0, 7), 7);
  EXPECT_EQ(gcd(0, 0), 0);
  EXPECT_EQ(lcm(4, 6), 12);
  EXPECT_EQ(lcm(-4, 6), 12);
  EXPECT_EQ(lcm(0, 5), 0);
}

TEST(IntMath, FloorCeilDiv) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(6, 3), 2);
  EXPECT_EQ(floor_div(-6, 3), -2);
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(6, 3), 2);
  EXPECT_THROW(floor_div(1, 0), Error);
  EXPECT_THROW(floor_div(1, -2), Error);
}

TEST(IntMath, ModFloorInRange) {
  for (i64 a = -10; a <= 10; ++a) {
    for (i64 b = 1; b <= 5; ++b) {
      const i64 m = mod_floor(a, b);
      EXPECT_GE(m, 0);
      EXPECT_LT(m, b);
      EXPECT_EQ(floor_div(a, b) * b + m, a);
    }
  }
}

TEST(Rational, CanonicalForm) {
  Rational r(6, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 2);
  EXPECT_EQ(Rational(0, 5), Rational(0));
  EXPECT_THROW(Rational(1, 0), Error);
}

TEST(Rational, Arithmetic) {
  const Rational a(1, 2), b(1, 3);
  EXPECT_EQ(a + b, Rational(5, 6));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 6));
  EXPECT_EQ(a / b, Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
  EXPECT_EQ(a.reciprocal(), Rational(2));
  EXPECT_THROW(Rational(0).reciprocal(), Error);
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_GE(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, AsIntegerRequiresIntegrality) {
  EXPECT_EQ(Rational(8, 2).as_integer(), 4);
  EXPECT_THROW(Rational(1, 2).as_integer(), Error);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(3).to_string(), "3");
  EXPECT_EQ(Rational(-3, 2).to_string(), "-3/2");
}

TEST(Matrix, BasicAccessAndBounds) {
  Matrix<i64> m(2, 3, 0);
  m(1, 2) = 7;
  EXPECT_EQ(m(1, 2), 7);
  EXPECT_EQ(m(0, 0), 0);
  EXPECT_THROW(m(2, 0), Error);
  EXPECT_THROW(m(0, 3), Error);
}

TEST(Matrix, InitializerListAndTranspose) {
  Matrix<i64> m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t(2, 1), 6);
}

TEST(Matrix, AppendRowDefinesWidth) {
  Matrix<i64> m;
  m.append_row({1, 2});
  m.append_row({3, 4});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_THROW(m.append_row({1, 2, 3}), Error);
}

TEST(Matrix, Identity) {
  const auto id = Matrix<i64>::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(id(i, j), i == j ? 1 : 0);
}

TEST(LinAlg, RankOfSingularAndFullRank) {
  RatMatrix full{{Rational(1), Rational(0)}, {Rational(1), Rational(1)}};
  EXPECT_EQ(rank(full), 2u);
  RatMatrix sing{{Rational(1), Rational(2)}, {Rational(2), Rational(4)}};
  EXPECT_EQ(rank(sing), 1u);
  EXPECT_EQ(rank(RatMatrix(0, 0)), 0u);
}

TEST(LinAlg, NullSpaceAnnihilates) {
  RatMatrix m{{Rational(1), Rational(2), Rational(3)},
              {Rational(0), Rational(1), Rational(1)}};
  const RatMatrix ns = null_space(m);
  EXPECT_EQ(ns.rows(), 1u);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    Rational acc(0);
    for (std::size_t c = 0; c < m.cols(); ++c) acc += m(r, c) * ns(0, c);
    EXPECT_EQ(acc, Rational(0));
  }
}

TEST(LinAlg, NullSpaceOfEmptyIsIdentity) {
  const RatMatrix ns = null_space(RatMatrix(0, 3));
  EXPECT_EQ(ns.rows(), 3u);
  EXPECT_EQ(rank(ns), 3u);
}

TEST(LinAlg, InvertRoundTrip) {
  RatMatrix m{{Rational(2), Rational(1)}, {Rational(1), Rational(1)}};
  const auto inv = invert(m);
  ASSERT_TRUE(inv.has_value());
  // m * inv == I
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      Rational acc(0);
      for (std::size_t k = 0; k < 2; ++k) acc += m(i, k) * (*inv)(k, j);
      EXPECT_EQ(acc, Rational(i == j ? 1 : 0));
    }
  }
}

TEST(LinAlg, InvertSingularFails) {
  RatMatrix m{{Rational(1), Rational(2)}, {Rational(2), Rational(4)}};
  EXPECT_FALSE(invert(m).has_value());
}

TEST(LinAlg, SolveConsistentAndInconsistent) {
  RatMatrix a{{Rational(1), Rational(1)}, {Rational(1), Rational(-1)}};
  const auto x = solve(a, {Rational(3), Rational(1)});
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0], Rational(2));
  EXPECT_EQ((*x)[1], Rational(1));

  RatMatrix b{{Rational(1), Rational(1)}, {Rational(2), Rational(2)}};
  EXPECT_FALSE(solve(b, {Rational(1), Rational(3)}).has_value());
  // Underdetermined: free vars zeroed, still a valid solution.
  const auto y = solve(b, {Rational(1), Rational(2)});
  ASSERT_TRUE(y.has_value());
  EXPECT_EQ((*y)[0] + (*y)[1], Rational(1));
}

TEST(LinAlg, Determinant) {
  RatMatrix m{{Rational(2), Rational(1)}, {Rational(1), Rational(1)}};
  EXPECT_EQ(determinant(m), Rational(1));
  RatMatrix s{{Rational(1), Rational(2)}, {Rational(2), Rational(4)}};
  EXPECT_EQ(determinant(s), Rational(0));
  RatMatrix skew{{Rational(1), Rational(0)}, {Rational(1), Rational(1)}};
  EXPECT_EQ(determinant(skew), Rational(1));
}

TEST(LinAlg, ToIntegerRowClearsDenominators) {
  const IntVector v =
      to_integer_row({Rational(1, 2), Rational(1, 3), Rational(0)});
  EXPECT_EQ(v, (IntVector{3, 2, 0}));
  const IntVector w = to_integer_row({Rational(2), Rational(4)});
  EXPECT_EQ(w, (IntVector{1, 2}));
}

TEST(LinAlg, OrthogonalComplementIsOrthogonal) {
  IntMatrix h;
  h.append_row({1, 0, 0});
  const IntMatrix comp = orthogonal_complement_rows(h);
  EXPECT_EQ(comp.rows(), 2u);
  for (std::size_t r = 0; r < comp.rows(); ++r)
    EXPECT_EQ(dot(h.row(0), comp.row(r)), 0);
}

TEST(LinAlg, OrthogonalComplementEmptyWhenFullRank) {
  IntMatrix h;
  h.append_row({1, 0});
  h.append_row({0, 1});
  EXPECT_EQ(orthogonal_complement_rows(h).rows(), 0u);
}

TEST(LinAlg, OrthogonalComplementOfNothingIsIdentity) {
  IntMatrix h(0, 3);
  const IntMatrix comp = orthogonal_complement_rows(h);
  EXPECT_EQ(comp.rows(), 3u);
}

TEST(Strings, JoinRepeatPad) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(repeat("ab", 3), "ababab");
  EXPECT_EQ(pad_right("x", 3), "x  ");
  EXPECT_EQ(pad_left("x", 3), "  x");
  EXPECT_EQ(pad_right("xyz", 2), "xyz");
}

TEST(Strings, FmtDouble) {
  EXPECT_EQ(fmt_double(1.2345, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 1), "2.0");
}

TEST(Strings, TextTableAlignsColumns) {
  TextTable t({"name", "val"});
  t.add_row({"longname", "1"});
  t.add_row({"x", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name     | val |"), std::string::npos);
  EXPECT_NE(s.find("| longname | 1   |"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Rational, HashMatchesEquality) {
  // Equal values (canonical form) must hash equal, whatever spelling
  // they were constructed from.
  const std::hash<Rational> h;
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(h(Rational(2, 4)), h(Rational(1, 2)));
  EXPECT_EQ(h(Rational(-3, 6)), h(Rational(1, -2)));
  EXPECT_EQ(h(Rational(5)), h(Rational(10, 2)));
  // Distinct values should (with overwhelming probability) differ.
  EXPECT_NE(h(Rational(1, 2)), h(Rational(1, 3)));
  EXPECT_NE(h(Rational(1, 2)), h(Rational(-1, 2)));
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                    std::size_t{4}}) {
    support::ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(101);
    pool.parallel_for(1, 101, [&](std::size_t i) { hits[i].fetch_add(1); });
    EXPECT_EQ(hits[0].load(), 0) << "threads=" << threads;
    for (std::size_t i = 1; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  support::ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SubmitReturnsUsableFuture) {
  support::ThreadPool pool(2);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> fs;
  for (int i = 1; i <= 10; ++i)
    fs.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  for (auto& f : fs) f.get();
  EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  support::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 32,
                                 [](std::size_t i) {
                                   if (i == 7)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool stays usable afterwards.
  std::atomic<int> n{0};
  pool.parallel_for(0, 8, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 8);
}

TEST(ThreadPool, DefaultJobsOverride) {
  const std::size_t before = support::default_jobs();
  EXPECT_GE(before, 1u);
  support::set_default_jobs(3);
  EXPECT_EQ(support::default_jobs(), 3u);
  support::set_default_jobs(0);  // back to the environment default
  EXPECT_EQ(support::default_jobs(), before);
}

TEST(ThreadPool, ParseJobsValueIsStrict) {
  EXPECT_EQ(support::parse_jobs_value("1"), 1u);
  EXPECT_EQ(support::parse_jobs_value("16"), 16u);
  EXPECT_FALSE(support::parse_jobs_value("0").has_value());
  EXPECT_FALSE(support::parse_jobs_value("-2").has_value());
  EXPECT_FALSE(support::parse_jobs_value("abc").has_value());
  EXPECT_FALSE(support::parse_jobs_value("4x").has_value());
  EXPECT_FALSE(support::parse_jobs_value("4 ").has_value());
  EXPECT_FALSE(support::parse_jobs_value("").has_value());
  EXPECT_FALSE(support::parse_jobs_value("99999999999999999999").has_value());
}

TEST(ThreadPool, InvalidJobsEnvFallsBackToHardware) {
  // An unparseable POLYFUSE_JOBS must not crash or yield 0 workers; it
  // warns (once) and uses the hardware default.
  char* old = std::getenv("POLYFUSE_JOBS");
  const std::string saved = old != nullptr ? old : "";
  const bool had = old != nullptr;
  ::setenv("POLYFUSE_JOBS", "not-a-number", 1);
  support::set_default_jobs(0);
  EXPECT_GE(support::default_jobs(), 1u);
  ::setenv("POLYFUSE_JOBS", "0", 1);
  EXPECT_GE(support::default_jobs(), 1u);
  if (had)
    ::setenv("POLYFUSE_JOBS", saved.c_str(), 1);
  else
    ::unsetenv("POLYFUSE_JOBS");
}

TEST(Strings, ParseI64IsStrict) {
  EXPECT_EQ(pf::parse_i64("42"), 42);
  EXPECT_EQ(pf::parse_i64("-7"), -7);
  EXPECT_EQ(pf::parse_i64("0"), 0);
  EXPECT_FALSE(pf::parse_i64("").has_value());
  EXPECT_FALSE(pf::parse_i64("7up").has_value());
  EXPECT_FALSE(pf::parse_i64(" 7").has_value());
  EXPECT_FALSE(pf::parse_i64("7 ").has_value());
  EXPECT_FALSE(pf::parse_i64("nine").has_value());
  EXPECT_FALSE(pf::parse_i64("99999999999999999999999").has_value());
}

TEST(Stats, CountersAccumulateAndReset) {
  auto& stats = support::Stats::instance();
  stats.reset();
  support::count(support::Counter::kSimplexPivots);
  support::count(support::Counter::kSimplexPivots, 4);
  EXPECT_EQ(stats.get(support::Counter::kSimplexPivots), 5);
  EXPECT_EQ(stats.get(support::Counter::kIlpNodes), 0);
  stats.reset();
  EXPECT_EQ(stats.get(support::Counter::kSimplexPivots), 0);
}

TEST(Stats, PhaseTimerRecordsWallTime) {
  auto& stats = support::Stats::instance();
  stats.reset();
  {
    support::PhaseTimer timer("unit_test_phase");
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
  }
  EXPECT_GT(stats.phase_seconds("unit_test_phase"), 0.0);
  EXPECT_EQ(stats.phase_seconds("no_such_phase"), 0.0);
  const std::string json = stats.to_json();
  EXPECT_NE(json.find("\"unit_test_phase\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  stats.reset();
}

TEST(Stats, ResetDropsPhaseTimings) {
  auto& stats = support::Stats::instance();
  stats.reset();
  stats.add_phase_seconds("reset_me", 1.5);
  EXPECT_GT(stats.phase_seconds("reset_me"), 0.0);
  stats.reset();
  EXPECT_EQ(stats.phase_seconds("reset_me"), 0.0);
  EXPECT_EQ(stats.to_json().find("\"reset_me\""), std::string::npos);
}

TEST(Stats, PhaseAccumulationIsThreadSafe) {
  auto& stats = support::Stats::instance();
  stats.reset();
  constexpr int kThreads = 4, kAdds = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&stats] {
      for (int i = 0; i < kAdds; ++i)
        stats.add_phase_seconds("mt_phase", 0.001);
    });
  for (auto& t : threads) t.join();
  EXPECT_NEAR(stats.phase_seconds("mt_phase"), kThreads * kAdds * 0.001,
              1e-6);
  stats.reset();
}

TEST(Stats, ConcurrentPhaseTimersOnSamePhaseAccumulate) {
  auto& stats = support::Stats::instance();
  stats.reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([] {
      support::PhaseTimer timer("mt_timer_phase");
      volatile double sink = 0;
      for (int i = 0; i < 20000; ++i) sink = sink + 1.0;
    });
  for (auto& t : threads) t.join();
  EXPECT_GT(stats.phase_seconds("mt_timer_phase"), 0.0);
  stats.reset();
}

// The tracer is a process-wide singleton like Stats, so every test
// starts from (and restores) the disabled, empty state.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override { clear(); }
  void TearDown() override { clear(); }
  static void clear() {
    auto& tracer = support::Tracer::instance();
    tracer.set_spans_enabled(false);
    tracer.set_remarks_enabled(false);
    tracer.reset();
  }
};

TEST_F(TracerTest, DisabledModeRecordsNothing) {
  {
    support::TraceSpan span("cat", "outer");
    EXPECT_FALSE(span.active());
    span.attr("k", std::string("v"));  // no-op, must not crash
    span.attr("n", i64{3});
    support::remark("cat", "dropped");
  }
  EXPECT_EQ(support::Tracer::instance().num_spans(), 0u);
  EXPECT_EQ(support::Tracer::instance().num_remarks(), 0u);
}

TEST_F(TracerTest, SpansNestAndRecordDepth) {
  auto& tracer = support::Tracer::instance();
  tracer.set_spans_enabled(true);
  {
    support::TraceSpan outer("cat", "outer");
    EXPECT_TRUE(outer.active());
    {
      support::TraceSpan inner("cat", "inner");
      inner.attr("n", i64{7});
    }
    { support::TraceSpan sibling("cat", "sibling"); }
  }
  const std::vector<support::SpanInfo> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  auto find = [&](const std::string& name) -> const support::SpanInfo& {
    for (const support::SpanInfo& s : spans)
      if (s.name == name) return s;
    ADD_FAILURE() << "span '" << name << "' not recorded";
    return spans.front();
  };
  const support::SpanInfo& outer = find("outer");
  const support::SpanInfo& inner = find("inner");
  const support::SpanInfo& sibling = find("sibling");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(sibling.depth, 1);
  EXPECT_EQ(outer.tid, inner.tid);
  EXPECT_GE(outer.dur_us, inner.dur_us);
  EXPECT_LE(outer.start_us, inner.start_us);
  ASSERT_EQ(inner.attrs.size(), 1u);
  EXPECT_EQ(inner.attrs[0].first, "n");
  EXPECT_EQ(inner.attrs[0].second, "7");
}

TEST_F(TracerTest, RemarksKeepEmissionOrder) {
  auto& tracer = support::Tracer::instance();
  tracer.set_remarks_enabled(true);
  support::remark("a", "first");
  support::remark("b", "second", {{"k", "v"}});
  support::remark("a", "third");
  const std::vector<support::Remark> remarks = tracer.remarks();
  ASSERT_EQ(remarks.size(), 3u);
  EXPECT_EQ(remarks[0].seq, 0u);
  EXPECT_EQ(remarks[1].seq, 1u);
  EXPECT_EQ(remarks[2].seq, 2u);
  EXPECT_EQ(remarks[0].message, "first");
  EXPECT_EQ(remarks[2].message, "third");
  const std::string text = tracer.remarks_text();
  const std::size_t p1 = text.find("first");
  const std::size_t p2 = text.find("second");
  const std::size_t p3 = text.find("third");
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(p2, std::string::npos);
  ASSERT_NE(p3, std::string::npos);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
  EXPECT_NE(text.find("k=v"), std::string::npos);
}

TEST_F(TracerTest, JsonOutputsAreWellFormed) {
  auto& tracer = support::Tracer::instance();
  tracer.set_spans_enabled(true);
  tracer.set_remarks_enabled(true);
  {
    support::TraceSpan span("cat", "na\"me");
    span.attr("path", std::string("a\\b\nc"));
  }
  support::remark("cat", "quote \" and tab \t", {{"k", "v\\w"}});
  const std::string trace = tracer.chrome_trace_json();
  EXPECT_TRUE(pf::testjson::valid(trace)) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  const std::string remarks = tracer.remarks_json();
  EXPECT_TRUE(pf::testjson::valid(remarks)) << remarks;
}

TEST(TraceJson, EscapesSpecialCharacters) {
  EXPECT_EQ(support::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(support::json_escape("\t\r"), "\\t\\r");
  EXPECT_EQ(support::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(ErrorMacros, CheckAndFail) {
  EXPECT_NO_THROW(PF_CHECK(1 + 1 == 2));
  EXPECT_THROW(PF_CHECK(1 == 2), Error);
  try {
    PF_CHECK_MSG(false, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace pf
