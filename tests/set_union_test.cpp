// Tests for poly::SetUnion: unit tests for union/intersection/
// subtraction/projection/coalescing, plus the property test of the
// subtraction algebra against exhaustive point enumeration -- every
// random case compares `contains` over a 32x32 integer box (1024
// points) between the computed set and the set-theoretic definition.
#include <gtest/gtest.h>

#include <random>

#include "lp/fastlane.h"
#include "poly/count.h"
#include "poly/set.h"
#include "poly/set_union.h"

namespace pf::poly {
namespace {

IntegerSet box2(i64 lo0, i64 hi0, i64 lo1, i64 hi1) {
  IntegerSet s(2);
  const auto x = AffineExpr::var(2, 0);
  const auto y = AffineExpr::var(2, 1);
  s.add_constraint(Constraint::ge(x, AffineExpr::constant(2, lo0)));
  s.add_constraint(Constraint::le(x, AffineExpr::constant(2, hi0)));
  s.add_constraint(Constraint::ge(y, AffineExpr::constant(2, lo1)));
  s.add_constraint(Constraint::le(y, AffineExpr::constant(2, hi1)));
  return s;
}

TEST(SetUnion, EmptyAndUniverse) {
  const auto e = SetUnion::empty(2);
  EXPECT_TRUE(e.trivially_empty());
  EXPECT_TRUE(e.is_empty());
  EXPECT_FALSE(e.contains({0, 0}));

  const auto u = SetUnion::universe(2);
  EXPECT_FALSE(u.is_empty());
  EXPECT_TRUE(u.contains({-100, 100}));
  EXPECT_EQ(u.dims(), 2u);
}

TEST(SetUnion, WrapDropsTriviallyEmpty) {
  IntegerSet contradiction(1);  // constant-false: syntactically empty
  contradiction.add_constraint(
      Constraint::ge0(AffineExpr::constant(1, -1)));
  const auto w = SetUnion::wrap(contradiction);
  EXPECT_TRUE(w.trivially_empty());
  EXPECT_EQ(SetUnion::wrap(box2(0, 1, 0, 1)).num_disjuncts(), 1u);
}

TEST(SetUnion, UniteAndContains) {
  auto u = SetUnion::wrap(box2(0, 1, 0, 1));
  u.unite(SetUnion::wrap(box2(5, 6, 5, 6)));
  EXPECT_EQ(u.num_disjuncts(), 2u);
  EXPECT_TRUE(u.contains({0, 1}));
  EXPECT_TRUE(u.contains({6, 5}));
  EXPECT_FALSE(u.contains({3, 3}));
}

TEST(SetUnion, SubtractCarvesHole) {
  // [0,9]^2 minus [3,6]^2: the frame. Disjuncts are pairwise disjoint
  // by construction; verify membership over the whole box.
  const auto frame = SetUnion::wrap(box2(0, 9, 0, 9)).subtract(box2(3, 6, 3, 6));
  for (i64 x = -1; x <= 10; ++x)
    for (i64 y = -1; y <= 10; ++y) {
      const bool in_outer = 0 <= x && x <= 9 && 0 <= y && y <= 9;
      const bool in_hole = 3 <= x && x <= 6 && 3 <= y && y <= 6;
      EXPECT_EQ(frame.contains({x, y}), in_outer && !in_hole)
          << "(" << x << "," << y << ")";
      // Pairwise disjoint: no point lies in two disjuncts.
      int hits = 0;
      for (const IntegerSet& d : frame.disjuncts())
        if (d.contains({x, y})) ++hits;
      EXPECT_LE(hits, 1);
    }
  EXPECT_FALSE(frame.is_empty());
  // Subtracting the outer box leaves nothing.
  EXPECT_TRUE(frame.subtract(box2(0, 9, 0, 9)).is_empty());
}

TEST(SetUnion, SubtractWithEquality) {
  // Removing the diagonal x == y splits into x < y and x > y.
  const auto off = SetUnion::wrap(box2(0, 3, 0, 3)).subtract([] {
    IntegerSet diag(2);
    diag.add_constraint(
        Constraint::eq(AffineExpr::var(2, 0), AffineExpr::var(2, 1)));
    return diag;
  }());
  for (i64 x = 0; x <= 3; ++x)
    for (i64 y = 0; y <= 3; ++y)
      EXPECT_EQ(off.contains({x, y}), x != y) << x << "," << y;
}

TEST(SetUnion, IntersectUnion) {
  auto u = SetUnion::wrap(box2(0, 4, 0, 4));
  u.unite(SetUnion::wrap(box2(8, 9, 8, 9)));
  const auto v = u.intersect(SetUnion::wrap(box2(3, 8, 3, 8)));
  EXPECT_TRUE(v.contains({3, 4}));
  EXPECT_TRUE(v.contains({8, 8}));
  EXPECT_FALSE(v.contains({0, 0}));
  EXPECT_FALSE(v.contains({9, 9}));
}

TEST(SetUnion, ProjectionAndInsertDims) {
  const auto u = SetUnion::wrap(box2(2, 5, -1, 1));
  const auto p = u.project_onto_prefix(1);
  EXPECT_EQ(p.dims(), 1u);
  EXPECT_TRUE(p.contains({2}));
  EXPECT_TRUE(p.contains({5}));
  EXPECT_FALSE(p.contains({6}));
  const auto back = p.insert_dims(1, 1);
  EXPECT_EQ(back.dims(), 2u);
  EXPECT_TRUE(back.contains({3, 1000}));  // new dim unconstrained
  EXPECT_FALSE(back.contains({6, 0}));
}

TEST(SetUnion, IsSubset) {
  EXPECT_TRUE(is_subset(box2(1, 2, 1, 2), box2(0, 3, 0, 3)));
  EXPECT_FALSE(is_subset(box2(0, 3, 0, 3), box2(1, 2, 1, 2)));
  EXPECT_TRUE(is_subset(box2(0, 3, 0, 3), box2(0, 3, 0, 3)));
}

TEST(SetUnion, CoalesceDropsEmptyAndSubsumed) {
  auto u = SetUnion::wrap(box2(0, 9, 0, 9));
  u.add_disjunct(box2(2, 3, 2, 3));   // subsumed by the big box
  u.add_disjunct(box2(5, 4, 0, 9));   // ILP-empty (lo > hi)
  ASSERT_EQ(u.num_disjuncts(), 3u);
  u.coalesce();
  EXPECT_EQ(u.num_disjuncts(), 1u);
  EXPECT_TRUE(u.contains({2, 3}));
  // Identical disjuncts: exactly one survives the mutual containment.
  auto v = SetUnion::wrap(box2(0, 1, 0, 1));
  v.add_disjunct(box2(0, 1, 0, 1));
  v.coalesce();
  EXPECT_EQ(v.num_disjuncts(), 1u);
}

TEST(SetUnion, SamplePoint) {
  const auto u = SetUnion::wrap(box2(7, 9, -2, -1));
  const auto p = u.sample_point();
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(u.contains(*p));
  EXPECT_FALSE(SetUnion::empty(2).sample_point().has_value());
}

// ---------------------------------------------------------------------------
// Property test: the subtraction / union / intersection algebra agrees
// with point enumeration. Random conjunctions over a 32x32 box (1024
// points per case); `contains` must match the set-theoretic definition
// at every point, and subtraction disjuncts must stay pairwise disjoint.
// ---------------------------------------------------------------------------

class SetUnionVsEnumeration : public ::testing::TestWithParam<unsigned> {};

IntegerSet random_conjunction(std::mt19937& rng) {
  std::uniform_int_distribution<i64> coef(-3, 3);
  std::uniform_int_distribution<i64> cst(-8, 8);
  std::uniform_int_distribution<int> nc(1, 3);
  std::uniform_int_distribution<int> kind(0, 4);
  IntegerSet s(2);
  const int n = nc(rng);
  for (int i = 0; i < n; ++i) {
    AffineExpr e(2, cst(rng));
    e.set_coeff(0, coef(rng));
    e.set_coeff(1, coef(rng));
    // Mostly inequalities, occasionally an equality to exercise the
    // two-sided complement.
    if (kind(rng) == 0)
      s.add_constraint(Constraint::eq0(e));
    else
      s.add_constraint(Constraint::ge0(e));
  }
  return s;
}

TEST_P(SetUnionVsEnumeration, AlgebraMatchesPoints) {
  std::mt19937 rng(GetParam());
  const i64 kLo = -16, kHi = 15;  // 32 x 32 = 1024 points

  // U = box /\ A  union  box /\ B; subtrahend C, intersector D.
  const IntegerSet box = box2(kLo, kHi, kLo, kHi);
  IntegerSet a = box, b = box;
  a.intersect(random_conjunction(rng));
  b.intersect(random_conjunction(rng));
  const IntegerSet c = random_conjunction(rng);
  const IntegerSet d = random_conjunction(rng);

  auto u = SetUnion::wrap(a);
  u.unite(SetUnion::wrap(b));
  const SetUnion diff = u.subtract(c);
  const SetUnion inter = u.intersect(d);
  SetUnion coal = diff;
  coal.coalesce();
  // Disjointness is guaranteed among the pieces carved from ONE base
  // disjunct (they pairwise disagree on some c_i); a and b may overlap,
  // so check it on the single-disjunct subtraction.
  const SetUnion adiff = SetUnion::wrap(a).subtract(c);

  for (i64 x = kLo; x <= kHi; ++x) {
    for (i64 y = kLo; y <= kHi; ++y) {
      const IntVector p{x, y};
      const bool in_u = a.contains(p) || b.contains(p);
      EXPECT_EQ(u.contains(p), in_u) << "seed " << GetParam() << " union";
      EXPECT_EQ(diff.contains(p), in_u && !c.contains(p))
          << "seed " << GetParam() << " subtract at (" << x << "," << y << ")";
      EXPECT_EQ(inter.contains(p), in_u && d.contains(p))
          << "seed " << GetParam() << " intersect at (" << x << "," << y << ")";
      // coalesce() must not change the set.
      EXPECT_EQ(coal.contains(p), diff.contains(p))
          << "seed " << GetParam() << " coalesce at (" << x << "," << y << ")";
      EXPECT_EQ(adiff.contains(p), a.contains(p) && !c.contains(p))
          << "seed " << GetParam() << " single-base subtract at (" << x << ","
          << y << ")";
      int hits = 0;
      for (const IntegerSet& dj : adiff.disjuncts())
        if (dj.contains(p)) ++hits;
      EXPECT_LE(hits, 1) << "seed " << GetParam() << " disjointness at ("
                         << x << "," << y << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCases, SetUnionVsEnumeration,
                         ::testing::Range(0u, 25u));

// ---------------------------------------------------------------------------
// Property test: exact point counting vs enumeration. Every random case
// builds bounded sets inside the 32x32 box and checks count_points /
// count_projection against literally counting `contains` hits --
// covering the single-set recursion, the inclusion-exclusion union path,
// the many-disjunct progressive-subtraction path, and the projection
// count. A differential leg re-counts with the int64 fast lane disabled
// (and is re-run under --inject=lp.fastlane by ci.sh): the exact
// Rational lane must produce the identical numbers.
// ---------------------------------------------------------------------------

class CountVsEnumeration : public ::testing::TestWithParam<unsigned> {};

TEST_P(CountVsEnumeration, CountMatchesEnumeration) {
  std::mt19937 rng(GetParam());
  const i64 kLo = -16, kHi = 15;  // 32 x 32 = 1024 points

  const IntegerSet box = box2(kLo, kHi, kLo, kHi);
  IntegerSet a = box, b = box;
  a.intersect(random_conjunction(rng));
  b.intersect(random_conjunction(rng));
  const IntegerSet c = random_conjunction(rng);

  auto u = SetUnion::wrap(a);
  u.unite(SetUnion::wrap(b));
  // Subtraction fans one box disjunct into several pieces, so `diff`
  // exercises the multi-disjunct union paths.
  const SetUnion diff = u.subtract(c);

  // Ground truth by enumeration.
  i64 na = 0, nu = 0, ndiff = 0, nproj = 0;
  for (i64 x = kLo; x <= kHi; ++x) {
    bool col = false;
    for (i64 y = kLo; y <= kHi; ++y) {
      const IntVector p{x, y};
      na += a.contains(p);
      const bool in_u = a.contains(p) || b.contains(p);
      nu += in_u;
      ndiff += in_u && !c.contains(p);
      col = col || in_u;
    }
    nproj += col;
  }

  auto expect_exact = [&](const Count& got, i64 want, const char* what) {
    ASSERT_TRUE(got.is_exact()) << "seed " << GetParam() << " " << what
                                << " -> " << got.to_string();
    EXPECT_EQ(got.value, want) << "seed " << GetParam() << " " << what;
  };
  expect_exact(count_points(a), na, "single set");
  expect_exact(count_points(u), nu, "two-disjunct union");
  expect_exact(count_points(diff), ndiff, "subtraction result");
  expect_exact(count_projection(u, 1), nproj, "prefix projection");

  // Force the joint-enumeration fallback on the same union: with the
  // inclusion-exclusion budget at 1 the count must not change.
  CountOptions joint;
  joint.max_inclusion_exclusion_disjuncts = 1;
  expect_exact(count_points(diff, joint), ndiff, "joint enumeration");

  // Differential: the Rational-only lane counts the same points.
  if (lp::fastlane_enabled()) {
    lp::set_fastlane_enabled(false);
    clear_count_cache();
    expect_exact(count_points(a), na, "single set (no fastlane)");
    expect_exact(count_points(u), nu, "union (no fastlane)");
    expect_exact(count_projection(u, 1), nproj, "projection (no fastlane)");
    lp::set_fastlane_enabled(true);
    clear_count_cache();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCases, CountVsEnumeration,
                         ::testing::Range(0u, 25u));

}  // namespace
}  // namespace pf::poly
