// Tests for the compute-fuel budget machinery (src/support/budget) and
// the degradation chain it drives: exhaustion and injection semantics,
// scope/suspend nesting, the deterministic task-splitting used by the
// parallel dependence phase, conservative solver answers under budget,
// and an end-to-end check that tiny budgets still yield correct code.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "codegen/codegen.h"
#include "ddg/dependences.h"
#include "exec/interp.h"
#include "frontend/parser.h"
#include "fusion/models.h"
#include "poly/set.h"
#include "poly/set_union.h"
#include "sched/analysis.h"
#include "sched/pluto.h"
#include "suite/synthetic.h"
#include "support/budget.h"
#include "support/threadpool.h"
#include "verify/verify.h"

namespace pf::support {
namespace {

BudgetSpec fuel_spec(i64 fuel) {
  BudgetSpec spec;
  spec.fuel = fuel;
  return spec;
}

TEST(BudgetSite, NamesRoundTrip) {
  for (std::size_t i = 0; i < kNumBudgetSites; ++i) {
    const auto site = static_cast<BudgetSite>(i);
    const auto back = budget_site_from_string(to_string(site));
    ASSERT_TRUE(back.has_value()) << to_string(site);
    EXPECT_EQ(*back, site);
  }
  EXPECT_FALSE(budget_site_from_string("not_a_site").has_value());
  EXPECT_FALSE(budget_site_from_string("").has_value());
}

TEST(Budget, FuelExhaustionThrowsAtTheExactCharge) {
  Budget b(fuel_spec(3));
  b.charge(BudgetSite::kLpSolve);
  b.charge(BudgetSite::kLpSolve);
  b.charge(BudgetSite::kLpSolve);
  EXPECT_EQ(b.fuel_remaining(), 0);
  EXPECT_EQ(b.spent(), 3);
  EXPECT_EQ(b.faults(), 0);
  try {
    b.charge(BudgetSite::kFmeProject);
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.site(), BudgetSite::kFmeProject);
    EXPECT_EQ(e.kind(), BudgetExceeded::Kind::kFuel);
    EXPECT_FALSE(e.injected());
    EXPECT_STREQ(e.cause(), "fuel-exhausted");
    EXPECT_NE(std::string(e.what()).find("fuel exhausted"),
              std::string::npos);
  }
  EXPECT_EQ(b.faults(), 1);
  EXPECT_EQ(b.fuel_remaining(), 0);
}

TEST(Budget, MultiUnitChargeOverdraws) {
  Budget b(fuel_spec(5));
  b.charge(BudgetSite::kDepPair, 5);
  EXPECT_THROW(b.charge(BudgetSite::kDepPair, 1), BudgetExceeded);
  Budget c(fuel_spec(5));
  EXPECT_THROW(c.charge(BudgetSite::kDepPair, 6), BudgetExceeded);
}

TEST(Budget, UnlimitedSpecNeverThrows) {
  Budget b{BudgetSpec{}};
  EXPECT_FALSE(b.limited());
  for (int i = 0; i < 1000; ++i) b.charge(BudgetSite::kLpSolve);
  EXPECT_EQ(b.spent(), 1000);
  EXPECT_EQ(b.fuel_remaining(), -1);
}

TEST(Budget, ScopeInstallsAndRestores) {
  EXPECT_EQ(current_budget(), nullptr);
  budget_charge(BudgetSite::kLpSolve);  // no budget: must be a no-op
  EXPECT_FALSE(budget_limited());
  Budget b(fuel_spec(2));
  {
    BudgetScope scope(&b);
    EXPECT_EQ(current_budget(), &b);
    EXPECT_TRUE(budget_limited());
    budget_charge(BudgetSite::kLpSolve);
    EXPECT_EQ(b.spent(), 1);
    {
      BudgetSuspend suspend;
      EXPECT_EQ(current_budget(), nullptr);
      budget_charge(BudgetSite::kLpSolve);  // suspended: no spend
      EXPECT_EQ(b.spent(), 1);
    }
    EXPECT_EQ(current_budget(), &b);
  }
  EXPECT_EQ(current_budget(), nullptr);
}

TEST(Budget, InjectionFiresOnceAtItsOrdinal) {
  BudgetSpec spec;
  spec.injections.push_back({BudgetSite::kJitCc, 1});
  Budget b(spec);
  EXPECT_TRUE(b.limited());
  b.op(BudgetSite::kJitCc);  // ordinal 0: fine
  try {
    b.op(BudgetSite::kJitCc);  // ordinal 1: injected fault
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_TRUE(e.injected());
    EXPECT_STREQ(e.cause(), "fault-injected");
    EXPECT_EQ(e.site(), BudgetSite::kJitCc);
  }
  b.op(BudgetSite::kJitCc);  // ordinal 2: single-shot, succeeds again
  b.op(BudgetSite::kLpSolve);  // other sites unaffected
  EXPECT_EQ(b.faults(), 1);
}

TEST(Budget, InjectionFiresIsNonThrowingAndChargesNoFuel) {
  // The lp.fastlane site is injection-only: a match forces a fast-lane
  // fallback via a boolean, never a BudgetExceeded, and attempts never
  // spend fuel (both lanes give identical answers, so a forced fallback
  // is not degradation).
  BudgetSpec spec;
  spec.fuel = 10;
  spec.injections.push_back({BudgetSite::kLpFastlane, 1});
  Budget b(spec);
  EXPECT_FALSE(b.injection_fires(BudgetSite::kLpFastlane));  // ordinal 0
  EXPECT_TRUE(b.injection_fires(BudgetSite::kLpFastlane));   // ordinal 1
  EXPECT_FALSE(b.injection_fires(BudgetSite::kLpFastlane));  // single-shot
  EXPECT_EQ(b.spent(), 0);
  EXPECT_EQ(b.faults(), 0);
}

TEST(Budget, OpAtUsesTheCallerOrdinal) {
  BudgetSpec spec;
  spec.injections.push_back({BudgetSite::kDepPair, 7});
  Budget b(spec);
  b.op_at(BudgetSite::kDepPair, 6);
  EXPECT_THROW(b.op_at(BudgetSite::kDepPair, 7), BudgetExceeded);
  b.op_at(BudgetSite::kDepPair, 8);
  // op_at never advances the per-budget ordinal counter.
  b.op(BudgetSite::kDepPair);  // ordinal 0
}

TEST(Budget, DeadlineExpiresOnOps) {
  BudgetSpec spec;
  spec.deadline_ms = 0;
  Budget b(spec);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  try {
    b.op(BudgetSite::kPlutoLevel);
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.kind(), BudgetExceeded::Kind::kDeadline);
    EXPECT_STREQ(e.cause(), "deadline-expired");
  }
}

TEST(Budget, DeadlineExpiresOnChargesWithinAStride) {
  BudgetSpec spec;
  spec.deadline_ms = 0;
  Budget b(spec);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // The clock is only read every 64 charges; well before 1000 the
  // deadline must have been noticed.
  EXPECT_THROW(
      {
        for (int i = 0; i < 1000; ++i) b.charge(BudgetSite::kLpSolve);
      },
      BudgetExceeded);
}

TEST(Budget, TaskSplitIsDeterministicAndAbsorbs) {
  Budget root(fuel_spec(100));
  const i64 allowance = root.task_allowance(4);
  EXPECT_EQ(allowance, 25);
  // Allowance is computed once, so it is independent of task order.
  Budget t0 = root.make_task_budget(allowance);
  Budget t1 = root.make_task_budget(allowance);
  t0.charge(BudgetSite::kDepPair, 10);
  EXPECT_THROW(t1.charge(BudgetSite::kDepPair, 26), BudgetExceeded);
  root.absorb(t0);
  root.absorb(t1);
  EXPECT_EQ(root.spent(), 36);          // 10 + 26 (spend counted pre-fault)
  EXPECT_EQ(root.faults(), 1);          // t1's exhaustion
  EXPECT_EQ(root.fuel_remaining(), 64); // saturating deduction
  // Unlimited root: allowance stays unlimited.
  Budget unlimited{BudgetSpec{}};
  EXPECT_EQ(unlimited.task_allowance(8), -1);
}

TEST(Budget, ParseInjectionAcceptsEverySite) {
  for (std::size_t i = 0; i < kNumBudgetSites; ++i) {
    const auto site = static_cast<BudgetSite>(i);
    const std::string text =
        std::string(to_string(site)) + ":fail-after=3";
    std::string err;
    const auto inj = parse_injection(text, &err);
    ASSERT_TRUE(inj.has_value()) << text << ": " << err;
    EXPECT_EQ(inj->site, site);
    EXPECT_EQ(inj->fail_at, 3);
  }
}

TEST(Budget, ParseInjectionRejectsMalformedSpecs) {
  std::string err;
  EXPECT_FALSE(parse_injection("lp_solve", &err).has_value());
  EXPECT_NE(err.find("expected SITE:fail-after=K"), std::string::npos);
  EXPECT_FALSE(parse_injection("warp_core:fail-after=1", &err).has_value());
  EXPECT_NE(err.find("unknown injection site"), std::string::npos);
  EXPECT_FALSE(parse_injection("lp_solve:fail=1", &err).has_value());
  EXPECT_NE(err.find("fail-after"), std::string::npos);
  EXPECT_FALSE(parse_injection("lp_solve:fail-after=-1", &err).has_value());
  EXPECT_NE(err.find("non-negative"), std::string::npos);
  EXPECT_FALSE(parse_injection("lp_solve:fail-after=x", &err).has_value());
  EXPECT_FALSE(parse_injection("", &err).has_value());
}

// An empty set that needs actual solving (no constant contradiction):
// x >= 1 and x <= 0.
poly::IntegerSet contradictory_set() {
  poly::IntegerSet s(1);
  const auto x = poly::AffineExpr::var(1, 0);
  s.add_constraint(poly::Constraint::ge(x, poly::AffineExpr::constant(1, 1)));
  s.add_constraint(poly::Constraint::le(x, poly::AffineExpr::constant(1, 0)));
  return s;
}

TEST(BudgetPoly, IsEmptyDegradesToConservativeFalse) {
  const poly::IntegerSet s = contradictory_set();
  EXPECT_TRUE(s.is_empty());  // exact answer, no budget
  Budget starved(fuel_spec(0));
  BudgetScope scope(&starved);
  // Out of fuel the emptiness proof cannot run; "maybe nonempty" is the
  // sound answer (a dependence gets assumed), and nothing throws.
  EXPECT_FALSE(s.is_empty());
  EXPECT_GT(starved.faults(), 0);
}

TEST(BudgetPoly, IsEmptyStaysExactWithAmpleFuel) {
  const poly::IntegerSet s = contradictory_set();
  Budget rich(fuel_spec(1000000));
  BudgetScope scope(&rich);
  EXPECT_TRUE(s.is_empty());
  EXPECT_GT(rich.spent(), 0);  // the proof was charged
}

TEST(BudgetPoly, IntegerMinDegradesToUnknown) {
  poly::IntegerSet s(1);
  const auto x = poly::AffineExpr::var(1, 0);
  s.add_constraint(poly::Constraint::ge(x, poly::AffineExpr::constant(1, 3)));
  s.add_constraint(poly::Constraint::le(x, poly::AffineExpr::constant(1, 9)));
  const auto exact = s.integer_min(x);
  ASSERT_EQ(exact.kind, poly::IntegerSet::Opt::kOk);
  EXPECT_EQ(exact.value, 3);
  Budget starved(fuel_spec(0));
  BudgetScope scope(&starved);
  const auto degraded = s.integer_min(x);
  EXPECT_EQ(degraded.kind, poly::IntegerSet::Opt::kUnknown);
}

TEST(BudgetPoly, SetUnionAlgebraBurnsFuel) {
  poly::IntegerSet box(1);
  const auto x = poly::AffineExpr::var(1, 0);
  box.add_constraint(poly::Constraint::ge(x, poly::AffineExpr::constant(1, 0)));
  box.add_constraint(poly::Constraint::le(x, poly::AffineExpr::constant(1, 9)));
  const poly::SetUnion u = poly::SetUnion::wrap(box);
  Budget b(fuel_spec(1000000));
  BudgetScope scope(&b);
  const poly::SetUnion diff = u.subtract(contradictory_set());
  (void)diff;
  EXPECT_GT(b.spent(), 0);
}

// ---- end-to-end: budgets across the real pipeline --------------------

exec::ArrayStore run_program(const ir::Scop& scop,
                             const codegen::AstNode& ast) {
  exec::ArrayStore store(scop, {7});
  for (std::size_t a = 0; a < store.num_arrays(); ++a) {
    const double salt = static_cast<double>(a + 1);
    store.fill(a, [&](const IntVector& idx) {
      double v = 0.5 + salt;
      for (std::size_t d = 0; d < idx.size(); ++d)
        v += 0.03 * static_cast<double>(idx[d]) *
             (1.0 + static_cast<double>(d));
      return v;
    });
  }
  exec::interpret(ast, store);
  return store;
}

// Under any fuel level -- including zero -- the budgeted pipeline must
// produce a verified schedule whose execution matches the original
// program bit-for-bit. Quality may degrade; correctness may not.
TEST(BudgetPipeline, TinyBudgetsStayCorrectOnRandomPrograms) {
  for (unsigned seed = 0; seed < 6; ++seed) {
    const std::string src = suite::synthetic_program(seed);
    SCOPED_TRACE(src);
    const ir::Scop scop = frontend::parse_scop(src);

    // Unbudgeted reference run.
    const auto exact_dg = ddg::DependenceGraph::analyze(scop);
    sched::Schedule ident = sched::identity_schedule(scop);
    sched::annotate_dependences(ident, exact_dg);
    const auto ref_ast = codegen::generate_ast(scop, ident);
    const exec::ArrayStore ref = run_program(scop, *ref_ast);

    for (const i64 fuel : {i64{0}, i64{50}, i64{500}}) {
      SCOPED_TRACE("fuel=" + std::to_string(fuel));
      Budget budget(fuel_spec(fuel));
      BudgetScope scope(&budget);
      const auto dg = ddg::DependenceGraph::analyze(scop);
      const sched::Schedule sch = fusion::compute_schedule_degrading(
          scop, dg, fusion::FusionModel::kWisefuse);
      for (const std::size_t lvl : sch.satisfied_at) EXPECT_NE(lvl, SIZE_MAX);
      const auto ast = codegen::generate_ast(scop, sch);
      {
        // The verifier suspends the budget internally; it must agree the
        // (possibly degraded) schedule is legal against the (possibly
        // over-approximated) dependences it was computed from.
        const verify::Report r = verify::run_all(scop, dg, sch, ast.get());
        EXPECT_TRUE(r.ok()) << r.to_string(&scop);
      }
      const exec::ArrayStore got = run_program(scop, *ast);
      EXPECT_EQ(exec::ArrayStore::max_abs_diff(ref, got), 0.0);
    }
  }
}

// Budgeted dependence analysis must not depend on the worker count:
// per-pair sub-budgets + serial merge make jobs=1 and jobs=8 identical.
TEST(BudgetPipeline, BudgetedAnalysisIsJobsInvariant) {
  const std::string src = suite::synthetic_program(3);
  const ir::Scop scop = frontend::parse_scop(src);
  const auto run_at = [&](std::size_t jobs, i64 fuel) {
    set_default_jobs(jobs);
    Budget budget(fuel_spec(fuel));
    BudgetScope scope(&budget);
    const auto dg = ddg::DependenceGraph::analyze(scop);
    return dg.to_string();
  };
  for (const i64 fuel : {i64{0}, i64{40}, i64{100000}}) {
    const std::string serial = run_at(1, fuel);
    const std::string parallel = run_at(8, fuel);
    EXPECT_EQ(serial, parallel) << "fuel=" << fuel;
  }
  set_default_jobs(0);  // restore the env/hardware default
}

TEST(BudgetPipeline, InjectedPairFaultIsJobsInvariant) {
  const std::string src = suite::synthetic_program(3);
  const ir::Scop scop = frontend::parse_scop(src);
  const auto run_at = [&](std::size_t jobs) {
    set_default_jobs(jobs);
    BudgetSpec spec;
    spec.injections.push_back({BudgetSite::kDepPair, 0});
    Budget budget(spec);
    BudgetScope scope(&budget);
    const auto dg = ddg::DependenceGraph::analyze(scop);
    return dg.to_string();
  };
  const std::string serial = run_at(1);
  const std::string parallel = run_at(8);
  EXPECT_EQ(serial, parallel);
  set_default_jobs(0);
  // The injected over-approximation must actually mark assumed deps.
  EXPECT_NE(serial.find("assumed"), std::string::npos);
}

// The fusion-model chain: a single injected wisefuse fault must land on
// smartfuse (single-shot injection -- the next model's op succeeds),
// and the result must still be a legal schedule.
TEST(BudgetPipeline, ModelChainDowngradesOnInjectedFault) {
  const ir::Scop scop = frontend::parse_scop(R"(
    scop p(N) {
      context N >= 4;
      array a[N]; array b[N];
      for (i = 0 .. N-1) { S1: a[i] = i * 1.0; }
      for (i = 0 .. N-1) { S2: b[i] = a[i] + 1.0; }
    })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  BudgetSpec spec;
  spec.injections.push_back({BudgetSite::kFusionModel, 0});
  Budget budget(spec);
  BudgetScope scope(&budget);
  fusion::FusionModel used = fusion::FusionModel::kWisefuse;
  const sched::Schedule sch = fusion::compute_schedule_degrading(
      scop, dg, fusion::FusionModel::kWisefuse, {}, &used);
  EXPECT_EQ(used, fusion::FusionModel::kSmartfuse);
  for (const std::size_t lvl : sch.satisfied_at) EXPECT_NE(lvl, SIZE_MAX);
}

TEST(BudgetPipeline, UnbudgetedChainMatchesPlainScheduler) {
  const std::string src = suite::synthetic_program(1);
  const ir::Scop scop = frontend::parse_scop(src);
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const auto policy = fusion::make_policy(fusion::FusionModel::kWisefuse);
  const sched::Schedule plain = sched::compute_schedule(scop, dg, *policy);
  fusion::FusionModel used = fusion::FusionModel::kNofuse;
  const sched::Schedule chained = fusion::compute_schedule_degrading(
      scop, dg, fusion::FusionModel::kWisefuse, {}, &used);
  EXPECT_EQ(used, fusion::FusionModel::kWisefuse);
  EXPECT_EQ(plain.to_string(), chained.to_string());
}

}  // namespace
}  // namespace pf::support
