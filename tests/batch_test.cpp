// Integration tests for the crash-safe batch driver and the persistent
// disk cache, against the real binary (tools/batch.cpp, docs/service.md):
// directory and manifest ingestion, jobs-invariant byte-identical
// reports, warm-vs-cold cache identity, retry-with-backoff, fork-isolated
// crash containment, cache-corruption immunity, and the env knobs.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

#ifndef POLYFUSE_CLI_PATH
#error "POLYFUSE_CLI_PATH must be defined by the build"
#endif
#ifndef POLYFUSE_EXAMPLES_DIR
#error "POLYFUSE_EXAMPLES_DIR must be defined by the build"
#endif

struct CmdResult {
  int exit_code;
  std::string out, err;
};

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Every test gets its own scratch tree (ctest -j runs suites in
// parallel against one TempDir).
class BatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("batch_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_ / "in");
    for (const char* name : {"pipeline.pf", "matmul.pf", "dotprod.pf"})
      fs::copy_file(fs::path(POLYFUSE_EXAMPLES_DIR) / name,
                    root_ / "in" / name);
  }
  void TearDown() override { fs::remove_all(root_); }

  CmdResult run(const std::string& args, const std::string& env = "") {
    const fs::path out_file = root_ / "cmd.out";
    const fs::path err_file = root_ / "cmd.err";
    const std::string cmd = (env.empty() ? "" : env + " ") +
                            std::string(POLYFUSE_CLI_PATH) + " " + args +
                            " > " + out_file.string() + " 2> " +
                            err_file.string();
    const int rc = std::system(cmd.c_str());
    return CmdResult{WEXITSTATUS(rc), slurp(out_file), slurp(err_file)};
  }

  std::string in() const { return (root_ / "in").string(); }
  fs::path path(const std::string& rel) const { return root_ / rel; }

  fs::path root_;
};

TEST_F(BatchTest, DirectoryBatchCompilesEverything) {
  const CmdResult r = run("--batch=" + in() + " --batch-out=" +
                          path("out").string() + " --batch-report=" +
                          path("r.json").string());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  const std::string report = slurp(path("r.json"));
  EXPECT_NE(report.find("\"schema\": \"polyfuse-batch-report-v1\""),
            std::string::npos);
  EXPECT_NE(report.find("\"total\": 3, \"ok\": 3"), std::string::npos);
  for (const char* stem : {"pipeline", "matmul", "dotprod"}) {
    EXPECT_TRUE(fs::exists(path("out") / (std::string(stem) + ".out")));
    // Each .out is the same program single mode emits.
    const CmdResult single =
        run((fs::path(in()) / (std::string(stem) + ".pf")).string());
    EXPECT_EQ(single.exit_code, 0);
    EXPECT_EQ(slurp(path("out") / (std::string(stem) + ".out")), single.out)
        << stem;
  }
}

TEST_F(BatchTest, ManifestBatchResolvesRelativePaths) {
  {
    std::ofstream m(path("list.txt"));
    m << "# comment line\n\nin/matmul.pf\nin/pipeline.pf\n";
  }
  const CmdResult r = run("--batch=" + path("list.txt").string() +
                          " --batch-out=" + path("out").string() +
                          " --batch-report=" + path("r.json").string());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  const std::string report = slurp(path("r.json"));
  // Manifest order is preserved.
  EXPECT_LT(report.find("matmul"), report.find("pipeline"));
  EXPECT_NE(report.find("\"total\": 2, \"ok\": 2"), std::string::npos);
}

TEST_F(BatchTest, ReportIsByteIdenticalAtAnyJobs) {
  for (const char* jobs : {"1", "2", "7"}) {
    const CmdResult r =
        run("--batch=" + in() + " --batch-out=" + path("o" + std::string(jobs)).string() +
            " --batch-report=" + path("r" + std::string(jobs) + ".json").string() +
            " --jobs=" + jobs);
    ASSERT_EQ(r.exit_code, 0) << r.err;
  }
  const std::string r1 = slurp(path("r1.json"));
  EXPECT_EQ(r1, slurp(path("r2.json")));
  EXPECT_EQ(r1, slurp(path("r7.json")));
  // The emitted programs match too.
  EXPECT_EQ(slurp(path("o1") / "pipeline.out"),
            slurp(path("o7") / "pipeline.out"));
}

TEST_F(BatchTest, WarmCacheRerunIsByteIdentical) {
  const std::string common = "--batch=" + in() + " --cache-dir=" +
                             path("cache").string() + " --batch-report=";
  const CmdResult cold = run(common + path("rc.json").string() +
                             " --batch-out=" + path("oc").string());
  ASSERT_EQ(cold.exit_code, 0) << cold.err;
  ASSERT_FALSE(fs::is_empty(path("cache")));
  const CmdResult warm = run(common + path("rw.json").string() +
                             " --batch-out=" + path("ow").string());
  ASSERT_EQ(warm.exit_code, 0) << warm.err;
  for (const char* stem : {"pipeline", "matmul", "dotprod"}) {
    EXPECT_EQ(slurp(path("oc") / (std::string(stem) + ".out")),
              slurp(path("ow") / (std::string(stem) + ".out")))
        << stem;
  }
  EXPECT_EQ(slurp(path("rc.json")), slurp(path("rw.json")));
}

TEST_F(BatchTest, WarmRunServesSolvesFromDisk) {
  // Single-request mode shares the cache plumbing; --stats exposes the
  // counters. Cold run populates; warm run must serve from disk and cut
  // the ILP solve count by at least half (the PR acceptance bar).
  const std::string args = "--cache-dir=" + path("cache").string() +
                           " --stats " +
                           (fs::path(in()) / "matmul.pf").string();
  const CmdResult cold = run(args);
  ASSERT_EQ(cold.exit_code, 0);
  const CmdResult warm = run(args);
  ASSERT_EQ(warm.exit_code, 0);
  EXPECT_EQ(cold.out, warm.out);

  using i64 = long long;
  auto counter = [](const std::string& stats, const std::string& name) {
    const std::size_t pos = stats.find(name + " = ");
    EXPECT_NE(pos, std::string::npos) << name;
    if (pos == std::string::npos) return i64{-1};
    return static_cast<i64>(
        std::strtoll(stats.c_str() + pos + name.size() + 3, nullptr, 10));
  };
  const i64 cold_solves = counter(cold.err, "ilp_solves");
  const i64 warm_solves = counter(warm.err, "ilp_solves");
  const i64 warm_hits = counter(warm.err, "diskcache_hits");
  EXPECT_GT(cold_solves, 0);
  EXPECT_GT(warm_hits, 0);
  EXPECT_LE(warm_solves * 2, cold_solves)
      << "warm run must eliminate >= 50% of ILP solves (cold="
      << cold_solves << ", warm=" << warm_solves << ")";
}

TEST_F(BatchTest, CorruptedCacheNeverAltersOutput) {
  const std::string cache = path("cache").string();
  const std::string input = (fs::path(in()) / "pipeline.pf").string();
  const CmdResult clean = run(input);
  ASSERT_EQ(clean.exit_code, 0);

  // Populate, then corrupt every entry: truncate half, bit-flip the rest.
  ASSERT_EQ(run("--cache-dir=" + cache + " " + input).exit_code, 0);
  bool flip = false;
  for (const auto& e : fs::directory_iterator(cache)) {
    if (!e.is_regular_file() || e.path().extension() != ".pfc") continue;
    if ((flip = !flip)) {
      std::string bytes = slurp(e.path());
      ASSERT_FALSE(bytes.empty());
      bytes[bytes.size() / 2] ^= 0x40;
      std::ofstream out(e.path(), std::ios::binary | std::ios::trunc);
      out << bytes;
    } else {
      fs::resize_file(e.path(), fs::file_size(e.path()) / 3);
    }
  }
  const CmdResult poisoned = run("--cache-dir=" + cache + " " + input);
  EXPECT_EQ(poisoned.exit_code, 0);
  EXPECT_EQ(poisoned.out, clean.out)
      << "corrupted cache entries must never alter emitted output";
}

TEST_F(BatchTest, TransientFaultIsRetried) {
  const CmdResult r = run("--batch=" + in() + " --batch-out=" +
                          path("out").string() + " --batch-report=" +
                          path("r.json").string() +
                          " --inject=batch.request:fail-after=1");
  EXPECT_EQ(r.exit_code, 0) << r.err;
  const std::string report = slurp(path("r.json"));
  EXPECT_NE(report.find("\"status\": \"retried\""), std::string::npos);
  EXPECT_NE(report.find("\"attempts\": 2"), std::string::npos);
  EXPECT_NE(report.find("\"retried\": 1"), std::string::npos);
  EXPECT_NE(report.find("\"failed\": 0"), std::string::npos);
}

TEST_F(BatchTest, RetriesExhaustedReportsFailed) {
  // --batch-retries=0: the injected transient fault is terminal.
  const CmdResult r = run("--batch=" + in() + " --batch-out=" +
                          path("out").string() + " --batch-report=" +
                          path("r.json").string() +
                          " --batch-retries=0"
                          " --inject=batch.request:fail-after=1");
  EXPECT_EQ(r.exit_code, 3);
  const std::string report = slurp(path("r.json"));
  EXPECT_NE(report.find("\"status\": \"failed\""), std::string::npos);
  EXPECT_NE(report.find("injected transient fault"), std::string::npos);
  EXPECT_NE(report.find("\"failed\": 1"), std::string::npos);
  // The two healthy requests still completed.
  EXPECT_NE(report.find("\"ok\": 2"), std::string::npos);
}

TEST_F(BatchTest, IsolatedCrashIsContained) {
  // Hard abort in request #1; the other requests must complete, the
  // crashed one gets a diagnostic, and the batch exits 3.
  const CmdResult r = run("--batch=" + in() + " --batch-out=" +
                          path("out").string() + " --batch-report=" +
                          path("r.json").string() +
                          " --batch-isolate --jobs=2"
                          " --inject=batch.request:abort-after=1");
  EXPECT_EQ(r.exit_code, 3) << r.err;
  const std::string report = slurp(path("r.json"));
  EXPECT_NE(report.find("crashed with signal"), std::string::npos);
  EXPECT_NE(report.find("\"diag\": "), std::string::npos);
  EXPECT_NE(report.find("\"ok\": 2"), std::string::npos);
  EXPECT_NE(report.find("\"failed\": 1"), std::string::npos);
  // The child's flight-recorder diagnostic landed next to the outputs.
  bool has_diag = false;
  for (const auto& e : fs::directory_iterator(path("out")))
    if (e.path().string().find(".diag.json") != std::string::npos)
      has_diag = true;
  EXPECT_TRUE(has_diag);
  // Two healthy outputs exist.
  int outs = 0;
  for (const auto& e : fs::directory_iterator(path("out")))
    if (e.path().extension() == ".out") ++outs;
  EXPECT_EQ(outs, 2);
}

TEST_F(BatchTest, BudgetExhaustionDegradesNotFails) {
  const CmdResult r = run("--batch=" + in() + " --batch-out=" +
                          path("out").string() + " --batch-report=" +
                          path("r.json").string() + " --fuel=300");
  EXPECT_EQ(r.exit_code, 0) << r.err;
  const std::string report = slurp(path("r.json"));
  EXPECT_NE(report.find("\"status\": \"degraded\""), std::string::npos);
  EXPECT_NE(report.find("\"failed\": 0"), std::string::npos);
}

TEST_F(BatchTest, EnvKnobsApplyAndValidate) {
  // POLYFUSE_CACHE_DIR enables the cache without a flag.
  const CmdResult r =
      run("--batch=" + in() + " --batch-out=" + path("out").string() +
              " --batch-report=" + path("r.json").string(),
          "POLYFUSE_CACHE_DIR=" + path("envcache").string());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(slurp(path("r.json")).find("\"enabled\": true"),
            std::string::npos);
  EXPECT_FALSE(fs::is_empty(path("envcache")));

  // Garbage numeric env values are a hard usage error, not silently 0.
  const CmdResult bad1 =
      run("--batch=" + in(), "POLYFUSE_BATCH_RETRIES=banana");
  EXPECT_EQ(bad1.exit_code, 2);
  const CmdResult bad2 = run((fs::path(in()) / "pipeline.pf").string(),
                             "POLYFUSE_CACHE_MAX_MB=-5");
  EXPECT_EQ(bad2.exit_code, 2);
}

TEST_F(BatchTest, FlagValidation) {
  // --batch with a positional input is a contradiction.
  EXPECT_EQ(run("--batch=" + in() + " " +
                (fs::path(in()) / "pipeline.pf").string())
                .exit_code,
            2);
  // Batch-only flags without --batch.
  EXPECT_EQ(run("--batch-isolate " + (fs::path(in()) / "pipeline.pf").string())
                .exit_code,
            2);
  // Per-process outputs are rejected in batch mode.
  EXPECT_EQ(run("--batch=" + in() + " --stats").exit_code, 2);
  // Missing batch source.
  EXPECT_EQ(run("--batch=" + path("nope").string()).exit_code, 2);
}

TEST_F(BatchTest, StemCollisionsGetSuffixes) {
  fs::create_directories(path("m"));
  fs::copy_file(fs::path(in()) / "matmul.pf", path("m") / "matmul.pf");
  {
    std::ofstream m(path("list.txt"));
    m << "in/matmul.pf\nm/matmul.pf\n";
  }
  const CmdResult r = run("--batch=" + path("list.txt").string() +
                          " --batch-out=" + path("out").string() +
                          " --batch-report=" + path("r.json").string());
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_TRUE(fs::exists(path("out") / "matmul.out"));
  EXPECT_TRUE(fs::exists(path("out") / "matmul-2.out"));
}

}  // namespace
