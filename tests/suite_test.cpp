// Suite-level tests: every benchmark parses and validates; every fusion
// model preserves semantics on every benchmark (small sizes); and the
// paper's qualitative fusion results hold (Figures 5, 6, 8 and the
// Section 5.3 discussion).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "codegen/codegen.h"
#include "ddg/dependences.h"
#include "exec/interp.h"
#include "fusion/models.h"
#include "sched/analysis.h"
#include "sched/pluto.h"
#include "suite/suite.h"

namespace pf::suite {
namespace {

using fusion::FusionModel;

int num_partitions(const std::vector<int>& parts) {
  return static_cast<int>(std::set<int>(parts.begin(), parts.end()).size());
}

TEST(Suite, TenBenchmarksRegistered) {
  ASSERT_EQ(all_benchmarks().size(), 10u);
  // Table 2 names.
  for (const char* name : {"gemsfdtd", "swim", "applu", "bt", "sp", "advect",
                           "lu", "tce", "gemver", "wupwise"})
    EXPECT_NO_THROW(benchmark(name));
  EXPECT_THROW(benchmark("nonesuch"), Error);
}

TEST(Suite, LargeSmallSplitMatchesTable2) {
  int large = 0;
  for (const Benchmark& b : all_benchmarks()) large += b.is_large ? 1 : 0;
  EXPECT_EQ(large, 5);
  EXPECT_TRUE(benchmark("swim").is_large);
  EXPECT_FALSE(benchmark("gemver").is_large);
}

TEST(Suite, AllBenchmarksParse) {
  for (const Benchmark& b : all_benchmarks()) {
    const ir::Scop scop = parse(b);
    EXPECT_GT(scop.num_statements(), 0u) << b.name;
    // Parameters fit the declared context.
    EXPECT_TRUE(scop.context().contains(b.test_params)) << b.name;
    EXPECT_TRUE(scop.context().contains(b.bench_params)) << b.name;
  }
}

TEST(Suite, SwimHasNineteenStatements) {
  const ir::Scop scop = parse(benchmark("swim"));
  EXPECT_EQ(scop.num_statements(), 19u);
}

TEST(Suite, InitStoreIsDeterministicAndNonZero) {
  const ir::Scop scop = parse(benchmark("lu"));
  exec::ArrayStore a(scop, {6}), b(scop, {6});
  init_store(a);
  init_store(b);
  EXPECT_EQ(exec::ArrayStore::max_abs_diff(a, b), 0.0);
  for (i64 i = 0; i < 6; ++i) EXPECT_GT(a.at(0, {i, i}), 1.0);
}

// ---------------------------------------------------------------------------
// Correctness: every model x every benchmark at test sizes.
// ---------------------------------------------------------------------------

class SuiteSemantics
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SuiteSemantics, TransformedEqualsOriginal) {
  const Benchmark& b =
      all_benchmarks()[static_cast<std::size_t>(std::get<0>(GetParam()))];
  const auto model = static_cast<FusionModel>(std::get<1>(GetParam()));

  const ir::Scop scop = parse(b);
  const auto dg = ddg::DependenceGraph::analyze(scop);

  sched::Schedule ident = sched::identity_schedule(scop);
  sched::annotate_dependences(ident, dg);
  exec::ArrayStore ref(scop, b.test_params);
  init_store(ref);
  exec::interpret(*codegen::generate_ast(scop, ident), ref);

  auto policy = fusion::make_policy(model);
  const sched::Schedule sch = sched::compute_schedule(scop, dg, *policy);
  exec::ArrayStore got(scop, b.test_params);
  init_store(got);
  exec::interpret(*codegen::generate_ast(scop, sch), got);

  EXPECT_EQ(exec::ArrayStore::max_abs_diff(ref, got), 0.0)
      << b.name << " under " << fusion::to_string(model);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarksAllModels, SuiteSemantics,
                         ::testing::Combine(::testing::Range(0, 10),
                                            ::testing::Range(0, 4)));

// ---------------------------------------------------------------------------
// Paper-shape assertions.
// ---------------------------------------------------------------------------

sched::Schedule schedule_for(const std::string& name, FusionModel m) {
  const ir::Scop* scop = nullptr;
  // Keep scop alive for the schedule: use static storage per call site.
  static std::vector<std::unique_ptr<ir::Scop>> keep;
  keep.push_back(std::make_unique<ir::Scop>(parse(benchmark(name))));
  scop = keep.back().get();
  const auto dg = ddg::DependenceGraph::analyze(*scop);
  auto policy = fusion::make_policy(m);
  return sched::compute_schedule(*scop, dg, *policy);
}

TEST(PaperShape, SwimFigure5FiveStatementFusion) {
  const auto sch = schedule_for("swim", FusionModel::kWisefuse);
  const auto parts = sch.nest_partitions();
  // S1, S2, S3, S15, S18 share one nest (indices 0,1,2,14,17).
  EXPECT_EQ(parts[0], parts[1]);
  EXPECT_EQ(parts[1], parts[2]);
  EXPECT_EQ(parts[2], parts[14]);
  EXPECT_EQ(parts[14], parts[17]);
  // S13/S16 are blocked by the boundary statements.
  EXPECT_NE(parts[12], parts[0]);
  EXPECT_NE(parts[15], parts[0]);

  // The first nest fuses exactly the paper's five statements.
  int first_nest_size = 0;
  for (const int p : parts) first_nest_size += (p == parts[0]) ? 1 : 0;
  EXPECT_EQ(first_nest_size, 5);

  // Pluto's model fuses fewer 2-d statements per nest than wisefuse's 5
  // (the paper's real swim shows at most 2; our structural model gives
  // its DFS order slightly more luck, but the gap remains).
  const auto smart = schedule_for("swim", FusionModel::kSmartfuse);
  const auto sparts = smart.nest_partitions();
  const ir::Scop scop = parse(benchmark("swim"));
  std::map<int, int> sizes;
  for (std::size_t s = 0; s < sparts.size(); ++s)
    if (scop.statement(s).dim() == 2) ++sizes[sparts[s]];
  int smart_max_2d = 0;
  for (const auto& [p, n] : sizes) smart_max_2d = std::max(smart_max_2d, n);
  EXPECT_LT(smart_max_2d, 5);
}

TEST(PaperShape, GemsfdtdFigure8PartitionCounts) {
  const int wise = num_partitions(
      schedule_for("gemsfdtd", FusionModel::kWisefuse).nest_partitions());
  const int smart = num_partitions(
      schedule_for("gemsfdtd", FusionModel::kSmartfuse).nest_partitions());
  const int none = num_partitions(
      schedule_for("gemsfdtd", FusionModel::kNofuse).nest_partitions());
  // Figure 8: wisefuse minimizes partitions; icc/nofuse keeps every nest
  // separate; smartfuse lands in between (fragmented by interleaved
  // dimensionalities).
  EXPECT_LT(wise, smart);
  EXPECT_LE(smart, none);
  EXPECT_EQ(none, 11);
  EXPECT_LE(wise, 4);
}

TEST(PaperShape, AdvectFigure6WisefuseCutsOnlyS4) {
  const auto sch = schedule_for("advect", FusionModel::kWisefuse);
  const auto parts = sch.nest_partitions();
  EXPECT_EQ(parts[0], parts[1]);
  EXPECT_EQ(parts[1], parts[2]);
  EXPECT_NE(parts[2], parts[3]);
  // Outer level parallel for both partitions.
  std::size_t first_linear = 0;
  while (!sch.level_linear[first_linear]) ++first_linear;
  EXPECT_TRUE(sch.is_parallel_for({0, 1, 2}, first_linear));
}

TEST(PaperShape, AdvectMaxfuseIsFullyFusedButNotParallel) {
  const auto sch = schedule_for("advect", FusionModel::kMaxfuse);
  EXPECT_EQ(num_partitions(sch.nest_partitions()), 1);
  std::size_t first_linear = 0;
  while (!sch.level_linear[first_linear]) ++first_linear;
  EXPECT_FALSE(sch.is_parallel_for({0, 1, 2, 3}, first_linear));
}

TEST(PaperShape, AppluWisefuseFusesPerPass) {
  const auto sch = schedule_for("applu", FusionModel::kWisefuse);
  const auto parts = sch.nest_partitions();
  // Passes: (S1,S2,S3), (S4,S5,S6), (S7,S8,S9).
  EXPECT_EQ(parts, (std::vector<int>{0, 0, 0, 1, 1, 1, 2, 2, 2}));
  // Each pass keeps an outer parallel loop.
  std::size_t first_linear = 0;
  while (!sch.level_linear[first_linear]) ++first_linear;
  EXPECT_TRUE(sch.is_parallel_for({0, 1, 2}, first_linear));
  EXPECT_TRUE(sch.is_parallel_for({3, 4, 5}, first_linear));
  EXPECT_TRUE(sch.is_parallel_for({6, 7, 8}, first_linear));
  // smartfuse fuses everything and loses outer parallelism.
  const auto smart = schedule_for("applu", FusionModel::kSmartfuse);
  EXPECT_EQ(num_partitions(smart.nest_partitions()), 1);
  std::size_t fl = 0;
  while (!smart.level_linear[fl]) ++fl;
  EXPECT_FALSE(smart.is_parallel_for({0, 1, 2, 3, 4, 5, 6, 7, 8}, fl));
}

TEST(PaperShape, GemverSection53SamePartitioning) {
  const auto wise = schedule_for("gemver", FusionModel::kWisefuse);
  const auto smart = schedule_for("gemver", FusionModel::kSmartfuse);
  EXPECT_EQ(wise.nest_partitions(), smart.nest_partitions());
  EXPECT_EQ(wise.nest_partitions(), (std::vector<int>{0, 0, 1, 2}));
}

TEST(PaperShape, LuBothModelsIdenticalAndParallel) {
  const auto wise = schedule_for("lu", FusionModel::kWisefuse);
  const auto smart = schedule_for("lu", FusionModel::kSmartfuse);
  EXPECT_EQ(wise.nest_partitions(), smart.nest_partitions());
  // Some linear level is parallel for both statements (the polyhedral
  // advantage over icc on a non-rectangular space).
  bool any_parallel = false;
  for (std::size_t l = 0; l < wise.num_levels(); ++l)
    if (wise.level_linear[l] && wise.is_parallel_for({0, 1}, l))
      any_parallel = true;
  EXPECT_TRUE(any_parallel);
}

TEST(PaperShape, TceOuterLoopsFuseAcrossPermutedNests) {
  const auto sch = schedule_for("tce", FusionModel::kWisefuse);
  // All four contractions share the outermost loops (no scalar level
  // before the first linear one).
  EXPECT_EQ(num_partitions(sch.outer_partitions()), 1);
  std::size_t first_linear = 0;
  while (!sch.level_linear[first_linear]) ++first_linear;
  EXPECT_TRUE(sch.is_parallel_for({0, 1, 2, 3}, first_linear));
}

TEST(PaperShape, WupwiseWisefusePairsRealAndImaginary) {
  const auto sch = schedule_for("wupwise", FusionModel::kWisefuse);
  const auto parts = sch.nest_partitions();
  // (S1,S2) init, (S3,S4) update, (S5,S6) scale.
  EXPECT_EQ(parts[0], parts[1]);
  EXPECT_EQ(parts[2], parts[3]);
  EXPECT_EQ(parts[4], parts[5]);
  EXPECT_NE(parts[0], parts[2]);
  EXPECT_NE(parts[2], parts[4]);
  // smartfuse's DFS order fragments this.
  const auto smart = schedule_for("wupwise", FusionModel::kSmartfuse);
  EXPECT_GT(num_partitions(smart.nest_partitions()),
            num_partitions(parts));
}

}  // namespace
}  // namespace pf::suite
