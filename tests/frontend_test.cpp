// Tests for the PolyLang lexer and parser.
#include <gtest/gtest.h>

#include "frontend/lexer.h"
#include "frontend/parser.h"

namespace pf::frontend {
namespace {

TEST(Lexer, BasicTokens) {
  const auto toks = tokenize("for (i = 0 .. N-1) { }");
  ASSERT_GE(toks.size(), 12u);
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "for");
  EXPECT_EQ(toks[1].kind, TokKind::kLParen);
  EXPECT_EQ(toks[3].kind, TokKind::kAssign);
  EXPECT_EQ(toks[4].kind, TokKind::kInt);
  EXPECT_EQ(toks[5].kind, TokKind::kDotDot);
  EXPECT_EQ(toks.back().kind, TokKind::kEof);
}

TEST(Lexer, NumbersIntVsFloatVsRange) {
  const auto toks = tokenize("3 3.5 1e3 2 .. 7");
  EXPECT_EQ(toks[0].kind, TokKind::kInt);
  EXPECT_EQ(toks[0].int_value, 3);
  EXPECT_EQ(toks[1].kind, TokKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 3.5);
  EXPECT_EQ(toks[2].kind, TokKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 1000.0);
  EXPECT_EQ(toks[3].kind, TokKind::kInt);
  EXPECT_EQ(toks[4].kind, TokKind::kDotDot);
}

TEST(Lexer, RangeAfterIntegerNoSpaces) {
  // "0..N" must lex as INT DOTDOT IDENT, not a malformed float.
  const auto toks = tokenize("0..N");
  EXPECT_EQ(toks[0].kind, TokKind::kInt);
  EXPECT_EQ(toks[1].kind, TokKind::kDotDot);
  EXPECT_EQ(toks[2].kind, TokKind::kIdent);
}

TEST(Lexer, CommentsSkipped) {
  const auto toks = tokenize("a # comment\nb // another\nc");
  ASSERT_EQ(toks.size(), 4u);  // a b c eof
  EXPECT_EQ(toks[2].text, "c");
  EXPECT_EQ(toks[2].line, 3);
}

TEST(Lexer, ComparisonOperators) {
  const auto toks = tokenize(">= <= == =");
  EXPECT_EQ(toks[0].kind, TokKind::kGe);
  EXPECT_EQ(toks[1].kind, TokKind::kLe);
  EXPECT_EQ(toks[2].kind, TokKind::kEq);
  EXPECT_EQ(toks[3].kind, TokKind::kAssign);
}

TEST(Lexer, ErrorsCarryLocation) {
  try {
    tokenize("a\n  @");
    FAIL() << "expected error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("2:3"), std::string::npos);
  }
  EXPECT_THROW(tokenize("a > b"), Error);  // bare '>' unsupported
}

constexpr const char* kGemver = R"(
scop gemver(N) {
  context N >= 4;
  array A[N][N]; array B[N][N];
  array u1[N]; array v1[N]; array u2[N]; array v2[N];
  array x[N]; array y[N]; array w[N]; array z[N];
  for (i = 0 .. N-1) {
    for (j = 0 .. N-1) {
      S1: B[i][j] = A[i][j] + u1[i]*v1[j] + u2[i]*v2[j];
    }
  }
  for (i = 0 .. N-1) {
    for (j = 0 .. N-1) {
      S2: x[i] = x[i] + 2.5*B[j][i]*y[j];
    }
  }
  for (i = 0 .. N-1) {
    S3: x[i] = x[i] + z[i];
  }
  for (i = 0 .. N-1) {
    for (j = 0 .. N-1) {
      S4: w[i] = w[i] + 1.5*B[i][j]*x[j];
    }
  }
}
)";

TEST(Parser, GemverStructure) {
  const ir::Scop s = parse_scop(kGemver);
  EXPECT_EQ(s.name(), "gemver");
  ASSERT_EQ(s.num_statements(), 4u);
  EXPECT_EQ(s.statement(0).name(), "S1");
  EXPECT_EQ(s.statement(0).dim(), 2u);
  EXPECT_EQ(s.statement(2).dim(), 1u);
  // S1 and S2 are in different loop nests: no shared loops.
  EXPECT_EQ(s.common_loop_depth(s.statement(0), s.statement(1)), 0u);
  // Context: N >= 4.
  EXPECT_FALSE(s.context().contains({3}));
  // S2 reads B transposed: subscript 0 of the B read is j.
  const auto& reads = s.statement(1).accesses();
  ASSERT_GE(reads.size(), 3u);
  // reads[0] is the write of x; find read of B (array id 1).
  bool found = false;
  for (const auto& a : reads) {
    if (!a.is_write && a.array_id == 1) {
      EXPECT_EQ(a.subscripts[0].coeff(1), 1);  // j
      EXPECT_EQ(a.subscripts[1].coeff(0), 1);  // i
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Parser, AutoNamesWhenNoLabel) {
  const ir::Scop s = parse_scop(R"(
    scop t(N) {
      array a[N];
      for (i = 0 .. N-1) { a[i] = 1.0; a[i] = 2.0; }
    })");
  EXPECT_EQ(s.statement(0).name(), "S1");
  EXPECT_EQ(s.statement(1).name(), "S2");
}

TEST(Parser, TriangularBoundsAndGuards) {
  const ir::Scop s = parse_scop(R"(
    scop lu(N) {
      context N >= 2;
      array A[N][N];
      for (k = 0 .. N-1) {
        for (i = k+1 .. N-1) {
          A[i][k] = A[i][k] / A[k][k];
          for (j = k+1 .. N-1) {
            if (j >= i) {
              A[i][j] = A[i][j] - A[i][k]*A[k][j];
            }
          }
        }
      }
    })");
  ASSERT_EQ(s.num_statements(), 2u);
  const auto& d0 = s.statement(0).domain();  // [k, i, N]
  EXPECT_TRUE(d0.contains({0, 1, 4}));
  EXPECT_FALSE(d0.contains({0, 0, 4}));  // i >= k+1
  const auto& d1 = s.statement(1).domain();  // [k, i, j, N]
  EXPECT_TRUE(d1.contains({0, 1, 2, 4}));
  EXPECT_FALSE(d1.contains({0, 2, 1, 4}));  // guard j >= i
}

TEST(Parser, AffineArithmeticInSubscripts) {
  const ir::Scop s = parse_scop(R"(
    scop sh(N) {
      array a[N+1]; array b[N+1];
      for (i = 1 .. N-1) { a[2*i - 1] = b[i + 1] * 3.0; }
    })");
  const auto& w = s.statement(0).write();
  EXPECT_EQ(w.subscripts[0].coeff(0), 2);
  EXPECT_EQ(w.subscripts[0].const_term(), -1);
}

TEST(Parser, CallsAndIteratorValues) {
  const ir::Scop s = parse_scop(R"(
    scop c(N) {
      array a[N];
      for (i = 0 .. N-1) { a[i] = sqrt(a[i]) + i * 0.5; }
    })");
  const std::string body =
      ir::expr_to_string(s.statement(0).body(), s.array_names());
  EXPECT_NE(body.find("sqrt(a[i])"), std::string::npos);
  EXPECT_NE(body.find("(i)"), std::string::npos);
}

TEST(Parser, Errors) {
  // Undeclared array write.
  EXPECT_THROW(parse_scop("scop t(N) { for (i = 0 .. N-1) { a[i] = 1.0; } }"),
               Error);
  // Array used as scalar.
  EXPECT_THROW(parse_scop(R"(
    scop t(N) { array a[N]; array b[N];
      for (i = 0 .. N-1) { a[i] = b; } })"),
               Error);
  // Non-affine subscript (i*i).
  EXPECT_THROW(parse_scop(R"(
    scop t(N) { array a[N];
      for (i = 0 .. N-1) { a[i*i] = 1.0; } })"),
               Error);
  // Missing semicolon.
  EXPECT_THROW(parse_scop(R"(
    scop t(N) { array a[N];
      for (i = 0 .. N-1) { a[i] = 1.0 } })"),
               Error);
  // Unbalanced braces.
  EXPECT_THROW(parse_scop("scop t(N) { array a[N];"), Error);
  // Affine expression using an array name.
  EXPECT_THROW(parse_scop(R"(
    scop t(N) { array a[N];
      for (i = 0 .. a) { a[i] = 1.0; } })"),
               Error);
}

TEST(Parser, ParseErrorLocations) {
  try {
    parse_scop("scop t(N) {\n  array a[N]\n}");  // missing ';' at line 3
    FAIL() << "expected error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("parse error"), std::string::npos);
  }
}

TEST(Parser, RoundTripThroughPrettyPrinter) {
  const ir::Scop s = parse_scop(kGemver);
  // The pretty-printed text is itself parseable PolyLang modulo the
  // scop/array headers; just sanity-check shape here.
  const std::string text = s.to_string();
  EXPECT_NE(text.find("S1: B[i][j]"), std::string::npos);
  EXPECT_NE(text.find("S4: w[i]"), std::string::npos);
}

}  // namespace
}  // namespace pf::frontend
