// Tests for the exec module beyond what codegen_test covers: JIT error
// paths and artifacts, C-emission details, interpreter math calls.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "codegen/cemit.h"
#include "codegen/codegen.h"
#include "ddg/dependences.h"
#include "exec/interp.h"
#include "exec/jit.h"
#include "frontend/parser.h"
#include "sched/analysis.h"
#include "support/budget.h"

namespace pf::exec {
namespace {

codegen::AstPtr identity_ast(const ir::Scop& scop,
                             const ddg::DependenceGraph& dg) {
  sched::Schedule sch = sched::identity_schedule(scop);
  sched::annotate_dependences(sch, dg);
  return codegen::generate_ast(scop, sch);
}

TEST(Jit, CompileErrorIsReported) {
  if (!jit_available()) GTEST_SKIP();
  std::string err;
  const auto k = JitKernel::compile("this is not C", "pf_kernel", {}, &err);
  EXPECT_FALSE(k.has_value());
  // The nonzero exit is diagnosed and the compiler's own stderr is
  // captured into the error message.
  EXPECT_NE(err.find("exited with code"), std::string::npos) << err;
  EXPECT_NE(err.find("error"), std::string::npos) << err;
}

// Write an executable fake "compiler" script and return its path.
std::string write_fake_compiler(const std::string& name,
                                const std::string& body) {
  const std::string path = std::string(::testing::TempDir()) + "exec_" +
                           std::to_string(::getpid()) + "_" + name;
  {
    std::ofstream out(path);
    out << "#!/bin/sh\n" << body << "\n";
  }
  ::chmod(path.c_str(), 0755);
  return path;
}

TEST(Jit, HungCompilerIsKilledOnTimeout) {
  JitOptions opts;
  opts.compiler = write_fake_compiler("sleepy.sh", "sleep 30");
  opts.compile_timeout_ms = 200;
  std::string err;
  const auto k = JitKernel::compile("int x;", "pf_kernel", opts, &err);
  EXPECT_FALSE(k.has_value());
  EXPECT_NE(err.find("timed out after 200 ms"), std::string::npos) << err;
}

TEST(Jit, CompilerStderrSurfacesInTheError) {
  JitOptions opts;
  opts.compiler =
      write_fake_compiler("noisy.sh", "echo boom-diagnostic >&2; exit 3");
  std::string err;
  const auto k = JitKernel::compile("int x;", "pf_kernel", opts, &err);
  EXPECT_FALSE(k.has_value());
  EXPECT_NE(err.find("exited with code 3"), std::string::npos) << err;
  EXPECT_NE(err.find("boom-diagnostic"), std::string::npos) << err;
}

TEST(Jit, FailedCompilesDoNotLeakTempDirs) {
  JitOptions opts;
  opts.compiler = write_fake_compiler("failing.sh", "exit 1");
  const auto count_dirs = [] {
    std::size_t n = 0;
    std::error_code ec;
    for (const auto& e :
         std::filesystem::directory_iterator("/tmp", ec))
      if (e.path().filename().string().rfind("polyfuse-jit-", 0) == 0) ++n;
    return n;
  };
  const std::size_t before = count_dirs();
  for (int i = 0; i < 3; ++i) {
    std::string err;
    EXPECT_FALSE(JitKernel::compile("int x;", "pf_kernel", opts, &err));
  }
  // Tolerate unrelated concurrent JIT users; our three failures must
  // not have left three new trees behind.
  EXPECT_LT(count_dirs(), before + 3);
}

TEST(Jit, InjectedCcFaultSkipsTheCompile) {
  support::BudgetSpec spec;
  spec.injections.push_back({support::BudgetSite::kJitCc, 0});
  support::Budget budget(spec);
  support::BudgetScope scope(&budget);
  std::string err;
  const auto k = JitKernel::compile("int x;", "pf_kernel", {}, &err);
  EXPECT_FALSE(k.has_value());
  EXPECT_NE(err.find("jit compile aborted"), std::string::npos) << err;
  EXPECT_EQ(budget.faults(), 1);
}

TEST(Jit, MissingSymbolIsReported) {
  if (!jit_available()) GTEST_SKIP();
  std::string err;
  const auto k = JitKernel::compile(
      "void something_else(double** a, const long long* p) {}", "pf_kernel",
      {}, &err);
  EXPECT_FALSE(k.has_value());
  EXPECT_NE(err.find("not found"), std::string::npos);
}

TEST(Jit, BadCompilerDetected) {
  JitOptions opts;
  opts.compiler = "definitely-not-a-compiler-xyz";
  EXPECT_FALSE(jit_available(opts));
}

TEST(Jit, RunsMinimalKernel) {
  if (!jit_available()) GTEST_SKIP();
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 2; array a[N];
      for (i = 0 .. N-1) { S1: a[i] = i * 2.0 + 1.0; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const auto ast = identity_ast(scop, dg);
  std::string err;
  auto k = JitKernel::compile(codegen::emit_c(*ast, scop), "pf_kernel", {},
                              &err);
  ASSERT_TRUE(k.has_value()) << err;
  ArrayStore store(scop, {5});
  k->run(store);
  for (i64 i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(store.at(0, {i}), 2.0 * static_cast<double>(i) + 1.0);
}

TEST(CEmit, HelpersAndLinearization) {
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 2; array A[N][N+1];
      for (i = 0 .. N-1) { for (j = 0 .. N) { S1: A[i][j] = 1.0; } } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const std::string c = codegen::emit_c(*identity_ast(scop, dg), scop);
  // Row-major linearization with the declared extent N+1 of dim 1.
  EXPECT_NE(c.find("* (N + 1) +"), std::string::npos);
  EXPECT_NE(c.find("pf_ceild"), std::string::npos);  // helper defined
  EXPECT_NE(c.find("const long long N = params[0];"), std::string::npos);
}

TEST(CEmit, RejectsIteratorNamedLikeLoopVars) {
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 2; array a[N];
      for (t0 = 0 .. N-1) { S1: a[t0] = 1.0; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  EXPECT_THROW(codegen::emit_c(*identity_ast(scop, dg), scop), Error);
}

TEST(Interp, MathCalls) {
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 2; array a[N]; array b[N];
      for (i = 0 .. N-1) { S1: b[i] = sqrt(a[i]) + fabs(a[i] - 5.0)
          + pow(a[i], 2.0) + fmin(a[i], 2.0); } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const auto ast = identity_ast(scop, dg);
  ArrayStore store(scop, {3});
  store.fill(0, [](const IntVector& idx) {
    return 1.0 + static_cast<double>(idx[0]);
  });
  interpret(*ast, store);
  for (i64 i = 0; i < 3; ++i) {
    const double a = 1.0 + static_cast<double>(i);
    EXPECT_DOUBLE_EQ(store.at(1, {i}), std::sqrt(a) + std::fabs(a - 5.0) +
                                           std::pow(a, 2.0) +
                                           std::fmin(a, 2.0));
  }
}

TEST(Interp, UnsupportedCallThrows) {
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 2; array a[N];
      for (i = 0 .. N-1) { S1: a[i] = frobnicate(a[i]); } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const auto ast = identity_ast(scop, dg);
  ArrayStore store(scop, {3});
  EXPECT_THROW(interpret(*ast, store), Error);
}

TEST(Interp, ParamValuesReachSubscriptsAndBodies) {
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 3; array a[N+1];
      for (i = 0 .. 0) { S1: a[N] = N * 1.0; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const auto ast = identity_ast(scop, dg);
  ArrayStore store(scop, {7});
  interpret(*ast, store);
  EXPECT_DOUBLE_EQ(store.at(0, {7}), 7.0);
}

}  // namespace
}  // namespace pf::exec
