// Tests for the poly module: affine expressions and IntegerSet operations
// (emptiness, optimization, Fourier-Motzkin projection), including a
// property test checking FM projections against point enumeration.
#include <gtest/gtest.h>

#include <random>

#include "poly/affine.h"
#include "poly/count.h"
#include "poly/set.h"
#include "support/budget.h"
#include "support/stats.h"

namespace pf::poly {
namespace {

TEST(AffineExpr, Construction) {
  const auto x = AffineExpr::var(3, 1);
  EXPECT_EQ(x.coeff(0), 0);
  EXPECT_EQ(x.coeff(1), 1);
  EXPECT_EQ(x.const_term(), 0);
  const auto c = AffineExpr::constant(3, 5);
  EXPECT_TRUE(c.is_constant());
  EXPECT_FALSE(c.is_zero());
  EXPECT_TRUE(AffineExpr(3).is_zero());
}

TEST(AffineExpr, Arithmetic) {
  const auto x = AffineExpr::var(2, 0);
  const auto y = AffineExpr::var(2, 1);
  const auto e = x * 2 + y - AffineExpr::constant(2, 3);
  EXPECT_EQ(e.coeff(0), 2);
  EXPECT_EQ(e.coeff(1), 1);
  EXPECT_EQ(e.const_term(), -3);
  EXPECT_EQ(e.eval(IntVector{4, 1}), 6);
  EXPECT_EQ((-e).eval(IntVector{4, 1}), -6);
}

TEST(AffineExpr, RemapAndInsertDims) {
  const auto x = AffineExpr::var(2, 0) + AffineExpr::var(2, 1) * 3;
  const auto r = x.remap(4, {2, 0});
  EXPECT_EQ(r.coeff(0), 3);
  EXPECT_EQ(r.coeff(2), 1);
  const auto ins = x.insert_dims(1, 2);
  EXPECT_EQ(ins.dims(), 4u);
  EXPECT_EQ(ins.coeff(0), 1);
  EXPECT_EQ(ins.coeff(3), 3);
}

TEST(AffineExpr, DropDims) {
  auto e = AffineExpr::var(3, 0) * 2 + AffineExpr::constant(3, 1);
  const auto d = e.drop_dims({false, true, false});
  EXPECT_EQ(d.dims(), 2u);
  EXPECT_EQ(d.coeff(0), 2);
  // Dropping a dim with nonzero coefficient is a hard error.
  EXPECT_THROW(e.drop_dims({true, false, false}), Error);
}

TEST(AffineExpr, ToString) {
  const auto e =
      AffineExpr::var(2, 0) * 2 - AffineExpr::var(2, 1) + AffineExpr::constant(2, -5);
  EXPECT_EQ(e.to_string({"i", "j"}), "2*i - j - 5");
  EXPECT_EQ(AffineExpr::constant(2, 0).to_string(), "0");
}

TEST(Constraint, Builders) {
  const auto x = AffineExpr::var(1, 0);
  const auto ge = Constraint::ge(x, AffineExpr::constant(1, 2));
  EXPECT_FALSE(ge.is_equality);
  EXPECT_EQ(ge.expr.const_term(), -2);
  const auto eq = Constraint::eq(x, AffineExpr::constant(1, 2));
  EXPECT_TRUE(eq.is_equality);
}

IntegerSet box2(i64 lo0, i64 hi0, i64 lo1, i64 hi1) {
  IntegerSet s(2);
  const auto x = AffineExpr::var(2, 0);
  const auto y = AffineExpr::var(2, 1);
  s.add_constraint(Constraint::ge(x, AffineExpr::constant(2, lo0)));
  s.add_constraint(Constraint::le(x, AffineExpr::constant(2, hi0)));
  s.add_constraint(Constraint::ge(y, AffineExpr::constant(2, lo1)));
  s.add_constraint(Constraint::le(y, AffineExpr::constant(2, hi1)));
  return s;
}

TEST(IntegerSet, ContainsAndEmptiness) {
  auto s = box2(0, 3, 1, 2);
  EXPECT_TRUE(s.contains({0, 1}));
  EXPECT_TRUE(s.contains({3, 2}));
  EXPECT_FALSE(s.contains({4, 1}));
  EXPECT_FALSE(s.is_empty());

  IntegerSet e(1);
  e.add_constraint(Constraint::ge(AffineExpr::var(1, 0), AffineExpr::constant(1, 3)));
  e.add_constraint(Constraint::le(AffineExpr::var(1, 0), AffineExpr::constant(1, 1)));
  EXPECT_TRUE(e.is_empty());
}

TEST(IntegerSet, TriviallyEmptyByGcd) {
  IntegerSet s(1);
  auto e = AffineExpr::var(1, 0) * 2 + AffineExpr::constant(1, -1);
  s.add_constraint(Constraint::eq0(e));  // 2x == 1
  EXPECT_TRUE(s.trivially_empty());
  EXPECT_TRUE(s.is_empty());
}

TEST(IntegerSet, ConstantConstraints) {
  IntegerSet s(1);
  s.add_constraint(Constraint::ge0(AffineExpr::constant(1, 5)));  // true, dropped
  EXPECT_EQ(s.num_constraints(), 0u);
  s.add_constraint(Constraint::ge0(AffineExpr::constant(1, -5)));  // false
  EXPECT_TRUE(s.trivially_empty());
}

TEST(IntegerSet, IntegerMinMax) {
  auto s = box2(-2, 5, 0, 3);
  const auto x = AffineExpr::var(2, 0);
  const auto y = AffineExpr::var(2, 1);
  auto mn = s.integer_min(x + y);
  ASSERT_EQ(mn.kind, IntegerSet::Opt::kOk);
  EXPECT_EQ(mn.value, -2);
  auto mx = s.integer_max(x * 2 - y);
  ASSERT_EQ(mx.kind, IntegerSet::Opt::kOk);
  EXPECT_EQ(mx.value, 10);
}

TEST(IntegerSet, IntegerMinTighterThanRational) {
  // 2x >= 1, x <= 10: integer min of x is 1, not 1/2.
  IntegerSet s(1);
  s.add_constraint(Constraint::ge0(AffineExpr::var(1, 0) * 2 +
                                   AffineExpr::constant(1, -1)));
  s.add_constraint(Constraint::le(AffineExpr::var(1, 0), AffineExpr::constant(1, 10)));
  const auto mn = s.integer_min(AffineExpr::var(1, 0));
  ASSERT_EQ(mn.kind, IntegerSet::Opt::kOk);
  EXPECT_EQ(mn.value, 1);
}

TEST(IntegerSet, UnboundedOptimization) {
  IntegerSet s(1);
  s.add_constraint(Constraint::ge(AffineExpr::var(1, 0), AffineExpr::constant(1, 0)));
  EXPECT_EQ(s.integer_max(AffineExpr::var(1, 0)).kind, IntegerSet::Opt::kUnbounded);
  EXPECT_EQ(s.integer_min(AffineExpr::var(1, 0)).value, 0);
}

TEST(IntegerSet, EmptyOptimization) {
  IntegerSet s(1);
  s.add_constraint(Constraint::ge(AffineExpr::var(1, 0), AffineExpr::constant(1, 2)));
  s.add_constraint(Constraint::le(AffineExpr::var(1, 0), AffineExpr::constant(1, 1)));
  EXPECT_EQ(s.integer_min(AffineExpr::var(1, 0)).kind, IntegerSet::Opt::kEmpty);
}

TEST(IntegerSet, SamplePoint) {
  auto s = box2(2, 4, -1, 1);
  const auto p = s.sample_point();
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(s.contains(*p));
}

TEST(IntegerSet, ProjectTriangle) {
  // { (i,j) : 0 <= i <= 9, i <= j <= 9 } projected onto i: 0 <= i <= 9.
  IntegerSet s(2);
  const auto i = AffineExpr::var(2, 0);
  const auto j = AffineExpr::var(2, 1);
  s.add_constraint(Constraint::ge(i, AffineExpr::constant(2, 0)));
  s.add_constraint(Constraint::le(i, AffineExpr::constant(2, 9)));
  s.add_constraint(Constraint::ge(j, i));
  s.add_constraint(Constraint::le(j, AffineExpr::constant(2, 9)));
  const auto proj = s.project_onto_prefix(1);
  EXPECT_EQ(proj.dims(), 1u);
  for (i64 v = 0; v <= 9; ++v) EXPECT_TRUE(proj.contains({v}));
  EXPECT_FALSE(proj.contains({10}));
  EXPECT_FALSE(proj.contains({-1}));
}

TEST(IntegerSet, EliminationViaUnitEqualityIsExact) {
  // { (i,k) : k == 2i, 0 <= k <= 10 } eliminate k -> 0 <= 2i <= 10.
  IntegerSet s(2);
  const auto i = AffineExpr::var(2, 0);
  const auto k = AffineExpr::var(2, 1);
  s.add_constraint(Constraint::eq(k, i * 2));
  s.add_constraint(Constraint::ge(k, AffineExpr::constant(2, 0)));
  s.add_constraint(Constraint::le(k, AffineExpr::constant(2, 10)));
  const auto proj = s.eliminate_dim(1);
  EXPECT_TRUE(proj.contains({0}));
  EXPECT_TRUE(proj.contains({5}));
  EXPECT_FALSE(proj.contains({6}));
}

TEST(IntegerSet, EliminateMiddleDimKeepsOrder) {
  // { (a,b,c) : a <= b <= c } eliminate b -> a <= c.
  IntegerSet s(3);
  const auto a = AffineExpr::var(3, 0);
  const auto b = AffineExpr::var(3, 1);
  const auto c = AffineExpr::var(3, 2);
  s.add_constraint(Constraint::ge(b, a));
  s.add_constraint(Constraint::ge(c, b));
  const auto proj = s.eliminate_dim(1);
  EXPECT_EQ(proj.dims(), 2u);
  EXPECT_TRUE(proj.contains({1, 5}));
  EXPECT_FALSE(proj.contains({5, 1}));
}

TEST(IntegerSet, InsertDims) {
  IntegerSet s(1);
  s.add_constraint(Constraint::ge(AffineExpr::var(1, 0), AffineExpr::constant(1, 3)));
  const auto e = s.insert_dims(0, 2);
  EXPECT_EQ(e.dims(), 3u);
  EXPECT_TRUE(e.contains({-100, 100, 3}));
  EXPECT_FALSE(e.contains({0, 0, 2}));
}

TEST(IntegerSet, IntersectPropagatesEmptiness) {
  auto a = box2(0, 5, 0, 5);
  IntegerSet b(2);
  b.add_constraint(Constraint::ge0(AffineExpr::constant(2, -1)));
  EXPECT_TRUE(b.trivially_empty());
  a.intersect(b);
  EXPECT_TRUE(a.trivially_empty());
}

TEST(IntegerSet, RemoveRedundantKeepsSemantics) {
  auto s = box2(0, 10, 0, 10);
  // Redundant: x <= 50, x + y <= 100.
  const auto x = AffineExpr::var(2, 0);
  const auto y = AffineExpr::var(2, 1);
  s.add_constraint(Constraint::le(x, AffineExpr::constant(2, 50)));
  s.add_constraint(Constraint::le(x + y, AffineExpr::constant(2, 100)));
  const std::size_t before = s.num_constraints();
  s.remove_redundant();
  EXPECT_LT(s.num_constraints(), before);
  EXPECT_TRUE(s.contains({10, 10}));
  EXPECT_FALSE(s.contains({11, 0}));
  EXPECT_FALSE(s.contains({0, 11}));
}

TEST(IntegerSet, DuplicateConstraintsDropped) {
  IntegerSet s(1);
  const auto c =
      Constraint::ge(AffineExpr::var(1, 0), AffineExpr::constant(1, 1));
  s.add_constraint(c);
  s.add_constraint(c);
  EXPECT_EQ(s.num_constraints(), 1u);
}

TEST(IntegerSet, HashIsOrderIndependent) {
  const auto c1 =
      Constraint::ge(AffineExpr::var(2, 0), AffineExpr::constant(2, 1));
  const auto c2 =
      Constraint::le(AffineExpr::var(2, 1), AffineExpr::constant(2, 9));
  const auto c3 = Constraint::ge(AffineExpr::var(2, 0), AffineExpr::var(2, 1));
  IntegerSet a(2), b(2);
  a.add_constraint(c1);
  a.add_constraint(c2);
  a.add_constraint(c3);
  b.add_constraint(c3);
  b.add_constraint(c1);
  b.add_constraint(c2);
  EXPECT_EQ(a.hash_value(), b.hash_value());

  IntegerSet c(2);
  c.add_constraint(c1);
  c.add_constraint(c2);
  EXPECT_NE(a.hash_value(), c.hash_value());
}

TEST(IntegerSet, SolveCacheHitsRepeatedQueries) {
  auto& stats = support::Stats::instance();
  ASSERT_TRUE(solve_cache_enabled());
  clear_solve_cache();
  stats.reset();

  // Two structurally identical but distinct sets: the second emptiness
  // test must be served from the cache.
  auto make = [] {
    IntegerSet s(2);
    s.add_constraint(
        Constraint::ge(AffineExpr::var(2, 0), AffineExpr::constant(2, 2)));
    s.add_constraint(
        Constraint::le(AffineExpr::var(2, 0), AffineExpr::constant(2, 1)));
    s.add_constraint(
        Constraint::ge(AffineExpr::var(2, 1), AffineExpr::constant(2, 0)));
    return s;
  };
  EXPECT_TRUE(make().is_empty());
  const auto hits0 = stats.get(support::Counter::kSolveCacheHits);
  EXPECT_TRUE(make().is_empty());
  EXPECT_GT(stats.get(support::Counter::kSolveCacheHits), hits0);

  // integer_min memoizes per objective: same set + same objective hits,
  // a different objective misses.
  clear_solve_cache();
  stats.reset();
  auto box = box2(0, 5, 0, 3);
  const auto x = AffineExpr::var(2, 0);
  const auto y = AffineExpr::var(2, 1);
  EXPECT_EQ(box.integer_min(x).value, 0);
  const auto misses0 = stats.get(support::Counter::kSolveCacheMisses);
  auto box_again = box2(0, 5, 0, 3);
  EXPECT_EQ(box_again.integer_min(x).value, 0);
  EXPECT_EQ(stats.get(support::Counter::kSolveCacheMisses), misses0);
  EXPECT_EQ(box_again.integer_min(y + x).value, 0);
  EXPECT_GT(stats.get(support::Counter::kSolveCacheMisses), misses0);
  stats.reset();
}

TEST(IntegerSet, SolveCacheCanBeDisabled) {
  auto& stats = support::Stats::instance();
  set_solve_cache_enabled(false);
  clear_solve_cache();
  stats.reset();
  IntegerSet s(1);
  s.add_constraint(
      Constraint::ge(AffineExpr::var(1, 0), AffineExpr::constant(1, 2)));
  s.add_constraint(
      Constraint::le(AffineExpr::var(1, 0), AffineExpr::constant(1, 1)));
  EXPECT_TRUE(s.is_empty());
  EXPECT_TRUE(s.is_empty());
  EXPECT_EQ(stats.get(support::Counter::kSolveCacheHits), 0);
  EXPECT_EQ(stats.get(support::Counter::kSolveCacheMisses), 0);
  set_solve_cache_enabled(true);
  stats.reset();
}

TEST(IntegerSet, ToStringReadable) {
  IntegerSet s(2);
  s.add_constraint(Constraint::ge(AffineExpr::var(2, 0), AffineExpr::var(2, 1)));
  const auto str = s.to_string({"i", "j"});
  EXPECT_NE(str.find("i - j >= 0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Property test: FM projection must contain exactly the points whose fiber
// is non-empty (it may overapproximate only at non-integral fibers; for the
// constraint families generated here we verify both directions against
// enumeration on a box, accepting overapproximation points only if the
// rational fiber is non-empty).
// ---------------------------------------------------------------------------

class FmVsEnumeration : public ::testing::TestWithParam<unsigned> {};

TEST_P(FmVsEnumeration, ProjectionSound) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<i64> coef(-3, 3);
  std::uniform_int_distribution<i64> cst(-5, 5);
  std::uniform_int_distribution<int> nc(1, 4);

  const i64 kLo = -5, kHi = 5;
  IntegerSet s(3);
  // Box the space so enumeration is finite.
  for (std::size_t d = 0; d < 3; ++d) {
    s.add_constraint(Constraint::ge(AffineExpr::var(3, d),
                                    AffineExpr::constant(3, kLo)));
    s.add_constraint(Constraint::le(AffineExpr::var(3, d),
                                    AffineExpr::constant(3, kHi)));
  }
  const int n = nc(rng);
  for (int i = 0; i < n; ++i) {
    AffineExpr e(3, cst(rng));
    for (std::size_t d = 0; d < 3; ++d) e.set_coeff(d, coef(rng));
    s.add_constraint(Constraint::ge0(e));
  }

  const auto proj = s.project_onto_prefix(2);

  for (i64 x = kLo; x <= kHi; ++x) {
    for (i64 y = kLo; y <= kHi; ++y) {
      bool fiber_nonempty = false;
      for (i64 z = kLo; z <= kHi && !fiber_nonempty; ++z)
        fiber_nonempty = s.contains({x, y, z});
      if (fiber_nonempty) {
        // Soundness: every point with a non-empty fiber must be in the
        // projection.
        EXPECT_TRUE(proj.contains({x, y}))
            << "seed " << GetParam() << " point (" << x << "," << y << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, FmVsEnumeration,
                         ::testing::Range(0u, 30u));

// ---------------------------------------------------------------------------
// Degenerate-set consistency: zero-dimensional and trivially-empty sets
// behave identically across contains / emptiness / projection /
// insert_dims, and every way of producing an empty set canonicalizes to
// the same (hash-equal) state.
// ---------------------------------------------------------------------------

TEST(IntegerSet, ZeroDimUniverse) {
  const IntegerSet u = IntegerSet::universe(0);
  EXPECT_FALSE(u.trivially_empty());
  EXPECT_FALSE(u.is_empty());
  EXPECT_TRUE(u.contains({}));  // the unique 0-dim point
  const auto p = u.sample_point();
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->empty());
}

TEST(IntegerSet, ZeroDimEmpty) {
  IntegerSet e(0);
  e.add_constraint(Constraint::ge0(AffineExpr::constant(0, -1)));  // -1 >= 0
  EXPECT_TRUE(e.trivially_empty());
  EXPECT_TRUE(e.is_empty());
  EXPECT_FALSE(e.contains({}));
  EXPECT_FALSE(e.sample_point().has_value());
}

TEST(IntegerSet, ContainsChecksDimension) {
  const auto s = box2(0, 1, 0, 1);
  EXPECT_THROW(s.contains({0}), Error);
  EXPECT_THROW(s.contains({0, 0, 0}), Error);
}

TEST(IntegerSet, TriviallyEmptyCanonicalizes) {
  // Three different routes to a *syntactically* empty set must land in
  // the same canonical state: flagged, zero constraints, equal hashes.
  // (`x >= 3 /\ x <= 1` is ILP-empty but not trivially empty -- the
  // flag is the syntactic notion.)
  IntegerSet by_constant(2);
  by_constant.add_constraint(Constraint::ge0(AffineExpr::constant(2, -7)));

  IntegerSet by_parity(2);  // 2x == 1 has no integer solution
  by_parity.add_constraint(Constraint::eq0(AffineExpr::var(2, 0) * 2 -
                                           AffineExpr::constant(2, 1)));

  IntegerSet by_intersect = box2(0, 5, 0, 5);
  by_intersect.intersect(by_constant);

  for (const IntegerSet* s : {&by_constant, &by_parity, &by_intersect}) {
    EXPECT_TRUE(s->trivially_empty());
    EXPECT_EQ(s->num_constraints(), 0u);
    EXPECT_TRUE(s->is_empty());
    EXPECT_FALSE(s->contains({0, 0}));
    EXPECT_FALSE(s->sample_point().has_value());
    EXPECT_EQ(s->hash_value(), by_constant.hash_value());
  }
}

TEST(IntegerSet, TriviallyEmptySurvivesShapeOps) {
  IntegerSet e(2);
  e.add_constraint(Constraint::ge0(AffineExpr::constant(2, -1)));
  ASSERT_TRUE(e.trivially_empty());

  const auto proj = e.project_onto_prefix(1);
  EXPECT_TRUE(proj.trivially_empty());
  EXPECT_FALSE(proj.contains({0}));

  const auto elim = e.eliminate_dims({true, false});
  EXPECT_TRUE(elim.trivially_empty());

  const auto ins = e.insert_dims(1, 2);
  EXPECT_EQ(ins.dims(), 4u);
  EXPECT_TRUE(ins.trivially_empty());
  EXPECT_FALSE(ins.contains({0, 0, 0, 0}));
}

// ---------------------------------------------------------------------------
// Exact point counting (poly/count.h): degenerate shapes, exact shapes,
// the structured unbounded/unknown outcomes, and projection counting.
// ---------------------------------------------------------------------------

IntegerSet interval1(i64 lo, i64 hi) {
  IntegerSet s(1);
  const auto x = AffineExpr::var(1, 0);
  s.add_constraint(Constraint::ge(x, AffineExpr::constant(1, lo)));
  s.add_constraint(Constraint::le(x, AffineExpr::constant(1, hi)));
  return s;
}

TEST(Count, DegenerateSets) {
  // Zero-dim universe: exactly one (empty-tuple) point.
  const Count zero_dim = count_points(IntegerSet::universe(0));
  EXPECT_TRUE(zero_dim.is_exact());
  EXPECT_EQ(zero_dim.value, 1);

  // Zero-dim contradiction: constant-only constraints fold at add time.
  IntegerSet contra(0);
  contra.add_constraint(Constraint::ge0(AffineExpr::constant(0, -1)));
  EXPECT_TRUE(contra.trivially_empty());
  const Count zero = count_points(contra);
  EXPECT_TRUE(zero.is_exact());
  EXPECT_EQ(zero.value, 0);

  // Trivially-empty 1-D set, and an ILP-empty (lo > hi) interval.
  IntegerSet contra1(1);
  contra1.add_constraint(Constraint::ge0(AffineExpr::constant(1, -1)));
  EXPECT_EQ(count_points(contra1).to_string(), "0");
  EXPECT_EQ(count_points(interval1(5, 4)).to_string(), "0");

  // Integer-empty via gcd gaps: 2x == 1 has rational but no int points.
  IntegerSet gap(1);
  gap.add_constraint(
      Constraint::eq(AffineExpr::var(1, 0) * 2, AffineExpr::constant(1, 1)));
  EXPECT_EQ(count_points(gap).to_string(), "0");

  // Empty union, and a union of only trivially-empty disjuncts.
  EXPECT_EQ(count_points(SetUnion::empty(2)).to_string(), "0");
  EXPECT_EQ(count_points(SetUnion::wrap(contra1)).to_string(), "0");
}

TEST(Count, ExactShapes) {
  // Interval, rectangle (separable fast path), triangle, diagonal.
  EXPECT_EQ(count_points(interval1(3, 7)).value, 5);
  EXPECT_EQ(count_points(interval1(-2, 2)).value, 5);

  IntegerSet rect(2);
  rect.intersect(interval1(0, 9).insert_dims(1, 1));
  {
    const auto y = AffineExpr::var(2, 1);
    rect.add_constraint(Constraint::ge(y, AffineExpr::constant(2, 0)));
    rect.add_constraint(Constraint::le(y, AffineExpr::constant(2, 3)));
  }
  EXPECT_EQ(count_points(rect).value, 40);

  // 0 <= x <= y <= 9: 55 points (coupled, exercises the enumeration).
  IntegerSet tri(2);
  const auto x = AffineExpr::var(2, 0);
  const auto y = AffineExpr::var(2, 1);
  tri.add_constraint(Constraint::ge(x, AffineExpr::constant(2, 0)));
  tri.add_constraint(Constraint::le(x, y));
  tri.add_constraint(Constraint::le(y, AffineExpr::constant(2, 9)));
  EXPECT_EQ(count_points(tri).value, 55);

  // Diagonal of a 10x10 box: equality collapses one dim.
  IntegerSet diag(2);
  diag.add_constraint(Constraint::ge(x, AffineExpr::constant(2, 0)));
  diag.add_constraint(Constraint::le(x, AffineExpr::constant(2, 9)));
  diag.add_constraint(Constraint::eq(x, y));
  EXPECT_EQ(count_points(diag).value, 10);

  // Even points of [0, 9]: x == 2t has no explicit t here, but 2y == x
  // inside a box counts the stride-2 sublattice exactly.
  IntegerSet even(2);
  even.add_constraint(Constraint::ge(x, AffineExpr::constant(2, 0)));
  even.add_constraint(Constraint::le(x, AffineExpr::constant(2, 9)));
  even.add_constraint(Constraint::eq(x, y * 2));
  EXPECT_EQ(count_points(even).value, 5);
}

TEST(Count, UnboundedAndUnknown) {
  // Universe and half-line are genuinely infinite, not unknown.
  EXPECT_EQ(count_points(IntegerSet::universe(1)).kind, Count::kUnbounded);
  IntegerSet half(1);
  half.add_constraint(
      Constraint::ge(AffineExpr::var(1, 0), AffineExpr::constant(1, 3)));
  EXPECT_EQ(count_points(half).kind, Count::kUnbounded);
  EXPECT_EQ(count_points(half).to_string(), "unbounded");

  // A separable product that overflows int64 degrades to unknown.
  const i64 kHuge = i64{1} << 40;
  IntegerSet big(2);
  big.intersect(interval1(0, kHuge).insert_dims(1, 1));
  big.add_constraint(
      Constraint::ge(AffineExpr::var(2, 1), AffineExpr::constant(2, 0)));
  big.add_constraint(Constraint::le(AffineExpr::var(2, 1),
                                    AffineExpr::constant(2, kHuge)));
  EXPECT_EQ(count_points(big).kind, Count::kUnknown);
  EXPECT_EQ(count_points(big).to_string(), "unknown");

  // A coupled set whose leading range exceeds the step guard: unknown,
  // never a wrong number.
  IntegerSet tri(2);
  const auto x = AffineExpr::var(2, 0);
  const auto y = AffineExpr::var(2, 1);
  tri.add_constraint(Constraint::ge(x, AffineExpr::constant(2, 0)));
  tri.add_constraint(Constraint::le(x, y));
  tri.add_constraint(Constraint::le(y, AffineExpr::constant(2, 99)));
  CountOptions tight;
  tight.max_steps = 4;
  EXPECT_EQ(count_points(tri, tight).kind, Count::kUnknown);
}

TEST(Count, FuelBudgetDegradesToUnknown) {
  // With zero count_set fuel every count degrades to the structured
  // unknown -- the BudgetExceeded never escapes count_points.
  support::BudgetSpec spec;
  spec.fuel = 0;
  support::Budget budget(spec);
  support::BudgetScope scope(&budget);
  EXPECT_EQ(count_points(interval1(0, 9)).kind, Count::kUnknown);
  // Trivial emptiness needs no fuel: still an exact 0.
  IntegerSet contra(1);
  contra.add_constraint(Constraint::ge0(AffineExpr::constant(1, -1)));
  EXPECT_EQ(count_points(contra).to_string(), "0");
}

TEST(Count, ProjectionCountsDistinctPrefixes) {
  // {(c, i) : c == 2i, 0 <= i <= 9}: 10 distinct cells -- the exact
  // projection, where Fourier-Motzkin's rational shadow would admit 19.
  IntegerSet acc(2);
  const auto c = AffineExpr::var(2, 0);
  const auto i = AffineExpr::var(2, 1);
  acc.add_constraint(Constraint::eq(c, i * 2));
  acc.add_constraint(Constraint::ge(i, AffineExpr::constant(2, 0)));
  acc.add_constraint(Constraint::le(i, AffineExpr::constant(2, 9)));
  const Count cells = count_projection(acc, 1);
  EXPECT_TRUE(cells.is_exact());
  EXPECT_EQ(cells.value, 10);

  // Full-prefix projection is just the point count; empty prefix is the
  // 0/1 emptiness probe.
  EXPECT_EQ(count_projection(acc, 2).value, 10);
  EXPECT_EQ(count_projection(acc, 0).value, 1);

  // Union projection: two strided access relations writing interleaved
  // cells; distinct union cells counted without double counting.
  IntegerSet odd(2);
  odd.add_constraint(
      Constraint::eq(c, i * 2 + AffineExpr::constant(2, 1)));
  odd.add_constraint(Constraint::ge(i, AffineExpr::constant(2, 0)));
  odd.add_constraint(Constraint::le(i, AffineExpr::constant(2, 9)));
  auto u = SetUnion::wrap(acc);
  u.unite(SetUnion::wrap(odd));
  EXPECT_EQ(count_projection(u, 1).value, 20);
  // Overlapping disjuncts collapse: the same set twice is counted once.
  auto twice = SetUnion::wrap(acc);
  twice.add_disjunct(acc);
  EXPECT_EQ(count_projection(twice, 1).value, 10);
  EXPECT_EQ(count_points(twice).value, 10);
}

}  // namespace
}  // namespace pf::poly
