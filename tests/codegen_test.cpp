// End-to-end semantic tests: for every fusion model and a family of
// programs, the transformed program (generated AST, interpreted) must
// produce bit-for-bit the results of the original program (identity
// schedule), and the emitted C must compile and agree too.
#include <gtest/gtest.h>

#include "codegen/cemit.h"
#include "codegen/codegen.h"
#include "ddg/dependences.h"
#include "exec/interp.h"
#include "exec/jit.h"
#include "frontend/parser.h"
#include "fusion/models.h"
#include "sched/analysis.h"
#include "sched/pluto.h"

namespace pf::codegen {
namespace {

using fusion::FusionModel;

void default_init(exec::ArrayStore& store) {
  for (std::size_t a = 0; a < store.num_arrays(); ++a) {
    const double salt = static_cast<double>(a + 1);
    store.fill(a, [&](const IntVector& idx) {
      double v = 0.31 * salt;
      for (std::size_t d = 0; d < idx.size(); ++d)
        v += static_cast<double>(idx[d]) * (0.7 + 0.13 * static_cast<double>(d)) /
             salt;
      return v + 1.0;  // keep away from zero (some kernels divide)
    });
  }
}

exec::ArrayStore run_schedule(const ir::Scop& scop,
                              const sched::Schedule& sch, i64 n_value) {
  const AstPtr ast = generate_ast(scop, sch);
  exec::ArrayStore store(scop, {n_value});
  default_init(store);
  exec::interpret(*ast, store);
  return store;
}

void expect_semantics_preserved(const std::string& source, FusionModel model,
                                i64 n_value = 9) {
  const ir::Scop scop = frontend::parse_scop(source);
  const auto dg = ddg::DependenceGraph::analyze(scop);

  sched::Schedule ident = sched::identity_schedule(scop);
  sched::annotate_dependences(ident, dg);
  const exec::ArrayStore ref = run_schedule(scop, ident, n_value);

  auto policy = fusion::make_policy(model);
  const sched::Schedule sch = sched::compute_schedule(scop, dg, *policy);
  const exec::ArrayStore got = run_schedule(scop, sch, n_value);

  EXPECT_EQ(exec::ArrayStore::max_abs_diff(ref, got), 0.0)
      << "model " << fusion::to_string(model) << " changed results";
}

// ---------------------------------------------------------------------------
// Identity schedule + AST structure.
// ---------------------------------------------------------------------------

TEST(IdentitySchedule, ReproducesProgramOrder) {
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N]; array B[N][N];
      for (i = 0 .. N-1) {
        S1: a[i] = 1.0;
        for (j = 0 .. N-1) { S2: B[i][j] = a[i]; }
        S3: a[i] = a[i] + 2.0;
      } })");
  const sched::Schedule sch = sched::identity_schedule(scop);
  // 2d+1 with d = 2: 5 levels.
  ASSERT_EQ(sch.num_levels(), 5u);
  EXPECT_FALSE(sch.level_linear[0]);
  EXPECT_TRUE(sch.level_linear[1]);
  EXPECT_FALSE(sch.level_linear[2]);
  EXPECT_TRUE(sch.level_linear[3]);
  EXPECT_FALSE(sch.level_linear[4]);
  // Sibling positions inside the i loop: S1=0, loop(S2)=1, S3=2.
  EXPECT_EQ(sch.rows[0][2].const_term(), 0);
  EXPECT_EQ(sch.rows[1][2].const_term(), 1);
  EXPECT_EQ(sch.rows[2][2].const_term(), 2);
}

TEST(IdentitySchedule, IsLegalForAllTestPrograms) {
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N];
      for (i = 1 .. N-1) { S1: a[i] = a[i-1] * 0.5; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  sched::Schedule sch = sched::identity_schedule(scop);
  EXPECT_NO_THROW(sched::annotate_dependences(sch, dg));
  // The self flow dep is carried by the (only) loop level.
  EXPECT_FALSE(sch.is_parallel_for({0}, 1));
}

TEST(Ast, SimpleLoopStructure) {
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N];
      for (i = 0 .. N-1) { S1: a[i] = 2.0; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  auto policy = fusion::make_policy(FusionModel::kSmartfuse);
  const sched::Schedule sch = sched::compute_schedule(scop, dg, *policy);
  const AstPtr ast = generate_ast(scop, sch);
  ASSERT_EQ(ast->kind, AstNode::Kind::kLoop);
  EXPECT_TRUE(ast->parallel);
  EXPECT_TRUE(ast->mark_parallel);
  const std::string text = ast_to_string(*ast, scop);
  EXPECT_NE(text.find("for (t0 = 0; t0 <= N - 1; t0++)"), std::string::npos);
  EXPECT_NE(text.find("S1(t0);"), std::string::npos);
}

TEST(Ast, TriangularBoundsUseEnclosingT) {
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array B[N][N];
      for (i = 0 .. N-1) { for (j = i .. N-1) { S1: B[i][j] = 1.0; } } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  auto policy = fusion::make_policy(FusionModel::kSmartfuse);
  const sched::Schedule sch = sched::compute_schedule(scop, dg, *policy);
  // The inner loop's span must depend on the outer t0 (either direction
  // of the triangle, depending on which legal order the ILP picked).
  const std::string text = ast_to_string(*generate_ast(scop, sch), scop);
  const bool lower_uses_t0 = text.find("t1 = t0") != std::string::npos;
  const bool upper_uses_t0 = text.find("t1 <= t0") != std::string::npos;
  EXPECT_TRUE(lower_uses_t0 || upper_uses_t0) << text;
}

// ---------------------------------------------------------------------------
// Semantics preservation: models x programs.
// ---------------------------------------------------------------------------

constexpr const char* kGemver = R"(
scop gemver(N) {
  context N >= 4;
  array A[N][N]; array B[N][N];
  array u1[N]; array v1[N]; array u2[N]; array v2[N];
  array x[N]; array y[N]; array w[N]; array z[N];
  for (i = 0 .. N-1) { for (j = 0 .. N-1) {
    S1: B[i][j] = A[i][j] + u1[i]*v1[j] + u2[i]*v2[j]; } }
  for (i = 0 .. N-1) { for (j = 0 .. N-1) {
    S2: x[i] = x[i] + 2.5*B[j][i]*y[j]; } }
  for (i = 0 .. N-1) {
    S3: x[i] = x[i] + z[i]; }
  for (i = 0 .. N-1) { for (j = 0 .. N-1) {
    S4: w[i] = w[i] + 1.5*B[i][j]*x[j]; } }
}
)";

constexpr const char* kAdvect = R"(
scop advect(N) {
  context N >= 4;
  array wk1[N+2][N+2]; array wk2[N+2][N+2]; array wk4[N+2][N+2];
  array u[N+2][N+2]; array v[N+2][N+2];
  for (i = 1 .. N) { for (j = 1 .. N) { S1: wk1[i][j] = u[i][j] + u[i][j+1]; } }
  for (i = 1 .. N) { for (j = 1 .. N) { S2: wk2[i][j] = v[i][j] + v[i+1][j]; } }
  for (i = 1 .. N) { for (j = 1 .. N) { S3: wk4[i][j] = wk1[i][j] + wk2[i][j]; } }
  for (i = 1 .. N) { for (j = 1 .. N) {
    S4: u[i][j] = wk4[i][j] - wk4[i][j+1] + wk4[i+1][j]; } }
}
)";

constexpr const char* kLu = R"(
scop lu(N) {
  context N >= 3;
  array A[N][N];
  for (k = 0 .. N-2) {
    for (i = k+1 .. N-1) { S1: A[i][k] = A[i][k] / A[k][k]; }
    for (i = k+1 .. N-1) { for (j = k+1 .. N-1) {
      S2: A[i][j] = A[i][j] - A[i][k] * A[k][j]; } }
  }
}
)";

constexpr const char* kImperfect = R"(
scop t(N) {
  context N >= 4; array a[N]; array B[N][N]; array c[N];
  for (i = 0 .. N-1) {
    S1: a[i] = c[i] * 2.0;
    for (j = 0 .. N-1) { S2: B[i][j] = a[i] + c[j]; }
    S3: c[i] = B[i][i] + a[i];
  }
}
)";

class SemanticsAcrossModels
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(SemanticsAcrossModels, TransformedEqualsOriginal) {
  expect_semantics_preserved(std::get<1>(GetParam()),
                             static_cast<FusionModel>(std::get<0>(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(
    ModelsTimesPrograms, SemanticsAcrossModels,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(kGemver, kAdvect, kLu, kImperfect)));

TEST(Semantics, DifferentParameterValues) {
  for (const i64 n : {4, 7, 16}) {
    const ir::Scop scop = frontend::parse_scop(kAdvect);
    const auto dg = ddg::DependenceGraph::analyze(scop);
    sched::Schedule ident = sched::identity_schedule(scop);
    sched::annotate_dependences(ident, dg);
    auto policy = fusion::make_policy(FusionModel::kWisefuse);
    const sched::Schedule sch = sched::compute_schedule(scop, dg, *policy);
    const auto ref = run_schedule(scop, ident, n);
    const auto got = run_schedule(scop, sch, n);
    EXPECT_EQ(exec::ArrayStore::max_abs_diff(ref, got), 0.0) << "N=" << n;
  }
}

// ---------------------------------------------------------------------------
// Shifting (advect under maxfuse needs S4 shifted by one iteration).
// ---------------------------------------------------------------------------

TEST(Codegen, AdvectMaxfuseUsesShiftAndGuards) {
  const ir::Scop scop = frontend::parse_scop(kAdvect);
  const auto dg = ddg::DependenceGraph::analyze(scop);
  auto policy = fusion::make_policy(FusionModel::kMaxfuse);
  const sched::Schedule sch = sched::compute_schedule(scop, dg, *policy);
  // S4's schedule must differ from S1's by a constant shift at some level.
  bool shifted = false;
  for (std::size_t l = 0; l < sch.num_levels(); ++l) {
    if (!sch.level_linear[l]) continue;
    if (sch.rows[3][l].const_term() != sch.rows[0][l].const_term())
      shifted = true;
  }
  EXPECT_TRUE(shifted);
  // And codegen must still reproduce the original results (guards etc.).
  expect_semantics_preserved(kAdvect, FusionModel::kMaxfuse);
}

// ---------------------------------------------------------------------------
// C emission + JIT.
// ---------------------------------------------------------------------------

TEST(CEmit, SourceShape) {
  const ir::Scop scop = frontend::parse_scop(kGemver);
  const auto dg = ddg::DependenceGraph::analyze(scop);
  auto policy = fusion::make_policy(FusionModel::kWisefuse);
  const sched::Schedule sch = sched::compute_schedule(scop, dg, *policy);
  const std::string c = emit_c(*generate_ast(scop, sch), scop);
  EXPECT_NE(c.find("void pf_kernel(double** arrays"), std::string::npos);
  EXPECT_NE(c.find("#pragma omp parallel for"), std::string::npos);
  EXPECT_NE(c.find("const long long N = params[0];"), std::string::npos);
}

TEST(CEmit, JitMatchesInterpreter) {
  if (!exec::jit_available()) GTEST_SKIP() << "no system compiler";
  for (const char* src : {kGemver, kAdvect, kLu, kImperfect}) {
    const ir::Scop scop = frontend::parse_scop(src);
    const auto dg = ddg::DependenceGraph::analyze(scop);
    auto policy = fusion::make_policy(FusionModel::kWisefuse);
    const sched::Schedule sch = sched::compute_schedule(scop, dg, *policy);
    const AstPtr ast = generate_ast(scop, sch);

    exec::ArrayStore interp_store(scop, {8});
    default_init(interp_store);
    exec::interpret(*ast, interp_store);

    std::string error;
    auto kernel =
        exec::JitKernel::compile(emit_c(*ast, scop), "pf_kernel", {}, &error);
    ASSERT_TRUE(kernel.has_value()) << error;
    exec::ArrayStore jit_store(scop, {8});
    default_init(jit_store);
    kernel->run(jit_store);

    EXPECT_EQ(exec::ArrayStore::max_abs_diff(interp_store, jit_store), 0.0)
        << scop.name();
  }
}

TEST(Interp, StatsCountInstances)  {
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N];
      for (i = 0 .. N-1) { S1: a[i] = a[i] + 1.0; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  sched::Schedule ident = sched::identity_schedule(scop);
  sched::annotate_dependences(ident, dg);
  const AstPtr ast = generate_ast(scop, ident);
  exec::ArrayStore store(scop, {10});
  const auto stats = exec::interpret(*ast, store);
  EXPECT_EQ(stats.statements_executed, 10u);
  EXPECT_EQ(stats.reads, 10u);
  EXPECT_EQ(stats.writes, 10u);
}

TEST(Interp, TraceHookSeesAccessesInOrder) {
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 4; array a[N]; array b[N];
      for (i = 0 .. N-1) { S1: b[i] = a[i] * 2.0; } })");
  const auto dg = ddg::DependenceGraph::analyze(scop);
  sched::Schedule ident = sched::identity_schedule(scop);
  sched::annotate_dependences(ident, dg);
  const AstPtr ast = generate_ast(scop, ident);
  exec::ArrayStore store(scop, {4});
  std::vector<std::tuple<std::size_t, i64, bool>> trace;
  exec::interpret(*ast, store, [&](std::size_t a, i64 idx, bool w) {
    trace.emplace_back(a, idx, w);
  });
  ASSERT_EQ(trace.size(), 8u);  // (read a[i], write b[i]) x 4
  EXPECT_EQ(trace[0], std::make_tuple(std::size_t{0}, i64{0}, false));
  EXPECT_EQ(trace[1], std::make_tuple(std::size_t{1}, i64{0}, true));
}

TEST(Storage, BoundsCheckingCatchesBadAccess) {
  const ir::Scop scop = frontend::parse_scop(R"(
    scop t(N) { context N >= 2; array a[N];
      for (i = 0 .. N-1) { S1: a[i] = 0.0; } })");
  exec::ArrayStore store(scop, {4});
  EXPECT_THROW(store.at(0, {4}), Error);
  EXPECT_THROW(store.at(0, {-1}), Error);
  EXPECT_THROW(store.at(0, {0, 0}), Error);
  EXPECT_NO_THROW(store.at(0, {3}));
  EXPECT_THROW(exec::ArrayStore(scop, {1}), Error);  // violates context
}

}  // namespace
}  // namespace pf::codegen
