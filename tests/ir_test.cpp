// Tests for the IR: NamedAffine resolution, expression trees, ScopBuilder
// structure/validation, and Scop pretty-printing.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/scop.h"

namespace pf::ir {
namespace {

const NamedAffine N = ScopBuilder::var("N");
const NamedAffine i = ScopBuilder::var("i");
const NamedAffine j = ScopBuilder::var("j");

TEST(NamedAffine, ArithmeticAndCancellation) {
  NamedAffine e = i * 2 + j - i - i;  // -> j
  EXPECT_EQ(e.coeff("i"), 0);
  EXPECT_EQ(e.coeff("j"), 1);
  EXPECT_TRUE((i - i).is_constant());
  EXPECT_EQ((2 + i).const_term(), 2);
  EXPECT_EQ((2 - i).coeff("i"), -1);
  EXPECT_EQ((i * 3).coeff("i"), 3);
  EXPECT_EQ((3 * i).coeff("i"), 3);
}

TEST(NamedAffine, ResolvePositional) {
  const NamedAffine e = i * 2 - N + 5;
  const poly::AffineExpr a = e.resolve({"i", "j", "N"});
  EXPECT_EQ(a.coeff(0), 2);
  EXPECT_EQ(a.coeff(1), 0);
  EXPECT_EQ(a.coeff(2), -1);
  EXPECT_EQ(a.const_term(), 5);
  EXPECT_THROW(e.resolve({"i", "j"}), Error);  // N unknown
}

TEST(NamedAffine, ToString) {
  // Terms print in name order (uppercase sorts before lowercase).
  EXPECT_EQ((i * 2 - N + 5).to_string(), "-N + 2*i + 5");
  EXPECT_EQ(NamedAffine(0).to_string(), "0");
  EXPECT_EQ((-i).to_string(), "-i");
}

TEST(Expr, TreeConstructionAndPrinting) {
  // body: A[i][j] * 2.0 + sqrt(x[i])
  const ExprPtr e = read(0, {i, j}) * num(2.0) + call("sqrt", {read(1, {i})});
  EXPECT_EQ(expr_to_string(e, {"A", "x"}), "A[i][j] * 2 + sqrt(x[i])");
  std::vector<const Expr*> acc;
  collect_accesses(e, &acc);
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_EQ(acc[0]->array_id, 0u);
  EXPECT_EQ(acc[1]->array_id, 1u);
}

TEST(Expr, PrecedenceParens) {
  const ExprPtr e = (num(1.0) + num(2.0)) * num(3.0);
  EXPECT_EQ(expr_to_string(e, {}), "(1 + 2) * 3");
  const ExprPtr f = num(1.0) - (num(2.0) - num(3.0));
  EXPECT_EQ(expr_to_string(f, {}), "1 - (2 - 3)");
  const ExprPtr g = num(6.0) / (num(2.0) * num(3.0));
  EXPECT_EQ(expr_to_string(g, {}), "6 / (2 * 3)");
}

TEST(Expr, ResolveFillsPositionalSubscripts) {
  const ExprPtr e = read(0, {i + 1, j - 1});
  const ExprPtr r = resolve_expr(e, {"i", "j", "N"});
  ASSERT_EQ(r->subscripts_resolved.size(), 2u);
  EXPECT_EQ(r->subscripts_resolved[0].coeff(0), 1);
  EXPECT_EQ(r->subscripts_resolved[0].const_term(), 1);
  EXPECT_EQ(r->subscripts_resolved[1].coeff(1), 1);
  EXPECT_EQ(r->subscripts_resolved[1].const_term(), -1);
}

Scop make_gemver_like() {
  ScopBuilder b("g", {"N"});
  b.context(N >= 4);
  const std::size_t A = b.array("A", {N, N});
  const std::size_t x = b.array("x", {N});
  const std::size_t y = b.array("y", {N});
  b.for_loop("i", 0, N - 1);
  b.for_loop("j", 0, N - 1);
  b.stmt(A, {i, j}, read(A, {i, j}) + read(x, {i}) * read(y, {j}));
  b.end_loop();
  b.stmt(x, {i}, read(x, {i}) * num(3.0));
  b.end_loop();
  return b.build();
}

TEST(ScopBuilder, StructureRecorded) {
  const Scop s = make_gemver_like();
  ASSERT_EQ(s.num_statements(), 2u);
  const Statement& s1 = s.statement(0);
  const Statement& s2 = s.statement(1);
  EXPECT_EQ(s1.dim(), 2u);
  EXPECT_EQ(s2.dim(), 1u);
  EXPECT_EQ(s1.name(), "S1");
  EXPECT_EQ(s2.name(), "S2");
  EXPECT_EQ(s.common_loop_depth(s1, s2), 1u);
  // Statement space: [i, j, N] for S1.
  EXPECT_EQ(s.space_names(s1), (std::vector<std::string>{"i", "j", "N"}));
  // Domain of S1 contains (0,0,N=4) but not (4,0,N=4).
  EXPECT_TRUE(s1.domain().contains({0, 0, 4}));
  EXPECT_TRUE(s1.domain().contains({3, 3, 4}));
  EXPECT_FALSE(s1.domain().contains({4, 0, 4}));
}

TEST(ScopBuilder, AccessesExtracted) {
  const Scop s = make_gemver_like();
  const Statement& s1 = s.statement(0);
  ASSERT_EQ(s1.accesses().size(), 4u);  // write A + reads A, x, y
  EXPECT_TRUE(s1.accesses()[0].is_write);
  EXPECT_EQ(s1.accesses()[0].array_id, 0u);
  EXPECT_FALSE(s1.accesses()[1].is_write);
  // Read of x[i]: coeff on i (dim 0) is 1.
  EXPECT_EQ(s1.accesses()[2].subscripts[0].coeff(0), 1);
}

TEST(ScopBuilder, ContextRecorded) {
  const Scop s = make_gemver_like();
  EXPECT_TRUE(s.context().contains({4}));
  EXPECT_FALSE(s.context().contains({3}));
}

TEST(ScopBuilder, GuardsApplyToDomain) {
  ScopBuilder b("g", {"N"});
  const std::size_t A = b.array("A", {N});
  b.for_loop("i", 0, N - 1);
  b.begin_guard(i >= 2);
  b.stmt(A, {i}, num(1.0));
  b.end_guard();
  b.stmt(A, {i}, num(2.0));
  b.end_loop();
  const Scop s = b.build();
  EXPECT_FALSE(s.statement(0).domain().contains({1, 10}));
  EXPECT_TRUE(s.statement(0).domain().contains({2, 10}));
  EXPECT_TRUE(s.statement(1).domain().contains({1, 10}));
}

TEST(ScopBuilder, ValidationErrors) {
  ScopBuilder b("g", {"N"});
  const std::size_t A = b.array("A", {N});
  EXPECT_THROW(b.array("A", {N}), Error);  // duplicate array
  EXPECT_THROW(b.for_loop("N", 0, 5), Error);  // shadows param
  b.for_loop("i", 0, N - 1);
  EXPECT_THROW(b.for_loop("i", 0, 5), Error);  // shadows open loop
  EXPECT_THROW(b.stmt(A, {i, j}, num(0.0)), Error);  // rank mismatch
  EXPECT_THROW(b.stmt(A, {j}, num(0.0)), Error);     // unknown name j
  EXPECT_THROW(b.stmt(7, {i}, num(0.0)), Error);     // unknown array
  b.stmt(A, {i}, num(0.0));
  EXPECT_THROW(b.build(), Error);  // unclosed loop
  b.end_loop();
  EXPECT_THROW(b.end_loop(), Error);  // nothing open
  (void)b.build();
  EXPECT_THROW(b.build(), Error);  // consumed
}

TEST(ScopBuilder, TriangularDomain) {
  ScopBuilder b("tri", {"N"});
  const std::size_t A = b.array("A", {N, N});
  b.for_loop("i", 0, N - 1);
  b.for_loop("j", i + 1, N - 1);  // triangular
  b.stmt(A, {i, j}, num(1.0));
  b.end_loop();
  b.end_loop();
  const Scop s = b.build();
  EXPECT_TRUE(s.statement(0).domain().contains({0, 1, 4}));
  EXPECT_FALSE(s.statement(0).domain().contains({1, 1, 4}));
  EXPECT_FALSE(s.statement(0).domain().contains({2, 1, 4}));
}

TEST(Scop, PrettyPrintReconstructsNesting) {
  const Scop s = make_gemver_like();
  const std::string text = s.to_string();
  EXPECT_NE(text.find("for (i = 0 .. N - 1)"), std::string::npos);
  EXPECT_NE(text.find("for (j = 0 .. N - 1)"), std::string::npos);
  EXPECT_NE(text.find("S1: A[i][j] = A[i][j] + x[i] * y[j];"),
            std::string::npos);
  EXPECT_NE(text.find("S2: x[i] = x[i] * 3;"), std::string::npos);
  // S2 printed after the j-loop closes but inside i-loop: check order.
  EXPECT_LT(text.find("S1:"), text.find("S2:"));
}

}  // namespace
}  // namespace pf::ir
