#!/usr/bin/env bash
# Local CI: the exact gauntlet a change must survive before review.
#
#   1. Plain release-ish build + full ctest.
#   2. clang-tidy over src/ against that build's compile_commands.json
#      (.clang-tidy: bugprone-*, performance-*, modernize-use-*);
#      skipped with a notice when clang-tidy is not installed.
#   3. Robustness sweep on the plain build: the pipeline under tight
#      compute-fuel budgets, a wall-clock budget, and one injected fault
#      per solver site must still emit verified, validated code
#      (docs/robustness.md).
#   4. ASan+UBSan build + full ctest (POLYFUSE_SANITIZE=address,undefined),
#      then the same robustness sweep under the sanitizers.
#
# Usage: tools/ci.sh [build-dir-prefix]
#   JOBS=N       parallelism for build and ctest (default: nproc)
#   CTEST_ARGS   extra args forwarded to every ctest run (e.g. -R verify)
set -euo pipefail

cd "$(dirname "$0")/.."

PREFIX="${1:-build-ci}"
JOBS="${JOBS:-$(nproc)}"
CTEST_ARGS="${CTEST_ARGS:-}"

run_stage() {
  local name="$1" dir="$2"
  shift 2
  echo "==== [$name] configure ($dir) ===="
  cmake -S . -B "$dir" "$@"
  echo "==== [$name] build ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== [$name] ctest ===="
  # shellcheck disable=SC2086  # intentional word-splitting of CTEST_ARGS
  ctest --test-dir "$dir" -j "$JOBS" --output-on-failure $CTEST_ARGS
}

# Degradation must never cost correctness: every budgeted or
# fault-injected run still has to pass the static verifier (strict) and
# the interpreter differential. jit_cc injection is exercised by ctest
# (exec_test), which both stages already run.
run_robustness() {
  local name="$1" dir="$2"
  local cli="$dir/tools/polyfuse"
  local input="examples/pipeline.pf"
  local checks="--verify=strict --validate --params=64"
  echo "==== [$name] robustness: fuel sweep ===="
  for fuel in 0 200 1000 5000; do
    echo "-- --fuel=$fuel"
    "$cli" --model=wisefuse --fuel="$fuel" $checks "$input" >/dev/null
  done
  echo "==== [$name] robustness: time budget ===="
  "$cli" --model=wisefuse --time-budget=10000 $checks "$input" >/dev/null
  echo "==== [$name] robustness: fault injection ===="
  for site in lp_solve fme_project dep_pair pluto_level fusion_model; do
    echo "-- --inject=$site:fail-after=0"
    "$cli" --model=wisefuse --inject="$site:fail-after=0" --explain \
      $checks "$input" >/dev/null 2>&1 ||
      { echo "injection at $site broke the pipeline"; exit 1; }
  done
}

run_stage "plain" "$PREFIX" -DCMAKE_BUILD_TYPE=Release
run_robustness "plain" "$PREFIX"

echo "==== [clang-tidy] src/ ===="
if command -v clang-tidy >/dev/null 2>&1; then
  # CMAKE_EXPORT_COMPILE_COMMANDS is on unconditionally, so the plain
  # stage's build dir always has the compilation database.
  find src -name '*.cpp' -print0 |
    xargs -0 -n 8 -P "$JOBS" clang-tidy -p "$PREFIX" --quiet
else
  echo "clang-tidy not installed; skipping static-analysis stage"
fi

# halt_on_error keeps a UBSan finding from scrolling past as a warning.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
run_stage "asan+ubsan" "$PREFIX-san" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DPOLYFUSE_SANITIZE=address,undefined"
run_robustness "asan+ubsan" "$PREFIX-san"

echo "==== ci.sh: all stages passed ===="
