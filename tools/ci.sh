#!/usr/bin/env bash
# Local CI: the exact gauntlet a change must survive before review.
#
#   1. Plain release-ish build + full ctest.
#   2. clang-tidy over src/, tools/ and bench/ against that build's
#      compile_commands.json (.clang-tidy: bugprone-*, performance-*,
#      modernize-use-*; bugprone-*/performance-* findings are errors);
#      skipped with a notice when clang-tidy is not installed.
#   3. Robustness sweep on the plain build: the pipeline under tight
#      compute-fuel budgets, a wall-clock budget, and one injected fault
#      per solver site (incl. forced lp.fastlane fallbacks) must still
#      emit verified, validated code (docs/robustness.md). The sweep also
#      covers the persistent disk cache (injected cache-I/O faults and
#      corrupted entries must be output-invisible), a fork-isolated batch
#      with an injected hard crash, and recovery after a SIGKILL mid-batch
#      (docs/service.md).
#   4. Perf smoke on the plain build: compile_scaling --smoke must show
#      the int64 fast lane serving >= 90% of simplex solves
#      (docs/performance.md).
#   5. Bench regression gate: the same --smoke record must pass
#      tools/bench_diff against the committed baseline (BENCH_pr10.json)
#      under smoke-generous thresholds (docs/observability.md), including
#      the persistent cache's warm-rerun solve-reduction floor.
#   6. ASan+UBSan build + full ctest (POLYFUSE_SANITIZE=address,undefined),
#      then the same robustness sweep under the sanitizers.
#   7. ThreadSanitizer build (POLYFUSE_SANITIZE=thread) running the
#      reduction tests: the JIT differential test compiles the emitted
#      OpenMP reduction(...) kernels with -fsanitize=thread too, so the
#      actual pragmas race across real threads under the tool
#      (docs/reductions.md).
#
# Any failing ctest stage sweeps crash diagnostics (polyfuse-diag.*.json,
# written by the flight recorder when a test run dies) from the build
# tree into <prefix>-diagnostics/ so they survive as CI artifacts.
#
# Usage: tools/ci.sh [build-dir-prefix]
#   JOBS=N       parallelism for build and ctest (default: nproc)
#   CTEST_ARGS   extra args forwarded to every ctest run (e.g. -R verify)
set -euo pipefail

cd "$(dirname "$0")/.."

PREFIX="${1:-build-ci}"
JOBS="${JOBS:-$(nproc)}"
CTEST_ARGS="${CTEST_ARGS:-}"

# A failed ctest run may leave flight-recorder crash dumps in the build
# tree (any polyfuse process that dies on a fatal signal writes
# polyfuse-diag.<pid>.json to its working directory). Preserve them where
# a CI artifact step can pick them up, then fail the stage.
collect_diagnostics() {
  local name="$1" dir="$2" out="$PREFIX-diagnostics"
  mapfile -t diags < <(find "$dir" -name 'polyfuse-diag.*.json' 2>/dev/null)
  if [ "${#diags[@]}" -gt 0 ]; then
    mkdir -p "$out"
    mv "${diags[@]}" "$out/"
    echo "[$name] collected ${#diags[@]} crash diagnostic(s) into $out/"
  fi
}

run_stage() {
  local name="$1" dir="$2"
  shift 2
  echo "==== [$name] configure ($dir) ===="
  cmake -S . -B "$dir" "$@"
  echo "==== [$name] build ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== [$name] ctest ===="
  # shellcheck disable=SC2086  # intentional word-splitting of CTEST_ARGS
  ctest --test-dir "$dir" -j "$JOBS" --output-on-failure $CTEST_ARGS ||
    { collect_diagnostics "$name" "$dir"; exit 1; }
}

# Degradation must never cost correctness: every budgeted or
# fault-injected run still has to pass the static verifier (strict) and
# the interpreter differential. jit_cc injection is exercised by ctest
# (exec_test), which both stages already run.
run_robustness() {
  local name="$1" dir="$2"
  local cli="$dir/tools/polyfuse"
  local input="examples/pipeline.pf"
  local checks="--verify=strict --validate --params=64"
  echo "==== [$name] robustness: fuel sweep ===="
  for fuel in 0 200 1000 5000; do
    echo "-- --fuel=$fuel"
    "$cli" --model=wisefuse --fuel="$fuel" $checks "$input" >/dev/null
  done
  echo "==== [$name] robustness: time budget ===="
  "$cli" --model=wisefuse --time-budget=10000 $checks "$input" >/dev/null
  echo "==== [$name] robustness: fault injection ===="
  # lp.fastlane is injection-only: it forces int64 fast-lane fallbacks
  # onto the exact Rational lane, which must be output-invisible.
  # count_set faults the --analyze counting engine, which must degrade
  # its counts to the structured "unknown" without failing the run.
  # analysis.reductions faults the reduction pass, which must degrade to
  # the empty (nothing-relaxed) analysis and still emit verified code.
  for site in lp_solve fme_project dep_pair pluto_level fusion_model \
              count_set analysis.reductions lp.fastlane; do
    echo "-- --inject=$site:fail-after=0"
    "$cli" --model=wisefuse --inject="$site:fail-after=0" --analyze \
      --explain $checks "$input" >/dev/null 2>&1 ||
      { echo "injection at $site broke the pipeline"; exit 1; }
  done
  echo "==== [$name] robustness: reduction injection on a reduction input ===="
  # pipeline.pf has no reductions; dotprod.pf actually loses its relaxed
  # dependence under this fault, so the degraded (serial) kernel must
  # still pass strict verification and the interpreter differential.
  "$cli" --inject=analysis.reductions:fail-after=0 --reductions --explain \
    $checks examples/dotprod.pf >/dev/null 2>&1 ||
    { echo "reduction injection broke dotprod"; exit 1; }

  echo "==== [$name] robustness: persistent-cache faults ===="
  # The disk cache is an accelerator, never an oracle: injected cache
  # I/O faults and corrupted entries must leave the emitted program
  # byte-identical to a cache-less run (docs/service.md).
  local cache="$dir/ci-cache" ref="$dir/ci-ref.c" got="$dir/ci-got.c"
  rm -rf "$cache"
  "$cli" --model=wisefuse "$input" > "$ref"
  for site in diskcache.write diskcache.read; do
    echo "-- --inject=$site:fail-after=0"
    "$cli" --model=wisefuse --cache-dir="$cache" \
      --inject="$site:fail-after=0" "$input" > "$got"
    cmp -s "$ref" "$got" ||
      { echo "injection at $site altered emitted output"; exit 1; }
  done
  # Corrupt every committed entry in place; the warm run must quarantine
  # them all and still emit the same program.
  for f in "$cache"/*.pfc; do
    [ -e "$f" ] || continue
    printf 'garbage' | dd of="$f" bs=1 seek=8 conv=notrunc status=none
  done
  "$cli" --model=wisefuse --cache-dir="$cache" "$input" > "$got"
  cmp -s "$ref" "$got" ||
    { echo "corrupted cache entries altered emitted output"; exit 1; }

  echo "==== [$name] robustness: fork-isolated batch crash ===="
  # A hard crash injected into one request must cost exactly that
  # request: the batch completes the others and exits 3.
  local bdir="$dir/ci-batch"
  rm -rf "$bdir"
  set +e
  "$cli" --batch=examples --batch-out="$bdir" --batch-report="$bdir/r.json" \
    --batch-isolate --inject=batch.request:abort-after=0 >/dev/null 2>&1
  local rc=$?
  set -e
  [ "$rc" -eq 3 ] ||
    { echo "isolated batch crash: expected exit 3, got $rc"; exit 1; }
  grep -q '"failed": 1' "$bdir/r.json" ||
    { echo "isolated batch crash: report missing the failed entry"; exit 1; }

  echo "==== [$name] robustness: SIGKILL mid-batch recovery ===="
  # Kill a batch while it is writing cache entries and outputs; the
  # rerun against the same directories must succeed cleanly (atomic
  # temp+rename means no torn entry is ever visible under a live name).
  rm -rf "$bdir"
  "$cli" --batch=examples --batch-out="$bdir" --batch-report="$bdir/r.json" \
    --cache-dir="$cache" >/dev/null 2>&1 &
  local bpid=$!
  sleep 0.05
  kill -9 "$bpid" 2>/dev/null || true
  wait "$bpid" 2>/dev/null || true
  "$cli" --batch=examples --batch-out="$bdir" --batch-report="$bdir/r.json" \
    --cache-dir="$cache" >/dev/null ||
    { echo "batch rerun after SIGKILL failed"; exit 1; }
  grep -q '"failed": 0' "$bdir/r.json" ||
    { echo "batch rerun after SIGKILL reported failures"; exit 1; }
}

# Perf smoke: the int64 fast lane must actually serve the solver work.
# compile_scaling --smoke does one rep under a generous fuel budget and
# reports the lane's solve/fallback split; a rate below the threshold
# means solves are silently degrading to the exact Rational path, and
# recorded BENCH_*.json compile times would no longer mean what they
# claim (docs/performance.md).
run_perf_smoke() {
  local name="$1" dir="$2" threshold=90
  echo "==== [$name] perf smoke: compile_scaling --smoke ===="
  local out line solves fallbacks total rate
  out="$("$dir/bench/compile_scaling" --smoke 2>/dev/null)"
  line="$(printf '%s\n' "$out" | grep '"fastlane":' | head -n 1)"
  solves="$(printf '%s\n' "$line" | sed -n 's/.*"solves": \([0-9]*\).*/\1/p')"
  fallbacks="$(printf '%s\n' "$line" |
    sed -n 's/.*"fallbacks": \([0-9]*\).*/\1/p')"
  if [ -z "$solves" ] || [ -z "$fallbacks" ]; then
    echo "perf smoke: could not parse fastlane counters from:"
    printf '%s\n' "$out"
    exit 1
  fi
  total=$((solves + fallbacks))
  if [ "$total" -eq 0 ]; then
    echo "perf smoke: fast lane never attempted a solve"
    exit 1
  fi
  rate=$((100 * solves / total))
  echo "fast-lane rate: ${rate}% ($solves/$total solves)"
  if [ "$rate" -lt "$threshold" ]; then
    echo "perf smoke: fast-lane rate ${rate}% below ${threshold}% threshold"
    exit 1
  fi
}

# Regression gate: a fresh compile_scaling --smoke record must pass
# bench_diff against the committed baseline. --smoke does one rep with
# the solve cache cold, so the thresholds are deliberately generous --
# 4x on wall time (shared CI machines), 2x on the deterministic
# counters; the committed BENCH_*.json records track the precise
# numbers. A genuine blowup (a solver regression, the fast lane dying)
# still trips it.
run_bench_gate() {
  local name="$1" dir="$2" baseline="BENCH_pr10.json"
  local record="$dir/bench_gate_smoke.json"
  echo "==== [$name] bench regression gate (vs $baseline) ===="
  "$dir/bench/compile_scaling" --smoke 2>/dev/null > "$record"
  # diskcache.warm_solve_reduction_percent guards the persistent cache's
  # reason to exist: a warm rerun must keep eliminating the bulk of the
  # ILP solves (the PR acceptance bar is >= 50%; the drop threshold
  # tolerates program-shape drift, not the cache silently dying).
  "$dir/tools/bench_diff" --no-defaults \
    --max-increase=end_to_end_compile_seconds:300 \
    --max-drop=fastlane.rate_percent:5 \
    --max-drop=diskcache.warm_solve_reduction_percent:25 \
    --max-increase=stats.counters.simplex_pivots:100 \
    --max-increase=stats.counters.ilp_nodes:150 \
    --max-increase=stats.counters.fme_rows_generated:100 \
    "$baseline" "$record"
}

run_stage "plain" "$PREFIX" -DCMAKE_BUILD_TYPE=Release
run_robustness "plain" "$PREFIX"
run_perf_smoke "plain" "$PREFIX"
run_bench_gate "plain" "$PREFIX"

echo "==== [clang-tidy] src/ tools/ bench/ ===="
if command -v clang-tidy >/dev/null 2>&1; then
  # CMAKE_EXPORT_COMPILE_COMMANDS is on unconditionally, so the plain
  # stage's build dir always has the compilation database. .clang-tidy
  # promotes every bugprone-*/performance-* finding to an error, so any
  # such warning fails this stage (xargs propagates the nonzero exit).
  find src tools bench -name '*.cpp' -print0 |
    xargs -0 -n 8 -P "$JOBS" clang-tidy -p "$PREFIX" --quiet
else
  echo "clang-tidy not installed; skipping static-analysis stage"
fi

# halt_on_error keeps a UBSan finding from scrolling past as a warning.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
run_stage "asan+ubsan" "$PREFIX-san" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DPOLYFUSE_SANITIZE=address,undefined"
run_robustness "asan+ubsan" "$PREFIX-san"

# Reduction kernels under ThreadSanitizer: the one place polyfuse output
# runs genuinely concurrent updates. reductions_test detects its own TSan
# build and adds -fsanitize=thread to the JIT compile, so the emitted
# `#pragma omp parallel for reduction(...)` is exercised instrumented.
# ignore_noninstrumented_modules silences false positives from the
# (uninstrumented) libgomp runtime itself.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:ignore_noninstrumented_modules=1}"
echo "==== [tsan] configure ($PREFIX-tsan) ===="
cmake -S . -B "$PREFIX-tsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DPOLYFUSE_SANITIZE=thread"
echo "==== [tsan] build ===="
cmake --build "$PREFIX-tsan" -j "$JOBS"
echo "==== [tsan] ctest -R Reduction ===="
# shellcheck disable=SC2086
ctest --test-dir "$PREFIX-tsan" -j "$JOBS" --output-on-failure \
  -R Reduction $CTEST_ARGS ||
  { collect_diagnostics "tsan" "$PREFIX-tsan"; exit 1; }

echo "==== ci.sh: all stages passed ===="
