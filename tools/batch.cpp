#include "batch.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "support/diskcache.h"
#include "support/flightrec.h"
#include "support/threadpool.h"

namespace pf::cli {
namespace {

namespace fs = std::filesystem;

struct Request {
  std::string input;  // as discovered (full path)
  std::string stem;   // unique output stem under --batch-out
};

struct Outcome {
  std::string status = "failed";  // ok | degraded | retried | failed
  int rc = 1;
  int attempts = 0;
  bool crashed = false;
  std::string error;        // one line; empty unless failed
  bool wrote_output = false;
};

// ---------------------------------------------------------------------------
// Request discovery. Deterministic by construction: a directory scan is
// sorted by path, a manifest is taken line by line (blank lines and
// #-comments skipped, relative paths resolved against the manifest's
// directory). The report later lists requests in exactly this order,
// which is one half of "byte-identical at any --jobs".
// ---------------------------------------------------------------------------

bool discover_inputs(const std::string& batch, std::vector<std::string>* out,
                     std::string* error) {
  std::error_code ec;
  if (fs::is_directory(batch, ec)) {
    for (const fs::directory_entry& e : fs::directory_iterator(batch, ec)) {
      if (!e.is_regular_file(ec)) continue;
      if (e.path().extension() != ".pf") continue;
      out->push_back(e.path().string());
    }
    if (ec) {
      *error = "cannot scan batch directory '" + batch + "'";
      return false;
    }
    std::sort(out->begin(), out->end());
    if (out->empty()) {
      *error = "no .pf files in batch directory '" + batch + "'";
      return false;
    }
    return true;
  }
  std::ifstream in(batch);
  if (!in) {
    *error = "cannot open batch manifest '" + batch + "'";
    return false;
  }
  const fs::path base = fs::path(batch).parent_path();
  std::string line;
  while (std::getline(in, line)) {
    // Trim trailing CR/whitespace, skip blanks and comments.
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t'))
      line.pop_back();
    std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    line = line.substr(start);
    if (line[0] == '#') continue;
    const fs::path p(line);
    out->push_back(p.is_absolute() ? p.string() : (base / p).string());
  }
  if (out->empty()) {
    *error = "batch manifest '" + batch + "' lists no inputs";
    return false;
  }
  // Manifest order is the author's order; keep it (it is deterministic).
  return true;
}

std::string sanitize_stem(const std::string& name) {
  std::string s;
  for (const char c : name)
    s += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '.' ||
          c == '_' || c == '-')
             ? c
             : '_';
  return s.empty() ? std::string("request") : s;
}

std::vector<Request> assign_stems(const std::vector<std::string>& inputs) {
  std::vector<Request> requests;
  std::map<std::string, int> used;
  for (const std::string& input : inputs) {
    std::string stem = sanitize_stem(fs::path(input).stem().string());
    const int n = ++used[stem];
    if (n > 1) stem += "-" + std::to_string(n);
    requests.push_back(Request{input, stem});
  }
  return requests;
}

// ---------------------------------------------------------------------------
// One attempt of one request. Shared by the in-process worker task and
// the forked child: run the request with captured streams, commit
// <stem>.out (atomically -- a killed batch must never leave a torn
// output under a live name) and <stem>.err.
// ---------------------------------------------------------------------------

bool write_file_atomic(const fs::path& path, const std::string& content) {
  fs::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << content;
    out.flush();
    if (!out) return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

struct AttemptResult {
  int rc = 0;
  bool degraded = false;
  std::string error;
};

AttemptResult run_attempt(const Options& base, const Request& req, i64 index,
                          int attempt, const fs::path& outdir) {
  // Bounded backoff before a retry; the first attempt starts at once.
  if (attempt > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50 * attempt));

  // The batch.request injection site, enforced here (not by the Budget:
  // an injection-only budget would bypass the solve caches, see
  // driver.h). The ordinal is the request *index*, so which request is
  // hit never depends on scheduling. Soft = fail the first attempt only
  // (a transient fault the retry path absorbs); hard = crash outright,
  // every attempt, which --batch-isolate contains to the child.
  for (const support::Injection& inj : base.injections) {
    if (inj.site != support::BudgetSite::kBatchRequest ||
        inj.fail_at != index)
      continue;
    support::flightrec::record(support::flightrec::EventKind::kFault,
                               "batch.request",
                               inj.hard ? "abort-injected" : "fault-injected",
                               index);
    if (inj.hard) std::abort();
    if (attempt == 0)
      return AttemptResult{
          1, false,
          "injected transient fault (batch.request op #" +
              std::to_string(index) + ")"};
  }

  Options ro = base;
  ro.input = req.input;
  // One worker *per request*; parallelism lives across requests. Inner
  // jobs=1 also makes each request's fuel spend and metrics exactly
  // reproducible.
  ro.jobs = 1;
  ro.batch.clear();
  ro.batch_out.clear();
  ro.batch_report.clear();
  ro.batch_isolate = false;

  std::ostringstream out;
  std::ostringstream err;
  const RequestResult r = run_request(ro, out, err);
  AttemptResult result{r.rc, r.degraded, r.error};
  if (r.rc == 0 &&
      !write_file_atomic(outdir / (req.stem + ".out"), out.str())) {
    result.rc = 1;
    result.error = "cannot write output file '" + req.stem + ".out'";
  }
  // The request's stderr (reports, validation summaries, error messages)
  // always lands next to the output, success or not.
  write_file_atomic(outdir / (req.stem + ".err"), err.str());
  return result;
}

void finish_outcome(Outcome* oc, const AttemptResult& ar, int attempt) {
  oc->rc = ar.rc;
  oc->attempts = attempt + 1;
  oc->error = ar.error;
  if (ar.rc == 0) {
    oc->status = attempt > 0 ? "retried" : (ar.degraded ? "degraded" : "ok");
    oc->wrote_output = true;
    oc->error.clear();
  } else {
    oc->status = "failed";
  }
}

// ---------------------------------------------------------------------------
// In-process executor: the PR-1 thread pool fans requests out; each
// worker task owns its request end to end (attempt loop included).
// ---------------------------------------------------------------------------

void run_in_process(const Options& o, const std::vector<Request>& requests,
                    const fs::path& outdir, std::size_t jobs,
                    std::vector<Outcome>* outcomes) {
  support::ThreadPool pool(jobs);
  pool.parallel_for(0, requests.size(), [&](std::size_t i) {
    Outcome& oc = (*outcomes)[i];
    for (int attempt = 0; attempt <= o.batch_retries; ++attempt) {
      const AttemptResult ar =
          run_attempt(o, requests[i], static_cast<i64>(i), attempt, outdir);
      finish_outcome(&oc, ar, attempt);
      if (ar.rc == 0) return;
    }
  });
}

// ---------------------------------------------------------------------------
// Fork-isolated executor. The scheduling loop runs on the main thread
// only (fork() from a multithreaded parent is a hazard the in-process
// pool never meets this code path); up to `jobs` children live at once.
// The child re-points its crash diagnostic at <stem>.diag.json, runs one
// attempt, leaves a tiny <stem>.res result file for the parent, and
// _Exits without touching the parent's stdio buffers. A child death by
// signal -- a real SIGSEGV or an injected SIGABRT -- is one failed entry
// in the report, never a dead batch.
// ---------------------------------------------------------------------------

constexpr int kExitOk = 0;
constexpr int kExitDegraded = 10;  // rc 0, but the budget chain engaged

void write_child_result(const fs::path& outdir, const Request& req,
                        const AttemptResult& ar) {
  std::string flat = ar.error;
  std::replace(flat.begin(), flat.end(), '\n', ' ');
  write_file_atomic(outdir / (req.stem + ".res"),
                    "rc=" + std::to_string(ar.rc) + "\nerror=" + flat + "\n");
}

std::string read_child_error(const fs::path& outdir, const Request& req,
                             int rc) {
  std::ifstream in(outdir / (req.stem + ".res"));
  std::string line;
  while (in && std::getline(in, line))
    if (line.rfind("error=", 0) == 0 && line.size() > 6)
      return line.substr(6);
  return "request failed (rc " + std::to_string(rc) + ")";
}

void run_isolated(const Options& o, const std::vector<Request>& requests,
                  const fs::path& outdir, std::size_t jobs,
                  std::vector<Outcome>* outcomes) {
  struct Child {
    pid_t pid;
    std::size_t index;
    int attempt;
  };
  std::deque<std::pair<std::size_t, int>> queue;  // (request, attempt)
  for (std::size_t i = 0; i < requests.size(); ++i) queue.emplace_back(i, 0);
  std::vector<Child> live;

  auto settle = [&](std::size_t i, int attempt, bool crashed, int rc,
                    const std::string& error) {
    Outcome& oc = (*outcomes)[i];
    if (rc == kExitOk || rc == kExitDegraded) {
      AttemptResult ar{0, rc == kExitDegraded, ""};
      finish_outcome(&oc, ar, attempt);
      return;
    }
    if (attempt < o.batch_retries) {
      // A retry re-forks; hard-injected crashes crash again and
      // eventually land here with attempts exhausted.
      queue.emplace_back(i, attempt + 1);
      return;
    }
    oc.rc = 1;
    oc.attempts = attempt + 1;
    oc.status = "failed";
    oc.crashed = crashed;
    oc.error = error;
  };

  while (!queue.empty() || !live.empty()) {
    while (!queue.empty() && live.size() < jobs) {
      const auto [i, attempt] = queue.front();
      queue.pop_front();
      const pid_t pid = fork();
      if (pid == 0) {
        // Child: own crash-diagnostic path (the inherited one is named
        // after the parent pid and shared by every sibling), then one
        // attempt. The diskcache run id was generated before the fork,
        // so the whole process tree reads as one run.
        support::flightrec::set_diag_path(
            (outdir / (requests[i].stem + ".diag.json")).string());
        const AttemptResult ar = run_attempt(o, requests[i],
                                             static_cast<i64>(i), attempt,
                                             outdir);
        write_child_result(outdir, requests[i], ar);
        std::_Exit(ar.rc == 0 ? (ar.degraded ? kExitDegraded : kExitOk) : 1);
      }
      if (pid < 0) {
        // Out of processes: degrade to running the attempt inline rather
        // than failing the request (isolation is lost for this attempt
        // only).
        const AttemptResult ar = run_attempt(o, requests[i],
                                             static_cast<i64>(i), attempt,
                                             outdir);
        settle(i, attempt, false,
               ar.rc == 0 ? (ar.degraded ? kExitDegraded : kExitOk) : 1,
               ar.error);
        continue;
      }
      live.push_back(Child{pid, i, attempt});
    }
    if (live.empty()) continue;
    int status = 0;
    const pid_t done = ::waitpid(-1, &status, 0);
    if (done < 0) continue;
    const auto it =
        std::find_if(live.begin(), live.end(),
                     [&](const Child& c) { return c.pid == done; });
    if (it == live.end()) continue;
    const Child child = *it;
    live.erase(it);
    const Request& req = requests[child.index];
    if (WIFSIGNALED(status)) {
      const int sig = WTERMSIG(status);
      settle(child.index, child.attempt, /*crashed=*/true, /*rc=*/1,
             "crashed with signal " + std::to_string(sig) +
                 "; diagnostic: " + req.stem + ".diag.json");
    } else {
      const int rc = WIFEXITED(status) ? WEXITSTATUS(status) : 1;
      settle(child.index, child.attempt, /*crashed=*/false, rc,
             rc == kExitOk || rc == kExitDegraded
                 ? ""
                 : read_child_error(outdir, req, rc));
    }
  }
  // The per-request .res handshake files are scaffolding, not output.
  std::error_code ec;
  for (const Request& req : requests)
    fs::remove(outdir / (req.stem + ".res"), ec);
}

// ---------------------------------------------------------------------------
// The deterministic batch report. No timings, pids, attempt wall-clocks
// or cache-hit counts: everything in here is a pure function of the
// inputs, the flags and the per-request outcomes, which is what makes
// byte-identity at any --jobs (and across warm/cold cache runs) hold.
// ---------------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_report(const Options& o,
                          const std::vector<Request>& requests,
                          const std::vector<Outcome>& outcomes) {
  std::size_t ok = 0, degraded = 0, retried = 0, failed = 0;
  for (const Outcome& oc : outcomes) {
    if (oc.status == "ok") ++ok;
    else if (oc.status == "degraded") ++degraded;
    else if (oc.status == "retried") ++retried;
    else ++failed;
  }
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"polyfuse-batch-report-v1\",\n";
  os << "  \"batch\": \"" << json_escape(o.batch) << "\",\n";
  os << "  \"mode\": \"" << (o.batch_isolate ? "isolate" : "in-process")
     << "\",\n";
  os << "  \"cache\": {\"enabled\": "
     << (support::diskcache::enabled() ? "true" : "false") << ", \"dir\": \""
     << json_escape(o.cache_dir) << "\"},\n";
  os << "  \"requests\": [\n";
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& req = requests[i];
    const Outcome& oc = outcomes[i];
    os << "    {\"input\": \"" << json_escape(req.input) << "\", \"stem\": \""
       << json_escape(req.stem) << "\", \"status\": \"" << oc.status
       << "\", \"rc\": " << oc.rc << ", \"attempts\": " << oc.attempts;
    if (oc.wrote_output) os << ", \"output\": \"" << req.stem << ".out\"";
    if (!oc.error.empty())
      os << ", \"error\": \"" << json_escape(oc.error) << "\"";
    if (oc.crashed) os << ", \"diag\": \"" << req.stem << ".diag.json\"";
    os << "}" << (i + 1 < requests.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"summary\": {\"total\": " << requests.size() << ", \"ok\": " << ok
     << ", \"degraded\": " << degraded << ", \"retried\": " << retried
     << ", \"failed\": " << failed << "}\n";
  os << "}\n";
  return os.str();
}

}  // namespace

int run_batch(const Options& o) {
  std::vector<std::string> inputs;
  std::string error;
  if (!discover_inputs(o.batch, &inputs, &error)) {
    std::cerr << "polyfuse: " << error << "\n";
    return 2;
  }
  const std::vector<Request> requests = assign_stems(inputs);

  fs::path outdir = o.batch_out;
  if (outdir.empty())
    outdir = o.batch_report.empty()
                 ? fs::path(".")
                 : fs::path(o.batch_report).parent_path();
  if (outdir.empty()) outdir = ".";
  std::error_code ec;
  fs::create_directories(outdir, ec);
  if (!fs::is_directory(outdir, ec)) {
    std::cerr << "polyfuse: cannot create batch output directory '"
              << outdir.string() << "'\n";
    return 2;
  }

  const std::size_t jobs = o.jobs != 0 ? o.jobs : support::default_jobs();
  std::vector<Outcome> outcomes(requests.size());
  if (o.batch_isolate)
    run_isolated(o, requests, outdir, jobs, &outcomes);
  else
    run_in_process(o, requests, outdir, jobs, &outcomes);

  const std::string report = render_report(o, requests, outcomes);
  if (!o.batch_report.empty()) {
    if (!write_file_atomic(o.batch_report, report)) {
      std::cerr << "polyfuse: cannot write batch report '" << o.batch_report
                << "'\n";
      return 2;
    }
  } else {
    std::cout << report;
  }

  std::size_t failed = 0;
  for (const Outcome& oc : outcomes)
    if (oc.status == "failed") ++failed;
  std::cerr << "polyfuse: batch " << requests.size() << " request(s): "
            << (requests.size() - failed) << " succeeded, " << failed
            << " failed (report: "
            << (o.batch_report.empty() ? "stdout" : o.batch_report) << ")\n";
  return failed == 0 ? 0 : 3;
}

}  // namespace pf::cli
