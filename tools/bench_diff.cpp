// bench_diff: the benchmark regression gate.
//
//   bench_diff <baseline.json> <candidate.json> [options]
//
// Compares two BENCH_*.json records (bench/README-style, e.g.
// BENCH_pr6.json vs a fresh run) key by key and exits nonzero when the
// candidate regresses past a threshold, so CI can hold the line on the
// perf trajectory the BENCH_* records document (docs/observability.md).
//
// Keys are dotted paths into the JSON ("compile_scaling.fastlane.
// rate_percent"); a bare key is also tried under "compile_scaling." so
// the common gates read naturally. Two threshold kinds:
//
//   --max-increase=KEY:PCT   fail when candidate > baseline * (1+PCT/100)
//                            (for costs: seconds, pivots, nodes, rows)
//   --max-drop=KEY:ABS       fail when candidate < baseline - ABS
//                            (for rates: fastlane rate_percent)
//
// Without explicit thresholds a built-in gate table covers the keys every
// record carries; --no-defaults drops it. Keys missing from either file
// are reported and skipped, not failed: records grow new keys over time
// and an old baseline must not block a new candidate.
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Flattening JSON scanner: numeric leaves only, keyed by dotted path.
// Strings/bools/nulls are skipped (they never gate); malformed input
// fails the whole parse. Arrays index as path.0, path.1, ...
// ---------------------------------------------------------------------------
class Flattener {
 public:
  static bool run(const std::string& text,
                  std::map<std::string, double>* out) {
    Flattener f(text, out);
    f.skip_ws();
    if (!f.value("")) return false;
    f.skip_ws();
    return f.pos_ == text.size();
  }

 private:
  Flattener(const std::string& text, std::map<std::string, double>* out)
      : text_(text), out_(out) {}

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p)
      if (!eat(*p)) return false;
    return true;
  }

  bool string(std::string* out) {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        if (out != nullptr) out->push_back(text_[pos_]);
        ++pos_;
        continue;
      }
      if (out != nullptr) out->push_back(c);
    }
    return false;
  }

  bool number(double* out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (eat('.'))
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start) return false;
    try {
      *out = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      return false;
    }
    return true;
  }

  static std::string join(const std::string& path, const std::string& key) {
    return path.empty() ? key : path + "." + key;
  }

  bool value(const std::string& path) {
    skip_ws();
    switch (peek()) {
      case '{': {
        ++pos_;
        skip_ws();
        if (eat('}')) return true;
        for (;;) {
          skip_ws();
          std::string key;
          if (!string(&key)) return false;
          skip_ws();
          if (!eat(':')) return false;
          if (!value(join(path, key))) return false;
          skip_ws();
          if (eat(',')) continue;
          return eat('}');
        }
      }
      case '[': {
        ++pos_;
        skip_ws();
        if (eat(']')) return true;
        for (std::size_t i = 0;; ++i) {
          if (!value(join(path, std::to_string(i)))) return false;
          skip_ws();
          if (eat(',')) continue;
          return eat(']');
        }
      }
      case '"':
        return string(nullptr);
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default: {
        double v = 0;
        if (!number(&v)) return false;
        (*out_)[path] = v;
        return true;
      }
    }
  }

  const std::string& text_;
  std::map<std::string, double>* out_;
  std::size_t pos_ = 0;
};

struct Gate {
  std::string key;
  bool is_drop = false;  // false: max-increase (percent); true: max-drop (abs)
  double limit = 0;      // percent for increase gates, absolute for drop
};

// The keys every compile_scaling record has carried since BENCH_seed:
// wall time may wobble (generous 50%), the fastlane rate must hold, and
// the algorithmic counters are deterministic so even small growth is a
// real behavior change.
const Gate kDefaultGates[] = {
    {"end_to_end_compile_seconds", false, 50.0},
    {"fastlane.rate_percent", true, 5.0},
    {"stats.counters.simplex_pivots", false, 25.0},
    {"stats.counters.ilp_nodes", false, 25.0},
    {"stats.counters.fme_rows_generated", false, 25.0},
};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "bench_diff: " << error << "\n";
  std::cerr
      << "usage: bench_diff <baseline.json> <candidate.json> [options]\n"
         "  --max-increase=KEY:PCT  fail when candidate > baseline*(1+PCT%)\n"
         "  --max-drop=KEY:ABS      fail when candidate < baseline-ABS\n"
         "  --no-defaults           skip the built-in gate table\n"
         "  --list                  print the numeric keys both files share\n"
         "KEY is a dotted JSON path; bare keys are also looked up under\n"
         "'compile_scaling.'.\n";
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bench_diff: cannot open '" << path << "'\n";
    std::exit(2);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

double parse_limit(const std::string& flag, const std::string& text) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(text, &consumed);
    if (consumed == text.size() && v >= 0) return v;
  } catch (const std::exception&) {
  }
  usage(flag + " wants KEY:NUM with NUM >= 0, got '" + text + "'");
}

Gate parse_gate(const std::string& flag, const std::string& text,
                bool is_drop) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0)
    usage(flag + " wants KEY:NUM, got '" + text + "'");
  Gate g;
  g.key = text.substr(0, colon);
  g.is_drop = is_drop;
  g.limit = parse_limit(flag, text.substr(colon + 1));
  return g;
}

// A bare key is tried verbatim, then under compile_scaling. (the record
// section the default gates live in).
const double* lookup(const std::map<std::string, double>& m,
                     const std::string& key, std::string* resolved) {
  auto it = m.find(key);
  if (it == m.end()) it = m.find("compile_scaling." + key);
  if (it == m.end()) return nullptr;
  *resolved = it->first;
  return &it->second;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<Gate> gates;
  bool defaults = true;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage();
    else if (arg == "--no-defaults") defaults = false;
    else if (arg == "--list") list = true;
    else if (arg.rfind("--max-increase=", 0) == 0)
      gates.push_back(parse_gate("--max-increase", arg.substr(15), false));
    else if (arg.rfind("--max-drop=", 0) == 0)
      gates.push_back(parse_gate("--max-drop", arg.substr(11), true));
    else if (!arg.empty() && arg[0] == '-')
      usage("unknown option '" + arg + "'");
    else
      files.push_back(arg);
  }
  if (files.size() != 2) usage("expected exactly two JSON files");
  if (defaults)
    gates.insert(gates.end(), std::begin(kDefaultGates),
                 std::end(kDefaultGates));

  std::map<std::string, double> base, cand;
  if (!Flattener::run(read_file(files[0]), &base)) {
    std::cerr << "bench_diff: '" << files[0] << "' is not valid JSON\n";
    return 2;
  }
  if (!Flattener::run(read_file(files[1]), &cand)) {
    std::cerr << "bench_diff: '" << files[1] << "' is not valid JSON\n";
    return 2;
  }

  if (list) {
    for (const auto& [key, v] : base)
      if (cand.count(key) != 0) std::cout << key << "\n";
    return 0;
  }

  int regressions = 0;
  int checked = 0;
  for (const Gate& g : gates) {
    // Resolve in each file independently: a committed BENCH record nests
    // the section under "compile_scaling." while a raw bench run emits
    // bare keys, and the gate must bridge the two.
    std::string bkey, ckey;
    const double* b = lookup(base, g.key, &bkey);
    const double* c = lookup(cand, g.key, &ckey);
    if (b == nullptr || c == nullptr) {
      std::cout << "skip  " << g.key << " (missing from "
                << (b == nullptr ? files[0] : files[1]) << ")\n";
      continue;
    }
    ++checked;
    bool failed;
    std::ostringstream detail;
    if (g.is_drop) {
      failed = *c < *b - g.limit;
      detail << *b << " -> " << *c << " (max drop " << g.limit << ")";
    } else {
      failed = *c > *b * (1.0 + g.limit / 100.0);
      const double pct = *b != 0 ? (*c / *b - 1.0) * 100.0 : 0.0;
      detail << *b << " -> " << *c << " (" << (pct >= 0 ? "+" : "") << pct
             << "%, max +" << g.limit << "%)";
    }
    std::cout << (failed ? "FAIL" : "ok  ") << "  " << bkey << ": "
              << detail.str() << "\n";
    if (failed) ++regressions;
  }
  std::cout << "bench_diff: " << checked << " gate(s) checked, " << regressions
            << " regression(s)\n";
  if (checked == 0) {
    std::cerr << "bench_diff: no gate matched any key -- wrong files?\n";
    return 2;
  }
  return regressions != 0 ? 1 : 0;
}
