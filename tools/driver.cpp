#include "driver.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>

#include "analysis/lint.h"
#include "analysis/locality.h"
#include "analysis/reductions.h"
#include "cli_modes.h"
#include "codegen/cemit.h"
#include "codegen/codegen.h"
#include "codegen/tiling.h"
#include "ddg/dependences.h"
#include "exec/interp.h"
#include "frontend/parser.h"
#include "fusion/models.h"
#include "lp/fastlane.h"
#include "machine/perfmodel.h"
#include "poly/set.h"
#include "sched/analysis.h"
#include "sched/pluto.h"
#include "support/budget.h"
#include "support/diskcache.h"
#include "support/flightrec.h"
#include "support/metrics.h"
#include "support/stats.h"
#include "support/strings.h"
#include "support/threadpool.h"
#include "support/trace.h"
#include "verify/verify.h"

namespace pf::cli {

using namespace pf;

void usage(const std::string& error) {
  if (!error.empty()) std::cerr << "polyfuse: " << error << "\n";
  std::cerr << "usage: polyfuse [options] <input.pf | ->\n";
  // Rendered from the one option table (tools/cli_modes.h) so --help,
  // README and docs cannot drift; cli_test asserts the coverage.
  constexpr std::size_t kHelpCol = 20;
  for (const cli::OptionDoc& d : cli::kOptionDocs) {
    std::string line = "  ";
    line += d.flag;
    if (line.size() + 2 > kHelpCol) line += "  ";
    else line.append(kHelpCol - line.size(), ' ');
    std::istringstream help(d.help);
    std::string part;
    bool first = true;
    while (std::getline(help, part)) {
      if (first)
        std::cerr << line << part << "\n";
      else
        std::cerr << std::string(kHelpCol, ' ') << part << "\n";
      first = false;
    }
  }
  std::exit(error.empty() ? 0 : 2);
}

namespace {

// Parse the numeric payload of `--flag=VALUE` options. Anything that is
// not a plain (optionally signed) decimal integer -- empty, trailing
// garbage, out of i64 range -- exits through usage() instead of throwing
// out of std::stoll.
i64 parse_int_option(const std::string& flag, const std::string& text) {
  std::size_t consumed = 0;
  i64 v = 0;
  try {
    v = std::stoll(text, &consumed);
  } catch (const std::exception&) {
    usage(flag + " expects an integer, got '" + text + "'");
  }
  if (consumed != text.size())
    usage(flag + " expects an integer, got '" + text + "'");
  return v;
}

// The checked path for integer POLYFUSE_* env knobs: same strict parsing
// as the flags (pf::parse_i64 -- full consumption, range checked), same
// usage() exit on garbage, plus a knob-specific minimum.
std::optional<i64> parse_int_env(const char* name, i64 min) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return std::nullopt;
  const auto v = pf::parse_i64(env);
  if (!v || *v < min)
    usage(std::string(name) + " expects an integer >= " +
          std::to_string(min) + ", got '" + env + "'");
  return *v;
}

}  // namespace

Options parse_args(int argc, char** argv) {
  Options o;
  bool batch_retries_set = false;
  bool cache_max_mb_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg == "--help" || arg == "-h") usage();
    else if (arg.rfind("--model=", 0) == 0) o.model = value_of("--model=");
    else if (arg.rfind("--emit=", 0) == 0) o.emit = value_of("--emit=");
    else if (arg == "--tile") o.tile = true;
    else if (arg.rfind("--tile=", 0) == 0) {
      o.tile = true;
      o.tile_size = parse_int_option("--tile", value_of("--tile="));
      if (o.tile_size < 1) usage("--tile size must be >= 1");
    } else if (arg == "--no-openmp") o.openmp = false;
    else if (arg.rfind("--jobs=", 0) == 0) {
      const i64 v = parse_int_option("--jobs", value_of("--jobs="));
      if (v < 1) usage("--jobs must be >= 1");
      o.jobs = static_cast<std::size_t>(v);
    } else if (arg == "--stats") o.stats = true;
    else if (arg == "--stats=json") {
      o.stats = true;
      o.stats_json = true;
    } else if (arg == "--explain") o.explain = true;
    else if (arg == "--explain=json") {
      o.explain = true;
      o.explain_json = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      o.trace_file = value_of("--trace=");
      if (o.trace_file.empty()) usage("--trace expects a file name");
    } else if (arg.rfind("--diagnose=", 0) == 0) {
      o.diagnose_file = value_of("--diagnose=");
      if (o.diagnose_file.empty()) usage("--diagnose expects a file name");
    } else if (arg == "--no-solve-cache") o.solve_cache = false;
    else if (arg == "--no-fastlane") o.fastlane = false;
    else if (arg.rfind("--fuel=", 0) == 0) {
      o.fuel = parse_int_option("--fuel", value_of("--fuel="));
      if (o.fuel < 0) usage("--fuel must be >= 0");
    } else if (arg.rfind("--time-budget=", 0) == 0) {
      o.time_budget_ms =
          parse_int_option("--time-budget", value_of("--time-budget="));
      if (o.time_budget_ms < 1) usage("--time-budget must be >= 1 (ms)");
    } else if (arg.rfind("--inject=", 0) == 0) {
      std::string err;
      const auto inj = support::parse_injection(value_of("--inject="), &err);
      if (!inj) usage("--inject: " + err);
      o.injections.push_back(*inj);
    }
    else if (arg == "--validate") o.validate = true;
    else if (arg == "--verify") o.verify = true;
    else if (arg == "--verify=strict") {
      o.verify = true;
      o.verify_strict = true;
    }
    else if (arg == "--lint") o.lint = true;
    else if (arg == "--lint=strict") {
      o.lint = true;
      o.lint_strict = true;
    }
    else if (arg == "--analyze") o.analyze = true;
    else if (arg == "--analyze=json") {
      o.analyze = true;
      o.analyze_json = true;
    }
    else if (arg == "--reductions") o.reductions_report = true;
    else if (arg == "--reductions=json") {
      o.reductions_report = true;
      o.reductions_json = true;
    }
    else if (arg == "--no-reductions") o.no_reductions = true;
    else if (arg == "--machine-report") o.machine_report = true;
    else if (arg == "--report") o.report = true;
    else if (arg.rfind("--params=", 0) == 0) {
      std::stringstream ss(value_of("--params="));
      std::string tok;
      while (std::getline(ss, tok, ','))
        o.params.push_back(parse_int_option("--params", tok));
    } else if (arg.rfind("--batch=", 0) == 0) {
      o.batch = value_of("--batch=");
      if (o.batch.empty()) usage("--batch expects a directory or manifest");
    } else if (arg.rfind("--batch-out=", 0) == 0) {
      o.batch_out = value_of("--batch-out=");
      if (o.batch_out.empty()) usage("--batch-out expects a directory");
    } else if (arg.rfind("--batch-report=", 0) == 0) {
      o.batch_report = value_of("--batch-report=");
      if (o.batch_report.empty()) usage("--batch-report expects a file name");
    } else if (arg == "--batch-isolate") {
      o.batch_isolate = true;
    } else if (arg.rfind("--batch-retries=", 0) == 0) {
      o.batch_retries =
          parse_int_option("--batch-retries", value_of("--batch-retries="));
      if (o.batch_retries < 0) usage("--batch-retries must be >= 0");
      batch_retries_set = true;
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      o.cache_dir = value_of("--cache-dir=");
      if (o.cache_dir.empty()) usage("--cache-dir expects a directory");
    } else if (arg.rfind("--cache-max-mb=", 0) == 0) {
      o.cache_max_mb =
          parse_int_option("--cache-max-mb", value_of("--cache-max-mb="));
      if (o.cache_max_mb < 1) usage("--cache-max-mb must be >= 1");
      cache_max_mb_set = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      usage("unknown option '" + arg + "'");
    } else if (o.input.empty()) {
      o.input = arg;
    } else {
      usage("multiple inputs given");
    }
  }
  if (o.trace_file.empty()) {
    // Env-var equivalent of --trace, mirroring POLYFUSE_JOBS.
    if (const char* env = std::getenv("POLYFUSE_TRACE"))
      if (*env != '\0') o.trace_file = env;
  }
  // Cap on the tracer's in-memory span/remark buffers (per channel);
  // events beyond it are dropped and counted in trace_events_dropped.
  if (const auto v = parse_int_env("POLYFUSE_TRACE_MAX_EVENTS", 0))
    support::Tracer::set_max_events(static_cast<std::size_t>(*v));
  // Env equivalents of the budget flags, mirroring POLYFUSE_TRACE.
  // Explicit flags win; env values get the same checked parsing.
  if (o.fuel < 0) {
    if (const auto v = parse_int_env("POLYFUSE_FUEL", 0)) o.fuel = *v;
  }
  if (o.time_budget_ms < 0) {
    if (const auto v = parse_int_env("POLYFUSE_TIME_BUDGET_MS", 1))
      o.time_budget_ms = *v;
  }
  if (o.injections.empty()) {
    if (const char* env = std::getenv("POLYFUSE_INJECT"))
      if (*env != '\0') {
        std::stringstream ss(env);
        std::string tok;
        while (std::getline(ss, tok, ',')) {
          std::string err;
          const auto inj = support::parse_injection(tok, &err);
          if (!inj) usage("POLYFUSE_INJECT: " + err);
          o.injections.push_back(*inj);
        }
      }
  }
  // Persistent-cache and batch env knobs, same precedence rules.
  if (o.cache_dir.empty()) {
    if (const char* env = std::getenv("POLYFUSE_CACHE_DIR"))
      if (*env != '\0') o.cache_dir = env;
  }
  if (!cache_max_mb_set) {
    if (const auto v = parse_int_env("POLYFUSE_CACHE_MAX_MB", 1))
      o.cache_max_mb = *v;
  }
  if (!batch_retries_set) {
    if (const auto v = parse_int_env("POLYFUSE_BATCH_RETRIES", 0))
      o.batch_retries = *v;
  }

  // Validate names here, not mid-pipeline: batch requests must never hit
  // a usage() exit after parse time.
  static constexpr const char* kModels[] = {"wisefuse", "smartfuse", "nofuse",
                                            "maxfuse", "baseline"};
  if (std::find_if(std::begin(kModels), std::end(kModels),
                   [&](const char* m) { return o.model == m; }) ==
      std::end(kModels))
    usage("unknown model '" + o.model + "'");
  static constexpr const char* kEmits[] = {"c", "ast", "sched", "deps",
                                           "source"};
  if (std::find_if(std::begin(kEmits), std::end(kEmits),
                   [&](const char* e) { return o.emit == e; }) ==
      std::end(kEmits))
    usage("unknown --emit '" + o.emit + "'");

  if (o.batch.empty()) {
    if (o.input.empty()) usage("no input file");
    if (o.batch_isolate) usage("--batch-isolate needs --batch");
    if (!o.batch_out.empty()) usage("--batch-out needs --batch");
    if (!o.batch_report.empty()) usage("--batch-report needs --batch");
    if (batch_retries_set) usage("--batch-retries needs --batch");
  } else {
    if (!o.input.empty())
      usage("--batch and an input file are mutually exclusive");
    // These four are process-wide side outputs; in batch mode they would
    // interleave every request into one stream/file.
    if (o.stats || o.explain || !o.trace_file.empty() ||
        !o.diagnose_file.empty())
      usage("--stats/--explain/--trace/--diagnose are per-process outputs; "
            "use them on a single request, not with --batch");
  }
  if (o.verify && (o.emit == "source" || o.emit == "deps"))
    usage("--verify needs a schedule; use --emit=c, ast or sched");
  return o;
}

std::vector<support::Injection> budget_injections(
    const std::vector<support::Injection>& injections) {
  std::vector<support::Injection> out;
  for (const support::Injection& inj : injections)
    if (inj.site != support::BudgetSite::kDiskcacheRead &&
        inj.site != support::BudgetSite::kDiskcacheWrite &&
        inj.site != support::BudgetSite::kBatchRequest)
      out.push_back(inj);
  return out;
}

void apply_process_config(const Options& o) {
  if (o.jobs != 0) support::set_default_jobs(o.jobs);
  poly::set_solve_cache_enabled(o.solve_cache);
  if (!o.fastlane) lp::set_fastlane_enabled(false);

  if (!o.cache_dir.empty()) {
    if (!support::diskcache::configure(o.cache_dir, o.cache_max_mb))
      std::cerr << "polyfuse: cannot use cache directory '" << o.cache_dir
                << "'; persistent cache disabled\n";
    support::diskcache::set_injections(o.injections);
  }

  if (!o.trace_file.empty()) {
    support::Tracer::instance().set_spans_enabled(true);
    support::Tracer::instance().set_remarks_enabled(true);
  }
  if (o.explain) support::Tracer::instance().set_remarks_enabled(true);

  support::gauge_set(
      support::Gauge::kJobsConfigured,
      static_cast<i64>(o.jobs != 0 ? o.jobs : support::default_jobs()));
  support::gauge_set(support::Gauge::kTraceEventCap,
                     static_cast<i64>(support::Tracer::max_events()));
}

namespace {

std::string read_input(const std::string& path) {
  if (path == "-") {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path);
  if (!in) throw pf::Error("cannot open '" + path + "'");
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void default_params(const ir::Scop& scop, IntVector* params) {
  if (!params->empty()) {
    if (params->size() != scop.num_params())
      throw pf::Error("program has " + std::to_string(scop.num_params()) +
                      " parameter(s); --params gave " +
                      std::to_string(params->size()));
    return;
  }
  // Pick a small value satisfying the context.
  for (i64 guess : {16, 32, 64, 128, 256}) {
    IntVector cand(scop.num_params(), guess);
    if (scop.context().contains(cand)) {
      *params = cand;
      return;
    }
  }
  throw pf::Error("could not guess parameter values; use --params");
}

// Every exit path -- successful or not -- funnels through here: stats
// report, the --explain remark log, the --trace Chrome trace file and
// the --diagnose flight-recorder dump all fire no matter which --emit
// short-circuit returned or which error unwound the pipeline. (In batch
// mode the four side-output flags are rejected at parse time, so for a
// batch request this only refreshes gauges.)
void finish_outputs(const Options& o, std::ostream& err) {
  support::gauge_set(support::Gauge::kFlightrecThreads,
                     support::flightrec::recording_threads());
  if (o.stats) {
    if (o.stats_json)
      err << support::Stats::instance().to_json() << "\n";
    else
      err << support::Stats::instance().to_string();
  }
  if (o.explain) {
    const support::Tracer& tracer = support::Tracer::instance();
    if (o.explain_json)
      err << tracer.remarks_json() << "\n";
    else
      err << tracer.remarks_text();
  }
  if (!o.trace_file.empty()) {
    std::ofstream out(o.trace_file);
    if (!out) {
      err << "polyfuse: cannot write trace file '" << o.trace_file << "'\n";
      std::exit(2);
    }
    out << support::Tracer::instance().chrome_trace_json() << "\n";
  }
  if (!o.diagnose_file.empty() &&
      !support::flightrec::write_diag_file(o.diagnose_file, "requested")) {
    err << "polyfuse: cannot write diagnostic file '" << o.diagnose_file
        << "'\n";
    std::exit(2);
  }
}

// Fatal-path diagnostic: budget exhaustion and strict verify/lint
// failures dump the same flight-recorder report a crash would, to
// polyfuse-diag.<pid>.json (or POLYFUSE_DIAG_DIR). Independent of
// --diagnose=FILE, which always writes its own "requested" dump on exit.
void dump_fatal_diag(const std::string& cause, std::ostream& err) {
  const std::string path = support::flightrec::default_diag_path();
  if (support::flightrec::write_diag_file(path, cause.c_str()))
    err << "polyfuse: diagnostic written to " << path << "\n";
  else
    err << "polyfuse: cannot write diagnostic file '" << path << "'\n";
}

// Static verification of the transformed program (src/verify): prints
// every finding plus a one-line summary to `err`. Returns the exit code
// contribution: 1 when --verify=strict saw a violation, else 0.
int run_verify(const Options& o, const ir::Scop& scop,
               const ddg::DependenceGraph& dg, const sched::Schedule& sch,
               const codegen::AstNode* ast, std::ostream& err) {
  support::PhaseTimer timer("verify");
  const verify::Report report = verify::run_all(scop, dg, sch, ast);
  err << report.to_string(&scop);
  if (!report.ok() && o.verify_strict) {
    dump_fatal_diag("verify-strict-failure", err);
    return 1;
  }
  return 0;
}

// Static lint of the input program (src/analysis): prints every finding
// plus a one-line summary to `err`. Returns the exit code contribution:
// 1 when --lint=strict saw a correctness (error-severity) finding.
int run_lint_mode(const Options& o, const ir::Scop& scop,
                  const ddg::DependenceGraph& dg, std::ostream& err) {
  support::PhaseTimer timer("lint");
  const analysis::LintReport report = analysis::run_lint(scop, dg);
  err << report.to_string(&scop);
  if (!report.ok() && o.lint_strict) {
    dump_fatal_diag("lint-strict-failure", err);
    return 1;
  }
  return 0;
}

// Exact-count locality analysis of the input program (src/analysis):
// prints the counted report to `err`. The report outlives this call so
// the fusion remark channel and the machine report can consume it.
analysis::LocalityReport run_analyze_mode(const Options& o,
                                          const ir::Scop& scop,
                                          const ddg::DependenceGraph& dg,
                                          std::ostream& err) {
  support::PhaseTimer timer("analyze");
  IntVector params = o.params;
  default_params(scop, &params);
  analysis::LocalityReport report =
      analysis::analyze_locality(scop, dg, params);
  if (o.analyze_json)
    err << report.to_json(scop) << "\n";
  else
    err << report.to_string(scop);
  return report;
}

// Adapts the --analyze report into the fusion profitability oracle and
// installs it for the current scope, restoring the previous oracle (so
// nested pipelines -- tests run several in one process -- stay isolated).
class OracleScope final : public fusion::ProfitabilityOracle {
 public:
  explicit OracleScope(const analysis::LocalityReport& report)
      : report_(report), prev_(fusion::set_profitability_oracle(this)) {}
  ~OracleScope() override { fusion::set_profitability_oracle(prev_); }
  OracleScope(const OracleScope&) = delete;
  OracleScope& operator=(const OracleScope&) = delete;

  i64 shared_cells(std::size_t s, std::size_t t) const override {
    return report_.shared_cells_or_negative(s, t);
  }

 private:
  const analysis::LocalityReport& report_;
  const fusion::ProfitabilityOracle* prev_;
};

int run_pipeline(const Options& o, std::ostream& out, std::ostream& err) {
  std::optional<ir::Scop> parsed;
  {
    support::PhaseTimer timer("parse");
    parsed = frontend::parse_scop(read_input(o.input));
  }
  const ir::Scop& scop = *parsed;

  if (o.emit == "source" && !o.lint && !o.analyze) {
    out << scop.to_string();
    finish_outputs(o, err);
    return 0;
  }

  ddg::AnalysisOptions aopts;
  aopts.jobs = o.jobs;
  std::optional<ddg::DependenceGraph> analyzed;
  {
    support::PhaseTimer timer("deps");
    analyzed = ddg::DependenceGraph::analyze(scop, aopts);
  }
  const ddg::DependenceGraph& dg = *analyzed;

  // Lint the *input* program (pre-transformation), any --emit mode.
  const int lint_rc = o.lint ? run_lint_mode(o, scop, dg, err) : 0;

  // Counted locality analysis of the input program, any --emit mode.
  // While the report is alive it also serves as the fusion profitability
  // oracle, so the schedule phase's decision remarks carry exact
  // shared-cell counts.
  std::optional<analysis::LocalityReport> locality;
  std::optional<OracleScope> oracle;
  if (o.analyze) {
    locality = run_analyze_mode(o, scop, dg, err);
    oracle.emplace(*locality);
  }

  // Reduction/privatization analysis of the input program (src/analysis,
  // docs/reductions.md): runs when the report is requested or when the
  // scheduler will consume the relaxable set (any transforming model,
  // unless --no-reductions). Degrades to an empty -- claim-nothing --
  // result under --fuel, so a budget can suppress relaxation but never
  // cause an unsound one.
  const bool will_schedule =
      o.emit != "source" && o.emit != "deps" && o.model != "baseline";
  std::optional<analysis::ReductionInfo> reductions;
  if (o.reductions_report || (will_schedule && !o.no_reductions)) {
    support::PhaseTimer timer("reductions");
    analysis::ReductionOptions ropts;
    reductions = analysis::analyze_reductions_degrading(scop, dg, ropts);
    if (o.reductions_report) {
      if (o.reductions_json)
        err << analysis::render_reductions_json(scop, dg, *reductions);
      else
        err << analysis::render_reductions_text(scop, dg, *reductions);
    }
  }

  if (o.emit == "source") {
    out << scop.to_string();
    finish_outputs(o, err);
    return lint_rc;
  }
  if (o.emit == "deps") {
    out << dg.to_string();
    finish_outputs(o, err);
    return lint_rc;
  }

  sched::Schedule sch;
  {
    support::PhaseTimer timer("schedule");
    if (o.model == "baseline") {
      sch = sched::identity_schedule(scop);
      sched::annotate_dependences(sch, dg);
    } else {
      fusion::FusionModel model = fusion::FusionModel::kWisefuse;
      if (o.model == "wisefuse")
        model = fusion::FusionModel::kWisefuse;
      else if (o.model == "smartfuse")
        model = fusion::FusionModel::kSmartfuse;
      else if (o.model == "nofuse")
        model = fusion::FusionModel::kNofuse;
      else if (o.model == "maxfuse")
        model = fusion::FusionModel::kMaxfuse;
      else  // parse_args validated the name already
        throw pf::Error("unknown model '" + o.model + "'");
      // The degradation chain is a no-op without a budget: the first
      // attempt is exactly make_policy + compute_schedule.
      sched::SchedulerOptions sopts;
      if (reductions && !o.no_reductions)
        sopts.relaxed_deps = reductions->relaxable;
      sch = fusion::compute_schedule_degrading(scop, dg, model, sopts);
    }
  }

  if (o.report) {
    const auto parts = sch.nest_partitions();
    std::set<int> distinct(parts.begin(), parts.end());
    err << "polyfuse: model=" << o.model << " statements="
        << scop.num_statements() << " dependences=" << dg.deps().size()
        << " (+" << dg.rar_deps().size() << " RAR) fusion partitions="
        << distinct.size() << "\n";
    for (std::size_t s = 0; s < scop.num_statements(); ++s)
      err << "  " << sch.statement_to_string(s) << "\n";
  }

  if (o.emit == "sched") {
    // No AST at this point: legality + partition checks only.
    const int rc = o.verify ? run_verify(o, scop, dg, sch, nullptr, err) : 0;
    out << sch.to_string();
    finish_outputs(o, err);
    return std::max(rc, lint_rc);
  }

  codegen::AstPtr ast;
  {
    support::PhaseTimer timer("codegen");
    ast = codegen::generate_ast(scop, sch);
    if (o.tile) {
      codegen::TilingOptions topts;
      topts.tile_size = o.tile_size;
      const std::size_t bands = codegen::tile_ast(*ast, sch, dg, topts);
      err << "polyfuse: tiled " << bands << " band(s) with size "
          << o.tile_size << "\n";
    }
  }

  // Verify the final AST (post-tiling: tile loops inherit the point
  // loop's level and parallel claim, so the race check covers them too).
  const int verify_rc =
      o.verify ? run_verify(o, scop, dg, sch, ast.get(), err) : 0;

  if (o.validate || o.machine_report) {
    IntVector params = o.params;
    default_params(scop, &params);
    if (o.validate) {
      support::PhaseTimer timer("validate");
      sched::Schedule ident = sched::identity_schedule(scop);
      sched::annotate_dependences(ident, dg);
      const auto orig = codegen::generate_ast(scop, ident);
      exec::ArrayStore a(scop, params), b(scop, params);
      auto init = [](exec::ArrayStore& s) {
        for (std::size_t arr = 0; arr < s.num_arrays(); ++arr) {
          const double salt = static_cast<double>(arr + 1);
          s.fill(arr, [&](const IntVector& idx) {
            double v = 1.0 + 0.2 * salt;
            for (std::size_t d = 0; d < idx.size(); ++d)
              v += 0.01 * static_cast<double>(idx[d]) / salt;
            if (idx.size() == 2 && idx[0] == idx[1]) v += 50.0;
            return v;
          });
        }
      };
      init(a);
      init(b);
      exec::interpret(*orig, a);
      exec::interpret(*ast, b);
      const double diff = exec::ArrayStore::max_abs_diff(a, b);
      // A schedule with relaxed reduction dependences may legitimately
      // reassociate floating-point accumulation (the same contract as
      // `#pragma omp reduction`), so exact equality is demanded only of
      // schedules that relaxed nothing. Integer-valued data commutes
      // exactly; see tests/reductions_test.cpp for that stronger check.
      const double tol = sch.relaxed_deps.empty() ? 0.0 : 1e-9;
      const bool ok = diff <= tol;
      err << "polyfuse: validation max |diff| = " << diff
          << (!ok             ? " (MISMATCH)"
              : diff == 0.0   ? " (ok)"
                              : " (ok, reduction reassociation)")
          << "\n";
      if (!ok) {
        finish_outputs(o, err);
        return 1;
      }
    }
    if (o.machine_report) {
      support::PhaseTimer timer("machine-report");
      exec::ArrayStore store(scop, params);
      // With --analyze, feed the exact per-array footprints in so the
      // report includes the counted compulsory-traffic floor.
      machine::FootprintHints hints;
      const machine::FootprintHints* hints_ptr = nullptr;
      if (locality) {
        hints.cells.assign(scop.arrays().size(), -1);
        for (const analysis::ArrayLocality& al : locality->arrays)
          if (al.footprint.is_exact()) hints.cells[al.array] = al.footprint.value;
        hints_ptr = &hints;
      }
      const machine::ModelReport r =
          machine::evaluate(*ast, store, {}, hints_ptr);
      err << r.to_string();
    }
  }

  {
    support::PhaseTimer timer("emit");
    if (o.emit == "ast") {
      out << codegen::ast_to_string(*ast, scop);
    } else {  // "c" -- parse_args validated the name already
      codegen::CEmitOptions eopts;
      eopts.openmp = o.openmp;
      out << codegen::emit_c(*ast, scop, eopts);
    }
  }
  finish_outputs(o, err);
  return std::max(verify_rc, lint_rc);
}

// Budget installation shared by the single and per-request paths. With
// no budget flags this installs nothing and every path is byte-identical
// to an unbudgeted build. diskcache.* / batch.request injections are
// filtered out: they are enforced by their own modules, and leaving them
// in the spec would mark the budget "limited", which bypasses the solve
// caches (support/budget.h).
struct BudgetInstall {
  explicit BudgetInstall(const Options& o) {
    support::BudgetSpec bspec;
    bspec.fuel = o.fuel;
    bspec.deadline_ms = o.time_budget_ms;
    bspec.injections = budget_injections(o.injections);
    if (bspec.limited()) budget.emplace(bspec);
    scope.emplace(budget ? &*budget : nullptr);
  }
  std::optional<support::Budget> budget;
  std::optional<support::BudgetScope> scope;
};

}  // namespace

RequestResult run_request(const Options& o, std::ostream& out,
                          std::ostream& err) {
  RequestResult result;
  // Request isolation: its own budget, its own metrics registry (absorbed
  // into the parent when the scope closes -- absorption is atomic, so
  // concurrent request teardowns are safe), and a private in-memory solve
  // cache so per-request cache behavior never depends on what a sibling
  // thread memoized first.
  BudgetInstall budget(o);
  support::MetricsScope metrics;
  poly::SolveCacheScope solve_scope;
  try {
    result.rc = run_pipeline(o, out, err);
  } catch (const support::BudgetExceeded& e) {
    err << "polyfuse: " << e.what() << "\n";
    result.rc = 1;
    result.error = e.what();
  } catch (const pf::Error& e) {
    err << "polyfuse: " << e.what() << "\n";
    result.rc = 1;
    result.error = e.what();
  } catch (const std::exception& e) {
    err << "polyfuse: " << e.what() << "\n";
    result.rc = 1;
    result.error = e.what();
  }
  // "Degraded" = the degradation chain absorbed at least one budget fault
  // (fuel, deadline or injected) on the way to whatever was produced.
  // Read from the request-scoped registry, so sibling requests never
  // bleed in.
  result.degraded =
      metrics.registry().get(support::Counter::kBudgetExhaustions) +
          metrics.registry().get(support::Counter::kBudgetInjectedFaults) >
      0;
  return result;
}

int run_single(const Options& o) {
  BudgetInstall budget(o);
  // Error paths still owe the user their requested outputs: a budget
  // that escaped every recovery boundary additionally leaves a crash-
  // style diagnostic, and any pipeline error prints stats/explain/trace
  // before the nonzero exit.
  try {
    return run_pipeline(o, std::cout, std::cerr);
  } catch (const support::BudgetExceeded& e) {
    std::cerr << "polyfuse: " << e.what() << "\n";
    dump_fatal_diag(std::string("budget-exceeded:") + e.site_name(),
                    std::cerr);
    finish_outputs(o, std::cerr);
    return 1;
  } catch (const pf::Error& e) {
    std::cerr << "polyfuse: " << e.what() << "\n";
    finish_outputs(o, std::cerr);
    return 1;
  }
}

}  // namespace pf::cli
