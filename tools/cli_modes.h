// Single source of truth for the polyfuse CLI option list.
//
// usage() renders --help from this table, and cli_test asserts that the
// rendered help and README.md mention every flag (and every check mode
// in kCheckModes), so the three places a mode is documented -- help
// text, README, docs -- cannot silently drift when one is added.
#pragma once

#include <cstddef>

namespace pf::cli {

struct OptionDoc {
  const char* flag;  // as shown in --help, e.g. "--verify[=strict]"
  const char* help;  // description; '\n' starts an indented continuation
};

inline constexpr OptionDoc kOptionDocs[] = {
    {"--model=NAME", "wisefuse | smartfuse | nofuse | maxfuse | baseline"},
    {"--emit=WHAT", "c | ast | sched | deps | source"},
    {"--tile[=SIZE]", "tile permutable bands (default 32)"},
    {"--no-openmp", "omit OpenMP pragmas"},
    {"--params=V1,V2", "parameter values (for --validate / --machine-report)"},
    {"--validate", "check transformed output == original output"},
    {"--verify[=strict]",
     "static legality + OpenMP race + fusion-order checks\n"
     "on the transformed program (strict: exit 1 on any\n"
     "violation); see docs/verification.md"},
    {"--lint[=strict]",
     "value-based dataflow lints on the input program:\n"
     "out-of-bounds accesses, uninitialized local-array\n"
     "reads, dead writes, fusion/locality diagnostics\n"
     "(strict: exit 1 on any correctness finding); see\n"
     "docs/analysis.md"},
    {"--analyze[=json]",
     "exact-count locality report of the input program at\n"
     "the --params values: statement instance counts, array\n"
     "footprint/reuse volumes, counted dead-write and\n"
     "uninitialized-read findings, per-pair shared cells;\n"
     "feeds the --explain fusion profitability remarks and\n"
     "the --machine-report compulsory-traffic floor; counts\n"
     "degrade to a structured \"unknown\" under --fuel; see\n"
     "docs/analysis.md"},
    {"--reductions[=json]",
     "reduction/privatization report of the input program:\n"
     "associative reduction statements (+, *, min, max),\n"
     "relaxable self-dependences, privatizable arrays;\n"
     "deterministic at every --jobs; see docs/reductions.md"},
    {"--no-reductions",
     "do not relax reduction self-dependences during\n"
     "scheduling (classic behavior); see docs/reductions.md"},
    {"--machine-report", "modeled cache/parallelism report"},
    {"--report", "fusion & parallelism summary"},
    {"--jobs=N", "worker threads for dependence analysis"},
    {"--stats[=json]", "print pipeline perf counters + histograms to stderr"},
    {"--trace=FILE",
     "write Chrome trace-event JSON (or POLYFUSE_TRACE=FILE);\n"
     "POLYFUSE_TRACE_MAX_EVENTS caps the in-memory buffer"},
    {"--diagnose=FILE",
     "write the flight-recorder diagnostic JSON (recent\n"
     "spans/remarks/faults + metrics snapshot) on exit; the\n"
     "same report a crash or budget exhaustion dumps to\n"
     "polyfuse-diag.<pid>.json -- see docs/observability.md"},
    {"--explain[=json]", "print scheduler/fusion decision remarks to stderr"},
    {"--no-solve-cache", "disable the polyhedral solve cache"},
    {"--no-fastlane",
     "disable the int64 fast-lane solver paths and run the\n"
     "exact Rational lane only (POLYFUSE_NO_FASTLANE);\n"
     "output is byte-identical either way -- see\n"
     "docs/performance.md"},
    {"--fuel=N",
     "compute-fuel budget: abort solver work after N units\n"
     "and degrade gracefully (POLYFUSE_FUEL); see\n"
     "docs/robustness.md"},
    {"--time-budget=MS",
     "wall-clock budget for solver work, in milliseconds\n"
     "(POLYFUSE_TIME_BUDGET_MS)"},
    {"--inject=S:fail-after=K",
     "deterministically fail the K-th operation at site S\n"
     "(lp_solve, fme_project, dep_pair, pluto_level,\n"
     "fusion_model, jit_cc, count_set, lp.fastlane,\n"
     "analysis.reductions, diskcache.read, diskcache.write,\n"
     "batch.request);\n"
     "repeatable, for\n"
     "testing the degradation chain (POLYFUSE_INJECT);\n"
     "lp.fastlane forces a fast-lane fallback instead of a\n"
     "fault; batch.request fails that request's first\n"
     "attempt (exercises the retry path);\n"
     "S:abort-after=K instead aborts the process\n"
     "(tests the crash-diagnostic path)"},
    {"--batch=PATH",
     "batch mode: compile every *.pf under directory PATH\n"
     "(or every line of manifest file PATH) as independent\n"
     "fault-isolated requests across --jobs workers; per-\n"
     "request output lands in --batch-out; one request\n"
     "crashing or exhausting its budget never takes down the\n"
     "rest -- see docs/service.md"},
    {"--batch-out=DIR",
     "directory for per-request outputs (<stem>.out,\n"
     "<stem>.err, crash diagnostics); default: alongside the\n"
     "batch report or the working directory"},
    {"--batch-report=FILE",
     "write the batch JSON report (schema in docs/service.md)\n"
     "to FILE; byte-identical at any --jobs"},
    {"--batch-isolate",
     "run each batch request in a forked child process, so a\n"
     "hard crash (e.g. --inject=SITE:abort-after=K) is\n"
     "contained to that request and reported with its crash\n"
     "diagnostic while the rest of the batch completes"},
    {"--batch-retries=N",
     "retry a failed batch request up to N times with\n"
     "backoff before reporting it failed (default 1;\n"
     "POLYFUSE_BATCH_RETRIES)"},
    {"--cache-dir=DIR",
     "persistent on-disk solve/count cache directory\n"
     "(POLYFUSE_CACHE_DIR): crash-safe, checksummed,\n"
     "content-addressed; corrupt entries are quarantined\n"
     "misses, never wrong answers -- see docs/service.md"},
    {"--cache-max-mb=N",
     "size cap for --cache-dir in megabytes; an LRU sweep\n"
     "keeps the directory under it (default 256;\n"
     "POLYFUSE_CACHE_MAX_MB)"},
};

/// The program-checking modes every user-facing document must mention.
inline constexpr const char* kCheckModes[] = {"--validate", "--verify",
                                              "--lint"};

}  // namespace pf::cli
