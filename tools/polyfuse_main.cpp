// polyfuse: command-line source-to-source polyhedral loop optimizer.
//
//   polyfuse [options] <input.pf | ->
//   polyfuse --batch=DIR|MANIFEST [--batch-out=DIR] [--batch-report=FILE]
//
// The full option reference lives in tools/cli_modes.h (rendered by
// --help); the single-request pipeline is tools/driver.cpp and the
// crash-safe batch driver is tools/batch.cpp (docs/service.md).
//
// Example:
//   polyfuse --model=wisefuse --emit=c --tile=32 kernel.pf > kernel.c
#include <exception>
#include <iostream>

#include "batch.h"
#include "driver.h"
#include "support/error.h"
#include "support/flightrec.h"

int main(int argc, char** argv) {
  using namespace pf;
  // Hook fatal signals before any real work: a crash anywhere in the
  // pipeline (including a --inject=SITE:abort-after=K hard fault) leaves
  // polyfuse-diag.<pid>.json behind. Near-zero cost when nothing dies.
  support::flightrec::install_crash_handler();
  support::flightrec::set_invocation(argc, argv);
  try {
    const cli::Options o = cli::parse_args(argc, argv);
    cli::apply_process_config(o);
    return o.batch.empty() ? cli::run_single(o) : cli::run_batch(o);
  } catch (const pf::Error& e) {
    std::cerr << "polyfuse: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // e.g. malformed numeric option values (std::stol).
    std::cerr << "polyfuse: " << e.what() << "\n";
    return 1;
  }
}
