// polyfuse: command-line source-to-source polyhedral loop optimizer.
//
//   polyfuse [options] <input.pf | ->
//
//   --model=NAME      wisefuse (default) | smartfuse | nofuse | maxfuse |
//                     baseline (original order)
//   --emit=WHAT       c (default) | ast | sched | deps | source
//   --tile[=SIZE]     tile permutable bands (default size 32)
//   --no-openmp       omit OpenMP pragmas from emitted C
//   --params=V1,V2    parameter values for --validate / --machine-report
//   --validate        interpret original and transformed, compare outputs
//   --verify[=strict] statically re-verify the transformed program:
//                     dependence legality, OpenMP race freedom of every
//                     parallel-marked loop, and fusion partition order
//                     (docs/verification.md). strict: exit 1 on any
//                     violation; without strict, violations only warn
//   --lint[=strict]   statically lint the *input* program before any
//                     transformation: out-of-bounds accesses,
//                     uninitialized local-array reads, dead writes
//                     (value-based dataflow), fusion/locality perf
//                     diagnostics (docs/analysis.md). strict: exit 1 on
//                     any correctness finding
//   --analyze[=json]  exact-count locality report of the *input* program
//                     at the --params values (or the --validate guess):
//                     per-statement instance counts, per-array footprint
//                     and reuse volumes, counted dead-write and
//                     uninitialized-read findings, per-pair shared cells
//                     (docs/analysis.md). Feeds the fusion profitability
//                     remarks (--explain) and the machine report's
//                     compulsory-traffic floor. Counts degrade to a
//                     structured "unknown" under --fuel, never a wrong
//                     number; output is identical at every --jobs
//   --reductions[=json]
//                     reduction/privatization report of the *input*
//                     program: associative reduction statements
//                     (+, *, min, max), their relaxable
//                     self-dependences, privatizable arrays
//                     (docs/reductions.md). Deterministic: identical at
//                     every --jobs. The relaxable set also feeds the
//                     scheduler (below) unless --no-reductions
//   --no-reductions   schedule with every dependence hard (classic
//                     behavior): no reduction self-dependence is relaxed
//                     and no OpenMP reduction clause is emitted
//   --machine-report  modeled cache/parallelism report (needs --params)
//   --report          fusion & parallelism summary
//   --jobs=N          worker threads for dependence analysis (default:
//                     POLYFUSE_JOBS or hardware; output is identical at
//                     every N)
//   --stats[=json]    print pipeline perf counters + phase times to stderr
//   --trace=FILE      write a Chrome trace-event JSON file (spans from
//                     every pipeline layer; open in chrome://tracing or
//                     Perfetto). POLYFUSE_TRACE=FILE is the env equivalent;
//                     POLYFUSE_TRACE_MAX_EVENTS caps the in-memory buffer.
//   --diagnose=FILE   write the flight-recorder diagnostic JSON on exit --
//                     the same report a crash, budget exhaustion, or
//                     strict verify/lint failure dumps automatically to
//                     polyfuse-diag.<pid>.json (docs/observability.md)
//   --explain[=json]  print the scheduler/fusion decision-remark log to
//                     stderr (deterministic: identical at every --jobs)
//   --no-solve-cache  disable the polyhedral solve cache
//   --no-fastlane     disable the int64 fast-lane solver paths; the exact
//                     Rational lane produces byte-identical output
//                     (POLYFUSE_NO_FASTLANE, docs/performance.md)
//   --fuel=N          compute-fuel budget: abort solver work after N units
//                     and degrade gracefully instead of crashing
//                     (docs/robustness.md). POLYFUSE_FUEL is the env
//                     equivalent.
//   --time-budget=MS  wall-clock budget for solver work
//                     (POLYFUSE_TIME_BUDGET_MS)
//   --inject=SITE:fail-after=K
//                     deterministically fail the K-th operation at SITE
//                     (lp_solve, fme_project, dep_pair, pluto_level,
//                     fusion_model, jit_cc, count_set, lp.fastlane);
//                     repeatable
//                     (POLYFUSE_INJECT). SITE:abort-after=K aborts the
//                     process instead (tests the crash-diagnostic path)
//
// Example:
//   polyfuse --model=wisefuse --emit=c --tile=32 kernel.pf > kernel.c
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>

#include "analysis/lint.h"
#include "analysis/locality.h"
#include "analysis/reductions.h"
#include "cli_modes.h"
#include "codegen/cemit.h"
#include "codegen/codegen.h"
#include "codegen/tiling.h"
#include "ddg/dependences.h"
#include "exec/interp.h"
#include "frontend/parser.h"
#include "fusion/models.h"
#include "lp/fastlane.h"
#include "machine/perfmodel.h"
#include "poly/set.h"
#include "sched/analysis.h"
#include "sched/pluto.h"
#include "support/budget.h"
#include "support/flightrec.h"
#include "support/metrics.h"
#include "support/stats.h"
#include "support/strings.h"
#include "support/threadpool.h"
#include "support/trace.h"
#include "verify/verify.h"

namespace {

using namespace pf;

struct Options {
  std::string model = "wisefuse";
  std::string emit = "c";
  bool tile = false;
  i64 tile_size = 32;
  bool openmp = true;
  bool validate = false;
  bool verify = false;
  bool verify_strict = false;
  bool lint = false;
  bool lint_strict = false;
  bool analyze = false;
  bool analyze_json = false;
  bool reductions_report = false;
  bool reductions_json = false;
  bool no_reductions = false;
  bool machine_report = false;
  bool report = false;
  std::size_t jobs = 0;  // 0 = default (POLYFUSE_JOBS / hardware)
  bool stats = false;
  bool stats_json = false;
  bool explain = false;
  bool explain_json = false;
  std::string trace_file;     // empty = tracing off
  std::string diagnose_file;  // empty = no on-exit diagnostic dump
  bool solve_cache = true;
  bool fastlane = true;
  i64 fuel = -1;            // < 0 = unlimited
  i64 time_budget_ms = -1;  // < 0 = unlimited
  std::vector<support::Injection> injections;
  IntVector params;
  std::string input;
};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "polyfuse: " << error << "\n";
  std::cerr << "usage: polyfuse [options] <input.pf | ->\n";
  // Rendered from the one option table (tools/cli_modes.h) so --help,
  // README and docs cannot drift; cli_test asserts the coverage.
  constexpr std::size_t kHelpCol = 20;
  for (const cli::OptionDoc& d : cli::kOptionDocs) {
    std::string line = "  ";
    line += d.flag;
    if (line.size() + 2 > kHelpCol) line += "  ";
    else line.append(kHelpCol - line.size(), ' ');
    std::istringstream help(d.help);
    std::string part;
    bool first = true;
    while (std::getline(help, part)) {
      if (first)
        std::cerr << line << part << "\n";
      else
        std::cerr << std::string(kHelpCol, ' ') << part << "\n";
      first = false;
    }
  }
  std::exit(error.empty() ? 0 : 2);
}

// Parse the numeric payload of `--flag=VALUE` options. Anything that is
// not a plain (optionally signed) decimal integer -- empty, trailing
// garbage, out of i64 range -- exits through usage() instead of throwing
// out of std::stoll.
i64 parse_int_option(const std::string& flag, const std::string& text) {
  std::size_t consumed = 0;
  i64 v = 0;
  try {
    v = std::stoll(text, &consumed);
  } catch (const std::exception&) {
    usage(flag + " expects an integer, got '" + text + "'");
  }
  if (consumed != text.size())
    usage(flag + " expects an integer, got '" + text + "'");
  return v;
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg == "--help" || arg == "-h") usage();
    else if (arg.rfind("--model=", 0) == 0) o.model = value_of("--model=");
    else if (arg.rfind("--emit=", 0) == 0) o.emit = value_of("--emit=");
    else if (arg == "--tile") o.tile = true;
    else if (arg.rfind("--tile=", 0) == 0) {
      o.tile = true;
      o.tile_size = parse_int_option("--tile", value_of("--tile="));
      if (o.tile_size < 1) usage("--tile size must be >= 1");
    } else if (arg == "--no-openmp") o.openmp = false;
    else if (arg.rfind("--jobs=", 0) == 0) {
      const i64 v = parse_int_option("--jobs", value_of("--jobs="));
      if (v < 1) usage("--jobs must be >= 1");
      o.jobs = static_cast<std::size_t>(v);
    } else if (arg == "--stats") o.stats = true;
    else if (arg == "--stats=json") {
      o.stats = true;
      o.stats_json = true;
    } else if (arg == "--explain") o.explain = true;
    else if (arg == "--explain=json") {
      o.explain = true;
      o.explain_json = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      o.trace_file = value_of("--trace=");
      if (o.trace_file.empty()) usage("--trace expects a file name");
    } else if (arg.rfind("--diagnose=", 0) == 0) {
      o.diagnose_file = value_of("--diagnose=");
      if (o.diagnose_file.empty()) usage("--diagnose expects a file name");
    } else if (arg == "--no-solve-cache") o.solve_cache = false;
    else if (arg == "--no-fastlane") o.fastlane = false;
    else if (arg.rfind("--fuel=", 0) == 0) {
      o.fuel = parse_int_option("--fuel", value_of("--fuel="));
      if (o.fuel < 0) usage("--fuel must be >= 0");
    } else if (arg.rfind("--time-budget=", 0) == 0) {
      o.time_budget_ms =
          parse_int_option("--time-budget", value_of("--time-budget="));
      if (o.time_budget_ms < 1) usage("--time-budget must be >= 1 (ms)");
    } else if (arg.rfind("--inject=", 0) == 0) {
      std::string err;
      const auto inj = support::parse_injection(value_of("--inject="), &err);
      if (!inj) usage("--inject: " + err);
      o.injections.push_back(*inj);
    }
    else if (arg == "--validate") o.validate = true;
    else if (arg == "--verify") o.verify = true;
    else if (arg == "--verify=strict") {
      o.verify = true;
      o.verify_strict = true;
    }
    else if (arg == "--lint") o.lint = true;
    else if (arg == "--lint=strict") {
      o.lint = true;
      o.lint_strict = true;
    }
    else if (arg == "--analyze") o.analyze = true;
    else if (arg == "--analyze=json") {
      o.analyze = true;
      o.analyze_json = true;
    }
    else if (arg == "--reductions") o.reductions_report = true;
    else if (arg == "--reductions=json") {
      o.reductions_report = true;
      o.reductions_json = true;
    }
    else if (arg == "--no-reductions") o.no_reductions = true;
    else if (arg == "--machine-report") o.machine_report = true;
    else if (arg == "--report") o.report = true;
    else if (arg.rfind("--params=", 0) == 0) {
      std::stringstream ss(value_of("--params="));
      std::string tok;
      while (std::getline(ss, tok, ','))
        o.params.push_back(parse_int_option("--params", tok));
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      usage("unknown option '" + arg + "'");
    } else if (o.input.empty()) {
      o.input = arg;
    } else {
      usage("multiple inputs given");
    }
  }
  if (o.trace_file.empty()) {
    // Env-var equivalent of --trace, mirroring POLYFUSE_JOBS.
    if (const char* env = std::getenv("POLYFUSE_TRACE"))
      if (*env != '\0') o.trace_file = env;
  }
  // Cap on the tracer's in-memory span/remark buffers (per channel);
  // events beyond it are dropped and counted in trace_events_dropped.
  if (const char* env = std::getenv("POLYFUSE_TRACE_MAX_EVENTS")) {
    if (*env != '\0') {
      const auto v = pf::parse_i64(env);
      if (!v || *v < 0)
        usage(std::string(
                  "POLYFUSE_TRACE_MAX_EVENTS expects an integer >= 0, got '") +
              env + "'");
      support::Tracer::set_max_events(static_cast<std::size_t>(*v));
    }
  }
  // Env equivalents of the budget flags, mirroring POLYFUSE_TRACE.
  // Explicit flags win; env values get the same checked parsing.
  if (o.fuel < 0) {
    if (const char* env = std::getenv("POLYFUSE_FUEL"))
      if (*env != '\0') {
        const auto v = pf::parse_i64(env);
        if (!v || *v < 0)
          usage(std::string("POLYFUSE_FUEL expects an integer >= 0, got '") +
                env + "'");
        o.fuel = *v;
      }
  }
  if (o.time_budget_ms < 0) {
    if (const char* env = std::getenv("POLYFUSE_TIME_BUDGET_MS"))
      if (*env != '\0') {
        const auto v = pf::parse_i64(env);
        if (!v || *v < 1)
          usage(std::string(
                    "POLYFUSE_TIME_BUDGET_MS expects an integer >= 1, got '") +
                env + "'");
        o.time_budget_ms = *v;
      }
  }
  if (o.injections.empty()) {
    if (const char* env = std::getenv("POLYFUSE_INJECT"))
      if (*env != '\0') {
        std::stringstream ss(env);
        std::string tok;
        while (std::getline(ss, tok, ',')) {
          std::string err;
          const auto inj = support::parse_injection(tok, &err);
          if (!inj) usage("POLYFUSE_INJECT: " + err);
          o.injections.push_back(*inj);
        }
      }
  }
  if (o.input.empty()) usage("no input file");
  if (o.verify && (o.emit == "source" || o.emit == "deps"))
    usage("--verify needs a schedule; use --emit=c, ast or sched");
  return o;
}

std::string read_input(const std::string& path) {
  if (path == "-") {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "polyfuse: cannot open '" << path << "'\n";
    std::exit(2);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void default_params(const ir::Scop& scop, IntVector* params) {
  if (!params->empty()) {
    if (params->size() != scop.num_params()) {
      std::cerr << "polyfuse: program has " << scop.num_params()
                << " parameter(s); --params gave " << params->size() << "\n";
      std::exit(2);
    }
    return;
  }
  // Pick a small value satisfying the context.
  for (i64 guess : {16, 32, 64, 128, 256}) {
    IntVector cand(scop.num_params(), guess);
    if (scop.context().contains(cand)) {
      *params = cand;
      return;
    }
  }
  std::cerr << "polyfuse: could not guess parameter values; use --params\n";
  std::exit(2);
}

// Every exit path -- successful or not -- funnels through here: stats
// report, the --explain remark log, the --trace Chrome trace file and
// the --diagnose flight-recorder dump all fire no matter which --emit
// short-circuit returned or which error unwound the pipeline.
void finish_outputs(const Options& o) {
  support::gauge_set(support::Gauge::kFlightrecThreads,
                     support::flightrec::recording_threads());
  if (o.stats) {
    if (o.stats_json)
      std::cerr << support::Stats::instance().to_json() << "\n";
    else
      std::cerr << support::Stats::instance().to_string();
  }
  if (o.explain) {
    const support::Tracer& tracer = support::Tracer::instance();
    if (o.explain_json)
      std::cerr << tracer.remarks_json() << "\n";
    else
      std::cerr << tracer.remarks_text();
  }
  if (!o.trace_file.empty()) {
    std::ofstream out(o.trace_file);
    if (!out) {
      std::cerr << "polyfuse: cannot write trace file '" << o.trace_file
                << "'\n";
      std::exit(2);
    }
    out << support::Tracer::instance().chrome_trace_json() << "\n";
  }
  if (!o.diagnose_file.empty() &&
      !support::flightrec::write_diag_file(o.diagnose_file, "requested")) {
    std::cerr << "polyfuse: cannot write diagnostic file '" << o.diagnose_file
              << "'\n";
    std::exit(2);
  }
}

// Fatal-path diagnostic: budget exhaustion and strict verify/lint
// failures dump the same flight-recorder report a crash would, to
// polyfuse-diag.<pid>.json (or POLYFUSE_DIAG_DIR). Independent of
// --diagnose=FILE, which always writes its own "requested" dump on exit.
void dump_fatal_diag(const std::string& cause) {
  const std::string path = support::flightrec::default_diag_path();
  if (support::flightrec::write_diag_file(path, cause.c_str()))
    std::cerr << "polyfuse: diagnostic written to " << path << "\n";
  else
    std::cerr << "polyfuse: cannot write diagnostic file '" << path << "'\n";
}

// Static verification of the transformed program (src/verify): prints
// every finding plus a one-line summary to stderr. Returns the exit code
// contribution: 1 when --verify=strict saw a violation, else 0.
int run_verify(const Options& o, const ir::Scop& scop,
               const ddg::DependenceGraph& dg, const sched::Schedule& sch,
               const codegen::AstNode* ast) {
  support::PhaseTimer timer("verify");
  const verify::Report report = verify::run_all(scop, dg, sch, ast);
  std::cerr << report.to_string(&scop);
  if (!report.ok() && o.verify_strict) {
    dump_fatal_diag("verify-strict-failure");
    return 1;
  }
  return 0;
}

// Static lint of the input program (src/analysis): prints every finding
// plus a one-line summary to stderr. Returns the exit code contribution:
// 1 when --lint=strict saw a correctness (error-severity) finding.
int run_lint_mode(const Options& o, const ir::Scop& scop,
                  const ddg::DependenceGraph& dg) {
  support::PhaseTimer timer("lint");
  const analysis::LintReport report = analysis::run_lint(scop, dg);
  std::cerr << report.to_string(&scop);
  if (!report.ok() && o.lint_strict) {
    dump_fatal_diag("lint-strict-failure");
    return 1;
  }
  return 0;
}

// Exact-count locality analysis of the input program (src/analysis):
// prints the counted report to stderr. The report outlives this call so
// the fusion remark channel and the machine report can consume it.
analysis::LocalityReport run_analyze_mode(const Options& o,
                                          const ir::Scop& scop,
                                          const ddg::DependenceGraph& dg) {
  support::PhaseTimer timer("analyze");
  IntVector params = o.params;
  default_params(scop, &params);
  analysis::LocalityReport report =
      analysis::analyze_locality(scop, dg, params);
  if (o.analyze_json)
    std::cerr << report.to_json(scop) << "\n";
  else
    std::cerr << report.to_string(scop);
  return report;
}

// Adapts the --analyze report into the fusion profitability oracle and
// installs it for the current scope, restoring the previous oracle (so
// nested pipelines -- tests run several in one process -- stay isolated).
class OracleScope final : public fusion::ProfitabilityOracle {
 public:
  explicit OracleScope(const analysis::LocalityReport& report)
      : report_(report), prev_(fusion::set_profitability_oracle(this)) {}
  ~OracleScope() override { fusion::set_profitability_oracle(prev_); }
  OracleScope(const OracleScope&) = delete;
  OracleScope& operator=(const OracleScope&) = delete;

  i64 shared_cells(std::size_t s, std::size_t t) const override {
    return report_.shared_cells_or_negative(s, t);
  }

 private:
  const analysis::LocalityReport& report_;
  const fusion::ProfitabilityOracle* prev_;
};

int run_pipeline(const Options& o) {
  std::optional<ir::Scop> parsed;
  {
    support::PhaseTimer timer("parse");
    parsed = frontend::parse_scop(read_input(o.input));
  }
  const ir::Scop& scop = *parsed;

  if (o.emit == "source" && !o.lint && !o.analyze) {
    std::cout << scop.to_string();
    finish_outputs(o);
    return 0;
  }

  ddg::AnalysisOptions aopts;
  aopts.jobs = o.jobs;
  std::optional<ddg::DependenceGraph> analyzed;
  {
    support::PhaseTimer timer("deps");
    analyzed = ddg::DependenceGraph::analyze(scop, aopts);
  }
  const ddg::DependenceGraph& dg = *analyzed;

  // Lint the *input* program (pre-transformation), any --emit mode.
  const int lint_rc = o.lint ? run_lint_mode(o, scop, dg) : 0;

  // Counted locality analysis of the input program, any --emit mode.
  // While the report is alive it also serves as the fusion profitability
  // oracle, so the schedule phase's decision remarks carry exact
  // shared-cell counts.
  std::optional<analysis::LocalityReport> locality;
  std::optional<OracleScope> oracle;
  if (o.analyze) {
    locality = run_analyze_mode(o, scop, dg);
    oracle.emplace(*locality);
  }

  // Reduction/privatization analysis of the input program (src/analysis,
  // docs/reductions.md): runs when the report is requested or when the
  // scheduler will consume the relaxable set (any transforming model,
  // unless --no-reductions). Degrades to an empty -- claim-nothing --
  // result under --fuel, so a budget can suppress relaxation but never
  // cause an unsound one.
  const bool will_schedule =
      o.emit != "source" && o.emit != "deps" && o.model != "baseline";
  std::optional<analysis::ReductionInfo> reductions;
  if (o.reductions_report || (will_schedule && !o.no_reductions)) {
    support::PhaseTimer timer("reductions");
    analysis::ReductionOptions ropts;
    reductions = analysis::analyze_reductions_degrading(scop, dg, ropts);
    if (o.reductions_report) {
      if (o.reductions_json)
        std::cerr << analysis::render_reductions_json(scop, dg, *reductions);
      else
        std::cerr << analysis::render_reductions_text(scop, dg, *reductions);
    }
  }

  if (o.emit == "source") {
    std::cout << scop.to_string();
    finish_outputs(o);
    return lint_rc;
  }
  if (o.emit == "deps") {
    std::cout << dg.to_string();
    finish_outputs(o);
    return lint_rc;
  }

  sched::Schedule sch;
  {
    support::PhaseTimer timer("schedule");
    if (o.model == "baseline") {
      sch = sched::identity_schedule(scop);
      sched::annotate_dependences(sch, dg);
    } else {
      fusion::FusionModel model = fusion::FusionModel::kWisefuse;
      if (o.model == "wisefuse")
        model = fusion::FusionModel::kWisefuse;
      else if (o.model == "smartfuse")
        model = fusion::FusionModel::kSmartfuse;
      else if (o.model == "nofuse")
        model = fusion::FusionModel::kNofuse;
      else if (o.model == "maxfuse")
        model = fusion::FusionModel::kMaxfuse;
      else
        usage("unknown model '" + o.model + "'");
      // The degradation chain is a no-op without a budget: the first
      // attempt is exactly make_policy + compute_schedule.
      sched::SchedulerOptions sopts;
      if (reductions && !o.no_reductions)
        sopts.relaxed_deps = reductions->relaxable;
      sch = fusion::compute_schedule_degrading(scop, dg, model, sopts);
    }
  }

  if (o.report) {
    const auto parts = sch.nest_partitions();
    std::set<int> distinct(parts.begin(), parts.end());
    std::cerr << "polyfuse: model=" << o.model << " statements="
              << scop.num_statements() << " dependences=" << dg.deps().size()
              << " (+" << dg.rar_deps().size() << " RAR) fusion partitions="
              << distinct.size() << "\n";
    for (std::size_t s = 0; s < scop.num_statements(); ++s)
      std::cerr << "  " << sch.statement_to_string(s) << "\n";
  }

  if (o.emit == "sched") {
    // No AST at this point: legality + partition checks only.
    const int rc = o.verify ? run_verify(o, scop, dg, sch, nullptr) : 0;
    std::cout << sch.to_string();
    finish_outputs(o);
    return std::max(rc, lint_rc);
  }

  codegen::AstPtr ast;
  {
    support::PhaseTimer timer("codegen");
    ast = codegen::generate_ast(scop, sch);
    if (o.tile) {
      codegen::TilingOptions topts;
      topts.tile_size = o.tile_size;
      const std::size_t bands = codegen::tile_ast(*ast, sch, dg, topts);
      std::cerr << "polyfuse: tiled " << bands << " band(s) with size "
                << o.tile_size << "\n";
    }
  }

  // Verify the final AST (post-tiling: tile loops inherit the point
  // loop's level and parallel claim, so the race check covers them too).
  const int verify_rc =
      o.verify ? run_verify(o, scop, dg, sch, ast.get()) : 0;

  if (o.validate || o.machine_report) {
    IntVector params = o.params;
    default_params(scop, &params);
    if (o.validate) {
      support::PhaseTimer timer("validate");
      sched::Schedule ident = sched::identity_schedule(scop);
      sched::annotate_dependences(ident, dg);
      const auto orig = codegen::generate_ast(scop, ident);
      exec::ArrayStore a(scop, params), b(scop, params);
      auto init = [](exec::ArrayStore& s) {
        for (std::size_t arr = 0; arr < s.num_arrays(); ++arr) {
          const double salt = static_cast<double>(arr + 1);
          s.fill(arr, [&](const IntVector& idx) {
            double v = 1.0 + 0.2 * salt;
            for (std::size_t d = 0; d < idx.size(); ++d)
              v += 0.01 * static_cast<double>(idx[d]) / salt;
            if (idx.size() == 2 && idx[0] == idx[1]) v += 50.0;
            return v;
          });
        }
      };
      init(a);
      init(b);
      exec::interpret(*orig, a);
      exec::interpret(*ast, b);
      const double diff = exec::ArrayStore::max_abs_diff(a, b);
      // A schedule with relaxed reduction dependences may legitimately
      // reassociate floating-point accumulation (the same contract as
      // `#pragma omp reduction`), so exact equality is demanded only of
      // schedules that relaxed nothing. Integer-valued data commutes
      // exactly; see tests/reductions_test.cpp for that stronger check.
      const double tol = sch.relaxed_deps.empty() ? 0.0 : 1e-9;
      const bool ok = diff <= tol;
      std::cerr << "polyfuse: validation max |diff| = " << diff
                << (!ok             ? " (MISMATCH)"
                    : diff == 0.0   ? " (ok)"
                                    : " (ok, reduction reassociation)")
                << "\n";
      if (!ok) {
        finish_outputs(o);
        return 1;
      }
    }
    if (o.machine_report) {
      support::PhaseTimer timer("machine-report");
      exec::ArrayStore store(scop, params);
      // With --analyze, feed the exact per-array footprints in so the
      // report includes the counted compulsory-traffic floor.
      machine::FootprintHints hints;
      const machine::FootprintHints* hints_ptr = nullptr;
      if (locality) {
        hints.cells.assign(scop.arrays().size(), -1);
        for (const analysis::ArrayLocality& al : locality->arrays)
          if (al.footprint.is_exact()) hints.cells[al.array] = al.footprint.value;
        hints_ptr = &hints;
      }
      const machine::ModelReport r =
          machine::evaluate(*ast, store, {}, hints_ptr);
      std::cerr << r.to_string();
    }
  }

  {
    support::PhaseTimer timer("emit");
    if (o.emit == "ast") {
      std::cout << codegen::ast_to_string(*ast, scop);
    } else if (o.emit == "c") {
      codegen::CEmitOptions eopts;
      eopts.openmp = o.openmp;
      std::cout << codegen::emit_c(*ast, scop, eopts);
    } else {
      usage("unknown --emit '" + o.emit + "'");
    }
  }
  finish_outputs(o);
  return std::max(verify_rc, lint_rc);
}

int run(const Options& o) {
  if (o.jobs != 0) support::set_default_jobs(o.jobs);
  poly::set_solve_cache_enabled(o.solve_cache);
  if (!o.fastlane) lp::set_fastlane_enabled(false);

  // Install the compute budget for the whole pipeline. Must-complete
  // regions (codegen, verify, lint, validation) suspend it themselves;
  // the parallel dependence phase splits it into per-pair sub-budgets.
  // With no budget flags this installs nothing and every path is
  // byte-identical to an unbudgeted build.
  support::BudgetSpec bspec;
  bspec.fuel = o.fuel;
  bspec.deadline_ms = o.time_budget_ms;
  bspec.injections = o.injections;
  std::optional<support::Budget> budget;
  if (bspec.limited()) budget.emplace(bspec);
  support::BudgetScope budget_scope(budget ? &*budget : nullptr);

  if (!o.trace_file.empty()) {
    support::Tracer::instance().set_spans_enabled(true);
    support::Tracer::instance().set_remarks_enabled(true);
  }
  if (o.explain) support::Tracer::instance().set_remarks_enabled(true);

  support::gauge_set(
      support::Gauge::kJobsConfigured,
      static_cast<i64>(o.jobs != 0 ? o.jobs : support::default_jobs()));
  support::gauge_set(support::Gauge::kTraceEventCap,
                     static_cast<i64>(support::Tracer::max_events()));

  // Error paths still owe the user their requested outputs: a budget
  // that escaped every recovery boundary additionally leaves a crash-
  // style diagnostic, and any pipeline error prints stats/explain/trace
  // before the nonzero exit.
  try {
    return run_pipeline(o);
  } catch (const support::BudgetExceeded& e) {
    std::cerr << "polyfuse: " << e.what() << "\n";
    dump_fatal_diag(std::string("budget-exceeded:") + e.site_name());
    finish_outputs(o);
    return 1;
  } catch (const pf::Error& e) {
    std::cerr << "polyfuse: " << e.what() << "\n";
    finish_outputs(o);
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Hook fatal signals before any real work: a crash anywhere in the
  // pipeline (including a --inject=SITE:abort-after=K hard fault) leaves
  // polyfuse-diag.<pid>.json behind. Near-zero cost when nothing dies.
  support::flightrec::install_crash_handler();
  support::flightrec::set_invocation(argc, argv);
  try {
    return run(parse_args(argc, argv));
  } catch (const pf::Error& e) {
    std::cerr << "polyfuse: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // e.g. malformed numeric option values (std::stol).
    std::cerr << "polyfuse: " << e.what() << "\n";
    return 1;
  }
}
