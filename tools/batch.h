// Crash-safe batch compile driver (docs/service.md).
//
// polyfuse --batch=DIR|MANIFEST ingests many .pf programs and compiles
// each as an independent, fault-isolated request:
//
//  * Requests are discovered deterministically (sorted *.pf scan of a
//    directory, or the lines of a manifest file) and scheduled across
//    --jobs workers; each request runs with jobs=1 inside, its own
//    budget/metrics/solve-cache scope, and writes <stem>.out/<stem>.err
//    under --batch-out.
//  * A request that exhausts its --fuel/--time-budget degrades through
//    the PR-5 chain and is reported "degraded", not failed. A request
//    that fails cleanly is retried with backoff up to --batch-retries
//    times. Under --batch-isolate each request runs in a forked child,
//    so a hard crash (--inject=SITE:abort-after=K) is contained: the
//    child's crash diagnostic lands in <stem>.diag.json and the batch
//    carries on.
//  * The --batch-report JSON is byte-identical at any --jobs: requests
//    are listed in sorted input order and the report carries no timing,
//    pid or cache-hit fields.
//
// Exit code: 0 when every request succeeded (possibly degraded or after
// a retry), 3 when at least one request failed, 2 for setup errors
// (unreadable batch dir/manifest, uncreatable output dir).
#pragma once

#include "driver.h"

namespace pf::cli {

int run_batch(const Options& o);

}  // namespace pf::cli
