// The polyfuse CLI driver: option parsing plus the single-request
// pipeline, factored out of main() so the batch driver (tools/batch.h)
// can run many requests in one process -- or in forked children -- with
// per-request fault isolation (docs/service.md).
//
// The split matters for isolation: run_request() never exits the process
// and never lets an exception escape; every failure (unreadable input,
// parse error, budget exhaustion the degradation chain could not absorb)
// comes back as a RequestResult. Process-wide knobs (worker pool size,
// solve cache, fast lane, the persistent disk cache, tracing) are applied
// once by apply_process_config(); everything else is per-request state.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "support/budget.h"
#include "support/linalg.h"

namespace pf::cli {

struct Options {
  std::string model = "wisefuse";
  std::string emit = "c";
  bool tile = false;
  i64 tile_size = 32;
  bool openmp = true;
  bool validate = false;
  bool verify = false;
  bool verify_strict = false;
  bool lint = false;
  bool lint_strict = false;
  bool analyze = false;
  bool analyze_json = false;
  bool reductions_report = false;
  bool reductions_json = false;
  bool no_reductions = false;
  bool machine_report = false;
  bool report = false;
  std::size_t jobs = 0;  // 0 = default (POLYFUSE_JOBS / hardware)
  bool stats = false;
  bool stats_json = false;
  bool explain = false;
  bool explain_json = false;
  std::string trace_file;     // empty = tracing off
  std::string diagnose_file;  // empty = no on-exit diagnostic dump
  bool solve_cache = true;
  bool fastlane = true;
  i64 fuel = -1;            // < 0 = unlimited
  i64 time_budget_ms = -1;  // < 0 = unlimited
  std::vector<support::Injection> injections;
  IntVector params;
  std::string input;

  // Batch mode (tools/batch.h, docs/service.md).
  std::string batch;         // directory or manifest file; empty = single
  std::string batch_out;     // per-request output directory
  std::string batch_report;  // JSON report file; empty = stdout summary only
  bool batch_isolate = false;
  i64 batch_retries = 1;  // extra attempts for a failed request

  // Persistent on-disk solve/count cache (src/support/diskcache.h).
  std::string cache_dir;   // empty = disabled
  i64 cache_max_mb = 256;  // LRU size cap
};

/// Print --help (rendered from tools/cli_modes.h) and exit: 0 without an
/// error message, 2 with one.
[[noreturn]] void usage(const std::string& error = "");

/// Parse argv (with the POLYFUSE_* env fallbacks). Invalid input exits
/// through usage(); the returned Options are fully validated -- model and
/// emit names, flag combinations, numeric ranges.
Options parse_args(int argc, char** argv);

/// Apply the process-wide knobs: worker-pool default, solve cache on/off,
/// fast lane, tracer channels, metrics gauges, and the persistent disk
/// cache (configured from --cache-dir, with the diskcache.* injection
/// table installed). Call exactly once, before any request runs.
void apply_process_config(const Options& o);

/// Outcome of one compile request.
struct RequestResult {
  int rc = 0;            // process-exit-style code; 0 = success
  bool degraded = false; // a budget fault was absorbed by the degradation
                         // chain (the output is still valid, just coarser)
  std::string error;     // one-line failure message when rc != 0
};

/// Run one compile request: emitted output to `out`, reports and
/// messages to `err`. Installs the request's own budget, metrics scope
/// and private solve-cache scope; catches every pf::Error and
/// BudgetExceeded. Never calls exit() and never throws.
RequestResult run_request(const Options& o, std::ostream& out,
                          std::ostream& err);

/// Classic single-input mode: stdout/stderr, --stats/--explain/--trace/
/// --diagnose side outputs, process exit code.
int run_single(const Options& o);

/// The subset of `injections` the thread-local Budget should enforce.
/// diskcache.* sites are enforced inside support/diskcache (an
/// injection-only budget would bypass the solve cache and make them
/// unreachable), and batch.request is enforced by the batch driver.
std::vector<support::Injection> budget_injections(
    const std::vector<support::Injection>& injections);

}  // namespace pf::cli
