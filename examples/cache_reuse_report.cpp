// Data reuse, measured: drive the cache simulator with the interpreter's
// access trace and compare miss counts of the original vs the wisefuse-
// transformed swim excerpt. This is the paper's core claim -- fusion
// turns cross-nest reuse into cache hits -- made visible per cache level.
#include <iostream>

#include "codegen/codegen.h"
#include "ddg/dependences.h"
#include "exec/storage.h"
#include "fusion/models.h"
#include "machine/perfmodel.h"
#include "sched/analysis.h"
#include "sched/pluto.h"
#include "suite/suite.h"
#include "support/strings.h"

int main() {
  using namespace pf;

  const suite::Benchmark& b = suite::benchmark("swim");
  const ir::Scop scop = suite::parse(b);
  const auto dg = ddg::DependenceGraph::analyze(scop);

  auto evaluate = [&](const sched::Schedule& sch) {
    const auto ast = codegen::generate_ast(scop, sch);
    exec::ArrayStore store(scop, b.bench_params);
    suite::init_store(store);
    return machine::evaluate(*ast, store);
  };

  sched::Schedule original = sched::identity_schedule(scop);
  sched::annotate_dependences(original, dg);
  const machine::ModelReport before = evaluate(original);

  auto policy = fusion::make_policy(fusion::FusionModel::kWisefuse);
  const machine::ModelReport after =
      evaluate(sched::compute_schedule(scop, dg, *policy));

  TextTable t({"metric", "original", "wisefuse", "change"});
  auto row = [&](const std::string& name, double a, double bv) {
    const double pct = a == 0 ? 0 : (bv - a) / a * 100.0;
    t.add_row({name, fmt_double(a, 0), fmt_double(bv, 0),
               fmt_double(pct, 1) + "%"});
  };
  row("accesses", static_cast<double>(before.cache.accesses),
      static_cast<double>(after.cache.accesses));
  for (std::size_t k = 0; k < before.cache.misses.size(); ++k)
    row("L" + std::to_string(k + 1) + " misses",
        static_cast<double>(before.cache.misses[k]),
        static_cast<double>(after.cache.misses[k]));
  row("serial cycles", before.serial_cycles, after.serial_cycles);
  row("modeled 8-core cycles", before.modeled_cycles, after.modeled_cycles);

  std::cout << "swim (N = " << b.bench_params[0]
            << "), Xeon E5-2650 cache model:\n"
            << t.to_string();
  return 0;
}
