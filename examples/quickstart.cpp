// Quickstart: the whole polyfuse pipeline in ~60 lines.
//
//   1. Write an affine program in PolyLang (or via ir::ScopBuilder).
//   2. Run exact dependence analysis.
//   3. Schedule it with the wisefuse fusion model.
//   4. Generate a loop AST, print it, emit C with OpenMP pragmas.
//   5. Execute both original and transformed with the interpreter and
//      check they agree.
//
// Build: part of the normal CMake build; run ./build/examples/quickstart.
#include <iostream>

#include "codegen/cemit.h"
#include "codegen/codegen.h"
#include "ddg/dependences.h"
#include "exec/interp.h"
#include "frontend/parser.h"
#include "fusion/models.h"
#include "sched/analysis.h"
#include "sched/pluto.h"

int main() {
  using namespace pf;

  // 1. A small producer/consumer pipeline with reuse across loop nests.
  const ir::Scop scop = frontend::parse_scop(R"(
    scop pipeline(N) {
      context N >= 4;
      array a[N]; array b[N]; array c[N];
      for (i = 0 .. N-1) { S1: a[i] = i * 0.5; }
      for (i = 0 .. N-1) { S2: b[i] = a[i] * 2.0; }
      for (i = 0 .. N-1) { S3: c[i] = a[i] + b[i]; }
    })");
  std::cout << "original program:\n" << scop.to_string() << "\n";

  // 2. Dependence analysis (flow/anti/output + RAR input deps).
  const ddg::DependenceGraph dg = ddg::DependenceGraph::analyze(scop);
  std::cout << dg.to_string() << "\n";

  // 3. Schedule with the paper's wisefuse model.
  auto policy = fusion::make_policy(fusion::FusionModel::kWisefuse);
  const sched::Schedule schedule = sched::compute_schedule(scop, dg, *policy);
  std::cout << "statement-wise schedules:\n" << schedule.to_string() << "\n";

  // 4. Code generation.
  const codegen::AstPtr ast = codegen::generate_ast(scop, schedule);
  std::cout << "transformed program:\n"
            << codegen::ast_to_string(*ast, scop) << "\n";
  std::cout << "emitted C (excerpt):\n"
            << codegen::emit_c(*ast, scop).substr(0, 400) << "...\n\n";

  // 5. Validate against the original execution order.
  sched::Schedule identity = sched::identity_schedule(scop);
  sched::annotate_dependences(identity, dg);
  const codegen::AstPtr original = codegen::generate_ast(scop, identity);

  exec::ArrayStore ref(scop, {64}), got(scop, {64});
  exec::interpret(*original, ref);
  exec::interpret(*ast, got);
  const double diff = exec::ArrayStore::max_abs_diff(ref, got);
  std::cout << "max |original - transformed| = " << diff
            << (diff == 0.0 ? "  (bit-exact)" : "  (MISMATCH!)") << "\n";
  return diff == 0.0 ? 0 : 1;
}
