// Fusion vs parallelism: run the paper's advect kernel under all four
// fusion models and report, per generated loop nest, whether its outer
// loop is communication-free parallel, a doacross pipeline, or serial --
// plus the modeled 8-core cycle counts.
//
// This is the paper's Section 4.2 story as a runnable report: maxfuse
// fuses everything (shifting S4) and turns the outer loop into a
// forward-dependence loop; wisefuse's Algorithm 2 gives up a little reuse
// to keep both nests coarse-grained parallel.
#include <iostream>

#include "codegen/codegen.h"
#include "ddg/dependences.h"
#include "exec/storage.h"
#include "fusion/models.h"
#include "machine/perfmodel.h"
#include "sched/pluto.h"
#include "suite/suite.h"
#include "support/strings.h"

int main() {
  using namespace pf;

  const suite::Benchmark& b = suite::benchmark("advect");
  const ir::Scop scop = suite::parse(b);
  const auto dg = ddg::DependenceGraph::analyze(scop);

  TextTable t({"model", "nests", "parallel", "pipelined", "serial",
               "modeled cycles (8 cores)"});
  for (const auto model :
       {fusion::FusionModel::kWisefuse, fusion::FusionModel::kSmartfuse,
        fusion::FusionModel::kNofuse, fusion::FusionModel::kMaxfuse}) {
    auto policy = fusion::make_policy(model);
    const sched::Schedule sch = sched::compute_schedule(scop, dg, *policy);
    const auto ast = codegen::generate_ast(scop, sch);

    exec::ArrayStore store(scop, b.bench_params);
    suite::init_store(store);
    const machine::ModelReport r = machine::evaluate(*ast, store);

    int parallel = 0, pipelined = 0, serial = 0;
    for (const auto& nest : r.nests) {
      switch (nest.parallelism) {
        case machine::NestParallelism::kParallel:
          ++parallel;
          break;
        case machine::NestParallelism::kPipelined:
          ++pipelined;
          break;
        case machine::NestParallelism::kSerial:
          ++serial;
          break;
      }
    }
    t.add_row({fusion::to_string(model), std::to_string(r.nests.size()),
               std::to_string(parallel), std::to_string(pipelined),
               std::to_string(serial), fmt_double(r.modeled_cycles / 1e6, 2) +
                                           "M"});
  }
  std::cout << "advect (N = " << b.bench_params[0] << "):\n" << t.to_string();
  std::cout << "\nwisefuse trades one fused nest for two parallel ones; the\n"
               "pipelined/serial fused versions pay a synchronization per\n"
               "outer iteration (the paper's 'constant communication costs\n"
               "after each wavefront').\n";
  return 0;
}
