// Building a SCoP programmatically with ir::ScopBuilder instead of the
// PolyLang frontend -- the route an embedding compiler would take.
//
// The program is the paper's Figure 1 gemver kernel; we then show that
// the scheduler fuses S1 and S2 only after interchanging S1's loops.
#include <iostream>

#include "codegen/codegen.h"
#include "ddg/dependences.h"
#include "fusion/models.h"
#include "ir/builder.h"
#include "sched/pluto.h"

int main() {
  using namespace pf;
  using ir::aff;
  using ir::num;
  using ir::read;

  const auto N = ir::ScopBuilder::var("N");
  const auto i = ir::ScopBuilder::var("i");
  const auto j = ir::ScopBuilder::var("j");

  ir::ScopBuilder b("gemver", {"N"});
  b.context(N >= 4);
  const std::size_t A = b.array("A", {N, N});
  const std::size_t B = b.array("B", {N, N});
  const std::size_t u1 = b.array("u1", {N});
  const std::size_t v1 = b.array("v1", {N});
  const std::size_t x = b.array("x", {N});
  const std::size_t y = b.array("y", {N});

  // S1: B[i][j] = A[i][j] + u1[i]*v1[j]
  b.for_loop("i", 0, N - 1);
  b.for_loop("j", 0, N - 1);
  b.stmt(B, {i, j}, read(A, {i, j}) + read(u1, {i}) * read(v1, {j}));
  b.end_loop();
  b.end_loop();
  // S2: x[i] += B[j][i] * y[j]  (note the transposed read)
  b.for_loop("i", 0, N - 1);
  b.for_loop("j", 0, N - 1);
  b.stmt(x, {i}, read(x, {i}) + read(B, {j, i}) * read(y, {j}));
  b.end_loop();
  b.end_loop();

  const ir::Scop scop = b.build();
  std::cout << scop.to_string() << "\n";

  const auto dg = ddg::DependenceGraph::analyze(scop);
  auto policy = fusion::make_policy(fusion::FusionModel::kWisefuse);
  const sched::Schedule sch = sched::compute_schedule(scop, dg, *policy);

  std::cout << "schedules (note S1's interchange):\n"
            << sch.to_string() << "\n";
  std::cout << codegen::ast_to_string(*codegen::generate_ast(scop, sch), scop);

  // The fusion required interchanging S1: its first linear row is j.
  std::size_t fl = 0;
  while (!sch.level_linear[fl]) ++fl;
  const bool interchanged =
      sch.rows[0][fl].coeff(1) == 1 && sch.rows[1][fl].coeff(0) == 1;
  std::cout << "\nS1 interchanged to enable fusion: "
            << (interchanged ? "yes" : "no") << "\n";
  return 0;
}
