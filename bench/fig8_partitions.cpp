// Figure 8: fusion partitioning achieved by the different models for the
// gemsfdtd UPMLupdateh-like routine. One row per SCC: its dimensionality
// and the partition (loop nest) it lands in under the icc-like baseline,
// smartfuse and wisefuse -- the same columns as the paper's figure, plus
// maxfuse for completeness.
#include "common.h"

int main() {
  using namespace pf;
  using bench::Strategy;

  const suite::Benchmark& b = suite::benchmark("gemsfdtd");
  const ir::Scop scop = suite::parse(b);
  const auto dg = ddg::DependenceGraph::analyze(scop);
  const auto sccs = dg.sccs();

  // Partition ids per SCC for each strategy.
  std::map<Strategy, std::vector<int>> scc_partition;
  std::map<Strategy, int> partition_count;
  for (const Strategy s :
       {Strategy::kBaseline, Strategy::kSmartfuse, Strategy::kWisefuse,
        Strategy::kMaxfuse}) {
    const bench::Variant v = bench::build_variant(b, s);
    const auto parts = v.schedule.nest_partitions();
    std::vector<int> per_scc(sccs.num_sccs(), -1);
    for (std::size_t st = 0; st < parts.size(); ++st)
      per_scc[static_cast<std::size_t>(sccs.scc_of[st])] = parts[st];
    scc_partition[s] = per_scc;
    std::set<int> distinct(parts.begin(), parts.end());
    partition_count[s] = static_cast<int>(distinct.size());
  }

  TextTable t({"SCC", "dim", "icc-like", "smartfuse", "wisefuse", "maxfuse"});
  for (std::size_t scc = 0; scc < sccs.num_sccs(); ++scc) {
    const std::size_t any_stmt = sccs.members[scc].front();
    t.add_row({std::to_string(scc),
               std::to_string(scop.statement(any_stmt).dim()),
               std::to_string(scc_partition[Strategy::kBaseline][scc]),
               std::to_string(scc_partition[Strategy::kSmartfuse][scc]),
               std::to_string(scc_partition[Strategy::kWisefuse][scc]),
               std::to_string(scc_partition[Strategy::kMaxfuse][scc])});
  }
  std::cout << "== Figure 8: fusion partitioning for gemsfdtd "
               "(UPMLupdateh-like) ==\n"
            << t.to_string() << "\n";
  std::cout << "partition counts: icc-like="
            << partition_count[Strategy::kBaseline]
            << " smartfuse=" << partition_count[Strategy::kSmartfuse]
            << " wisefuse=" << partition_count[Strategy::kWisefuse]
            << " maxfuse=" << partition_count[Strategy::kMaxfuse] << "\n";
  std::cout << "(paper: wisefuse minimizes the number of partitions; "
               "smartfuse fragments across interleaved dimensionalities)\n";
  return 0;
}
