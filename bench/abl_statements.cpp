// Ablation: scheduler tractability vs statement count.
//
// The paper's Section 1 motivates wisefuse with the exponential blowup of
// the fusion search space ("the iterative compilation framework fails to
// build the search space for even moderately sized programs"). wisefuse's
// heuristics keep scheduling polynomial: we time dependence analysis +
// scheduling on synthetic producer-consumer chains of k statements.
#include "common.h"

#include "frontend/parser.h"

namespace {

std::string chain_program(int k) {
  std::ostringstream os;
  os << "scop chain(N) { context N >= 4;\n";
  for (int s = 0; s <= k; ++s) os << "array a" << s << "[N][N];\n";
  for (int s = 1; s <= k; ++s) {
    os << "for (i = 0 .. N-1) { for (j = 0 .. N-1) { S" << s << ": a" << s
       << "[i][j] = a" << (s - 1) << "[i][j] * 0.5 + a" << ((s + 1) / 2)
       << "[j][i]; } }\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace

int main() {
  using namespace pf;

  TextTable t({"statements", "deps", "analysis (s)", "wisefuse (s)",
               "smartfuse (s)"});
  for (const int k : {2, 4, 8, 12, 16, 24}) {
    const ir::Scop scop = frontend::parse_scop(chain_program(k));
    const auto t0 = std::chrono::steady_clock::now();
    const auto dg = ddg::DependenceGraph::analyze(scop);
    const auto t1 = std::chrono::steady_clock::now();
    auto wise = fusion::make_policy(fusion::FusionModel::kWisefuse);
    (void)sched::compute_schedule(scop, dg, *wise);
    const auto t2 = std::chrono::steady_clock::now();
    auto smart = fusion::make_policy(fusion::FusionModel::kSmartfuse);
    (void)sched::compute_schedule(scop, dg, *smart);
    const auto t3 = std::chrono::steady_clock::now();
    const auto secs = [](auto a, auto b) {
      return fmt_double(std::chrono::duration<double>(b - a).count(), 3);
    };
    t.add_row({std::to_string(k), std::to_string(dg.deps().size()),
               secs(t0, t1), secs(t1, t2), secs(t2, t3)});
    std::cout << "... " << k << " statements done\n" << std::flush;
  }
  std::cout << "\n== Scheduler cost vs statement count (synthetic chains) "
               "==\n"
            << t.to_string();
  std::cout << "(expected: polynomial growth -- the heuristic cost model "
               "stays tractable where exhaustive fusion enumeration "
               "(2^(n-1) partitionings) would not)\n";
  return 0;
}
