// Shared plumbing for the benchmark harness: run a suite benchmark under a
// fusion strategy, evaluate it on the modeled 8-core machine, optionally
// JIT-compile and time it, and print paper-style tables.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "codegen/cemit.h"
#include "codegen/codegen.h"
#include "ddg/dependences.h"
#include "exec/interp.h"
#include "exec/jit.h"
#include "fusion/models.h"
#include "machine/perfmodel.h"
#include "sched/analysis.h"
#include "sched/pluto.h"
#include "suite/suite.h"
#include "support/stats.h"
#include "support/strings.h"
#include "support/trace.h"

namespace pf::bench {

/// The five strategies of the paper's Table 1. "baseline" plays the role
/// of the Intel compiler: original program order, no fusion, outer loops
/// parallelized where legal (see DESIGN.md substitution #3).
enum class Strategy { kBaseline, kWisefuse, kSmartfuse, kNofuse, kMaxfuse };

inline const std::vector<Strategy>& all_strategies() {
  static const std::vector<Strategy> v = {
      Strategy::kBaseline, Strategy::kWisefuse, Strategy::kSmartfuse,
      Strategy::kNofuse, Strategy::kMaxfuse};
  return v;
}

inline const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::kBaseline:
      return "baseline";
    case Strategy::kWisefuse:
      return "wisefuse";
    case Strategy::kSmartfuse:
      return "smartfuse";
    case Strategy::kNofuse:
      return "nofuse";
    case Strategy::kMaxfuse:
      return "maxfuse";
  }
  return "?";
}

struct Variant {
  std::shared_ptr<ir::Scop> scop;
  sched::Schedule schedule;
  codegen::AstPtr ast;
  double schedule_seconds = 0;
};

/// Parse + analyze + schedule + generate for one benchmark and strategy.
/// Feeds the pipeline-wide perf counters (support/stats.h): per-phase
/// wall times accumulate so solver_stats_json() can be archived next to
/// the timing tables.
inline Variant build_variant(const suite::Benchmark& b, Strategy strategy) {
  // Keep the decision-remark channel on so every scheduling/fusion choice
  // made while building variants lands in decision_summary_json().
  support::Tracer::instance().set_remarks_enabled(true);
  Variant v;
  {
    support::PhaseTimer timer("parse");
    v.scop = std::make_shared<ir::Scop>(suite::parse(b));
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::optional<ddg::DependenceGraph> analyzed;
  {
    support::PhaseTimer timer("deps");
    analyzed = ddg::DependenceGraph::analyze(*v.scop);
  }
  const auto& dg = *analyzed;
  {
    support::PhaseTimer timer("schedule");
    if (strategy == Strategy::kBaseline) {
      v.schedule = sched::identity_schedule(*v.scop);
      sched::annotate_dependences(v.schedule, dg);
    } else {
      fusion::FusionModel m = fusion::FusionModel::kWisefuse;
      switch (strategy) {
        case Strategy::kWisefuse:
          m = fusion::FusionModel::kWisefuse;
          break;
        case Strategy::kSmartfuse:
          m = fusion::FusionModel::kSmartfuse;
          break;
        case Strategy::kNofuse:
          m = fusion::FusionModel::kNofuse;
          break;
        case Strategy::kMaxfuse:
          m = fusion::FusionModel::kMaxfuse;
          break;
        case Strategy::kBaseline:
          break;
      }
      auto policy = fusion::make_policy(m);
      v.schedule = sched::compute_schedule(*v.scop, dg, *policy);
    }
  }
  {
    support::PhaseTimer timer("codegen");
    v.ast = codegen::generate_ast(*v.scop, v.schedule);
  }
  v.schedule_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return v;
}

/// Remark/span summary from the tracer: total counts plus remarks broken
/// down by category (deps / sched / fusion), so BENCH_*.json records say
/// how many decisions each layer reported, not just how long it took.
inline std::string decision_summary_json() {
  const support::Tracer& tracer = support::Tracer::instance();
  std::map<std::string, std::size_t> by_category;
  for (const support::Remark& r : tracer.remarks()) ++by_category[r.category];
  std::string s = "{\"remarks\": " + std::to_string(tracer.num_remarks()) +
                  ", \"spans\": " + std::to_string(tracer.num_spans()) +
                  ", \"remarks_by_category\": {";
  bool first = true;
  for (const auto& [category, n] : by_category) {
    if (!first) s += ", ";
    first = false;
    s += "\"" + support::json_escape(category) + "\": " + std::to_string(n);
  }
  s += "}}";
  return s;
}

/// Verifier outcome counts (src/verify) in the exact shape the paper's
/// self-checking story needs archived next to timings: how much was
/// proved and whether anything failed.
inline std::string verify_summary_json() {
  const support::Stats& st = support::Stats::instance();
  return "{\"checked_deps\": " +
         std::to_string(st.get(support::Counter::kVerifyCheckedDeps)) +
         ", \"violations\": " +
         std::to_string(st.get(support::Counter::kVerifyViolations)) +
         ", \"race_checks\": " +
         std::to_string(st.get(support::Counter::kVerifyRaceChecks)) + "}";
}

/// Linter outcome counts (src/analysis) for BENCH_*.json records:
/// how much was checked and what it found.
inline std::string lint_summary_json() {
  const support::Stats& st = support::Stats::instance();
  return "{\"checked_accesses\": " +
         std::to_string(st.get(support::Counter::kLintCheckedAccesses)) +
         ", \"value_flows\": " +
         std::to_string(st.get(support::Counter::kLintValueFlows)) +
         ", \"findings\": " +
         std::to_string(st.get(support::Counter::kLintFindings)) +
         ", \"errors\": " +
         std::to_string(st.get(support::Counter::kLintErrors)) + "}";
}

/// Budget outcome counts (src/support/budget): per-site fuel spend plus
/// how often the pipeline exhausted, was fault-injected, downgraded, or
/// over-approximated a dependence. All zero on unbudgeted runs, so
/// archived records say whether a timing came from a degraded pipeline.
inline std::string budget_summary_json() {
  const support::Stats& st = support::Stats::instance();
  return "{\"fuel_lp_solve\": " +
         std::to_string(st.get(support::Counter::kBudgetFuelLpSolve)) +
         ", \"fuel_fme_project\": " +
         std::to_string(st.get(support::Counter::kBudgetFuelFmeProject)) +
         ", \"fuel_dep_pair\": " +
         std::to_string(st.get(support::Counter::kBudgetFuelDepPair)) +
         ", \"fuel_pluto_level\": " +
         std::to_string(st.get(support::Counter::kBudgetFuelPlutoLevel)) +
         ", \"fuel_fusion_model\": " +
         std::to_string(st.get(support::Counter::kBudgetFuelFusionModel)) +
         ", \"fuel_jit_cc\": " +
         std::to_string(st.get(support::Counter::kBudgetFuelJitCc)) +
         ", \"exhaustions\": " +
         std::to_string(st.get(support::Counter::kBudgetExhaustions)) +
         ", \"injected_faults\": " +
         std::to_string(st.get(support::Counter::kBudgetInjectedFaults)) +
         ", \"downgrades\": " +
         std::to_string(st.get(support::Counter::kBudgetDowngrades)) +
         ", \"assumed_deps\": " +
         std::to_string(st.get(support::Counter::kBudgetAssumedDeps)) + "}";
}

/// Int64 fast-lane outcome counts (lp/fastlane.h): solves and FM row
/// combinations served by the integer lane vs fallen back to the exact
/// Rational path, warm-start acceptance, and arena storage footprint.
/// Archived next to timings because a fast-lane speedup claim is only
/// meaningful when the record shows the lane actually served the solves.
inline std::string fastlane_summary_json() {
  const support::Stats& st = support::Stats::instance();
  const i64 solves = st.get(support::Counter::kFastlaneSolves);
  const i64 fallbacks = st.get(support::Counter::kFastlaneFallbacks);
  const double rate =
      solves + fallbacks > 0
          ? 100.0 * static_cast<double>(solves) /
                static_cast<double>(solves + fallbacks)
          : 0.0;
  return "{\"solves\": " + std::to_string(solves) +
         ", \"fallbacks\": " + std::to_string(fallbacks) +
         ", \"rate_percent\": " + std::to_string(rate) +
         ", \"fme_rows\": " +
         std::to_string(st.get(support::Counter::kFastlaneFmeRows)) +
         ", \"fme_fallbacks\": " +
         std::to_string(st.get(support::Counter::kFastlaneFmeFallbacks)) +
         ", \"warm_hits\": " +
         std::to_string(st.get(support::Counter::kFastlaneWarmHits)) +
         ", \"warm_misses\": " +
         std::to_string(st.get(support::Counter::kFastlaneWarmMisses)) +
         ", \"arena_bytes\": " +
         std::to_string(st.get(support::Counter::kFastlaneArenaBytes)) + "}";
}

/// Accumulated solver work (counters + phase wall times) as JSON, for
/// embedding in BENCH_*.json records. Includes the decision summary and
/// the verifier, linter, budget, and fast-lane outcome counts.
inline std::string solver_stats_json() {
  std::string s = support::Stats::instance().to_json();
  s.insert(s.size() - 1, ", \"decisions\": " + decision_summary_json() +
                             ", \"verify\": " + verify_summary_json() +
                             ", \"lint\": " + lint_summary_json() +
                             ", \"budget\": " + budget_summary_json() +
                             ", \"fastlane\": " + fastlane_summary_json());
  return s;
}

/// Modeled 8-core evaluation at the benchmark's bench_params.
inline machine::ModelReport model_variant(const suite::Benchmark& b,
                                          const Variant& v,
                                          const machine::MachineConfig& cfg = {}) {
  exec::ArrayStore store(*v.scop, b.bench_params);
  suite::init_store(store);
  return machine::evaluate(*v.ast, store, cfg);
}

/// Single-thread wall-clock of the JIT-compiled variant (median of
/// `reps`), in seconds; nullopt if no system compiler.
inline std::optional<double> time_variant_jit(const suite::Benchmark& b,
                                              const Variant& v, int reps = 3) {
  if (!exec::jit_available()) return std::nullopt;
  exec::JitOptions opts;
  opts.openmp = false;  // single core in this container; measure reuse
  std::string err;
  auto kernel = exec::JitKernel::compile(
      codegen::emit_c(*v.ast, *v.scop), "pf_kernel", opts, &err);
  if (!kernel) {
    std::cerr << "JIT failed for " << b.name << ": " << err << "\n";
    return std::nullopt;
  }
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    exec::ArrayStore store(*v.scop, b.bench_params);
    suite::init_store(store);
    const auto t0 = std::chrono::steady_clock::now();
    kernel->run(store);
    times.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

inline double geometric_mean(const std::vector<double>& xs) {
  double acc = 0;
  for (const double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace pf::bench
