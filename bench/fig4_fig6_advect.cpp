// Figures 4 and 6: advect.
//
// Figure 4(c): maximal fusion is only legal after shifting S4; the fused
// outer loop becomes a forward-dependence (pipelined) loop.
// Figure 6: wisefuse (Algorithm 2) distributes exactly S4 and keeps the
// outer loops of both nests communication-free parallel.
#include "common.h"

int main() {
  using namespace pf;
  using bench::Strategy;

  const suite::Benchmark& b = suite::benchmark("advect");
  const ir::Scop scop = suite::parse(b);
  std::cout << "== Figure 4(a): original advect ==\n"
            << scop.to_string() << "\n";

  // Figure 4(b): fusing all four statements WITHOUT shifting is illegal:
  // the S3 -> S4 dependence through wk4[i+1][j] runs backward under
  // phi = (i, j) for everyone.
  {
    const auto dg = ddg::DependenceGraph::analyze(scop);
    bool illegal = false;
    for (const ddg::Dependence& d : dg.deps()) {
      if (d.src != 2 || d.dst != 3 || d.kind != ddg::DepKind::kFlow) continue;
      poly::AffineExpr i_src(2 + scop.num_params()), i_dst(2 + scop.num_params());
      i_src.set_coeff(0, 1);
      i_dst.set_coeff(0, 1);
      const auto mn = d.poly.integer_min(d.lift_dst(i_dst) - d.lift_src(i_src));
      if (mn.kind != poly::IntegerSet::Opt::kOk || mn.value < 0) illegal = true;
    }
    std::cout << "== Figure 4(b): naive full fusion (phi = i, no shift) ==\n"
              << "S3->S4 dependence violated: " << (illegal ? "yes -> ILLEGAL"
                                                            : "no (?)")
              << "\n\n";
  }

  {
    const bench::Variant v = bench::build_variant(b, Strategy::kMaxfuse);
    std::cout << "== Figure 4(c): maximal fusion (with shifting) ==\n"
              << v.schedule.to_string() << "\n"
              << codegen::ast_to_string(*v.ast, *v.scop) << "\n";
    // S4 shifted relative to S1 at some linear level.
    bool shifted = false;
    for (std::size_t l = 0; l < v.schedule.num_levels(); ++l)
      if (v.schedule.level_linear[l] &&
          v.schedule.rows[3][l].const_term() !=
              v.schedule.rows[0][l].const_term())
        shifted = true;
    std::size_t fl = 0;
    while (!v.schedule.level_linear[fl]) ++fl;
    std::cout << "S4 shifted: " << (shifted ? "yes" : "NO")
              << "; fused outer loop parallel: "
              << (v.schedule.is_parallel_for({0, 1, 2, 3}, fl) ? "YES (?)"
                                                               : "no (forward-"
                                                                 "dependence "
                                                                 "loop)")
              << "\n\n";
  }
  {
    const bench::Variant v = bench::build_variant(b, Strategy::kWisefuse);
    std::cout << "== Figure 6: wisefuse (Algorithm 2) ==\n"
              << v.schedule.to_string() << "\n"
              << codegen::ast_to_string(*v.ast, *v.scop) << "\n";
    const auto parts = v.schedule.nest_partitions();
    std::cout << "partitions: {S1,S2,S3} vs {S4}: "
              << ((parts[0] == parts[1] && parts[1] == parts[2] &&
                   parts[2] != parts[3])
                      ? "yes"
                      : "NO")
              << "\n";
    std::size_t fl = 0;
    while (!v.schedule.level_linear[fl]) ++fl;
    std::cout << "outer loop parallel for S1-S3: "
              << (v.schedule.is_parallel_for({0, 1, 2}, fl) ? "yes" : "NO")
              << "\n";
  }

  // Model comparison on the paper's machine model: wisefuse vs maxfuse.
  machine::MachineConfig cfg;
  const auto wise = bench::build_variant(b, Strategy::kWisefuse);
  const auto maxf = bench::build_variant(b, Strategy::kMaxfuse);
  const auto rw = bench::model_variant(b, wise, cfg);
  const auto rm = bench::model_variant(b, maxf, cfg);
  std::cout << "\nmodeled 8-core cycles: wisefuse="
            << fmt_double(rw.modeled_cycles / 1e6, 2)
            << "M  maxfuse=" << fmt_double(rm.modeled_cycles / 1e6, 2)
            << "M  (wisefuse speedup "
            << fmt_double(rm.modeled_cycles / rw.modeled_cycles, 2) << "x)\n";
  return 0;
}
