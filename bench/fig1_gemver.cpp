// Figures 1 and 3: gemver.
//
// (a) the original kernel;
// (b) naive fusion of S1 and S2 without interchange is ILLEGAL -- we
//     demonstrate by checking the candidate hyperplane (i for both) against
//     the dependence polyhedron;
// (c/3) the scheduler's transform: S1 and S2 fused after interchanging
//     S1's loops, statement-wise affine functions printed like Figure 3,
//     and the generated code with the outer loop parallel.
#include "common.h"

int main() {
  using namespace pf;

  const suite::Benchmark& b = suite::benchmark("gemver");
  const ir::Scop scop = suite::parse(b);
  std::cout << "== Figure 1(a): original gemver ==\n"
            << scop.to_string() << "\n";

  const auto dg = ddg::DependenceGraph::analyze(scop);

  // Figure 1(b): the naive fusion hyperplane phi_S1 = i, phi_S2 = i is
  // illegal: the S1 -> S2 dependence through B (S2 reads B transposed) has
  // instances with negative distance.
  {
    const ddg::Dependence* dep = nullptr;
    for (const ddg::Dependence& d : dg.deps())
      if (d.src == 0 && d.dst == 1 && d.kind == ddg::DepKind::kFlow) dep = &d;
    PF_CHECK(dep != nullptr);
    // phi_S2(t) - phi_S1(s) with both = outermost iterator.
    const std::size_t p = scop.num_params();
    poly::AffineExpr i_s1(2 + p), i_s2(2 + p);
    i_s1.set_coeff(0, 1);
    i_s2.set_coeff(0, 1);
    const poly::AffineExpr diff = dep->lift_dst(i_s2) - dep->lift_src(i_s1);
    const auto mn = dep->poly.integer_min(diff);
    const bool illegal = mn.kind == poly::IntegerSet::Opt::kUnbounded ||
                         (mn.kind == poly::IntegerSet::Opt::kOk && mn.value < 0);
    std::cout << "== Figure 1(b): naive fusion (phi = i for S1 and S2) ==\n"
              << "min dependence distance for S1->S2 via B: "
              << (mn.kind == poly::IntegerSet::Opt::kUnbounded
                      ? std::string("-(N-1), unbounded below")
                      : std::to_string(mn.value))
              << "  -> " << (illegal ? "ILLEGAL (backward dependence)" : "legal")
              << "\n\n";
  }

  // Figure 3 / 1(c): the wisefuse transform.
  const bench::Variant v = bench::build_variant(b, bench::Strategy::kWisefuse);
  std::cout << "== Figure 3: statement-wise affine functions (wisefuse) ==\n"
            << v.schedule.to_string() << "\n";
  std::cout << "== Figure 1(c): transformed gemver ==\n"
            << codegen::ast_to_string(*v.ast, scop) << "\n";

  // Check the headline properties programmatically.
  const auto parts = v.schedule.nest_partitions();
  std::cout << "S1 and S2 fused: " << (parts[0] == parts[1] ? "yes" : "NO")
            << "\n";
  std::size_t fl = 0;
  while (!v.schedule.level_linear[fl]) ++fl;
  std::cout << "fused outer loop parallel: "
            << (v.schedule.is_parallel_for({0, 1}, fl) ? "yes" : "NO") << "\n";
  const auto& r1 = v.schedule.rows[0][fl];
  const auto& r2 = v.schedule.rows[1][fl];
  std::cout << "S1 interchanged relative to S2: "
            << ((r1.coeff(1) == 1 && r2.coeff(0) == 1) ? "yes" : "NO")
            << "\n";
  return 0;
}
