// Compile-time scaling micro-bench: times dependence analysis at 1/2/4
// analysis threads plus Pluto scheduling, and reports solver/cache
// counters. Output is one JSON object so the bench harness can archive
// it next to the kernel results.
//
// Two synthetic SCoPs are used. Analysis scaling runs on the largest
// program the generator family produces (~30 statements with dense read
// sets: the quadratic statement-pair x access-pair fan-out is the
// dominant cost, which is exactly what the thread pool parallelizes).
// Scheduling is level-by-level ILP and inherently serial, and its
// branch-and-bound cost explodes with statement count, so it is timed
// once on a test-sized program.
//
// The solve cache and stats are reset between configurations so each
// run pays the full cost; "speedup_analyze_4" is what the acceptance
// bar (>= 1.8x on 4 threads) reads.
//
// "end_to_end_compile_seconds" (analyze at jobs=1 + schedule) is the
// figure BENCH_*.json records compare across PRs, and the "fastlane"
// object says how much of the solver work the int64 fast lane served.
// A small Rational comparison/hash microbench rides along, pinning the
// scalar-level cost the fast lane avoids.
//
// --smoke: one rep under a generous compute-fuel budget; tools/ci.sh
// uses it as the perf-smoke stage and fails the build when the
// fast-lane rate drops below threshold (see docs/performance.md).
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <filesystem>

#include "common.h"
#include "ddg/dependences.h"
#include "frontend/parser.h"
#include "fusion/models.h"
#include "poly/set.h"
#include "sched/pluto.h"
#include "suite/synthetic.h"
#include "support/budget.h"
#include "support/diskcache.h"
#include "support/metrics.h"
#include "support/rational.h"
#include "support/stats.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Median-of-reps wall time for one (jobs) configuration of analyze().
double time_analyze(const pf::ir::Scop& scop, std::size_t jobs, int reps) {
  std::cerr << "... analyze jobs=" << jobs << " x" << reps << "\n";
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    pf::poly::clear_solve_cache();
    pf::ddg::AnalysisOptions opts;
    opts.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    const auto dg = pf::ddg::DependenceGraph::analyze(scop, opts);
    times.push_back(seconds_since(t0));
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

// ns/op over `iters` calls of `op` on a pre-generated Rational stream,
// with a data dependence through `sink` so the loop cannot be hoisted.
template <typename Op>
double time_rational_op(const std::vector<pf::Rational>& vals,
                        std::size_t iters, Op op) {
  std::size_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i)
    sink += op(vals[(i + sink % 2) % vals.size()], vals[(i * 7 + 3) % vals.size()]);
  const double s = seconds_since(t0);
  // Keep `sink` observable.
  if (sink == static_cast<std::size_t>(-1)) std::cerr << "";
  return 1e9 * s / static_cast<double>(iters);
}

// Rational comparison and hash throughput: the per-cell costs the int64
// fast lane removes from the simplex inner loop.
std::string rational_microbench_json() {
  std::vector<pf::Rational> vals;
  std::uint64_t lcg = 0x2545F4914F6CDD1DULL;
  for (int i = 0; i < 256; ++i) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const pf::i64 num = static_cast<pf::i64>(lcg >> 40) - (1 << 23);
    const pf::i64 den = static_cast<pf::i64>((lcg >> 16) % 97) + 1;
    vals.emplace_back(num, den);
  }
  constexpr std::size_t kIters = 2'000'000;
  const double cmp_rat = time_rational_op(
      vals, kIters,
      [](const pf::Rational& a, const pf::Rational& b) { return a < b ? 1u : 0u; });
  const double cmp_int = time_rational_op(
      vals, kIters,
      [](const pf::Rational& a, const pf::Rational&) { return a < 0 ? 1u : 0u; });
  const double hash = time_rational_op(
      vals, kIters, [](const pf::Rational& a, const pf::Rational&) {
        return pf::hash_value(a);
      });
  return "{\"compare_rational_ns\": " + std::to_string(cmp_rat) +
         ", \"compare_int64_ns\": " + std::to_string(cmp_int) +
         ", \"hash_ns\": " + std::to_string(hash) + "}";
}

}  // namespace

int main(int argc, char** argv) {
  using pf::support::Stats;

  unsigned seed = 11;
  int reps = 3;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--seed=", 0) == 0) seed = std::stoul(a.substr(7));
    if (a.rfind("--reps=", 0) == 0) reps = std::stoi(a.substr(7));
    if (a == "--smoke") smoke = true;
  }
  // Smoke mode (tools/ci.sh): one rep under a generous fuel budget --
  // enough that nothing degrades, but the whole budget accounting path
  // (task budgets, per-site counters) runs alongside the fast lane.
  std::optional<pf::support::Budget> budget;
  std::optional<pf::support::BudgetScope> budget_scope;
  if (smoke) {
    reps = 1;
    pf::support::BudgetSpec spec;
    spec.fuel = 50'000'000;
    budget.emplace(spec);
    budget_scope.emplace(&*budget);
  }

  // Many nests, two statements each, dense read sets: access pairs per
  // statement pair grow quadratically in the reads, making each of the
  // ~900 statement pairs substantial.
  pf::suite::SyntheticOptions big;
  big.min_arrays = 6;
  big.max_arrays = 8;
  big.min_nests = 10;
  big.max_nests = 12;
  big.min_stmts = 2;
  big.max_stmts = 3;
  big.min_reads = 4;
  big.max_reads = 6;
  const pf::ir::Scop analyze_scop =
      pf::frontend::parse_scop(pf::suite::synthetic_program(seed, big));

  // Scheduling input: the end-to-end test generator's defaults.
  const pf::ir::Scop sched_scop =
      pf::frontend::parse_scop(pf::suite::synthetic_program(seed));

  std::cout << "{\n  \"bench\": \"compile_scaling\",\n";
  std::cout << "  \"seed\": " << seed << ",\n";
  // Speedups are only meaningful when the host actually has the cores:
  // on a single-core container every configuration measures ~1.0x.
  std::cout << "  \"hardware_concurrency\": "
            << std::thread::hardware_concurrency() << ",\n";
  std::cout << "  \"analyze_statements\": " << analyze_scop.statements().size()
            << ",\n";
  std::cout << "  \"schedule_statements\": " << sched_scop.statements().size()
            << ",\n"
            << std::flush;

  // Dependence analysis at 1/2/4 threads.
  Stats::instance().reset();
  const double t1 = time_analyze(analyze_scop, 1, reps);
  const double t2 = time_analyze(analyze_scop, 2, reps);
  const double t4 = time_analyze(analyze_scop, 4, reps);
  std::cout << "  \"analyze_seconds\": {\"jobs1\": " << t1
            << ", \"jobs2\": " << t2 << ", \"jobs4\": " << t4 << "},\n";
  std::cout << "  \"speedup_analyze_2\": " << (t1 / t2) << ",\n";
  std::cout << "  \"speedup_analyze_4\": " << (t1 / t4) << ",\n"
            << std::flush;

  // Pluto (wisefuse) scheduling; the solve cache is warm from the
  // program's own analysis, matching the real CLI pipeline.
  std::cerr << "... schedule\n";
  Stats::instance().reset();
  pf::poly::clear_solve_cache();
  const auto dg = pf::ddg::DependenceGraph::analyze(sched_scop);
  auto policy = pf::fusion::make_policy(pf::fusion::FusionModel::kWisefuse);
  const auto t0 = std::chrono::steady_clock::now();
  const auto sch = pf::sched::compute_schedule(sched_scop, dg, *policy);
  const double schedule_seconds = seconds_since(t0);
  std::cout << "  \"schedule_seconds\": " << schedule_seconds << ",\n";
  std::cout << "  \"schedule_levels\": "
            << (sch.rows.empty() ? 0 : sch.rows[0].size()) << ",\n";
  std::cout << "  \"end_to_end_compile_seconds\": " << (t1 + schedule_seconds)
            << ",\n"
            << std::flush;

  // Persistent-cache warm-vs-cold leg (src/support/diskcache.h): the
  // same analyze+schedule pipeline against an empty disk cache, then
  // again with the cache warm (a renewed run id simulates the process
  // restart that makes the first leg's writes visible). The in-memory
  // solve cache is cleared between legs so the reduction measured is the
  // disk cache's alone. BENCH_*.json records compare
  // warm_solve_reduction_percent; the acceptance bar is >= 50.
  std::cerr << "... diskcache warm/cold\n";
  // A limited budget bypasses the solve caches (the PR-5 determinism
  // contract), which would make this leg measure nothing in --smoke:
  // drop the smoke budget before the cache legs run.
  budget_scope.reset();
  budget.reset();
  {
    namespace fs = std::filesystem;
    namespace dc = pf::support::diskcache;
    using pf::support::Counter;
    const std::string cache_dir =
        (fs::temp_directory_path() /
         ("pf_bench_cache_" + std::to_string(::getpid())))
            .string();
    fs::remove_all(cache_dir);
    dc::configure(cache_dir, 64);
    pf::i64 cold_solves = 0, warm_solves = 0, warm_hits = 0;
    {
      pf::support::MetricsScope m;
      pf::poly::clear_solve_cache();
      const auto g = pf::ddg::DependenceGraph::analyze(sched_scop);
      pf::sched::compute_schedule(sched_scop, g, *policy);
      cold_solves = m.registry().get(Counter::kIlpSolves);
    }
    dc::renew_run_id();
    {
      pf::support::MetricsScope m;
      pf::poly::clear_solve_cache();
      const auto g = pf::ddg::DependenceGraph::analyze(sched_scop);
      pf::sched::compute_schedule(sched_scop, g, *policy);
      warm_solves = m.registry().get(Counter::kIlpSolves);
      warm_hits = m.registry().get(Counter::kDiskCacheHits);
    }
    dc::configure("", 0);
    fs::remove_all(cache_dir);
    const double reduction =
        cold_solves > 0
            ? 100.0 * static_cast<double>(cold_solves - warm_solves) /
                  static_cast<double>(cold_solves)
            : 0.0;
    std::cout << "  \"diskcache\": {\"cold_ilp_solves\": " << cold_solves
              << ", \"warm_ilp_solves\": " << warm_solves
              << ", \"warm_disk_hits\": " << warm_hits
              << ", \"warm_solve_reduction_percent\": " << reduction
              << "},\n"
              << std::flush;
  }

  std::cerr << "... rational microbench\n";
  std::cout << "  \"rational_microbench\": " << rational_microbench_json()
            << ",\n";
  // Fast-lane outcomes over the schedule section (its own analysis +
  // Pluto); the ci.sh perf-smoke stage parses rate_percent from here.
  std::cout << "  \"fastlane\": " << pf::bench::fastlane_summary_json()
            << ",\n";
  std::cout << "  \"stats\": " << Stats::instance().to_json() << "\n}\n";
  return 0;
}
