// Compile-time scaling micro-bench: times dependence analysis at 1/2/4
// analysis threads plus Pluto scheduling, and reports solver/cache
// counters. Output is one JSON object so the bench harness can archive
// it next to the kernel results.
//
// Two synthetic SCoPs are used. Analysis scaling runs on the largest
// program the generator family produces (~30 statements with dense read
// sets: the quadratic statement-pair x access-pair fan-out is the
// dominant cost, which is exactly what the thread pool parallelizes).
// Scheduling is level-by-level ILP and inherently serial, and its
// branch-and-bound cost explodes with statement count, so it is timed
// once on a test-sized program.
//
// The solve cache and stats are reset between configurations so each
// run pays the full cost; "speedup_analyze_4" is what the acceptance
// bar (>= 1.8x on 4 threads) reads.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "ddg/dependences.h"
#include "frontend/parser.h"
#include "fusion/models.h"
#include "poly/set.h"
#include "sched/pluto.h"
#include "suite/synthetic.h"
#include "support/stats.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Median-of-reps wall time for one (jobs) configuration of analyze().
double time_analyze(const pf::ir::Scop& scop, std::size_t jobs, int reps) {
  std::cerr << "... analyze jobs=" << jobs << " x" << reps << "\n";
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    pf::poly::clear_solve_cache();
    pf::ddg::AnalysisOptions opts;
    opts.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    const auto dg = pf::ddg::DependenceGraph::analyze(scop, opts);
    times.push_back(seconds_since(t0));
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  using pf::support::Stats;

  unsigned seed = 11;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--seed=", 0) == 0) seed = std::stoul(a.substr(7));
    if (a.rfind("--reps=", 0) == 0) reps = std::stoi(a.substr(7));
  }

  // Many nests, two statements each, dense read sets: access pairs per
  // statement pair grow quadratically in the reads, making each of the
  // ~900 statement pairs substantial.
  pf::suite::SyntheticOptions big;
  big.min_arrays = 6;
  big.max_arrays = 8;
  big.min_nests = 10;
  big.max_nests = 12;
  big.min_stmts = 2;
  big.max_stmts = 3;
  big.min_reads = 4;
  big.max_reads = 6;
  const pf::ir::Scop analyze_scop =
      pf::frontend::parse_scop(pf::suite::synthetic_program(seed, big));

  // Scheduling input: the end-to-end test generator's defaults.
  const pf::ir::Scop sched_scop =
      pf::frontend::parse_scop(pf::suite::synthetic_program(seed));

  std::cout << "{\n  \"bench\": \"compile_scaling\",\n";
  std::cout << "  \"seed\": " << seed << ",\n";
  // Speedups are only meaningful when the host actually has the cores:
  // on a single-core container every configuration measures ~1.0x.
  std::cout << "  \"hardware_concurrency\": "
            << std::thread::hardware_concurrency() << ",\n";
  std::cout << "  \"analyze_statements\": " << analyze_scop.statements().size()
            << ",\n";
  std::cout << "  \"schedule_statements\": " << sched_scop.statements().size()
            << ",\n"
            << std::flush;

  // Dependence analysis at 1/2/4 threads.
  Stats::instance().reset();
  const double t1 = time_analyze(analyze_scop, 1, reps);
  const double t2 = time_analyze(analyze_scop, 2, reps);
  const double t4 = time_analyze(analyze_scop, 4, reps);
  std::cout << "  \"analyze_seconds\": {\"jobs1\": " << t1
            << ", \"jobs2\": " << t2 << ", \"jobs4\": " << t4 << "},\n";
  std::cout << "  \"speedup_analyze_2\": " << (t1 / t2) << ",\n";
  std::cout << "  \"speedup_analyze_4\": " << (t1 / t4) << ",\n"
            << std::flush;

  // Pluto (wisefuse) scheduling; the solve cache is warm from the
  // program's own analysis, matching the real CLI pipeline.
  std::cerr << "... schedule\n";
  Stats::instance().reset();
  pf::poly::clear_solve_cache();
  const auto dg = pf::ddg::DependenceGraph::analyze(sched_scop);
  auto policy = pf::fusion::make_policy(pf::fusion::FusionModel::kWisefuse);
  const auto t0 = std::chrono::steady_clock::now();
  const auto sch = pf::sched::compute_schedule(sched_scop, dg, *policy);
  std::cout << "  \"schedule_seconds\": " << seconds_since(t0) << ",\n";
  std::cout << "  \"schedule_levels\": "
            << (sch.rows.empty() ? 0 : sch.rows[0].size()) << ",\n";
  std::cout << "  \"stats\": " << Stats::instance().to_json() << "\n}\n";
  return 0;
}
