// Figures 2 and 5: swim.
//
// Prints the source excerpt (Figure 2), the pre-fusion schedules chosen by
// wisefuse's Algorithm 1 vs Pluto's DFS order (the bracketed SCC ids of
// Figure 5a/5c), and the resulting fusion partitionings. The headline:
// wisefuse fuses the five statements S1, S2, S3, S15, S18 into one loop
// nest; Pluto's model scatters them.
#include "common.h"

int main() {
  using namespace pf;
  using bench::Strategy;

  const suite::Benchmark& b = suite::benchmark("swim");
  const ir::Scop scop = suite::parse(b);
  std::cout << "== Figure 2: the swim excerpt ==\n" << scop.to_string() << "\n";

  const auto dg = ddg::DependenceGraph::analyze(scop);
  const auto sccs = dg.sccs();

  const auto wise_order = fusion::wisefuse_prefusion_order(scop, dg, sccs, {});
  const auto dfs_order = sccs.discovery_order;

  auto position_of = [&](const std::vector<std::size_t>& order) {
    std::vector<std::size_t> pos(order.size());
    for (std::size_t p = 0; p < order.size(); ++p) pos[order[p]] = p;
    return pos;
  };
  const auto wise_pos = position_of(wise_order);
  const auto dfs_pos = position_of(dfs_order);

  const bench::Variant wise = bench::build_variant(b, Strategy::kWisefuse);
  const bench::Variant smart = bench::build_variant(b, Strategy::kSmartfuse);
  const auto wparts = wise.schedule.nest_partitions();
  const auto sparts = smart.schedule.nest_partitions();

  TextTable t({"stmt", "dim", "prefusion id (Alg.1)", "prefusion id (PLuTo DFS)",
               "partition (wisefuse)", "partition (smartfuse)"});
  for (std::size_t s = 0; s < scop.num_statements(); ++s) {
    const auto scc = static_cast<std::size_t>(sccs.scc_of[s]);
    t.add_row({scop.statement(s).name(),
               std::to_string(scop.statement(s).dim()),
               std::to_string(wise_pos[scc]), std::to_string(dfs_pos[scc]),
               std::to_string(wparts[s]), std::to_string(sparts[s])});
  }
  std::cout << "== Figure 5(a)/(c): pre-fusion schedules and partitions ==\n"
            << t.to_string() << "\n";

  // The five-statement nest of Figure 5(b).
  std::vector<std::string> fused;
  for (std::size_t s = 0; s < wparts.size(); ++s)
    if (wparts[s] == wparts[0]) fused.push_back(scop.statement(s).name());
  std::cout << "wisefuse first nest: {" << join(fused, ", ") << "}"
            << "  (paper: {S1, S2, S3, S15, S18})\n\n";

  std::cout << "== Figure 5(b): wisefuse transformed swim ==\n"
            << codegen::ast_to_string(*wise.ast, *wise.scop) << "\n";
  return 0;
}
