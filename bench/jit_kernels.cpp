// google-benchmark wall-clock of the JIT-compiled transformed kernels
// (single thread; measures the data-reuse half of the story on this
// container -- see DESIGN.md substitution #2).
//
// One benchmark registration per (program x fusion strategy); skipped
// cleanly when no system compiler is available.
#include <benchmark/benchmark.h>

#include "common.h"

namespace {

using pf::bench::Strategy;

struct Compiled {
  std::shared_ptr<pf::ir::Scop> scop;
  std::shared_ptr<pf::exec::JitKernel> kernel;
  pf::IntVector params;
};

// Build + JIT once per registration; cached across google-benchmark
// iterations.
Compiled compile(const std::string& bench_name, Strategy strategy) {
  const pf::suite::Benchmark& b = pf::suite::benchmark(bench_name);
  const pf::bench::Variant v = pf::bench::build_variant(b, strategy);
  pf::exec::JitOptions opts;
  opts.openmp = false;
  std::string err;
  auto kernel = pf::exec::JitKernel::compile(
      pf::codegen::emit_c(*v.ast, *v.scop), "pf_kernel", opts, &err);
  PF_CHECK_MSG(kernel.has_value(), "JIT failed: " << err);
  Compiled c;
  c.scop = v.scop;
  c.kernel = std::make_shared<pf::exec::JitKernel>(std::move(*kernel));
  c.params = b.bench_params;
  return c;
}

void run_kernel(benchmark::State& state, const std::string& name,
                Strategy strategy) {
  const Compiled c = compile(name, strategy);
  pf::exec::ArrayStore store(*c.scop, c.params);
  pf::suite::init_store(store);
  for (auto _ : state) {
    c.kernel->run(store);
    benchmark::ClobberMemory();
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!pf::exec::jit_available()) {
    std::cout << "jit_kernels: no system compiler available; skipping\n";
    return 0;
  }
  // The kernels with the strongest reuse story; the full sweep lives in
  // fig7_models.
  for (const char* name : {"gemver", "advect", "swim", "wupwise"}) {
    for (const Strategy s :
         {Strategy::kBaseline, Strategy::kWisefuse, Strategy::kSmartfuse,
          Strategy::kNofuse, Strategy::kMaxfuse}) {
      benchmark::RegisterBenchmark(
          (std::string(name) + "/" + pf::bench::to_string(s)).c_str(),
          [name, s](benchmark::State& st) { run_kernel(st, name, s); })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.2);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
