// Ablation: tiling on top of fusion (the Pluto combination the paper's
// fusion model feeds into). Sweeps tile sizes on a matmul-like kernel and
// on the fused swim excerpt, reporting L2 misses and modeled cycles.
#include "codegen/tiling.h"
#include "common.h"

#include "frontend/parser.h"

namespace {

constexpr const char* kMatmul = R"(
  scop mm(N) { context N >= 4;
    array A[N][N]; array B[N][N]; array C[N][N];
    for (i = 0 .. N-1) { for (j = 0 .. N-1) { for (k = 0 .. N-1) {
      S1: C[i][j] = C[i][j] + A[i][k]*B[k][j]; } } } })";

}  // namespace

int main() {
  using namespace pf;

  struct Case {
    std::string name;
    std::string source;
    i64 n;
  };
  const std::vector<Case> cases = {
      {"matmul", kMatmul, 192},
      {"swim (wisefuse-fused)", suite::benchmark("swim").source, 200},
  };

  for (const Case& c : cases) {
    TextTable t({"tile size", "L1 misses", "L2 misses", "LL misses",
                 "modeled cycles"});
    for (const i64 tile : {0, 8, 16, 32, 64}) {
      auto scop = std::make_shared<ir::Scop>(frontend::parse_scop(c.source));
      const auto dg = ddg::DependenceGraph::analyze(*scop);
      auto policy = fusion::make_policy(fusion::FusionModel::kWisefuse);
      const auto sch = sched::compute_schedule(*scop, dg, *policy);
      auto ast = codegen::generate_ast(*scop, sch);
      if (tile > 0) {
        codegen::TilingOptions topts;
        topts.tile_size = tile;
        codegen::tile_ast(*ast, sch, dg, topts);
      }
      exec::ArrayStore store(*scop, {c.n});
      suite::init_store(store);
      const machine::ModelReport r = machine::evaluate(*ast, store);
      t.add_row({tile == 0 ? "untiled" : std::to_string(tile),
                 std::to_string(r.cache.misses[0]),
                 std::to_string(r.cache.misses[1]),
                 std::to_string(r.cache.memory_accesses()),
                 fmt_double(r.modeled_cycles / 1e6, 2) + "M"});
      std::cout << "... " << c.name << " tile " << tile << " done\n"
                << std::flush;
    }
    std::cout << "\n== Tiling sweep: " << c.name << " (N = " << c.n
              << ") ==\n"
              << t.to_string() << "\n";
  }
  std::cout << "(fusion decides what shares a tile; tiling shrinks the "
               "working set to cache size -- the Pluto combination)\n";
  return 0;
}
