// Ablation: modeled speedup vs core count.
//
// Reproduces the paper's Section 5.3 claim that wisefuse "scales better
// than smartfuse, and the performance gap increases with the number of
// processors": wisefuse's coarse-grained parallel nests pay one fork/join
// per nest while smartfuse/maxfuse's pipelined fused nests pay one
// synchronization per wavefront -- a cost that does not shrink with P.
#include "common.h"

int main() {
  using namespace pf;
  using bench::Strategy;

  for (const char* name : {"advect", "applu", "swim"}) {
    const suite::Benchmark& b = suite::benchmark(name);
    const bench::Variant wise = bench::build_variant(b, Strategy::kWisefuse);
    const bench::Variant smart = bench::build_variant(b, Strategy::kSmartfuse);

    TextTable t({"cores", "wisefuse speedup", "smartfuse speedup",
                 "wise/smart"});
    double wise1 = 0, smart1 = 0;
    for (const int cores : {1, 2, 4, 8, 16}) {
      machine::MachineConfig cfg;
      cfg.cores = cores;
      const double wc = bench::model_variant(b, wise, cfg).modeled_cycles;
      const double sc = bench::model_variant(b, smart, cfg).modeled_cycles;
      if (cores == 1) {
        wise1 = wc;
        smart1 = sc;
      }
      t.add_row({std::to_string(cores), fmt_double(wise1 / wc, 2),
                 fmt_double(smart1 / sc, 2), fmt_double(sc / wc, 2)});
    }
    std::cout << "== Scaling on " << name << " (modeled) ==\n"
              << t.to_string() << "\n";
  }
  std::cout << "(expected shape: the wise/smart column grows with cores "
               "wherever smartfuse lost outer parallelism)\n";
  return 0;
}
