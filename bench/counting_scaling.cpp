// Counting-engine scaling: wall-clock of exact point counting vs problem
// size, on the shapes the --analyze pass actually produces -- separable
// boxes (O(dims) ILP solves), coupled triangles (leading-dim enumeration)
// and strided access-relation projections -- plus the end-to-end analyzer
// on the paper suite. The warm column shows the count cache collapsing a
// repeat solve to a lookup.
#include "common.h"

#include "analysis/locality.h"
#include "poly/count.h"
#include "poly/set.h"

namespace {

using namespace pf;

poly::IntegerSet box3(i64 n) {
  poly::IntegerSet s(3);
  for (std::size_t d = 0; d < 3; ++d) {
    const auto x = poly::AffineExpr::var(3, d);
    s.add_constraint(
        poly::Constraint::ge(x, poly::AffineExpr::constant(3, 0)));
    s.add_constraint(
        poly::Constraint::le(x, poly::AffineExpr::constant(3, n - 1)));
  }
  return s;
}

poly::IntegerSet triangle2(i64 n) {
  poly::IntegerSet s(2);
  const auto x = poly::AffineExpr::var(2, 0);
  const auto y = poly::AffineExpr::var(2, 1);
  s.add_constraint(poly::Constraint::ge(x, poly::AffineExpr::constant(2, 0)));
  s.add_constraint(poly::Constraint::le(x, y));
  s.add_constraint(poly::Constraint::le(y, poly::AffineExpr::constant(2, n - 1)));
  return s;
}

// The access-relation shape of a[2*i]: cell dim + iter dim, projected
// onto the cell -- the footprint query.
poly::IntegerSet strided2(i64 n) {
  poly::IntegerSet s(2);
  const auto c = poly::AffineExpr::var(2, 0);
  const auto i = poly::AffineExpr::var(2, 1);
  s.add_constraint(poly::Constraint::eq(c, i * 2));
  s.add_constraint(poly::Constraint::ge(i, poly::AffineExpr::constant(2, 0)));
  s.add_constraint(poly::Constraint::le(i, poly::AffineExpr::constant(2, n - 1)));
  return s;
}

template <typename Fn>
std::pair<poly::Count, double> timed(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  const poly::Count c = fn();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  return {c, static_cast<double>(us)};
}

}  // namespace

int main() {
  TextTable t({"shape", "N", "count", "cold us", "warm us"});
  struct Shape {
    const char* name;
    poly::Count (*count)(i64);
  };
  const Shape shapes[] = {
      {"box3", [](i64 n) { return poly::count_points(box3(n)); }},
      {"triangle2", [](i64 n) { return poly::count_points(triangle2(n)); }},
      {"strided-proj",
       [](i64 n) { return poly::count_projection(strided2(n), 1); }},
  };
  for (const Shape& sh : shapes) {
    for (const i64 n : {16, 64, 256, 1024, 4096}) {
      poly::clear_solve_cache();  // also drops the count cache
      const auto cold = timed([&] { return sh.count(n); });
      const auto warm = timed([&] { return sh.count(n); });
      t.add_row({sh.name, std::to_string(n), cold.first.to_string(),
                 fmt_double(cold.second, 0), fmt_double(warm.second, 0)});
    }
  }
  std::cout << "== count_points / count_projection scaling ==\n"
            << t.to_string() << "\n";

  TextTable a({"benchmark", "params", "pairs", "analyze us"});
  for (const char* name : {"gemver", "advect", "swim"}) {
    const suite::Benchmark& b = suite::benchmark(name);
    const ir::Scop scop = suite::parse(b);
    const ddg::DependenceGraph dg = ddg::DependenceGraph::analyze(scop);
    poly::clear_solve_cache();
    const auto t0 = std::chrono::steady_clock::now();
    const analysis::LocalityReport rep =
        analysis::analyze_locality(scop, dg, b.test_params);
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    std::string params;
    for (const i64 v : rep.params)
      params += (params.empty() ? "" : ",") + std::to_string(v);
    a.add_row({b.name, params, std::to_string(rep.pairs.size()),
               fmt_double(static_cast<double>(us), 0)});
  }
  std::cout << "== analyzer end-to-end (test params) ==\n" << a.to_string()
            << "(separable domains stay O(dims) solves; coupled shapes pay "
               "one step per leading-dim value -- see docs/analysis.md)\n";
  return 0;
}
