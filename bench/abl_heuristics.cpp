// Ablation: which of wisefuse's ingredients (paper Section 4.1/4.2) does
// the work? For each benchmark, run wisefuse with one ingredient disabled
// at a time and report nest-partition counts and modeled 8-core cycles:
//   full      -- Algorithm 1 + RAR + dimensionality grouping + Algorithm 2
//   no-rar    -- input dependences ignored when ordering SCCs
//   no-dim    -- dimensionality check dropped from Heuristic 1
//   no-order  -- no reordering at all (DFS/topological order kept)
//   no-alg2   -- outer-parallelism pass disabled
#include "common.h"

int main() {
  using namespace pf;

  struct Config {
    const char* name;
    fusion::WisefuseOptions opts;
  };
  std::vector<Config> configs;
  configs.push_back({"full", {}});
  {
    fusion::WisefuseOptions o;
    o.use_rar = false;
    configs.push_back({"no-rar", o});
  }
  {
    fusion::WisefuseOptions o;
    o.require_same_dim = false;
    configs.push_back({"no-dim", o});
  }
  {
    fusion::WisefuseOptions o;
    o.reorder = false;
    configs.push_back({"no-order", o});
  }
  {
    fusion::WisefuseOptions o;
    o.enforce_outer_parallelism = false;
    configs.push_back({"no-alg2", o});
  }

  machine::MachineConfig cfg;

  TextTable parts_table({"Benchmark", "full", "no-rar", "no-dim", "no-order",
                         "no-alg2"});
  TextTable cycles({"Benchmark", "full", "no-rar", "no-dim", "no-order",
                    "no-alg2"});
  for (const suite::Benchmark& b : suite::all_benchmarks()) {
    std::vector<std::string> prow{b.name}, crow{b.name};
    double full_cycles = 0;
    for (const Config& c : configs) {
      auto scop = std::make_shared<ir::Scop>(suite::parse(b));
      const auto dg = ddg::DependenceGraph::analyze(*scop);
      auto policy = fusion::make_wisefuse(c.opts);
      const auto sch = sched::compute_schedule(*scop, dg, *policy);
      const auto ast = codegen::generate_ast(*scop, sch);
      exec::ArrayStore store(*scop, b.bench_params);
      suite::init_store(store);
      const auto report = machine::evaluate(*ast, store, cfg);
      const auto parts = sch.nest_partitions();
      const int np = static_cast<int>(
          std::set<int>(parts.begin(), parts.end()).size());
      prow.push_back(std::to_string(np));
      if (c.opts.use_rar && c.opts.require_same_dim && c.opts.reorder &&
          c.opts.enforce_outer_parallelism)
        full_cycles = report.modeled_cycles;
      crow.push_back(fmt_double(report.modeled_cycles / full_cycles, 2) + "x");
    }
    parts_table.add_row(prow);
    cycles.add_row(crow);
    std::cout << "... " << b.name << " done\n" << std::flush;
  }
  std::cout << "\n== Ablation: nest partition count per wisefuse variant ==\n"
            << parts_table.to_string();
  std::cout << "\n== Ablation: modeled cycles relative to full wisefuse "
               "(lower is better; 1.00x = full) ==\n"
            << cycles.to_string();
  return 0;
}
