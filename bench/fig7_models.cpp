// Figure 7 (the headline result) + Table 2.
//
// For every benchmark and every fusion strategy, evaluate the transformed
// program on the modeled 8-core Xeon (cache simulator + parallel cost
// model; DESIGN.md substitution #2) and print performance normalized to
// the icc-like baseline, with the geometric mean -- the same presentation
// as the paper's Figure 7. A second table reports single-thread JIT
// wall-clock (reuse only; this container has one core).
//
// Expected shape (paper Section 5.3): wisefuse >= smartfuse everywhere,
// with large gaps on the large programs and on the parallelism-conflict
// programs (advect, swim); parity on lu/tce; nofuse competitive on gemver.
#include "common.h"

int main() {
  using namespace pf;
  using bench::Strategy;

  // Table 2: the benchmark inventory.
  {
    TextTable t({"Benchmark", "Suite", "Category", "N (modeled run)"});
    for (const suite::Benchmark& b : suite::all_benchmarks())
      t.add_row({b.name, b.suite_name, b.category,
                 std::to_string(b.bench_params[0])});
    std::cout << "== Table 2: benchmark summary ==\n" << t.to_string() << "\n";
  }

  machine::MachineConfig cfg;  // 8-core Xeon E5-2650 model

  TextTable fig7({"Benchmark", "baseline", "wisefuse", "smartfuse", "nofuse",
                  "maxfuse"});
  TextTable cycles_table({"Benchmark", "baseline", "wisefuse", "smartfuse",
                          "nofuse", "maxfuse"});
  TextTable wall({"Benchmark", "baseline", "wisefuse", "smartfuse", "nofuse",
                  "maxfuse"});
  std::vector<std::vector<double>> perf_columns(bench::all_strategies().size());
  bool have_jit = true;

  for (const suite::Benchmark& b : suite::all_benchmarks()) {
    std::vector<std::string> row{b.name}, crow{b.name}, wrow{b.name};
    double baseline_cycles = 0;
    std::size_t column = 0;
    for (const Strategy s : bench::all_strategies()) {
      const bench::Variant v = bench::build_variant(b, s);
      const machine::ModelReport r = bench::model_variant(b, v, cfg);
      if (s == Strategy::kBaseline) baseline_cycles = r.modeled_cycles;
      const double normalized = baseline_cycles / r.modeled_cycles;
      perf_columns[column].push_back(normalized);
      row.push_back(fmt_double(normalized, 2));
      crow.push_back(fmt_double(r.modeled_cycles / 1e6, 1) + "M");
      if (const auto secs = bench::time_variant_jit(b, v))
        wrow.push_back(fmt_double(*secs * 1e3, 1) + "ms");
      else
        have_jit = false;
      ++column;
    }
    fig7.add_row(row);
    cycles_table.add_row(crow);
    if (have_jit) wall.add_row(wrow);
    std::cout << "... " << b.name << " done\n" << std::flush;
  }
  {
    std::vector<std::string> gm{"GM"};
    for (const auto& col : perf_columns)
      gm.push_back(fmt_double(bench::geometric_mean(col), 2));
    fig7.add_row(gm);
  }

  std::cout << "\n== Figure 7: performance normalized to the icc-like "
               "baseline (modeled 8-core Xeon) ==\n"
            << fig7.to_string();
  std::cout << "\n== Modeled cycles (absolute, millions) ==\n"
            << cycles_table.to_string();
  if (have_jit)
    std::cout << "\n== Single-thread JIT wall-clock (reuse only; median of 3) "
                 "==\n"
              << wall.to_string();
  std::cout << "\n== Solver work (pipeline-wide perf counters, JSON) ==\n"
            << bench::solver_stats_json() << "\n";
  return 0;
}
