#include "exec/interp.h"

#include <cmath>

namespace pf::exec {

namespace {

class Interpreter {
 public:
  Interpreter(const codegen::AstNode& root, ArrayStore& store,
              const TraceHook& hook)
      : store_(store), scop_(store.scop()), hook_(hook) {
    // The t-variable environment size comes from the expressions
    // themselves: every affine payload in one AST lives in the same
    // [t..., params] space (the subtree's own loops may use only a subset
    // of the t indices, e.g. a segment interpreted on its own).
    std::size_t dims = 0;
    const std::function<void(const codegen::AstNode&)> scan =
        [&](const codegen::AstNode& n) {
          if (dims != 0) return;
          if (n.kind == codegen::AstNode::Kind::kLoop) {
            if (!n.lower.alternatives.empty() &&
                !n.lower.alternatives[0].empty())
              dims = n.lower.alternatives[0][0].expr.dims();
            else
              scan(*n.body);
          } else if (n.kind == codegen::AstNode::Kind::kBlock) {
            for (const auto& c : n.children) scan(*c);
          } else if (!n.iter_exprs.empty()) {
            dims = n.iter_exprs[0].dims();
          }
        };
    scan(root);
    PF_CHECK_MSG(dims >= scop_.num_params(),
                 "cannot infer the t-variable space of this AST");
    q_ = dims - scop_.num_params();
    stats_.per_statement.assign(scop_.num_statements(), 0);
    env_.assign(q_ + scop_.num_params(), 0);
    for (std::size_t j = 0; j < scop_.num_params(); ++j)
      env_[q_ + j] = store_.params()[j];
  }

  InterpStats run(const codegen::AstNode& root) {
    exec(root);
    return stats_;
  }

 private:
  i64 eval_bound(const codegen::LoopBound& b, bool lower) const {
    PF_CHECK(!b.alternatives.empty());
    bool first_alt = true;
    i64 result = 0;
    for (const auto& terms : b.alternatives) {
      PF_CHECK(!terms.empty());
      bool first = true;
      i64 acc = 0;
      for (const codegen::BoundTerm& t : terms) {
        const i64 raw = t.expr.eval(env_);
        const i64 v = lower ? ceil_div(raw, t.denom) : floor_div(raw, t.denom);
        if (first || (lower ? v > acc : v < acc)) acc = v;
        first = false;
      }
      if (first_alt || (lower ? acc < result : acc > result)) result = acc;
      first_alt = false;
    }
    return result;
  }

  double eval_expr(const ir::ExprPtr& e, const IntVector& stmt_env) {
    using K = ir::Expr::Kind;
    switch (e->kind) {
      case K::kNumber:
        return e->number;
      case K::kAffine:
        return static_cast<double>(e->affine_resolved.eval(stmt_env));
      case K::kAccess: {
        IntVector subs;
        subs.reserve(e->subscripts_resolved.size());
        for (const poly::AffineExpr& s : e->subscripts_resolved)
          subs.push_back(s.eval(stmt_env));
        const i64 idx = store_.linear_index(e->array_id, subs);
        if (hook_) hook_(e->array_id, idx, false);
        ++stats_.reads;
        return store_.data(e->array_id)[static_cast<std::size_t>(idx)];
      }
      case K::kBinary: {
        const double l = eval_expr(e->lhs, stmt_env);
        const double r = eval_expr(e->rhs, stmt_env);
        switch (e->op) {
          case ir::BinOp::kAdd:
            return l + r;
          case ir::BinOp::kSub:
            return l - r;
          case ir::BinOp::kMul:
            return l * r;
          case ir::BinOp::kDiv:
            return l / r;
        }
        PF_FAIL("bad binop");
      }
      case K::kUnaryMinus:
        return -eval_expr(e->operand, stmt_env);
      case K::kCall: {
        const std::string& f = e->callee;
        auto arg = [&](std::size_t i) { return eval_expr(e->args[i], stmt_env); };
        if (f == "sqrt") return std::sqrt(arg(0));
        if (f == "fabs") return std::fabs(arg(0));
        if (f == "exp") return std::exp(arg(0));
        if (f == "log") return std::log(arg(0));
        if (f == "sin") return std::sin(arg(0));
        if (f == "cos") return std::cos(arg(0));
        if (f == "pow") return std::pow(arg(0), arg(1));
        if (f == "fmin") return std::fmin(arg(0), arg(1));
        if (f == "fmax") return std::fmax(arg(0), arg(1));
        PF_FAIL("unsupported call '" << f << "' in interpreter");
      }
    }
    PF_FAIL("bad expr kind");
  }

  void exec_stmt(const codegen::AstNode& n) {
    for (const poly::AffineExpr& g : n.guards)
      if (g.eval(env_) < 0) return;
    const ir::Statement& s = scop_.statement(n.stmt);
    // Statement environment: [iterators, params]. Non-unimodular
    // schedules scan a strided superset of the image; instances whose
    // iterator division is inexact are skipped.
    IntVector stmt_env(s.dim() + scop_.num_params());
    for (std::size_t k = 0; k < s.dim(); ++k) {
      const i64 num = n.iter_exprs[k].eval(env_);
      const i64 den = k < n.iter_denoms.size() ? n.iter_denoms[k] : 1;
      if (den != 1) {
        if (mod_floor(num, den) != 0) return;
        stmt_env[k] = floor_div(num, den);
      } else {
        stmt_env[k] = num;
      }
    }
    for (std::size_t j = 0; j < scop_.num_params(); ++j)
      stmt_env[s.dim() + j] = store_.params()[j];

    const double value = eval_expr(s.body(), stmt_env);
    const ir::Access& w = s.write();
    IntVector subs;
    subs.reserve(w.subscripts.size());
    for (const poly::AffineExpr& e : w.subscripts)
      subs.push_back(e.eval(stmt_env));
    const i64 idx = store_.linear_index(w.array_id, subs);
    if (hook_) hook_(w.array_id, idx, true);
    ++stats_.writes;
    store_.data(w.array_id)[static_cast<std::size_t>(idx)] = value;
    ++stats_.statements_executed;
    ++stats_.per_statement[n.stmt];
  }

  void exec(const codegen::AstNode& n) {
    switch (n.kind) {
      case codegen::AstNode::Kind::kBlock:
        for (const auto& c : n.children) exec(*c);
        break;
      case codegen::AstNode::Kind::kLoop: {
        const i64 lo = eval_bound(n.lower, true);
        const i64 hi = eval_bound(n.upper, false);
        for (i64 t = lo; t <= hi; ++t) {
          env_[n.t_index] = t;
          exec(*n.body);
        }
        break;
      }
      case codegen::AstNode::Kind::kStmt:
        exec_stmt(n);
        break;
    }
  }

  ArrayStore& store_;
  const ir::Scop& scop_;
  const TraceHook& hook_;
  std::size_t q_ = 0;
  IntVector env_;  // [t values, params]
  InterpStats stats_;
};

}  // namespace

InterpStats interpret(const codegen::AstNode& root, ArrayStore& store,
                      const TraceHook& hook) {
  return Interpreter(root, store, hook).run(root);
}

}  // namespace pf::exec
