#include "exec/storage.h"

#include <cmath>

namespace pf::exec {

ArrayStore::ArrayStore(const ir::Scop& scop, IntVector params)
    : scop_(&scop), params_(std::move(params)) {
  PF_CHECK_MSG(params_.size() == scop.num_params(),
               "expected " << scop.num_params() << " parameter values");
  PF_CHECK_MSG(scop.context().contains(params_),
               "parameter values violate the scop context");
  for (const ir::Array& a : scop.arrays()) {
    std::vector<i64> ext;
    std::size_t total = 1;
    for (const ir::NamedAffine& e : a.extents) {
      const i64 v = e.resolve(scop.params()).eval(params_);
      PF_CHECK_MSG(v > 0, "array '" << a.name << "' has non-positive extent "
                                    << v);
      ext.push_back(v);
      total *= static_cast<std::size_t>(v);
    }
    extents_.push_back(std::move(ext));
    buffers_.emplace_back(total, 0.0);
  }
}

const std::vector<i64>& ArrayStore::extents(std::size_t array_id) const {
  return extents_.at(array_id);
}

std::size_t ArrayStore::size(std::size_t array_id) const {
  return buffers_.at(array_id).size();
}

double* ArrayStore::data(std::size_t array_id) {
  return buffers_.at(array_id).data();
}

const double* ArrayStore::data(std::size_t array_id) const {
  return buffers_.at(array_id).data();
}

i64 ArrayStore::linear_index(std::size_t array_id, const IntVector& subs) const {
  const auto& ext = extents_.at(array_id);
  PF_CHECK_MSG(subs.size() == ext.size(),
               "rank mismatch indexing array "
                   << scop_->array(array_id).name);
  i64 idx = 0;
  for (std::size_t d = 0; d < subs.size(); ++d) {
    PF_CHECK_MSG(subs[d] >= 0 && subs[d] < ext[d],
                 "index " << subs[d] << " out of bounds [0, " << ext[d]
                          << ") in dim " << d << " of array "
                          << scop_->array(array_id).name);
    idx = checked_add(checked_mul(idx, ext[d]), subs[d]);
  }
  return idx;
}

double ArrayStore::at(std::size_t array_id, const IntVector& subs) const {
  return buffers_.at(array_id)[static_cast<std::size_t>(
      linear_index(array_id, subs))];
}

void ArrayStore::set(std::size_t array_id, const IntVector& subs, double v) {
  buffers_.at(array_id)[static_cast<std::size_t>(
      linear_index(array_id, subs))] = v;
}

void ArrayStore::fill(std::size_t array_id,
                      const std::function<double(const IntVector&)>& fn) {
  const auto& ext = extents_.at(array_id);
  IntVector idx(ext.size(), 0);
  auto& buf = buffers_.at(array_id);
  for (std::size_t linear = 0; linear < buf.size(); ++linear) {
    buf[linear] = fn(idx);
    // Advance the multi-index (row-major).
    for (std::size_t d = ext.size(); d-- > 0;) {
      if (++idx[d] < ext[d]) break;
      idx[d] = 0;
    }
  }
}

std::vector<double*> ArrayStore::pointers() {
  std::vector<double*> ptrs;
  ptrs.reserve(buffers_.size());
  for (auto& b : buffers_) ptrs.push_back(b.data());
  return ptrs;
}

double ArrayStore::max_abs_diff(const ArrayStore& a, const ArrayStore& b) {
  PF_CHECK_MSG(a.buffers_.size() == b.buffers_.size() &&
                   a.extents_ == b.extents_,
               "comparing stores of different shapes");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.buffers_.size(); ++i) {
    PF_CHECK(a.buffers_[i].size() == b.buffers_[i].size());
    for (std::size_t j = 0; j < a.buffers_[i].size(); ++j)
      worst = std::max(worst, std::fabs(a.buffers_[i][j] - b.buffers_[i][j]));
  }
  return worst;
}

}  // namespace pf::exec
