// Concrete array storage for executing SCoPs: one flattened row-major
// double buffer per Scop array, with extents evaluated at given parameter
// values. Used by the interpreter, the JIT runner and output validation.
#pragma once

#include <functional>
#include <vector>

#include "ir/scop.h"

namespace pf::exec {

class ArrayStore {
 public:
  /// Allocate every array of the scop for the given parameter values
  /// (declaration order), zero-initialized.
  ArrayStore(const ir::Scop& scop, IntVector params);

  const ir::Scop& scop() const { return *scop_; }
  const IntVector& params() const { return params_; }

  std::size_t num_arrays() const { return buffers_.size(); }
  /// Evaluated extents of an array.
  const std::vector<i64>& extents(std::size_t array_id) const;
  std::size_t size(std::size_t array_id) const;

  double* data(std::size_t array_id);
  const double* data(std::size_t array_id) const;

  /// Row-major linear index, bounds-checked (throws pf::Error).
  i64 linear_index(std::size_t array_id, const IntVector& subs) const;

  double at(std::size_t array_id, const IntVector& subs) const;
  void set(std::size_t array_id, const IntVector& subs, double v);

  /// Fill an array from a function of its multi-index.
  void fill(std::size_t array_id,
            const std::function<double(const IntVector&)>& fn);

  /// Pointers usable as the `arrays` argument of a JITted pf_kernel.
  std::vector<double*> pointers();

  /// Max absolute element-wise difference across all arrays (stores must
  /// be shape-identical).
  static double max_abs_diff(const ArrayStore& a, const ArrayStore& b);

 private:
  const ir::Scop* scop_;
  IntVector params_;
  std::vector<std::vector<i64>> extents_;
  std::vector<std::vector<double>> buffers_;
};

}  // namespace pf::exec
