// JIT runner: compile emitted C with the system compiler into a shared
// object, dlopen it, and call pf_kernel. This is the "backend compiler"
// half of the source-to-source pipeline (the paper uses icc; we use the
// system cc -- see DESIGN.md substitutions).
#pragma once

#include <optional>
#include <string>

#include "exec/storage.h"

namespace pf::exec {

struct JitOptions {
  std::string compiler = "cc";
  std::string opt_flags = "-O2";
  bool openmp = true;
  /// Keep the temp directory (for debugging); default removes it.
  bool keep_artifacts = false;
  /// Kill the compiler and fail the compile after this many milliseconds
  /// (< 0: no timeout). A hung backend compiler must not hang polyfuse.
  long compile_timeout_ms = 60000;
};

/// True if the configured compiler appears usable on this machine.
bool jit_available(const JitOptions& options = {});

class JitKernel {
 public:
  /// Compile a C translation unit exporting
  /// `void <entry>(double**, const long long*)`.
  /// Returns nullopt and fills *error on failure.
  static std::optional<JitKernel> compile(const std::string& c_source,
                                          const std::string& entry = "pf_kernel",
                                          const JitOptions& options = {},
                                          std::string* error = nullptr);

  JitKernel(JitKernel&& o) noexcept;
  JitKernel& operator=(JitKernel&& o) noexcept;
  JitKernel(const JitKernel&) = delete;
  JitKernel& operator=(const JitKernel&) = delete;
  ~JitKernel();

  /// Run the kernel against a store (arrays and params from the store).
  void run(ArrayStore& store) const;

 private:
  JitKernel() = default;

  void* handle_ = nullptr;
  using Fn = void (*)(double**, const long long*);
  Fn fn_ = nullptr;
  std::string dir_;  // temp dir, removed in dtor unless keep_artifacts
  bool keep_ = false;
};

}  // namespace pf::exec
