#include "exec/jit.h"

#include <dlfcn.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "support/budget.h"
#include "support/error.h"
#include "support/stats.h"
#include "support/trace.h"

namespace pf::exec {

namespace {

// Split a flags string ("-O2 -march=native") on whitespace.
std::vector<std::string> split_flags(const std::string& flags) {
  std::vector<std::string> out;
  std::istringstream in(flags);
  std::string word;
  while (in >> word) out.push_back(word);
  return out;
}

// Resolve `name` against PATH (names containing '/' are checked
// directly). The X_OK probe is what `command -v` did, without a shell.
std::optional<std::string> find_executable(const std::string& name) {
  if (name.empty()) return std::nullopt;
  if (name.find('/') != std::string::npos) {
    if (::access(name.c_str(), X_OK) == 0) return name;
    return std::nullopt;
  }
  const char* path = std::getenv("PATH");
  if (path == nullptr || *path == '\0') return std::nullopt;
  std::istringstream dirs(path);
  std::string dir;
  while (std::getline(dirs, dir, ':')) {
    if (dir.empty()) dir = ".";
    std::string candidate = dir + "/" + name;
    if (::access(candidate.c_str(), X_OK) == 0) return candidate;
  }
  return std::nullopt;
}

struct RunResult {
  int exit_code = -1;       // valid unless timed_out or spawn_error set
  bool timed_out = false;
  std::string spawn_error;  // non-empty: the fork/exec machinery failed
};

// fork/exec + waitpid replacement for std::system: no shell, no quoting
// pitfalls, and a hung child can be killed on timeout. The child's stdout
// and stderr are redirected into `output_file` so diagnostics can be
// surfaced in the caller's error message.
RunResult run_argv(const std::vector<std::string>& argv,
                   const std::string& output_file, long timeout_ms) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv)
    cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  RunResult res;
  const pid_t pid = ::fork();
  if (pid < 0) {
    res.spawn_error = std::string("fork failed: ") + std::strerror(errno);
    return res;
  }
  if (pid == 0) {
    // Child: redirect, then exec. _exit only -- no C++ cleanup here.
    if (!output_file.empty()) {
      const int fd =
          ::open(output_file.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
      if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        if (fd > STDERR_FILENO) ::close(fd);
      }
    }
    ::execvp(cargv[0], cargv.data());
    ::_exit(127);  // the shell's "command not found" convention
  }

  // Parent: poll with WNOHANG so a timeout can SIGKILL the child.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
  for (;;) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      if (WIFEXITED(status))
        res.exit_code = WEXITSTATUS(status);
      else if (WIFSIGNALED(status))
        res.exit_code = 128 + WTERMSIG(status);
      return res;
    }
    if (r < 0) {
      res.spawn_error = std::string("waitpid failed: ") + std::strerror(errno);
      return res;
    }
    if (timeout_ms >= 0 && std::chrono::steady_clock::now() >= deadline) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);  // reap; SIGKILL cannot be ignored
      res.timed_out = true;
      return res;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// Best-effort recursive removal (replaces `rm -rf` via the shell).
void remove_tree(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
}

// Removes the temp tree on every exit path (including exceptions) unless
// disarmed -- success hands ownership of the directory to the JitKernel.
struct TempDirGuard {
  std::string path;
  bool armed = true;
  ~TempDirGuard() {
    if (armed && !path.empty()) remove_tree(path);
  }
};

std::string slurp_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

bool jit_available(const JitOptions& options) {
  return find_executable(options.compiler).has_value();
}

std::optional<JitKernel> JitKernel::compile(const std::string& c_source,
                                            const std::string& entry,
                                            const JitOptions& options,
                                            std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<JitKernel> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  try {
    support::budget_op(support::BudgetSite::kJitCc);
    support::budget_charge(support::BudgetSite::kJitCc);
  } catch (const support::BudgetExceeded& e) {
    // Recovery: no compile happens; every caller already falls back to
    // the interpreter when compile() returns nullopt.
    support::count(support::Counter::kBudgetDowngrades);
    support::remark("budget", "jit compile skipped",
                    {{"site", e.site_name()}, {"cause", e.cause()}});
    return fail(std::string("jit compile aborted: ") + e.what());
  }

  char tmpl[] = "/tmp/polyfuse-jit-XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr)
    return fail(std::string("mkdtemp failed: ") + std::strerror(errno));
  const std::string d = dir;
  TempDirGuard guard{d, /*armed=*/!options.keep_artifacts};
  const std::string src = d + "/kernel.c";
  const std::string so = d + "/kernel.so";
  const std::string log = d + "/cc.log";
  {
    std::ofstream out(src);
    if (!out) return fail("cannot write " + src);
    out << c_source;
    out.flush();
    if (!out) return fail("short write to " + src);
  }

  const std::optional<std::string> compiler =
      find_executable(options.compiler);
  if (!compiler)
    return fail("compiler '" + options.compiler + "' not found in PATH");

  std::vector<std::string> argv{*compiler};
  for (std::string& flag : split_flags(options.opt_flags))
    argv.push_back(std::move(flag));
  if (options.openmp) argv.push_back("-fopenmp");
  argv.push_back("-fPIC");
  argv.push_back("-shared");
  argv.push_back("-o");
  argv.push_back(so);
  argv.push_back(src);
  argv.push_back("-lm");

  const RunResult r = run_argv(argv, log, options.compile_timeout_ms);
  if (!r.spawn_error.empty())
    return fail("cannot run compiler '" + *compiler + "': " + r.spawn_error);
  if (r.timed_out) {
    std::ostringstream msg;
    msg << "compiler '" << *compiler << "' timed out after "
        << options.compile_timeout_ms << " ms and was killed";
    return fail(msg.str());
  }
  if (r.exit_code != 0) {
    std::ostringstream msg;
    msg << "compiler '" << *compiler << "' exited with code " << r.exit_code;
    if (r.exit_code == 127) msg << " (exec failed -- is it a binary?)";
    const std::string cc_output = slurp_file(log);
    if (!cc_output.empty()) msg << ":\n" << cc_output;
    return fail(msg.str());
  }

  void* handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr)
    return fail(std::string("dlopen failed: ") + dlerror());
  void* sym = dlsym(handle, entry.c_str());
  if (sym == nullptr) {
    dlclose(handle);
    return fail("symbol '" + entry + "' not found");
  }
  JitKernel k;
  k.handle_ = handle;
  k.fn_ = reinterpret_cast<Fn>(sym);
  k.dir_ = d;
  k.keep_ = options.keep_artifacts;
  guard.armed = false;  // the kernel's dtor owns cleanup now
  return k;
}

JitKernel::JitKernel(JitKernel&& o) noexcept
    : handle_(o.handle_), fn_(o.fn_), dir_(std::move(o.dir_)), keep_(o.keep_) {
  o.handle_ = nullptr;
  o.fn_ = nullptr;
  o.dir_.clear();
}

JitKernel& JitKernel::operator=(JitKernel&& o) noexcept {
  if (this != &o) {
    this->~JitKernel();
    new (this) JitKernel(std::move(o));
  }
  return *this;
}

JitKernel::~JitKernel() {
  if (handle_ != nullptr) dlclose(handle_);
  if (!dir_.empty() && !keep_) remove_tree(dir_);
}

void JitKernel::run(ArrayStore& store) const {
  PF_CHECK(fn_ != nullptr);
  std::vector<double*> arrays = store.pointers();
  std::vector<long long> params(store.params().begin(), store.params().end());
  fn_(arrays.data(), params.data());
}

}  // namespace pf::exec
