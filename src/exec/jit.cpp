#include "exec/jit.h"

#include <dlfcn.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/error.h"

namespace pf::exec {

namespace {

// Quote a path for /bin/sh.
std::string shq(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

int run_cmd(const std::string& cmd) { return std::system(cmd.c_str()); }

}  // namespace

bool jit_available(const JitOptions& options) {
  const std::string cmd =
      "command -v " + shq(options.compiler) + " >/dev/null 2>&1";
  return run_cmd(cmd) == 0;
}

std::optional<JitKernel> JitKernel::compile(const std::string& c_source,
                                            const std::string& entry,
                                            const JitOptions& options,
                                            std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<JitKernel> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  char tmpl[] = "/tmp/polyfuse-jit-XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) return fail("mkdtemp failed");
  const std::string d = dir;
  const std::string src = d + "/kernel.c";
  const std::string so = d + "/kernel.so";
  const std::string log = d + "/cc.log";
  {
    std::ofstream out(src);
    if (!out) return fail("cannot write " + src);
    out << c_source;
  }
  std::ostringstream cmd;
  cmd << options.compiler << " " << options.opt_flags
      << (options.openmp ? " -fopenmp" : "") << " -fPIC -shared -o " << shq(so)
      << " " << shq(src) << " -lm > " << shq(log) << " 2>&1";
  if (run_cmd(cmd.str()) != 0) {
    std::ifstream in(log);
    std::stringstream msg;
    msg << "compiler failed: " << cmd.str() << "\n" << in.rdbuf();
    if (!options.keep_artifacts)
      run_cmd("rm -rf " + shq(d));
    return fail(msg.str());
  }
  void* handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const std::string msg = std::string("dlopen failed: ") + dlerror();
    if (!options.keep_artifacts) run_cmd("rm -rf " + shq(d));
    return fail(msg);
  }
  void* sym = dlsym(handle, entry.c_str());
  if (sym == nullptr) {
    dlclose(handle);
    if (!options.keep_artifacts) run_cmd("rm -rf " + shq(d));
    return fail("symbol '" + entry + "' not found");
  }
  JitKernel k;
  k.handle_ = handle;
  k.fn_ = reinterpret_cast<Fn>(sym);
  k.dir_ = d;
  k.keep_ = options.keep_artifacts;
  return k;
}

JitKernel::JitKernel(JitKernel&& o) noexcept
    : handle_(o.handle_), fn_(o.fn_), dir_(std::move(o.dir_)), keep_(o.keep_) {
  o.handle_ = nullptr;
  o.fn_ = nullptr;
  o.dir_.clear();
}

JitKernel& JitKernel::operator=(JitKernel&& o) noexcept {
  if (this != &o) {
    this->~JitKernel();
    new (this) JitKernel(std::move(o));
  }
  return *this;
}

JitKernel::~JitKernel() {
  if (handle_ != nullptr) dlclose(handle_);
  if (!dir_.empty() && !keep_) run_cmd("rm -rf " + shq(dir_));
}

void JitKernel::run(ArrayStore& store) const {
  PF_CHECK(fn_ != nullptr);
  std::vector<double*> arrays = store.pointers();
  std::vector<long long> params(store.params().begin(), store.params().end());
  fn_(arrays.data(), params.data());
}

}  // namespace pf::exec
