// AST interpreter: executes a generated loop AST against an ArrayStore.
//
// This is the semantics oracle of polyfuse (every schedule's output is
// validated against the identity schedule's) and the front half of the
// machine model: an optional trace hook receives every array access in
// execution order, which the cache simulator consumes.
#pragma once

#include <functional>
#include <vector>

#include "codegen/ast.h"
#include "exec/storage.h"

namespace pf::exec {

/// Called for each array element access: (array id, linear element index,
/// is_write). Reads of a statement are reported in evaluation order,
/// then its write.
using TraceHook = std::function<void(std::size_t, i64, bool)>;

struct InterpStats {
  std::size_t statements_executed = 0;
  std::size_t reads = 0;
  std::size_t writes = 0;
  /// Executed instance count per statement index.
  std::vector<std::size_t> per_statement;
};

/// Execute the AST. Array accesses are bounds-checked (a wrong schedule or
/// codegen bug throws pf::Error rather than corrupting memory).
InterpStats interpret(const codegen::AstNode& root, ArrayStore& store,
                      const TraceHook& hook = nullptr);

}  // namespace pf::exec
