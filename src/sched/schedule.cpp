#include "sched/schedule.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace pf::sched {

namespace {

// Partition statements by their scalar values at the scalar levels
// selected by `use_level`, assigning dense ids in key (execution) order.
std::vector<int> partition_by_scalars(
    const Schedule& sch, const std::vector<std::size_t>& levels) {
  const std::size_t n = sch.num_statements();
  std::map<std::vector<i64>, int> id_of_key;
  auto key_of = [&](std::size_t s) {
    std::vector<i64> key;
    for (const std::size_t l : levels) {
      PF_CHECK_MSG(sch.rows[s][l].is_constant(),
                   "scalar level with non-constant row");
      key.push_back(sch.rows[s][l].const_term());
    }
    return key;
  };
  for (std::size_t s = 0; s < n; ++s) id_of_key.emplace(key_of(s), 0);
  int next = 0;
  for (auto& [key, id] : id_of_key) id = next++;
  std::vector<int> out(n);
  for (std::size_t s = 0; s < n; ++s) out[s] = id_of_key.at(key_of(s));
  return out;
}

}  // namespace

std::vector<int> Schedule::outer_partitions() const {
  std::vector<std::size_t> levels;
  for (std::size_t l = 0; l < num_levels() && !level_linear[l]; ++l)
    levels.push_back(l);
  return partition_by_scalars(*this, levels);
}

std::vector<int> Schedule::leaf_partitions() const {
  std::vector<std::size_t> levels;
  for (std::size_t l = 0; l < num_levels(); ++l)
    if (!level_linear[l]) levels.push_back(l);
  return partition_by_scalars(*this, levels);
}

std::vector<int> Schedule::nest_partitions() const {
  std::size_t last_linear = 0;
  for (std::size_t l = 0; l < num_levels(); ++l)
    if (level_linear[l]) last_linear = l;
  std::vector<std::size_t> levels;
  for (std::size_t l = 0; l < last_linear; ++l)
    if (!level_linear[l]) levels.push_back(l);
  return partition_by_scalars(*this, levels);
}

bool Schedule::is_parallel_for(const std::vector<std::size_t>& stmts,
                               std::size_t level) const {
  PF_CHECK(level < num_levels() && level_linear[level]);
  std::vector<bool> in(num_statements(), false);
  for (const std::size_t s : stmts) in.at(s) = true;
  return std::none_of(carried_at[level].begin(), carried_at[level].end(),
                      [&](std::size_t dep_idx) {
                        const auto& [src, dst] = dep_endpoints.at(dep_idx);
                        return in[src] && in[dst];
                      });
}

bool Schedule::is_relaxed_dep(std::size_t dep) const {
  const auto it = std::lower_bound(
      relaxed_deps.begin(), relaxed_deps.end(), dep,
      [](const ir::ReductionDep& rd, std::size_t id) { return rd.dep_id < id; });
  return it != relaxed_deps.end() && it->dep_id == dep;
}

std::string Schedule::statement_to_string(std::size_t stmt) const {
  PF_CHECK(scop != nullptr && stmt < num_statements());
  const ir::Statement& s = scop->statement(stmt);
  const std::vector<std::string> names = scop->space_names(s);
  std::ostringstream os;
  os << "T_" << s.name() << " = (";
  for (std::size_t l = 0; l < rows[stmt].size(); ++l) {
    if (l != 0) os << ", ";
    os << rows[stmt][l].to_string(names);
  }
  os << ")";
  return os.str();
}

std::string Schedule::to_string() const {
  std::ostringstream os;
  for (std::size_t s = 0; s < num_statements(); ++s)
    os << statement_to_string(s) << "\n";
  return os.str();
}

}  // namespace pf::sched
