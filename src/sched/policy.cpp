#include "sched/policy.h"

namespace pf::sched {

std::vector<i64> cut_all(std::size_t num_positions) {
  std::vector<i64> values(num_positions);
  for (std::size_t p = 0; p < num_positions; ++p)
    values[p] = static_cast<i64>(p);
  return values;
}

std::vector<i64> cut_dim_based(const CutContext& ctx) {
  PF_CHECK(ctx.order != nullptr && ctx.scc_dim != nullptr);
  const auto& order = *ctx.order;
  std::vector<i64> values(order.size(), 0);
  i64 current = 0;
  for (std::size_t p = 1; p < order.size(); ++p) {
    if ((*ctx.scc_dim)[order[p]] != (*ctx.scc_dim)[order[p - 1]]) ++current;
    values[p] = current;
  }
  return values;
}

std::vector<i64> cut_at_boundary(std::size_t num_positions,
                                 std::size_t boundary) {
  PF_CHECK(boundary > 0 && boundary < num_positions);
  std::vector<i64> values(num_positions, 0);
  for (std::size_t p = boundary; p < num_positions; ++p) values[p] = 1;
  return values;
}

}  // namespace pf::sched
