#include "sched/farkas.h"

namespace pf::sched {

std::vector<poly::Constraint> farkas_constraints(
    const poly::IntegerSet& p, const std::vector<ParamAffine>& coeff_of_x,
    const ParamAffine& const_term, std::size_t num_unknowns) {
  PF_CHECK(coeff_of_x.size() == p.dims());

  // Split equalities so all multipliers are non-negative.
  std::vector<poly::AffineExpr> ineqs;
  for (const poly::Constraint& c : p.constraints()) {
    ineqs.push_back(c.expr);
    if (c.is_equality) ineqs.push_back(-c.expr);
  }
  const std::size_t m = ineqs.size();

  // Meta space: [y (num_unknowns), l0, l_1..l_m].
  const std::size_t total = num_unknowns + 1 + m;
  poly::IntegerSet meta(total);

  // Coefficient matching per x dimension:
  //   coeff_of_x[d](y) - sum_k l_k * C_k.coeff(d) == 0.
  for (std::size_t d = 0; d < p.dims(); ++d) {
    poly::AffineExpr e(total, coeff_of_x[d].constant);
    for (std::size_t u = 0; u < num_unknowns; ++u)
      e.set_coeff(u, coeff_of_x[d].coeffs[u]);
    for (std::size_t k = 0; k < m; ++k)
      e.set_coeff(num_unknowns + 1 + k, checked_neg(ineqs[k].coeff(d)));
    meta.add_constraint(poly::Constraint::eq0(std::move(e)));
  }
  // Constant matching: const_term(y) - l0 - sum_k l_k * C_k.const == 0.
  {
    poly::AffineExpr e(total, const_term.constant);
    for (std::size_t u = 0; u < num_unknowns; ++u)
      e.set_coeff(u, const_term.coeffs[u]);
    e.set_coeff(num_unknowns, -1);
    for (std::size_t k = 0; k < m; ++k)
      e.set_coeff(num_unknowns + 1 + k, checked_neg(ineqs[k].const_term()));
    meta.add_constraint(poly::Constraint::eq0(std::move(e)));
  }
  // Multipliers non-negative.
  for (std::size_t k = 0; k <= m; ++k)
    meta.add_constraint(poly::Constraint::ge0(
        poly::AffineExpr::var(total, num_unknowns + k)));

  // Eliminate all multipliers.
  std::vector<bool> remove(total, false);
  for (std::size_t k = 0; k <= m; ++k) remove[num_unknowns + k] = true;
  poly::IntegerSet reduced = meta.eliminate_dims(remove);
  PF_CHECK_MSG(!reduced.trivially_empty(),
               "Farkas elimination produced an empty system (P empty?)");
  return reduced.constraints();
}

}  // namespace pf::sched
