#include "sched/analysis.h"

#include <algorithm>
#include <functional>
#include <map>

#include "support/budget.h"

namespace pf::sched {

Schedule identity_schedule(const ir::Scop& scop) {
  const std::size_t n = scop.num_statements();
  std::size_t max_dim = 0;
  for (const ir::Statement& s : scop.statements())
    max_dim = std::max(max_dim, s.dim());
  const std::size_t num_levels = 2 * max_dim + 1;

  Schedule sch;
  sch.scop = &scop;
  sch.rows.assign(n, {});
  sch.level_linear.assign(num_levels, false);
  for (std::size_t k = 0; k < max_dim; ++k) sch.level_linear[2 * k + 1] = true;

  // Sibling positions: recursively scan statements (already in program
  // order) and assign ordinals to distinct constructs per nesting level.
  // Construct identity at depth d: loop_chain[d] if the statement is
  // deeper, else the statement itself (encoded as -1 - stmt_index).
  struct Frame {
    std::vector<std::size_t> stmts;
    std::size_t depth;
  };
  std::vector<std::vector<i64>> scalar_rows(n);  // per stmt: 2d+1 scalars

  const std::function<void(const std::vector<std::size_t>&, std::size_t)>
      assign = [&](const std::vector<std::size_t>& stmts, std::size_t depth) {
        std::map<long, i64> ordinal;  // construct key -> sibling index
        i64 next = 0;
        std::vector<std::pair<long, std::vector<std::size_t>>> groups;
        for (const std::size_t s : stmts) {
          const ir::Statement& st = scop.statement(s);
          const long key = st.dim() > depth
                               ? static_cast<long>(st.loop_chain()[depth])
                               : -1 - static_cast<long>(s);
          if (ordinal.find(key) == ordinal.end()) {
            ordinal[key] = next++;
            groups.emplace_back(key, std::vector<std::size_t>{});
          }
          groups.back().second.push_back(s);
          PF_CHECK_MSG(groups.back().first == key,
                       "statements of one loop are not contiguous");
          scalar_rows[s].push_back(ordinal[key]);
        }
        for (const auto& [key, group] : groups) {
          if (key >= 0) assign(group, depth + 1);  // a loop: recurse inside
        }
      };
  {
    std::vector<std::size_t> all(n);
    for (std::size_t s = 0; s < n; ++s) all[s] = s;
    assign(all, 0);
  }

  for (std::size_t s = 0; s < n; ++s) {
    const ir::Statement& st = scop.statement(s);
    const std::size_t dims = st.dim() + scop.num_params();
    auto& rows = sch.rows[s];
    for (std::size_t level = 0; level < num_levels; ++level) {
      if (level % 2 == 0) {
        const std::size_t k = level / 2;
        const i64 v =
            k < scalar_rows[s].size() ? scalar_rows[s][k] : 0;
        rows.push_back(poly::AffineExpr::constant(dims, v));
      } else {
        const std::size_t k = level / 2;
        rows.push_back(k < st.dim()
                           ? poly::AffineExpr::var(dims, k)
                           : poly::AffineExpr::constant(dims, 0));
      }
    }
  }
  return sch;
}

void annotate_dependences(Schedule& sch, const ddg::DependenceGraph& dg,
                          const lp::IlpOptions& options) {
  // Must-complete region: a conservative integer_min here would report a
  // dependence as never satisfied and fail the final legality check, so
  // annotation always runs exact (it is polynomial in practice).
  support::BudgetSuspend budget_suspend;
  const std::size_t nd = dg.deps().size();
  sch.satisfied_at.assign(nd, SIZE_MAX);
  sch.dep_endpoints.clear();
  sch.carried_at.assign(sch.num_levels(), {});
  for (const ddg::Dependence& d : dg.deps())
    sch.dep_endpoints.emplace_back(d.src, d.dst);

  for (std::size_t i = 0; i < nd; ++i) {
    const ddg::Dependence& d = dg.deps()[i];
    for (std::size_t l = 0; l < sch.num_levels(); ++l) {
      const poly::AffineExpr diff =
          d.lift_dst(sch.rows[d.dst][l]) - d.lift_src(sch.rows[d.src][l]);
      const auto mn = d.poly.integer_min(diff, options);
      PF_CHECK_MSG(mn.kind != poly::IntegerSet::Opt::kUnbounded &&
                       (mn.kind != poly::IntegerSet::Opt::kOk || mn.value >= 0),
                   "illegal schedule: dependence "
                       << dg.scop().statement(d.src).name() << " -> "
                       << dg.scop().statement(d.dst).name()
                       << " violated at level " << l);
      const auto mx = d.poly.integer_max(diff, options);
      const bool carried = mx.kind == poly::IntegerSet::Opt::kUnbounded ||
                           mx.kind == poly::IntegerSet::Opt::kUnknown ||
                           (mx.kind == poly::IntegerSet::Opt::kOk &&
                            mx.value >= 1);
      if (carried) sch.carried_at[l].push_back(i);
      // kEmpty: a vacuous polyhedron (possible for budget-assumed deps
      // that are in truth empty) constrains nothing -- satisfied.
      if (mn.kind == poly::IntegerSet::Opt::kEmpty ||
          (mn.kind == poly::IntegerSet::Opt::kOk && mn.value >= 1)) {
        sch.satisfied_at[i] = l;
        break;
      }
    }
    PF_CHECK_MSG(sch.satisfied_at[i] != SIZE_MAX,
                 "illegal schedule: dependence never satisfied");
  }
}

std::vector<std::size_t> permutable_bands(const Schedule& sch,
                                          const ddg::DependenceGraph& dg,
                                          const lp::IlpOptions& options) {
  // Must-complete, like annotate_dependences: band detection is a
  // *checker* over the final schedule, not search work.
  support::BudgetSuspend budget_suspend;
  PF_CHECK_MSG(sch.satisfied_at.size() == dg.deps().size(),
               "schedule lacks dependence annotations (run the scheduler or "
               "annotate_dependences first)");
  std::vector<std::size_t> linear_levels;
  for (std::size_t l = 0; l < sch.num_levels(); ++l)
    if (sch.level_linear[l]) linear_levels.push_back(l);

  std::vector<std::size_t> band(linear_levels.size(), 0);
  std::size_t cur = 0;
  std::size_t band_start = 0;  // ordinal of the current band's first level
  for (std::size_t k = 1; k < linear_levels.size(); ++k) {
    bool brk = linear_levels[k] != linear_levels[k - 1] + 1;
    if (!brk) {
      // Any dependence satisfied inside the band so far must stay
      // non-negative at this deeper level.
      for (std::size_t i = 0; i < dg.deps().size() && !brk; ++i) {
        const std::size_t sat = sch.satisfied_at[i];
        if (sat < linear_levels[band_start] || sat >= linear_levels[k])
          continue;
        if (!sch.level_linear[sat]) continue;
        const ddg::Dependence& d = dg.deps()[i];
        const poly::AffineExpr diff =
            d.lift_dst(sch.rows[d.dst][linear_levels[k]]) -
            d.lift_src(sch.rows[d.src][linear_levels[k]]);
        const auto mn = d.poly.integer_min(diff, options);
        brk = !(mn.kind == poly::IntegerSet::Opt::kOk && mn.value >= 0) &&
              mn.kind != poly::IntegerSet::Opt::kEmpty;
      }
    }
    if (brk) {
      ++cur;
      band_start = k;
    }
    band[k] = cur;
  }
  return band;
}

}  // namespace pf::sched
