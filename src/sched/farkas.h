// The affine form of Farkas' lemma, used to linearize universally
// quantified legality/bounding conditions into constraints on schedule
// coefficients.
//
// Given a polyhedron P (over x) and an affine form E(x) whose coefficients
// are themselves affine in a vector of unknowns y (schedule coefficients,
// cost variables), the condition
//
//   E(x) >= 0   for all x in P
//
// holds iff E can be written as a non-negative combination of P's
// constraints: E(x) === l0 + sum_k l_k * C_k(x), l >= 0. Equating
// coefficients of each x dimension and the constant yields equalities over
// (y, l); Fourier-Motzkin elimination of the multipliers l leaves the
// desired constraints over y alone. This is exactly Pluto's construction
// (Bondhugula et al., CC'08).
#pragma once

#include <vector>

#include "poly/set.h"

namespace pf::sched {

/// An affine form in the unknown vector y: coeffs . y + constant.
struct ParamAffine {
  IntVector coeffs;
  i64 constant = 0;

  explicit ParamAffine(std::size_t num_unknowns, i64 cst = 0)
      : coeffs(num_unknowns, 0), constant(cst) {}
};

/// Constraints on y equivalent (over the rationals) to
///   (sum_d coeff_of_x[d](y) * x_d) + const_term(y) >= 0  for all x in P.
///
/// P must be non-empty (callers pass dependence polyhedra, which are
/// non-empty by construction). Equalities in P are handled as multiplier
/// pairs (split into two inequalities).
std::vector<poly::Constraint> farkas_constraints(
    const poly::IntegerSet& p, const std::vector<ParamAffine>& coeff_of_x,
    const ParamAffine& const_term, std::size_t num_unknowns);

}  // namespace pf::sched
