// Pluto-style affine scheduler (Bondhugula et al. [9,10]) with pluggable
// fusion policies.
//
// Level by level, an ILP over all statements' schedule coefficients
// (non-negative, bounded) searches for legal hyperplanes that minimize the
// dependence-distance bound u.n + w (the communication-volume / reuse-
// distance cost function), subject to
//   * Farkas-linearized legality:   phi_dst(t) - phi_src(s) >= 0 on P_e,
//   * Farkas-linearized bounding:   u.n + w - (phi_dst - phi_src) >= 0,
//   * linear independence with already-found rows (orthogonal-complement
//     heuristic, like Pluto's),
// for every not-yet-satisfied real dependence. When the ILP is infeasible
// a scalar dimension (fusion cut) is inserted; *which* cut is the fusion
// policy's decision -- that is where wisefuse/smartfuse/nofuse/maxfuse
// differ. Policies may also enable the paper's Algorithm 2, which rejects
// outermost hyperplanes that carry an inter-SCC forward dependence and
// cuts precisely between the offending SCCs instead.
//
// Known restriction (same as Pluto's): coefficients are non-negative, so
// loop reversal is not found; none of the paper's benchmarks needs it.
#pragma once

#include "ddg/dependences.h"
#include "sched/policy.h"
#include "sched/schedule.h"

namespace pf::sched {

struct SchedulerOptions {
  /// Bound on iterator coefficients of a hyperplane.
  i64 coeff_bound = 4;
  /// Bound on the constant (shift) part of a hyperplane.
  i64 shift_bound = 20;
  /// Bounds on the cost variables u (per parameter) and w.
  i64 u_bound = 20;
  i64 w_bound = 100;
  lp::IlpOptions ilp;
  /// Hard cap on schedule levels (guards against policy bugs).
  std::size_t max_levels = 64;
  /// Print per-level decisions (found hyperplane / cut) to stderr.
  bool trace = false;
  /// Reduction self-dependences the scheduler may ignore during the
  /// hyperplane search (from analysis::analyze_reductions; see
  /// docs/reductions.md). Each is marked satisfied before the first
  /// level, so it contributes no legality constraint and triggers no
  /// cut; the resulting Schedule records it in relaxed_deps and enters
  /// it into carried_at with race semantics. Empty (the default) keeps
  /// the classic behavior, as does `--no-reductions`.
  std::vector<ir::ReductionDep> relaxed_deps;
};

/// Run the scheduler. Throws pf::Error if no legal schedule exists within
/// the non-negative-coefficient restriction (which cannot happen for
/// programs whose original execution order is itself expressible, i.e. all
/// PolyLang programs).
Schedule compute_schedule(const ir::Scop& scop,
                          const ddg::DependenceGraph& dg, FusionPolicy& policy,
                          const SchedulerOptions& options = {});

}  // namespace pf::sched
