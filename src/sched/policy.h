// FusionPolicy: the scheduler's pluggable cost model for fusion.
//
// The Pluto-style scheduler (pluto.h) is policy-agnostic; everything the
// paper varies between fusion models is behind this interface:
//  * the pre-fusion schedule (the ordering of SCCs -- paper Section 4.1),
//  * the initial cut, if any (nofuse distributes everything up front),
//  * the cut issued when the hyperplane ILP is infeasible,
//  * whether Algorithm 2 (outer-parallelism enforcement) runs.
//
// Concrete policies (wisefuse, smartfuse, nofuse, maxfuse) live in
// src/fusion. Cut values are expressed per *position* in the pre-fusion
// order and must be non-decreasing, which keeps scalar dimensions legal
// because every pre-fusion order respects the precedence constraint.
#pragma once

#include <string>
#include <vector>

#include "ddg/dependences.h"
#include "ir/scop.h"

namespace pf::sched {

/// Everything a policy may inspect when deciding a cut.
struct CutContext {
  const ir::Scop* scop = nullptr;
  const ddg::DependenceGraph* dg = nullptr;
  const ddg::SccResult* sccs = nullptr;
  /// Pre-fusion order: position -> scc id.
  const std::vector<std::size_t>* order = nullptr;
  /// Max statement dimensionality per scc id.
  const std::vector<std::size_t>* scc_dim = nullptr;
  /// Indices (into dg->deps()) of still-unsatisfied dependences.
  const std::vector<std::size_t>* active_deps = nullptr;
  /// Current scalar-prefix partition value tuple per statement.
  const std::vector<std::vector<i64>>* scalar_prefix = nullptr;
};

class FusionPolicy {
 public:
  virtual ~FusionPolicy() = default;

  virtual std::string name() const = 0;

  /// The pre-fusion schedule: a permutation of SCC ids (as produced by
  /// DependenceGraph::sccs(), whose ids are already topological) giving
  /// their intended execution order. Must respect precedence.
  virtual std::vector<std::size_t> prefusion_order(
      const ir::Scop& scop, const ddg::DependenceGraph& dg,
      const ddg::SccResult& sccs) = 0;

  /// Partition values (per position in the pre-fusion order) applied as a
  /// scalar dimension before any hyperplane is searched; empty = none.
  virtual std::vector<i64> initial_cut(const CutContext&) { return {}; }

  /// Partition values applied when the hyperplane ILP is infeasible.
  /// Non-decreasing per position. The scheduler escalates to a full cut
  /// if the returned cut fails to satisfy any active dependence.
  virtual std::vector<i64> cut_on_infeasible(const CutContext& ctx) = 0;

  /// Algorithm 2: when true, the scheduler refuses outermost hyperplanes
  /// that carry an inter-SCC forward dependence, cutting precisely between
  /// the offending SCCs and re-solving.
  virtual bool enforce_outer_parallelism() const { return false; }
};

// Reusable cut recipes ------------------------------------------------------

/// One partition per position: full distribution.
std::vector<i64> cut_all(std::size_t num_positions);

/// Split at boundaries where consecutive SCCs (in pre-fusion order) have
/// different dimensionality (Pluto's dimensionality-based cut).
std::vector<i64> cut_dim_based(const CutContext& ctx);

/// Split at one boundary: positions [0, boundary) vs [boundary, end).
std::vector<i64> cut_at_boundary(std::size_t num_positions,
                                 std::size_t boundary);

}  // namespace pf::sched
