// The result of polyhedral scheduling: a statement-wise multi-dimensional
// affine function (the paper's T_S, Figure 3), plus the dependence
// bookkeeping needed to classify loops and reason about parallelism.
//
// Levels are global: level k is either scalar for every statement (a
// fusion-partitioning dimension; each statement has a constant value) or
// linear (a loop hyperplane; statements that already reached full rank may
// carry a constant row at a linear level, meaning they execute at exactly
// that iteration of the fused loop).
#pragma once

#include <string>
#include <vector>

#include "ddg/dependences.h"
#include "ir/reduction.h"
#include "ir/scop.h"

namespace pf::sched {

struct Schedule {
  const ir::Scop* scop = nullptr;

  /// rows[stmt][level]: affine over that statement's [iterators, params].
  std::vector<std::vector<poly::AffineExpr>> rows;
  /// level_linear[level]: loop hyperplane (true) or scalar dimension.
  std::vector<bool> level_linear;

  /// Per real dependence (index into DependenceGraph::deps()): the level
  /// that strongly satisfied it (min phi-diff >= 1), or SIZE_MAX.
  std::vector<std::size_t> satisfied_at;
  /// Per real dependence: (src stmt, dst stmt) -- copied from the DDG so
  /// the schedule is self-contained for parallelism queries.
  std::vector<std::pair<std::size_t, std::size_t>> dep_endpoints;
  /// carried_at[level]: real-dep indices with max phi-diff >= 1 at that
  /// level among deps still active when the level was found. A loop level
  /// is parallel for a statement group iff no carried dep has both
  /// endpoints in the group.
  std::vector<std::vector<std::size_t>> carried_at;

  /// Pre-fusion metadata (for Figure 5/8-style reporting): SCC id per
  /// statement (topological ids) and the pre-fusion order (position ->
  /// scc id) chosen by the fusion policy.
  std::vector<int> scc_of_stmt;
  std::vector<std::size_t> prefusion_order;

  /// Reduction self-dependences the scheduler was allowed to ignore
  /// (SchedulerOptions::relaxed_deps), sorted by dep_id. A relaxed dep
  /// keeps satisfied_at == SIZE_MAX but IS entered into carried_at with
  /// race semantics (tied prefix, distance != 0 either sign), so
  /// is_parallel_for stays sound: a loop that is sequential only because
  /// of relaxed deps reads as non-parallel here, and codegen upgrades it
  /// to a reduction-parallel loop with the matching OpenMP clause. The
  /// verifier re-proves every entry (verify/reductions.cpp) -- these are
  /// the analysis pass's claims, not trusted facts.
  std::vector<ir::ReductionDep> relaxed_deps;

  /// True iff `dep` is one of relaxed_deps (binary search by dep_id).
  bool is_relaxed_dep(std::size_t dep) const;

  std::size_t num_levels() const { return level_linear.size(); }
  std::size_t num_statements() const { return rows.size(); }

  /// Outermost fusion partition per statement: statements share a value
  /// iff they agree on every scalar level preceding the first linear
  /// level (i.e. they live in the same outermost loop nest). Partition
  /// ids are dense, in execution order.
  std::vector<int> outer_partitions() const;

  /// True iff linear level `level` is a parallel loop for the statement
  /// subset (no carried dependence within the subset at that level).
  bool is_parallel_for(const std::vector<std::size_t>& stmts,
                       std::size_t level) const;

  /// Innermost fusion partition per statement: statements share a value
  /// iff they agree on *every* scalar level, i.e. they end up perfectly
  /// fused in the same loop body. Ids are dense, in execution order.
  std::vector<int> leaf_partitions() const;

  /// Loop-nest partition per statement: like leaf_partitions() but
  /// ignoring trailing scalar levels after the last linear level (those
  /// only order statement bodies inside a fully shared nest).
  std::vector<int> nest_partitions() const;

  /// The statement's schedule as text, e.g. "T_S1 = (0, j, i)".
  std::string statement_to_string(std::size_t stmt) const;
  /// All statements (Figure 3 style).
  std::string to_string() const;
};

}  // namespace pf::sched
