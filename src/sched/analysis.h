// Schedule analyses that are independent of how the schedule was found:
//
//  * identity_schedule(): the original program order as a Schedule in
//    2d+1 form (scalar sibling positions interleaved with the original
//    loop iterators). This is the "icc-like baseline" schedule (the paper
//    observes the Intel compiler largely keeps the original order on the
//    large programs) and the reference executor used for validation.
//
//  * annotate_dependences(): (re)compute satisfaction levels and carried
//    sets for an arbitrary schedule -- exactly the bookkeeping the
//    scheduler produces for its own schedules -- so parallelism queries
//    work on hand-built or identity schedules too.
#pragma once

#include "ddg/dependences.h"
#include "sched/schedule.h"

namespace pf::sched {

/// Build the original-order schedule (2d+1 form, padded so every
/// statement has the same number of levels).
Schedule identity_schedule(const ir::Scop& scop);

/// Fill satisfied_at / carried_at / dep_endpoints for `sch` from scratch.
/// Throws if the schedule does not satisfy every real dependence (i.e. is
/// illegal).
void annotate_dependences(Schedule& sch, const ddg::DependenceGraph& dg,
                          const lp::IlpOptions& options = {});

/// Maximal permutable bands of the schedule's linear levels: returns one
/// band id per linear-level ordinal (outermost first). Two consecutive
/// linear levels share a band iff no scalar level separates them and every
/// dependence satisfied at a level inside the band keeps a non-negative
/// distance component at the deeper level -- the legality condition for
/// rectangular tiling (and for loop interchange within the band).
std::vector<std::size_t> permutable_bands(const Schedule& sch,
                                          const ddg::DependenceGraph& dg,
                                          const lp::IlpOptions& options = {});

}  // namespace pf::sched
