#include "sched/pluto.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <iostream>
#include <sstream>

#include "sched/analysis.h"
#include "sched/farkas.h"
#include "support/budget.h"
#include "support/stats.h"
#include "support/strings.h"
#include "support/trace.h"

namespace pf::sched {

namespace {

class Scheduler {
 public:
  Scheduler(const ir::Scop& scop, const ddg::DependenceGraph& dg,
            FusionPolicy& policy, const SchedulerOptions& opts)
      : scop_(scop), dg_(dg), policy_(policy), opts_(opts) {
    const std::size_t n = scop_.num_statements();
    const std::size_t p = scop_.num_params();

    // Unknown layout: [u_0..u_{p-1}, w, per stmt: c_0..c_{m-1}, c0].
    w_index_ = p;
    std::size_t next = p + 1;
    c_base_.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
      c_base_[s] = next;
      next += scop_.statement(s).dim() + 1;
    }
    num_unknowns_ = next;

    rows_.resize(n);
    h_.assign(n, IntMatrix());
    for (std::size_t s = 0; s < n; ++s)
      h_[s] = IntMatrix(0, scop_.statement(s).dim());
    scalar_prefix_.resize(n);

    satisfied_.assign(dg_.deps().size(), false);
    satisfied_at_.assign(dg_.deps().size(), SIZE_MAX);
    dep_constraints_.resize(dg_.deps().size());

    // Reduction relaxation (docs/reductions.md): a relaxed self-dep is
    // marked satisfied up front, so it never enters active_deps() -- no
    // Farkas legality row, no cut pressure, and the Algorithm-2
    // recurrence-isolation extension cannot fire on it. satisfied_at_
    // stays SIZE_MAX: the dep was *ignored*, not satisfied; run() adds
    // it to carried_at with race semantics instead.
    for (const ir::ReductionDep& rd : opts_.relaxed_deps) {
      PF_CHECK_MSG(rd.dep_id < dg_.deps().size() &&
                       dg_.deps()[rd.dep_id].src == rd.stmt &&
                       dg_.deps()[rd.dep_id].dst == rd.stmt,
                   "relaxed reduction dependence does not match the graph");
      support::budget_charge(support::BudgetSite::kAnalysisReductions);
      if (satisfied_[rd.dep_id]) continue;
      satisfied_[rd.dep_id] = true;
      if (support::Tracer::remarks_on())
        support::remark("reduction", "self-dependence relaxed for scheduling",
                        {{"dep", std::to_string(dg_.deps()[rd.dep_id].id)},
                         {"stmt", scop_.statement(rd.stmt).name()},
                         {"op", ir::to_string(rd.op)},
                         {"array", scop_.array(rd.array_id).name}});
    }

    // The policy's pre-fusion schedule, over the ORIGINAL SCCs of the DDG.
    orig_sccs_ = dg_.sccs();
    orig_order_ = policy_.prefusion_order(scop_, dg_, orig_sccs_);
    PF_CHECK_MSG(orig_order_.size() == orig_sccs_.num_sccs(),
                 "policy returned pre-fusion order of wrong size");
    std::vector<std::size_t> pos_of_scc(orig_order_.size());
    {
      std::vector<bool> seen(orig_order_.size(), false);
      for (std::size_t pos = 0; pos < orig_order_.size(); ++pos) {
        PF_CHECK_MSG(orig_order_[pos] < orig_order_.size() &&
                         !seen[orig_order_[pos]],
                     "pre-fusion order is not a permutation");
        seen[orig_order_[pos]] = true;
        pos_of_scc[orig_order_[pos]] = pos;
      }
    }
    stmt_pref_pos_.resize(n);
    for (std::size_t s = 0; s < n; ++s)
      stmt_pref_pos_[s] =
          pos_of_scc[static_cast<std::size_t>(orig_sccs_.scc_of[s])];
    // Validate precedence of the pre-fusion order.
    for (const ddg::Dependence& d : dg_.deps())
      PF_CHECK_MSG(stmt_pref_pos_[d.src] <= stmt_pref_pos_[d.dst],
                   "pre-fusion order of policy '"
                       << policy_.name()
                       << "' violates the precedence constraint");
  }

  Schedule run() {
    support::TraceSpan sched_span("sched", "compute_schedule");
    if (sched_span.active()) sched_span.attr("policy", policy_.name());
    refresh_current();
    {
      cut_reason_ = "initial";
      const std::vector<i64> init = policy_.initial_cut(make_cut_context());
      if (!init.empty()) apply_scalar_level(init);
    }

    while (level_linear_.size() < opts_.max_levels) {
      support::TraceSpan level_span("sched", "level");
      if (level_span.active())
        level_span.attr("level", static_cast<i64>(level_linear_.size()));
      const std::vector<std::size_t> active = active_deps();
      const bool full = all_full_rank();
      if (full && active.empty()) break;

      try {
      // One pluto_level operation per level (the --inject unit); the
      // Farkas/FME/ILP work below burns lp_solve and fme_project fuel.
      support::budget_op(support::BudgetSite::kPlutoLevel);
      support::budget_charge(support::BudgetSite::kPlutoLevel);

      if (!full) {
        auto hyperplane = find_hyperplane(active);
        if (opts_.trace) {
          std::cerr << "[sched] level " << level_linear_.size() << ": "
                    << (hyperplane ? "hyperplane" : "INFEASIBLE") << " ("
                    << active.size() << " active deps)";
          if (!hyperplane) {
            for (const std::size_t dep_idx : active) {
              const ddg::Dependence& d = dg_.deps()[dep_idx];
              std::cerr << " " << scop_.statement(d.src).name() << "->"
                        << scop_.statement(d.dst).name() << "/"
                        << ddg::to_string(d.kind) << "/d" << d.depth;
            }
          }
          if (hyperplane) {
            for (std::size_t s = 0; s < scop_.num_statements(); ++s)
              std::cerr << " "
                        << (*hyperplane)[s].to_string(
                               scop_.space_names(scop_.statement(s)));
          }
          std::cerr << "\n";
        }
        if (hyperplane) {
          if (policy_.enforce_outer_parallelism() && !seen_linear_level_ &&
              cut_for_outer_parallelism(active, *hyperplane))
            continue;  // hyperplane discarded; a scalar level was applied
          record_linear_level(active, std::move(*hyperplane));
          continue;
        }
      }

      // Infeasible (or full rank with unsatisfied deps): cut. SCCs are
      // recomputed over the *active* dependences (Pluto does the same),
      // so statements of an original SCC whose internal cycle is already
      // satisfied can now be distributed.
      refresh_current();
      cut_reason_ = full ? "full-rank-unsatisfied" : "ilp-infeasible";
      std::vector<i64> values = policy_.cut_on_infeasible(make_cut_context());
      if (count_satisfied_by(values, active) == 0)
        values = cut_all(cur_order_.size());
      if (count_satisfied_by(values, active) == 0) {
        std::ostringstream os;
        for (const std::size_t dep_idx : active) {
          const ddg::Dependence& d = dg_.deps()[dep_idx];
          os << " " << scop_.statement(d.src).name() << "->"
             << scop_.statement(d.dst).name() << "(" << ddg::to_string(d.kind)
             << ",depth" << d.depth << ")";
        }
        os << "; rows so far:";
        for (std::size_t s = 0; s < scop_.num_statements(); ++s) {
          os << " " << scop_.statement(s).name() << "=(";
          for (std::size_t l = 0; l < rows_[s].size(); ++l)
            os << (l ? "," : "")
               << rows_[s][l].to_string(scop_.space_names(scop_.statement(s)));
          os << ")";
        }
        PF_FAIL("stuck: active dependences within single SCCs cannot be "
                "satisfied by any hyperplane with non-negative coefficients "
                "(policy '"
                << policy_.name() << "'); active:" << os.str());
      }
      apply_scalar_level(values);
      } catch (const support::BudgetExceeded& e) {
        degrade_level(active, e);
      }
    }
    PF_CHECK_MSG(level_linear_.size() < opts_.max_levels,
                 "scheduler exceeded max_levels");

    Schedule out;
    out.scop = &scop_;
    out.rows = std::move(rows_);
    out.level_linear = std::move(level_linear_);
    out.satisfied_at = std::move(satisfied_at_);
    out.carried_at = std::move(carried_at_);
    for (const ddg::Dependence& d : dg_.deps())
      out.dep_endpoints.emplace_back(d.src, d.dst);
    out.scc_of_stmt = orig_sccs_.scc_of;
    out.prefusion_order = orig_order_;
    record_relaxed_carried(out);
    return out;
  }

  // A relaxed reduction dep was invisible to the level loop, so its
  // carried levels were never recorded. Recover them here with *race*
  // semantics -- at each linear level, tied at every earlier linear
  // level and distance != 0 in either sign (relaxation permits negative
  // distances, which ordinary satisfaction bookkeeping cannot
  // represent). This keeps is_parallel_for sound: a loop sequential only
  // modulo relaxed deps reads as non-parallel, and codegen is the one
  // layer that may upgrade it to reduction-parallel with a clause.
  void record_relaxed_carried(Schedule& out) {
    if (opts_.relaxed_deps.empty()) return;
    support::BudgetSuspend suspend;  // bookkeeping must complete
    out.relaxed_deps = opts_.relaxed_deps;
    std::sort(out.relaxed_deps.begin(), out.relaxed_deps.end(),
              [](const ir::ReductionDep& a, const ir::ReductionDep& b) {
                return a.dep_id < b.dep_id;
              });
    for (const ir::ReductionDep& rd : out.relaxed_deps) {
      const ddg::Dependence& d = dg_.deps()[rd.dep_id];
      poly::IntegerSet tied = d.poly;
      for (std::size_t l = 0; l < out.num_levels(); ++l) {
        if (!out.level_linear[l]) continue;  // src == dst: scalar delta is 0
        const poly::AffineExpr diff = d.lift_dst(out.rows[d.dst][l]) -
                                      d.lift_src(out.rows[d.src][l]);
        poly::IntegerSet fwd = tied;
        fwd.add_constraint(poly::Constraint::ge0(diff.plus_const(-1)));
        bool carried = !fwd.is_empty(opts_.ilp);
        if (!carried) {
          poly::IntegerSet bwd = tied;
          bwd.add_constraint(poly::Constraint::ge0((-diff).plus_const(-1)));
          carried = !bwd.is_empty(opts_.ilp);
        }
        if (carried) out.carried_at[l].push_back(rd.dep_id);
        tied.add_constraint(poly::Constraint::eq0(diff));
      }
    }
    for (std::vector<std::size_t>& level : out.carried_at)
      std::sort(level.begin(), level.end());
  }

 private:
  // --- current (active-dependence) SCC structure -----------------------------

  // Budget recovery boundary for one scheduling level: fall back to a
  // scalar cut of the original statement order (always legal -- it
  // satisfies every remaining dependence it separates). Rethrows when
  // even that makes no progress; compute_schedule then degrades the
  // whole schedule to the identity order.
  void degrade_level(const std::vector<std::size_t>& active,
                     const support::BudgetExceeded& e) {
    support::BudgetSuspend suspend;  // the fallback itself must complete
    refresh_current();
    cut_reason_ = e.cause();
    const std::vector<i64> values = cut_all(cur_order_.size());
    if (count_satisfied_by(values, active) == 0) throw;
    support::count(support::Counter::kBudgetDowngrades);
    support::remark("budget", "pluto level degraded to scalar cut",
                    {{"level", std::to_string(level_linear_.size())},
                     {"site", e.site_name()},
                     {"cause", e.cause()},
                     {"policy", policy_.name()}});
    apply_scalar_level(values);
  }

  void refresh_current() {
    const std::size_t n = scop_.num_statements();
    std::vector<ddg::Edge> edges;
    for (std::size_t i = 0; i < satisfied_.size(); ++i) {
      if (satisfied_[i]) continue;
      const ddg::Dependence& d = dg_.deps()[i];
      edges.emplace_back(d.src, d.dst);
    }
    cur_sccs_ = ddg::kosaraju_sccs(n, edges);
    const auto cedges = ddg::condensation_edges(cur_sccs_, edges);
    std::vector<std::size_t> prio(cur_sccs_.num_sccs(), SIZE_MAX);
    for (std::size_t s = 0; s < n; ++s) {
      auto& p = prio[static_cast<std::size_t>(cur_sccs_.scc_of[s])];
      p = std::min(p, stmt_pref_pos_[s]);
    }
    cur_order_ = ddg::topological_order_by_priority(cur_sccs_.num_sccs(),
                                                    cedges, prio);
    cur_pos_of_scc_.assign(cur_order_.size(), 0);
    for (std::size_t pos = 0; pos < cur_order_.size(); ++pos)
      cur_pos_of_scc_[cur_order_[pos]] = pos;
    cur_scc_dim_.assign(cur_sccs_.num_sccs(), 0);
    for (std::size_t s = 0; s < n; ++s) {
      auto& d = cur_scc_dim_[static_cast<std::size_t>(cur_sccs_.scc_of[s])];
      d = std::max(d, scop_.statement(s).dim());
    }
  }

  std::size_t cur_pos_of_stmt(std::size_t s) const {
    return cur_pos_of_scc_[static_cast<std::size_t>(cur_sccs_.scc_of[s])];
  }

  CutContext make_cut_context() {
    CutContext ctx;
    ctx.scop = &scop_;
    ctx.dg = &dg_;
    ctx.sccs = &cur_sccs_;
    ctx.order = &cur_order_;
    ctx.scc_dim = &cur_scc_dim_;
    active_cache_ = active_deps();
    ctx.active_deps = &active_cache_;
    ctx.scalar_prefix = &scalar_prefix_;
    return ctx;
  }

  bool all_full_rank() const {
    for (std::size_t s = 0; s < scop_.num_statements(); ++s)
      if (h_[s].rows() < scop_.statement(s).dim()) return false;
    return true;
  }

  std::vector<std::size_t> active_deps() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < satisfied_.size(); ++i)
      if (!satisfied_[i]) out.push_back(i);
    return out;
  }

  // Farkas-linearized legality + bounding constraints of one dependence,
  // over the unknown vector; computed once and cached.
  const std::vector<poly::Constraint>& constraints_for(std::size_t dep_idx) {
    auto& cached = dep_constraints_[dep_idx];
    if (cached) return *cached;
    const ddg::Dependence& d = dg_.deps()[dep_idx];
    const std::size_t ms = d.src_dim, mt = d.dst_dim, p = d.num_params;

    // Legality E1 = phi_dst(t) - phi_src(s).
    std::vector<ParamAffine> e1(ms + mt + p, ParamAffine(num_unknowns_));
    for (std::size_t k = 0; k < ms; ++k)
      e1[k].coeffs[c_base_[d.src] + k] = -1;
    for (std::size_t k = 0; k < mt; ++k)
      e1[ms + k].coeffs[c_base_[d.dst] + k] = 1;
    ParamAffine e1c(num_unknowns_);
    e1c.coeffs[c_base_[d.dst] + mt] += 1;   // c0_dst
    e1c.coeffs[c_base_[d.src] + ms] += -1;  // c0_src
    auto legality = farkas_constraints(d.poly, e1, e1c, num_unknowns_);

    // Bounding E2 = u.n + w - E1.
    std::vector<ParamAffine> e2(ms + mt + p, ParamAffine(num_unknowns_));
    for (std::size_t k = 0; k < ms; ++k)
      e2[k].coeffs[c_base_[d.src] + k] = 1;
    for (std::size_t k = 0; k < mt; ++k)
      e2[ms + k].coeffs[c_base_[d.dst] + k] = -1;
    for (std::size_t q = 0; q < p; ++q) e2[ms + mt + q].coeffs[q] = 1;
    ParamAffine e2c(num_unknowns_);
    e2c.coeffs[w_index_] = 1;
    e2c.coeffs[c_base_[d.dst] + mt] += -1;
    e2c.coeffs[c_base_[d.src] + ms] += 1;
    auto bounding = farkas_constraints(d.poly, e2, e2c, num_unknowns_);

    // Drop redundancy within this dependence's system to keep the ILP
    // small.
    poly::IntegerSet sys(num_unknowns_);
    for (auto& c : legality) sys.add_constraint(std::move(c));
    for (auto& c : bounding) sys.add_constraint(std::move(c));
    sys.remove_redundant();
    cached = sys.constraints();
    return *cached;
  }

  // The linear-independence condition ("the new row has a nonzero
  // component in the orthogonal complement of the rows found so far") is a
  // disjunction; Pluto's encoding keeps only one branch, sum(M c) >= 1,
  // whose sign depends on the arbitrary orientation of the null-space
  // basis and can contradict legality (e.g. legality forcing c1 >= 4*c2
  // while the complement row came out as (-1, 4)). We first try the
  // default orientation, then enumerate per-statement sign flips (fewest
  // flips first) before giving up.
  std::optional<std::vector<poly::AffineExpr>> find_hyperplane(
      const std::vector<std::size_t>& active) {
    std::vector<std::size_t> unfinished;
    for (std::size_t s = 0; s < scop_.num_statements(); ++s)
      if (h_[s].rows() < scop_.statement(s).dim()) unfinished.push_back(s);

    const std::size_t k = unfinished.size();
    std::vector<std::uint64_t> combos;
    if (k <= 6) {
      for (std::uint64_t c = 0; c < (std::uint64_t{1} << k); ++c)
        combos.push_back(c);
      std::stable_sort(combos.begin(), combos.end(),
                       [](std::uint64_t a, std::uint64_t b) {
                         return __builtin_popcountll(a) <
                                __builtin_popcountll(b);
                       });
    } else {
      combos.push_back(0);                              // default
      for (std::size_t i = 0; i < k; ++i)
        combos.push_back(std::uint64_t{1} << i);        // single flips
      combos.push_back((std::uint64_t{1} << k) - 1);    // all flipped
    }
    bool first = true;
    for (const std::uint64_t combo : combos) {
      std::vector<int> sign(scop_.num_statements(), +1);
      for (std::size_t i = 0; i < k; ++i)
        if ((combo >> i) & 1) sign[unfinished[i]] = -1;
      if (auto hp = find_hyperplane_signed(active, sign)) return hp;
      if (first) {
        // Cheap triage: if the system is infeasible even *without* any
        // independence constraint (sign 0 = omit), the dependences
        // themselves are the blocker and a cut is needed -- skip the
        // sign enumeration.
        first = false;
        const std::vector<int> none(scop_.num_statements(), 0);
        if (!find_hyperplane_signed(active, none)) return std::nullopt;
      }
    }
    return std::nullopt;
  }

  std::optional<std::vector<poly::AffineExpr>> find_hyperplane_signed(
      const std::vector<std::size_t>& active, const std::vector<int>& sign) {
    lp::IlpProblem ilp = lp::IlpProblem::all_nonneg(num_unknowns_);
    // Bounds.
    const std::size_t p = scop_.num_params();
    for (std::size_t q = 0; q < p; ++q) ilp.add_upper_bound(q, opts_.u_bound);
    ilp.add_upper_bound(w_index_, opts_.w_bound);
    for (std::size_t s = 0; s < scop_.num_statements(); ++s) {
      const std::size_t m = scop_.statement(s).dim();
      for (std::size_t k = 0; k < m; ++k)
        ilp.add_upper_bound(c_base_[s] + k, opts_.coeff_bound);
      ilp.add_upper_bound(c_base_[s] + m, opts_.shift_bound);
    }
    // Dependence constraints, deduplicated across dependences (different
    // depth cases of one access pair often linearize identically).
    {
      std::set<std::pair<std::vector<i64>, std::pair<i64, bool>>> seen;
      for (const std::size_t dep_idx : active) {
        for (const poly::Constraint& c : constraints_for(dep_idx)) {
          if (!seen
                   .emplace(c.expr.coeffs(),
                            std::make_pair(c.expr.const_term(), c.is_equality))
                   .second)
            continue;
          if (c.is_equality)
            ilp.add_equality(c.expr.coeffs(), c.expr.const_term());
          else
            ilp.add_inequality(c.expr.coeffs(), c.expr.const_term());
        }
      }
    }
    // Linear independence for unfinished statements (sign[s] == 0 omits
    // the constraint -- used only for the infeasibility triage; a zero
    // row returned in that mode is rejected below).
    for (std::size_t s = 0; s < scop_.num_statements(); ++s) {
      const std::size_t m = scop_.statement(s).dim();
      if (h_[s].rows() >= m) continue;  // finished (or 0-dim)
      if (sign[s] == 0) continue;
      const IntMatrix comp = orthogonal_complement_rows(h_[s]);
      PF_CHECK(comp.rows() > 0);
      IntVector row(num_unknowns_, 0);
      for (std::size_t j = 0; j < comp.rows(); ++j)
        for (std::size_t k = 0; k < m; ++k)
          row[c_base_[s] + k] = checked_add(
              row[c_base_[s] + k], checked_mul(sign[s], comp(j, k)));
      ilp.add_inequality(std::move(row), -1);  // sign * sum >= 1
    }

    // Lexicographic objective: sum(u), then w, then all coefficients,
    // then a tie-break preferring earlier original iterators (so a free
    // choice keeps the source loop order and its spatial locality --
    // row-major innermost stride stays innermost).
    IntVector obj_u(num_unknowns_, 0), obj_w(num_unknowns_, 0),
        obj_c(num_unknowns_, 0), obj_order(num_unknowns_, 0);
    for (std::size_t q = 0; q < p; ++q) obj_u[q] = 1;
    obj_w[w_index_] = 1;
    for (std::size_t s = 0; s < scop_.num_statements(); ++s) {
      const std::size_t m = scop_.statement(s).dim();
      for (std::size_t k = 0; k <= m; ++k) obj_c[c_base_[s] + k] = 1;
      for (std::size_t k = 0; k < m; ++k)
        obj_order[c_base_[s] + k] = static_cast<i64>(k);
    }
    const lp::IlpResult r =
        ilp.lexmin({obj_u, obj_w, obj_c, obj_order}, opts_.ilp,
                   warm_point_ ? &*warm_point_ : nullptr);
    if (r.status != lp::IlpStatus::kOptimal) {
      if (opts_.trace)
        std::cerr << "[sched] lexmin status: " << lp::to_string(r.status)
                  << "\nILP:\n" << ilp.to_string();
      return std::nullopt;
    }
    warm_point_ = r.point;

    // Remember the winning Farkas objective (communication-volume bound
    // u.n + w) for the hyperplane's decision remark.
    last_u_sum_ = 0;
    for (std::size_t q = 0; q < p; ++q)
      last_u_sum_ = checked_add(last_u_sum_, r.point[q]);
    last_w_ = r.point[w_index_];

    std::vector<poly::AffineExpr> hp;
    for (std::size_t s = 0; s < scop_.num_statements(); ++s) {
      const ir::Statement& st = scop_.statement(s);
      const std::size_t m = st.dim();
      poly::AffineExpr row(m + scop_.num_params(), r.point[c_base_[s] + m]);
      for (std::size_t k = 0; k < m; ++k)
        row.set_coeff(k, r.point[c_base_[s] + k]);
      hp.push_back(std::move(row));
    }
    return hp;
  }

  // phi_dst - phi_src over the dependence polyhedron.
  poly::AffineExpr phi_diff(const ddg::Dependence& d,
                            const std::vector<poly::AffineExpr>& rows) const {
    return d.lift_dst(rows[d.dst]) - d.lift_src(rows[d.src]);
  }

  // Algorithm 2 (paper Section 4.2): at the outermost linear level, if the
  // found hyperplane carries a forward dependence between two different
  // (current) SCCs, cut precisely between those SCCs and report true
  // (hyperplane discarded).
  bool cut_for_outer_parallelism(const std::vector<std::size_t>& active,
                                 const std::vector<poly::AffineExpr>& hp) {
    refresh_current();
    // The paper's Algorithm 2 distributes one offending SCC pair per
    // iteration (cut, discard hyperplane, re-solve). An SCC pair is
    // offending iff
    //   (a) the found hyperplane carries some dependence of the pair
    //       (phi-diff max >= 1: the loop would be a forward-dependence,
    //       i.e. pipelined, loop), and
    //   (b) some dependence of the pair has *intrinsic* nonzero distance
    //       along this hyperplane direction (the shift-free phi-diff is
    //       not identically zero).
    // Without (b), staggered shifts of an unrelated legality fix would
    // make plain loop-independent dependences look carried and the pass
    // would over-distribute.
    struct PairState {
      bool carried = false;
      bool intrinsic = false;
    };
    std::map<std::pair<std::size_t, std::size_t>, PairState> pairs;
    for (const std::size_t dep_idx : active) {
      const ddg::Dependence& d = dg_.deps()[dep_idx];
      const std::size_t scc_s =
          static_cast<std::size_t>(cur_sccs_.scc_of[d.src]);
      const std::size_t scc_t =
          static_cast<std::size_t>(cur_sccs_.scc_of[d.dst]);
      if (scc_s == scc_t) continue;  // cannot distribute within an SCC
      PairState& st = pairs[{cur_pos_of_scc_[scc_s], cur_pos_of_scc_[scc_t]}];

      if (!st.carried) {
        const auto mx = d.poly.integer_max(phi_diff(d, hp), opts_.ilp);
        st.carried = mx.kind == poly::IntegerSet::Opt::kUnbounded ||
                     mx.kind == poly::IntegerSet::Opt::kUnknown ||
                     (mx.kind == poly::IntegerSet::Opt::kOk && mx.value >= 1);
      }
      if (!st.intrinsic) {
        poly::AffineExpr src_row = hp[d.src];
        poly::AffineExpr dst_row = hp[d.dst];
        src_row.set_const_term(0);
        dst_row.set_const_term(0);
        const poly::AffineExpr diff =
            d.lift_dst(dst_row) - d.lift_src(src_row);
        const auto mn = d.poly.integer_min(diff, opts_.ilp);
        const auto mx = d.poly.integer_max(diff, opts_.ilp);
        const bool both_zero = mn.kind == poly::IntegerSet::Opt::kOk &&
                               mn.value == 0 &&
                               mx.kind == poly::IntegerSet::Opt::kOk &&
                               mx.value == 0;
        st.intrinsic = !both_zero;
      }
    }
    for (const auto& [pair_pos, st] : pairs) {
      if (!st.carried || !st.intrinsic) continue;
      const std::size_t pos_t = pair_pos.second;
      PF_CHECK(pair_pos.first < pos_t);
      support::remark(
          "sched", "hyperplane sacrificed for outer parallelism",
          {{"scc_pos_src", std::to_string(pair_pos.first)},
           {"scc_pos_dst", std::to_string(pos_t)},
           {"parallelism", "preserved-by-distribution"}});
      cut_reason_ = "outer-parallelism";
      std::vector<i64> values(cur_order_.size(), 0);
      for (std::size_t pos = pos_t; pos < cur_order_.size(); ++pos)
        values[pos] = 1;
      apply_scalar_level(values);
      return true;
    }

    // Extension in the same spirit: an SCC whose *internal* dependence
    // (e.g. a reduction recurrence) is carried by the fused outermost
    // hyperplane serializes every statement fused with it. Distribution
    // cannot remove the recurrence, but isolating the SCC frees its own
    // hyperplane choice (a reduction can run its parallel dimension
    // outermost once its alignment constraints to neighbors are satisfied
    // by the cut) and keeps the rest of the partition coarse-grained
    // parallel. Only fires when the SCC actually shares a partition.
    for (const std::size_t dep_idx : active) {
      const ddg::Dependence& d = dg_.deps()[dep_idx];
      const std::size_t scc_s =
          static_cast<std::size_t>(cur_sccs_.scc_of[d.src]);
      if (static_cast<std::size_t>(cur_sccs_.scc_of[d.dst]) != scc_s)
        continue;
      // Shares a partition with another SCC?
      bool shared = false;
      for (std::size_t other = 0; other < scop_.num_statements() && !shared;
           ++other) {
        if (static_cast<std::size_t>(cur_sccs_.scc_of[other]) == scc_s)
          continue;
        shared = scalar_prefix_[other] == scalar_prefix_[d.src];
      }
      if (!shared) continue;
      const auto mx = d.poly.integer_max(phi_diff(d, hp), opts_.ilp);
      const bool carried = mx.kind == poly::IntegerSet::Opt::kUnbounded ||
                           mx.kind == poly::IntegerSet::Opt::kUnknown ||
                           (mx.kind == poly::IntegerSet::Opt::kOk &&
                            mx.value >= 1);
      if (!carried) continue;
      support::remark(
          "sched", "recurrence SCC isolated from fused partition",
          {{"scc_pos", std::to_string(cur_pos_of_scc_[scc_s])},
           {"parallelism", "preserved-for-neighbors"}});
      cut_reason_ = "recurrence-isolation";
      // Isolate the SCC: [0..pos) -> 0, pos -> 1, (pos..end) -> 2.
      const std::size_t pos = cur_pos_of_scc_[scc_s];
      std::vector<i64> values(cur_order_.size(), 0);
      for (std::size_t q = 0; q < cur_order_.size(); ++q)
        values[q] = q < pos ? 0 : (q == pos ? 1 : 2);
      apply_scalar_level(values);
      return true;
    }
    return false;
  }

  std::size_t count_satisfied_by(const std::vector<i64>& values,
                                 const std::vector<std::size_t>& active) const {
    PF_CHECK(values.size() == cur_order_.size());
    std::size_t count = 0;
    for (const std::size_t dep_idx : active) {
      const ddg::Dependence& d = dg_.deps()[dep_idx];
      const i64 vs = values[cur_pos_of_stmt(d.src)];
      const i64 vt = values[cur_pos_of_stmt(d.dst)];
      PF_CHECK_MSG(vs <= vt, "cut values violate precedence");
      if (vs < vt) ++count;
    }
    return count;
  }

  void apply_scalar_level(const std::vector<i64>& values) {
    PF_CHECK(values.size() == cur_order_.size());
    for (std::size_t pos = 1; pos < values.size(); ++pos)
      PF_CHECK_MSG(values[pos - 1] <= values[pos],
                   "cut values must be non-decreasing in pre-fusion order");
    const std::size_t level = level_linear_.size();
    for (std::size_t s = 0; s < scop_.num_statements(); ++s) {
      const ir::Statement& st = scop_.statement(s);
      const i64 v = values[cur_pos_of_stmt(s)];
      rows_[s].push_back(
          poly::AffineExpr::constant(st.dim() + scop_.num_params(), v));
      scalar_prefix_[s].push_back(v);
    }
    std::size_t newly_satisfied = 0;
    for (std::size_t i = 0; i < satisfied_.size(); ++i) {
      if (satisfied_[i]) continue;
      const ddg::Dependence& d = dg_.deps()[i];
      const i64 vs = values[cur_pos_of_stmt(d.src)];
      const i64 vt = values[cur_pos_of_stmt(d.dst)];
      if (vs < vt) {
        satisfied_[i] = true;
        satisfied_at_[i] = level;
        ++newly_satisfied;
      }
    }
    level_linear_.push_back(false);
    carried_at_.emplace_back();
    if (support::Tracer::remarks_on()) {
      const std::size_t partitions =
          static_cast<std::size_t>(values.back() - values.front()) + 1;
      std::vector<std::string> vals;
      for (const i64 v : values) vals.push_back(std::to_string(v));
      support::remark("sched", "scalar cut",
                      {{"level", std::to_string(level)},
                       {"reason", cut_reason_},
                       {"policy", policy_.name()},
                       {"partitions", std::to_string(partitions)},
                       {"values", pf::join(vals, " ")},
                       {"deps_satisfied", std::to_string(newly_satisfied)}});
    }
  }

  void record_linear_level(const std::vector<std::size_t>& active,
                           std::vector<poly::AffineExpr> hp) {
    const std::size_t level = level_linear_.size();
    std::vector<std::size_t> carried;
    for (const std::size_t dep_idx : active) {
      const ddg::Dependence& d = dg_.deps()[dep_idx];
      const poly::AffineExpr diff = phi_diff(d, hp);
      const auto mn = d.poly.integer_min(diff, opts_.ilp);
      PF_CHECK_MSG(mn.kind != poly::IntegerSet::Opt::kUnbounded,
                   "hyperplane violates legality (unbounded-below "
                   "dependence distance)");
      if (mn.kind == poly::IntegerSet::Opt::kOk) {
        PF_CHECK_MSG(mn.value >= 0, "hyperplane violates legality");
        if (mn.value >= 1) {
          satisfied_[dep_idx] = true;
          satisfied_at_[dep_idx] = level;
        }
      } else if (mn.kind == poly::IntegerSet::Opt::kEmpty) {
        // Vacuous dependence (possible for budget-assumed candidates
        // that are in truth empty): nothing to satisfy.
        satisfied_[dep_idx] = true;
        satisfied_at_[dep_idx] = level;
      }
      const auto mx = d.poly.integer_max(diff, opts_.ilp);
      const bool is_carried =
          mx.kind == poly::IntegerSet::Opt::kUnbounded ||
          mx.kind == poly::IntegerSet::Opt::kUnknown ||
          (mx.kind == poly::IntegerSet::Opt::kOk && mx.value >= 1);
      if (is_carried) carried.push_back(dep_idx);
    }
    // Update independence state.
    for (std::size_t s = 0; s < scop_.num_statements(); ++s) {
      const std::size_t m = scop_.statement(s).dim();
      if (h_[s].rows() >= m) continue;
      IntVector linear(m);
      bool nonzero = false;
      for (std::size_t k = 0; k < m; ++k) {
        linear[k] = hp[s].coeff(k);
        nonzero = nonzero || linear[k] != 0;
      }
      PF_CHECK_MSG(nonzero,
                   "independence constraint produced a zero row for an "
                   "unfinished statement");
      h_[s].append_row(linear);
    }
    if (support::Tracer::remarks_on()) {
      std::vector<std::string> rows;
      for (std::size_t s = 0; s < scop_.num_statements(); ++s)
        rows.push_back(scop_.statement(s).name() + ":" +
                       hp[s].to_string(scop_.space_names(scop_.statement(s))));
      support::remark(
          "sched", "hyperplane found",
          {{"level", std::to_string(level)},
           {"objective_u_sum", std::to_string(last_u_sum_)},
           {"objective_w", std::to_string(last_w_)},
           {"deps_carried", std::to_string(carried.size())},
           {"parallel", carried.empty() ? "yes" : "no"},
           {"outermost", seen_linear_level_ ? "no" : "yes"},
           {"rows", pf::join(rows, "; ")}});
    }
    for (std::size_t s = 0; s < scop_.num_statements(); ++s)
      rows_[s].push_back(std::move(hp[s]));
    level_linear_.push_back(true);
    carried_at_.push_back(std::move(carried));
    seen_linear_level_ = true;
  }

  const ir::Scop& scop_;
  const ddg::DependenceGraph& dg_;
  FusionPolicy& policy_;
  const SchedulerOptions& opts_;

  std::size_t num_unknowns_ = 0;
  std::size_t w_index_ = 0;
  std::vector<std::size_t> c_base_;

  std::vector<std::vector<poly::AffineExpr>> rows_;
  std::vector<bool> level_linear_;
  std::vector<std::vector<std::size_t>> carried_at_;
  std::vector<IntMatrix> h_;
  std::vector<std::vector<i64>> scalar_prefix_;
  std::vector<bool> satisfied_;
  std::vector<std::size_t> satisfied_at_;
  std::vector<std::optional<std::vector<poly::Constraint>>> dep_constraints_;
  std::vector<std::size_t> active_cache_;
  bool seen_linear_level_ = false;

  // Decision-remark context: why the next scalar cut is being applied,
  // and the Farkas objective of the last accepted hyperplane.
  std::string cut_reason_ = "initial";
  i64 last_u_sum_ = 0;
  i64 last_w_ = 0;

  // Warm start across Pluto levels: the previous level's lexmin point.
  // Successive levels share most of their constraint system (bounds +
  // Farkas rows), so the old point often remains feasible and bounds the
  // new branch-and-bound; lexmin validates it and ignores stale points,
  // keeping results byte-identical (see lp/ilp.h).
  std::optional<IntVector> warm_point_;

  // Original SCCs + pre-fusion schedule (policy's view; kept for
  // reporting) and per-statement pre-fusion positions.
  ddg::SccResult orig_sccs_;
  std::vector<std::size_t> orig_order_;
  std::vector<std::size_t> stmt_pref_pos_;

  // Current SCC structure over the active dependences.
  ddg::SccResult cur_sccs_;
  std::vector<std::size_t> cur_order_;
  std::vector<std::size_t> cur_pos_of_scc_;
  std::vector<std::size_t> cur_scc_dim_;
};

// One remark per resulting fusion partition: which statements ended up
// fused and whether the partition's outermost loop stayed parallel -- the
// outcome Algorithm 2 trades hyperplanes for.
void remark_partition_outcomes(const ir::Scop& scop, const Schedule& sch) {
  if (!support::Tracer::remarks_on()) return;
  const std::vector<int> parts = sch.nest_partitions();
  std::size_t first_linear = SIZE_MAX;
  for (std::size_t l = 0; l < sch.level_linear.size(); ++l)
    if (sch.level_linear[l]) {
      first_linear = l;
      break;
    }
  std::map<int, std::vector<std::size_t>> groups;
  for (std::size_t s = 0; s < parts.size(); ++s) groups[parts[s]].push_back(s);
  for (const auto& [id, stmts] : groups) {
    std::vector<std::string> names;
    for (const std::size_t s : stmts) names.push_back(scop.statement(s).name());
    const bool parallel =
        first_linear != SIZE_MAX && sch.is_parallel_for(stmts, first_linear);
    support::remark("fusion", "fusion partition outcome",
                    {{"partition", std::to_string(id)},
                     {"statements", pf::join(names, " ")},
                     {"outer_parallelism", parallel ? "preserved" : "lost"}});
  }
}

}  // namespace

Schedule compute_schedule(const ir::Scop& scop,
                          const ddg::DependenceGraph& dg, FusionPolicy& policy,
                          const SchedulerOptions& options) {
  PF_CHECK_MSG(&dg.scop() == &scop, "dependence graph built for another scop");
  try {
    Schedule sch = Scheduler(scop, dg, policy, options).run();
    remark_partition_outcomes(scop, sch);
    return sch;
  } catch (const support::BudgetExceeded& e) {
    // Fusion-model faults belong to the model degradation chain
    // (fusion::compute_schedule_degrading); everything else degrades to
    // the always-legal identity schedule right here.
    if (e.site() == support::BudgetSite::kFusionModel) throw;
    support::count(support::Counter::kBudgetDowngrades);
    support::remark("budget", "schedule degraded to original statement order",
                    {{"policy", policy.name()},
                     {"site", e.site_name()},
                     {"cause", e.cause()}});
    support::BudgetSuspend suspend;
    Schedule fallback = identity_schedule(scop);
    annotate_dependences(fallback, dg, options.ilp);
    remark_partition_outcomes(scop, fallback);
    return fallback;
  } catch (const Error& e) {
    if (std::string(e.what()).find("stuck:") == std::string::npos) throw;
    // The greedy per-level search occasionally strands a dependence that
    // only a different earlier choice could have satisfied (no
    // backtracking, like Pluto). The original execution order is always
    // legal: degrade gracefully to the identity schedule instead of
    // failing.
    support::remark("sched", "scheduler stuck; fell back to identity schedule",
                    {{"policy", policy.name()}});
    Schedule fallback = identity_schedule(scop);
    annotate_dependences(fallback, dg, options.ilp);
    remark_partition_outcomes(scop, fallback);
    return fallback;
  }
}

}  // namespace pf::sched
