#include "analysis/locality.h"

#include <algorithm>
#include <sstream>

#include "analysis/dataflow.h"
#include "support/budget.h"
#include "support/error.h"
#include "support/trace.h"

namespace pf::analysis {

using poly::AffineExpr;
using poly::Constraint;
using poly::Count;
using poly::IntegerSet;
using poly::SetUnion;

namespace {

inline bool in_i64(i128 v) {
  return v >= static_cast<i128>(INT64_MIN) && v <= static_cast<i128>(INT64_MAX);
}

// Substitute the trailing parameter dims of an expression over
// [iters, params] with the concrete values; nullopt on i64 overflow of
// the folded constant (the affected count degrades to unknown).
std::optional<AffineExpr> bind_expr(const AffineExpr& e, std::size_t iters,
                                    const IntVector& values) {
  i128 k = e.const_term();
  for (std::size_t j = 0; j < values.size(); ++j)
    k += static_cast<i128>(e.coeff(iters + j)) * values[j];
  if (!in_i64(k)) return std::nullopt;
  AffineExpr out(iters, static_cast<i64>(k));
  for (std::size_t i = 0; i < iters; ++i) out.set_coeff(i, e.coeff(i));
  return out;
}

// Same substitution for a whole set over [iters, params].
std::optional<IntegerSet> bind_set(const IntegerSet& s, std::size_t iters,
                                   const IntVector& values) {
  IntegerSet out(iters);
  if (s.trivially_empty()) {
    out.add_constraint(Constraint::ge0(AffineExpr::constant(iters, -1)));
    return out;
  }
  for (const Constraint& c : s.constraints()) {
    auto e = bind_expr(c.expr, iters, values);
    if (!e) return std::nullopt;
    out.add_constraint(Constraint{std::move(*e), c.is_equality});
  }
  return out;
}

std::optional<SetUnion> bind_union(const SetUnion& u, std::size_t iters,
                                   const IntVector& values) {
  SetUnion out(iters);
  for (const IntegerSet& d : u.disjuncts()) {
    auto b = bind_set(d, iters, values);
    if (!b) return std::nullopt;
    out.add_disjunct(std::move(*b));
  }
  return out;
}

// Add `s` (over m dims) into `out` with its dims mapped to
// [offset, offset + m).
void embed_set(IntegerSet* out, const IntegerSet& s, std::size_t offset) {
  if (s.trivially_empty()) {
    out->add_constraint(
        Constraint::ge0(AffineExpr::constant(out->dims(), -1)));
    return;
  }
  for (const Constraint& c : s.constraints()) {
    AffineExpr e(out->dims(), c.expr.const_term());
    for (std::size_t k = 0; k < s.dims(); ++k)
      e.set_coeff(offset + k, c.expr.coeff(k));
    out->add_constraint(Constraint{std::move(e), c.is_equality});
  }
}

// Add cell_d == sub(iters) with the iters living at [offset, ...).
void add_cell_equality(IntegerSet* out, std::size_t cell_dim,
                       const AffineExpr& sub, std::size_t offset) {
  AffineExpr e(out->dims(), -sub.const_term());
  e.set_coeff(cell_dim, 1);
  for (std::size_t k = 0; k < sub.dims(); ++k)
    e.set_coeff(offset + k, -sub.coeff(k));
  out->add_constraint(Constraint::eq0(std::move(e)));
}

// One access-relation graph disjunct over [rank, space_dims]: the cell
// dims equated with the bound subscripts, the iteration dims constrained
// by the bound domain at `offset`. Returns false on a bind overflow.
bool add_access_disjunct(IntegerSet* out, const ir::Statement& stmt,
                         const ir::Access& acc, std::size_t rank,
                         std::size_t offset, const IntVector& params) {
  const auto dom = bind_set(stmt.domain(), stmt.dim(), params);
  if (!dom) return false;
  embed_set(out, *dom, offset);
  for (std::size_t d = 0; d < rank; ++d) {
    const auto sub = bind_expr(acc.subscripts[d], stmt.dim(), params);
    if (!sub) return false;
    add_cell_equality(out, d, *sub, offset);
  }
  return true;
}

Count sum_counts(const std::vector<Count>& parts) {
  i128 total = 0;
  bool unbounded = false;
  for (const Count& c : parts) {
    switch (c.kind) {
      case Count::kExact:
        total += c.value;
        break;
      case Count::kUnbounded:
        unbounded = true;
        break;
      case Count::kUnknown:
        return Count::unknown();
    }
  }
  if (unbounded) return Count::unbounded();
  return in_i64(total) ? Count::exact(static_cast<i64>(total))
                       : Count::unknown();
}

// accesses - footprint; unknown whenever the difference is not defined.
Count reuse_volume(const Count& accesses, const Count& footprint) {
  if (accesses.kind == Count::kExact && footprint.kind == Count::kExact)
    return Count::exact(std::max<i64>(0, accesses.value - footprint.value));
  if (accesses.kind == Count::kUnbounded &&
      footprint.kind == Count::kExact)
    return Count::unbounded();
  return Count::unknown();
}

// Ranking for findings: unbounded volumes first, then exact descending,
// unknown last; ties broken structurally for deterministic output.
bool finding_before(const VolumeFinding& a, const VolumeFinding& b) {
  auto rank = [](const Count& c) {
    switch (c.kind) {
      case Count::kUnbounded:
        return 0;
      case Count::kExact:
        return 1;
      case Count::kUnknown:
        break;
    }
    return 2;
  };
  if (rank(a.volume) != rank(b.volume))
    return rank(a.volume) < rank(b.volume);
  if (a.volume.kind == Count::kExact && a.volume.value != b.volume.value)
    return a.volume.value > b.volume.value;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.stmt != b.stmt) return a.stmt < b.stmt;
  return a.array < b.array;
}

std::string json_count(const Count& c) {
  if (c.kind == Count::kExact) return std::to_string(c.value);
  std::ostringstream os;
  os << '"' << c.to_string() << '"';
  return os.str();
}

}  // namespace

std::string VolumeFinding::to_string(const ir::Scop* scop) const {
  std::ostringstream os;
  os << (kind == kDeadWrite ? "dead-write" : "uninitialized-read") << " "
     << (scop ? scop->statement(stmt).name() : "S" + std::to_string(stmt))
     << " "
     << (scop ? scop->array(array).name : "a" + std::to_string(array))
     << ": volume " << volume.to_string();
  return os.str();
}

i64 LocalityReport::shared_cells_or_negative(std::size_t a,
                                             std::size_t b) const {
  const std::size_t lo = std::min(a, b);
  const std::size_t hi = std::max(a, b);
  for (const PairLocality& p : pairs)
    if (p.s == lo && p.t == hi)
      return p.shared_cells.kind == Count::kExact ? p.shared_cells.value : -1;
  return -1;
}

std::string LocalityReport::to_string(const ir::Scop& scop) const {
  std::ostringstream os;
  os << "analyze: params";
  for (std::size_t j = 0; j < params.size(); ++j)
    os << " " << scop.params()[j] << "=" << params[j];
  os << "\n";
  if (!context_satisfied)
    os << "analyze: warning: parameter values violate the context\n";
  for (const StatementVolume& sv : statements)
    os << "analyze: statement " << scop.statement(sv.stmt).name() << ": "
       << sv.instances.to_string() << " instance(s)\n";
  for (const ArrayLocality& al : arrays)
    os << "analyze: array " << scop.array(al.array).name << ": footprint "
       << al.footprint.to_string() << ", accesses " << al.accesses.to_string()
       << ", reuse " << al.reuse.to_string() << "\n";
  for (const VolumeFinding& f : findings)
    os << "analyze: " << f.to_string(&scop) << "\n";
  for (const PairLocality& p : pairs)
    os << "analyze: pair " << scop.statement(p.s).name() << "/"
       << scop.statement(p.t).name() << ": " << p.shared_cells.to_string()
       << " shared cell(s)\n";
  os << "analyze: " << statements.size() << " statement(s), " << arrays.size()
     << " array(s), " << findings.size() << " finding(s), " << pairs.size()
     << " pair(s)\n";
  return os.str();
}

std::string LocalityReport::to_json(const ir::Scop& scop) const {
  std::ostringstream os;
  os << "{\"analyze\": {\"scop\": \"" << scop.name() << "\", \"params\": {";
  for (std::size_t j = 0; j < params.size(); ++j) {
    if (j != 0) os << ", ";
    os << "\"" << scop.params()[j] << "\": " << params[j];
  }
  os << "}, \"context_satisfied\": "
     << (context_satisfied ? "true" : "false");
  os << ", \"statements\": [";
  for (std::size_t i = 0; i < statements.size(); ++i) {
    if (i != 0) os << ", ";
    os << "{\"name\": \"" << scop.statement(statements[i].stmt).name()
       << "\", \"instances\": " << json_count(statements[i].instances) << "}";
  }
  os << "], \"arrays\": [";
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    if (i != 0) os << ", ";
    os << "{\"name\": \"" << scop.array(arrays[i].array).name
       << "\", \"footprint\": " << json_count(arrays[i].footprint)
       << ", \"accesses\": " << json_count(arrays[i].accesses)
       << ", \"reuse\": " << json_count(arrays[i].reuse) << "}";
  }
  os << "], \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (i != 0) os << ", ";
    const VolumeFinding& f = findings[i];
    os << "{\"kind\": \""
       << (f.kind == VolumeFinding::kDeadWrite ? "dead-write"
                                               : "uninitialized-read")
       << "\", \"statement\": \"" << scop.statement(f.stmt).name()
       << "\", \"array\": \"" << scop.array(f.array).name
       << "\", \"volume\": " << json_count(f.volume) << "}";
  }
  os << "], \"pairs\": [";
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (i != 0) os << ", ";
    os << "{\"s\": \"" << scop.statement(pairs[i].s).name() << "\", \"t\": \""
       << scop.statement(pairs[i].t).name()
       << "\", \"shared_cells\": " << json_count(pairs[i].shared_cells)
       << "}";
  }
  os << "]}}";
  return os.str();
}

LocalityReport analyze_locality(const ir::Scop& scop,
                                const ddg::DependenceGraph& dg,
                                const IntVector& params,
                                const LocalityOptions& options) {
  PF_CHECK_MSG(params.size() == scop.num_params(),
               "analyze_locality: expected " << scop.num_params()
                                             << " parameter value(s), got "
                                             << params.size());
  LocalityReport rep;
  rep.params = params;
  for (const Constraint& c : scop.context().constraints()) {
    const i64 v = c.expr.eval(params);
    if (c.is_equality ? v != 0 : v < 0) rep.context_satisfied = false;
  }
  if (scop.context().trivially_empty()) rep.context_satisfied = false;

  const std::size_t n = scop.num_statements();

  // Per-statement instance counts.
  for (std::size_t s = 0; s < n; ++s) {
    const ir::Statement& stmt = scop.statement(s);
    const auto dom = bind_set(stmt.domain(), stmt.dim(), params);
    rep.statements.push_back(
        {s, dom ? poly::count_points(*dom, options.count) : Count::unknown()});
  }

  // Per-array footprint / access / reuse volumes. All access relations of
  // an array share one graph space [rank, max statement dim]; unused
  // trailing iteration dims stay unconstrained, which is harmless --
  // they are existential in the projection count.
  std::size_t max_dim = 0;
  for (std::size_t s = 0; s < n; ++s)
    max_dim = std::max(max_dim, scop.statement(s).dim());
  for (std::size_t a = 0; a < scop.arrays().size(); ++a) {
    const std::size_t rank = scop.array(a).rank();
    SetUnion graph(rank + max_dim);
    bool bind_ok = true;
    std::vector<Count> access_parts;
    for (std::size_t s = 0; s < n; ++s) {
      const ir::Statement& stmt = scop.statement(s);
      for (const ir::Access& acc : stmt.accesses()) {
        if (acc.array_id != a) continue;
        IntegerSet disjunct(rank + max_dim);
        bind_ok &= add_access_disjunct(&disjunct, stmt, acc, rank, rank,
                                       params);
        graph.add_disjunct(std::move(disjunct));
        access_parts.push_back(rep.statements[s].instances);
      }
    }
    ArrayLocality al;
    al.array = a;
    if (access_parts.empty()) {
      al.footprint = al.accesses = al.reuse = Count::exact(0);
    } else {
      al.footprint = bind_ok ? poly::count_projection(graph, rank,
                                                      options.count)
                             : Count::unknown();
      al.accesses = sum_counts(access_parts);
      al.reuse = reuse_volume(al.accesses, al.footprint);
    }
    rep.arrays.push_back(al);
  }

  // Dead-write / uninitialized-read volumes. The dataflow subtraction
  // runs exact (BudgetSuspend): a conservative subtraction would report
  // wrong volumes, not merely unknown ones. Counting the resulting sets
  // stays under the live budget and degrades per count.
  Dataflow df;
  {
    support::BudgetSuspend suspend;
    df = compute_dataflow(scop, dg, DataflowOptions{options.count.ilp});
  }
  auto count_bound_union = [&](const SetUnion& u, std::size_t iters) {
    const auto bound = bind_union(u, iters, params);
    return bound ? poly::count_points(*bound, options.count)
                 : Count::unknown();
  };
  for (const WriteLiveness& wl : df.writes) {
    const ir::Statement& stmt = scop.statement(wl.stmt);
    const std::size_t array = stmt.write().array_id;
    const SetUnion dead = scop.array(array).is_local
                              ? wl.unused
                              : wl.unused.intersect(wl.killed);
    if (dead.trivially_empty()) continue;
    const Count volume = count_bound_union(dead, stmt.dim());
    if (volume.kind == Count::kExact && volume.value == 0) continue;
    rep.findings.push_back(
        {VolumeFinding::kDeadWrite, wl.stmt, array, volume});
  }
  for (const ReadCover& rc : df.covers) {
    const ir::Statement& stmt = scop.statement(rc.stmt);
    const std::size_t array = stmt.accesses()[rc.access].array_id;
    if (!scop.array(array).is_local) continue;  // live-in, not a defect
    if (rc.uncovered.trivially_empty()) continue;
    const Count volume = count_bound_union(rc.uncovered, stmt.dim());
    if (volume.kind == Count::kExact && volume.value == 0) continue;
    rep.findings.push_back(
        {VolumeFinding::kUninitRead, rc.stmt, array, volume});
  }
  std::stable_sort(rep.findings.begin(), rep.findings.end(), finding_before);

  // Shared cells per statement pair with at least one common array: the
  // size of the footprint intersection, counted exactly on the joint
  // access-pair graph [rank, s iters, t iters]. The self pair (t == s)
  // counts cells touched by at least two *distinct* instances -- the
  // accumulator cell of a reduction is self-reuse the fusion oracle
  // must see, while a[i] = f(a[i]) has none (and a 0-dim statement,
  // with its single instance, always counts 0). Distinctness is a
  // union over dimension and sign: some d has i_d - i'_d >= 1 (or
  // <= -1).
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t t = s; t < n; ++t) {
      const ir::Statement& ss = scop.statement(s);
      const ir::Statement& st = scop.statement(t);
      const bool self = t == s;
      std::vector<Count> parts;
      bool any_common = false;
      for (std::size_t a = 0; a < scop.arrays().size(); ++a) {
        bool in_s = false;
        bool in_t = false;
        for (const ir::Access& acc : ss.accesses())
          in_s |= acc.array_id == a;
        for (const ir::Access& acc : st.accesses())
          in_t |= acc.array_id == a;
        if (!in_s || !in_t) continue;
        any_common = true;
        const std::size_t rank = scop.array(a).rank();
        const std::size_t dims = rank + ss.dim() + st.dim();
        SetUnion graph(dims);
        bool bind_ok = true;
        for (const ir::Access& sa : ss.accesses()) {
          if (sa.array_id != a) continue;
          for (const ir::Access& ta : st.accesses()) {
            if (ta.array_id != a) continue;
            IntegerSet disjunct(dims);
            bind_ok &= add_access_disjunct(&disjunct, ss, sa, rank, rank,
                                           params);
            bind_ok &= add_access_disjunct(&disjunct, st, ta, rank,
                                           rank + ss.dim(), params);
            if (!self) {
              graph.add_disjunct(std::move(disjunct));
              continue;
            }
            for (std::size_t d = 0; d < ss.dim(); ++d) {
              const AffineExpr delta =
                  AffineExpr::var(dims, rank + d) -
                  AffineExpr::var(dims, rank + ss.dim() + d);
              IntegerSet fwd = disjunct;
              fwd.add_constraint(Constraint::ge0(delta.plus_const(-1)));
              graph.add_disjunct(std::move(fwd));
              IntegerSet bwd = disjunct;
              bwd.add_constraint(Constraint::ge0((-delta).plus_const(-1)));
              graph.add_disjunct(std::move(bwd));
            }
          }
        }
        parts.push_back(bind_ok
                            ? poly::count_projection(graph, rank,
                                                     options.count)
                            : Count::unknown());
      }
      if (!any_common) continue;
      rep.pairs.push_back({s, t, sum_counts(parts)});
    }
  }

  if (support::Tracer::remarks_on()) {
    for (const PairLocality& p : rep.pairs)
      support::remark("analysis", "shared cells",
                      {{"s", scop.statement(p.s).name()},
                       {"t", scop.statement(p.t).name()},
                       {"cells", p.shared_cells.to_string()}});
    for (const VolumeFinding& f : rep.findings)
      support::remark("analysis", f.to_string(&scop),
                      {{"volume", f.volume.to_string()}});
  }
  return rep;
}

}  // namespace pf::analysis
