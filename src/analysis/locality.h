// Static locality and profitability analysis over exact point counts
// (--analyze): how much work each statement does, how much data each
// array touches, and how many cells fusion candidates actually share.
//
// Everything is an exact integer count from poly/count.h, evaluated at a
// concrete parameter assignment (the --params values, or the same guess
// --validate uses):
//
//  * per-statement iteration-domain cardinality (dynamic instances),
//  * per-array footprint (distinct cells touched -- the exact projection
//    of the access relations, no Fourier-Motzkin overapproximation),
//    access volume (dynamic accesses) and reuse volume (accesses minus
//    footprint: how many accesses revisit a cell),
//  * dead-write and uninitialized-read *volumes*: the --lint findings
//    upgraded from a single ILP witness point to a ranked count of how
//    many instances are affected,
//  * per-statement-pair shared cells: the size of the footprint
//    intersection, the quantity wisefuse's reuse heuristic approximates
//    by dependence existence. The report doubles as the profitability
//    oracle the fusion remark channel consumes, so --explain can show
//    *why* fusing a candidate pays.
//
// Budget discipline: the dataflow sets are built under BudgetSuspend
// (a conservative subtraction would make volumes wrong, not just
// incomplete), while the counting itself runs under the live budget and
// degrades per count to a structured "unknown" -- never a wrong number.
// The pass is serial: reports are byte-identical at every --jobs.
#pragma once

#include <string>
#include <vector>

#include "ddg/dependences.h"
#include "ir/scop.h"
#include "poly/count.h"

namespace pf::analysis {

/// Dynamic instance count of one statement's iteration domain.
struct StatementVolume {
  std::size_t stmt = 0;
  poly::Count instances;
};

/// Footprint / access / reuse volumes of one array.
struct ArrayLocality {
  std::size_t array = 0;
  poly::Count footprint;  // distinct cells touched by any access
  poly::Count accesses;   // dynamic access instances, reads + writes
  poly::Count reuse;      // accesses - footprint (cell revisits)
};

/// A counted lint finding: how many instances the defect covers.
struct VolumeFinding {
  enum Kind { kDeadWrite, kUninitRead } kind = kDeadWrite;
  std::size_t stmt = 0;   // writing / reading statement
  std::size_t array = 0;  // affected array
  poly::Count volume;

  std::string to_string(const ir::Scop* scop = nullptr) const;
};

/// Distinct cells two statements both touch (summed over common arrays).
struct PairLocality {
  std::size_t s = 0, t = 0;  // statement indices, s < t
  poly::Count shared_cells;
};

struct LocalityOptions {
  poly::CountOptions count;
};

struct LocalityReport {
  IntVector params;  // the concrete parameter assignment analyzed
  bool context_satisfied = true;
  std::vector<StatementVolume> statements;  // by statement index
  std::vector<ArrayLocality> arrays;        // by array id
  std::vector<VolumeFinding> findings;      // ranked by volume, descending
  std::vector<PairLocality> pairs;          // by (s, t)

  /// Shared-cell count for an unordered statement pair; -1 when the pair
  /// was not analyzed or its count is not exact. This is the fusion
  /// profitability oracle's feed.
  i64 shared_cells_or_negative(std::size_t a, std::size_t b) const;

  std::string to_string(const ir::Scop& scop) const;
  /// One JSON object {"analyze": {...}}; deterministic member order.
  std::string to_json(const ir::Scop& scop) const;
};

/// Analyze the scop at the given parameter values. `dg` must be the
/// memory-based dependence graph of `scop`; `params` one value per scop
/// parameter. Emits "analysis" remarks when the remark channel is on.
LocalityReport analyze_locality(const ir::Scop& scop,
                                const ddg::DependenceGraph& dg,
                                const IntVector& params,
                                const LocalityOptions& options = {});

}  // namespace pf::analysis
