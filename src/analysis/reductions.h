// Static reduction & privatization classification.
//
// Reductions: a statement is an associative reduction when its body is a
// chain of one commutative operator (`+`, `*`, `fmin`, `fmax`) in which
// exactly one leaf re-reads the written cell (same array, same affine
// subscripts) and no other subexpression touches the accumulator array.
// Every real self-dependence of such a statement connects the write to
// that one self-read, so reordering the accumulation chain is legal
// modulo floating-point rounding (exact for integer-valued data): those
// self-dependences are *relaxable* -- the scheduler may ignore them when
// searching hyperplanes, provided codegen re-serializes the combination
// with an OpenMP `reduction(op:var)` clause (docs/reductions.md,
// following Doerfert et al., "Polly's Polyhedral Scheduling in the
// Presence of Reductions").
//
// Privatization: from the Feautrier value-based dataflow (dataflow.h), a
// `local` array is privatizable at depth k when none of its reads
// observes initial contents and every value flow into it is tied in the
// first k loop dimensions of producer and consumer -- each iteration of
// the outer k loops could own a private copy. Reported for diagnostics
// only; no transformation consumes it yet.
//
// Determinism: everything here iterates statements, dependences and
// flows in index order over the deterministically-merged dependence
// graph, so reports, remarks and counters are byte-identical at every
// --jobs count.
#pragma once

#include <string>
#include <vector>

#include "analysis/dataflow.h"
#include "ddg/dependences.h"
#include "ir/reduction.h"
#include "ir/scop.h"

namespace pf::analysis {

/// One statement classified as an associative/commutative reduction.
struct ReductionStatement {
  std::size_t stmt = 0;
  ir::ReductionOp op = ir::ReductionOp::kSum;
  std::size_t array_id = 0;    // the accumulator
  std::size_t self_deps = 0;   // real self-dependences (the relaxable set)
};

/// One array whose value flows are iteration-private at some depth.
struct PrivatizableArray {
  std::size_t array_id = 0;
  /// Largest k such that every value flow on the array is tied in the
  /// first k loop dimensions of both endpoints (k >= 1 to be reported).
  std::size_t depth = 0;
};

struct ReductionInfo {
  std::vector<ReductionStatement> statements;   // by statement index
  std::vector<ir::ReductionDep> relaxable;      // by dependence id
  std::vector<PrivatizableArray> privatizable;  // by array id
  /// True when a budget fault or injected failure emptied the info --
  /// the sound degradation: nothing is relaxed, nothing is claimed.
  bool degraded = false;
};

struct ReductionOptions {
  lp::IlpOptions ilp;
  /// Skip the (dataflow-based) privatization half; the reduction half
  /// is pure structure matching and always runs.
  bool privatization = true;
};

/// Classify reductions and privatizable arrays. Charges fuel at budget
/// site `analysis.reductions`; throws BudgetExceeded on exhaustion or
/// injection.
ReductionInfo analyze_reductions(const ir::Scop& scop,
                                 const ddg::DependenceGraph& dg,
                                 const ReductionOptions& options = {});

/// Like analyze_reductions, but degrades a budget fault into the empty
/// (sound: nothing relaxed) info with `degraded` set, counting a
/// budget downgrade -- the form the CLI pipeline consumes.
ReductionInfo analyze_reductions_degrading(const ir::Scop& scop,
                                           const ddg::DependenceGraph& dg,
                                           const ReductionOptions& options = {});

/// Match one statement body against the reduction patterns; returns
/// false when the statement is not a recognized accumulation. Exposed
/// for tests. (The verifier deliberately does NOT call this: it carries
/// its own matcher in verify/reductions.cpp so a bug here cannot
/// vouch for itself.)
bool match_reduction(const ir::Statement& s, ir::ReductionOp* op_out);

/// Human-readable report (for `polyfuse --reductions`).
std::string render_reductions_text(const ir::Scop& scop,
                                   const ddg::DependenceGraph& dg,
                                   const ReductionInfo& info);
/// Deterministic JSON report (for `polyfuse --reductions=json`).
std::string render_reductions_json(const ir::Scop& scop,
                                   const ddg::DependenceGraph& dg,
                                   const ReductionInfo& info);

}  // namespace pf::analysis
