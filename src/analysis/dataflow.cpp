#include "analysis/dataflow.h"

#include <map>
#include <tuple>
#include <utility>

#include "support/error.h"
#include "support/trace.h"

namespace pf::analysis {

namespace {

using poly::AffineExpr;
using poly::Constraint;
using poly::IntegerSet;
using poly::SetUnion;

/// Embed a statement-space form ([m iters, p params]) into a larger
/// space: iterators land at iter_off, parameters at param_off.
AffineExpr embed(const AffineExpr& e, std::size_t m, std::size_t p,
                 std::size_t iter_off, std::size_t param_off,
                 std::size_t total) {
  PF_CHECK(e.dims() == m + p);
  std::vector<std::size_t> map(m + p);
  for (std::size_t k = 0; k < m; ++k) map[k] = iter_off + k;
  for (std::size_t q = 0; q < p; ++q) map[m + q] = param_off + q;
  return e.remap(total, map);
}

void add_embedded_domain(IntegerSet* set, const ir::Statement& s,
                         std::size_t p, std::size_t iter_off,
                         std::size_t param_off, std::size_t total) {
  for (const Constraint& c : s.domain().constraints())
    set->add_constraint(Constraint{
        embed(c.expr, s.dim(), p, iter_off, param_off, total), c.is_equality});
}

void add_embedded_context(IntegerSet* set, const ir::Scop& scop,
                          std::size_t param_off, std::size_t total) {
  const std::size_t p = scop.num_params();
  std::vector<std::size_t> map(p);
  for (std::size_t q = 0; q < p; ++q) map[q] = param_off + q;
  for (const Constraint& c : scop.context().constraints())
    set->add_constraint(Constraint{c.expr.remap(total, map), c.is_equality});
}

/// The original-program-order precedence a <lex b as a disjunct list
/// over `total` dims (a's iterators at off_a, b's at off_b): one
/// disjunct per precedence depth, mirroring the DDG's encoding --
/// prefix-equal plus strictly-smaller at a shared loop, or bare
/// prefix-equal at the common depth when a textually precedes b.
std::vector<IntegerSet> lex_before(const ir::Scop& scop,
                                   const ir::Statement& a,
                                   const ir::Statement& b, std::size_t off_a,
                                   std::size_t off_b, std::size_t total) {
  const std::size_t common = scop.common_loop_depth(a, b);
  std::vector<IntegerSet> out;
  for (std::size_t depth = 0; depth <= common; ++depth) {
    if (depth == common && a.index() >= b.index()) continue;
    IntegerSet prec(total);
    for (std::size_t l = 0; l < depth; ++l)
      prec.add_constraint(Constraint::eq(AffineExpr::var(total, off_a + l),
                                         AffineExpr::var(total, off_b + l)));
    if (depth < common)
      prec.add_constraint(Constraint::ge0(
          AffineExpr::var(total, off_b + depth) -
          AffineExpr::var(total, off_a + depth) -
          AffineExpr::constant(total, 1)));
    out.push_back(std::move(prec));
  }
  return out;
}

/// domain(s) restricted to the parameter context, in [iters, params].
IntegerSet domain_in_context(const ir::Scop& scop, const ir::Statement& s) {
  IntegerSet dc = s.domain();
  dc.intersect(scop.context().insert_dims(0, s.dim()));
  return dc;
}

/// Subtract every disjunct of `sub` from `from`, coalescing after each
/// step to keep the disjunct count from compounding.
SetUnion subtract_all(SetUnion from, const SetUnion& sub,
                      const lp::IlpOptions& ilp) {
  for (const IntegerSet& d : sub.disjuncts()) {
    if (from.trivially_empty()) break;
    from = from.subtract(d);
    from.coalesce(ilp);
  }
  return from;
}

}  // namespace

Dataflow compute_dataflow(const ir::Scop& scop,
                          const ddg::DependenceGraph& dg,
                          const DataflowOptions& options) {
  support::TraceSpan span("analysis", "compute_dataflow");
  const std::size_t p = scop.num_params();
  const lp::IlpOptions& ilp = options.ilp;
  Dataflow out;

  // Writers per array (each statement writes exactly one access, [0]).
  std::vector<std::vector<std::size_t>> writers(scop.arrays().size());
  for (const ir::Statement& s : scop.statements())
    writers[s.write().array_id].push_back(s.index());

  // Memory-based flow polyhedra, grouped per producer/consumer access
  // pair with the per-depth cases united. std::map keeps every later
  // walk in deterministic (src, dst, access) order.
  std::map<std::tuple<std::size_t, std::size_t, std::size_t>, SetUnion>
      groups;
  for (const ddg::Dependence& d : dg.deps()) {
    if (d.kind != ddg::DepKind::kFlow) continue;
    const auto key = std::make_tuple(d.src, d.dst, d.dst_access);
    auto it = groups.find(key);
    if (it == groups.end())
      it = groups.emplace(key, SetUnion(d.poly.dims())).first;
    it->second.add_disjunct(d.poly);
  }

  // Per read access: union of (projected) memory flows reaching it.
  std::map<std::pair<std::size_t, std::size_t>, SetUnion> covered;
  // Per producer statement: union of (projected) *value-based* flows.
  std::vector<SetUnion> sourced;
  sourced.reserve(scop.statements().size());
  for (const ir::Statement& s : scop.statements())
    sourced.emplace_back(s.dim() + p);

  for (const auto& [key, mem_flow] : groups) {
    const auto [si, ti, ri] = key;
    const ir::Statement& src = scop.statement(si);
    const ir::Statement& dst = scop.statement(ti);
    const ir::Access& read = dst.accesses()[ri];
    const std::size_t mi = src.dim(), mt = dst.dim();
    const std::size_t flow_dims = mi + mt + p;
    PF_CHECK(mem_flow.dims() == flow_dims);

    // Coverage is a memory-based notion: any earlier write feeds the
    // read. Project the flow union onto [dst iters, params].
    {
      std::vector<bool> drop_src(flow_dims, false);
      for (std::size_t k = 0; k < mi; ++k) drop_src[k] = true;
      const auto ckey = std::make_pair(ti, ri);
      auto it = covered.find(ckey);
      if (it == covered.end())
        it = covered.emplace(ckey, SetUnion(mt + p)).first;
      it->second.unite(mem_flow.eliminate_dims(drop_src));
    }

    // Kill set: (s, t) pairs with an intermediate writer u of the same
    // cell, s <lex u <lex t. Built in [s, u, t, params] and projected
    // onto [s, t, params].
    SetUnion kills(flow_dims);
    for (const std::size_t ui : writers[read.array_id]) {
      const ir::Statement& killer = scop.statement(ui);
      const std::size_t mu = killer.dim();
      const std::size_t total = mi + mu + mt + p;
      const std::size_t off_u = mi, off_t = mi + mu, off_p = mi + mu + mt;

      IntegerSet base(total);
      add_embedded_domain(&base, src, p, 0, off_p, total);
      add_embedded_domain(&base, killer, p, off_u, off_p, total);
      add_embedded_domain(&base, dst, p, off_t, off_p, total);
      add_embedded_context(&base, scop, off_p, total);
      // Same cell three ways: A_src(s) == A_dst(t) (also implied by the
      // minuend, but it keeps the kill polyhedra small) and
      // A_killer(u) == A_dst(t).
      const ir::Access& w_src = src.write();
      const ir::Access& w_kill = killer.write();
      for (std::size_t d = 0; d < read.subscripts.size(); ++d) {
        base.add_constraint(Constraint::eq(
            embed(w_src.subscripts[d], mi, p, 0, off_p, total),
            embed(read.subscripts[d], mt, p, off_t, off_p, total)));
        base.add_constraint(Constraint::eq(
            embed(w_kill.subscripts[d], mu, p, off_u, off_p, total),
            embed(read.subscripts[d], mt, p, off_t, off_p, total)));
      }
      if (base.trivially_empty()) continue;

      std::vector<bool> drop_u(total, false);
      for (std::size_t k = 0; k < mu; ++k) drop_u[off_u + k] = true;

      for (const IntegerSet& before_u : lex_before(scop, src, killer, 0,
                                                   off_u, total)) {
        for (const IntegerSet& after_u : lex_before(scop, killer, dst,
                                                    off_u, off_t, total)) {
          IntegerSet k = base;
          k.intersect(before_u);
          k.intersect(after_u);
          if (k.is_empty(ilp)) continue;
          kills.add_disjunct(k.eliminate_dims(drop_u));
        }
      }
    }

    SetUnion value_flow = subtract_all(mem_flow, kills, ilp);
    value_flow.coalesce(ilp);
    if (value_flow.trivially_empty()) continue;

    // Producer instances that source at least one value-based flow.
    {
      std::vector<bool> drop_dst(flow_dims, false);
      for (std::size_t k = 0; k < mt; ++k) drop_dst[mi + k] = true;
      sourced[si].unite(value_flow.eliminate_dims(drop_dst));
    }

    ValueFlow vf;
    vf.src = si;
    vf.dst = ti;
    vf.dst_access = ri;
    vf.src_dim = mi;
    vf.dst_dim = mt;
    vf.num_params = p;
    vf.poly = std::move(value_flow);
    out.flows.push_back(std::move(vf));
  }

  // Read covers: every read access, covered or not.
  for (const ir::Statement& s : scop.statements()) {
    for (std::size_t r = 1; r < s.accesses().size(); ++r) {
      ReadCover rc;
      rc.stmt = s.index();
      rc.access = r;
      SetUnion uncovered = SetUnion::wrap(domain_in_context(scop, s));
      const auto it = covered.find(std::make_pair(s.index(), r));
      if (it != covered.end())
        uncovered = subtract_all(std::move(uncovered), it->second, ilp);
      uncovered.coalesce(ilp);
      rc.uncovered = std::move(uncovered);
      out.covers.push_back(std::move(rc));
    }
  }

  // Write liveness: killed from the DDG's output dependences, unused
  // from the value-based flows.
  for (const ir::Statement& s : scop.statements()) {
    WriteLiveness wl;
    wl.stmt = s.index();
    const std::size_t m = s.dim();

    SetUnion killed(m + p);
    for (const ddg::Dependence& d : dg.deps()) {
      if (d.kind != ddg::DepKind::kOutput || d.src != s.index()) continue;
      std::vector<bool> drop_dst(d.poly.dims(), false);
      for (std::size_t k = 0; k < d.dst_dim; ++k) drop_dst[d.src_dim + k] = true;
      killed.add_disjunct(d.poly.eliminate_dims(drop_dst));
    }
    killed.coalesce(ilp);
    wl.killed = std::move(killed);

    SetUnion unused = SetUnion::wrap(domain_in_context(scop, s));
    unused = subtract_all(std::move(unused), sourced[s.index()], ilp);
    unused.coalesce(ilp);
    wl.unused = std::move(unused);

    out.writes.push_back(std::move(wl));
  }

  if (span.active()) {
    span.attr("value_flows", static_cast<i64>(out.flows.size()));
    span.attr("read_covers", static_cast<i64>(out.covers.size()));
  }
  return out;
}

}  // namespace pf::analysis
