#include "analysis/reductions.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/budget.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace pf::analysis {

namespace {

using ir::ReductionOp;

/// Flatten `e` as a chain of `op` applications, collecting the leaves
/// (maximal subtrees that are not themselves an `op` node).
void flatten_chain(const ir::ExprPtr& e, ReductionOp op,
                   std::vector<const ir::Expr*>* leaves) {
  using K = ir::Expr::Kind;
  const bool chain_node =
      (op == ReductionOp::kSum && e->kind == K::kBinary &&
       e->op == ir::BinOp::kAdd) ||
      (op == ReductionOp::kProd && e->kind == K::kBinary &&
       e->op == ir::BinOp::kMul);
  if (chain_node) {
    flatten_chain(e->lhs, op, leaves);
    flatten_chain(e->rhs, op, leaves);
    return;
  }
  const bool call_node =
      e->kind == K::kCall && e->args.size() == 2 &&
      ((op == ReductionOp::kMin && e->callee == "fmin") ||
       (op == ReductionOp::kMax && e->callee == "fmax"));
  if (call_node) {
    flatten_chain(e->args[0], op, leaves);
    flatten_chain(e->args[1], op, leaves);
    return;
  }
  leaves->push_back(e.get());
}

/// The leaf is a read of exactly the written cell: same array and
/// identical resolved affine subscripts.
bool is_self_access(const ir::Expr& leaf, const ir::Access& write) {
  return leaf.kind == ir::Expr::Kind::kAccess &&
         leaf.array_id == write.array_id &&
         leaf.subscripts_resolved == write.subscripts;
}

/// Any access of `array_id` anywhere under `e`?
bool touches_array(const ir::Expr* e, std::size_t array_id) {
  if (e->kind == ir::Expr::Kind::kAccess) return e->array_id == array_id;
  if (e->lhs && touches_array(e->lhs.get(), array_id)) return true;
  if (e->rhs && touches_array(e->rhs.get(), array_id)) return true;
  if (e->operand && touches_array(e->operand.get(), array_id)) return true;
  for (const ir::ExprPtr& a : e->args)
    if (touches_array(a.get(), array_id)) return true;
  return false;
}

bool match_reduction_op(const ir::Statement& s, ReductionOp op) {
  const ir::Access& w = s.write();
  std::vector<const ir::Expr*> leaves;
  flatten_chain(s.body(), op, &leaves);
  // A chain of at least two leaves (a lone self-read is a copy, not a
  // reduction), exactly one of which is the self-read of the written
  // cell, and no other leaf may touch the accumulator array at all --
  // `x[i] = x[i] + x[i-1]` or `x[i] = x[i] + x[i]` must not relax.
  if (leaves.size() < 2) return false;
  std::size_t self_reads = 0;
  for (const ir::Expr* leaf : leaves) {
    if (is_self_access(*leaf, w)) {
      ++self_reads;
    } else if (touches_array(leaf, w.array_id)) {
      return false;
    }
  }
  return self_reads == 1;
}

/// Depth up to which every disjunct of `flow` forces equal producer and
/// consumer iterators (delta_l == 0 for l < depth).
std::size_t flow_tie_depth(const ValueFlow& f, const lp::IlpOptions& ilp) {
  const std::size_t limit = std::min(f.src_dim, f.dst_dim);
  for (std::size_t l = 0; l < limit; ++l) {
    const std::size_t dims = f.poly.dims();
    poly::AffineExpr delta = poly::AffineExpr::var(dims, f.src_dim + l) -
                             poly::AffineExpr::var(dims, l);
    for (const poly::IntegerSet& d : f.poly.disjuncts()) {
      support::budget_op(support::BudgetSite::kAnalysisReductions);
      poly::IntegerSet fwd = d;
      fwd.add_constraint(poly::Constraint::ge0(delta.plus_const(-1)));
      if (!fwd.is_empty(ilp)) return l;
      poly::IntegerSet bwd = d;
      bwd.add_constraint(poly::Constraint::ge0((-delta).plus_const(-1)));
      if (!bwd.is_empty(ilp)) return l;
    }
  }
  return limit;
}

}  // namespace

bool match_reduction(const ir::Statement& s, ReductionOp* op_out) {
  for (const ReductionOp op : {ReductionOp::kSum, ReductionOp::kProd,
                               ReductionOp::kMin, ReductionOp::kMax}) {
    if (match_reduction_op(s, op)) {
      if (op_out != nullptr) *op_out = op;
      return true;
    }
  }
  return false;
}

ReductionInfo analyze_reductions(const ir::Scop& scop,
                                 const ddg::DependenceGraph& dg,
                                 const ReductionOptions& options) {
  ReductionInfo info;

  // Budget faults raised inside poly queries are recovered conservatively
  // down in is_empty (the set is assumed non-empty, which only shrinks
  // our claims), so they never reach the degrading wrapper. Snapshot the
  // fault count so a recovered fault still surfaces as a remark.
  const support::Budget* budget = support::current_budget();
  const i64 faults_before = budget != nullptr ? budget->faults() : 0;
  const i64 injected_before =
      support::current_metrics().get(support::Counter::kBudgetInjectedFaults);

  // --- Reduction statements and their relaxable self-dependences. ---
  std::vector<int> op_of_stmt(scop.num_statements(), -1);
  for (std::size_t s = 0; s < scop.num_statements(); ++s) {
    support::budget_op(support::BudgetSite::kAnalysisReductions);
    ReductionOp op;
    if (!match_reduction(scop.statement(s), &op)) continue;
    op_of_stmt[s] = static_cast<int>(op);
    info.statements.push_back(
        {s, op, scop.statement(s).write().array_id, 0});
  }
  // dep_id is the *index* into dg.deps() -- the schedule's native
  // dependence domain (satisfied/carried bookkeeping is positional) --
  // not the global Dependence::id, which also numbers RAR deps.
  for (std::size_t i = 0; i < dg.deps().size(); ++i) {
    const ddg::Dependence& d = dg.deps()[i];
    if (!d.is_real() || d.src != d.dst) continue;
    if (op_of_stmt[d.src] < 0) continue;
    const auto op = static_cast<ReductionOp>(op_of_stmt[d.src]);
    info.relaxable.push_back(
        {i, d.src, dg.scop().statement(d.src).write().array_id, op});
    for (ReductionStatement& rs : info.statements)
      if (rs.stmt == d.src) ++rs.self_deps;
  }

  // --- Privatizable arrays, from value-based dataflow. ---
  if (options.privatization) {
    DataflowOptions dopt;
    dopt.ilp = options.ilp;
    const Dataflow df = compute_dataflow(scop, dg, dopt);
    const std::size_t na = scop.arrays().size();
    // Per array: smallest tie depth over its flows (SIZE_MAX = no flow
    // seen yet), and whether any read observes initial contents.
    std::vector<std::size_t> depth(na, SIZE_MAX);
    std::vector<bool> has_flow(na, false), tainted(na, false);
    for (const ValueFlow& f : df.flows) {
      const std::size_t a =
          scop.statement(f.dst).accesses()[f.dst_access].array_id;
      has_flow[a] = true;
      if (tainted[a] || depth[a] == 0) continue;
      depth[a] = std::min(depth[a], flow_tie_depth(f, options.ilp));
    }
    for (const ReadCover& c : df.covers) {
      const std::size_t a =
          scop.statement(c.stmt).accesses()[c.access].array_id;
      support::budget_op(support::BudgetSite::kAnalysisReductions);
      if (!c.uncovered.is_empty(options.ilp)) tainted[a] = true;
    }
    for (std::size_t a = 0; a < na; ++a) {
      if (!has_flow[a] || tainted[a]) continue;
      if (depth[a] == SIZE_MAX || depth[a] == 0) continue;
      info.privatizable.push_back({a, depth[a]});
    }
  }

  // --- Counters and remarks (serial, deterministic order). ---
  support::count(support::Counter::kReductionStatements,
                 static_cast<i64>(info.statements.size()));
  support::count(support::Counter::kReductionRelaxedDeps,
                 static_cast<i64>(info.relaxable.size()));
  support::count(support::Counter::kReductionPrivArrays,
                 static_cast<i64>(info.privatizable.size()));
  if (budget != nullptr && budget->faults() > faults_before) {
    // Some query degraded to a conservative answer (fewer claims, never
    // wrong ones). Surface the downgrade once so --explain shows why the
    // report is smaller than expected.
    support::count(support::Counter::kBudgetDowngrades);
    const bool injected =
        support::current_metrics().get(
            support::Counter::kBudgetInjectedFaults) > injected_before;
    if (support::Tracer::remarks_on())
      support::remark("budget",
                      "reduction analysis degraded to conservative answers",
                      {{"cause", injected ? "fault-injected"
                                          : "budget-exhausted"}});
  }
  if (support::Tracer::remarks_on()) {
    for (const ReductionStatement& rs : info.statements)
      support::remark(
          "reduction", "associative reduction",
          {{"stmt", scop.statement(rs.stmt).name()},
           {"op", ir::to_string(rs.op)},
           {"array", scop.array(rs.array_id).name},
           {"self_deps", std::to_string(rs.self_deps)}});
    for (const PrivatizableArray& pa : info.privatizable)
      support::remark("reduction", "privatizable array",
                      {{"array", scop.array(pa.array_id).name},
                       {"depth", std::to_string(pa.depth)}});
  }
  return info;
}

ReductionInfo analyze_reductions_degrading(const ir::Scop& scop,
                                           const ddg::DependenceGraph& dg,
                                           const ReductionOptions& options) {
  try {
    return analyze_reductions(scop, dg, options);
  } catch (const support::BudgetExceeded& e) {
    // Sound degradation: claim nothing, relax nothing. The scheduler
    // then treats every dependence as hard, exactly as --no-reductions.
    support::count(support::Counter::kBudgetDowngrades);
    if (support::Tracer::remarks_on())
      support::remark("reduction", "reduction analysis degraded to empty",
                      {{"cause", e.cause()}});
    ReductionInfo info;
    info.degraded = true;
    return info;
  }
}

std::string render_reductions_text(const ir::Scop& scop,
                                   const ddg::DependenceGraph& dg,
                                   const ReductionInfo& info) {
  std::ostringstream os;
  os << "reductions: " << scop.name() << "\n";
  if (info.degraded) os << "  (degraded: budget exhausted; nothing claimed)\n";
  if (info.statements.empty()) os << "  no reduction statements\n";
  for (const ReductionStatement& rs : info.statements)
    os << "  " << scop.statement(rs.stmt).name() << ": "
       << scop.array(rs.array_id).name << " op=" << ir::to_string(rs.op)
       << " self_deps=" << rs.self_deps << "\n";
  os << "  relaxable dependences: " << info.relaxable.size() << " of "
     << dg.deps().size() << "\n";
  if (!info.privatizable.empty()) {
    os << "  privatizable:";
    for (const PrivatizableArray& pa : info.privatizable)
      os << " " << scop.array(pa.array_id).name << "(depth=" << pa.depth
         << ")";
    os << "\n";
  }
  return os.str();
}

std::string render_reductions_json(const ir::Scop& scop,
                                   const ddg::DependenceGraph& dg,
                                   const ReductionInfo& info) {
  std::ostringstream os;
  os << "{\"reductions\": {\"scop\": \"" << scop.name() << "\", ";
  os << "\"degraded\": " << (info.degraded ? "true" : "false") << ", ";
  os << "\"statements\": [";
  for (std::size_t i = 0; i < info.statements.size(); ++i) {
    const ReductionStatement& rs = info.statements[i];
    if (i != 0) os << ", ";
    os << "{\"stmt\": \"" << scop.statement(rs.stmt).name() << "\", \"op\": \""
       << ir::to_string(rs.op) << "\", \"array\": \""
       << scop.array(rs.array_id).name << "\", \"self_deps\": " << rs.self_deps
       << "}";
  }
  os << "], \"relaxable_dep_ids\": [";
  for (std::size_t i = 0; i < info.relaxable.size(); ++i) {
    if (i != 0) os << ", ";
    os << info.relaxable[i].dep_id;
  }
  os << "], \"num_dependences\": " << dg.deps().size();
  os << ", \"privatizable\": [";
  for (std::size_t i = 0; i < info.privatizable.size(); ++i) {
    const PrivatizableArray& pa = info.privatizable[i];
    if (i != 0) os << ", ";
    os << "{\"array\": \"" << scop.array(pa.array_id).name
       << "\", \"depth\": " << pa.depth << "}";
  }
  os << "]}}\n";
  return os.str();
}

}  // namespace pf::analysis
