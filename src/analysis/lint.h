// Static program lints over the polyhedral IR: exact correctness checks
// and performance diagnostics, computed before any transformation runs.
//
// Four lints (docs/analysis.md has the full story):
//
//  * Out-of-bounds access (error): for every access subscript, the
//    domain-and-context points where it falls below 0 or reaches the
//    declared extent. Exact: each violation polyhedron is decided by the
//    ILP and comes with a concrete witness iteration.
//
//  * Uninitialized read (error, `local` arrays only): read instances of
//    a scop-local array that no earlier write covers (memory-based
//    coverage from the DDG's flow dependences). For regular arrays the
//    same set is the scop's *live-in* region -- legitimate input, not
//    reported.
//
//  * Dead write (error for `local` arrays, warning otherwise): write
//    instances whose value no read ever consumes under value-based
//    dataflow. A local array has no live-out role, so every unused
//    write is dead; for a regular array the write must additionally be
//    overwritten later (classical dead store) -- an un-overwritten final
//    write is the scop's output.
//
//  * Performance diagnostics (perf severity, never affect the exit
//    code): accesses whose innermost-loop stride is not 0 or 1 in the
//    innermost array dimension (non-contiguous / transposed, in the
//    spirit of the "performance vocabulary" line of work), and
//    value-based producer/consumer pairs whose outermost-loop distance
//    is a nonzero constant (fusion needs a shift) or non-uniform
//    (fusion-blocking).
//
// Findings are structured so tests can assert exact diagnostics, land on
// the decision-remark channel as category "lint", and feed the lint_*
// stats counters. Everything runs serially over the deterministically
// merged dependence graph: output is byte-identical at every --jobs.
#pragma once

#include <string>
#include <vector>

#include "analysis/dataflow.h"
#include "ddg/dependences.h"
#include "ir/scop.h"

namespace pf::analysis {

enum class LintKind {
  kOutOfBounds,     // access can leave the declared extents
  kUninitRead,      // local-array read no write defined
  kDeadWrite,       // written value never consumed
  kNonContiguous,   // innermost-loop stride breaks spatial locality
  kFusionDistance,  // producer/consumer distance hinders fusion
};

enum class Severity {
  kError,    // correctness: --lint=strict exits 1
  kWarning,  // suspicious but defensible: reported, never fatal
  kPerf,     // performance diagnostic: reported, never fatal
};

const char* to_string(LintKind k);
const char* to_string(Severity s);

/// One lint finding, precise enough to assert in a test: which
/// statement, array, access and subscript dim / loop level, plus a
/// human-readable detail with a concrete witness point where one exists.
struct LintFinding {
  LintKind kind = LintKind::kOutOfBounds;
  Severity severity = Severity::kError;
  std::size_t stmt = SIZE_MAX;    // statement index
  std::size_t stmt2 = SIZE_MAX;   // consumer statement (fusion distance)
  std::size_t array = SIZE_MAX;   // array id
  std::size_t access = SIZE_MAX;  // access index within the statement
  std::size_t dim = SIZE_MAX;     // subscript dim, or loop level
  std::string detail;

  /// "error out-of-bounds S1 a (dim 0): ..." -- names resolved when a
  /// scop is supplied.
  std::string to_string(const ir::Scop* scop = nullptr) const;
};

struct LintReport {
  std::vector<LintFinding> findings;
  std::size_t checked_accesses = 0;  // accesses bounds/coverage-checked
  std::size_t value_flows = 0;       // value-based flows computed

  std::size_t num_errors() const;
  std::size_t num_warnings() const;
  std::size_t num_perf() const;
  /// No *error* findings (warnings and perf notes do not fail a lint).
  bool ok() const { return num_errors() == 0; }

  /// Multi-line report: one line per finding plus the summary.
  std::string to_string(const ir::Scop* scop = nullptr) const;
  /// "lint: checked N access(es), M value flow(s): ok" or the counts.
  std::string summary() const;
};

struct LintOptions {
  lp::IlpOptions ilp;
  bool bounds = true;
  bool uninit = true;
  bool dead = true;
  bool perf = true;
};

/// Run every enabled lint. `dg` must be the memory-based dependence
/// graph of `scop`. Emits one remark per finding plus a summary remark
/// (category "lint") and feeds the lint_* stats counters.
LintReport run_lint(const ir::Scop& scop, const ddg::DependenceGraph& dg,
                    const LintOptions& options = {});

}  // namespace pf::analysis
