// Feautrier-style value-based dataflow, computed by last-writer
// subtraction over the memory-based dependence graph.
//
// The DDG's flow dependences are *memory-based*: S -> T whenever S
// writes a cell T later reads, even if another write U overwrote the
// cell in between. Value-based dataflow keeps only the pairs where S is
// the *last* writer, i.e. the flows along which a value actually
// travels. It is computed here exactly as a subtraction problem:
//
//   VB(S -> T)  =  D(S -> T)  -  union over writers U of
//                  project_u { (s, u, t) :  s in dom(S), u in dom(U),
//                              t in dom(T),  A_U(u) == A_T(t),
//                              s <lex u <lex t }
//
// where D is the union of the memory-based flow polyhedra (all
// precedence cases) of the access pair, `<lex` is the original program
// order (prefix-equal + strictly-smaller at a shared loop, or textual
// order at equal prefixes -- the DDG's own precedence encoding), and
// project_u is Fourier-Motzkin elimination of the intermediate writer's
// iterators. The subtraction needs a union of polyhedra: this is what
// poly::SetUnion exists for.
//
// From the same machinery two per-access summaries fall out:
//  * ReadCover: the read instances *no* write precedes (they observe the
//    array's initial contents -- the scop's live-in set), and
//  * WriteLiveness: `unused` write instances whose value no read ever
//    uses, and `killed` instances later overwritten; `unused & killed`
//    is the classical dead store, `unused` alone is dead for a `local`
//    array (which has no live-out role).
//
// Everything runs serially over the deterministically-merged dependence
// graph, so results (and any remarks derived from them) are identical at
// every --jobs count.
#pragma once

#include <vector>

#include "ddg/dependences.h"
#include "ir/scop.h"
#include "poly/set_union.h"

namespace pf::analysis {

/// One value-based producer/consumer flow: the last-writer instances of
/// statement `src` feeding read `dst_access` of statement `dst`.
struct ValueFlow {
  std::size_t src = 0, dst = 0;  // statement indices
  std::size_t dst_access = 0;    // read access index in dst's accesses()
  std::size_t src_dim = 0, dst_dim = 0, num_params = 0;
  /// Space [src iters, dst iters, params], like a dependence polyhedron.
  poly::SetUnion poly{0};
};

/// Per read access: the instances fed by no earlier write at all.
struct ReadCover {
  std::size_t stmt = 0;
  std::size_t access = 0;  // read access index
  /// Space [stmt iters, params]: reads of the array's initial contents.
  poly::SetUnion uncovered{0};
};

/// Per statement (its single write access): liveness of written values.
struct WriteLiveness {
  std::size_t stmt = 0;
  /// Space [stmt iters, params]: instances whose value no read ever
  /// consumes (under value-based flow).
  poly::SetUnion unused{0};
  /// Space [stmt iters, params]: instances a later write overwrites.
  poly::SetUnion killed{0};
};

struct Dataflow {
  std::vector<ValueFlow> flows;        // non-empty flows only
  std::vector<ReadCover> covers;       // one per read access
  std::vector<WriteLiveness> writes;   // one per statement
};

struct DataflowOptions {
  lp::IlpOptions ilp;
};

/// Compute value-based dataflow for the whole scop. `dg` must be the
/// memory-based dependence graph of `scop` (RAR dependences unused).
Dataflow compute_dataflow(const ir::Scop& scop,
                          const ddg::DependenceGraph& dg,
                          const DataflowOptions& options = {});

}  // namespace pf::analysis
