#include "analysis/lint.h"

#include <algorithm>
#include <sstream>

#include "support/budget.h"
#include "support/error.h"
#include "support/stats.h"
#include "support/trace.h"

namespace pf::analysis {

using poly::AffineExpr;
using poly::Constraint;
using poly::IntegerSet;
using poly::SetUnion;

const char* to_string(LintKind k) {
  switch (k) {
    case LintKind::kOutOfBounds:
      return "out-of-bounds";
    case LintKind::kUninitRead:
      return "uninitialized-read";
    case LintKind::kDeadWrite:
      return "dead-write";
    case LintKind::kNonContiguous:
      return "noncontiguous-access";
    case LintKind::kFusionDistance:
      return "fusion-distance";
  }
  return "?";
}

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kPerf:
      return "perf";
  }
  return "?";
}

std::string LintFinding::to_string(const ir::Scop* scop) const {
  std::ostringstream os;
  os << analysis::to_string(severity) << " " << analysis::to_string(kind);
  if (stmt != SIZE_MAX) {
    os << " "
       << (scop ? scop->statement(stmt).name() : "S" + std::to_string(stmt));
    if (stmt2 != SIZE_MAX)
      os << " -> "
         << (scop ? scop->statement(stmt2).name()
                  : "S" + std::to_string(stmt2));
  }
  if (array != SIZE_MAX)
    os << " " << (scop ? scop->array(array).name : "a" + std::to_string(array));
  if (dim != SIZE_MAX) os << " (dim " << dim << ")";
  if (!detail.empty()) os << ": " << detail;
  return os.str();
}

std::size_t LintReport::num_errors() const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [](const LintFinding& f) {
        return f.severity == Severity::kError;
      }));
}

std::size_t LintReport::num_warnings() const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [](const LintFinding& f) {
        return f.severity == Severity::kWarning;
      }));
}

std::size_t LintReport::num_perf() const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [](const LintFinding& f) {
        return f.severity == Severity::kPerf;
      }));
}

std::string LintReport::summary() const {
  std::ostringstream os;
  os << "lint: checked " << checked_accesses << " access(es), " << value_flows
     << " value flow(s): ";
  if (findings.empty()) {
    os << "ok";
  } else {
    os << num_errors() << " error(s), " << num_warnings() << " warning(s), "
       << num_perf() << " perf note(s)";
  }
  return os.str();
}

std::string LintReport::to_string(const ir::Scop* scop) const {
  std::ostringstream os;
  for (const LintFinding& f : findings)
    os << "lint: " << f.to_string(scop) << "\n";
  os << summary() << "\n";
  return os.str();
}

namespace {

/// domain(s) restricted to the parameter context, over [iters, params].
IntegerSet domain_in_context(const ir::Scop& scop, const ir::Statement& s) {
  IntegerSet dc = s.domain();
  dc.intersect(scop.context().insert_dims(0, s.dim()));
  return dc;
}

/// " at i=0 j=5 N=8" for a witness point, or "" if none was found.
std::string witness(const IntegerSet& region,
                    const std::vector<std::string>& names,
                    const lp::IlpOptions& ilp) {
  const auto point = region.sample_point(ilp);
  if (!point) return "";
  std::ostringstream os;
  os << " at";
  for (std::size_t k = 0; k < point->size(); ++k)
    os << " " << (k < names.size() ? names[k] : "x" + std::to_string(k)) << "="
       << (*point)[k];
  return os.str();
}

std::string witness(const SetUnion& region,
                    const std::vector<std::string>& names,
                    const lp::IlpOptions& ilp) {
  for (const IntegerSet& d : region.disjuncts()) {
    std::string w = witness(d, names, ilp);
    if (!w.empty()) return w;
  }
  return "";
}

void check_bounds(const ir::Scop& scop, const LintOptions& options,
                  LintReport* report) {
  for (const ir::Statement& s : scop.statements()) {
    const IntegerSet dom = domain_in_context(scop, s);
    const std::vector<std::string> names = scop.space_names(s);
    const std::size_t m = s.dim();
    for (std::size_t x = 0; x < s.accesses().size(); ++x) {
      const ir::Access& acc = s.accesses()[x];
      ++report->checked_accesses;
      const ir::Array& arr = scop.array(acc.array_id);
      for (std::size_t d = 0; d < acc.subscripts.size(); ++d) {
        const AffineExpr& sub = acc.subscripts[d];
        const AffineExpr extent =
            arr.extents[d].resolve(scop.params()).insert_dims(0, m);

        IntegerSet below = dom;  // sub <= -1
        below.add_constraint(Constraint::ge0((-sub).plus_const(-1)));
        IntegerSet above = dom;  // sub >= extent
        above.add_constraint(Constraint::ge0(sub - extent));

        for (const auto& [region, what] :
             {std::make_pair(below, "below 0"),
              std::make_pair(above, "beyond the extent")}) {
          if (region.is_empty(options.ilp)) continue;
          LintFinding f;
          f.kind = LintKind::kOutOfBounds;
          f.severity = Severity::kError;
          f.stmt = s.index();
          f.array = acc.array_id;
          f.access = x;
          f.dim = d;
          std::ostringstream det;
          det << (acc.is_write ? "write" : "read") << " subscript "
              << sub.to_string(names) << " can fall " << what << " (extent "
              << arr.extents[d].to_string() << ")"
              << witness(region, names, options.ilp);
          f.detail = det.str();
          report->findings.push_back(std::move(f));
        }
      }
    }
  }
}

void check_uninit(const ir::Scop& scop, const Dataflow& df,
                  const LintOptions& options, LintReport* report) {
  for (const ReadCover& rc : df.covers) {
    const ir::Statement& s = scop.statement(rc.stmt);
    const ir::Access& acc = s.accesses()[rc.access];
    const ir::Array& arr = scop.array(acc.array_id);
    // For a regular array the uncovered reads are the live-in set --
    // legitimate input. Only a `local` array has no initial contents.
    if (!arr.is_local) continue;
    if (rc.uncovered.trivially_empty() || rc.uncovered.is_empty(options.ilp))
      continue;
    const std::vector<std::string> names = scop.space_names(s);
    LintFinding f;
    f.kind = LintKind::kUninitRead;
    f.severity = Severity::kError;
    f.stmt = rc.stmt;
    f.array = acc.array_id;
    f.access = rc.access;
    std::ostringstream det;
    det << "read of local array cell no write defined, instances "
        << rc.uncovered.to_string(names)
        << witness(rc.uncovered, names, options.ilp);
    f.detail = det.str();
    report->findings.push_back(std::move(f));
  }
}

void check_dead(const ir::Scop& scop, const Dataflow& df,
                const LintOptions& options, LintReport* report) {
  for (const WriteLiveness& wl : df.writes) {
    const ir::Statement& s = scop.statement(wl.stmt);
    const ir::Array& arr = scop.array(s.write().array_id);
    // Local arrays have no live-out: any unused write is dead. Regular
    // arrays are outputs: a write is only dead if also overwritten.
    SetUnion dead =
        arr.is_local ? wl.unused : wl.unused.intersect(wl.killed);
    dead.coalesce(options.ilp);
    if (dead.trivially_empty()) continue;
    const std::vector<std::string> names = scop.space_names(s);
    LintFinding f;
    f.kind = LintKind::kDeadWrite;
    f.severity = arr.is_local ? Severity::kError : Severity::kWarning;
    f.stmt = wl.stmt;
    f.array = s.write().array_id;
    f.access = 0;
    std::ostringstream det;
    det << (arr.is_local
                ? "written value never read (local array has no live-out)"
                : "written value overwritten before any read")
        << ", instances " << dead.to_string(names)
        << witness(dead, names, options.ilp);
    f.detail = det.str();
    report->findings.push_back(std::move(f));
  }
}

void check_contiguity(const ir::Scop& scop, LintReport* report) {
  for (const ir::Statement& s : scop.statements()) {
    const std::size_t m = s.dim();
    if (m == 0) continue;
    const std::size_t inner = m - 1;  // innermost iterator position
    const std::vector<std::string> names = scop.space_names(s);
    for (std::size_t x = 0; x < s.accesses().size(); ++x) {
      const ir::Access& acc = s.accesses()[x];
      if (acc.subscripts.empty()) continue;
      const std::size_t rank = acc.subscripts.size();
      // Row-major: only the last subscript is stride-1.
      std::size_t outer_dim = SIZE_MAX;
      for (std::size_t d = 0; d + 1 < rank; ++d)
        if (acc.subscripts[d].coeff(inner) != 0) {
          outer_dim = d;
          break;
        }
      const i64 c_last = acc.subscripts[rank - 1].coeff(inner);
      LintFinding f;
      f.kind = LintKind::kNonContiguous;
      f.severity = Severity::kPerf;
      f.stmt = s.index();
      f.array = acc.array_id;
      f.access = x;
      std::ostringstream det;
      if (outer_dim != SIZE_MAX) {
        f.dim = outer_dim;
        det << "innermost iterator " << names[inner]
            << " indexes a non-innermost array dimension "
               "(transposed/column-major walk; row-major stride is the "
               "extent product)";
      } else if (c_last != 0 && c_last != 1 && c_last != -1) {
        f.dim = rank - 1;
        det << "innermost-loop stride " << c_last
            << " in the contiguous dimension";
      } else {
        continue;  // contiguous (stride 1) or loop-invariant (stride 0)
      }
      f.detail = det.str();
      report->findings.push_back(std::move(f));
    }
  }
}

void check_fusion_distance(const ir::Scop& scop, const Dataflow& df,
                           const LintOptions& options, LintReport* report) {
  for (const ValueFlow& vf : df.flows) {
    if (vf.src == vf.dst) continue;  // recurrences are not a fusion issue
    if (vf.src_dim == 0 || vf.dst_dim == 0) continue;
    const std::size_t total = vf.src_dim + vf.dst_dim + vf.num_params;
    // Outermost-loop distance t0 - s0 over the value-based flow.
    const AffineExpr delta = AffineExpr::var(total, vf.src_dim) -
                             AffineExpr::var(total, 0);
    bool unbounded = false, unknown = false;
    bool have = false;
    i64 lo = 0, hi = 0;
    for (const IntegerSet& d : vf.poly.disjuncts()) {
      const auto mn = d.integer_min(delta, options.ilp);
      const auto mx = d.integer_max(delta, options.ilp);
      if (mn.kind == IntegerSet::Opt::kEmpty ||
          mx.kind == IntegerSet::Opt::kEmpty)
        continue;
      if (mn.kind == IntegerSet::Opt::kUnbounded ||
          mx.kind == IntegerSet::Opt::kUnbounded) {
        unbounded = true;
        continue;
      }
      if (mn.kind != IntegerSet::Opt::kOk || mx.kind != IntegerSet::Opt::kOk) {
        unknown = true;
        continue;
      }
      lo = have ? std::min(lo, mn.value) : mn.value;
      hi = have ? std::max(hi, mx.value) : mx.value;
      have = true;
    }
    if (unknown && !have && !unbounded) continue;
    if (!have && !unbounded) continue;
    if (have && !unbounded && lo == 0 && hi == 0)
      continue;  // aligned producer/consumer: fusion-friendly
    LintFinding f;
    f.kind = LintKind::kFusionDistance;
    f.severity = Severity::kPerf;
    f.stmt = vf.src;
    f.stmt2 = vf.dst;
    f.array = scop.statement(vf.dst).accesses()[vf.dst_access].array_id;
    f.access = vf.dst_access;
    f.dim = 0;  // outermost loop level
    std::ostringstream det;
    if (unbounded)
      det << "unbounded producer/consumer distance at the outermost loop "
             "(all-to-all reuse): fusion is blocked";
    else if (lo == hi)
      det << "constant producer/consumer distance " << lo
          << " at the outermost loop: fusion needs a shift/peel of "
          << (lo < 0 ? -lo : lo) << " iteration(s)";
    else
      det << "non-uniform producer/consumer distance [" << lo << ", " << hi
          << "] at the outermost loop: fusion of the pair is hindered";
    f.detail = det.str();
    report->findings.push_back(std::move(f));
  }
}

}  // namespace

LintReport run_lint(const ir::Scop& scop, const ddg::DependenceGraph& dg,
                    const LintOptions& options) {
  support::TraceSpan span("analysis", "run_lint");
  // Must-complete checker: budgeted (conservative) polyhedral answers
  // would turn into phantom findings, so the linter always runs exact.
  support::BudgetSuspend budget_suspend;
  PF_CHECK_MSG(&dg.scop() == &scop, "dependence graph built for another scop");
  LintReport report;

  if (options.bounds) check_bounds(scop, options, &report);

  const bool need_dataflow = options.uninit || options.dead || options.perf;
  if (need_dataflow) {
    DataflowOptions dopts;
    dopts.ilp = options.ilp;
    const Dataflow df = compute_dataflow(scop, dg, dopts);
    report.value_flows = df.flows.size();
    if (options.uninit) check_uninit(scop, df, options, &report);
    if (options.dead) check_dead(scop, df, options, &report);
    if (options.perf) {
      check_contiguity(scop, &report);
      check_fusion_distance(scop, df, options, &report);
    }
  }

  support::count(support::Counter::kLintCheckedAccesses,
                 static_cast<i64>(report.checked_accesses));
  support::count(support::Counter::kLintValueFlows,
                 static_cast<i64>(report.value_flows));
  support::count(support::Counter::kLintFindings,
                 static_cast<i64>(report.findings.size()));
  support::count(support::Counter::kLintErrors,
                 static_cast<i64>(report.num_errors()));
  if (span.active()) {
    span.attr("checked_accesses", static_cast<i64>(report.checked_accesses));
    span.attr("value_flows", static_cast<i64>(report.value_flows));
    span.attr("findings", static_cast<i64>(report.findings.size()));
  }
  if (support::Tracer::remarks_on()) {
    for (const LintFinding& f : report.findings)
      support::remark("lint", f.to_string(&scop),
                      {{"kind", analysis::to_string(f.kind)},
                       {"severity", analysis::to_string(f.severity)}});
    support::remark("lint", report.summary(),
                    {{"checked_accesses",
                      std::to_string(report.checked_accesses)},
                     {"value_flows", std::to_string(report.value_flows)},
                     {"errors", std::to_string(report.num_errors())},
                     {"findings", std::to_string(report.findings.size())}});
  }
  return report;
}

}  // namespace pf::analysis
