// Lexer for PolyLang, polyfuse's small affine-loop language.
//
// PolyLang is the textual frontend used to author the benchmark programs
// (the role ROSE/clang frontends play for PolyOpt/Polly). Example:
//
//   scop gemver(N) {
//     context N >= 4;
//     array A[N][N]; array u1[N]; array v1[N];
//     for (i = 0 .. N-1) {
//       for (j = 0 .. N-1) {
//         S1: A[i][j] = A[i][j] + u1[i] * v1[j];
//       }
//     }
//   }
#pragma once

#include <string>
#include <vector>

#include "support/error.h"

namespace pf::frontend {

enum class TokKind {
  kIdent,
  kInt,
  kFloat,
  // punctuation
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kSemi,
  kColon,
  kAssign,    // =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kDotDot,    // ..
  kGe,        // >=
  kLe,        // <=
  kEq,        // ==
  kEof,
};

const char* to_string(TokKind k);

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  long long int_value = 0;
  double float_value = 0.0;
  int line = 1;
  int col = 1;
};

/// Tokenize; throws pf::Error with line/column on invalid input.
/// Comments run from '#' or '//' to end of line.
std::vector<Token> tokenize(const std::string& source);

}  // namespace pf::frontend
