#include "frontend/lexer.h"

#include <cctype>
#include <sstream>

#include "support/error.h"

namespace pf::frontend {

const char* to_string(TokKind k) {
  switch (k) {
    case TokKind::kIdent:
      return "identifier";
    case TokKind::kInt:
      return "integer";
    case TokKind::kFloat:
      return "float";
    case TokKind::kLParen:
      return "'('";
    case TokKind::kRParen:
      return "')'";
    case TokKind::kLBracket:
      return "'['";
    case TokKind::kRBracket:
      return "']'";
    case TokKind::kLBrace:
      return "'{'";
    case TokKind::kRBrace:
      return "'}'";
    case TokKind::kComma:
      return "','";
    case TokKind::kSemi:
      return "';'";
    case TokKind::kColon:
      return "':'";
    case TokKind::kAssign:
      return "'='";
    case TokKind::kPlus:
      return "'+'";
    case TokKind::kMinus:
      return "'-'";
    case TokKind::kStar:
      return "'*'";
    case TokKind::kSlash:
      return "'/'";
    case TokKind::kDotDot:
      return "'..'";
    case TokKind::kGe:
      return "'>='";
    case TokKind::kLe:
      return "'<='";
    case TokKind::kEq:
      return "'=='";
    case TokKind::kEof:
      return "end of input";
  }
  return "?";
}

namespace {

// A user-facing located diagnostic: no PF_FAIL here -- that macro
// prefixes the polyfuse source file/line ("check failed"), which is
// noise for an input error. The position is the input's line:col.
[[noreturn]] void lex_error(int line, int col, const std::string& msg) {
  std::ostringstream os;
  os << "PolyLang lex error at " << line << ":" << col << ": " << msg;
  throw Error(os.str());
}

}  // namespace

std::vector<Token> tokenize(const std::string& source) {
  std::vector<Token> out;
  int line = 1, col = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto peek = [&](std::size_t off = 0) -> char {
    return i + off < n ? source[i + off] : '\0';
  };
  auto advance = [&]() {
    if (source[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++i;
  };
  auto push = [&](TokKind k, std::string text, int l, int c) {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.line = l;
    t.col = c;
    out.push_back(std::move(t));
  };

  while (i < n) {
    const char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    // Comments: '#' or '//' to end of line.
    if (c == '#' || (c == '/' && peek(1) == '/')) {
      while (i < n && peek() != '\n') advance();
      continue;
    }
    const int tl = line, tc = col;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (i < n && (std::isalnum(static_cast<unsigned char>(peek())) ||
                       peek() == '_')) {
        ident += peek();
        advance();
      }
      push(TokKind::kIdent, std::move(ident), tl, tc);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(peek()))) {
        num += peek();
        advance();
      }
      // A '.' starts a fraction only if NOT followed by another '.'
      // (which would be the '..' range operator).
      if (peek() == '.' && peek(1) != '.') {
        is_float = true;
        num += peek();
        advance();
        while (i < n && std::isdigit(static_cast<unsigned char>(peek()))) {
          num += peek();
          advance();
        }
      }
      if (peek() == 'e' || peek() == 'E') {
        is_float = true;
        num += peek();
        advance();
        if (peek() == '+' || peek() == '-') {
          num += peek();
          advance();
        }
        if (!std::isdigit(static_cast<unsigned char>(peek())))
          lex_error(line, col, "malformed exponent");
        while (i < n && std::isdigit(static_cast<unsigned char>(peek()))) {
          num += peek();
          advance();
        }
      }
      Token t;
      t.kind = is_float ? TokKind::kFloat : TokKind::kInt;
      t.text = num;
      t.line = tl;
      t.col = tc;
      // stoll/stod throw std::out_of_range on over-long literals; turn
      // that into a located diagnostic instead of letting a bare
      // standard-library exception escape the frontend.
      try {
        if (is_float)
          t.float_value = std::stod(num);
        else
          t.int_value = std::stoll(num);
      } catch (const std::exception&) {
        lex_error(tl, tc, "numeric literal '" + num + "' out of range");
      }
      out.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '(':
        push(TokKind::kLParen, "(", tl, tc);
        advance();
        continue;
      case ')':
        push(TokKind::kRParen, ")", tl, tc);
        advance();
        continue;
      case '[':
        push(TokKind::kLBracket, "[", tl, tc);
        advance();
        continue;
      case ']':
        push(TokKind::kRBracket, "]", tl, tc);
        advance();
        continue;
      case '{':
        push(TokKind::kLBrace, "{", tl, tc);
        advance();
        continue;
      case '}':
        push(TokKind::kRBrace, "}", tl, tc);
        advance();
        continue;
      case ',':
        push(TokKind::kComma, ",", tl, tc);
        advance();
        continue;
      case ';':
        push(TokKind::kSemi, ";", tl, tc);
        advance();
        continue;
      case ':':
        push(TokKind::kColon, ":", tl, tc);
        advance();
        continue;
      case '+':
        push(TokKind::kPlus, "+", tl, tc);
        advance();
        continue;
      case '*':
        push(TokKind::kStar, "*", tl, tc);
        advance();
        continue;
      case '/':
        push(TokKind::kSlash, "/", tl, tc);
        advance();
        continue;
      case '-':
        push(TokKind::kMinus, "-", tl, tc);
        advance();
        continue;
      case '.':
        if (peek(1) == '.') {
          push(TokKind::kDotDot, "..", tl, tc);
          advance();
          advance();
          continue;
        }
        lex_error(tl, tc, "stray '.'");
      case '>':
        if (peek(1) == '=') {
          push(TokKind::kGe, ">=", tl, tc);
          advance();
          advance();
          continue;
        }
        lex_error(tl, tc, "expected '>='");
      case '<':
        if (peek(1) == '=') {
          push(TokKind::kLe, "<=", tl, tc);
          advance();
          advance();
          continue;
        }
        lex_error(tl, tc, "expected '<='");
      case '=':
        if (peek(1) == '=') {
          push(TokKind::kEq, "==", tl, tc);
          advance();
          advance();
          continue;
        }
        push(TokKind::kAssign, "=", tl, tc);
        advance();
        continue;
      default:
        lex_error(tl, tc, std::string("unexpected character '") + c + "'");
    }
  }
  Token eof;
  eof.kind = TokKind::kEof;
  eof.line = line;
  eof.col = col;
  out.push_back(std::move(eof));
  return out;
}

}  // namespace pf::frontend
