#include "frontend/parser.h"

#include <map>
#include <optional>
#include <sstream>

#include "frontend/lexer.h"
#include "ir/builder.h"
#include "support/error.h"

namespace pf::frontend {

namespace {

using ir::NamedAffine;
using ir::NamedConstraint;

class Parser {
 public:
  explicit Parser(const std::string& source) : toks_(tokenize(source)) {}

  ir::Scop parse() {
    expect_keyword("scop");
    const std::string name = expect(TokKind::kIdent).text;
    expect(TokKind::kLParen);
    std::vector<std::string> params;
    if (!check(TokKind::kRParen)) {
      params.push_back(expect(TokKind::kIdent).text);
      while (accept(TokKind::kComma))
        params.push_back(expect(TokKind::kIdent).text);
    }
    expect(TokKind::kRParen);

    builder_.emplace(name, params);
    expect(TokKind::kLBrace);
    parse_items();
    expect(TokKind::kRBrace);
    expect(TokKind::kEof);
    return builder_->build();
  }

 private:
  // ---- token helpers -----------------------------------------------------

  const Token& cur() const { return toks_[pos_]; }

  // A user-facing located diagnostic (input line:col); deliberately not
  // PF_FAIL, which would prepend the polyfuse source location and "check
  // failed" -- noise that belongs to internal invariants only.
  [[noreturn]] void error(const std::string& msg) const {
    std::ostringstream os;
    os << "PolyLang parse error at " << cur().line << ":" << cur().col << ": "
       << msg;
    throw Error(os.str());
  }

  bool check(TokKind k) const { return cur().kind == k; }

  bool accept(TokKind k) {
    if (!check(k)) return false;
    ++pos_;
    return true;
  }

  Token expect(TokKind k) {
    if (!check(k))
      error(std::string("expected ") + to_string(k) + ", found " +
            (cur().kind == TokKind::kEof ? std::string(to_string(cur().kind))
                                         : "'" + cur().text + "'"));
    return toks_[pos_++];
  }

  bool check_keyword(const std::string& kw) const {
    return cur().kind == TokKind::kIdent && cur().text == kw;
  }

  void expect_keyword(const std::string& kw) {
    if (!check_keyword(kw)) error("expected keyword '" + kw + "'");
    ++pos_;
  }

  // ---- grammar -----------------------------------------------------------

  void parse_items() {
    while (!check(TokKind::kRBrace) && !check(TokKind::kEof)) parse_item();
  }

  void parse_item() {
    if (check_keyword("context")) {
      ++pos_;
      builder_->context(parse_relation());
      expect(TokKind::kSemi);
      return;
    }
    // `array a[N];` or `local array t[N];` -- `local` marks a scratch
    // array fully defined inside the scop (see docs/polylang.md).
    const bool is_local = check_keyword("local") &&
                          toks_[pos_ + 1].kind == TokKind::kIdent &&
                          toks_[pos_ + 1].text == "array";
    if (is_local) ++pos_;
    if (check_keyword("array")) {
      ++pos_;
      const std::string name = expect(TokKind::kIdent).text;
      std::vector<NamedAffine> extents;
      while (accept(TokKind::kLBracket)) {
        extents.push_back(parse_affine());
        expect(TokKind::kRBracket);
      }
      if (extents.empty()) error("array '" + name + "' needs an extent");
      arrays_[name] = builder_->array(name, std::move(extents), is_local);
      expect(TokKind::kSemi);
      return;
    }
    if (check_keyword("for")) {
      ++pos_;
      expect(TokKind::kLParen);
      const std::string it = expect(TokKind::kIdent).text;
      expect(TokKind::kAssign);
      NamedAffine lo = parse_affine();
      expect(TokKind::kDotDot);
      NamedAffine hi = parse_affine();
      expect(TokKind::kRParen);
      builder_->for_loop(it, std::move(lo), std::move(hi));
      expect(TokKind::kLBrace);
      parse_items();
      expect(TokKind::kRBrace);
      builder_->end_loop();
      return;
    }
    if (check_keyword("if")) {
      ++pos_;
      expect(TokKind::kLParen);
      builder_->begin_guard(parse_relation());
      expect(TokKind::kRParen);
      expect(TokKind::kLBrace);
      parse_items();
      expect(TokKind::kRBrace);
      builder_->end_guard();
      return;
    }
    parse_statement();
  }

  NamedConstraint parse_relation() {
    const NamedAffine lhs = parse_affine();
    if (accept(TokKind::kGe)) return lhs >= parse_affine();
    if (accept(TokKind::kLe)) return lhs <= parse_affine();
    if (accept(TokKind::kEq))
      return NamedConstraint::equals(lhs, parse_affine());
    error("expected '>=', '<=' or '=='");
  }

  void parse_statement() {
    // Optional label: IDENT ':'
    std::string label;
    if (check(TokKind::kIdent) && toks_[pos_ + 1].kind == TokKind::kColon) {
      label = expect(TokKind::kIdent).text;
      expect(TokKind::kColon);
    }
    const Token array_tok = expect(TokKind::kIdent);
    const auto it = arrays_.find(array_tok.text);
    if (it == arrays_.end())
      error("assignment to undeclared array '" + array_tok.text + "'");
    std::vector<NamedAffine> subs;
    while (accept(TokKind::kLBracket)) {
      subs.push_back(parse_affine());
      expect(TokKind::kRBracket);
    }
    expect(TokKind::kAssign);
    ir::ExprPtr body = parse_vexpr();
    expect(TokKind::kSemi);
    builder_->stmt(it->second, std::move(subs), std::move(body), label);
  }

  // ---- affine expressions -------------------------------------------------

  NamedAffine parse_affine() {
    NamedAffine acc = parse_affine_term();
    for (;;) {
      if (accept(TokKind::kPlus))
        acc += parse_affine_term();
      else if (accept(TokKind::kMinus))
        acc -= parse_affine_term();
      else
        return acc;
    }
  }

  NamedAffine parse_affine_term() {
    NamedAffine acc = parse_affine_factor();
    while (accept(TokKind::kStar)) {
      const NamedAffine rhs = parse_affine_factor();
      // Affine product: at least one side must be constant.
      if (rhs.is_constant())
        acc = acc * rhs.const_term();
      else if (acc.is_constant())
        acc = rhs * acc.const_term();
      else
        error("non-affine product of two variables");
    }
    return acc;
  }

  NamedAffine parse_affine_factor() {
    if (accept(TokKind::kMinus)) return -parse_affine_factor();
    if (check(TokKind::kInt)) {
      const Token t = expect(TokKind::kInt);
      return NamedAffine(static_cast<i64>(t.int_value));
    }
    if (check(TokKind::kIdent)) {
      const Token t = expect(TokKind::kIdent);
      if (arrays_.count(t.text) != 0)
        error("array '" + t.text + "' used in affine expression");
      return NamedAffine::var(t.text);
    }
    if (accept(TokKind::kLParen)) {
      NamedAffine e = parse_affine();
      expect(TokKind::kRParen);
      return e;
    }
    error("expected affine expression");
  }

  // ---- value (body) expressions --------------------------------------------

  ir::ExprPtr parse_vexpr() {
    ir::ExprPtr acc = parse_vterm();
    for (;;) {
      if (accept(TokKind::kPlus))
        acc = acc + parse_vterm();
      else if (accept(TokKind::kMinus))
        acc = acc - parse_vterm();
      else
        return acc;
    }
  }

  ir::ExprPtr parse_vterm() {
    ir::ExprPtr acc = parse_vfactor();
    for (;;) {
      if (accept(TokKind::kStar))
        acc = acc * parse_vfactor();
      else if (accept(TokKind::kSlash))
        acc = acc / parse_vfactor();
      else
        return acc;
    }
  }

  ir::ExprPtr parse_vfactor() {
    if (accept(TokKind::kMinus)) return -parse_vfactor();
    if (check(TokKind::kFloat)) return ir::num(expect(TokKind::kFloat).float_value);
    if (check(TokKind::kInt))
      return ir::num(static_cast<double>(expect(TokKind::kInt).int_value));
    if (accept(TokKind::kLParen)) {
      ir::ExprPtr e = parse_vexpr();
      expect(TokKind::kRParen);
      return e;
    }
    if (check(TokKind::kIdent)) {
      const Token t = expect(TokKind::kIdent);
      // Array read: IDENT '[' ... ']'
      if (check(TokKind::kLBracket)) {
        const auto it = arrays_.find(t.text);
        if (it == arrays_.end())
          error("read of undeclared array '" + t.text + "'");
        std::vector<NamedAffine> subs;
        while (accept(TokKind::kLBracket)) {
          subs.push_back(parse_affine());
          expect(TokKind::kRBracket);
        }
        return ir::read(it->second, std::move(subs));
      }
      // Call: IDENT '(' args ')'
      if (check(TokKind::kLParen)) {
        ++pos_;
        std::vector<ir::ExprPtr> args;
        if (!check(TokKind::kRParen)) {
          args.push_back(parse_vexpr());
          while (accept(TokKind::kComma)) args.push_back(parse_vexpr());
        }
        expect(TokKind::kRParen);
        return ir::call(t.text, std::move(args));
      }
      if (arrays_.count(t.text) != 0)
        error("array '" + t.text + "' used without subscripts");
      // Iterator/parameter value.
      return ir::aff(NamedAffine::var(t.text));
    }
    error("expected expression");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::optional<ir::ScopBuilder> builder_;
  std::map<std::string, std::size_t> arrays_;
};

}  // namespace

ir::Scop parse_scop(const std::string& source) {
  return Parser(source).parse();
}

}  // namespace pf::frontend
