// Recursive-descent parser for PolyLang.
//
// Grammar (see lexer.h for an example program):
//
//   scop       := 'scop' IDENT '(' [IDENT (',' IDENT)*] ')' '{' item* '}'
//   item       := context | array | loop | ifblock | stmt
//   context    := 'context' affine relop affine ';'
//   array      := 'array' IDENT ('[' affine ']')+ ';'
//   loop       := 'for' '(' IDENT '=' affine '..' affine ')' '{' item* '}'
//   ifblock    := 'if' '(' affine relop affine ')' '{' item* '}'
//   stmt       := [IDENT ':'] IDENT ('[' affine ']')+ '=' vexpr ';'
//   relop      := '>=' | '<=' | '=='
//   affine     := linear integer arithmetic over iterators/params
//   vexpr      := real arithmetic over array reads, affine values,
//                 literals, calls (sqrt, fabs, exp, ...)
//
// Semantic validation (name resolution, rank checks, affine-ness of
// bounds/subscripts) is enforced while building through ir::ScopBuilder;
// errors carry source line/column.
#pragma once

#include <string>

#include "ir/scop.h"

namespace pf::frontend {

/// Parse one PolyLang program into a Scop. Throws pf::Error on any lex,
/// parse or semantic error, with source location in the message.
ir::Scop parse_scop(const std::string& source);

}  // namespace pf::frontend
