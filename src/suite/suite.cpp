#include "suite/suite.h"

#include <algorithm>

#include "frontend/parser.h"

namespace pf::suite {

namespace {

// ---------------------------------------------------------------------------
// Small kernels (the paper's own listings).
// ---------------------------------------------------------------------------

// Figure 1 / Figure 3.
constexpr const char* kGemver = R"(
scop gemver(N) {
  context N >= 4;
  array A[N][N]; array B[N][N];
  array u1[N]; array v1[N]; array u2[N]; array v2[N];
  array x[N]; array y[N]; array w[N]; array z[N];
  for (i = 0 .. N-1) { for (j = 0 .. N-1) {
    S1: B[i][j] = A[i][j] + u1[i]*v1[j] + u2[i]*v2[j]; } }
  for (i = 0 .. N-1) { for (j = 0 .. N-1) {
    S2: x[i] = x[i] + 2.5*B[j][i]*y[j]; } }
  for (i = 0 .. N-1) {
    S3: x[i] = x[i] + z[i]; }
  for (i = 0 .. N-1) { for (j = 0 .. N-1) {
    S4: w[i] = w[i] + 1.5*B[i][j]*x[j]; } }
}
)";

// Figure 4 / Figure 6. S4's forward reads of wk4 make unshifted full
// fusion illegal: maxfuse must shift S4 (losing outer parallelism),
// wisefuse's Algorithm 2 distributes S4 instead. S5 is the advection
// diagnostic: a global sum of the updated field -- an associative
// reduction whose self-dependence serializes it unless relaxed.
constexpr const char* kAdvect = R"(
scop advect(N) {
  context N >= 4;
  array wk1[N+2][N+2]; array wk2[N+2][N+2]; array wk4[N+2][N+2];
  array u[N+2][N+2]; array v[N+2][N+2]; array usum[1];
  for (i = 1 .. N) { for (j = 1 .. N) {
    S1: wk1[i][j] = u[i][j] + u[i][j+1]; } }
  for (i = 1 .. N) { for (j = 1 .. N) {
    S2: wk2[i][j] = v[i][j] + v[i+1][j]; } }
  for (i = 1 .. N) { for (j = 1 .. N) {
    S3: wk4[i][j] = wk1[i][j] + wk2[i][j]; } }
  for (i = 1 .. N) { for (j = 1 .. N) {
    S4: u[i][j] = wk4[i][j] - wk4[i][j+1] + wk4[i+1][j]; } }
  for (i = 1 .. N) { for (j = 1 .. N) {
    S5: usum[0] = usum[0] + u[i][j]; } }
}
)";

// Gaussian elimination; non-rectangular iteration space (the case the
// paper uses to show polyhedral compilers beating icc on parallelism).
constexpr const char* kLu = R"(
scop lu(N) {
  context N >= 3;
  array A[N][N];
  for (k = 0 .. N-2) {
    for (i = k+1 .. N-1) { S1: A[i][k] = A[i][k] / A[k][k]; }
    for (i = k+1 .. N-1) { for (j = k+1 .. N-1) {
      S2: A[i][j] = A[i][j] - A[i][k] * A[k][j]; } }
  }
}
)";

// Tensor-contraction chain (TCE, computational quantum chemistry): four
// nests with deliberately different loop orders, so a syntactic fuser
// finds no conformable pattern while the polyhedral scheduler aligns
// hyperplanes across nests.
constexpr const char* kTce = R"(
scop tce(N) {
  context N >= 3;
  array A[N][N][N][N]; array T1[N][N][N][N]; array T2[N][N][N][N];
  array T3[N][N][N][N]; array B[N][N][N][N];
  array C1[N][N]; array C2[N][N]; array C3[N][N]; array C4[N][N];
  for (p = 0 .. N-1) { for (q = 0 .. N-1) { for (r = 0 .. N-1) {
    for (s = 0 .. N-1) { for (a = 0 .. N-1) {
      S1: T1[a][q][r][s] = T1[a][q][r][s] + A[p][q][r][s]*C4[p][a]; } } } } }
  for (b = 0 .. N-1) { for (a = 0 .. N-1) { for (s = 0 .. N-1) {
    for (r = 0 .. N-1) { for (q = 0 .. N-1) {
      S2: T2[a][b][r][s] = T2[a][b][r][s] + T1[a][q][r][s]*C3[q][b]; } } } } }
  for (r = 0 .. N-1) { for (c = 0 .. N-1) { for (a = 0 .. N-1) {
    for (b = 0 .. N-1) { for (s = 0 .. N-1) {
      S3: T3[a][b][c][s] = T3[a][b][c][s] + T2[a][b][r][s]*C2[r][c]; } } } } }
  for (s = 0 .. N-1) { for (d = 0 .. N-1) { for (b = 0 .. N-1) {
    for (c = 0 .. N-1) { for (a = 0 .. N-1) {
      S4: B[a][b][c][d] = B[a][b][c][d] + T3[a][b][c][s]*C1[s][d]; } } } } }
}
)";

// ---------------------------------------------------------------------------
// Large programs (structural models; see DESIGN.md substitution #1).
// ---------------------------------------------------------------------------

// swim, SPEC OMP: the paper's Figure 2 excerpt. S1-S3 compute the new
// time level (2-d, heavy RAR through z/cu/cv/h); S4-S12 are 1-d boundary
// updates touching unew/vnew (and z) only; S13-S18 are the time filter +
// copy-back, where S13/S14/S16/S17 run over the full range including the
// boundary (hence depend on S4-S12) while S15/S18 touch only pnew-related
// data and can legally join the first nest -- the paper's Figure 5(b)
// 5-statement fusion. S19 is the CHECK-style diagnostic sum of the real
// swim (an associative reduction over the filtered fields): it reads
// S13/S14/S15 output, so it trails the time filter and -- unless the
// reduction pass relaxes its self-dependence -- runs fully serial.
constexpr const char* kSwim = R"(
scop swim(N) {
  context N >= 4;
  array u[N+2][N+2]; array v[N+2][N+2]; array p[N+2][N+2];
  array unew[N+2][N+2]; array vnew[N+2][N+2]; array pnew[N+2][N+2];
  array uold[N+2][N+2]; array vold[N+2][N+2]; array pold[N+2][N+2];
  array cu[N+2][N+2]; array cv[N+2][N+2]; array z[N+2][N+2]; array h[N+2][N+2];
  array pcheck[1];
  for (i = 1 .. N) { for (j = 1 .. N) {
    S1: unew[i][j] = uold[i][j] + 0.7*(z[i][j+1] + z[i][j])*(cv[i][j+1] + cv[i][j]) - 0.6*(h[i+1][j] - h[i][j]);
  } }
  for (i = 1 .. N) { for (j = 1 .. N) {
    S2: vnew[i][j] = vold[i][j] - 0.7*(z[i+1][j] + z[i][j])*(cu[i+1][j] + cu[i][j]) - 0.6*(h[i][j+1] - h[i][j]);
  } }
  for (i = 1 .. N) { for (j = 1 .. N) {
    S3: pnew[i][j] = pold[i][j] - 0.5*(cu[i+1][j] - cu[i][j]) - 0.5*(cv[i][j+1] - cv[i][j]);
  } }
  for (j = 1 .. N) { S4: unew[0][j] = unew[N][j]; }
  for (j = 1 .. N) { S5: vnew[0][j] = vnew[N][j]; }
  for (i = 1 .. N) { S6: unew[i][0] = unew[i][N]; }
  for (i = 1 .. N) { S7: vnew[i][0] = vnew[i][N]; }
  for (j = 1 .. N) { S8: unew[N+1][j] = unew[1][j]; }
  for (j = 1 .. N) { S9: vnew[N+1][j] = vnew[1][j]; }
  for (i = 1 .. N) { S10: unew[i][N+1] = unew[i][1]; }
  for (i = 1 .. N) { S11: vnew[i][N+1] = vnew[i][1]; }
  for (j = 1 .. N) { S12: z[0][j] = z[N][j]; }
  for (i = 0 .. N+1) { for (j = 0 .. N+1) {
    S13: uold[i][j] = u[i][j] + 0.2*(unew[i][j] - 2.0*u[i][j] + uold[i][j]);
  } }
  for (i = 0 .. N+1) { for (j = 0 .. N+1) {
    S14: vold[i][j] = v[i][j] + 0.2*(vnew[i][j] - 2.0*v[i][j] + vold[i][j]);
  } }
  for (i = 1 .. N) { for (j = 1 .. N) {
    S15: pold[i][j] = p[i][j] + 0.2*(pnew[i][j] - 2.0*p[i][j] + pold[i][j]);
  } }
  for (i = 0 .. N+1) { for (j = 0 .. N+1) {
    S16: u[i][j] = unew[i][j];
  } }
  for (i = 0 .. N+1) { for (j = 0 .. N+1) {
    S17: v[i][j] = vnew[i][j];
  } }
  for (i = 1 .. N) { for (j = 1 .. N) {
    S18: p[i][j] = pnew[i][j];
  } }
  for (i = 1 .. N) { for (j = 1 .. N) {
    S19: pcheck[0] = pcheck[0] + uold[i][j] + vold[i][j] + pold[i][j];
  } }
}
)";

// gemsfdtd, SPEC 2006: UPMLupdateh-like routine. Eleven SCCs of mixed
// dimensionality: 3-d field/flux updates interleaved in program order
// with 1-d PML recurrences that consume far-boundary values of the
// fields (so they cannot share even the outermost loop with their
// producers -- the cut is forced at level 1). Wisefuse's pre-fusion
// schedule groups the 3-d SCCs together and the 1-d SCCs together
// (Figure 8); smartfuse's DFS order interleaves them and the
// dimensionality-based cuts fragment the code, losing the e- and h-field
// reuse across the 3-d updates.
constexpr const char* kGemsfdtd = R"(
scop gemsfdtd(N) {
  context N >= 4;
  array hx[N+2][N+2][N+2]; array hy[N+2][N+2][N+2]; array hz[N+2][N+2][N+2];
  array bx[N+2][N+2][N+2]; array by[N+2][N+2][N+2]; array bz[N+2][N+2][N+2];
  array ex[N+2][N+2][N+2]; array ey[N+2][N+2][N+2]; array ez[N+2][N+2][N+2];
  array psix[N+2]; array psiy[N+2]; array psiz[N+2];
  array qx[N+2]; array qy[N+2];
  array pcf[N+2];
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S1: hx[i][j][k] = hx[i][j][k] + 0.5*(ey[i][j][k+1] - ey[i][j][k]) - 0.5*(ez[i][j+1][k] - ez[i][j][k]);
  } } }
  for (j = 1 .. N) {
    S2: psix[j] = 0.4*psix[j] + 0.1*pcf[j]*(hx[N][j][N] - hx[j][N][N]);
  }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S3: hy[i][j][k] = hy[i][j][k] + 0.5*(ez[i+1][j][k] - ez[i][j][k]) - 0.5*(ex[i][j][k+1] - ex[i][j][k]);
  } } }
  for (j = 1 .. N) {
    S4: psiy[j] = 0.4*psiy[j] + 0.1*pcf[j]*(hy[N][j][N] - hy[j][N][N]);
  }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S5: hz[i][j][k] = hz[i][j][k] + 0.5*(ex[i][j+1][k] - ex[i][j][k]) - 0.5*(ey[i+1][j][k] - ey[i][j][k]);
  } } }
  for (j = 1 .. N) {
    S6: psiz[j] = 0.4*psiz[j] + 0.1*pcf[j]*(hz[N][j][N] - hz[j][N][N]);
  }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S7: bx[i][j][k] = 0.9*bx[i][j][k] + 0.2*hx[i][j][k];
  } } }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S8: by[i][j][k] = 0.9*by[i][j][k] + 0.2*hy[i][j][k];
  } } }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S9: bz[i][j][k] = 0.9*bz[i][j][k] + 0.2*hz[i][j][k];
  } } }
  for (j = 1 .. N) {
    S10: qx[j] = psix[j] + pcf[j]*(bx[N][j][N] - bx[j][N][N]);
  }
  for (j = 1 .. N) {
    S11: qy[j] = psiy[j] + pcf[j]*(by[N][j][N] - by[j][N][N]);
  }
}
)";

// applu, SPEC OMP: the x-/y-/z-pass sweep structure of the SSOR RHS. Nine
// 3-d statements in three passes; statements of one pass share reads
// (flux temporaries, u), which is exactly the reuse wisefuse's
// program-order heuristic captures.
constexpr const char* kApplu = R"(
scop applu(N) {
  context N >= 4;
  array u[N+2][N+2][N+2]; array rsd[N+2][N+2][N+2];
  array fx[N+2][N+2][N+2]; array fy[N+2][N+2][N+2]; array fz[N+2][N+2][N+2];
  array qx[N+2][N+2][N+2]; array qy[N+2][N+2][N+2]; array unew2[N+2][N+2][N+2];
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S1: fx[i][j][k] = 0.5*(u[i+1][j][k] - u[i-1][j][k]); } } }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S2: rsd[i][j][k] = rsd[i][j][k] + 0.3*fx[i][j][k] + 0.1*u[i][j][k]; } } }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S3: qx[i][j][k] = fx[i][j][k]*fx[i][j][k] + 0.2*u[i][j][k]; } } }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S4: fy[i][j][k] = 0.5*(u[i][j+1][k] - u[i][j-1][k]) + 0.1*(qx[i+1][j][k] + qx[i][j+1][k] + qx[i][j][k+1] - 3.0*qx[i][j][k]); } } }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S5: rsd[i][j][k] = rsd[i][j][k] + 0.3*fy[i][j][k] + 0.1*qx[i][j][k]; } } }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S6: qy[i][j][k] = fy[i][j][k]*fy[i][j][k] + 0.2*qx[i][j][k]; } } }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S7: fz[i][j][k] = 0.5*(u[i][j][k+1] - u[i][j][k-1]) + 0.1*(qy[i+1][j][k] + qy[i][j+1][k] + qy[i][j][k+1] - 3.0*qy[i][j][k]); } } }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S8: rsd[i][j][k] = rsd[i][j][k] + 0.3*fz[i][j][k] + 0.1*qy[i][j][k]; } } }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S9: unew2[i][j][k] = u[i][j][k] + 0.05*rsd[i][j][k]; } } }
}
)";

// bt, NPB: compute_rhs-like directional flux differences plus the add
// phase. Same sweep discipline as applu with a different stencil shape
// and a per-direction squared-flux term.
constexpr const char* kBt = R"(
scop bt(N) {
  context N >= 4;
  array us[N+2][N+2][N+2]; array rhs[N+2][N+2][N+2];
  array flux[N+2][N+2][N+2]; array gux[N+2][N+2][N+2];
  array guy[N+2][N+2][N+2]; array guz[N+2][N+2][N+2];
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S1: flux[i][j][k] = 0.25*(us[i+1][j][k] + us[i-1][j][k] - 2.0*us[i][j][k]); } } }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S2: gux[i][j][k] = flux[i][j][k] + 0.4*us[i][j][k]*us[i][j][k]; } } }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S3: rhs[i][j][k] = rhs[i][j][k] + gux[i][j][k]; } } }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S4: guy[i][j][k] = 0.25*(us[i][j+1][k] + us[i][j-1][k] - 2.0*us[i][j][k]) + 0.1*(gux[i+1][j][k] + gux[i][j+1][k] + gux[i][j][k+1] - 3.0*gux[i][j][k]); } } }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S5: rhs[i][j][k] = rhs[i][j][k] + guy[i][j][k]; } } }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S6: guz[i][j][k] = 0.25*(us[i][j][k+1] + us[i][j][k-1] - 2.0*us[i][j][k]) + 0.1*(guy[i+1][j][k] + guy[i][j+1][k] + guy[i][j][k+1] - 3.0*guy[i][j][k]); } } }
  for (i = 1 .. N) { for (j = 1 .. N) { for (k = 1 .. N) {
    S7: rhs[i][j][k] = rhs[i][j][k] + guz[i][j][k]; } } }
}
)";

// sp, NPB: scalar pentadiagonal RHS sweeps (wider stencil than bt).
constexpr const char* kSp = R"(
scop sp(N) {
  context N >= 5;
  array q[N+4][N+4][N+4]; array rhs[N+4][N+4][N+4];
  array wx[N+4][N+4][N+4]; array wy[N+4][N+4][N+4]; array wz[N+4][N+4][N+4];
  for (i = 2 .. N+1) { for (j = 2 .. N+1) { for (k = 2 .. N+1) {
    S1: wx[i][j][k] = q[i-2][j][k] - 4.0*q[i-1][j][k] + 6.0*q[i][j][k] - 4.0*q[i+1][j][k] + q[i+2][j][k]; } } }
  for (i = 2 .. N+1) { for (j = 2 .. N+1) { for (k = 2 .. N+1) {
    S2: rhs[i][j][k] = rhs[i][j][k] - 0.1*wx[i][j][k] + 0.05*q[i][j][k]; } } }
  for (i = 2 .. N+1) { for (j = 2 .. N+1) { for (k = 2 .. N+1) {
    S3: wy[i][j][k] = q[i][j-2][k] - 4.0*q[i][j-1][k] + 6.0*q[i][j][k] - 4.0*q[i][j+1][k] + q[i][j+2][k] + 0.1*(wx[i+1][j][k] + wx[i][j+1][k] + wx[i][j][k+1] - 3.0*wx[i][j][k]); } } }
  for (i = 2 .. N+1) { for (j = 2 .. N+1) { for (k = 2 .. N+1) {
    S4: rhs[i][j][k] = rhs[i][j][k] - 0.1*wy[i][j][k] + 0.05*q[i][j][k]; } } }
  for (i = 2 .. N+1) { for (j = 2 .. N+1) { for (k = 2 .. N+1) {
    S5: wz[i][j][k] = q[i][j][k-2] - 4.0*q[i][j][k-1] + 6.0*q[i][j][k] - 4.0*q[i][j][k+1] + q[i][j][k+2] + 0.1*(wy[i+1][j][k] + wy[i][j+1][k] + wy[i][j][k+1] - 3.0*wy[i][j][k]); } } }
  for (i = 2 .. N+1) { for (j = 2 .. N+1) { for (k = 2 .. N+1) {
    S6: rhs[i][j][k] = rhs[i][j][k] - 0.1*wz[i][j][k] + 0.05*q[i][j][k]; } } }
}
)";

// wupwise, SPEC OMP: zgemm (complex matrix multiply) written, as in the
// SPEC source, as imperfect nests of different dimensionality (2-d
// initialization + 3-d update + 2-d scaling).
constexpr const char* kWupwise = R"(
scop wupwise(N) {
  context N >= 4;
  array ar[N][N]; array ai[N][N]; array br[N][N]; array bi[N][N];
  array cr[N][N]; array ci[N][N]; array dr[N][N]; array di[N][N];
  for (i = 0 .. N-1) { for (j = 0 .. N-1) {
    S1: cr[i][j] = 0.0; } }
  for (i = 0 .. N-1) { for (j = 0 .. N-1) {
    S2: ci[i][j] = 0.0; } }
  for (i = 0 .. N-1) { for (j = 0 .. N-1) { for (k = 0 .. N-1) {
    S3: cr[i][j] = cr[i][j] + ar[i][k]*br[k][j] - ai[i][k]*bi[k][j]; } } }
  for (i = 0 .. N-1) { for (j = 0 .. N-1) { for (k = 0 .. N-1) {
    S4: ci[i][j] = ci[i][j] + ar[i][k]*bi[k][j] + ai[i][k]*br[k][j]; } } }
  for (i = 0 .. N-1) { for (j = 0 .. N-1) {
    S5: dr[i][j] = 0.5*cr[i][j]; } }
  for (i = 0 .. N-1) { for (j = 0 .. N-1) {
    S6: di[i][j] = 0.5*ci[i][j]; } }
}
)";

std::vector<Benchmark> make_benchmarks() {
  std::vector<Benchmark> list;
  auto add = [&](std::string name, std::string suite_name,
                 std::string category, const char* source, IntVector bench,
                 IntVector test, bool large, std::string expect) {
    Benchmark b;
    b.name = std::move(name);
    b.suite_name = std::move(suite_name);
    b.category = std::move(category);
    b.source = source;
    b.bench_params = std::move(bench);
    b.test_params = std::move(test);
    b.is_large = large;
    b.paper_expectation = std::move(expect);
    list.push_back(std::move(b));
  };
  // Large programs first (paper Table 2 order).
  add("gemsfdtd", "SPEC 2006 (modeled)", "Computational Electromagnetics",
      kGemsfdtd, {40}, {5}, true,
      "wisefuse 1.7x-7.2x over smartfuse; fewest fusion partitions (Fig 8)");
  add("swim", "SPEC OMP (modeled)", "Shallow Water Modeling", kSwim, {200},
      {6}, true,
      "5-statement fused nest incl. S15/S18 (Fig 5); wisefuse > smartfuse");
  add("applu", "SPEC OMP (modeled)", "Computational Fluid Dynamics", kApplu,
      {24}, {5}, true, "pass-local fusion with RAR reuse; wisefuse wins");
  add("bt", "NPB (modeled)", "Block Tri-diagonal solver", kBt, {26}, {5},
      true, "pass-local fusion; wisefuse >= smartfuse");
  add("sp", "NPB (modeled)", "Scalar Penta-diagonal solver", kSp, {24}, {5},
      true, "pass-local fusion; wisefuse >= smartfuse");
  // Small kernels.
  add("advect", "PLuTo", "Weather modeling", kAdvect, {256}, {6}, false,
      "wisefuse cuts S4, keeps outer parallelism (Fig 6); maxfuse/smartfuse "
      "pipelined");
  add("lu", "Polybench", "Linear Algebra", kLu, {96}, {6}, false,
      "wisefuse == smartfuse, both beat icc via coarse-grained parallelism");
  add("tce", "Polybench", "Computational Chemistry", kTce, {14}, {3}, false,
      "polyhedral fusion across permuted nests; wisefuse == smartfuse");
  add("gemver", "Polybench", "Linear Algebra", kGemver, {400}, {6}, false,
      "wisefuse == smartfuse; nofuse competitive at this size (paper 5.3)");
  add("wupwise", "SPEC OMP (modeled)", "Quantum Chromodynamics", kWupwise,
      {56}, {5}, false,
      "imperfect nests distributed into perfect ones; selective "
      "parallelization");
  return list;
}

}  // namespace

const std::vector<Benchmark>& all_benchmarks() {
  static const std::vector<Benchmark> list = make_benchmarks();
  return list;
}

const Benchmark& benchmark(const std::string& name) {
  for (const Benchmark& b : all_benchmarks())
    if (b.name == name) return b;
  PF_FAIL("unknown benchmark '" << name << "'");
}

ir::Scop parse(const Benchmark& b) { return frontend::parse_scop(b.source); }

void init_store(exec::ArrayStore& store) {
  for (std::size_t a = 0; a < store.num_arrays(); ++a) {
    const double salt = static_cast<double>(a + 1);
    const auto& ext = store.extents(a);
    const bool square2d = ext.size() == 2 && ext[0] == ext[1];
    store.fill(a, [&](const IntVector& idx) {
      double v = 0.17 * salt + 1.0;
      for (std::size_t d = 0; d < idx.size(); ++d)
        v += 0.01 * static_cast<double>(idx[d]) * (1.0 + 0.3 * static_cast<double>(d)) /
             salt;
      // Make square matrices diagonally dominant so LU-style kernels stay
      // well-conditioned.
      if (square2d && idx[0] == idx[1]) v += 50.0;
      return v;
    });
  }
}

}  // namespace pf::suite
