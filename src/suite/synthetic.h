// Random (but always valid) synthetic PolyLang programs.
//
// Shared by the randomized end-to-end property tests and the
// compile-time scaling bench: random arrays, nests, subscript
// shifts/transposes and read sets. All loops run 2 .. N+1 and all
// subscript shifts are within [-2, +2] against extents N+4, so accesses
// are always in bounds. Generation is deterministic in (seed, options).
#pragma once

#include <string>

namespace pf::suite {

struct SyntheticOptions {
  int min_arrays = 3, max_arrays = 5;
  int min_nests = 2, max_nests = 4;
  int min_stmts = 1, max_stmts = 2;  // statements per nest
  int min_reads = 1, max_reads = 3;  // reads per statement
};

/// PolyLang source of a random program. The defaults reproduce the
/// historical generator of tests/random_program_test.cpp; larger options
/// produce the big SCoPs the compile-scaling bench needs.
std::string synthetic_program(unsigned seed,
                              const SyntheticOptions& options = {});

}  // namespace pf::suite
