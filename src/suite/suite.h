// The benchmark suite: PolyLang models of the paper's ten programs
// (Table 2).
//
// SPEC / NPB sources are proprietary or Fortran, so each large program is
// modeled by a PolyLang kernel reproducing the structure the paper
// describes and exploits: statement counts, dimensionalities, the
// dependence/RAR shape that drives each fusion model's decisions (see
// DESIGN.md, substitution #1). The small kernels (gemver, advect, lu,
// tce) follow the paper's own listings.
#pragma once

#include <string>
#include <vector>

#include "exec/storage.h"
#include "ir/scop.h"

namespace pf::suite {

struct Benchmark {
  std::string name;        // e.g. "swim"
  std::string suite_name;  // e.g. "SPEC OMP (modeled)"
  std::string category;    // Table 2 category
  std::string source;      // PolyLang text
  /// Parameter values used by the benchmark harness (sized so arrays
  /// exceed L2 and the trace stays tractable for the simulator).
  IntVector bench_params;
  /// Small values for correctness tests.
  IntVector test_params;
  /// Paper category: large program vs small kernel.
  bool is_large = false;
  /// What the paper reports for this benchmark (used in EXPERIMENTS.md).
  std::string paper_expectation;
};

/// All ten benchmarks in the paper's Table 2 order.
const std::vector<Benchmark>& all_benchmarks();

/// Lookup by name; throws if unknown.
const Benchmark& benchmark(const std::string& name);

/// Parse a benchmark's PolyLang source.
ir::Scop parse(const Benchmark& b);

/// Deterministic data initialization shared by tests and benches (values
/// bounded away from zero; LU-style kernels stay well-conditioned).
void init_store(exec::ArrayStore& store);

}  // namespace pf::suite
