#include "suite/synthetic.h"

#include <random>
#include <sstream>
#include <vector>

namespace pf::suite {

std::string synthetic_program(unsigned seed, const SyntheticOptions& opt) {
  std::mt19937 rng(seed);
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };

  const int num_arrays = pick(opt.min_arrays, opt.max_arrays);
  std::vector<int> rank(num_arrays);
  std::ostringstream os;
  os << "scop r" << seed << "(N) { context N >= 6;\n";
  for (int a = 0; a < num_arrays; ++a) {
    rank[a] = pick(1, 2);
    os << "array a" << a << (rank[a] == 1 ? "[N+4]" : "[N+4][N+4]") << ";\n";
  }

  auto subscript = [&](const char* iter) {
    const int shift = pick(-2, 2);
    std::ostringstream ss;
    ss << iter;
    if (shift > 0) ss << "+" << shift;
    if (shift < 0) ss << "-" << (-shift);
    // Indices live in [0, N+3]: loop range [2, N+1] plus shift in [-2,2].
    return ss.str();
  };
  auto access = [&](int a, int depth) {
    std::ostringstream ss;
    ss << "a" << a;
    if (rank[a] == 1) {
      ss << "[" << subscript(depth >= 1 ? (pick(0, 1) && depth >= 2 ? "j" : "i")
                                        : "i")
         << "]";
    } else {
      const bool transpose = depth >= 2 && pick(0, 1) == 1;
      const char* first = depth >= 2 ? (transpose ? "j" : "i") : "i";
      const char* second = depth >= 2 ? (transpose ? "i" : "j") : "i";
      ss << "[" << subscript(first) << "][" << subscript(second) << "]";
    }
    return ss.str();
  };

  const int nests = pick(opt.min_nests, opt.max_nests);
  int label = 1;
  for (int n = 0; n < nests; ++n) {
    const int depth = pick(1, 2);
    os << "for (i = 2 .. N+1) {";
    if (depth == 2) os << " for (j = 2 .. N+1) {";
    const int stmts = pick(opt.min_stmts, opt.max_stmts);
    for (int s = 0; s < stmts; ++s) {
      const int wa = pick(0, num_arrays - 1);
      os << " S" << label++ << ": a" << wa;
      if (rank[wa] == 1)
        os << "[i]";
      else
        os << (depth == 2 ? "[i][j]" : "[i][i]");
      os << " = ";
      const int reads = pick(opt.min_reads, opt.max_reads);
      for (int r = 0; r < reads; ++r) {
        if (r > 0) os << (pick(0, 1) ? " + " : " - ");
        os << "0." << pick(1, 9) << "*" << access(pick(0, num_arrays - 1), depth);
      }
      os << " + 0.25;";
    }
    os << (depth == 2 ? " } }" : " }") << "\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace pf::suite
