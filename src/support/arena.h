// Chunked bump allocator for the solver hot loops.
//
// The int64 fast lane (lp/simplex.cpp) rebuilds a dense tableau for every
// solve; with thousands of solves per compile, per-solve std::vector heap
// churn is measurable. An Arena hands out storage by bumping a pointer
// into large chunks and releases it wholesale: a solve marks the arena on
// entry, allocates its tableau rows, and releases back to the marker on
// exit (ArenaScope), so the same warm chunk is reused by every solve on
// the thread.
//
// Only trivially-destructible payloads are supported (the lane stores raw
// i64 / __int128 rows). Arenas are not thread safe; use the per-thread
// instance (thread_local_instance) from solver code.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

#include "support/intmath.h"

namespace pf::support {

class Arena {
 public:
  explicit Arena(std::size_t min_chunk_bytes = 64 * 1024);
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `bytes` of storage aligned to `align` (a power of two). The memory
  /// is uninitialized and valid until a release() past its marker.
  void* allocate(std::size_t bytes, std::size_t align);

  /// An uninitialized array of `n` trivially-destructible Ts.
  template <typename T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is released without running destructors");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// A point in the allocation sequence; release(mark()) frees everything
  /// allocated in between (LIFO discipline -- see ArenaScope).
  struct Marker {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };

  Marker mark() const { return Marker{cur_, chunk_used()}; }
  void release(const Marker& m);

  /// Total chunk bytes ever reserved by this arena (monotone; feeds the
  /// fastlane_arena_bytes counter).
  std::size_t bytes_reserved() const { return reserved_; }

  /// The calling thread's arena (created on first use).
  static Arena& thread_local_instance();

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::size_t chunk_used() const {
    return chunks_.empty() ? 0 : chunks_[cur_].used;
  }

  std::vector<Chunk> chunks_;
  std::size_t cur_ = 0;  // chunk currently bump-allocated from
  std::size_t min_chunk_bytes_;
  std::size_t reserved_ = 0;
};

/// RAII mark/release pair: everything the scope's body allocates from the
/// arena is reclaimed on destruction, including on exception unwind (the
/// fast lane bails out mid-solve on overflow).
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), marker_(arena.mark()) {}
  ~ArenaScope() { arena_.release(marker_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Marker marker_;
};

}  // namespace pf::support
