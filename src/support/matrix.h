// Dense row-major matrices and vectors over an arbitrary scalar.
//
// Used throughout polyfuse with T = Rational (exact linear algebra) and
// T = i64 (constraint/coefficient matrices). Deliberately minimal: sizes
// are small (tens of rows/columns), so no blocking or sparsity.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <sstream>
#include <vector>

#include "support/error.h"

namespace pf {

template <typename T>
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(std::size_t rows, std::size_t cols, T init = T())
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}
  Matrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
      PF_CHECK_MSG(r.size() == cols_, "ragged initializer list for Matrix");
      data_.insert(data_.end(), r.begin(), r.end());
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  T& operator()(std::size_t r, std::size_t c) {
    PF_CHECK_MSG(r < rows_ && c < cols_,
                 "matrix index (" << r << "," << c << ") out of " << rows_
                                  << "x" << cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    PF_CHECK_MSG(r < rows_ && c < cols_,
                 "matrix index (" << r << "," << c << ") out of " << rows_
                                  << "x" << cols_);
    return data_[r * cols_ + c];
  }

  /// Copy of row r as a vector.
  std::vector<T> row(std::size_t r) const {
    PF_CHECK(r < rows_);
    return std::vector<T>(data_.begin() + r * cols_,
                          data_.begin() + (r + 1) * cols_);
  }

  void set_row(std::size_t r, const std::vector<T>& values) {
    PF_CHECK(r < rows_ && values.size() == cols_);
    std::copy(values.begin(), values.end(), data_.begin() + r * cols_);
  }

  /// Append a row (must match column count; on an empty matrix defines it).
  void append_row(const std::vector<T>& values) {
    if (rows_ == 0 && cols_ == 0) cols_ = values.size();
    PF_CHECK_MSG(values.size() == cols_, "appending row of width "
                                             << values.size() << " to matrix of "
                                             << cols_ << " columns");
    data_.insert(data_.end(), values.begin(), values.end());
    ++rows_;
  }

  void swap_rows(std::size_t a, std::size_t b) {
    PF_CHECK(a < rows_ && b < rows_);
    if (a == b) return;
    for (std::size_t c = 0; c < cols_; ++c)
      std::swap(data_[a * cols_ + c], data_[b * cols_ + c]);
  }

  Matrix<T> transposed() const {
    Matrix<T> t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
  }

  static Matrix<T> identity(std::size_t n) {
    Matrix<T> m(n, n, T(0));
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T(1);
    return m;
  }

  bool operator==(const Matrix<T>& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }
  bool operator!=(const Matrix<T>& o) const { return !(*this == o); }

  std::string to_string() const {
    std::ostringstream os;
    for (std::size_t r = 0; r < rows_; ++r) {
      os << "[";
      for (std::size_t c = 0; c < cols_; ++c) {
        if (c != 0) os << ", ";
        os << (*this)(r, c);
      }
      os << "]\n";
    }
    return os.str();
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<T> data_;
};

template <typename T>
std::ostream& operator<<(std::ostream& os, const Matrix<T>& m) {
  return os << m.to_string();
}

}  // namespace pf
