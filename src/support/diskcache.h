// Crash-safe persistent solve-cache store: a content-addressed directory
// of checksummed entries backing the in-memory polyhedral solve/count
// caches across process lifetimes (docs/service.md).
//
// The contract is "never trust a byte you did not just verify":
//
//  * Writes are atomic: an entry is serialized to a unique temp file in
//    the cache directory and rename(2)d into place, so a reader can only
//    ever open a fully-committed entry or none at all -- a SIGKILLed or
//    crashed writer leaves a temp file the next sweep removes, never a
//    half-entry under a live name.
//  * Reads verify everything: magic, format fingerprint, entry checksum
//    (FNV-1a over header + payload) and the full key content (the file
//    name is only a hash; the stored key must compare equal). A
//    truncated, bit-flipped or torn entry is treated as a miss and
//    quarantined into <dir>/quarantine/ so it is never consulted again;
//    a key collision is just a miss.
//  * Entries carry the run id of the writing process tree. Lookups skip
//    entries written by the current run: warm-vs-cold behavior is then a
//    property of the directory state *at startup*, which is what makes
//    batch reports byte-identical at any --jobs (a request can never
//    observe a racing sibling's write).
//  * The store is multi-process safe without locks: rename is atomic,
//    concurrent writers of one key commit identical content (values are
//    deterministic functions of the key), and last-rename-wins.
//  * A size-capped LRU sweep (mtime order; hits refresh mtime) runs
//    every few writes and keeps the directory under the configured cap.
//
// Entries are invalidated by fingerprint: the file name and header bind
// each entry to a format version + the build timestamp of this module +
// an optional salt, so a rebuilt solver never consumes a stale answer.
//
// Fault injection: --inject=diskcache.read:fail-after=K and
// diskcache.write:fail-after=K deterministically fail the K-th cache
// read/write in this process (a failed read is a miss, a failed write is
// skipped -- both invisible in emitted output); the abort-after flavor
// dies by SIGABRT to exercise the crash path mid-I/O. These injections
// are interpreted here, not by the thread-local Budget: an injection-only
// budget bypasses the in-memory solve cache for determinism, which would
// make a budget-routed diskcache site unreachable.
#pragma once

#include <string>
#include <vector>

#include "support/budget.h"
#include "support/intmath.h"

namespace pf::support::diskcache {

/// Install the persistent cache rooted at `dir` (created if missing) with
/// a total-size cap of `max_mb` megabytes. An empty `dir` disables the
/// cache. Generates this process's run id eagerly, so forked batch
/// workers inherit it and the whole process tree counts as one run.
/// Returns false (cache left disabled) when the directory cannot be
/// created or is not writable.
bool configure(const std::string& dir, i64 max_mb);

bool enabled();
const std::string& directory();

/// Look up the entry for (domain, key); on a verified hit, fills `value`
/// and returns true. Misses, same-run entries, key collisions, injected
/// read faults and quarantined corruption all return false.
bool lookup(const std::string& domain, const std::vector<i64>& key,
            std::vector<i64>* value);

/// Commit (domain, key) -> value atomically. Failures (including injected
/// write faults) are silent: the persistent cache is an accelerator, and
/// a lost write only costs a future recompute.
void store(const std::string& domain, const std::vector<i64>& key,
           const std::vector<i64>& value);

/// Install the diskcache.read / diskcache.write injection table (other
/// sites are ignored). Ordinals count per process, per site.
void set_injections(const std::vector<Injection>& injections);

/// Force the size-cap LRU sweep now (normally runs every few writes).
void sweep_now();

/// The format/build fingerprint entries are bound to.
std::string fingerprint();
/// Extra fingerprint salt (tests use it to simulate a solver change).
void set_fingerprint_salt(const std::string& salt);

/// Adopt a fresh run id, as if the process had restarted: entries written
/// so far become visible to subsequent lookups. For tests and the
/// warm-vs-cold bench leg, which simulate cold/warm process pairs
/// in-process.
void renew_run_id();

}  // namespace pf::support::diskcache
