// Checked 64-bit integer arithmetic and elementary number theory.
//
// All polyhedral math in polyfuse is exact. Coefficients live in int64_t;
// every operation that could overflow goes through the checked_* helpers,
// which compute in __int128 and throw pf::Error if the result leaves the
// 64-bit range. In practice schedule/constraint coefficients stay tiny, so
// the checks are pure insurance, not a performance concern.
#pragma once

#include <cstdint>
#include <numeric>

#include "support/error.h"

namespace pf {

using i64 = std::int64_t;
using i128 = __int128;

/// Narrow an __int128 to int64_t, throwing on overflow.
inline i64 narrow_i128(i128 v) {
  PF_CHECK_MSG(v >= static_cast<i128>(INT64_MIN) &&
                   v <= static_cast<i128>(INT64_MAX),
               "integer overflow narrowing 128-bit value");
  return static_cast<i64>(v);
}

inline i64 checked_add(i64 a, i64 b) {
  return narrow_i128(static_cast<i128>(a) + static_cast<i128>(b));
}

inline i64 checked_sub(i64 a, i64 b) {
  return narrow_i128(static_cast<i128>(a) - static_cast<i128>(b));
}

inline i64 checked_mul(i64 a, i64 b) {
  return narrow_i128(static_cast<i128>(a) * static_cast<i128>(b));
}

inline i64 checked_neg(i64 a) {
  PF_CHECK_MSG(a != INT64_MIN, "integer overflow negating INT64_MIN");
  return -a;
}

/// Non-negative gcd; gcd(0, 0) == 0.
inline i64 gcd(i64 a, i64 b) {
  if (a == INT64_MIN || b == INT64_MIN) {
    // std::gcd on INT64_MIN would overflow taking |x|; our values never get
    // there legitimately.
    PF_FAIL("gcd of INT64_MIN");
  }
  return std::gcd(a, b);
}

/// Least common multiple, overflow-checked. lcm(0, x) == 0.
inline i64 lcm(i64 a, i64 b) {
  if (a == 0 || b == 0) return 0;
  const i64 g = gcd(a, b);
  return checked_mul(a < 0 ? -a : a, (b < 0 ? -b : b) / g);
}

/// Floor division: largest q with q*b <= a. Requires b > 0.
inline i64 floor_div(i64 a, i64 b) {
  PF_CHECK_MSG(b > 0, "floor_div requires positive divisor");
  i64 q = a / b;
  if (a % b != 0 && a < 0) --q;
  return q;
}

/// Ceiling division: smallest q with q*b >= a. Requires b > 0.
inline i64 ceil_div(i64 a, i64 b) {
  PF_CHECK_MSG(b > 0, "ceil_div requires positive divisor");
  i64 q = a / b;
  if (a % b != 0 && a > 0) ++q;
  return q;
}

/// Mathematical modulus with result in [0, b). Requires b > 0.
inline i64 mod_floor(i64 a, i64 b) { return a - checked_mul(floor_div(a, b), b); }

inline i64 abs_i64(i64 a) {
  PF_CHECK_MSG(a != INT64_MIN, "abs of INT64_MIN");
  return a < 0 ? -a : a;
}

inline int sign_i64(i64 a) { return a < 0 ? -1 : (a > 0 ? 1 : 0); }

/// Mix a value into a running hash (boost-style combiner with a 64-bit
/// golden-ratio constant). Used by the polyhedral solve cache keys.
inline void hash_combine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

}  // namespace pf
