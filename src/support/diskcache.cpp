#include "support/diskcache.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <system_error>

#include "support/flightrec.h"
#include "support/metrics.h"

namespace pf::support::diskcache {
namespace {

namespace fs = std::filesystem;

using u64 = std::uint64_t;

// Entry layout (host-native i64/u64 words; a cache directory is a
// per-host artifact, the fingerprint does not try to cover endianness):
//   u64 magic                'PFDCACH1'
//   u64 fingerprint_hash     FNV-1a of fingerprint() + domain
//   u64 run_id               writer's process-tree run id
//   u64 key_words
//   u64 value_words
//   u64 checksum             FNV-1a over the five fields above + payload
//   i64 key[key_words]
//   i64 value[value_words]
constexpr u64 kMagic = 0x5046444341434831ULL;  // "PFDCACH1"
constexpr std::size_t kHeaderWords = 6;
constexpr int kSweepEveryWrites = 64;

struct State {
  std::mutex mu;
  std::string dir;           // empty = disabled
  i64 max_bytes = 256 << 20;
  std::string salt;
  u64 run_id = 0;
  std::atomic<bool> enabled{false};
  std::atomic<int> writes_since_sweep{0};
  std::atomic<u64> temp_seq{0};
  // Injection table + per-site ordinal counters (process-wide: disk I/O
  // order is scheduling-dependent, but every injected outcome -- a miss
  // or a skipped write -- is invisible in emitted output by design).
  std::vector<Injection> injections;
  std::atomic<i64> read_ops{0};
  std::atomic<i64> write_ops{0};
};

State& state() {
  static State s;
  return s;
}

u64 fnv1a(u64 seed, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  u64 h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr u64 kFnvOffset = 14695981039346656037ULL;

u64 fingerprint_hash(const std::string& domain) {
  const std::string fp = fingerprint();
  u64 h = fnv1a(kFnvOffset, fp.data(), fp.size());
  return fnv1a(h, domain.data(), domain.size());
}

std::string hex16(u64 v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

// Entry file name: <domain>-<hash of fingerprint+domain+key>.pfc.
std::string entry_name(const std::string& domain, u64 fp_hash,
                       const std::vector<i64>& key) {
  u64 h = fnv1a(fp_hash, key.data(), key.size() * sizeof(i64));
  return domain + "-" + hex16(h) + ".pfc";
}

u64 entry_checksum(u64 fp_hash, u64 run_id, const std::vector<i64>& key,
                   const std::vector<i64>& value) {
  const u64 header[5] = {kMagic, fp_hash, run_id,
                         static_cast<u64>(key.size()),
                         static_cast<u64>(value.size())};
  u64 h = fnv1a(kFnvOffset, header, sizeof header);
  h = fnv1a(h, key.data(), key.size() * sizeof(i64));
  return fnv1a(h, value.data(), value.size() * sizeof(i64));
}

// True when an injection matches this site's next ordinal. Hard
// injections die by SIGABRT here, deterministically exercising the
// crash-diagnostic path mid-cache-I/O.
bool injection_fires(BudgetSite site, std::atomic<i64>& ops) {
  State& s = state();
  if (s.injections.empty()) {
    ops.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const i64 ordinal = ops.fetch_add(1, std::memory_order_relaxed);
  for (const Injection& inj : s.injections)
    if (inj.site == site && inj.fail_at == ordinal) {
      flightrec::record(flightrec::EventKind::kFault, to_string(site),
                        inj.hard ? "abort-injected" : "fault-injected",
                        ordinal);
      if (inj.hard) std::abort();
      // Deliberately not counted as a budget fault: which *request*
      // performs the K-th process-wide cache I/O is scheduling-dependent,
      // and the batch driver classifies a request "degraded" by its
      // scoped budget-fault counters. An injected read is just a miss.
      return true;
    }
  return false;
}

// Move a failed-verification entry out of the lookup path. Never trusted
// again; kept (bounded) for post-mortem inspection. Falls back to unlink
// when the quarantine directory cannot take it.
void quarantine(const fs::path& file) {
  State& s = state();
  std::error_code ec;
  const fs::path qdir = fs::path(s.dir) / "quarantine";
  fs::create_directories(qdir, ec);
  const u64 seq = s.temp_seq.fetch_add(1, std::memory_order_relaxed);
  const fs::path target =
      qdir / (file.filename().string() + "." + std::to_string(::getpid()) +
              "." + std::to_string(seq));
  fs::rename(file, target, ec);
  if (ec) fs::remove(file, ec);
  count(Counter::kDiskCacheCorrupt);
  flightrec::record(flightrec::EventKind::kMark, "diskcache", "quarantined");
}

bool read_words(std::ifstream& in, i64* out, std::size_t words) {
  in.read(reinterpret_cast<char*>(out),
          static_cast<std::streamsize>(words * sizeof(i64)));
  return static_cast<std::size_t>(in.gcount()) == words * sizeof(i64);
}

// The LRU sweep proper: newest-first by mtime, keep until the cap.
// Also removes stale temp files (a crashed writer's leftovers) and
// bounds the quarantine area.
void sweep_locked() {
  State& s = state();
  std::error_code ec;
  struct Ent {
    fs::path path;
    fs::file_time_type mtime;
    u64 size;
  };
  std::vector<Ent> entries;
  u64 total = 0;
  const auto now = fs::file_time_type::clock::now();
  for (const fs::directory_entry& e : fs::directory_iterator(s.dir, ec)) {
    if (!e.is_regular_file(ec)) continue;
    const std::string name = e.path().filename().string();
    const auto mtime = fs::last_write_time(e.path(), ec);
    if (ec) continue;
    if (name.rfind(".tmp.", 0) == 0) {
      // A temp file older than a few minutes is a dead writer's debris;
      // younger ones may still be mid-commit in another process.
      if (now - mtime > std::chrono::minutes(10)) fs::remove(e.path(), ec);
      continue;
    }
    const u64 size = static_cast<u64>(e.file_size(ec));
    if (ec) continue;
    entries.push_back(Ent{e.path(), mtime, size});
    total += size;
  }
  if (total > static_cast<u64>(s.max_bytes)) {
    // Evict oldest-first down to 3/4 of the cap, so back-to-back writes
    // do not re-trigger the sweep immediately.
    std::sort(entries.begin(), entries.end(),
              [](const Ent& a, const Ent& b) { return a.mtime < b.mtime; });
    const u64 target = static_cast<u64>(s.max_bytes) * 3 / 4;
    for (const Ent& e : entries) {
      if (total <= target) break;
      if (fs::remove(e.path, ec) && !ec) {
        total -= e.size;
        count(Counter::kDiskCacheEvictions);
      }
    }
  }
  // Keep quarantine bounded: the newest few entries are plenty for
  // diagnosis; the rest is just disk.
  constexpr std::size_t kKeepQuarantined = 32;
  std::vector<Ent> quarantined;
  for (const fs::directory_entry& e :
       fs::directory_iterator(fs::path(s.dir) / "quarantine", ec)) {
    if (!e.is_regular_file(ec)) continue;
    const auto mtime = fs::last_write_time(e.path(), ec);
    if (ec) continue;
    quarantined.push_back(Ent{e.path(), mtime, 0});
  }
  if (quarantined.size() > kKeepQuarantined) {
    std::sort(quarantined.begin(), quarantined.end(),
              [](const Ent& a, const Ent& b) { return a.mtime < b.mtime; });
    for (std::size_t i = 0; i + kKeepQuarantined < quarantined.size(); ++i)
      fs::remove(quarantined[i].path, ec);
  }
}

void maybe_sweep() {
  State& s = state();
  if (s.writes_since_sweep.fetch_add(1, std::memory_order_relaxed) + 1 <
      kSweepEveryWrites)
    return;
  // One sweeper at a time; racers skip rather than queue.
  std::unique_lock<std::mutex> lock(s.mu, std::try_to_lock);
  if (!lock.owns_lock()) return;
  s.writes_since_sweep.store(0, std::memory_order_relaxed);
  sweep_locked();
}

u64 fresh_run_id() {
  // Unique per process *tree*: forked batch workers inherit it, separate
  // invocations (the warm rerun) do not.
  u64 h = kFnvOffset;
  const u64 pid = static_cast<u64>(::getpid());
  const u64 tick = static_cast<u64>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  const u64 wall = static_cast<u64>(
      std::chrono::system_clock::now().time_since_epoch().count());
  h = fnv1a(h, &pid, sizeof pid);
  h = fnv1a(h, &tick, sizeof tick);
  h = fnv1a(h, &wall, sizeof wall);
  return h == 0 ? 1 : h;
}

}  // namespace

bool configure(const std::string& dir, i64 max_mb) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.enabled.store(false, std::memory_order_release);
  s.dir.clear();
  if (dir.empty()) return false;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec || !fs::is_directory(dir, ec)) return false;
  s.dir = dir;
  s.max_bytes = std::max<i64>(1, max_mb) << 20;
  s.run_id = fresh_run_id();
  s.enabled.store(true, std::memory_order_release);
  return true;
}

bool enabled() { return state().enabled.load(std::memory_order_acquire); }

const std::string& directory() { return state().dir; }

void set_injections(const std::vector<Injection>& injections) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.injections.clear();
  for (const Injection& inj : injections)
    if (inj.site == BudgetSite::kDiskcacheRead ||
        inj.site == BudgetSite::kDiskcacheWrite)
      s.injections.push_back(inj);
  // Ordinals count from the moment the table is installed, so fail-after=K
  // means "the K-th cache I/O from now", independent of any earlier
  // traffic in the process.
  s.read_ops.store(0, std::memory_order_relaxed);
  s.write_ops.store(0, std::memory_order_relaxed);
}

void sweep_now() {
  State& s = state();
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(s.mu);
  s.writes_since_sweep.store(0, std::memory_order_relaxed);
  sweep_locked();
}

std::string fingerprint() {
  // Format version + the build timestamp of this translation unit + the
  // configured salt. Rebuilding the cache layer (or bumping the version
  // on any format/semantic change) orphans every old entry -- they fail
  // the fingerprint-hashed file name and are LRU-swept out over time.
  return "pfc1|" __DATE__ "|" __TIME__ "|" + state().salt;
}

void set_fingerprint_salt(const std::string& salt) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.salt = salt;
}

void renew_run_id() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.run_id = fresh_run_id();
}

bool lookup(const std::string& domain, const std::vector<i64>& key,
            std::vector<i64>* value) {
  State& s = state();
  if (!enabled()) return false;
  if (injection_fires(BudgetSite::kDiskcacheRead, s.read_ops)) {
    count(Counter::kDiskCacheMisses);
    return false;
  }
  const u64 fp_hash = fingerprint_hash(domain);
  const fs::path file = fs::path(s.dir) / entry_name(domain, fp_hash, key);

  std::ifstream in(file, std::ios::binary);
  if (!in) {
    count(Counter::kDiskCacheMisses);
    return false;
  }
  i64 header[kHeaderWords];
  if (!read_words(in, header, kHeaderWords)) {
    quarantine(file);
    count(Counter::kDiskCacheMisses);
    return false;
  }
  const u64 magic = static_cast<u64>(header[0]);
  const u64 fp = static_cast<u64>(header[1]);
  const u64 run_id = static_cast<u64>(header[2]);
  const u64 key_words = static_cast<u64>(header[3]);
  const u64 value_words = static_cast<u64>(header[4]);
  const u64 checksum = static_cast<u64>(header[5]);
  // Structural sanity before allocating payload buffers: a bit flip in a
  // size field must not turn into a giant allocation.
  constexpr u64 kMaxWords = 1u << 24;
  if (magic != kMagic || fp != fp_hash || key_words > kMaxWords ||
      value_words > kMaxWords) {
    quarantine(file);
    count(Counter::kDiskCacheMisses);
    return false;
  }
  std::vector<i64> stored_key(key_words);
  std::vector<i64> stored_value(value_words);
  if (!read_words(in, stored_key.data(), stored_key.size()) ||
      !read_words(in, stored_value.data(), stored_value.size()) ||
      in.peek() != std::ifstream::traits_type::eof()) {
    quarantine(file);
    count(Counter::kDiskCacheMisses);
    return false;
  }
  if (entry_checksum(fp_hash, run_id, stored_key, stored_value) != checksum) {
    quarantine(file);
    count(Counter::kDiskCacheMisses);
    return false;
  }
  if (run_id == s.run_id) {
    // Written by this run (or a forked sibling): invisible, so cache
    // behavior only depends on the directory state at startup.
    count(Counter::kDiskCacheMisses);
    return false;
  }
  if (stored_key != key) {
    // File-name hash collision with a different key: a miss, and the
    // resident entry stays (it is valid for its own key).
    count(Counter::kDiskCacheMisses);
    return false;
  }
  *value = std::move(stored_value);
  count(Counter::kDiskCacheHits);
  // Refresh recency for the LRU sweep; best-effort.
  std::error_code ec;
  fs::last_write_time(file, fs::file_time_type::clock::now(), ec);
  return true;
}

void store(const std::string& domain, const std::vector<i64>& key,
           const std::vector<i64>& value) {
  State& s = state();
  if (!enabled()) return;
  if (injection_fires(BudgetSite::kDiskcacheWrite, s.write_ops)) return;
  const u64 fp_hash = fingerprint_hash(domain);
  const std::string name = entry_name(domain, fp_hash, key);
  const fs::path file = fs::path(s.dir) / name;
  const u64 seq = s.temp_seq.fetch_add(1, std::memory_order_relaxed);
  const fs::path tmp =
      fs::path(s.dir) / (".tmp." + std::to_string(::getpid()) + "." +
                         std::to_string(seq) + "." + name);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    const i64 header[kHeaderWords] = {
        static_cast<i64>(kMagic),
        static_cast<i64>(fp_hash),
        static_cast<i64>(s.run_id),
        static_cast<i64>(key.size()),
        static_cast<i64>(value.size()),
        static_cast<i64>(entry_checksum(fp_hash, s.run_id, key, value))};
    out.write(reinterpret_cast<const char*>(header), sizeof header);
    out.write(reinterpret_cast<const char*>(key.data()),
              static_cast<std::streamsize>(key.size() * sizeof(i64)));
    out.write(reinterpret_cast<const char*>(value.data()),
              static_cast<std::streamsize>(value.size() * sizeof(i64)));
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return;
    }
  }
  // The commit point: atomic on POSIX, so readers only ever see a
  // complete entry. Concurrent writers of the same key commit identical
  // bytes (modulo run id), and last-rename-wins either way.
  std::error_code ec;
  fs::rename(tmp, file, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return;
  }
  count(Counter::kDiskCacheWrites);
  maybe_sweep();
}

}  // namespace pf::support::diskcache
