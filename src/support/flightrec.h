// Always-on flight recorder: a fixed-memory, lock-free log of what the
// pipeline was recently doing, dumped as a self-contained diagnostic
// when a run dies.
//
// Every thread that records gets its own ring of the last kRingEvents
// events (span opens, decision remarks, phase boundaries, budget faults,
// injected faults). Recording is wait-free -- a global sequence
// fetch_add, a bounded byte copy into the thread's own slot, no locks,
// no allocation after ring creation -- so it stays on in production
// builds; the recorded overhead budget is <= 2% of end-to-end compile
// time (enforced by the BENCH_*.json trajectory, docs/observability.md).
//
// Dumping is async-signal-safe: install_crash_handler() hooks the fatal
// signals (SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL) with a handler that
// writes `polyfuse-diag.<pid>.json` -- ring contents, a metrics
// snapshot (relaxed atomic reads of the registered registry), and
// build/invocation info -- using only write(2)/open(2) and hand-rolled
// formatting, then re-raises the signal. The same writer serves the
// non-signal dump paths: --diagnose=FILE on exit, BudgetExceeded
// escaping the pipeline, and strict --verify/--lint failures.
//
// Reader caveat: the signal handler snapshots rings other threads are
// still writing; an event may be torn (mixed fields). Events carry a
// global sequence number so a torn or stale entry is detectable, and
// the dump is ordered best-effort, not transactional.
//
// POLYFUSE_NO_FLIGHTREC=1 disables recording entirely (the overhead A/B
// knob for benchmarks); dumps then contain only the metrics snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/intmath.h"

namespace pf::support {

class MetricsRegistry;

namespace flightrec {

enum class EventKind : unsigned char {
  kSpan = 0,    // a TraceSpan opened (a = nesting depth)
  kRemark,      // a decision remark was emitted
  kPhaseBegin,  // a PhaseTimer opened (name = phase)
  kPhaseEnd,    // a PhaseTimer closed (a = elapsed microseconds)
  kFault,       // a budget fault was raised (name = cause, a = ordinal)
  kMark,        // anything else worth a breadcrumb
};

const char* to_string(EventKind kind);

constexpr std::size_t kEventCategoryBytes = 24;  // incl. NUL
constexpr std::size_t kEventNameBytes = 64;      // incl. NUL
constexpr std::size_t kRingEvents = 256;         // per recording thread

struct Event {
  std::uint64_t seq = 0;  // global record order (1-based; 0 = never written)
  i64 t_us = 0;           // microseconds since the recorder's epoch
  int tid = 0;            // small per-process recording-thread index
  EventKind kind = EventKind::kMark;
  char category[kEventCategoryBytes] = {};
  char name[kEventNameBytes] = {};
  i64 a = 0;
  i64 b = 0;
};

/// Recording gate; initialized from POLYFUSE_NO_FLIGHTREC on first use.
bool enabled();
void set_enabled(bool on);

/// Append one event to the calling thread's ring. Strings are copied
/// (truncated) into the fixed-size event; near-zero cost, never throws,
/// no-op when disabled.
void record(EventKind kind, const char* category, const char* name,
            i64 a = 0, i64 b = 0) noexcept;

/// Total events ever recorded (each ring keeps only its last
/// kRingEvents).
std::uint64_t events_recorded();

/// Number of threads that have recorded at least one event.
int recording_threads();

/// All currently-retained events, oldest first by global sequence (for
/// tests and the bench harness; takes no locks, same caveats as dumps).
std::vector<Event> snapshot();

/// Register the registry whose counters/gauges/histograms dumps
/// snapshot; nullptr restores the global registry. (An atomic pointer,
/// not the thread-local scope: signal handlers must not touch TLS.)
void set_metrics(const MetricsRegistry* registry);

/// Remember the (pre-escaped) command line for dump headers.
void set_invocation(int argc, char** argv);

/// Hook SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL: dump to
/// `polyfuse-diag.<pid>.json` (under POLYFUSE_DIAG_DIR if set, else the
/// working directory), then re-raise. Idempotent.
void install_crash_handler();

/// The path crash dumps go to (fixed at install_crash_handler() time).
std::string default_diag_path();

/// Re-point crash dumps at `path` (truncated to the internal buffer if
/// over-long). Forked batch workers call this right after fork(): the
/// child inherits the parent's handler and path, and without its own
/// deterministic per-request path every worker's dying dump would race
/// for one file named after the parent pid.
void set_diag_path(const std::string& path);

/// Async-signal-safe: write the full diagnostic JSON to an open fd.
/// `cause` must be a NUL-terminated string with no characters needing
/// JSON escaping. Returns false on a write error.
bool dump(int fd, const char* cause) noexcept;

/// Convenience for the non-signal paths (--diagnose, budget/strict-
/// failure dumps): open `path`, dump, close. Returns false on failure.
bool write_diag_file(const std::string& path, const char* cause);

/// Drop every ring and zero the recorded-event count (tests only; not
/// thread-safe against concurrent recording).
void reset_for_test();

}  // namespace flightrec
}  // namespace pf::support
