#include "support/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "support/error.h"

namespace pf {

std::optional<i64> parse_i64(const std::string& text) {
  if (text.empty()) return std::nullopt;
  // stoll would skip leading whitespace; full-consumption parsing means
  // rejecting it instead.
  if (std::isspace(static_cast<unsigned char>(text.front())) != 0)
    return std::nullopt;
  try {
    std::size_t consumed = 0;
    const long long value = std::stoll(text, &consumed, 10);
    if (consumed != text.size()) return std::nullopt;
    return static_cast<i64>(value);
  } catch (const std::exception&) {
    return std::nullopt;  // no digits, or out of range
  }
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string repeat(const std::string& s, std::size_t n) {
  std::string out;
  out.reserve(s.size() * n);
  for (std::size_t i = 0; i < n; ++i) out += s;
  return out;
}

std::string indent(std::size_t n) { return std::string(2 * n, ' '); }

std::string pad_right(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

std::string pad_left(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  PF_CHECK_MSG(cells.size() == header_.size(),
               "table row has " << cells.size() << " cells, header has "
                                << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << pad_right(row[c], widths[c]);
    }
    os << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << (c == 0 ? "|-" : "-|-") << repeat("-", widths[c]);
  os << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace pf
