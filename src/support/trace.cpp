#include "support/trace.h"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "support/flightrec.h"
#include "support/metrics.h"

namespace pf::support {

std::atomic<bool> Tracer::spans_enabled_{false};
std::atomic<bool> Tracer::remarks_enabled_{false};
// 1M events/channel ~ a few hundred MB worst case; far above any one
// compile, low enough that a leaky resident service degrades to dropped
// spans (counted) instead of OOM.
std::atomic<std::size_t> Tracer::max_events_{1u << 20};

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point tracer_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

// Small sequential per-process thread index (0 = first thread to trace);
// stable for the thread's lifetime, cheap to read after first use.
int this_thread_index() {
  static std::atomic<int> next{0};
  thread_local const int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

// Per-thread open-span nesting depth.
thread_local int tls_depth = 0;

}  // namespace

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   tracer_epoch())
      .count();
}

void Tracer::remark(std::string category, std::string message,
                    std::vector<TraceAttr> attrs) {
  if (!remarks_on()) return;
  flightrec::record(flightrec::EventKind::kRemark, category.c_str(),
                    message.c_str());
  Remark r;
  r.category = std::move(category);
  r.message = std::move(message);
  r.attrs = std::move(attrs);
  r.ts_us = now_us();
  std::lock_guard<std::mutex> lock(mu_);
  if (remarks_.size() >= max_events()) {
    count(Counter::kTraceEventsDropped);
    return;
  }
  r.seq = remarks_.size();
  remarks_.push_back(std::move(r));
}

void Tracer::record_span(SpanInfo info) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= max_events()) {
    count(Counter::kTraceEventsDropped);
    return;
  }
  spans_.push_back(std::move(info));
}

std::vector<SpanInfo> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<Remark> Tracer::remarks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remarks_;
}

std::size_t Tracer::num_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::size_t Tracer::num_remarks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remarks_.size();
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  remarks_.clear();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void emit_args(std::ostringstream& os, const std::vector<TraceAttr>& attrs) {
  os << "{";
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (i != 0) os << ", ";
    os << "\"" << json_escape(attrs[i].first) << "\": \""
       << json_escape(attrs[i].second) << "\"";
  }
  os << "}";
}

}  // namespace

std::string Tracer::chrome_trace_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const SpanInfo& s : spans_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\": \"X\", \"pid\": 1, \"tid\": " << s.tid << ", \"name\": \""
       << json_escape(s.name) << "\", \"cat\": \"" << json_escape(s.category)
       << "\", \"ts\": " << s.start_us << ", \"dur\": " << s.dur_us
       << ", \"args\": ";
    emit_args(os, s.attrs);
    os << "}";
  }
  for (const Remark& r : remarks_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\": \"i\", \"s\": \"g\", \"pid\": 1, \"tid\": 0, \"name\": \""
       << json_escape(r.category) << ": " << json_escape(r.message)
       << "\", \"cat\": \"" << json_escape(r.category)
       << "\", \"ts\": " << r.ts_us << ", \"args\": ";
    emit_args(os, r.attrs);
    os << "}";
  }
  os << "\n]}\n";
  return os.str();
}

std::string Tracer::remarks_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const Remark& r : remarks_) {
    os << "[" << r.category << "] " << r.message;
    if (!r.attrs.empty()) {
      os << " (";
      for (std::size_t i = 0; i < r.attrs.size(); ++i) {
        if (i != 0) os << ", ";
        os << r.attrs[i].first << "=" << r.attrs[i].second;
      }
      os << ")";
    }
    os << "\n";
  }
  return os.str();
}

std::string Tracer::remarks_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"remarks\": [";
  for (std::size_t i = 0; i < remarks_.size(); ++i) {
    const Remark& r = remarks_[i];
    if (i != 0) os << ",";
    os << "\n{\"seq\": " << r.seq << ", \"category\": \""
       << json_escape(r.category) << "\", \"message\": \""
       << json_escape(r.message) << "\", \"attrs\": ";
    std::ostringstream tmp;
    emit_args(tmp, r.attrs);
    os << tmp.str() << "}";
  }
  os << "\n]}\n";
  return os.str();
}

TraceSpan::TraceSpan(const char* category, const char* name) {
  // The flight recorder logs every span open, traced or not: a crash
  // dump must say what the pipeline was doing without --trace on. Span
  // bodies are bounded copies into a per-thread ring; when the span is
  // inactive no strings are retained here, so only the open is logged.
  flightrec::record(flightrec::EventKind::kSpan, category, name, tls_depth);
  if (!Tracer::spans_on()) return;
  active_ = true;
  info_.category = category;
  info_.name = name;
  info_.tid = this_thread_index();
  info_.depth = tls_depth++;
  info_.start_us = Tracer::instance().now_us();
}

TraceSpan::TraceSpan(const char* category, std::string name) {
  flightrec::record(flightrec::EventKind::kSpan, category, name.c_str(),
                    tls_depth);
  if (!Tracer::spans_on()) return;
  active_ = true;
  info_.category = category;
  info_.name = std::move(name);
  info_.tid = this_thread_index();
  info_.depth = tls_depth++;
  info_.start_us = Tracer::instance().now_us();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  --tls_depth;
  Tracer& t = Tracer::instance();
  info_.dur_us = t.now_us() - info_.start_us;
  t.record_span(std::move(info_));
}

void TraceSpan::attr(const char* key, i64 value) {
  if (!active_) return;
  info_.attrs.emplace_back(key, std::to_string(value));
}

void TraceSpan::attr(const char* key, std::string value) {
  if (!active_) return;
  info_.attrs.emplace_back(key, std::move(value));
}

}  // namespace pf::support
