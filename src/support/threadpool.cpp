#include "support/threadpool.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <utility>

#include "support/metrics.h"
#include "support/strings.h"

namespace pf::support {

namespace {

std::atomic<std::size_t> g_jobs_override{0};

std::size_t hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t env_or_hardware_jobs() {
  if (const char* env = std::getenv("POLYFUSE_JOBS")) {
    // Empty means unset (harness scripts do POLYFUSE_JOBS= to clear it);
    // anything else gets the same checked parse as --jobs, with a
    // once-per-process warning instead of silent misbehavior.
    if (*env == '\0') return hardware_jobs();
    if (const auto v = parse_jobs_value(env)) return *v;
    static std::once_flag warned;
    std::call_once(warned, [env] {
      std::cerr << "polyfuse: ignoring invalid POLYFUSE_JOBS='" << env
                << "' (expected an integer >= 1); using hardware concurrency"
                << std::endl;
    });
  }
  return hardware_jobs();
}

}  // namespace

std::optional<std::size_t> parse_jobs_value(const std::string& text) {
  const std::optional<i64> v = parse_i64(text);
  if (!v || *v < 1) return std::nullopt;
  return static_cast<std::size_t>(*v);
}

std::size_t default_jobs() {
  const std::size_t o = g_jobs_override.load(std::memory_order_relaxed);
  return o > 0 ? o : env_or_hardware_jobs();
}

void set_default_jobs(std::size_t jobs) {
  g_jobs_override.store(jobs, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;  // inline mode
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  // Workers report metrics into the submitting thread's scope: capture
  // the submitter's registry pointer now and adopt it inside the task,
  // mirroring the per-task BudgetScope plumbing in dependence analysis.
  // Inline mode skips the wrap -- the caller's TLS is already right.
  if (!workers_.empty()) {
    MetricsRegistry* scope = current_metrics_ptr();
    fn = [scope, inner = std::move(fn)] {
      MetricsScope adopt(scope);
      inner();
    };
  }
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (workers_.empty()) {
    task();  // inline
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  if (workers_.empty()) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Dynamic self-scheduling: each task drains indices from a shared
  // counter, so uneven iteration costs (statement pairs with wildly
  // different ILP work) still balance.
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  const std::size_t tasks = std::min(workers_.size(), end - begin);
  std::vector<std::future<void>> futures;
  futures.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    futures.push_back(submit([next, end, &fn] {
      for (;;) {
        const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= end) return;
        fn(i);
      }
    }));
  }
  // Wait for every task before rethrowing: tasks reference fn/next, so
  // nothing may still be running when this frame unwinds.
  for (auto& f : futures) f.wait();
  for (auto& f : futures) f.get();  // rethrows the first task exception
}

}  // namespace pf::support
