// A small fixed-size thread pool for the compile pipeline.
//
// Dependence analysis fans its statement-pair loop out across the pool
// (each pair's ILP solves are independent); anything else that wants
// coarse-grained parallelism can submit() closures or use parallel_for.
// Exceptions thrown by tasks are captured and rethrown on the waiting
// thread, so pf::Error diagnostics survive the fan-out.
//
// The worker count comes from --jobs=N / POLYFUSE_JOBS, defaulting to
// hardware_concurrency; jobs == 1 means "run inline on the caller" and is
// guaranteed to execute in exactly the serial order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace pf::support {

/// The checked parse behind POLYFUSE_JOBS (same rules as --jobs): a
/// strict positive decimal integer, full consumption, range-checked.
/// Returns nullopt for garbage, zero, negatives and overflow. Exposed
/// for tests.
std::optional<std::size_t> parse_jobs_value(const std::string& text);

/// Process-wide default worker count: set_default_jobs() override if any,
/// else POLYFUSE_JOBS (validated -- an invalid value warns once on stderr
/// and falls back), else hardware_concurrency (at least 1).
std::size_t default_jobs();
/// Override default_jobs() process-wide; 0 restores the env/hardware
/// default.
void set_default_jobs(std::size_t jobs);

class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 or 1 spawns none: tasks run inline at
  /// submit()/parallel_for() time, preserving exact serial semantics.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the future rethrows any exception the task threw.
  std::future<void> submit(std::function<void()> fn);

  /// Run fn(i) for every i in [begin, end), dynamically scheduled across
  /// the pool (inline when the pool has no workers). Blocks until all
  /// iterations finish; the first task exception is rethrown.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace pf::support
