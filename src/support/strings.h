// Small string helpers and a fixed-width text table used by the benchmark
// harness to print paper-style result tables.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "support/intmath.h"

namespace pf {

/// Strict decimal i64 parse: optional sign, digits, full consumption,
/// range-checked. Returns nullopt on empty/garbage/trailing text/overflow.
/// Shared by checked CLI option parsing and the POLYFUSE_* env equivalents.
std::optional<i64> parse_i64(const std::string& text);

/// Join elements with a separator; each element is converted with
/// std::to_string unless it already is a string.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Repeat a string n times.
std::string repeat(const std::string& s, std::size_t n);

/// Indentation helper: 2*n spaces.
std::string indent(std::size_t n);

/// Right-pad to width (no-op if already longer).
std::string pad_right(const std::string& s, std::size_t width);

/// Left-pad to width (no-op if already longer).
std::string pad_left(const std::string& s, std::size_t width);

/// Format a double with fixed decimals.
std::string fmt_double(double v, int decimals = 2);

/// A simple aligned text table:
///   TextTable t({"bench", "wisefuse", "smartfuse"});
///   t.add_row({"swim", "2.31", "0.87"});
///   std::cout << t.to_string();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pf
