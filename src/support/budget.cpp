#include "support/budget.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "support/flightrec.h"
#include "support/stats.h"
#include "support/strings.h"

namespace pf::support {
namespace {

// Deadline checks read the clock, so they run every kDeadlineStride
// charges rather than on each one; ops are coarse enough to check always.
constexpr i64 kDeadlineStride = 64;

thread_local Budget* tl_budget = nullptr;

Counter fuel_counter(BudgetSite site) {
  switch (site) {
    case BudgetSite::kLpSolve:
      return Counter::kBudgetFuelLpSolve;
    case BudgetSite::kFmeProject:
      return Counter::kBudgetFuelFmeProject;
    case BudgetSite::kDepPair:
      return Counter::kBudgetFuelDepPair;
    case BudgetSite::kPlutoLevel:
      return Counter::kBudgetFuelPlutoLevel;
    case BudgetSite::kFusionModel:
      return Counter::kBudgetFuelFusionModel;
    case BudgetSite::kJitCc:
      return Counter::kBudgetFuelJitCc;
    case BudgetSite::kCountSet:
      return Counter::kBudgetFuelCountSet;
    case BudgetSite::kAnalysisReductions:
      return Counter::kBudgetFuelReductions;
    case BudgetSite::kLpFastlane:  // fast-lane attempts never charge fuel
    case BudgetSite::kDiskcacheRead:   // cache I/O sites never charge fuel
    case BudgetSite::kDiskcacheWrite:  // (injection-only, see diskcache.h)
    case BudgetSite::kBatchRequest:    // batch requests never charge fuel
    case BudgetSite::kNumSites:
      break;
  }
  return Counter::kBudgetFuelLpSolve;
}

std::string exceeded_message(BudgetSite site, BudgetExceeded::Kind kind,
                             i64 ordinal) {
  std::ostringstream os;
  os << "budget exceeded at " << to_string(site) << ": ";
  switch (kind) {
    case BudgetExceeded::Kind::kFuel:
      os << "fuel exhausted";
      break;
    case BudgetExceeded::Kind::kDeadline:
      os << "deadline expired";
      break;
    case BudgetExceeded::Kind::kInjected:
      os << "injected fault (op #" << ordinal << ")";
      break;
  }
  return os.str();
}

}  // namespace

const char* to_string(BudgetSite site) {
  switch (site) {
    case BudgetSite::kLpSolve:
      return "lp_solve";
    case BudgetSite::kFmeProject:
      return "fme_project";
    case BudgetSite::kDepPair:
      return "dep_pair";
    case BudgetSite::kPlutoLevel:
      return "pluto_level";
    case BudgetSite::kFusionModel:
      return "fusion_model";
    case BudgetSite::kJitCc:
      return "jit_cc";
    case BudgetSite::kCountSet:
      return "count_set";
    case BudgetSite::kLpFastlane:
      return "lp.fastlane";
    case BudgetSite::kAnalysisReductions:
      return "analysis.reductions";
    case BudgetSite::kDiskcacheRead:
      return "diskcache.read";
    case BudgetSite::kDiskcacheWrite:
      return "diskcache.write";
    case BudgetSite::kBatchRequest:
      return "batch.request";
    case BudgetSite::kNumSites:
      break;
  }
  return "?";
}

std::optional<BudgetSite> budget_site_from_string(const std::string& name) {
  for (std::size_t i = 0; i < kNumBudgetSites; ++i) {
    const auto site = static_cast<BudgetSite>(i);
    if (name == to_string(site)) return site;
  }
  return std::nullopt;
}

BudgetExceeded::BudgetExceeded(BudgetSite site, Kind kind, i64 ordinal)
    : Error(exceeded_message(site, kind, ordinal)), site_(site), kind_(kind) {}

const char* BudgetExceeded::cause() const {
  switch (kind_) {
    case Kind::kFuel:
      return "fuel-exhausted";
    case Kind::kDeadline:
      return "deadline-expired";
    case Kind::kInjected:
      return "fault-injected";
  }
  return "?";
}

std::optional<Injection> parse_injection(const std::string& text,
                                         std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos)
    return fail("expected SITE:fail-after=K, got '" + text + "'");
  const std::string site_name = text.substr(0, colon);
  const auto site = budget_site_from_string(site_name);
  if (!site)
    return fail("unknown injection site '" + site_name +
                "' (expected lp_solve, fme_project, dep_pair, pluto_level, "
                "fusion_model, jit_cc, count_set, lp.fastlane, "
                "analysis.reductions, diskcache.read, diskcache.write, or "
                "batch.request)");
  const std::string rest = text.substr(colon + 1);
  const std::string soft_key = "fail-after=";
  const std::string hard_key = "abort-after=";
  const bool hard = rest.rfind(hard_key, 0) == 0;
  if (!hard && rest.rfind(soft_key, 0) != 0)
    return fail("expected 'fail-after=K' or 'abort-after=K' after the site "
                "name, got '" + rest + "'");
  const std::string value =
      rest.substr(hard ? hard_key.size() : soft_key.size());
  const auto ordinal = parse_i64(value);
  if (!ordinal || *ordinal < 0)
    return fail((hard ? std::string("abort-after")
                      : std::string("fail-after")) +
                " wants a non-negative integer, got '" + value + "'");
  return Injection{*site, *ordinal, hard};
}

Budget::Budget(const BudgetSpec& spec)
    : fuel_(spec.fuel < 0 ? -1 : spec.fuel),
      limited_(spec.limited()),
      injections_(spec.injections) {
  if (spec.deadline_ms >= 0)
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(spec.deadline_ms);
}

void Budget::charge(BudgetSite site, i64 n) {
  count(fuel_counter(site), n);
  spent_ += n;
  if (++tick_ >= kDeadlineStride) {
    tick_ = 0;
    check_deadline(site);
  }
  if (fuel_ >= 0) {
    if (fuel_ < n) {
      fuel_ = 0;
      fault(site, BudgetExceeded::Kind::kFuel, -1);
    }
    fuel_ -= n;
  }
}

void Budget::op(BudgetSite site) {
  op_at(site, ops_[static_cast<std::size_t>(site)]++);
}

void Budget::op_at(BudgetSite site, i64 ordinal) {
  check_deadline(site);
  for (const Injection& inj : injections_)
    if (inj.site == site && inj.fail_at == ordinal) {
      if (inj.hard) hard_abort(site, ordinal);
      fault(site, BudgetExceeded::Kind::kInjected, ordinal);
    }
}

bool Budget::injection_fires(BudgetSite site) {
  const i64 ordinal = ops_[static_cast<std::size_t>(site)]++;
  for (const Injection& inj : injections_)
    if (inj.site == site && inj.fail_at == ordinal) {
      if (inj.hard) hard_abort(site, ordinal);
      count(Counter::kBudgetInjectedFaults);
      flightrec::record(flightrec::EventKind::kFault, to_string(site),
                        "fault-injected", ordinal);
      return true;
    }
  return false;
}

i64 Budget::task_allowance(std::size_t tasks) const {
  if (fuel_ < 0) return -1;
  return fuel_ / static_cast<i64>(std::max<std::size_t>(tasks, 1));
}

Budget Budget::make_task_budget(i64 fuel_allowance) const {
  Budget task;
  task.fuel_ = fuel_allowance < 0 ? -1 : fuel_allowance;
  task.limited_ = limited_;
  task.deadline_ = deadline_;
  task.injections_ = injections_;
  return task;
}

void Budget::absorb(const Budget& task) {
  spent_ += task.spent_;
  faults_ += task.faults_;
  if (fuel_ >= 0) fuel_ = std::max<i64>(0, fuel_ - task.spent_);
}

void Budget::fault(BudgetSite site, BudgetExceeded::Kind kind, i64 ordinal) {
  ++faults_;
  count(kind == BudgetExceeded::Kind::kInjected
            ? Counter::kBudgetInjectedFaults
            : Counter::kBudgetExhaustions);
  const BudgetExceeded ex(site, kind, ordinal);
  flightrec::record(flightrec::EventKind::kFault, to_string(site), ex.cause(),
                    ordinal);
  throw ex;
}

void Budget::hard_abort(BudgetSite site, i64 ordinal) {
  // A hard injection simulates a real crash: leave a breadcrumb in the
  // ring, then die by SIGABRT so the installed crash handler (if any)
  // produces the same diagnostic a genuine fatal signal would.
  flightrec::record(flightrec::EventKind::kFault, to_string(site),
                    "abort-injected", ordinal);
  std::abort();
}

void Budget::check_deadline(BudgetSite site) {
  if (deadline_ && std::chrono::steady_clock::now() > *deadline_)
    fault(site, BudgetExceeded::Kind::kDeadline, -1);
}

Budget* current_budget() { return tl_budget; }

bool budget_limited() {
  return tl_budget != nullptr && tl_budget->limited();
}

BudgetScope::BudgetScope(Budget* budget) : previous_(tl_budget) {
  tl_budget = budget;
}

BudgetScope::~BudgetScope() { tl_budget = previous_; }

BudgetSuspend::BudgetSuspend() : scope_(nullptr) {}

}  // namespace pf::support
