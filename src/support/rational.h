// Exact rational numbers over checked 64-bit integers.
//
// Rational is the scalar type of the simplex solver and of all rational
// linear algebra (null spaces, inverses) in polyfuse. Values are kept in
// canonical form: denominator > 0, gcd(num, den) == 1. All arithmetic is
// overflow-checked through 128-bit intermediates; overflow throws pf::Error
// rather than silently wrapping, so the polyhedral algorithms are exact or
// loudly fail.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "support/intmath.h"

namespace pf {

class Rational {
 public:
  constexpr Rational() : num_(0), den_(1) {}
  // NOLINTNEXTLINE(google-explicit-constructor): integers embed naturally.
  constexpr Rational(i64 value) : num_(value), den_(1) {}
  Rational(i64 num, i64 den);

  i64 num() const { return num_; }
  i64 den() const { return den_; }

  bool is_zero() const { return num_ == 0; }
  bool is_integer() const { return den_ == 1; }
  /// The integer value; requires is_integer().
  i64 as_integer() const;

  int sign() const { return sign_i64(num_); }

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator<=(const Rational& o) const { return !(o < *this); }
  bool operator>=(const Rational& o) const { return !(*this < o); }

  /// Three-way comparison against a plain integer: num/den <=> v reduces
  /// to num <=> v*den (den > 0; the 128-bit product is exact). These
  /// overloads keep hot-loop comparisons like `r < 0` from constructing,
  /// canonicalizing, and destroying a Rational temporary.
  int compare(i64 v) const {
    const i128 rhs = static_cast<i128>(v) * static_cast<i128>(den_);
    return num_ < rhs ? -1 : (num_ > rhs ? 1 : 0);
  }
  bool operator==(i64 v) const { return den_ == 1 && num_ == v; }
  bool operator!=(i64 v) const { return !(*this == v); }
  bool operator<(i64 v) const { return compare(v) < 0; }
  bool operator>(i64 v) const { return compare(v) > 0; }
  bool operator<=(i64 v) const { return compare(v) <= 0; }
  bool operator>=(i64 v) const { return compare(v) >= 0; }

  Rational abs() const { return num_ < 0 ? -*this : *this; }
  Rational reciprocal() const;

  /// Largest integer <= value.
  i64 floor() const { return floor_div(num_, den_); }
  /// Smallest integer >= value.
  i64 ceil() const { return ceil_div(num_, den_); }

  double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  std::string to_string() const;

 private:
  i64 num_;
  i64 den_;  // always > 0; gcd(num_, den_) == 1
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// Hash of the canonical (num, den) pair. Because Rational maintains the
/// canonical form den > 0, gcd(num, den) == 1, equal values always hash
/// equal (Rational(2, 4) and Rational(1, 2) are the same object state).
inline std::size_t hash_value(const Rational& r) {
  std::size_t seed = std::hash<i64>{}(r.num());
  hash_combine(seed, std::hash<i64>{}(r.den()));
  return seed;
}

}  // namespace pf

template <>
struct std::hash<pf::Rational> {
  std::size_t operator()(const pf::Rational& r) const noexcept {
    return pf::hash_value(r);
  }
};
