// Structured tracing for the compile pipeline: spans + decision remarks.
//
// Two channels, both collected by a process-wide Tracer singleton
// (alongside Stats) and both near-zero-cost when disabled (one relaxed
// atomic load per call site):
//
//  * Spans -- RAII timed regions (TraceSpan) with a category, a name,
//    key=value attributes, the recording thread and a nesting depth.
//    Spans may be opened from worker threads (dependence analysis opens
//    one per statement pair); they carry microsecond timestamps and are
//    exported as Chrome trace-event JSON ("X" complete events), loadable
//    in chrome://tracing or https://ui.perfetto.dev.
//
//  * Decision remarks -- ordered, structured records of *why* the
//    pipeline did what it did: one per fusion candidate (cost-model
//    verdict), per hyperplane found or scalar cut (Farkas objective,
//    parallelism outcome), per Algorithm-2 distribution. Remarks are
//    only emitted from deterministic (serial) pipeline code and carry no
//    wall-clock data in their text form, so `polyfuse --explain` output
//    is byte-identical at every --jobs count. Surfaced by
//    `polyfuse --explain[=json]` and embedded (as a summary) in the
//    bench harness JSON.
//
// Enabling: `polyfuse --trace=FILE` (or POLYFUSE_TRACE=FILE) turns both
// channels on; `--explain` turns on remarks only.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/intmath.h"

namespace pf::support {

/// One key=value attribute; values are pre-rendered to strings.
using TraceAttr = std::pair<std::string, std::string>;

struct SpanInfo {
  std::string category;
  std::string name;
  int tid = 0;           // small per-process thread index, 0 = first seen
  int depth = 0;         // nesting depth on its thread at open time
  double start_us = 0;   // microseconds since tracer epoch
  double dur_us = 0;
  std::vector<TraceAttr> attrs;
};

struct Remark {
  std::size_t seq = 0;   // global emission order
  std::string category;  // "deps" | "sched" | "fusion" | ...
  std::string message;
  std::vector<TraceAttr> attrs;
  double ts_us = 0;      // trace-export only; never part of --explain text
};

class Tracer {
 public:
  /// The process-wide instance everything reports into.
  static Tracer& instance();

  /// Fast inline gates: call sites check these before building any
  /// strings, so a disabled tracer costs one relaxed atomic load.
  static bool spans_on() {
    return spans_enabled_.load(std::memory_order_relaxed);
  }
  static bool remarks_on() {
    return remarks_enabled_.load(std::memory_order_relaxed);
  }

  void set_spans_enabled(bool on) {
    spans_enabled_.store(on, std::memory_order_relaxed);
  }
  void set_remarks_enabled(bool on) {
    remarks_enabled_.store(on, std::memory_order_relaxed);
  }

  /// In-memory buffer cap, per channel (spans and remarks each): once a
  /// channel holds this many events, further events are dropped and
  /// counted in the trace_events_dropped counter instead of growing the
  /// vector without bound -- a resident service must not OOM from
  /// tracing. Configurable via POLYFUSE_TRACE_MAX_EVENTS (parsed by the
  /// CLI); the flight recorder (support/flightrec.h) still sees every
  /// event, its rings overwrite instead of dropping.
  static std::size_t max_events() {
    return max_events_.load(std::memory_order_relaxed);
  }
  static void set_max_events(std::size_t cap) {
    max_events_.store(cap, std::memory_order_relaxed);
  }

  /// Append one decision remark (no-op when the channel is disabled).
  void remark(std::string category, std::string message,
              std::vector<TraceAttr> attrs = {});

  /// Snapshots (copies) for tests and the bench summary.
  std::vector<SpanInfo> spans() const;
  std::vector<Remark> remarks() const;
  std::size_t num_spans() const;
  std::size_t num_remarks() const;

  /// Chrome trace-event JSON: spans as "X" complete events, remarks as
  /// "i" instant events. Load in chrome://tracing or Perfetto.
  std::string chrome_trace_json() const;
  /// Human-readable remark log, one line per remark, in emission order.
  std::string remarks_text() const;
  /// {"remarks": [{"seq":..,"category":..,"message":..,"attrs":{..}}]}.
  std::string remarks_json() const;

  /// Drop every recorded span and remark (enabled flags are unchanged).
  void reset();

 private:
  friend class TraceSpan;

  double now_us() const;
  void record_span(SpanInfo info);  // called by ~TraceSpan

  static std::atomic<bool> spans_enabled_;
  static std::atomic<bool> remarks_enabled_;
  static std::atomic<std::size_t> max_events_;

  mutable std::mutex mu_;
  std::vector<SpanInfo> spans_;
  std::vector<Remark> remarks_;
};

/// RAII span. Constructing with tracing disabled is a no-op (`active()`
/// is false and attr() calls are dropped). Category and name should be
/// static strings; put dynamic data in attributes.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name);
  TraceSpan(const char* category, std::string name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return active_; }
  void attr(const char* key, i64 value);
  void attr(const char* key, std::string value);

 private:
  bool active_ = false;
  SpanInfo info_;
};

/// Shorthand: emit a remark iff the channel is enabled. Callers building
/// expensive attribute strings should still gate on
/// `Tracer::remarks_on()` themselves.
inline void remark(std::string category, std::string message,
                   std::vector<TraceAttr> attrs = {}) {
  if (Tracer::remarks_on())
    Tracer::instance().remark(std::move(category), std::move(message),
                              std::move(attrs));
}

/// Escape a string for inclusion in a JSON string literal (used by the
/// exporters; exposed for tests).
std::string json_escape(const std::string& s);

}  // namespace pf::support
