// Diagnostics: the single exception type used across polyfuse, and the
// assertion macros that raise it.
//
// Every failure in the library -- arithmetic overflow, infeasible internal
// state, malformed input -- surfaces as pf::Error carrying a human-readable
// message. Library code never calls abort()/assert() directly so that
// embedding applications (tests, benches, the JIT driver) can recover.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pf {

/// Exception thrown on any polyfuse failure.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* file, int line, const char* cond,
                               const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed";
  if (cond != nullptr && *cond != '\0') os << " (" << cond << ")";
  if (!msg.empty()) os << ": " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace pf

/// Check an invariant; throws pf::Error with file/line context on failure.
/// Active in all build types: polyfuse invariants guard exactness of the
/// math, so they are never compiled out.
#define PF_CHECK(cond)                                               \
  do {                                                               \
    if (!(cond)) ::pf::detail::raise(__FILE__, __LINE__, #cond, ""); \
  } while (0)

/// PF_CHECK with a streamed message: PF_CHECK_MSG(x > 0, "x=" << x).
#define PF_CHECK_MSG(cond, stream_expr)                          \
  do {                                                            \
    if (!(cond)) {                                                \
      std::ostringstream pf_os_;                                  \
      pf_os_ << stream_expr;                                      \
      ::pf::detail::raise(__FILE__, __LINE__, #cond, pf_os_.str()); \
    }                                                             \
  } while (0)

/// Unconditional failure with a streamed message.
#define PF_FAIL(stream_expr)                                    \
  do {                                                          \
    std::ostringstream pf_os_;                                  \
    pf_os_ << stream_expr;                                      \
    ::pf::detail::raise(__FILE__, __LINE__, "", pf_os_.str()); \
  } while (0)
