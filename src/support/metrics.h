// The metrics registry: counters, gauges, and fixed-boundary log-bucket
// histograms for every layer of the compile pipeline.
//
// This generalizes the original flat-counter Stats singleton into the
// observability substrate a resident compile service needs:
//
//  * Counters -- monotone event counts (simplex pivots, FME rows, budget
//    faults, ...). Lock-free relaxed atomics; worker threads bump them
//    without contention.
//
//  * Gauges -- last-written configuration/footprint values (worker
//    threads configured, trace-event cap). Merged by max on absorb.
//
//  * Histograms -- fixed-boundary distributions of per-operation values:
//    pivots per simplex solve, branch-and-bound nodes per ILP solve,
//    solve wall time, FME rows per elimination, dependence-pair analysis
//    time, fast-lane fallback causes. Buckets are powers of two
//    (bucket i >= 1 covers [2^(i-1), 2^i - 1]) so observation is one
//    bit_width plus a few relaxed atomic adds; categorical histograms
//    (fallback causes) use a linear layout instead.
//
// Scoping: metrics flow into the *current* registry -- a thread-local
// pointer defaulting to the process-wide global registry. A MetricsScope
// gives one unit of work (today: one polyfuse invocation; tomorrow: one
// service request) an isolated registry and absorbs it into the parent
// when the scope ends; absorption is a serial, ordered merge, so scoped
// runs report deterministically. ThreadPool propagates the submitting
// thread's registry into its workers, mirroring the per-task budget
// plumbing.
//
// Determinism contract (docs/observability.md): everything under the
// "runtime" subtree of to_json() -- gauges, wall-clock histograms, phase
// times, arena footprints -- legitimately varies with machine load and
// thread count. Everything *outside* it is byte-identical at every
// --jobs setting (with the solve cache off; cache hit/miss totals depend
// on interleaving). Tests enforce exactly that split.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/intmath.h"

namespace pf::support {

enum class Counter : std::size_t {
  kSimplexPivots = 0,    // tableau pivots across all simplex solves
  kIlpNodes,             // branch-and-bound nodes expanded
  kIlpSolves,            // top-level ILP minimize() calls
  kFmeRowsGenerated,     // lower*upper combinations emitted by FM
  kFmeRowsDropped,       // FM rows dropped (constant rows + pre-dedupe)
  kSolveCacheHits,       // polyhedral solve cache hits
  kSolveCacheMisses,     // polyhedral solve cache misses
  kDepPairsAnalyzed,     // statement pairs processed by dependence analysis
  kDepPolyhedraBuilt,    // candidate dependence polyhedra tested
  kVerifyCheckedDeps,    // dependences legality-checked by the verifier
  kVerifyViolations,     // verifier findings (all kinds)
  kVerifyRaceChecks,     // (parallel loop, dependence) race checks
  kVerifyReductionChecks,   // relaxed-reduction claims + clauses re-proven
  kVerifyReductionWaivers,  // dependences waived as confirmed reductions
  kLintCheckedAccesses,  // accesses bounds/coverage-checked by --lint
  kLintValueFlows,       // value-based (last-writer) flows computed
  kLintFindings,         // lint findings, every severity
  kLintErrors,           // lint findings of error (correctness) severity
  kBudgetFuelLpSolve,    // fuel charged at simplex pivots + B&B nodes
  kBudgetFuelFmeProject,  // fuel charged at Fourier-Motzkin eliminations
  kBudgetFuelDepPair,    // fuel charged at dependence-pair solves
  kBudgetFuelPlutoLevel,  // fuel charged at Pluto scheduling levels
  kBudgetFuelFusionModel,  // fuel charged in fusion-policy work
  kBudgetFuelJitCc,      // fuel charged at JIT compiler invocations
  kBudgetFuelCountSet,   // fuel charged at point-counting recursion steps
  kBudgetExhaustions,    // fuel/deadline faults raised (BudgetExceeded)
  kBudgetInjectedFaults,  // faults raised by --inject
  kBudgetDowngrades,     // graceful-degradation steps taken, any layer
  kBudgetAssumedDeps,    // dependences conservatively assumed under budget
  kFastlaneSolves,       // simplex solves served by the int64 fast lane
  kFastlaneFallbacks,    // per-solve fallbacks to the Rational tableau
  kFastlaneFmeRows,      // FM row combinations taken by the int64 path
  kFastlaneFmeFallbacks,  // FM combinations that fell back to checked ops
  kFastlaneWarmHits,     // scheduler warm-start points accepted (feasible)
  kFastlaneWarmMisses,   // scheduler warm-start points rejected
  kFastlaneArenaBytes,   // bytes of arena chunk storage reserved
  kTraceEventsDropped,   // spans/remarks dropped at the tracer buffer cap
  kCountSolves,          // top-level point-count requests (--analyze)
  kCountSteps,           // point-counting recursion steps, all solves
  kCountCacheHits,       // memoized count subproblems served from cache
  kCountCacheMisses,     // count subproblems computed fresh
  kCountUnknowns,        // counts degraded to "unknown" (budget/overflow)
  kReductionStatements,  // statements classified as associative reductions
  kReductionRelaxedDeps,  // reduction self-dependences relaxed for scheduling
  kReductionPrivArrays,  // arrays proven privatizable by value-based dataflow
  kReductionClauses,     // OpenMP reduction clauses attached during codegen
  kBudgetFuelReductions,  // fuel charged in the reduction analysis pass
  kDiskCacheHits,         // persistent-cache entries served from disk
  kDiskCacheMisses,       // persistent-cache probes that found no entry
  kDiskCacheWrites,       // entries committed to disk (temp-file + rename)
  kDiskCacheCorrupt,      // corrupted entries quarantined on read
  kDiskCacheEvictions,    // entries removed by the size-cap LRU sweep
  kBatchRequestsOk,       // batch requests that completed clean
  kBatchRequestsDegraded,  // batch requests that completed degraded
  kBatchRequestsRetried,  // batch requests that needed a retry to complete
  kBatchRequestsFailed,   // batch requests that failed every attempt
  kNumCounters,
};

constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kNumCounters);

const char* to_string(Counter c);

/// Counters whose value legitimately depends on the execution
/// environment (thread count, allocator behavior) rather than on the
/// input program; reported under the "runtime" subtree of to_json().
bool counter_is_runtime(Counter c);

enum class Gauge : std::size_t {
  kJobsConfigured = 0,  // effective worker-thread count of the run
  kTraceEventCap,       // tracer in-memory buffer cap (events per channel)
  kFlightrecThreads,    // threads that recorded flight-recorder events
  kNumGauges,
};

constexpr std::size_t kNumGauges = static_cast<std::size_t>(Gauge::kNumGauges);

const char* to_string(Gauge g);

enum class Hist : std::size_t {
  kSimplexPivotsPerSolve = 0,  // pivots per SimplexSolver::minimize
  kIlpNodesPerSolve,           // B&B nodes per IlpProblem::minimize
  kFmeRowsPerElimination,      // rows generated per pairwise FM elimination
  kFastlaneFallbackCause,      // categorical: see FastlaneFallbackCause
  kSimplexSolveMicros,         // wall microseconds per simplex solve
  kIlpSolveMicros,             // wall microseconds per ILP solve
  kDepPairMicros,              // wall microseconds per dependence pair
  kCountStepsPerSolve,         // recursion steps per top-level point count
  kCountSolveMicros,           // wall microseconds per top-level point count
  kNumHists,
};

constexpr std::size_t kNumHists = static_cast<std::size_t>(Hist::kNumHists);

const char* to_string(Hist h);

/// Bucket layout: log2 for magnitude distributions, linear for
/// small categorical codes.
enum class HistLayout { kLog2, kLinear };

HistLayout hist_layout(Hist h);

/// Wall-clock histograms live under the "runtime" subtree of to_json():
/// their buckets can never be byte-identical across runs.
bool hist_is_runtime(Hist h);

/// Category codes observed into Hist::kFastlaneFallbackCause (linear
/// buckets; the bucket index *is* the code).
enum FastlaneFallbackCause : i64 {
  kFallbackSimplexOverflow = 0,  // int64 tableau overflowed mid-solve
  kFallbackSimplexInjected = 1,  // --inject=lp.fastlane forced the solve over
  kFallbackFmeOverflow = 2,      // int64 FM row combination overflowed
  kFallbackFmeInjected = 3,      // --inject=lp.fastlane forced the rows over
  kNumFallbackCauses = 4,
};

const char* to_string(FastlaneFallbackCause cause);

/// Fixed bucket count for every histogram. Log2 layout: bucket 0 holds
/// values <= 0, bucket i in [1, kHistBuckets-2] holds [2^(i-1), 2^i - 1],
/// and the last bucket holds everything >= 2^(kHistBuckets-2).
constexpr std::size_t kHistBuckets = 24;

/// The bucket a value lands in under `layout` (exposed for tests).
std::size_t hist_bucket_index(HistLayout layout, i64 value);
/// Smallest value mapping to bucket `b` (exposed for tests).
i64 hist_bucket_lower_bound(HistLayout layout, std::size_t b);

/// One registry of counters + gauges + histograms + phase timings.
/// Recording is thread-safe and lock-free (phase timers take a mutex;
/// they fire a handful of times per run). Snapshot reads are relaxed
/// atomic loads, safe from a signal handler holding a registry pointer.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void add(Counter c, i64 n = 1) {
    counters_[static_cast<std::size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
  }
  i64 get(Counter c) const {
    return counters_[static_cast<std::size_t>(c)].load(
        std::memory_order_relaxed);
  }

  void gauge_set(Gauge g, i64 value) {
    gauges_[static_cast<std::size_t>(g)].store(value,
                                               std::memory_order_relaxed);
  }
  i64 gauge(Gauge g) const {
    return gauges_[static_cast<std::size_t>(g)].load(
        std::memory_order_relaxed);
  }

  void observe(Hist h, i64 value);

  i64 hist_count(Hist h) const {
    return hists_[static_cast<std::size_t>(h)].count.load(
        std::memory_order_relaxed);
  }
  i64 hist_sum(Hist h) const {
    return hists_[static_cast<std::size_t>(h)].sum.load(
        std::memory_order_relaxed);
  }
  /// Min/max observed value; 0 when the histogram is empty.
  i64 hist_min(Hist h) const;
  i64 hist_max(Hist h) const;
  i64 hist_bucket(Hist h, std::size_t b) const {
    return hists_[static_cast<std::size_t>(h)].buckets[b].load(
        std::memory_order_relaxed);
  }

  /// Accumulate wall time under a phase name ("deps", "schedule", ...).
  /// Repeated phases accumulate; first-use order is preserved for output.
  void add_phase_seconds(const std::string& phase, double seconds);
  double phase_seconds(const std::string& phase) const;

  /// Merge `other` into this registry: counters and histogram contents
  /// add, gauges merge by max, phase timings accumulate in `other`'s
  /// first-use order. Call from one thread at a time (scope teardown).
  void absorb(const MetricsRegistry& other);

  /// Zero every counter, gauge and histogram; drop all phase timings.
  void reset();

  /// Human-readable multi-line report (for `polyfuse --stats`).
  std::string to_string() const;
  /// One JSON object: {"counters": {...}, "histograms": {...},
  /// "runtime": {"counters": {...}, "gauges": {...}, "histograms": {...},
  /// "phase_seconds": {...}}}. Everything outside "runtime" is
  /// deterministic; see the header comment.
  std::string to_json() const;

 private:
  struct HistData {
    // min/max start at their sentinel extremes so concurrent first
    // observations need no "is this the first?" check (which would race);
    // accessors report 0 while count == 0.
    std::atomic<i64> count{0};
    std::atomic<i64> sum{0};
    std::atomic<i64> min{INT64_MAX};
    std::atomic<i64> max{INT64_MIN};
    std::array<std::atomic<i64>, kHistBuckets> buckets{};
  };

  std::array<std::atomic<i64>, kNumCounters> counters_{};
  std::array<std::atomic<i64>, kNumGauges> gauges_{};
  std::array<HistData, kNumHists> hists_{};
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, double>> phases_;
};

/// The process-wide root registry (the absorb target of outermost
/// scopes; also what unscoped code reports into).
MetricsRegistry& global_metrics();

/// The registry the calling thread currently reports into: the innermost
/// MetricsScope's registry, else global_metrics().
MetricsRegistry& current_metrics();

/// Raw thread-local scope pointer (nullptr = global); used by ThreadPool
/// to propagate the submitter's scope into worker tasks.
MetricsRegistry* current_metrics_ptr();

/// RAII metrics scoping. The default constructor opens an *owning* scope:
/// a fresh registry that the thread reports into, absorbed into the
/// previously-current registry when the scope closes (a serial, ordered
/// merge -- this is the per-request isolation a compile service needs).
/// The pointer constructor opens an *adopting* scope: the thread reports
/// into an existing registry (nullptr = the global one) and nothing is
/// absorbed on close -- this is how pool workers join the submitting
/// thread's scope.
class MetricsScope {
 public:
  MetricsScope();
  explicit MetricsScope(MetricsRegistry* adopt);
  ~MetricsScope();
  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

  MetricsRegistry& registry() { return *registry_; }

 private:
  MetricsRegistry* previous_;
  MetricsRegistry* registry_;
  MetricsRegistry* absorb_into_ = nullptr;  // owning scopes only
  std::unique_ptr<MetricsRegistry> owned_;
};

/// Shorthands: report into the calling thread's current registry.
inline void count(Counter c, i64 n = 1) { current_metrics().add(c, n); }
inline void observe(Hist h, i64 value) { current_metrics().observe(h, value); }
inline void gauge_set(Gauge g, i64 value) {
  current_metrics().gauge_set(g, value);
}

}  // namespace pf::support
