// Exact rational/integer linear algebra on small dense matrices.
//
// These routines back three consumers:
//  * the Pluto scheduler's linear-independence machinery (null spaces,
//    orthogonal complements of found hyperplane rows),
//  * code generation (inversion of a statement's unimodular schedule to
//    recover original iterators from transformed ones),
//  * general utility (rank/solve) in tests and analyses.
#pragma once

#include <optional>
#include <vector>

#include "support/matrix.h"
#include "support/rational.h"

namespace pf {

using RatMatrix = Matrix<Rational>;
using IntMatrix = Matrix<i64>;
using RatVector = std::vector<Rational>;
using IntVector = std::vector<i64>;

/// Rank of a rational matrix (Gaussian elimination).
std::size_t rank(const RatMatrix& m);

/// Reduced row echelon form.
RatMatrix rref(const RatMatrix& m);

/// Basis of the (right) null space {x : m * x = 0}; each row of the result
/// is one basis vector of length m.cols(). Empty matrix if the null space
/// is trivial.
RatMatrix null_space(const RatMatrix& m);

/// Inverse of a square rational matrix, or nullopt if singular.
std::optional<RatMatrix> invert(const RatMatrix& m);

/// One solution x of A x = b, or nullopt if inconsistent. If the system is
/// underdetermined, free variables are set to zero.
std::optional<RatVector> solve(const RatMatrix& a, const RatVector& b);

/// Determinant of a square rational matrix.
Rational determinant(const RatMatrix& m);

/// Convert an integer matrix to rationals.
RatMatrix to_rational(const IntMatrix& m);

/// Scale each row to the smallest integer multiple (clear denominators,
/// divide by row gcd). Zero rows stay zero.
IntMatrix to_integer_rows(const RatMatrix& m);

/// Scale a rational vector to primitive integers (same reduction as
/// to_integer_rows on a single row).
IntVector to_integer_row(const RatVector& v);

/// Rows spanning the orthogonal complement of the row space of `h`
/// (h need not be full rank; duplicate/dependent rows are tolerated).
/// Result rows are primitive integer vectors; empty if h spans everything.
///
/// This is Pluto's H* = I - H^T (H H^T)^-1 H construction, computed here
/// as the null space of H (equivalent row space).
IntMatrix orthogonal_complement_rows(const IntMatrix& h);

/// Dot product with overflow checking.
i64 dot(const IntVector& a, const IntVector& b);
Rational dot(const RatVector& a, const RatVector& b);

}  // namespace pf
