#include "support/metrics.h"

#include <algorithm>
#include <sstream>

#include "support/trace.h"

namespace pf::support {

const char* to_string(Counter c) {
  switch (c) {
    case Counter::kSimplexPivots:
      return "simplex_pivots";
    case Counter::kIlpNodes:
      return "ilp_nodes";
    case Counter::kIlpSolves:
      return "ilp_solves";
    case Counter::kFmeRowsGenerated:
      return "fme_rows_generated";
    case Counter::kFmeRowsDropped:
      return "fme_rows_dropped";
    case Counter::kSolveCacheHits:
      return "solve_cache_hits";
    case Counter::kSolveCacheMisses:
      return "solve_cache_misses";
    case Counter::kDepPairsAnalyzed:
      return "dep_pairs_analyzed";
    case Counter::kDepPolyhedraBuilt:
      return "dep_polyhedra_built";
    case Counter::kVerifyCheckedDeps:
      return "verify_checked_deps";
    case Counter::kVerifyViolations:
      return "verify_violations";
    case Counter::kVerifyRaceChecks:
      return "verify_race_checks";
    case Counter::kVerifyReductionChecks:
      return "verify_reduction_checks";
    case Counter::kVerifyReductionWaivers:
      return "verify_reduction_waivers";
    case Counter::kLintCheckedAccesses:
      return "lint_checked_accesses";
    case Counter::kLintValueFlows:
      return "lint_value_flows";
    case Counter::kLintFindings:
      return "lint_findings";
    case Counter::kLintErrors:
      return "lint_errors";
    case Counter::kBudgetFuelLpSolve:
      return "budget_fuel_lp_solve";
    case Counter::kBudgetFuelFmeProject:
      return "budget_fuel_fme_project";
    case Counter::kBudgetFuelDepPair:
      return "budget_fuel_dep_pair";
    case Counter::kBudgetFuelPlutoLevel:
      return "budget_fuel_pluto_level";
    case Counter::kBudgetFuelFusionModel:
      return "budget_fuel_fusion_model";
    case Counter::kBudgetFuelJitCc:
      return "budget_fuel_jit_cc";
    case Counter::kBudgetFuelCountSet:
      return "budget_fuel_count_set";
    case Counter::kBudgetExhaustions:
      return "budget_exhaustions";
    case Counter::kBudgetInjectedFaults:
      return "budget_injected_faults";
    case Counter::kBudgetDowngrades:
      return "budget_downgrades";
    case Counter::kBudgetAssumedDeps:
      return "budget_assumed_deps";
    case Counter::kFastlaneSolves:
      return "fastlane_solves";
    case Counter::kFastlaneFallbacks:
      return "fastlane_fallbacks";
    case Counter::kFastlaneFmeRows:
      return "fastlane_fme_rows";
    case Counter::kFastlaneFmeFallbacks:
      return "fastlane_fme_fallbacks";
    case Counter::kFastlaneWarmHits:
      return "fastlane_warm_hits";
    case Counter::kFastlaneWarmMisses:
      return "fastlane_warm_misses";
    case Counter::kFastlaneArenaBytes:
      return "fastlane_arena_bytes";
    case Counter::kTraceEventsDropped:
      return "trace_events_dropped";
    case Counter::kCountSolves:
      return "count_solves";
    case Counter::kCountSteps:
      return "count_steps";
    case Counter::kCountCacheHits:
      return "count_cache_hits";
    case Counter::kCountCacheMisses:
      return "count_cache_misses";
    case Counter::kCountUnknowns:
      return "count_unknowns";
    case Counter::kReductionStatements:
      return "reduction_statements";
    case Counter::kReductionRelaxedDeps:
      return "reduction_relaxed_deps";
    case Counter::kReductionPrivArrays:
      return "reduction_priv_arrays";
    case Counter::kReductionClauses:
      return "reduction_clauses";
    case Counter::kBudgetFuelReductions:
      return "budget_fuel_reductions";
    case Counter::kDiskCacheHits:
      return "diskcache_hits";
    case Counter::kDiskCacheMisses:
      return "diskcache_misses";
    case Counter::kDiskCacheWrites:
      return "diskcache_writes";
    case Counter::kDiskCacheCorrupt:
      return "diskcache_corrupt_quarantined";
    case Counter::kDiskCacheEvictions:
      return "diskcache_evictions";
    case Counter::kBatchRequestsOk:
      return "batch_requests_ok";
    case Counter::kBatchRequestsDegraded:
      return "batch_requests_degraded";
    case Counter::kBatchRequestsRetried:
      return "batch_requests_retried";
    case Counter::kBatchRequestsFailed:
      return "batch_requests_failed";
    case Counter::kNumCounters:
      break;
  }
  return "?";
}

bool counter_is_runtime(Counter c) {
  // Arena chunks are reserved per worker thread, so the byte total
  // scales with how many threads touched a solver -- an execution fact,
  // not an input-program fact. Persistent-cache counters depend on what
  // an earlier process left on disk, which no --jobs contract covers.
  return c == Counter::kFastlaneArenaBytes || c == Counter::kDiskCacheHits ||
         c == Counter::kDiskCacheMisses || c == Counter::kDiskCacheWrites ||
         c == Counter::kDiskCacheCorrupt || c == Counter::kDiskCacheEvictions;
}

const char* to_string(Gauge g) {
  switch (g) {
    case Gauge::kJobsConfigured:
      return "jobs_configured";
    case Gauge::kTraceEventCap:
      return "trace_event_cap";
    case Gauge::kFlightrecThreads:
      return "flightrec_threads";
    case Gauge::kNumGauges:
      break;
  }
  return "?";
}

const char* to_string(Hist h) {
  switch (h) {
    case Hist::kSimplexPivotsPerSolve:
      return "simplex_pivots_per_solve";
    case Hist::kIlpNodesPerSolve:
      return "ilp_nodes_per_solve";
    case Hist::kFmeRowsPerElimination:
      return "fme_rows_per_elimination";
    case Hist::kFastlaneFallbackCause:
      return "fastlane_fallback_cause";
    case Hist::kSimplexSolveMicros:
      return "simplex_solve_us";
    case Hist::kIlpSolveMicros:
      return "ilp_solve_us";
    case Hist::kDepPairMicros:
      return "dep_pair_us";
    case Hist::kCountStepsPerSolve:
      return "count_steps_per_solve";
    case Hist::kCountSolveMicros:
      return "count_solve_us";
    case Hist::kNumHists:
      break;
  }
  return "?";
}

HistLayout hist_layout(Hist h) {
  return h == Hist::kFastlaneFallbackCause ? HistLayout::kLinear
                                           : HistLayout::kLog2;
}

bool hist_is_runtime(Hist h) {
  switch (h) {
    case Hist::kSimplexSolveMicros:
    case Hist::kIlpSolveMicros:
    case Hist::kDepPairMicros:
    case Hist::kCountSolveMicros:
      return true;
    default:
      return false;
  }
}

const char* to_string(FastlaneFallbackCause cause) {
  switch (cause) {
    case kFallbackSimplexOverflow:
      return "simplex-overflow";
    case kFallbackSimplexInjected:
      return "simplex-injected";
    case kFallbackFmeOverflow:
      return "fme-overflow";
    case kFallbackFmeInjected:
      return "fme-injected";
    case kNumFallbackCauses:
      break;
  }
  return "?";
}

std::size_t hist_bucket_index(HistLayout layout, i64 value) {
  if (value <= 0) return 0;
  if (layout == HistLayout::kLinear)
    return std::min<std::size_t>(static_cast<std::size_t>(value),
                                 kHistBuckets - 1);
  // bit_width(v) in [1, 64] for v > 0; bucket i >= 1 covers
  // [2^(i-1), 2^i - 1], the last bucket absorbs the tail.
  return std::min<std::size_t>(
      static_cast<std::size_t>(
          std::bit_width(static_cast<std::uint64_t>(value))),
      kHistBuckets - 1);
}

i64 hist_bucket_lower_bound(HistLayout layout, std::size_t b) {
  if (b == 0) return 0;
  if (layout == HistLayout::kLinear) return static_cast<i64>(b);
  return i64{1} << (b - 1);
}

void MetricsRegistry::observe(Hist h, i64 value) {
  HistData& hd = hists_[static_cast<std::size_t>(h)];
  hd.sum.fetch_add(value, std::memory_order_relaxed);
  hd.buckets[hist_bucket_index(hist_layout(h), value)].fetch_add(
      1, std::memory_order_relaxed);
  i64 cur = hd.min.load(std::memory_order_relaxed);
  while (value < cur &&
         !hd.min.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = hd.max.load(std::memory_order_relaxed);
  while (value > cur &&
         !hd.max.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  hd.count.fetch_add(1, std::memory_order_relaxed);
}

i64 MetricsRegistry::hist_min(Hist h) const {
  const HistData& hd = hists_[static_cast<std::size_t>(h)];
  return hd.count.load(std::memory_order_relaxed) > 0
             ? hd.min.load(std::memory_order_relaxed)
             : 0;
}

i64 MetricsRegistry::hist_max(Hist h) const {
  const HistData& hd = hists_[static_cast<std::size_t>(h)];
  return hd.count.load(std::memory_order_relaxed) > 0
             ? hd.max.load(std::memory_order_relaxed)
             : 0;
}

void MetricsRegistry::add_phase_seconds(const std::string& phase,
                                        double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, total] : phases_) {
    if (name == phase) {
      total += seconds;
      return;
    }
  }
  phases_.emplace_back(phase, seconds);
}

double MetricsRegistry::phase_seconds(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, total] : phases_)
    if (name == phase) return total;
  return 0.0;
}

void MetricsRegistry::absorb(const MetricsRegistry& other) {
  for (std::size_t i = 0; i < kNumCounters; ++i)
    counters_[i].fetch_add(other.counters_[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    const i64 v = other.gauges_[i].load(std::memory_order_relaxed);
    if (v > gauges_[i].load(std::memory_order_relaxed))
      gauges_[i].store(v, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kNumHists; ++i) {
    const Hist h = static_cast<Hist>(i);
    const i64 ocount = other.hist_count(h);
    if (ocount == 0) continue;
    HistData& hd = hists_[i];
    if (hd.count.load(std::memory_order_relaxed) == 0) {
      hd.min.store(other.hist_min(h), std::memory_order_relaxed);
      hd.max.store(other.hist_max(h), std::memory_order_relaxed);
    } else {
      hd.min.store(std::min(hd.min.load(std::memory_order_relaxed),
                            other.hist_min(h)),
                   std::memory_order_relaxed);
      hd.max.store(std::max(hd.max.load(std::memory_order_relaxed),
                            other.hist_max(h)),
                   std::memory_order_relaxed);
    }
    hd.sum.fetch_add(other.hist_sum(h), std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistBuckets; ++b)
      hd.buckets[b].fetch_add(other.hist_bucket(h, b),
                              std::memory_order_relaxed);
    hd.count.fetch_add(ocount, std::memory_order_relaxed);
  }
  std::vector<std::pair<std::string, double>> other_phases;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    other_phases = other.phases_;
  }
  for (const auto& [name, total] : other_phases)
    add_phase_seconds(name, total);
}

void MetricsRegistry::reset() {
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  for (auto& hd : hists_) {
    hd.count.store(0, std::memory_order_relaxed);
    hd.sum.store(0, std::memory_order_relaxed);
    hd.min.store(INT64_MAX, std::memory_order_relaxed);
    hd.max.store(INT64_MIN, std::memory_order_relaxed);
    for (auto& b : hd.buckets) b.store(0, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mu_);
  phases_.clear();
}

namespace {

// Bucket-approximated percentile: the lower bound of the bucket holding
// the q-th observation. Exact enough to read a distribution's shape in a
// --stats report; the JSON keeps the raw buckets.
i64 approx_percentile(const MetricsRegistry& reg, Hist h, double q) {
  const i64 total = reg.hist_count(h);
  i64 rank = static_cast<i64>(q * static_cast<double>(total));
  if (rank >= total) rank = total - 1;
  i64 seen = 0;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    seen += reg.hist_bucket(h, b);
    if (seen > rank) return hist_bucket_lower_bound(hist_layout(h), b);
  }
  return reg.hist_max(h);
}

}  // namespace

std::string MetricsRegistry::to_string() const {
  std::ostringstream os;
  os << "compile pipeline stats:\n";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const Counter c = static_cast<Counter>(i);
    os << "  " << support::to_string(c) << " = " << get(c) << "\n";
  }
  const i64 hits = get(Counter::kSolveCacheHits);
  const i64 misses = get(Counter::kSolveCacheMisses);
  if (hits + misses > 0) {
    os << "  solve_cache_hit_rate = "
       << (100.0 * static_cast<double>(hits) /
           static_cast<double>(hits + misses))
       << "%\n";
  }
  const i64 fast = get(Counter::kFastlaneSolves);
  const i64 slow = get(Counter::kFastlaneFallbacks);
  if (fast + slow > 0) {
    os << "  fastlane_rate = "
       << (100.0 * static_cast<double>(fast) /
           static_cast<double>(fast + slow))
       << "%\n";
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    const Gauge g = static_cast<Gauge>(i);
    if (gauge(g) != 0)
      os << "  gauge " << support::to_string(g) << " = " << gauge(g) << "\n";
  }
  for (std::size_t i = 0; i < kNumHists; ++i) {
    const Hist h = static_cast<Hist>(i);
    const i64 n = hist_count(h);
    if (n == 0) continue;
    os << "  hist " << support::to_string(h) << ": count=" << n
       << " sum=" << hist_sum(h) << " min=" << hist_min(h)
       << " max=" << hist_max(h)
       << " p50~=" << approx_percentile(*this, h, 0.50)
       << " p90~=" << approx_percentile(*this, h, 0.90)
       << " p99~=" << approx_percentile(*this, h, 0.99) << "\n";
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, total] : phases_)
    os << "  phase " << name << " = " << total << " s\n";
  return os.str();
}

namespace {

void emit_hist_json(std::ostringstream& os, const MetricsRegistry& reg,
                    Hist h) {
  os << "\"" << to_string(h) << "\": {\"layout\": \""
     << (hist_layout(h) == HistLayout::kLog2 ? "log2" : "linear")
     << "\", \"count\": " << reg.hist_count(h)
     << ", \"sum\": " << reg.hist_sum(h) << ", \"min\": " << reg.hist_min(h)
     << ", \"max\": " << reg.hist_max(h) << ", \"buckets\": [";
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    if (b != 0) os << ", ";
    os << reg.hist_bucket(h, b);
  }
  os << "]}";
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{\"counters\": {";
  bool first = true;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const Counter c = static_cast<Counter>(i);
    if (counter_is_runtime(c)) continue;
    if (!first) os << ", ";
    first = false;
    os << "\"" << support::to_string(c) << "\": " << get(c);
  }
  os << "}, \"histograms\": {";
  first = true;
  for (std::size_t i = 0; i < kNumHists; ++i) {
    const Hist h = static_cast<Hist>(i);
    if (hist_is_runtime(h)) continue;
    if (!first) os << ", ";
    first = false;
    emit_hist_json(os, *this, h);
  }
  // Everything below varies with machine load / thread count; consumers
  // comparing runs mask this one subtree (docs/observability.md).
  os << "}, \"runtime\": {\"counters\": {";
  first = true;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const Counter c = static_cast<Counter>(i);
    if (!counter_is_runtime(c)) continue;
    if (!first) os << ", ";
    first = false;
    os << "\"" << support::to_string(c) << "\": " << get(c);
  }
  os << "}, \"gauges\": {";
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    const Gauge g = static_cast<Gauge>(i);
    if (i != 0) os << ", ";
    os << "\"" << support::to_string(g) << "\": " << gauge(g);
  }
  os << "}, \"histograms\": {";
  first = true;
  for (std::size_t i = 0; i < kNumHists; ++i) {
    const Hist h = static_cast<Hist>(i);
    if (!hist_is_runtime(h)) continue;
    if (!first) os << ", ";
    first = false;
    emit_hist_json(os, *this, h);
  }
  os << "}, \"phase_seconds\": {";
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < phases_.size(); ++i) {
      if (i != 0) os << ", ";
      os << "\"" << json_escape(phases_[i].first)
         << "\": " << phases_[i].second;
    }
  }
  os << "}}}";
  return os.str();
}

namespace {

thread_local MetricsRegistry* tl_metrics = nullptr;

}  // namespace

MetricsRegistry& global_metrics() {
  static MetricsRegistry reg;
  return reg;
}

MetricsRegistry& current_metrics() {
  return tl_metrics != nullptr ? *tl_metrics : global_metrics();
}

MetricsRegistry* current_metrics_ptr() { return tl_metrics; }

MetricsScope::MetricsScope()
    : previous_(tl_metrics), owned_(std::make_unique<MetricsRegistry>()) {
  registry_ = owned_.get();
  absorb_into_ = &current_metrics();
  tl_metrics = registry_;
}

MetricsScope::MetricsScope(MetricsRegistry* adopt) : previous_(tl_metrics) {
  registry_ = adopt != nullptr ? adopt : &global_metrics();
  tl_metrics = adopt;
}

MetricsScope::~MetricsScope() {
  tl_metrics = previous_;
  if (absorb_into_ != nullptr) absorb_into_->absorb(*owned_);
}

}  // namespace pf::support
