#include "support/rational.h"

#include <ostream>

namespace pf {

Rational::Rational(i64 num, i64 den) {
  PF_CHECK_MSG(den != 0, "rational with zero denominator");
  if (den < 0) {
    num = checked_neg(num);
    den = checked_neg(den);
  }
  const i64 g = gcd(num, den);
  if (g > 1) {
    num /= g;
    den /= g;
  }
  num_ = num;
  den_ = den;
}

i64 Rational::as_integer() const {
  PF_CHECK_MSG(den_ == 1, "as_integer on non-integral rational "
                              << num_ << "/" << den_);
  return num_;
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = checked_neg(num_);
  r.den_ = den_;
  return r;
}

Rational Rational::operator+(const Rational& o) const {
  // a/b + c/d = (a*(L/b) + c*(L/d)) / L with L = lcm(b, d); keeps
  // intermediates small compared to the naive cross-multiplication.
  const i64 l = lcm(den_, o.den_);
  const i64 n =
      checked_add(checked_mul(num_, l / den_), checked_mul(o.num_, l / o.den_));
  return Rational(n, l);
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  // Cross-reduce before multiplying to limit intermediate growth.
  const i64 g1 = gcd(num_, o.den_);
  const i64 g2 = gcd(o.num_, den_);
  const i64 n = checked_mul(g1 == 0 ? num_ : num_ / g1,
                            g2 == 0 ? o.num_ : o.num_ / g2);
  const i64 d = checked_mul(g2 == 0 ? den_ : den_ / g2,
                            g1 == 0 ? o.den_ : o.den_ / g1);
  return Rational(n, d);
}

Rational Rational::operator/(const Rational& o) const {
  return *this * o.reciprocal();
}

Rational Rational::reciprocal() const {
  PF_CHECK_MSG(num_ != 0, "reciprocal of zero");
  return Rational(den_, num_);
}

bool Rational::operator<(const Rational& o) const {
  // Compare a/b < c/d as a*d < c*b with positive b, d; 128-bit products
  // cannot overflow.
  const i128 lhs = static_cast<i128>(num_) * static_cast<i128>(o.den_);
  const i128 rhs = static_cast<i128>(o.num_) * static_cast<i128>(den_);
  return lhs < rhs;
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

}  // namespace pf
