#include "support/stats.h"

#include <chrono>
#include <sstream>

#include "support/trace.h"

namespace pf::support {

const char* to_string(Counter c) {
  switch (c) {
    case Counter::kSimplexPivots:
      return "simplex_pivots";
    case Counter::kIlpNodes:
      return "ilp_nodes";
    case Counter::kIlpSolves:
      return "ilp_solves";
    case Counter::kFmeRowsGenerated:
      return "fme_rows_generated";
    case Counter::kFmeRowsDropped:
      return "fme_rows_dropped";
    case Counter::kSolveCacheHits:
      return "solve_cache_hits";
    case Counter::kSolveCacheMisses:
      return "solve_cache_misses";
    case Counter::kDepPairsAnalyzed:
      return "dep_pairs_analyzed";
    case Counter::kDepPolyhedraBuilt:
      return "dep_polyhedra_built";
    case Counter::kVerifyCheckedDeps:
      return "verify_checked_deps";
    case Counter::kVerifyViolations:
      return "verify_violations";
    case Counter::kVerifyRaceChecks:
      return "verify_race_checks";
    case Counter::kLintCheckedAccesses:
      return "lint_checked_accesses";
    case Counter::kLintValueFlows:
      return "lint_value_flows";
    case Counter::kLintFindings:
      return "lint_findings";
    case Counter::kLintErrors:
      return "lint_errors";
    case Counter::kBudgetFuelLpSolve:
      return "budget_fuel_lp_solve";
    case Counter::kBudgetFuelFmeProject:
      return "budget_fuel_fme_project";
    case Counter::kBudgetFuelDepPair:
      return "budget_fuel_dep_pair";
    case Counter::kBudgetFuelPlutoLevel:
      return "budget_fuel_pluto_level";
    case Counter::kBudgetFuelFusionModel:
      return "budget_fuel_fusion_model";
    case Counter::kBudgetFuelJitCc:
      return "budget_fuel_jit_cc";
    case Counter::kBudgetExhaustions:
      return "budget_exhaustions";
    case Counter::kBudgetInjectedFaults:
      return "budget_injected_faults";
    case Counter::kBudgetDowngrades:
      return "budget_downgrades";
    case Counter::kBudgetAssumedDeps:
      return "budget_assumed_deps";
    case Counter::kFastlaneSolves:
      return "fastlane_solves";
    case Counter::kFastlaneFallbacks:
      return "fastlane_fallbacks";
    case Counter::kFastlaneFmeRows:
      return "fastlane_fme_rows";
    case Counter::kFastlaneFmeFallbacks:
      return "fastlane_fme_fallbacks";
    case Counter::kFastlaneWarmHits:
      return "fastlane_warm_hits";
    case Counter::kFastlaneWarmMisses:
      return "fastlane_warm_misses";
    case Counter::kFastlaneArenaBytes:
      return "fastlane_arena_bytes";
    case Counter::kNumCounters:
      break;
  }
  return "?";
}

Stats& Stats::instance() {
  static Stats s;
  return s;
}

void Stats::add_phase_seconds(const std::string& phase, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, total] : phases_) {
    if (name == phase) {
      total += seconds;
      return;
    }
  }
  phases_.emplace_back(phase, seconds);
}

double Stats::phase_seconds(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, total] : phases_)
    if (name == phase) return total;
  return 0.0;
}

void Stats::reset() {
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  phases_.clear();
}

std::string Stats::to_string() const {
  std::ostringstream os;
  os << "compile pipeline stats:\n";
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(Counter::kNumCounters); ++i) {
    const Counter c = static_cast<Counter>(i);
    os << "  " << support::to_string(c) << " = " << get(c) << "\n";
  }
  const i64 hits = get(Counter::kSolveCacheHits);
  const i64 misses = get(Counter::kSolveCacheMisses);
  if (hits + misses > 0) {
    os << "  solve_cache_hit_rate = "
       << (100.0 * static_cast<double>(hits) /
           static_cast<double>(hits + misses))
       << "%\n";
  }
  const i64 fast = get(Counter::kFastlaneSolves);
  const i64 slow = get(Counter::kFastlaneFallbacks);
  if (fast + slow > 0) {
    os << "  fastlane_rate = "
       << (100.0 * static_cast<double>(fast) /
           static_cast<double>(fast + slow))
       << "%\n";
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, total] : phases_)
    os << "  phase " << name << " = " << total << " s\n";
  return os.str();
}

std::string Stats::to_json() const {
  std::ostringstream os;
  os << "{\"counters\": {";
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(Counter::kNumCounters); ++i) {
    const Counter c = static_cast<Counter>(i);
    if (i != 0) os << ", ";
    os << "\"" << support::to_string(c) << "\": " << get(c);
  }
  os << "}, \"phase_seconds\": {";
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < phases_.size(); ++i) {
      if (i != 0) os << ", ";
      os << "\"" << phases_[i].first << "\": " << phases_[i].second;
    }
  }
  os << "}}";
  return os.str();
}

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PhaseTimer::PhaseTimer(std::string phase)
    : phase_(std::move(phase)), start_(now_seconds()) {
  // Phases double as top-level trace spans, so a --trace run shows the
  // driver's parse/deps/schedule/codegen regions without extra plumbing.
  if (Tracer::spans_on())
    span_ = std::make_unique<TraceSpan>("phase", phase_);
}

PhaseTimer::~PhaseTimer() {
  Stats::instance().add_phase_seconds(phase_, now_seconds() - start_);
}

}  // namespace pf::support
