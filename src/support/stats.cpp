#include "support/stats.h"

#include <chrono>

#include "support/flightrec.h"
#include "support/trace.h"

namespace pf::support {

Stats& Stats::instance() {
  static Stats s;
  return s;
}

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PhaseTimer::PhaseTimer(std::string phase)
    : phase_(std::move(phase)), start_(now_seconds()) {
  flightrec::record(flightrec::EventKind::kPhaseBegin, "phase",
                    phase_.c_str());
  // Phases double as top-level trace spans, so a --trace run shows the
  // driver's parse/deps/schedule/codegen regions without extra plumbing.
  if (Tracer::spans_on())
    span_ = std::make_unique<TraceSpan>("phase", phase_);
}

PhaseTimer::~PhaseTimer() {
  const double elapsed = now_seconds() - start_;
  flightrec::record(flightrec::EventKind::kPhaseEnd, "phase", phase_.c_str(),
                    static_cast<i64>(elapsed * 1e6));
  Stats::instance().add_phase_seconds(phase_, elapsed);
}

}  // namespace pf::support
