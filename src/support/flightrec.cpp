#include "support/flightrec.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <new>

#include "support/metrics.h"
#include "support/trace.h"

namespace pf::support::flightrec {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point recorder_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

i64 now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               recorder_epoch())
      .count();
}

// One ring per recording thread. Rings are heap-allocated once, then
// registered in a fixed global table and never freed: a crashing thread
// must be able to walk every ring without coordinating with their
// owners. The owner is the only writer; head is published after the
// event body so readers see mostly-complete entries (best effort -- see
// the header caveat).
struct Ring {
  int tid = 0;
  std::atomic<std::uint64_t> head{0};  // events ever written to this ring
  Event events[kRingEvents];
};

constexpr std::size_t kMaxRings = 256;

std::atomic<Ring*> g_rings[kMaxRings];
std::atomic<int> g_num_rings{0};
std::atomic<std::uint64_t> g_seq{0};
std::atomic<const MetricsRegistry*> g_metrics{nullptr};
std::atomic<bool> g_dumping{false};

// Set once at install/startup time (before any crash can use them).
char g_diag_path[512] = {};
std::string g_invocation_escaped;  // pre-escaped; bytes written verbatim

Ring* this_thread_ring() {
  thread_local Ring* ring = [] {
    const int idx = g_num_rings.fetch_add(1, std::memory_order_relaxed);
    if (idx >= static_cast<int>(kMaxRings)) return static_cast<Ring*>(nullptr);
    Ring* r = new (std::nothrow) Ring;  // record() is noexcept
    if (r == nullptr) return static_cast<Ring*>(nullptr);
    r->tid = idx;
    g_rings[idx].store(r, std::memory_order_release);
    return r;
  }();
  return ring;
}

void copy_bounded(char* dst, std::size_t cap, const char* src) {
  if (src == nullptr) {
    dst[0] = '\0';
    return;
  }
  std::size_t i = 0;
  for (; i + 1 < cap && src[i] != '\0'; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

bool env_disabled() {
  const char* env = std::getenv("POLYFUSE_NO_FLIGHTREC");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{!env_disabled()};
  return flag;
}

// ---------------------------------------------------------------------------
// Async-signal-safe JSON writer: an fd, a small flush buffer, and
// hand-rolled integer/string formatting. No allocation, no locale, no
// stdio.
// ---------------------------------------------------------------------------

class SigsafeWriter {
 public:
  explicit SigsafeWriter(int fd) : fd_(fd) {}
  ~SigsafeWriter() { flush(); }

  void raw(const char* s) {
    while (*s != '\0') put(*s++);
  }

  void raw_n(const char* s, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) put(s[i]);
  }

  void integer(i64 v) {
    char buf[24];
    std::size_t n = 0;
    std::uint64_t u;
    if (v < 0) {
      put('-');
      u = ~static_cast<std::uint64_t>(v) + 1;  // safe for INT64_MIN
    } else {
      u = static_cast<std::uint64_t>(v);
    }
    do {
      buf[n++] = static_cast<char>('0' + u % 10);
      u /= 10;
    } while (u != 0);
    while (n > 0) put(buf[--n]);
  }

  void uinteger(std::uint64_t u) {
    char buf[24];
    std::size_t n = 0;
    do {
      buf[n++] = static_cast<char>('0' + u % 10);
      u /= 10;
    } while (u != 0);
    while (n > 0) put(buf[--n]);
  }

  /// "..." with JSON escaping of the NUL-terminated payload.
  void string(const char* s) {
    put('"');
    for (; *s != '\0'; ++s) {
      const unsigned char c = static_cast<unsigned char>(*s);
      switch (c) {
        case '"':
          raw("\\\"");
          break;
        case '\\':
          raw("\\\\");
          break;
        case '\n':
          raw("\\n");
          break;
        case '\t':
          raw("\\t");
          break;
        case '\r':
          raw("\\r");
          break;
        default:
          if (c < 0x20) {
            raw("\\u00");
            const char* hex = "0123456789abcdef";
            put(hex[c >> 4]);
            put(hex[c & 0xf]);
          } else {
            put(static_cast<char>(c));
          }
      }
    }
    put('"');
  }

  bool ok() const { return ok_; }

  void flush() {
    std::size_t off = 0;
    while (off < len_) {
      const ssize_t n = ::write(fd_, buf_ + off, len_ - off);
      if (n < 0) {
        ok_ = false;
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    len_ = 0;
  }

 private:
  void put(char c) {
    if (len_ == sizeof buf_) flush();
    buf_[len_++] = c;
  }

  int fd_;
  char buf_[4096];
  std::size_t len_ = 0;
  bool ok_ = true;
};

void dump_metrics(SigsafeWriter& w, const MetricsRegistry& reg) {
  w.raw("\"metrics\": {\"counters\": {");
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const Counter c = static_cast<Counter>(i);
    if (i != 0) w.raw(", ");
    w.string(to_string(c));
    w.raw(": ");
    w.integer(reg.get(c));
  }
  w.raw("}, \"gauges\": {");
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    const Gauge g = static_cast<Gauge>(i);
    if (i != 0) w.raw(", ");
    w.string(to_string(g));
    w.raw(": ");
    w.integer(reg.gauge(g));
  }
  w.raw("}, \"histograms\": {");
  for (std::size_t i = 0; i < kNumHists; ++i) {
    const Hist h = static_cast<Hist>(i);
    if (i != 0) w.raw(", ");
    w.string(to_string(h));
    w.raw(": {\"count\": ");
    w.integer(reg.hist_count(h));
    w.raw(", \"sum\": ");
    w.integer(reg.hist_sum(h));
    w.raw(", \"min\": ");
    w.integer(reg.hist_min(h));
    w.raw(", \"max\": ");
    w.integer(reg.hist_max(h));
    w.raw(", \"buckets\": [");
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (b != 0) w.raw(", ");
      w.integer(reg.hist_bucket(h, b));
    }
    w.raw("]}");
  }
  // phase_seconds is intentionally absent: phase timings sit behind a
  // mutex, and a signal handler must not take locks.
  w.raw("}}");
}

void dump_event(SigsafeWriter& w, const Event& e) {
  w.raw("{\"seq\": ");
  w.uinteger(e.seq);
  w.raw(", \"t_us\": ");
  w.integer(e.t_us);
  w.raw(", \"tid\": ");
  w.integer(e.tid);
  w.raw(", \"kind\": ");
  w.string(to_string(e.kind));
  w.raw(", \"category\": ");
  w.string(e.category);
  w.raw(", \"name\": ");
  w.string(e.name);
  w.raw(", \"a\": ");
  w.integer(e.a);
  w.raw(", \"b\": ");
  w.integer(e.b);
  w.raw("}");
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "signal:SIGSEGV";
    case SIGABRT:
      return "signal:SIGABRT";
    case SIGBUS:
      return "signal:SIGBUS";
    case SIGFPE:
      return "signal:SIGFPE";
    case SIGILL:
      return "signal:SIGILL";
    default:
      return "signal:unknown";
  }
}

void crash_handler(int sig) {
  // One dump per process: a second fatal signal (e.g. crashing inside
  // the handler) falls straight through to the re-raise.
  if (!g_dumping.exchange(true, std::memory_order_acq_rel) &&
      g_diag_path[0] != '\0') {
    const int fd =
        ::open(g_diag_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      dump(fd, signal_name(sig));
      ::close(fd);
      const char* pre = "polyfuse: fatal signal; diagnostics written to ";
      (void)!::write(2, pre, std::strlen(pre));
      (void)!::write(2, g_diag_path, std::strlen(g_diag_path));
      (void)!::write(2, "\n", 1);
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kSpan:
      return "span";
    case EventKind::kRemark:
      return "remark";
    case EventKind::kPhaseBegin:
      return "phase-begin";
    case EventKind::kPhaseEnd:
      return "phase-end";
    case EventKind::kFault:
      return "fault";
    case EventKind::kMark:
      return "mark";
  }
  return "?";
}

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

void record(EventKind kind, const char* category, const char* name, i64 a,
            i64 b) noexcept {
  if (!enabled()) return;
  Ring* ring = this_thread_ring();
  if (ring == nullptr) return;  // beyond kMaxRings threads: stop recording
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  Event& e = ring->events[head % kRingEvents];
  e.seq = g_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  e.t_us = now_us();
  e.tid = ring->tid;
  e.kind = kind;
  copy_bounded(e.category, kEventCategoryBytes, category);
  copy_bounded(e.name, kEventNameBytes, name);
  e.a = a;
  e.b = b;
  ring->head.store(head + 1, std::memory_order_release);
}

std::uint64_t events_recorded() {
  return g_seq.load(std::memory_order_relaxed);
}

int recording_threads() {
  return std::min<int>(g_num_rings.load(std::memory_order_relaxed),
                       static_cast<int>(kMaxRings));
}

std::vector<Event> snapshot() {
  std::vector<Event> out;
  const int nrings =
      std::min<int>(g_num_rings.load(std::memory_order_acquire),
                    static_cast<int>(kMaxRings));
  for (int i = 0; i < nrings; ++i) {
    const Ring* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t lo = head > kRingEvents ? head - kRingEvents : 0;
    for (std::uint64_t k = lo; k < head; ++k)
      out.push_back(ring->events[k % kRingEvents]);
  }
  std::sort(out.begin(), out.end(),
            [](const Event& x, const Event& y) { return x.seq < y.seq; });
  return out;
}

void set_metrics(const MetricsRegistry* registry) {
  g_metrics.store(registry, std::memory_order_release);
}

void set_invocation(int argc, char** argv) {
  std::string joined;
  for (int i = 0; i < argc; ++i) {
    if (i != 0) joined += ' ';
    joined += argv[i];
  }
  g_invocation_escaped = json_escape(joined);
}

void install_crash_handler() {
  static bool installed = [] {
    // The dump path is fixed now, with malloc/getenv still legal.
    const char* dir = std::getenv("POLYFUSE_DIAG_DIR");
    std::string path;
    if (dir != nullptr && *dir != '\0') {
      path = dir;
      if (path.back() != '/') path += '/';
    }
    path += "polyfuse-diag." + std::to_string(::getpid()) + ".json";
    copy_bounded(g_diag_path, sizeof g_diag_path, path.c_str());

    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = crash_handler;
    sigemptyset(&sa.sa_mask);
    for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL})
      sigaction(sig, &sa, nullptr);
    return true;
  }();
  (void)installed;
}

std::string default_diag_path() { return g_diag_path; }

void set_diag_path(const std::string& path) {
  copy_bounded(g_diag_path, sizeof g_diag_path, path.c_str());
}

bool dump(int fd, const char* cause) noexcept {
  SigsafeWriter w(fd);
  w.raw("{\"tool\": \"polyfuse\", \"diag_format\": 1, \"cause\": ");
  w.string(cause);
  w.raw(",\n\"pid\": ");
  w.integer(static_cast<i64>(::getpid()));
  w.raw(", \"compiler\": ");
  w.string(__VERSION__);
  w.raw(", \"build\": ");
#ifdef NDEBUG
  w.raw("\"optimized\"");
#else
  w.raw("\"debug\"");
#endif
  w.raw(", \"recorder_enabled\": ");
  w.raw(enabled() ? "true" : "false");
  w.raw(",\n\"invocation\": \"");
  // Pre-escaped at set_invocation() time; write the bytes verbatim.
  w.raw_n(g_invocation_escaped.data(), g_invocation_escaped.size());
  w.raw("\",\n\"events_recorded\": ");
  w.uinteger(g_seq.load(std::memory_order_relaxed));
  w.raw(", \"ring_events_per_thread\": ");
  w.uinteger(kRingEvents);
  w.raw(",\n\"events\": [");
  // Ring by ring (not globally sorted -- sorting is off-limits here);
  // within a ring, oldest first. Consumers order by "seq".
  bool first_event = true;
  const int nrings =
      std::min<int>(g_num_rings.load(std::memory_order_acquire),
                    static_cast<int>(kMaxRings));
  for (int i = 0; i < nrings; ++i) {
    const Ring* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t lo = head > kRingEvents ? head - kRingEvents : 0;
    for (std::uint64_t k = lo; k < head; ++k) {
      if (!first_event) w.raw(",");
      first_event = false;
      w.raw("\n");
      dump_event(w, ring->events[k % kRingEvents]);
    }
  }
  w.raw("\n],\n");
  const MetricsRegistry* reg = g_metrics.load(std::memory_order_acquire);
  dump_metrics(w, reg != nullptr ? *reg : global_metrics());
  w.raw("}\n");
  w.flush();
  return w.ok();
}

bool write_diag_file(const std::string& path, const char* cause) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool ok = dump(fd, cause);
  ::close(fd);
  return ok;
}

void reset_for_test() {
  const int nrings =
      std::min<int>(g_num_rings.load(std::memory_order_acquire),
                    static_cast<int>(kMaxRings));
  for (int i = 0; i < nrings; ++i)
    if (Ring* ring = g_rings[i].load(std::memory_order_acquire))
      ring->head.store(0, std::memory_order_release);
  g_seq.store(0, std::memory_order_relaxed);
}

}  // namespace pf::support::flightrec
