// Compatibility facade over the metrics registry (support/metrics.h).
//
// Stats predates the registry: it was the process-global flat-counter
// singleton every pipeline layer reported into. The registry generalizes
// it (counters + gauges + histograms, request-scoped via MetricsScope),
// and this header keeps the old spelling working: `Stats::instance()`
// is a stateless facade whose every call routes to the calling thread's
// *current* registry, so existing call sites -- tests, the bench
// harness, the CLI -- transparently observe whichever scope is
// installed. New code should use support/metrics.h directly.
#pragma once

#include <memory>
#include <string>

#include "support/intmath.h"
#include "support/metrics.h"

namespace pf::support {

class Stats {
 public:
  /// The facade instance; state lives in current_metrics().
  static Stats& instance();

  void add(Counter c, i64 n = 1) { current_metrics().add(c, n); }
  i64 get(Counter c) const { return current_metrics().get(c); }

  /// Accumulate wall time under a phase name ("deps", "schedule", ...).
  /// Repeated phases accumulate; first-use order is preserved for output.
  void add_phase_seconds(const std::string& phase, double seconds) {
    current_metrics().add_phase_seconds(phase, seconds);
  }
  double phase_seconds(const std::string& phase) const {
    return current_metrics().phase_seconds(phase);
  }

  /// Zero every counter/gauge/histogram and drop all phase timings.
  void reset() { current_metrics().reset(); }

  /// Human-readable multi-line report (for `polyfuse --stats`).
  std::string to_string() const { return current_metrics().to_string(); }
  /// The registry's JSON (see MetricsRegistry::to_json for the shape).
  std::string to_json() const { return current_metrics().to_json(); }
};

class TraceSpan;

/// RAII phase timer: accumulates elapsed wall time into the named phase.
/// When span tracing is enabled (support/trace.h), the phase is also
/// recorded as a top-level trace span; the flight recorder always logs
/// the phase boundaries.
class PhaseTimer {
 public:
  explicit PhaseTimer(std::string phase);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::string phase_;
  double start_;
  std::unique_ptr<TraceSpan> span_;
};

}  // namespace pf::support
