// Pipeline-wide performance counters and phase timers.
//
// Every hot layer of the compile pipeline reports here: the simplex
// counts pivots, the branch-and-bound ILP counts nodes, Fourier-Motzkin
// counts generated/dropped rows, the polyhedral solve cache counts
// hits/misses, and the driver records wall time per phase (parse / deps /
// schedule / codegen). Counters are lock-free atomics so worker threads
// can bump them without contention; phase timers take a mutex (they fire
// a handful of times per run).
//
// Surfaced via `polyfuse --stats` and recorded as JSON by the bench
// harness, so BENCH_*.json files can track solver work, not just kernel
// time.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/intmath.h"

namespace pf::support {

enum class Counter : std::size_t {
  kSimplexPivots = 0,    // tableau pivots across all simplex solves
  kIlpNodes,             // branch-and-bound nodes expanded
  kIlpSolves,            // top-level ILP minimize() calls
  kFmeRowsGenerated,     // lower*upper combinations emitted by FM
  kFmeRowsDropped,       // FM rows dropped (constant rows + pre-dedupe)
  kSolveCacheHits,       // polyhedral solve cache hits
  kSolveCacheMisses,     // polyhedral solve cache misses
  kDepPairsAnalyzed,     // statement pairs processed by dependence analysis
  kDepPolyhedraBuilt,    // candidate dependence polyhedra tested
  kVerifyCheckedDeps,    // dependences legality-checked by the verifier
  kVerifyViolations,     // verifier findings (all kinds)
  kVerifyRaceChecks,     // (parallel loop, dependence) race checks
  kLintCheckedAccesses,  // accesses bounds/coverage-checked by --lint
  kLintValueFlows,       // value-based (last-writer) flows computed
  kLintFindings,         // lint findings, every severity
  kLintErrors,           // lint findings of error (correctness) severity
  kBudgetFuelLpSolve,    // fuel charged at simplex pivots + B&B nodes
  kBudgetFuelFmeProject,  // fuel charged at Fourier-Motzkin eliminations
  kBudgetFuelDepPair,    // fuel charged at dependence-pair solves
  kBudgetFuelPlutoLevel,  // fuel charged at Pluto scheduling levels
  kBudgetFuelFusionModel,  // fuel charged in fusion-policy work
  kBudgetFuelJitCc,      // fuel charged at JIT compiler invocations
  kBudgetExhaustions,    // fuel/deadline faults raised (BudgetExceeded)
  kBudgetInjectedFaults,  // faults raised by --inject
  kBudgetDowngrades,     // graceful-degradation steps taken, any layer
  kBudgetAssumedDeps,    // dependences conservatively assumed under budget
  kFastlaneSolves,       // simplex solves served by the int64 fast lane
  kFastlaneFallbacks,    // per-solve fallbacks to the Rational tableau
  kFastlaneFmeRows,      // FM row combinations taken by the int64 path
  kFastlaneFmeFallbacks,  // FM combinations that fell back to checked ops
  kFastlaneWarmHits,     // scheduler warm-start points accepted (feasible)
  kFastlaneWarmMisses,   // scheduler warm-start points rejected
  kFastlaneArenaBytes,   // bytes of arena chunk storage reserved
  kNumCounters,
};

const char* to_string(Counter c);

class Stats {
 public:
  /// The process-wide instance everything reports into.
  static Stats& instance();

  void add(Counter c, i64 n = 1) {
    counters_[static_cast<std::size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
  }
  i64 get(Counter c) const {
    return counters_[static_cast<std::size_t>(c)].load(
        std::memory_order_relaxed);
  }

  /// Accumulate wall time under a phase name ("deps", "schedule", ...).
  /// Repeated phases accumulate; first-use order is preserved for output.
  void add_phase_seconds(const std::string& phase, double seconds);
  double phase_seconds(const std::string& phase) const;

  /// Zero every counter and drop all phase timings.
  void reset();

  /// Human-readable multi-line report (for `polyfuse --stats`).
  std::string to_string() const;
  /// One JSON object: {"counters": {...}, "phase_seconds": {...}}.
  std::string to_json() const;

 private:
  std::array<std::atomic<i64>, static_cast<std::size_t>(Counter::kNumCounters)>
      counters_{};
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, double>> phases_;
};

/// Shorthand for Stats::instance().add(c, n).
inline void count(Counter c, i64 n = 1) { Stats::instance().add(c, n); }

class TraceSpan;

/// RAII phase timer: accumulates elapsed wall time into the named phase.
/// When span tracing is enabled (support/trace.h), the phase is also
/// recorded as a top-level trace span.
class PhaseTimer {
 public:
  explicit PhaseTimer(std::string phase);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::string phase_;
  double start_;
  std::unique_ptr<TraceSpan> span_;
};

}  // namespace pf::support
