// Compute-fuel budgets, wall-clock deadlines, and deterministic fault
// injection for the exact solver stack.
//
// Every exact engine polyfuse rests on -- the two-phase simplex, the
// branch-and-bound ILP, Fourier-Motzkin projection, the per-pair
// dependence solves, the level-by-level Pluto search -- is worst-case
// exponential. A Budget bounds that work the way ISL's max-operations
// bail-out does: a monotone fuel counter is *charged* at every pivot,
// B&B node, FME elimination and dependence solve, and an optional
// deadline is checked alongside. When either runs out, BudgetExceeded
// unwinds to the nearest recovery boundary, where each layer degrades
// gracefully instead of failing:
//
//   is_empty / integer_min   -> conservative "dependence assumed" answer
//   a dependence pair        -> every candidate polyhedron assumed real
//   a Pluto level            -> scalar cut on the original order
//   a fusion model           -> wisefuse -> smartfuse -> nofuse -> identity
//   a JIT compile            -> skipped; callers use the interpreter
//
// Soundness: every degradation over-approximates (extra dependences only
// constrain the schedule; the original statement order satisfies every
// dependence), so budgeted runs stay correct -- just less optimized.
//
// Budgets are installed per *thread* (BudgetScope); code that must run to
// completion regardless of budget -- codegen, verification, the linter --
// suspends the current budget with BudgetSuspend. For determinism across
// --jobs settings, parallel phases give each task its own sub-budget
// (make_task_budget) with a fixed fuel allowance and merge the spend back
// serially (absorb); a shared racing counter would make exhaustion depend
// on thread scheduling.
//
// Fault injection: --inject=SITE:fail-after=K makes the operation with
// 0-based ordinal K at SITE fail (once); ordinals are counted per budget
// (per task in parallel phases), so injected outcomes are byte-identical
// at any --jobs. See docs/robustness.md.
#pragma once

#include <array>
#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "support/error.h"
#include "support/intmath.h"

namespace pf::support {

/// Where fuel is charged and faults can be injected. Site names (the
/// to_string values) are the vocabulary of --inject and of the
/// budget_fuel_* stats counters.
enum class BudgetSite : std::size_t {
  kLpSolve = 0,  // simplex pivots + B&B nodes + ILP minimize entry
  kFmeProject,   // Fourier-Motzkin eliminations (incl. SetUnion algebra)
  kDepPair,      // dependence-pair analysis (one charge per candidate solve)
  kPlutoLevel,   // one Pluto scheduling level
  kFusionModel,  // fusion-policy work (pre-fusion order computation)
  kJitCc,        // one external JIT compiler invocation
  kCountSet,     // one point-counting recursion step (--analyze)
  kLpFastlane,   // one int64 fast-lane attempt (injection forces fallback)
  kAnalysisReductions,  // reduction/privatization classification pass
  kDiskcacheRead,   // one persistent-cache entry read (injection-only;
                    // handled inside support/diskcache, never charged here)
  kDiskcacheWrite,  // one persistent-cache entry write (injection-only)
  kBatchRequest,    // one batch-mode request (injection-only; the batch
                    // driver interprets the ordinal as the request index)
  kNumSites,
};

constexpr std::size_t kNumBudgetSites =
    static_cast<std::size_t>(BudgetSite::kNumSites);

const char* to_string(BudgetSite site);

/// Inverse of to_string; nullopt for unknown names.
std::optional<BudgetSite> budget_site_from_string(const std::string& name);

/// Raised when a budget runs out of fuel, passes its deadline, or hits an
/// injected fault. Derives from pf::Error so unguarded code still fails
/// with a catchable, descriptive exception.
class BudgetExceeded : public Error {
 public:
  enum class Kind { kFuel, kDeadline, kInjected };

  BudgetExceeded(BudgetSite site, Kind kind, i64 ordinal);

  BudgetSite site() const { return site_; }
  Kind kind() const { return kind_; }
  bool injected() const { return kind_ == Kind::kInjected; }
  const char* site_name() const { return support::to_string(site_); }
  /// Stable cause token for remarks: "fuel-exhausted", "deadline-expired",
  /// or "fault-injected".
  const char* cause() const;

 private:
  BudgetSite site_;
  Kind kind_;
};

/// One deterministic injected fault: the operation with 0-based ordinal
/// `fail_at` at `site` fails (exactly once; later operations succeed).
/// A *hard* injection (`SITE:abort-after=K`) calls std::abort() at the
/// matching ordinal instead of throwing: soft faults are recovered by
/// the graceful-degradation chain, so the hard flavor exists to
/// deterministically exercise the fatal-signal path -- the flight
/// recorder's crash dump (docs/observability.md) -- from tests and CI.
struct Injection {
  BudgetSite site = BudgetSite::kLpSolve;
  i64 fail_at = 0;
  bool hard = false;
};

/// Parse "SITE:fail-after=K" or "SITE:abort-after=K" (e.g.
/// "dep_pair:fail-after=2"). On failure returns nullopt and, when
/// `error` is non-null, stores a description.
std::optional<Injection> parse_injection(const std::string& text,
                                         std::string* error);

/// What to limit. Negative fuel/deadline mean "unlimited".
struct BudgetSpec {
  i64 fuel = -1;         // total fuel units; every charge spends one
  i64 deadline_ms = -1;  // wall-clock budget from construction, in ms
  std::vector<Injection> injections;

  bool limited() const {
    return fuel >= 0 || deadline_ms >= 0 || !injections.empty();
  }
};

/// A fuel/deadline account plus per-site operation counters. Not thread
/// safe: install one per thread (BudgetScope); parallel phases hand each
/// task its own sub-budget (make_task_budget / absorb).
class Budget {
 public:
  explicit Budget(const BudgetSpec& spec);

  /// Spend `n` fuel units at `site`. Throws BudgetExceeded when the fuel
  /// account cannot cover it (leaving the account empty) or, checked
  /// periodically, when the deadline has passed. Also feeds the
  /// budget_fuel_* stats counters.
  void charge(BudgetSite site, i64 n = 1);

  /// Announce the next operation at `site` (ordinal = how many ops this
  /// budget has announced there before). Throws when an injection matches
  /// the ordinal or the deadline has passed. Charges no fuel.
  void op(BudgetSite site);

  /// Like op(), but with a caller-supplied ordinal -- used where the
  /// deterministic operation index is defined globally (e.g. the linear
  /// pair index of the parallel dependence phase) rather than per budget.
  void op_at(BudgetSite site, i64 ordinal);

  /// Non-throwing injection probe for fallback-style sites (lp.fastlane):
  /// advances the site's op ordinal and reports whether an injection
  /// matches it. The injected fault is counted in stats but, unlike op(),
  /// does not raise faults() or throw -- a forced fast-lane fallback is
  /// still an exact answer, not a degraded one.
  bool injection_fires(BudgetSite site);

  i64 fuel_remaining() const { return fuel_; }
  /// Fuel spent through this budget (sub-budget spend counts once
  /// absorbed).
  i64 spent() const { return spent_; }
  /// Faults raised so far (exhaustions + injections). Callers snapshot
  /// this around an operation to detect a degraded answer that was
  /// recovered further down (e.g. a conservative is_empty).
  i64 faults() const { return faults_; }
  bool limited() const { return limited_; }

  /// Even fuel split for `tasks` parallel tasks (-1 when unlimited).
  /// Computed once before a parallel loop so the allowance does not
  /// depend on execution order.
  i64 task_allowance(std::size_t tasks) const;

  /// A child budget with `fuel_allowance` fuel, the same absolute
  /// deadline, the same injection table, and fresh operation counters.
  Budget make_task_budget(i64 fuel_allowance) const;

  /// Merge a finished task budget back: deduct its spend from this
  /// account (saturating at zero -- never throws) and accumulate its
  /// fault count.
  void absorb(const Budget& task);

 private:
  Budget() = default;

  [[noreturn]] void fault(BudgetSite site, BudgetExceeded::Kind kind,
                          i64 ordinal);
  [[noreturn]] static void hard_abort(BudgetSite site, i64 ordinal);
  void check_deadline(BudgetSite site);

  i64 fuel_ = -1;
  i64 spent_ = 0;
  i64 faults_ = 0;
  i64 tick_ = 0;  // charges since the last deadline check
  bool limited_ = false;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::vector<Injection> injections_;
  std::array<i64, kNumBudgetSites> ops_{};
};

/// The budget governing the calling thread (nullptr: unlimited).
Budget* current_budget();

/// True when a budget is installed and actually limits something. Gates
/// behavior changes (e.g. the solve-cache bypass) so unbudgeted runs stay
/// byte-identical.
bool budget_limited();

/// RAII: install `budget` as the calling thread's current budget (may be
/// nullptr to suspend); restores the previous budget on destruction.
class BudgetScope {
 public:
  explicit BudgetScope(Budget* budget);
  ~BudgetScope();
  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

 private:
  Budget* previous_;
};

/// RAII: suspend budgeting for a must-complete region (codegen, the
/// verifier, the linter, identity-schedule fallbacks). A conservative
/// solver answer inside a *checker* would fabricate violations, so those
/// regions always run exact.
class BudgetSuspend {
 public:
  BudgetSuspend();
  ~BudgetSuspend() = default;

 private:
  BudgetScope scope_;
};

/// Charge the calling thread's budget, if any.
inline void budget_charge(BudgetSite site, i64 n = 1) {
  if (Budget* b = current_budget()) b->charge(site, n);
}

/// Announce an operation on the calling thread's budget, if any.
inline void budget_op(BudgetSite site) {
  if (Budget* b = current_budget()) b->op(site);
}

/// Announce an operation with an explicit deterministic ordinal.
inline void budget_op_at(BudgetSite site, i64 ordinal) {
  if (Budget* b = current_budget()) b->op_at(site, ordinal);
}

/// Probe the calling thread's budget for a matching injection without
/// throwing; false when no budget is installed.
inline bool budget_injection_fires(BudgetSite site) {
  Budget* b = current_budget();
  return b != nullptr && b->injection_fires(site);
}

}  // namespace pf::support
