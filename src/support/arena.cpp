#include "support/arena.h"

#include <algorithm>

#include "support/error.h"
#include "support/stats.h"

namespace pf::support {

namespace {

// Releasing to an empty arena trims retained chunks down to this many
// bytes, so one pathological solve (or dependence pair) cannot pin its
// high-water mark for the rest of the compile.
constexpr std::size_t kRetainBytes = 1 << 20;

}  // namespace

Arena::Arena(std::size_t min_chunk_bytes) : min_chunk_bytes_(min_chunk_bytes) {
  PF_CHECK(min_chunk_bytes_ > 0);
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  PF_CHECK(align != 0 && (align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  // Advance through existing chunks (warm from earlier scopes) before
  // reserving a new one.
  for (;;) {
    if (cur_ < chunks_.size()) {
      Chunk& c = chunks_[cur_];
      const std::size_t aligned = (c.used + align - 1) & ~(align - 1);
      if (aligned + bytes <= c.size) {
        c.used = aligned + bytes;
        return c.data.get() + aligned;
      }
      if (cur_ + 1 < chunks_.size()) {
        ++cur_;
        chunks_[cur_].used = 0;
        continue;
      }
    }
    Chunk fresh;
    fresh.size = std::max(min_chunk_bytes_, bytes + align);
    fresh.data = std::make_unique<char[]>(fresh.size);
    reserved_ += fresh.size;
    count(Counter::kFastlaneArenaBytes, static_cast<i64>(fresh.size));
    if (!chunks_.empty() && chunks_[cur_].used > 0) ++cur_;
    chunks_.insert(chunks_.begin() + static_cast<long>(cur_),
                   std::move(fresh));
    chunks_[cur_].used = 0;
  }
}

void Arena::release(const Marker& m) {
  if (chunks_.empty()) return;
  PF_CHECK(m.chunk < chunks_.size());
  cur_ = m.chunk;
  chunks_[cur_].used = m.used;
  for (std::size_t i = cur_ + 1; i < chunks_.size(); ++i) chunks_[i].used = 0;
  if (m.chunk == 0 && m.used == 0) {
    // Fully empty: trim oversized retained storage back to the cap.
    std::size_t keep = 0, total = 0;
    while (keep < chunks_.size() && total < kRetainBytes)
      total += chunks_[keep++].size;
    chunks_.resize(std::max<std::size_t>(keep, 1));
  }
}

Arena& Arena::thread_local_instance() {
  thread_local Arena arena;
  return arena;
}

}  // namespace pf::support
