#include "support/linalg.h"

#include <algorithm>

namespace pf {

namespace {

// Forward elimination to row echelon form. Returns the pivot column for
// each pivot row (in order).
std::vector<std::size_t> echelonize(RatMatrix& m) {
  std::vector<std::size_t> pivot_cols;
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < m.cols() && pivot_row < m.rows(); ++col) {
    // Find a row with a nonzero entry in this column.
    std::size_t sel = pivot_row;
    while (sel < m.rows() && m(sel, col).is_zero()) ++sel;
    if (sel == m.rows()) continue;
    m.swap_rows(pivot_row, sel);
    const Rational inv = m(pivot_row, col).reciprocal();
    for (std::size_t c = col; c < m.cols(); ++c) m(pivot_row, c) *= inv;
    for (std::size_t r = pivot_row + 1; r < m.rows(); ++r) {
      if (m(r, col).is_zero()) continue;
      const Rational factor = m(r, col);
      for (std::size_t c = col; c < m.cols(); ++c)
        m(r, c) -= factor * m(pivot_row, c);
    }
    pivot_cols.push_back(col);
    ++pivot_row;
  }
  return pivot_cols;
}

// Back substitution: given echelon form with unit pivots, clear entries
// above each pivot.
void back_substitute(RatMatrix& m, const std::vector<std::size_t>& pivot_cols) {
  for (std::size_t p = pivot_cols.size(); p-- > 0;) {
    const std::size_t col = pivot_cols[p];
    for (std::size_t r = 0; r < p; ++r) {
      if (m(r, col).is_zero()) continue;
      const Rational factor = m(r, col);
      for (std::size_t c = 0; c < m.cols(); ++c)
        m(r, c) -= factor * m(p, c);
    }
  }
}

}  // namespace

std::size_t rank(const RatMatrix& m) {
  RatMatrix work = m;
  return echelonize(work).size();
}

RatMatrix rref(const RatMatrix& m) {
  RatMatrix work = m;
  const auto pivots = echelonize(work);
  back_substitute(work, pivots);
  return work;
}

RatMatrix null_space(const RatMatrix& m) {
  if (m.cols() == 0) return RatMatrix();
  if (m.rows() == 0) return RatMatrix::identity(m.cols());
  RatMatrix work = m;
  const auto pivots = echelonize(work);
  back_substitute(work, pivots);

  std::vector<bool> is_pivot(m.cols(), false);
  for (std::size_t c : pivots) is_pivot[c] = true;

  RatMatrix basis;
  for (std::size_t free_col = 0; free_col < m.cols(); ++free_col) {
    if (is_pivot[free_col]) continue;
    RatVector v(m.cols(), Rational(0));
    v[free_col] = Rational(1);
    // Each pivot variable is determined by the free variable's column.
    for (std::size_t p = 0; p < pivots.size(); ++p)
      v[pivots[p]] = -work(p, free_col);
    basis.append_row(v);
  }
  return basis;
}

std::optional<RatMatrix> invert(const RatMatrix& m) {
  PF_CHECK_MSG(m.rows() == m.cols(), "invert on non-square matrix");
  const std::size_t n = m.rows();
  // Augment [m | I] and reduce.
  RatMatrix aug(n, 2 * n, Rational(0));
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) aug(r, c) = m(r, c);
    aug(r, n + r) = Rational(1);
  }
  const auto pivots = echelonize(aug);
  if (pivots.size() != n || pivots.back() >= n) return std::nullopt;
  back_substitute(aug, pivots);
  RatMatrix inv(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) inv(r, c) = aug(r, n + c);
  return inv;
}

std::optional<RatVector> solve(const RatMatrix& a, const RatVector& b) {
  PF_CHECK(a.rows() == b.size());
  RatMatrix aug(a.rows(), a.cols() + 1);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) aug(r, c) = a(r, c);
    aug(r, a.cols()) = b[r];
  }
  const auto pivots = echelonize(aug);
  // Inconsistent if a pivot landed in the augmented column.
  if (!pivots.empty() && pivots.back() == a.cols()) return std::nullopt;
  back_substitute(aug, pivots);
  RatVector x(a.cols(), Rational(0));
  for (std::size_t p = 0; p < pivots.size(); ++p)
    x[pivots[p]] = aug(p, a.cols());
  return x;
}

Rational determinant(const RatMatrix& m) {
  PF_CHECK_MSG(m.rows() == m.cols(), "determinant of non-square matrix");
  RatMatrix work = m;
  Rational det(1);
  const std::size_t n = work.rows();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t sel = col;
    while (sel < n && work(sel, col).is_zero()) ++sel;
    if (sel == n) return Rational(0);
    if (sel != col) {
      work.swap_rows(col, sel);
      det = -det;
    }
    det *= work(col, col);
    const Rational inv = work(col, col).reciprocal();
    for (std::size_t r = col + 1; r < n; ++r) {
      if (work(r, col).is_zero()) continue;
      const Rational factor = work(r, col) * inv;
      for (std::size_t c = col; c < n; ++c)
        work(r, c) -= factor * work(col, c);
    }
  }
  return det;
}

RatMatrix to_rational(const IntMatrix& m) {
  RatMatrix r(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) r(i, j) = Rational(m(i, j));
  return r;
}

IntVector to_integer_row(const RatVector& v) {
  i64 l = 1;
  for (const Rational& x : v) l = lcm(l, x.den());
  IntVector out(v.size());
  i64 g = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = checked_mul(v[i].num(), l / v[i].den());
    g = gcd(g, out[i]);
  }
  if (g > 1)
    for (i64& x : out) x /= g;
  return out;
}

IntMatrix to_integer_rows(const RatMatrix& m) {
  IntMatrix out;
  for (std::size_t r = 0; r < m.rows(); ++r)
    out.append_row(to_integer_row(m.row(r)));
  return out;
}

IntMatrix orthogonal_complement_rows(const IntMatrix& h) {
  if (h.rows() == 0) {
    // Nothing found yet: the complement is all of Z^n.
    return IntMatrix::identity(h.cols());
  }
  // Row space of h equals the orthogonal complement of null(h), so the
  // complement of h's row space is exactly null(h).
  const RatMatrix basis = null_space(to_rational(h));
  if (basis.rows() == 0) return IntMatrix();
  return to_integer_rows(basis);
}

i64 dot(const IntVector& a, const IntVector& b) {
  PF_CHECK(a.size() == b.size());
  i128 acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += static_cast<i128>(a[i]) * static_cast<i128>(b[i]);
  return narrow_i128(acc);
}

Rational dot(const RatVector& a, const RatVector& b) {
  PF_CHECK(a.size() == b.size());
  Rational acc(0);
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace pf
