// Polyhedra-scanning code generation ("CLooG-lite").
//
// Turns (Scop, Schedule) into a loop AST:
//  * scalar levels become textual sequences (ordered by value),
//  * linear levels become loops; per-statement bounds are obtained by
//    Fourier-Motzkin projection of the transformed domain
//      { (t, i) : i in D_S, t_k == phi_k(i) for every linear level k }
//    onto [t_0..t_k, params],
//  * statements fused into one loop share the union of their spans
//    (min of lowers / max of uppers); statements whose span differs from
//    the union carry per-instance affine guards,
//  * original iterators are recovered by inverting the statement's linear
//    schedule rows -- the inverse must be integral (unimodular schedules;
//    the scheduler's small-coefficient objective delivers this, and
//    generation fails loudly otherwise),
//  * a loop is marked parallel when no dependence is carried at its level
//    for the statements under it; the outermost such loop of each nest is
//    flagged for `#pragma omp parallel for`.
#pragma once

#include "codegen/ast.h"
#include "sched/schedule.h"

namespace pf::codegen {

struct CodegenOptions {
  /// Run LP-based redundant-constraint elimination on projected bounds
  /// (slower generation, tidier loops).
  bool remove_redundant_bounds = true;
};

/// Generate the loop AST for a schedule. Throws pf::Error on unsupported
/// (non-unimodular) schedules.
AstPtr generate_ast(const ir::Scop& scop, const sched::Schedule& schedule,
                    const CodegenOptions& options = {});

}  // namespace pf::codegen
