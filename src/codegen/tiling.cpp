#include "codegen/tiling.h"

#include <functional>

#include "sched/analysis.h"
#include "support/budget.h"

namespace pf::codegen {

namespace {

std::size_t count_t_vars(const AstNode& n) {
  switch (n.kind) {
    case AstNode::Kind::kLoop:
      return std::max(n.t_index + 1, count_t_vars(*n.body));
    case AstNode::Kind::kBlock: {
      std::size_t q = 0;
      for (const AstPtr& c : n.children) q = std::max(q, count_t_vars(*c));
      return q;
    }
    case AstNode::Kind::kStmt:
      return 0;
  }
  return 0;
}

// A loop is rectangular-tileable when its bounds are single-alternative,
// denominator-1 and reference only parameters (no enclosing t vars).
bool tileable(const AstNode& loop, std::size_t q) {
  for (const LoopBound* b : {&loop.lower, &loop.upper}) {
    if (b->alternatives.size() != 1) return false;
    for (const BoundTerm& t : b->alternatives[0]) {
      if (t.denom != 1) return false;
      for (std::size_t d = 0; d < q; ++d)
        if (t.expr.coeff(d) != 0) return false;
    }
  }
  return true;
}

// Apply `fn` to every affine payload in the tree.
void for_each_expr(AstNode& n,
                   const std::function<void(poly::AffineExpr&)>& fn) {
  switch (n.kind) {
    case AstNode::Kind::kLoop:
      for (LoopBound* b : {&n.lower, &n.upper})
        for (auto& alt : b->alternatives)
          for (BoundTerm& t : alt) fn(t.expr);
      for_each_expr(*n.body, fn);
      break;
    case AstNode::Kind::kBlock:
      for (const AstPtr& c : n.children) for_each_expr(*c, fn);
      break;
    case AstNode::Kind::kStmt:
      for (poly::AffineExpr& e : n.iter_exprs) fn(e);
      for (poly::AffineExpr& e : n.guards) fn(e);
      break;
  }
}

// Remap every affine payload into the enlarged space
// [t_0..t_{q-1}, NEW tile vars, params].
void widen(AstNode& n, std::size_t q, std::size_t extra) {
  for_each_expr(n, [&](poly::AffineExpr& e) { e = e.insert_dims(q, extra); });
}

// Drop the unused tail of reserved tile dims [q + used, q + extra).
void narrow(AstNode& n, std::size_t q, std::size_t used, std::size_t extra,
            std::size_t dims) {
  if (used == extra) return;
  std::vector<bool> remove(dims, false);
  for (std::size_t d = q + used; d < q + extra; ++d) remove[d] = true;
  for_each_expr(n, [&](poly::AffineExpr& e) { e = e.drop_dims(remove); });
}

class Tiler {
 public:
  Tiler(std::size_t q, std::size_t extra, const TilingOptions& options,
        const std::vector<std::size_t>* band_of)
      : q_(q), extra_(extra), dims_(0), options_(options), band_of_(band_of) {}

  std::size_t bands_tiled = 0;
  std::size_t tile_vars_used = 0;

  void set_dims(std::size_t dims) { dims_ = dims; }

  void run(AstPtr& node) {
    switch (node->kind) {
      case AstNode::Kind::kBlock:
        for (AstPtr& c : node->children) run(c);
        return;
      case AstNode::Kind::kStmt:
        return;
      case AstNode::Kind::kLoop:
        break;
    }
    // Collect the maximal perfect chain of tileable loops within one
    // permutable band.
    std::vector<AstNode*> chain;
    AstNode* cur = node.get();
    while (cur->kind == AstNode::Kind::kLoop && tileable(*cur, q_ + extra_) &&
           same_band(chain.empty() ? cur : chain.front(), cur)) {
      chain.push_back(cur);
      if (cur->body->kind != AstNode::Kind::kLoop) break;
      cur = cur->body.get();
    }
    if (chain.size() < options_.min_band_depth ||
        tile_vars_used + chain.size() > extra_) {
      // Not tiled here; keep descending (inner chains may still qualify).
      if (node->kind == AstNode::Kind::kLoop) run(node->body);
      return;
    }

    // Build tile loops T_0..T_{D-1} above the chain.
    const i64 b = options_.tile_size;
    std::vector<AstPtr> tile_loops;
    for (AstNode* loop : chain) {
      AstPtr t = make_loop(loop->level, q_ + tile_vars_used);
      ++tile_vars_used;
      // T >= floord(lb, B) == ceild(lb - (B-1), B); T <= floord(ub, B).
      std::vector<BoundTerm> lo, hi;
      for (const BoundTerm& term : loop->lower.alternatives[0])
        lo.push_back(BoundTerm{term.expr.plus_const(-(b - 1)), b});
      for (const BoundTerm& term : loop->upper.alternatives[0])
        hi.push_back(BoundTerm{term.expr, b});
      t->lower.alternatives.push_back(std::move(lo));
      t->upper.alternatives.push_back(std::move(hi));
      t->parallel = loop->parallel;
      tile_loops.push_back(std::move(t));
    }
    // Constrain each point loop to its tile.
    for (std::size_t k = 0; k < chain.size(); ++k) {
      AstNode* loop = chain[k];
      const std::size_t tvar = tile_loops[k]->t_index;
      poly::AffineExpr bt(dims_);
      bt.set_coeff(tvar, b);
      loop->lower.alternatives[0].push_back(BoundTerm{bt, 1});
      loop->upper.alternatives[0].push_back(
          BoundTerm{bt.plus_const(b - 1), 1});
    }

    // Relink: node -> T0 -> ... -> T_{D-1} -> original chain.
    AstPtr original_chain = std::move(node);
    AstPtr head = std::move(tile_loops[0]);
    AstNode* tail = head.get();
    for (std::size_t k = 1; k < tile_loops.size(); ++k) {
      tail->body = std::move(tile_loops[k]);
      tail = tail->body.get();
    }
    tail->body = std::move(original_chain);
    node = std::move(head);
    ++bands_tiled;

    // Continue below the band (inner blocks may contain further nests).
    run(chain.back()->body);
  }

 private:
  bool same_band(const AstNode* first, const AstNode* candidate) const {
    if (band_of_ == nullptr) return true;
    PF_CHECK(first->t_index < band_of_->size() &&
             candidate->t_index < band_of_->size());
    return (*band_of_)[first->t_index] == (*band_of_)[candidate->t_index];
  }

  std::size_t q_;
  std::size_t extra_;
  std::size_t dims_;
  const TilingOptions& options_;
  const std::vector<std::size_t>* band_of_;
};

std::size_t count_tileable_band_loops(const AstNode& n, std::size_t q,
                                      std::size_t min_depth,
                                      const std::vector<std::size_t>* band_of) {
  switch (n.kind) {
    case AstNode::Kind::kBlock: {
      std::size_t total = 0;
      for (const AstPtr& c : n.children)
        total += count_tileable_band_loops(*c, q, min_depth, band_of);
      return total;
    }
    case AstNode::Kind::kStmt:
      return 0;
    case AstNode::Kind::kLoop:
      break;
  }
  std::vector<const AstNode*> chain;
  const AstNode* cur = &n;
  auto same_band = [&](const AstNode* a, const AstNode* b) {
    return band_of == nullptr ||
           (*band_of)[a->t_index] == (*band_of)[b->t_index];
  };
  while (cur->kind == AstNode::Kind::kLoop && tileable(*cur, q) &&
         same_band(chain.empty() ? cur : chain.front(), cur)) {
    chain.push_back(cur);
    if (cur->body->kind != AstNode::Kind::kLoop) break;
    cur = cur->body.get();
  }
  const AstNode* below =
      chain.empty() ? cur : chain.back()->body.get();
  std::size_t total = chain.size() >= min_depth ? chain.size() : 0;
  if (chain.empty()) {
    if (n.body) total += count_tileable_band_loops(*n.body, q, min_depth, band_of);
  } else {
    total += count_tileable_band_loops(*below, q, min_depth, band_of);
  }
  return total;
}

void remark_parallel(AstNode& n, bool enclosing) {
  switch (n.kind) {
    case AstNode::Kind::kLoop: {
      n.mark_parallel = false;
      bool inner = enclosing;
      if (n.parallel && !inner) {
        n.mark_parallel = true;
        inner = true;
      }
      remark_parallel(*n.body, inner);
      break;
    }
    case AstNode::Kind::kBlock:
      for (const AstPtr& c : n.children) remark_parallel(*c, enclosing);
      break;
    case AstNode::Kind::kStmt:
      break;
  }
}

}  // namespace

namespace {

std::size_t tile_ast_impl(AstNode& root, const TilingOptions& options,
                          const std::vector<std::size_t>* band_of) {
  PF_CHECK_MSG(options.tile_size >= 2, "tile size must be >= 2");
  const std::size_t q = count_t_vars(root);
  const std::size_t extra =
      count_tileable_band_loops(root, q, options.min_band_depth, band_of);
  if (extra == 0) return 0;

  widen(root, q, extra);

  // Full dimensionality of the widened expression space: find it from any
  // widened bound/expr; loops' bound terms always exist.
  std::size_t dims = q + extra;
  {
    const std::function<void(const AstNode&)> find_dims =
        [&](const AstNode& n) {
          if (n.kind == AstNode::Kind::kLoop) {
            if (!n.lower.alternatives.empty() &&
                !n.lower.alternatives[0].empty())
              dims = n.lower.alternatives[0][0].expr.dims();
            find_dims(*n.body);
          } else if (n.kind == AstNode::Kind::kBlock) {
            for (const AstPtr& c : n.children) find_dims(*c);
          }
        };
    find_dims(root);
  }

  Tiler tiler(q, extra, options, band_of);
  tiler.set_dims(dims);

  // The tiler relinks through AstPtr; move the caller's node into a
  // temporary owner, tile, and move the result back.
  AstPtr tmp = std::make_unique<AstNode>(std::move(root));
  tiler.run(tmp);
  root = std::move(*tmp);

  // The estimate `extra` is an upper bound; drop any reserved-but-unused
  // tile dims so every expression space matches the t vars that actually
  // appear.
  narrow(root, q, tiler.tile_vars_used, extra, dims);

  remark_parallel(root, false);
  return tiler.bands_tiled;
}

}  // namespace

std::size_t tile_ast(AstNode& root, const sched::Schedule& schedule,
                     const ddg::DependenceGraph& dg,
                     const TilingOptions& options) {
  // Must-complete, like generate_ast: tiling legality is a checker over
  // the final schedule.
  support::BudgetSuspend budget_suspend;
  const std::vector<std::size_t> band_of =
      sched::permutable_bands(schedule, dg);
  return tile_ast_impl(root, options, &band_of);
}

std::size_t tile_ast_unchecked(AstNode& root, const TilingOptions& options) {
  return tile_ast_impl(root, options, nullptr);
}

}  // namespace pf::codegen
