// Loop AST produced by polyhedra scanning (codegen.h) and consumed by the
// interpreter, the C emitter and the pretty printer.
//
// Space conventions: let q be the number of *linear* schedule levels. All
// affine expressions in the AST live in the space [t_0..t_{q-1}, params],
// where t_k is the loop variable of the k-th linear level. A loop at
// ordinal k only references t_0..t_{k-1} in its bounds; statement guards
// and iterator-recovery expressions may reference every enclosing t.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/reduction.h"
#include "ir/scop.h"
#include "poly/affine.h"

namespace pf::codegen {

/// One OpenMP reduction clause attached to a loop that is sequential only
/// modulo relaxed reduction self-dependences (sched::Schedule::relaxed_deps).
struct ReductionClause {
  ir::ReductionOp op = ir::ReductionOp::kSum;
  std::size_t array_id = 0;

  bool operator==(const ReductionClause& o) const {
    return op == o.op && array_id == o.array_id;
  }
};

/// One bound alternative: value = ceil(expr / denom) for lower bounds,
/// floor(expr / denom) for upper bounds. denom >= 1.
struct BoundTerm {
  poly::AffineExpr expr;
  i64 denom = 1;

  bool operator==(const BoundTerm& o) const {
    return denom == o.denom && expr == o.expr;
  }
};

/// A loop bound. For a single statement: lower = max over terms (upper =
/// min). When statements with different spans are fused, each statement
/// contributes one `alternatives` entry and the loop runs over the union:
/// lower = min over alternatives of (max over terms), upper = max of mins.
struct LoopBound {
  std::vector<std::vector<BoundTerm>> alternatives;

  bool single() const {
    return alternatives.size() == 1 && alternatives[0].size() == 1;
  }
};

class AstNode;
using AstPtr = std::unique_ptr<AstNode>;

class AstNode {
 public:
  enum class Kind { kBlock, kLoop, kStmt };

  explicit AstNode(Kind k) : kind(k) {}

  Kind kind;

  // kBlock ------------------------------------------------------------------
  std::vector<AstPtr> children;

  // kLoop -------------------------------------------------------------------
  std::size_t level = 0;    // global schedule level
  std::size_t t_index = 0;  // ordinal among linear levels (names the t var)
  LoopBound lower, upper;
  /// No dependence is carried by this loop for the statements under it.
  bool parallel = false;
  /// Emitter hint: this is the outermost parallel loop of its nest (gets
  /// the `#pragma omp parallel for`).
  bool mark_parallel = false;
  /// Non-empty iff `parallel` is false but every dependence carried by
  /// this loop is a relaxed reduction self-dependence and no other
  /// statement under the loop touches an accumulator array: the loop may
  /// be parallelized with these clauses (sorted by array then op). The
  /// clause privatizes the accumulator, so the isolation condition is
  /// what keeps stray readers from observing a private partial value.
  std::vector<ReductionClause> reductions;
  AstPtr body;

  // kStmt -------------------------------------------------------------------
  std::size_t stmt = 0;
  /// Original iterator values, one per statement dimension: iterator d is
  /// iter_exprs[d] / iter_denoms[d], executed only when the division is
  /// exact (non-unimodular schedules produce strided images; points where
  /// a division is inexact are skipped).
  std::vector<poly::AffineExpr> iter_exprs;
  IntVector iter_denoms;
  /// Extra conditions (affine >= 0) this statement instance must satisfy
  /// (non-empty only when fused statements have differing spans).
  std::vector<poly::AffineExpr> guards;
};

AstPtr make_block();
AstPtr make_loop(std::size_t level, std::size_t t_index);
AstPtr make_stmt(std::size_t stmt);

/// Render the AST as readable pseudo-C (the form the paper's figures use).
std::string ast_to_string(const AstNode& root, const ir::Scop& scop);

}  // namespace pf::codegen
