// C code emission: turn a loop AST into a self-contained C translation
// unit exporting
//
//   void pf_kernel(double** arrays, const long long* params);
//
// `arrays` holds one flattened row-major buffer per Scop array (in
// declaration order); `params` holds the parameter values (in declaration
// order). Parallel loops get `#pragma omp parallel for` on the outermost
// parallel level of each nest. The output compiles with any C99 compiler;
// this is the source-to-source half of the pipeline (the paper's
// transformed codes, Figures 1/4/5/6), and the JIT runner feeds it to the
// system compiler.
#pragma once

#include <string>

#include "codegen/ast.h"

namespace pf::codegen {

struct CEmitOptions {
  /// Emit `#pragma omp parallel for` on loops marked parallel.
  bool openmp = true;
  /// Name of the exported function.
  std::string function_name = "pf_kernel";
};

std::string emit_c(const AstNode& root, const ir::Scop& scop,
                   const CEmitOptions& options = {});

}  // namespace pf::codegen
