#include "codegen/ast.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "support/strings.h"

namespace pf::codegen {

AstPtr make_block() { return std::make_unique<AstNode>(AstNode::Kind::kBlock); }

AstPtr make_loop(std::size_t level, std::size_t t_index) {
  auto n = std::make_unique<AstNode>(AstNode::Kind::kLoop);
  n->level = level;
  n->t_index = t_index;
  return n;
}

AstPtr make_stmt(std::size_t stmt) {
  auto n = std::make_unique<AstNode>(AstNode::Kind::kStmt);
  n->stmt = stmt;
  return n;
}

namespace {

std::vector<std::string> t_space_names(std::size_t q, const ir::Scop& scop) {
  std::vector<std::string> names;
  for (std::size_t k = 0; k < q; ++k) names.push_back("t" + std::to_string(k));
  for (const std::string& p : scop.params()) names.push_back(p);
  return names;
}

std::string term_str(const BoundTerm& t, bool lower,
                     const std::vector<std::string>& names) {
  if (t.denom == 1) return t.expr.to_string(names);
  return std::string(lower ? "ceild(" : "floord(") + t.expr.to_string(names) +
         ", " + std::to_string(t.denom) + ")";
}

std::string bound_str(const LoopBound& b, bool lower,
                      const std::vector<std::string>& names) {
  std::vector<std::string> alts;
  for (const auto& terms : b.alternatives) {
    std::vector<std::string> parts;
    for (const BoundTerm& t : terms) parts.push_back(term_str(t, lower, names));
    if (parts.size() == 1)
      alts.push_back(parts[0]);
    else
      alts.push_back(std::string(lower ? "max(" : "min(") + join(parts, ", ") +
                     ")");
  }
  if (alts.size() == 1) return alts[0];
  return std::string(lower ? "min(" : "max(") + join(alts, ", ") + ")";
}

void emit(const AstNode& n, const ir::Scop& scop,
          const std::vector<std::string>& names, std::size_t depth,
          std::ostringstream& os) {
  switch (n.kind) {
    case AstNode::Kind::kBlock:
      for (const AstPtr& c : n.children) emit(*c, scop, names, depth, os);
      break;
    case AstNode::Kind::kLoop: {
      const std::string t = "t" + std::to_string(n.t_index);
      if (n.mark_parallel) {
        os << indent(depth) << "#pragma omp parallel for";
        for (const ReductionClause& rc : n.reductions)
          os << " reduction(" << ir::to_string(rc.op) << ":"
             << scop.array(rc.array_id).name << ")";
        os << "\n";
      }
      os << indent(depth) << "for (" << t << " = "
         << bound_str(n.lower, true, names) << "; " << t << " <= "
         << bound_str(n.upper, false, names) << "; " << t << "++) {";
      if (n.parallel && !n.mark_parallel) os << "  /* parallel */";
      os << "\n";
      emit(*n.body, scop, names, depth + 1, os);
      os << indent(depth) << "}\n";
      break;
    }
    case AstNode::Kind::kStmt: {
      const ir::Statement& s = scop.statement(n.stmt);
      std::size_t d = depth;
      if (!n.guards.empty()) {
        std::vector<std::string> conds;
        for (const poly::AffineExpr& g : n.guards)
          conds.push_back(g.to_string(names) + " >= 0");
        os << indent(d) << "if (" << join(conds, " && ") << ") {\n";
        ++d;
      }
      os << indent(d) << s.name() << "(";
      std::vector<std::string> iter_strs;
      for (std::size_t k = 0; k < n.iter_exprs.size(); ++k) {
        const i64 den = k < n.iter_denoms.size() ? n.iter_denoms[k] : 1;
        std::string str = n.iter_exprs[k].to_string(names);
        if (den != 1) str = "(" + str + ")/" + std::to_string(den);
        iter_strs.push_back(std::move(str));
      }
      os << join(iter_strs, ", ") << ");\n";
      if (!n.guards.empty()) os << indent(depth) << "}\n";
      break;
    }
  }
}

}  // namespace

std::string ast_to_string(const AstNode& root, const ir::Scop& scop) {
  // Find q: max t_index + 1 over loops.
  std::size_t q = 0;
  const std::function<void(const AstNode&)> scan = [&](const AstNode& n) {
    if (n.kind == AstNode::Kind::kLoop) {
      q = std::max(q, n.t_index + 1);
      scan(*n.body);
    } else if (n.kind == AstNode::Kind::kBlock) {
      for (const AstPtr& c : n.children) scan(*c);
    }
  };
  scan(root);
  std::ostringstream os;
  emit(root, scop, t_space_names(q, scop), 0, os);
  return os.str();
}

}  // namespace pf::codegen
