#include "codegen/codegen.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/budget.h"
#include "support/metrics.h"

namespace pf::codegen {

namespace {

struct LevelBounds {
  std::vector<BoundTerm> lowers, uppers;
  /// Raw projected constraints involving t_k, in the [q, params] space;
  /// used as per-statement guards when spans differ within a fused loop.
  std::vector<poly::AffineExpr> raw;
};

struct StmtInfo {
  std::vector<LevelBounds> bounds;            // per linear ordinal
  std::vector<poly::AffineExpr> iter_exprs;   // over [q, params] (numerators)
  IntVector iter_denoms;                      // iterator = expr / denom
};

std::string term_key(const BoundTerm& t) {
  std::ostringstream os;
  os << t.denom << "|" << t.expr.const_term();
  for (i64 c : t.expr.coeffs()) os << "," << c;
  return os.str();
}

void canonicalize(std::vector<BoundTerm>* terms) {
  std::sort(terms->begin(), terms->end(),
            [](const BoundTerm& a, const BoundTerm& b) {
              return term_key(a) < term_key(b);
            });
  terms->erase(std::unique(terms->begin(), terms->end()), terms->end());
}

class Generator {
 public:
  Generator(const ir::Scop& scop, const sched::Schedule& sch,
            const CodegenOptions& options)
      : scop_(scop), sch_(sch), options_(options) {
    for (std::size_t l = 0; l < sch_.num_levels(); ++l)
      if (sch_.level_linear[l]) {
        ordinal_of_level_[l] = linear_levels_.size();
        linear_levels_.push_back(l);
      }
    q_ = linear_levels_.size();
    p_ = scop_.num_params();
    for (std::size_t s = 0; s < scop_.num_statements(); ++s)
      infos_.push_back(analyze_statement(s));
  }

  AstPtr run() {
    std::vector<std::size_t> stmts(scop_.num_statements());
    for (std::size_t s = 0; s < stmts.size(); ++s) stmts[s] = s;
    guards_.assign(stmts.size(), {});
    AstPtr root = gen(0, stmts);
    bool dummy = false;
    mark_parallel(*root, &dummy);
    return root;
  }

 private:
  // --- per-statement analysis ----------------------------------------------

  StmtInfo analyze_statement(std::size_t s) {
    const ir::Statement& st = scop_.statement(s);
    const std::size_t m = st.dim();
    const std::size_t total = q_ + m + p_;

    // Transformed domain over [t (q), iters (m), params (p)].
    poly::IntegerSet full(total);
    {
      std::vector<std::size_t> map(m + p_);
      for (std::size_t k = 0; k < m; ++k) map[k] = q_ + k;
      for (std::size_t j = 0; j < p_; ++j) map[m + j] = q_ + m + j;
      for (const poly::Constraint& c : st.domain().constraints())
        full.add_constraint(
            poly::Constraint{c.expr.remap(total, map), c.is_equality});
      for (const poly::Constraint& c : scop_.context().constraints()) {
        std::vector<std::size_t> pmap(p_);
        for (std::size_t j = 0; j < p_; ++j) pmap[j] = q_ + m + j;
        full.add_constraint(
            poly::Constraint{c.expr.remap(total, pmap), c.is_equality});
      }
      for (std::size_t k = 0; k < q_; ++k) {
        const poly::AffineExpr& row = sch_.rows[s][linear_levels_[k]];
        poly::AffineExpr eq = poly::AffineExpr::var(total, k) -
                              row.remap(total, map);
        full.add_constraint(poly::Constraint::eq0(std::move(eq)));
      }
    }

    // Project out the original iterators -> [t (q), params].
    std::vector<bool> remove(total, false);
    for (std::size_t k = 0; k < m; ++k) remove[q_ + k] = true;
    poly::IntegerSet proj = full.eliminate_dims(remove);
    PF_CHECK_MSG(!proj.trivially_empty(),
                 "transformed domain of " << st.name() << " is empty");
    if (options_.remove_redundant_bounds) proj.remove_redundant();

    StmtInfo info;
    info.bounds.resize(q_);
    // Bounds per ordinal: eliminate deeper t dims, keep [t_0..t_k, params].
    for (std::size_t k = 0; k < q_; ++k) {
      std::vector<bool> rm(q_ + p_, false);
      for (std::size_t d = k + 1; d < q_; ++d) rm[d] = true;
      poly::IntegerSet elim = proj.eliminate_dims(rm);
      if (options_.remove_redundant_bounds) elim.remove_redundant();
      // Re-embed into the [q, params] space.
      for (const poly::Constraint& c : elim.constraints()) {
        const poly::AffineExpr e = c.expr.insert_dims(k + 1, q_ - 1 - k);
        const i64 a = e.coeff(k);
        if (a == 0) continue;
        info.bounds[k].raw.push_back(e);
        if (c.is_equality) info.bounds[k].raw.push_back(-e);
        // a*t_k + rest >= 0.
        poly::AffineExpr rest = e;
        rest.set_coeff(k, 0);
        if (a > 0 || c.is_equality) {
          // t_k >= ceil(-rest / a) with positive denom.
          const i64 d = a > 0 ? a : -a;
          info.bounds[k].lowers.push_back(
              BoundTerm{a > 0 ? -rest : rest, d});
        }
        if (a < 0 || c.is_equality) {
          const i64 d = a < 0 ? -a : a;
          info.bounds[k].uppers.push_back(
              BoundTerm{a < 0 ? rest : -rest, d});
        }
      }
      canonicalize(&info.bounds[k].lowers);
      canonicalize(&info.bounds[k].uppers);
      PF_CHECK_MSG(!info.bounds[k].lowers.empty() &&
                       !info.bounds[k].uppers.empty(),
                   "loop t" << k << " of " << st.name()
                            << " has no finite bounds");
    }

    // Iterator recovery: invert the linear parts of the schedule rows.
    if (m > 0) {
      RatMatrix a(0, m);
      std::vector<std::size_t> sel;  // which ordinals the rows came from
      for (std::size_t k = 0; k < q_ && a.rows() < m; ++k) {
        const poly::AffineExpr& row = sch_.rows[s][linear_levels_[k]];
        RatVector lin(m);
        bool nonzero = false;
        for (std::size_t d = 0; d < m; ++d) {
          lin[d] = Rational(row.coeff(d));
          nonzero = nonzero || row.coeff(d) != 0;
        }
        if (!nonzero) continue;
        a.append_row(lin);
        if (rank(a) < a.rows()) {
          // Dependent row; drop it again.
          RatMatrix b(0, m);
          for (std::size_t r = 0; r + 1 < a.rows(); ++r)
            b.append_row(a.row(r));
          a = std::move(b);
          continue;
        }
        sel.push_back(k);
      }
      PF_CHECK_MSG(a.rows() == m, "schedule of " << st.name()
                                                 << " is rank-deficient");
      const auto inv = invert(a);
      PF_CHECK(inv.has_value());
      for (std::size_t d = 0; d < m; ++d) {
        // Common denominator of row d: iterator d = numerator / denom,
        // valid only at exactly divisible points (non-unimodular
        // schedules scan a strided superset; inexact points are skipped
        // at execution time).
        i64 denom = 1;
        for (std::size_t r = 0; r < m; ++r)
          denom = lcm(denom, (*inv)(d, r).den());
        poly::AffineExpr e(q_ + p_);
        for (std::size_t r = 0; r < m; ++r) {
          const Rational f = (*inv)(d, r) * Rational(denom);
          PF_CHECK(f.is_integer());
          if (f.is_zero()) continue;
          const poly::AffineExpr& row = sch_.rows[s][linear_levels_[sel[r]]];
          // numerator += f * (t_{sel[r]} - const(row) - params(row)).
          poly::AffineExpr term = poly::AffineExpr::var(q_ + p_, sel[r]);
          term.set_const_term(checked_neg(row.const_term()));
          for (std::size_t j = 0; j < p_; ++j)
            term.set_coeff(q_ + j, checked_neg(row.coeff(m + j)));
          e += term * f.as_integer();
        }
        info.iter_exprs.push_back(std::move(e));
        info.iter_denoms.push_back(denom);
      }
    }
    return info;
  }

  // --- recursion -------------------------------------------------------------

  AstPtr gen(std::size_t level, const std::vector<std::size_t>& stmts) {
    PF_CHECK(!stmts.empty());
    if (level == sch_.num_levels()) {
      AstPtr block = make_block();
      for (const std::size_t s : stmts) {
        AstPtr node = make_stmt(s);
        node->iter_exprs = infos_[s].iter_exprs;
        node->iter_denoms = infos_[s].iter_denoms;
        node->guards = guards_[s];
        block->children.push_back(std::move(node));
      }
      if (block->children.size() == 1)
        return std::move(block->children.front());
      return block;
    }

    if (!sch_.level_linear[level]) {
      // Scalar level: sequence by value.
      std::map<i64, std::vector<std::size_t>> groups;
      for (const std::size_t s : stmts)
        groups[sch_.rows[s][level].const_term()].push_back(s);
      if (groups.size() == 1) return gen(level + 1, stmts);
      AstPtr block = make_block();
      for (auto& [value, group] : groups)
        block->children.push_back(gen(level + 1, group));
      return block;
    }

    // Linear level: one loop spanning the union of statement spans.
    const std::size_t k = ordinal_of_level_.at(level);
    AstPtr loop = make_loop(level, k);
    const LevelBounds& first = infos_[stmts[0]].bounds[k];
    bool identical = true;
    for (const std::size_t s : stmts) {
      const LevelBounds& b = infos_[s].bounds[k];
      if (!(b.lowers == first.lowers && b.uppers == first.uppers)) {
        identical = false;
        break;
      }
    }
    if (identical) {
      loop->lower.alternatives.push_back(first.lowers);
      loop->upper.alternatives.push_back(first.uppers);
    } else {
      for (const std::size_t s : stmts) {
        const LevelBounds& b = infos_[s].bounds[k];
        loop->lower.alternatives.push_back(b.lowers);
        loop->upper.alternatives.push_back(b.uppers);
        for (const poly::AffineExpr& g : b.raw) guards_[s].push_back(g);
      }
      dedupe_alternatives(&loop->lower);
      dedupe_alternatives(&loop->upper);
    }
    loop->parallel = sch_.is_parallel_for(stmts, level);
    if (!loop->parallel) attach_reductions(loop.get(), stmts, level);
    loop->body = gen(level + 1, stmts);
    return loop;
  }

  // Upgrade a sequential loop to a reduction-parallel loop when every
  // dependence it carries within `stmts` is a relaxed reduction
  // self-dependence. The OpenMP clause privatizes the accumulator array,
  // so additionally no statement other than the matched accumulators may
  // touch that array under the loop (a stray reader would observe a
  // private partial value), and two accumulators into the same array must
  // agree on the operator. When any condition fails the loop simply stays
  // sequential -- correct either way.
  void attach_reductions(AstNode* loop, const std::vector<std::size_t>& stmts,
                         std::size_t level) {
    if (sch_.relaxed_deps.empty()) return;
    std::vector<bool> in(scop_.num_statements(), false);
    for (const std::size_t s : stmts) in[s] = true;
    std::vector<ReductionClause> clauses;
    // array_id -> statements allowed to touch it (the accumulators).
    std::map<std::size_t, std::vector<std::size_t>> owners;
    for (const std::size_t dep : sch_.carried_at[level]) {
      const auto& [src, dst] = sch_.dep_endpoints[dep];
      if (!in[src] || !in[dst]) continue;
      const auto it = std::lower_bound(
          sch_.relaxed_deps.begin(), sch_.relaxed_deps.end(), dep,
          [](const ir::ReductionDep& rd, std::size_t id) {
            return rd.dep_id < id;
          });
      if (it == sch_.relaxed_deps.end() || it->dep_id != dep)
        return;  // a genuinely carried dependence: the loop is sequential
      const ReductionClause clause{it->op, it->array_id};
      bool fresh = true;
      for (const ReductionClause& c : clauses) {
        if (c.array_id != clause.array_id) continue;
        if (c.op != clause.op) return;  // operator conflict on one array
        fresh = false;
      }
      if (fresh) clauses.push_back(clause);
      owners[it->array_id].push_back(it->stmt);
    }
    if (clauses.empty()) return;
    for (const auto& [array_id, accs] : owners)
      for (const std::size_t s : stmts) {
        if (std::find(accs.begin(), accs.end(), s) != accs.end()) continue;
        for (const ir::Access& a : scop_.statement(s).accesses())
          if (a.array_id == array_id) return;  // accumulator not isolated
      }
    std::sort(clauses.begin(), clauses.end(),
              [](const ReductionClause& a, const ReductionClause& b) {
                return a.array_id != b.array_id ? a.array_id < b.array_id
                                                : a.op < b.op;
              });
    support::count(support::Counter::kReductionClauses,
                   static_cast<i64>(clauses.size()));
    loop->reductions = std::move(clauses);
  }

  static void dedupe_alternatives(LoopBound* b) {
    std::vector<std::vector<BoundTerm>> out;
    for (auto& alt : b->alternatives) {
      bool seen = false;
      for (const auto& o : out)
        if (o == alt) {
          seen = true;
          break;
        }
      if (!seen) out.push_back(std::move(alt));
    }
    b->alternatives = std::move(out);
  }

  static void mark_parallel(AstNode& n, bool* enclosing) {
    switch (n.kind) {
      case AstNode::Kind::kLoop: {
        bool inner = *enclosing;
        if ((n.parallel || !n.reductions.empty()) && !inner) {
          n.mark_parallel = true;
          inner = true;
        }
        mark_parallel(*n.body, &inner);
        break;
      }
      case AstNode::Kind::kBlock:
        for (const AstPtr& c : n.children) {
          bool inner = *enclosing;
          mark_parallel(*c, &inner);
        }
        break;
      case AstNode::Kind::kStmt:
        break;
    }
  }

  const ir::Scop& scop_;
  const sched::Schedule& sch_;
  const CodegenOptions& options_;
  std::vector<std::size_t> linear_levels_;
  std::map<std::size_t, std::size_t> ordinal_of_level_;
  std::size_t q_ = 0, p_ = 0;
  std::vector<StmtInfo> infos_;
  std::vector<std::vector<poly::AffineExpr>> guards_;
};

}  // namespace

AstPtr generate_ast(const ir::Scop& scop, const sched::Schedule& schedule,
                    const CodegenOptions& options) {
  PF_CHECK_MSG(schedule.scop == &scop, "schedule built for another scop");
  PF_CHECK(schedule.num_statements() == scop.num_statements());
  // Codegen must always complete: there is no sound over-approximation
  // for loop bounds, so domain scanning runs with the budget suspended.
  support::BudgetSuspend budget_suspend;
  return Generator(scop, schedule, options).run();
}

}  // namespace pf::codegen
