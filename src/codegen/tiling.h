// Loop tiling (blocking) on the generated AST.
//
// The schedules produced by the Pluto-style scheduler consist of bands of
// fully permutable linear levels (every hyperplane has non-negative
// dependence components by construction), which is exactly the legality
// condition for rectangular tiling. tile_ast() strip-mines each maximal
// chain of perfectly nested loops into (tile loops..., point loops...):
//
//   for (t0 = lb0 .. ub0)                for (T0 = floord(lb0,B) ..)
//     for (t1 = lb1 .. ub1)        =>      for (T1 = ...)
//       body                                 for (t0 = max(lb0, B*T0) ..
//                                                      min(ub0, B*T0+B-1))
//                                              for (t1 = ...) body
//
// Bounds referencing enclosing point iterators (triangular spaces) are
// handled by over-approximating the tile loop's span with the loop's
// parametric extremes and keeping the exact bounds on the point loops --
// empty tiles simply run zero point iterations.
//
// Tiling composes with fusion: it is what turns the fused nests' reuse
// into cache-sized working sets (Pluto's headline combination; the paper
// positions its fusion model as the step that decides *what* the tiles
// will contain).
#pragma once

#include "codegen/ast.h"
#include "ddg/dependences.h"
#include "sched/schedule.h"

namespace pf::codegen {

struct TilingOptions {
  /// Tile size per loop (uniform).
  i64 tile_size = 32;
  /// Only tile chains at least this deep (tiling a single loop rarely
  /// pays; 2-d+ bands do).
  std::size_t min_band_depth = 2;
};

/// Tile the AST in place, splitting loop chains at the schedule's
/// permutable-band boundaries (sched::permutable_bands) so only legally
/// tileable bands are blocked. Returns the number of bands tiled.
std::size_t tile_ast(AstNode& root, const sched::Schedule& schedule,
                     const ddg::DependenceGraph& dg,
                     const TilingOptions& options = {});

/// Tile treating every perfect rectangular chain as one permutable band.
/// Only safe when the caller knows the schedule is fully permutable
/// (single-statement rectangular kernels, schedules with all-forward
/// dependences); prefer tile_ast().
std::size_t tile_ast_unchecked(AstNode& root, const TilingOptions& options = {});

}  // namespace pf::codegen
