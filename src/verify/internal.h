// Shared helpers of the verifier's check passes (not part of the public
// API). Everything here works from the schedule matrices and dependence
// polyhedra alone -- the point of the subsystem is independence from the
// scheduler's own bookkeeping (satisfied_at / carried_at are never read).
#pragma once

#include <string>

#include "ddg/dependences.h"
#include "sched/schedule.h"
#include "verify/verify.h"

namespace pf::verify::detail {

/// Schedule difference of dependence `d` at level `l`, lifted into the
/// dependence space [src iters, dst iters, params]:
///   delta_l = phi_{dst,l}(t) - phi_{src,l}(s).
inline poly::AffineExpr level_diff(const ddg::Dependence& d,
                                   const sched::Schedule& sch,
                                   std::size_t l) {
  return d.lift_dst(sch.rows[d.dst][l]) - d.lift_src(sch.rows[d.src][l]);
}

/// Structural sanity of (dg, sch) as a verification subject: every
/// statement has one row per level with the statement-space dimension,
/// and dependence endpoints are in range. Returns an empty string when
/// usable, else a description (reported as a kMalformed finding -- the
/// verifier must diagnose bad inputs, not crash on them).
std::string structure_problem(const ddg::DependenceGraph& dg,
                              const sched::Schedule& sch);

/// Append `f`, skipping exact (kind, dep_id, src, dst, level) duplicates
/// -- tiled ASTs repeat a schedule level on the tile and point loop, and
/// one bad dependence should yield one finding.
void add_finding(Report* report, Finding f);

/// Independent re-proof of one relaxed-reduction claim: true iff the
/// claimed dependence is a real self-dependence of `rd.stmt` on its
/// accumulator array `rd.array_id` and the statement body is a genuine
/// `acc = acc <op> ...` commutative accumulation for `rd.op`. On failure
/// `*why` (if non-null) gets a one-line reason. Implemented in
/// verify/reductions.cpp with the verifier's own expression matcher.
bool reduction_confirmed(const ddg::DependenceGraph& dg,
                         const ir::ReductionDep& rd, std::string* why);

}  // namespace pf::verify::detail
