// Independent schedule-legality verifier and static OpenMP race detector.
//
// The optimizer enforces legality *constructively* (the Pluto scheduler
// only emits Farkas-feasible hyperplanes) and marks loops parallel from
// its own carried-dependence bookkeeping. This subsystem re-proves both
// claims from first principles, without reusing the scheduler's code
// paths: every check builds a polyhedron directly from the final schedule
// matrices and the dependence polyhedra, and decides it with
// IntegerSet::is_empty.
//
// Three checks:
//
//  * Legality (check_legality): for every real dependence D with schedule
//    difference delta_l(x) = phi_dst,l - phi_src,l over the dependence
//    space, the "violated at level l" polyhedron
//        V_l = D  /\  { delta_k == 0 : k < l }  /\  { delta_l <= -1 }
//    must be empty at every level, and the residual
//        R = D  /\  { delta_k == 0 : all levels k }
//    must be empty too (every dependence instance pair is strongly
//    separated somewhere) -- together: lexicographic positivity of the
//    schedule difference over the whole dependence polyhedron.
//
//  * Static race detection (check_races): walks the *generated AST* (not
//    the schedule) and, for every loop the codegen marked parallel,
//    proves that no RAW/WAR/WAW dependence between statements under that
//    loop is carried by it:
//        C = D  /\  { delta_k == 0 : k < level }  /\  { |delta_level| >= 1 }
//    must be empty (split into the >= 1 and <= -1 halves). This is
//    exactly the condition under which `#pragma omp parallel for` is
//    race-free. Works on tiled ASTs too (tile loops inherit the point
//    loop's schedule level and parallel claim).
//
//  * Fusion partition order (check_partition): recomputes the outermost
//    fusion partition of every statement from the scalar schedule rows
//    and the SCCs of the statement-level dependence graph (Tarjan here;
//    the DDG itself uses Kosaraju -- an independent implementation), and
//    checks the Algorithms 1-2 postcondition: no SCC is split across
//    partitions and the partition sequence is a topological order of the
//    SCC condensation.
//
// Findings are structured (kind, dependence kind, statement pair, level)
// so tests can assert exact diagnostics; they are also emitted on the
// decision-remark channel (category "verify") and counted in the
// pipeline-wide stats (verify_checked_deps / verify_violations /
// verify_race_checks). Decisions are conservative: a capped ILP search
// that cannot prove emptiness reports a (possible) violation.
#pragma once

#include <string>
#include <vector>

#include "codegen/ast.h"
#include "ddg/dependences.h"
#include "sched/schedule.h"

namespace pf::verify {

enum class CheckKind {
  kLegality,     // dependence lexicographically violated at a level
  kUnsatisfied,  // dependence instances never strongly separated
  kRace,         // parallel-marked loop carries a dependence
  kPartition,    // fusion partition breaks the SCC condensation order
  kReduction,    // relaxed dependence is not a proven commutative
                 // accumulation, or a reduction clause is unsound
  kMalformed,    // schedule/AST structurally unusable for verification
};

const char* to_string(CheckKind k);

/// One verification failure, precise enough to act on: which dependence
/// (kind + endpoints), at which schedule level, and why.
struct Finding {
  CheckKind kind = CheckKind::kLegality;
  ddg::DepKind dep_kind = ddg::DepKind::kFlow;
  std::size_t dep_id = SIZE_MAX;  // index into DependenceGraph::deps()
  std::size_t src = SIZE_MAX;     // statement indices
  std::size_t dst = SIZE_MAX;
  std::size_t level = SIZE_MAX;   // schedule level (SIZE_MAX = n/a)
  std::string detail;

  /// "legality: flow dependence S1 -> S2 (dep #3) violated at level 1".
  std::string to_string(const ir::Scop* scop = nullptr) const;
};

struct Report {
  std::vector<Finding> findings;
  std::size_t checked_deps = 0;      // dependences legality-checked
  std::size_t race_checks = 0;       // (parallel loop, dependence) pairs
  std::size_t partition_checks = 0;  // SCCs + condensation edges checked
  std::size_t reduction_checks = 0;  // relaxed deps independently re-proven
  std::size_t reduction_waivers = 0; // legality/race checks waived because
                                     // the relaxed dep was re-proven

  bool ok() const { return findings.empty(); }
  std::size_t num_violations() const { return findings.size(); }
  void merge(Report other);
  /// Multi-line human-readable report (one line per finding + summary).
  std::string to_string(const ir::Scop* scop = nullptr) const;
  /// The one-line summary ("checked 12 dependence(s), ...: ok").
  std::string summary() const;
};

struct Options {
  lp::IlpOptions ilp;
  bool legality = true;
  bool races = true;
  bool partition = true;
  bool reductions = true;
};

/// Check (a): lexicographic positivity of every real dependence under the
/// schedule. Needs only sch.rows / sch.level_linear (no scheduler
/// bookkeeping).
Report check_legality(const ddg::DependenceGraph& dg,
                      const sched::Schedule& sch, const Options& options = {});

/// Check (b): every AST loop claiming `parallel` (or `mark_parallel`)
/// carries no real dependence between the statements under it.
Report check_races(const ddg::DependenceGraph& dg, const sched::Schedule& sch,
                   const codegen::AstNode& ast, const Options& options = {});

/// Check (c): the outermost fusion partition is a valid topological order
/// of the DDG's SCC condensation and never splits an SCC.
Report check_partition(const ddg::DependenceGraph& dg,
                       const sched::Schedule& sch,
                       const Options& options = {});

/// Check (d): every relaxed reduction self-dependence recorded in
/// sch.relaxed_deps is re-proven to be a genuine commutative accumulation
/// with the verifier's own matcher (verify/reductions.cpp -- deliberately
/// NOT analysis::match_reduction): the dependence must be a real
/// self-dependence of the claimed statement on its accumulator array, and
/// the statement body must be a chain of the claimed associative operator
/// whose only accumulator reference is the self-read of the written cell.
/// A relaxed dependence that fails the re-proof yields a kReduction
/// finding, and check_legality / check_races then judge it with no
/// waiver, so `--verify=strict` rejects bogus relaxations twice over.
Report check_reductions(const ddg::DependenceGraph& dg,
                        const sched::Schedule& sch,
                        const Options& options = {});

/// Run every enabled check. `ast` may be null (race check skipped --
/// e.g. when only the schedule exists). Emits one remark per finding and
/// a summary remark (category "verify") and feeds the verify_* stats
/// counters.
Report run_all(const ir::Scop& scop, const ddg::DependenceGraph& dg,
               const sched::Schedule& sch, const codegen::AstNode* ast,
               const Options& options = {});

}  // namespace pf::verify
