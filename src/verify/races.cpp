// Check (b): static race detection over the emitted OpenMP annotations.
//
// Walks the generated AST -- the artifact the emitter prints pragmas
// from -- rather than the schedule's own parallelism bookkeeping. For a
// loop at schedule level L claiming `parallel`, two statement instances
// race iff they are distinct iterations of that loop within one iteration
// of every enclosing sequential level and a dependence connects them:
//
//   C = D  /\  { delta_k == 0 : k < L }  /\  { delta_L != 0 }
//
// IntegerSets are conjunctions, so the disequality splits into the
// delta_L >= 1 and delta_L <= -1 halves; a point in either is a concrete
// pair of iterations `#pragma omp parallel for` would run on different
// threads in an order the dependence forbids. The equalities run over
// *all* levels < L (scalar ones included): statements under one loop node
// share their scalar prefix, so those constraints are vacuous on
// well-formed ASTs, but on a corrupted AST they keep the check exact
// instead of crashing.
//
// Both the inner `parallel` claim and the emitter-facing `mark_parallel`
// hint are checked -- a loop wrongly claiming either is reported with the
// dependence kind, endpoints and level. Tiled ASTs verify unchanged:
// tile loops inherit the point loop's level and claim, and duplicate
// findings collapse in add_finding.
#include <vector>

#include "support/trace.h"
#include "verify/internal.h"

namespace pf::verify {

namespace {

void collect_stmts(const codegen::AstNode& n, std::vector<bool>* under) {
  switch (n.kind) {
    case codegen::AstNode::Kind::kStmt:
      if (n.stmt < under->size()) (*under)[n.stmt] = true;
      break;
    case codegen::AstNode::Kind::kLoop:
      collect_stmts(*n.body, under);
      break;
    case codegen::AstNode::Kind::kBlock:
      for (const codegen::AstPtr& c : n.children) collect_stmts(*c, under);
      break;
  }
}

class RaceWalker {
 public:
  RaceWalker(const ddg::DependenceGraph& dg, const sched::Schedule& sch,
             const Options& options, Report* report)
      : dg_(dg), sch_(sch), options_(options), report_(report) {}

  void walk(const codegen::AstNode& n) {
    switch (n.kind) {
      case codegen::AstNode::Kind::kLoop:
        if (n.parallel || n.mark_parallel) check_loop(n);
        walk(*n.body);
        break;
      case codegen::AstNode::Kind::kBlock:
        for (const codegen::AstPtr& c : n.children) walk(*c);
        break;
      case codegen::AstNode::Kind::kStmt:
        break;
    }
  }

 private:
  void check_loop(const codegen::AstNode& loop) {
    const std::size_t level = loop.level;
    if (level >= sch_.num_levels() || !sch_.level_linear[level]) {
      Finding f;
      f.kind = CheckKind::kMalformed;
      f.level = level;
      f.detail = "AST loop claims parallel at level " +
                 std::to_string(level) +
                 ", which is not a linear schedule level";
      detail::add_finding(report_, std::move(f));
      return;
    }
    std::vector<bool> under(sch_.num_statements(), false);
    collect_stmts(loop, &under);

    for (const ddg::Dependence& d : dg_.deps()) {
      if (!under[d.src] || !under[d.dst]) continue;
      ++report_->race_checks;
      // Same iteration of every enclosing level...
      poly::IntegerSet tied = d.poly;
      for (std::size_t k = 0; k < level && !tied.trivially_empty(); ++k)
        tied.add_constraint(
            poly::Constraint::eq0(detail::level_diff(d, sch_, k)));
      if (tied.trivially_empty()) continue;
      // ... but different iterations of this one.
      const poly::AffineExpr delta = detail::level_diff(d, sch_, level);
      poly::IntegerSet forward = tied;
      forward.add_constraint(poly::Constraint::ge0(delta.plus_const(-1)));
      poly::IntegerSet backward = std::move(tied);
      backward.add_constraint(poly::Constraint::ge0((-delta).plus_const(-1)));
      const bool fwd = !forward.is_empty(options_.ilp);
      const bool bwd = !backward.is_empty(options_.ilp);
      if (!fwd && !bwd) continue;
      Finding f;
      f.kind = CheckKind::kRace;
      f.dep_kind = d.kind;
      f.dep_id = d.id;
      f.src = d.src;
      f.dst = d.dst;
      f.level = level;
      f.detail = std::string("loop iterations ") +
                 (fwd && bwd ? "in both directions"
                             : (fwd ? "ahead of the source"
                                    : "behind the source")) +
                 " touch the same location";
      detail::add_finding(report_, std::move(f));
    }
  }

  const ddg::DependenceGraph& dg_;
  const sched::Schedule& sch_;
  const Options& options_;
  Report* report_;
};

}  // namespace

Report check_races(const ddg::DependenceGraph& dg, const sched::Schedule& sch,
                   const codegen::AstNode& ast, const Options& options) {
  support::TraceSpan span("verify", "races");
  Report report;
  const std::string problem = detail::structure_problem(dg, sch);
  if (!problem.empty()) {
    Finding f;
    f.kind = CheckKind::kMalformed;
    f.detail = problem;
    detail::add_finding(&report, std::move(f));
    return report;
  }
  RaceWalker walker(dg, sch, options, &report);
  walker.walk(ast);
  if (span.active()) {
    span.attr("race_checks", static_cast<i64>(report.race_checks));
    span.attr("violations", static_cast<i64>(report.findings.size()));
  }
  return report;
}

}  // namespace pf::verify
