// Check (b): static race detection over the emitted OpenMP annotations.
//
// Walks the generated AST -- the artifact the emitter prints pragmas
// from -- rather than the schedule's own parallelism bookkeeping. For a
// loop at schedule level L claiming `parallel`, two statement instances
// race iff they are distinct iterations of that loop within one iteration
// of every enclosing sequential level and a dependence connects them:
//
//   C = D  /\  { delta_k == 0 : k < L }  /\  { delta_L != 0 }
//
// IntegerSets are conjunctions, so the disequality splits into the
// delta_L >= 1 and delta_L <= -1 halves; a point in either is a concrete
// pair of iterations `#pragma omp parallel for` would run on different
// threads in an order the dependence forbids. The equalities run over
// *all* levels < L (scalar ones included): statements under one loop node
// share their scalar prefix, so those constraints are vacuous on
// well-formed ASTs, but on a corrupted AST they keep the check exact
// instead of crashing.
//
// Both the inner `parallel` claim and the emitter-facing `mark_parallel`
// hint are checked -- a loop wrongly claiming either is reported with the
// dependence kind, endpoints and level. Tiled ASTs verify unchanged:
// tile loops inherit the point loop's level and claim, and duplicate
// findings collapse in add_finding.
//
// Reduction-parallel loops (AstNode::reductions non-empty): a carried
// dependence is downgraded -- counted as a waiver, not a race -- iff it
// is a relaxed reduction self-dependence that the verifier's own matcher
// re-proves (detail::reduction_confirmed) AND the loop carries a clause
// with the matching (operator, array). Everything else still diagnoses:
// a non-commutative read-modify-write is never relaxed, so its carried
// self-dependence surfaces as a kRace finding here. Each clause is also
// checked for soundness of the privatization it implies: it must be
// backed by a confirmed accumulation under the loop, and no other
// statement under the loop may touch the privatized array (a stray
// reader would observe a thread-private partial value).
#include <algorithm>
#include <vector>

#include "support/trace.h"
#include "verify/internal.h"

namespace pf::verify {

namespace {

void collect_stmts(const codegen::AstNode& n, std::vector<bool>* under) {
  switch (n.kind) {
    case codegen::AstNode::Kind::kStmt:
      if (n.stmt < under->size()) (*under)[n.stmt] = true;
      break;
    case codegen::AstNode::Kind::kLoop:
      collect_stmts(*n.body, under);
      break;
    case codegen::AstNode::Kind::kBlock:
      for (const codegen::AstPtr& c : n.children) collect_stmts(*c, under);
      break;
  }
}

class RaceWalker {
 public:
  RaceWalker(const ddg::DependenceGraph& dg, const sched::Schedule& sch,
             const Options& options, Report* report)
      : dg_(dg), sch_(sch), options_(options), report_(report) {}

  void walk(const codegen::AstNode& n) {
    switch (n.kind) {
      case codegen::AstNode::Kind::kLoop:
        if (n.parallel || n.mark_parallel) check_loop(n);
        walk(*n.body);
        break;
      case codegen::AstNode::Kind::kBlock:
        for (const codegen::AstPtr& c : n.children) walk(*c);
        break;
      case codegen::AstNode::Kind::kStmt:
        break;
    }
  }

 private:
  void check_loop(const codegen::AstNode& loop) {
    const std::size_t level = loop.level;
    if (level >= sch_.num_levels() || !sch_.level_linear[level]) {
      Finding f;
      f.kind = CheckKind::kMalformed;
      f.level = level;
      f.detail = "AST loop claims parallel at level " +
                 std::to_string(level) +
                 ", which is not a linear schedule level";
      detail::add_finding(report_, std::move(f));
      return;
    }
    std::vector<bool> under(sch_.num_statements(), false);
    collect_stmts(loop, &under);
    if (!loop.reductions.empty()) check_clauses(loop, under);

    for (std::size_t dep_index = 0; dep_index < dg_.deps().size();
         ++dep_index) {
      const ddg::Dependence& d = dg_.deps()[dep_index];
      if (!under[d.src] || !under[d.dst]) continue;
      ++report_->race_checks;
      // Same iteration of every enclosing level...
      poly::IntegerSet tied = d.poly;
      for (std::size_t k = 0; k < level && !tied.trivially_empty(); ++k)
        tied.add_constraint(
            poly::Constraint::eq0(detail::level_diff(d, sch_, k)));
      if (tied.trivially_empty()) continue;
      // ... but different iterations of this one.
      const poly::AffineExpr delta = detail::level_diff(d, sch_, level);
      poly::IntegerSet forward = tied;
      forward.add_constraint(poly::Constraint::ge0(delta.plus_const(-1)));
      poly::IntegerSet backward = std::move(tied);
      backward.add_constraint(poly::Constraint::ge0((-delta).plus_const(-1)));
      const bool fwd = !forward.is_empty(options_.ilp);
      const bool bwd = !backward.is_empty(options_.ilp);
      if (!fwd && !bwd) continue;
      if (clause_covered(loop, dep_index)) {
        ++report_->reduction_waivers;
        continue;
      }
      Finding f;
      f.kind = CheckKind::kRace;
      f.dep_kind = d.kind;
      f.dep_id = d.id;
      f.src = d.src;
      f.dst = d.dst;
      f.level = level;
      f.detail = std::string("loop iterations ") +
                 (fwd && bwd ? "in both directions"
                             : (fwd ? "ahead of the source"
                                    : "behind the source")) +
                 " touch the same location";
      detail::add_finding(report_, std::move(f));
    }
  }

  // Is the carried dependence `d` excused by a clause on `loop`? Only
  // when it is a relaxed reduction self-dependence, the verifier's own
  // matcher confirms the accumulation, and the clause agrees on
  // (operator, array).
  bool clause_covered(const codegen::AstNode& loop, std::size_t dep_index) {
    const auto it = std::lower_bound(
        sch_.relaxed_deps.begin(), sch_.relaxed_deps.end(), dep_index,
        [](const ir::ReductionDep& rd, std::size_t id) {
          return rd.dep_id < id;
        });
    if (it == sch_.relaxed_deps.end() || it->dep_id != dep_index) return false;
    for (const codegen::ReductionClause& rc : loop.reductions)
      if (rc.array_id == it->array_id && rc.op == it->op)
        return detail::reduction_confirmed(dg_, *it, nullptr);
    return false;
  }

  // Soundness of the privatization each clause implies: a confirmed
  // accumulation into the clause array must exist under the loop, and no
  // other statement under the loop may touch that array.
  void check_clauses(const codegen::AstNode& loop,
                     const std::vector<bool>& under) {
    const ir::Scop& scop = dg_.scop();
    for (const codegen::ReductionClause& rc : loop.reductions) {
      ++report_->reduction_checks;
      std::vector<bool> owner(sch_.num_statements(), false);
      bool any_owner = false;
      for (const ir::ReductionDep& rd : sch_.relaxed_deps) {
        if (rd.array_id != rc.array_id || rd.op != rc.op) continue;
        if (rd.stmt >= owner.size() || !under[rd.stmt]) continue;
        if (!detail::reduction_confirmed(dg_, rd, nullptr)) continue;
        owner[rd.stmt] = true;
        any_owner = true;
      }
      if (!any_owner) {
        Finding f;
        f.kind = CheckKind::kReduction;
        f.level = loop.level;
        f.detail = "reduction clause on array '" +
                   scop.array(rc.array_id).name +
                   "' is backed by no confirmed accumulation under the loop";
        detail::add_finding(report_, std::move(f));
        continue;
      }
      for (std::size_t s = 0; s < sch_.num_statements(); ++s) {
        if (!under[s] || owner[s]) continue;
        for (const ir::Access& a : scop.statement(s).accesses()) {
          if (a.array_id != rc.array_id) continue;
          Finding f;
          f.kind = CheckKind::kReduction;
          f.src = f.dst = s;
          f.level = loop.level;
          f.detail = "statement touches reduction-privatized array '" +
                     scop.array(rc.array_id).name + "'";
          detail::add_finding(report_, std::move(f));
          break;
        }
      }
    }
  }

  const ddg::DependenceGraph& dg_;
  const sched::Schedule& sch_;
  const Options& options_;
  Report* report_;
};

}  // namespace

Report check_races(const ddg::DependenceGraph& dg, const sched::Schedule& sch,
                   const codegen::AstNode& ast, const Options& options) {
  support::TraceSpan span("verify", "races");
  Report report;
  const std::string problem = detail::structure_problem(dg, sch);
  if (!problem.empty()) {
    Finding f;
    f.kind = CheckKind::kMalformed;
    f.detail = problem;
    detail::add_finding(&report, std::move(f));
    return report;
  }
  RaceWalker walker(dg, sch, options, &report);
  walker.walk(ast);
  if (span.active()) {
    span.attr("race_checks", static_cast<i64>(report.race_checks));
    span.attr("violations", static_cast<i64>(report.findings.size()));
  }
  return report;
}

}  // namespace pf::verify
