#include "verify/verify.h"

#include <sstream>

#include "support/budget.h"
#include "support/stats.h"
#include "support/trace.h"
#include "verify/internal.h"

namespace pf::verify {

const char* to_string(CheckKind k) {
  switch (k) {
    case CheckKind::kLegality:
      return "legality";
    case CheckKind::kUnsatisfied:
      return "unsatisfied";
    case CheckKind::kRace:
      return "race";
    case CheckKind::kPartition:
      return "partition";
    case CheckKind::kReduction:
      return "reduction";
    case CheckKind::kMalformed:
      return "malformed";
  }
  return "?";
}

namespace detail {

std::string structure_problem(const ddg::DependenceGraph& dg,
                              const sched::Schedule& sch) {
  const ir::Scop& scop = dg.scop();
  if (sch.scop != &scop) return "schedule was built for a different scop";
  if (sch.num_statements() != scop.num_statements())
    return "schedule has " + std::to_string(sch.num_statements()) +
           " statement(s), scop has " +
           std::to_string(scop.num_statements());
  for (std::size_t s = 0; s < sch.num_statements(); ++s) {
    if (sch.rows[s].size() != sch.num_levels())
      return "statement " + scop.statement(s).name() + " has " +
             std::to_string(sch.rows[s].size()) + " schedule row(s), " +
             "expected " + std::to_string(sch.num_levels());
    const std::size_t want = scop.statement(s).dim() + scop.num_params();
    for (const poly::AffineExpr& row : sch.rows[s])
      if (row.dims() != want)
        return "schedule row of " + scop.statement(s).name() +
               " lives in a " + std::to_string(row.dims()) +
               "-d space, statement space is " + std::to_string(want) + "-d";
  }
  for (const ddg::Dependence& d : dg.deps())
    if (d.src >= sch.num_statements() || d.dst >= sch.num_statements())
      return "dependence #" + std::to_string(d.id) +
             " references a statement outside the schedule";
  return "";
}

void add_finding(Report* report, Finding f) {
  for (const Finding& o : report->findings)
    if (o.kind == f.kind && o.dep_id == f.dep_id && o.src == f.src &&
        o.dst == f.dst && o.level == f.level)
      return;
  report->findings.push_back(std::move(f));
}

}  // namespace detail

std::string Finding::to_string(const ir::Scop* scop) const {
  auto stmt_name = [&](std::size_t s) {
    if (scop != nullptr && s < scop->num_statements())
      return scop->statement(s).name();
    return s == SIZE_MAX ? std::string("?") : "#" + std::to_string(s);
  };
  std::ostringstream os;
  os << verify::to_string(kind) << ": ";
  if (kind == CheckKind::kMalformed) {
    os << detail;
    return os.str();
  }
  if (src != SIZE_MAX || dst != SIZE_MAX) {
    if (dep_id != SIZE_MAX) os << ddg::to_string(dep_kind) << " dependence ";
    os << stmt_name(src) << " -> " << stmt_name(dst);
    if (dep_id != SIZE_MAX) os << " (dep #" << dep_id << ")";
    os << " ";
  }
  switch (kind) {
    case CheckKind::kLegality:
      os << "violated at level " << level;
      break;
    case CheckKind::kUnsatisfied:
      os << "never strongly satisfied (schedule difference identically "
            "zero on some instances)";
      break;
    case CheckKind::kRace:
      os << "carried by loop marked parallel at level " << level;
      break;
    case CheckKind::kPartition:
      break;  // detail carries the full story
    case CheckKind::kReduction:
      os << "relaxed as a reduction but not re-proven";
      break;
    case CheckKind::kMalformed:
      break;
  }
  if (!detail.empty()) {
    if (kind != CheckKind::kPartition) os << " (";
    os << detail;
    if (kind != CheckKind::kPartition) os << ")";
  }
  return os.str();
}

void Report::merge(Report other) {
  for (Finding& f : other.findings) detail::add_finding(this, std::move(f));
  checked_deps += other.checked_deps;
  race_checks += other.race_checks;
  partition_checks += other.partition_checks;
  reduction_checks += other.reduction_checks;
  reduction_waivers += other.reduction_waivers;
}

std::string Report::summary() const {
  std::ostringstream os;
  os << "checked " << checked_deps << " dependence(s), " << race_checks
     << " race check(s), " << partition_checks << " partition check(s)";
  // Mentioned only when reductions are in play, so classic runs keep
  // their exact summary line.
  if (reduction_checks != 0 || reduction_waivers != 0)
    os << ", " << reduction_checks << " reduction check(s), "
       << reduction_waivers << " waiver(s)";
  os << ": ";
  if (ok())
    os << "ok";
  else
    os << findings.size() << " violation(s)";
  return os.str();
}

std::string Report::to_string(const ir::Scop* scop) const {
  std::ostringstream os;
  for (const Finding& f : findings)
    os << "verify: VIOLATION " << f.to_string(scop) << "\n";
  os << "verify: " << summary() << "\n";
  return os.str();
}

Report run_all(const ir::Scop& scop, const ddg::DependenceGraph& dg,
               const sched::Schedule& sch, const codegen::AstNode* ast,
               const Options& options) {
  support::TraceSpan span("verify", "run_all");
  // The verifier is a must-complete checker: a conservative (budgeted)
  // is_empty would fabricate "violations" that do not exist, so it always
  // runs with the budget suspended.
  support::BudgetSuspend budget_suspend;
  Report report;
  PF_CHECK_MSG(sch.scop == &scop || sch.scop == nullptr,
               "schedule built for another scop");
  const std::string problem = detail::structure_problem(dg, sch);
  if (!problem.empty()) {
    Finding f;
    f.kind = CheckKind::kMalformed;
    f.detail = problem;
    detail::add_finding(&report, std::move(f));
  } else {
    if (options.reductions && !sch.relaxed_deps.empty())
      report.merge(check_reductions(dg, sch, options));
    if (options.legality) report.merge(check_legality(dg, sch, options));
    if (options.races && ast != nullptr)
      report.merge(check_races(dg, sch, *ast, options));
    if (options.partition) report.merge(check_partition(dg, sch, options));
  }

  support::count(support::Counter::kVerifyCheckedDeps,
                 static_cast<i64>(report.checked_deps));
  support::count(support::Counter::kVerifyRaceChecks,
                 static_cast<i64>(report.race_checks));
  support::count(support::Counter::kVerifyReductionChecks,
                 static_cast<i64>(report.reduction_checks));
  support::count(support::Counter::kVerifyReductionWaivers,
                 static_cast<i64>(report.reduction_waivers));
  support::count(support::Counter::kVerifyViolations,
                 static_cast<i64>(report.findings.size()));
  if (span.active()) {
    span.attr("checked_deps", static_cast<i64>(report.checked_deps));
    span.attr("race_checks", static_cast<i64>(report.race_checks));
    span.attr("reduction_waivers",
              static_cast<i64>(report.reduction_waivers));
    span.attr("violations", static_cast<i64>(report.findings.size()));
  }
  if (support::Tracer::remarks_on()) {
    for (const Finding& f : report.findings)
      support::remark("verify", "violation: " + f.to_string(&scop),
                      {{"kind", to_string(f.kind)},
                       {"level", f.level == SIZE_MAX
                                     ? std::string("-")
                                     : std::to_string(f.level)}});
    support::remark(
        "verify", report.summary(),
        {{"checked_deps", std::to_string(report.checked_deps)},
         {"race_checks", std::to_string(report.race_checks)},
         {"partition_checks", std::to_string(report.partition_checks)},
         {"violations", std::to_string(report.findings.size())}});
  }
  return report;
}

}  // namespace pf::verify
