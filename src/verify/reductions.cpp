// Check (d): re-prove every relaxed reduction self-dependence.
//
// The scheduler is allowed to ignore self-dependences that the analysis
// pass (analysis/reductions.cpp) claims belong to an associative,
// commutative accumulation. Those claims travel with the schedule
// (sched::Schedule::relaxed_deps) and this pass re-derives each one from
// the statement bodies and the dependence graph alone, with its own
// expression matcher -- pf_verify does not link pf_analysis, so a bug in
// the analysis matcher cannot vouch for itself.
//
// A claim `(dep, stmt, array, op)` is CONFIRMED when
//   * dep is in range and is a real self-dependence stmt -> stmt,
//   * both of its access endpoints are on `array`, which is the array the
//     statement writes,
//   * the statement body is a chain of `op` (`+` / `*` as binary
//     operators, `min` / `max` as nested two-argument fmin/fmax calls)
//     over at least two leaves, exactly one leaf is the self-read of the
//     written cell, and no other leaf touches the accumulator array.
// Under these conditions every instance of `stmt` performs
//   A[f(i)] = A[f(i)] op e(i)   with e independent of A,
// so any execution order of the tied instances folds the same multiset of
// operands into each cell with an associative commutative operator --
// ignoring the self-dependence preserves the result (integer semantics;
// floating-point reassociation is the user-visible contract of
// reductions, exactly as with `#pragma omp reduction`).
//
// Confirmed claims make check_legality waive the dependence entirely and
// make check_races downgrade clause-covered carried deps; an unconfirmed
// claim yields a kReduction finding here AND loses every waiver there, so
// `--verify=strict` fails on injected bogus relaxations.
#include <string>
#include <vector>

#include "support/trace.h"
#include "verify/internal.h"

namespace pf::verify {

namespace {

using ir::ReductionOp;

// Is `e` an interior node of an `op` chain?
bool chain_node(const ir::Expr& e, ReductionOp op) {
  using K = ir::Expr::Kind;
  switch (op) {
    case ReductionOp::kSum:
      return e.kind == K::kBinary && e.op == ir::BinOp::kAdd;
    case ReductionOp::kProd:
      return e.kind == K::kBinary && e.op == ir::BinOp::kMul;
    case ReductionOp::kMin:
      return e.kind == K::kCall && e.callee == "fmin" && e.args.size() == 2;
    case ReductionOp::kMax:
      return e.kind == K::kCall && e.callee == "fmax" && e.args.size() == 2;
  }
  return false;
}

void chain_leaves(const ir::Expr& e, ReductionOp op,
                  std::vector<const ir::Expr*>* out) {
  if (chain_node(e, op)) {
    if (e.kind == ir::Expr::Kind::kBinary) {
      chain_leaves(*e.lhs, op, out);
      chain_leaves(*e.rhs, op, out);
    } else {
      chain_leaves(*e.args[0], op, out);
      chain_leaves(*e.args[1], op, out);
    }
    return;
  }
  out->push_back(&e);
}

bool references_array(const ir::Expr& e, std::size_t array_id) {
  if (e.kind == ir::Expr::Kind::kAccess && e.array_id == array_id) return true;
  if (e.lhs && references_array(*e.lhs, array_id)) return true;
  if (e.rhs && references_array(*e.rhs, array_id)) return true;
  if (e.operand && references_array(*e.operand, array_id)) return true;
  for (const ir::ExprPtr& a : e.args)
    if (references_array(*a, array_id)) return true;
  return false;
}

// The statement body is `acc op e1 op e2 ...` where acc is the self-read
// of the written cell and no ei touches the accumulator array.
bool body_is_accumulation(const ir::Statement& s, ReductionOp op,
                          std::string* why) {
  const ir::Access& w = s.write();
  std::vector<const ir::Expr*> leaves;
  chain_leaves(*s.body(), op, &leaves);
  if (leaves.size() < 2) {
    if (why != nullptr)
      *why = std::string("body is not a chain of '") + ir::to_string(op) +
             "' with at least two operands";
    return false;
  }
  std::size_t self_reads = 0;
  for (const ir::Expr* leaf : leaves) {
    if (leaf->kind == ir::Expr::Kind::kAccess &&
        leaf->array_id == w.array_id &&
        leaf->subscripts_resolved == w.subscripts) {
      ++self_reads;
      continue;
    }
    if (references_array(*leaf, w.array_id)) {
      if (why != nullptr)
        *why = "an operand other than the self-read touches the "
               "accumulator array";
      return false;
    }
  }
  if (self_reads != 1) {
    if (why != nullptr)
      *why = "expected exactly one self-read of the written cell, found " +
             std::to_string(self_reads);
    return false;
  }
  return true;
}

}  // namespace

namespace detail {

bool reduction_confirmed(const ddg::DependenceGraph& dg,
                         const ir::ReductionDep& rd, std::string* why) {
  if (rd.dep_id >= dg.deps().size()) {
    if (why != nullptr) *why = "dependence id out of range";
    return false;
  }
  const ddg::Dependence& d = dg.deps()[rd.dep_id];
  if (!d.is_real() || d.src != d.dst || d.src != rd.stmt) {
    if (why != nullptr)
      *why = "not a real self-dependence of the claimed statement";
    return false;
  }
  const ir::Scop& scop = dg.scop();
  if (rd.stmt >= scop.num_statements()) {
    if (why != nullptr) *why = "statement index out of range";
    return false;
  }
  const ir::Statement& s = scop.statement(rd.stmt);
  if (s.write().array_id != rd.array_id) {
    if (why != nullptr)
      *why = "statement does not write the claimed accumulator array";
    return false;
  }
  if (s.accesses()[d.src_access].array_id != rd.array_id ||
      s.accesses()[d.dst_access].array_id != rd.array_id) {
    if (why != nullptr)
      *why = "dependence is not on the accumulator array";
    return false;
  }
  return body_is_accumulation(s, rd.op, why);
}

}  // namespace detail

Report check_reductions(const ddg::DependenceGraph& dg,
                        const sched::Schedule& sch, const Options& options) {
  (void)options;
  support::TraceSpan span("verify", "reductions");
  Report report;
  const std::string problem = detail::structure_problem(dg, sch);
  if (!problem.empty()) {
    Finding f;
    f.kind = CheckKind::kMalformed;
    f.detail = problem;
    detail::add_finding(&report, std::move(f));
    return report;
  }
  for (const ir::ReductionDep& rd : sch.relaxed_deps) {
    ++report.reduction_checks;
    std::string why;
    if (detail::reduction_confirmed(dg, rd, &why)) continue;
    Finding f;
    f.kind = CheckKind::kReduction;
    if (rd.dep_id < dg.deps().size()) {
      // Findings display the global Dependence::id; rd.dep_id is the
      // positional index into dg.deps().
      f.dep_id = dg.deps()[rd.dep_id].id;
      f.dep_kind = dg.deps()[rd.dep_id].kind;
      f.src = dg.deps()[rd.dep_id].src;
      f.dst = dg.deps()[rd.dep_id].dst;
    } else {
      f.dep_id = rd.dep_id;
      f.src = f.dst = rd.stmt;
    }
    f.detail = why;
    detail::add_finding(&report, std::move(f));
  }
  if (span.active()) {
    span.attr("reduction_checks", static_cast<i64>(report.reduction_checks));
    span.attr("violations", static_cast<i64>(report.findings.size()));
  }
  return report;
}

}  // namespace pf::verify
