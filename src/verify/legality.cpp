// Check (a): lexicographic positivity of the schedule difference over
// every real dependence polyhedron.
//
// For dependence D with per-level differences delta_0 .. delta_{L-1}, the
// transformed program preserves D iff for every point of D the vector
// (delta_0, ..., delta_{L-1}) is lexicographically positive. Decided
// level by level on a shrinking residual:
//
//   R_0 = D
//   V_l = R_l /\ { delta_l <= -1 }   must be empty  (else: violated at l)
//   R_{l+1} = R_l /\ { delta_l == 0 }
//   R_L                              must be empty  (else: never satisfied)
//
// The residual R_l is exactly "instances still tied after levels < l", so
// V_l is the paper's "violated at level l" polyhedron. Once R_l is empty
// the dependence is strongly satisfied above l and deeper levels are
// unconstrained (loop reversal below a satisfied level is legal -- this
// is weaker, and more precise, than the scheduler's constructive
// per-level non-negativity).
#include <algorithm>

#include "support/trace.h"
#include "verify/internal.h"

namespace pf::verify {

namespace {

// delta <= -1, i.e. -delta - 1 >= 0.
poly::Constraint violated_half(const poly::AffineExpr& delta) {
  return poly::Constraint::ge0((-delta).plus_const(-1));
}

}  // namespace

Report check_legality(const ddg::DependenceGraph& dg,
                      const sched::Schedule& sch, const Options& options) {
  support::TraceSpan span("verify", "legality");
  Report report;
  const std::string problem = detail::structure_problem(dg, sch);
  if (!problem.empty()) {
    Finding f;
    f.kind = CheckKind::kMalformed;
    f.detail = problem;
    detail::add_finding(&report, std::move(f));
    return report;
  }

  for (std::size_t dep_index = 0; dep_index < dg.deps().size(); ++dep_index) {
    const ddg::Dependence& d = dg.deps()[dep_index];
    ++report.checked_deps;
    // A relaxed reduction self-dependence that the verifier's own matcher
    // re-proves (check_reductions / detail::reduction_confirmed) is
    // waived entirely: the accumulation commutes, so instances may run in
    // any order -- including tied at every level. An UNCONFIRMED relaxed
    // dependence gets no waiver and is judged like any other (and
    // check_reductions reports it besides). ReductionDep::dep_id is the
    // positional index into dg.deps(), not the display Dependence::id.
    if (sch.is_relaxed_dep(dep_index)) {
      const auto it = std::lower_bound(
          sch.relaxed_deps.begin(), sch.relaxed_deps.end(), dep_index,
          [](const ir::ReductionDep& rd, std::size_t id) {
            return rd.dep_id < id;
          });
      if (it != sch.relaxed_deps.end() && it->dep_id == dep_index &&
          detail::reduction_confirmed(dg, *it, nullptr)) {
        ++report.reduction_waivers;
        continue;
      }
    }
    poly::IntegerSet residual = d.poly;  // instances tied so far
    bool settled = false;
    for (std::size_t l = 0; l < sch.num_levels(); ++l) {
      const poly::AffineExpr delta = detail::level_diff(d, sch, l);
      poly::IntegerSet violated = residual;
      violated.add_constraint(violated_half(delta));
      if (!violated.is_empty(options.ilp)) {
        Finding f;
        f.kind = CheckKind::kLegality;
        f.dep_kind = d.kind;
        f.dep_id = d.id;
        f.src = d.src;
        f.dst = d.dst;
        f.level = l;
        f.detail = "schedule difference can reach " +
                   std::string("-1 or below with all outer levels tied");
        detail::add_finding(&report, std::move(f));
        settled = true;  // one precise diagnostic per dependence
        break;
      }
      residual.add_constraint(poly::Constraint::eq0(delta));
      if (residual.trivially_empty() || residual.is_empty(options.ilp)) {
        settled = true;  // strongly satisfied at or above l
        break;
      }
    }
    if (!settled) {
      // Some instance pair is tied at every level: the transformed
      // program leaves their order undefined.
      Finding f;
      f.kind = CheckKind::kUnsatisfied;
      f.dep_kind = d.kind;
      f.dep_id = d.id;
      f.src = d.src;
      f.dst = d.dst;
      detail::add_finding(&report, std::move(f));
    }
  }
  if (span.active()) {
    span.attr("deps", static_cast<i64>(report.checked_deps));
    span.attr("violations", static_cast<i64>(report.findings.size()));
  }
  return report;
}

}  // namespace pf::verify
