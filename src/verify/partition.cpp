// Check (c): the fusion partition is a valid topological order of the
// DDG's SCC condensation (the postcondition of the paper's Algorithms
// 1-2).
//
// The outermost fusion partition of a statement is its vector of scalar
// schedule values before the first linear level; two statements share an
// outermost loop nest iff those vectors are equal, and the nests execute
// in the lexicographic order of the vectors. Recomputed here directly
// from the schedule matrices (not Schedule::outer_partitions) and
// checked against the strongly connected components of the statement-
// level dependence graph:
//
//   * no SCC may be split across partitions (statements on a dependence
//     cycle must stay fused), and
//   * every dependence edge crossing partitions must point forward in
//     partition execution order (the cut sequence is a topological order
//     of the condensation).
//
// SCCs are computed with Tarjan's algorithm; the DDG's own sccs() uses
// Kosaraju -- a deliberately independent implementation, in the spirit
// of the whole subsystem.
#include <algorithm>
#include <map>

#include "ddg/graph.h"
#include "support/trace.h"
#include "verify/internal.h"

namespace pf::verify {

namespace {

// First position where the two scalar-value vectors differ (they do
// differ when called), mapped back to its schedule level.
std::size_t first_diff_level(const std::vector<i64>& a,
                             const std::vector<i64>& b,
                             const std::vector<std::size_t>& levels) {
  for (std::size_t k = 0; k < a.size(); ++k)
    if (a[k] != b[k]) return levels[k];
  return SIZE_MAX;
}

}  // namespace

Report check_partition(const ddg::DependenceGraph& dg,
                       const sched::Schedule& sch, const Options& options) {
  (void)options;  // purely structural: no ILP solves needed
  support::TraceSpan span("verify", "partition");
  Report report;
  const std::string problem = detail::structure_problem(dg, sch);
  if (!problem.empty()) {
    Finding f;
    f.kind = CheckKind::kMalformed;
    f.detail = problem;
    detail::add_finding(&report, std::move(f));
    return report;
  }
  const ir::Scop& scop = dg.scop();
  const std::size_t n = sch.num_statements();

  // Scalar prefix: every level before the first linear one.
  std::vector<std::size_t> prefix;
  for (std::size_t l = 0; l < sch.num_levels() && !sch.level_linear[l]; ++l)
    prefix.push_back(l);

  std::vector<std::vector<i64>> key(n);
  for (std::size_t s = 0; s < n; ++s) {
    for (const std::size_t l : prefix) {
      if (!sch.rows[s][l].is_constant()) {
        Finding f;
        f.kind = CheckKind::kMalformed;
        f.src = s;
        f.dst = s;
        f.level = l;
        f.detail = "scalar level " + std::to_string(l) + " of " +
                   scop.statement(s).name() + " is not a constant row";
        detail::add_finding(&report, std::move(f));
        return report;
      }
      key[s].push_back(sch.rows[s][l].const_term());
    }
  }

  // Dense partition ids in execution (lexicographic key) order.
  std::map<std::vector<i64>, int> id_of_key;
  for (std::size_t s = 0; s < n; ++s) id_of_key.emplace(key[s], 0);
  int next = 0;
  for (auto& [k, id] : id_of_key) id = next++;
  std::vector<int> part(n);
  for (std::size_t s = 0; s < n; ++s) part[s] = id_of_key.at(key[s]);

  const std::vector<ddg::Edge> edges = dg.stmt_edges();
  const ddg::SccResult sccs = ddg::tarjan_sccs(n, edges);

  // An SCC split across partitions means a dependence cycle was cut.
  for (const std::vector<std::size_t>& members : sccs.members) {
    ++report.partition_checks;
    for (std::size_t k = 1; k < members.size(); ++k) {
      if (part[members[k]] == part[members[0]]) continue;
      Finding f;
      f.kind = CheckKind::kPartition;
      f.src = members[0];
      f.dst = members[k];
      f.level = first_diff_level(key[members[0]], key[members[k]], prefix);
      f.detail = "SCC containing " + scop.statement(members[0]).name() +
                 " and " + scop.statement(members[k]).name() +
                 " is split across fusion partitions " +
                 std::to_string(part[members[0]]) + " and " +
                 std::to_string(part[members[k]]);
      detail::add_finding(&report, std::move(f));
      break;  // one finding per split SCC is enough
    }
  }

  // Every dependence edge crossing partitions must point forward.
  for (const ddg::Edge& e : edges) {
    if (part[e.first] == part[e.second]) continue;
    ++report.partition_checks;
    if (part[e.first] < part[e.second]) continue;
    Finding f;
    f.kind = CheckKind::kPartition;
    f.src = e.first;
    f.dst = e.second;
    f.level = first_diff_level(key[e.first], key[e.second], prefix);
    f.detail = "dependence " + scop.statement(e.first).name() + " -> " +
               scop.statement(e.second).name() +
               " points backward in partition order (" +
               std::to_string(part[e.first]) + " after " +
               std::to_string(part[e.second]) + ")";
    detail::add_finding(&report, std::move(f));
  }

  if (span.active()) {
    span.attr("partitions", static_cast<i64>(id_of_key.size()));
    span.attr("sccs", static_cast<i64>(sccs.num_sccs()));
    span.attr("violations", static_cast<i64>(report.findings.size()));
  }
  return report;
}

}  // namespace pf::verify
