#include "lp/fastlane.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace pf::lp {

namespace {

// -1: undecided (consult the environment on first read), 0: off, 1: on.
std::atomic<int> g_state{-1};

int read_env_state() {
  const char* v = std::getenv("POLYFUSE_NO_FASTLANE");
  const bool disabled = v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
  return disabled ? 0 : 1;
}

}  // namespace

bool fastlane_enabled() {
  int s = g_state.load(std::memory_order_relaxed);
  if (s < 0) {
    s = read_env_state();
    int expected = -1;
    if (!g_state.compare_exchange_strong(expected, s,
                                         std::memory_order_relaxed))
      s = expected;
  }
  return s != 0;
}

void set_fastlane_enabled(bool enabled) {
  g_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace pf::lp
