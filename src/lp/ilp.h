// Integer linear programming by branch-and-bound over the exact rational
// simplex.
//
// This plays the role PIP/ISL's ILP plays in Pluto: integer emptiness of
// dependence polyhedra, integer min/max of affine forms over polyhedra
// (dependence-satisfaction and parallelism tests), and the per-level
// scheduler ILP with its lexicographic objective.
//
// Termination notes. Equality rows are GCD-normalized up front (an
// equality with gcd(coeffs) not dividing the constant is reported
// infeasible immediately) and inequality rows are GCD-tightened, which
// eliminates the classic non-terminating branch patterns. A node cap
// bounds the search regardless; hitting it yields kCapExceeded, which all
// polyfuse callers treat conservatively (e.g. "dependence may exist").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "lp/simplex.h"
#include "support/intmath.h"

namespace pf::lp {

enum class IlpStatus { kOptimal, kInfeasible, kUnbounded, kCapExceeded };

const char* to_string(IlpStatus s);

struct IlpOptions {
  long node_cap = 200000;
};

struct IlpResult {
  IlpStatus status = IlpStatus::kInfeasible;
  IntVector point;     // valid iff status == kOptimal
  i64 objective = 0;   // valid iff status == kOptimal
};

/// An ILP/feasibility problem over integer variables. Constraints use
/// integer coefficients: coeffs . x + constant >= 0 (or == 0).
class IlpProblem {
 public:
  IlpProblem(std::size_t num_vars, std::vector<bool> nonneg);

  static IlpProblem all_nonneg(std::size_t num_vars);
  static IlpProblem all_free(std::size_t num_vars);

  std::size_t num_vars() const { return num_vars_; }

  void add_inequality(IntVector coeffs, i64 constant);
  void add_equality(IntVector coeffs, i64 constant);
  /// x_v >= bound.
  void add_lower_bound(std::size_t v, i64 bound);
  /// x_v <= bound.
  void add_upper_bound(std::size_t v, i64 bound);

  /// min objective . x over integer points. `warm_bound`, when given,
  /// must be the objective value of some feasible integer point (e.g. a
  /// warm-start solution); branch-and-bound prunes every node whose LP
  /// relaxation exceeds it *strictly*, so the search returns the same
  /// point it would have found without the bound -- just faster.
  IlpResult minimize(const IntVector& objective,
                     const IlpOptions& options = {},
                     std::optional<i64> warm_bound = std::nullopt) const;

  /// max objective . x over integer points.
  IlpResult maximize(const IntVector& objective,
                     const IlpOptions& options = {}) const;

  /// Any integer point. status is kOptimal (point), kInfeasible, or
  /// kCapExceeded.
  IlpResult find_point(const IlpOptions& options = {}) const;

  /// Lexicographic minimization: minimize objectives[0], fix its value,
  /// minimize objectives[1], ... Returns the final point.
  ///
  /// `warm_start`, when non-null, is a candidate feasible point from an
  /// earlier, similar solve (the scheduler reuses the previous level's
  /// hyperplane). It is validated against this problem's constraints
  /// before use -- a stale point is simply ignored -- and only ever
  /// tightens the strict pruning bound, so the returned point is the one
  /// the cold search finds. Disabled when the fast lane is off.
  IlpResult lexmin(const std::vector<IntVector>& objectives,
                   const IlpOptions& options = {},
                   const IntVector* warm_start = nullptr) const;

  /// True if the constraint set has no integer point (kInfeasible). A
  /// kCapExceeded search counts as "not proven empty" -> false.
  bool proven_empty(const IlpOptions& options = {}) const;

  /// Debug rendering of all rows.
  std::string to_string() const;

 private:
  struct Row {
    IntVector coeffs;
    i64 constant;
    bool is_equality;
  };

  // Normalize a row by the gcd of its coefficients; returns false if an
  // equality is thereby proven unsatisfiable over the integers.
  static bool normalize(Row& row);

  // Exact membership test (128-bit row evaluation, no solver) -- the
  // warm-start validator.
  bool is_feasible_point(const IntVector& point) const;

  std::size_t num_vars_;
  std::vector<bool> nonneg_;
  std::vector<Row> rows_;
  bool trivially_infeasible_ = false;
};

}  // namespace pf::lp
