// Exact two-phase primal simplex over rationals.
//
// This is the LP core under all of polyfuse: dependence-polyhedron
// emptiness tests, min/max of affine forms over polyhedra, and the LP
// relaxations inside the branch-and-bound ILP used by the Pluto-style
// scheduler. Bland's rule guarantees termination; all arithmetic is exact
// (Rational), so answers are never victims of floating-point noise.
//
// Problem form. Variables x_0..x_{n-1}; each is either free or constrained
// non-negative. Constraints are affine: coeffs . x + constant >= 0 (or
// == 0). minimize() solves min objective . x.
#pragma once

#include <vector>

#include "support/linalg.h"
#include "support/rational.h"

namespace pf::lp {

enum class Status { kOptimal, kInfeasible, kUnbounded };

const char* to_string(Status s);

class SimplexSolver {
 public:
  /// `nonneg[j]` marks variable j as >= 0; free variables are internally
  /// split into a difference of two non-negative columns.
  SimplexSolver(std::size_t num_vars, std::vector<bool> nonneg);

  /// Convenience: all variables non-negative (the scheduler's case).
  static SimplexSolver all_nonneg(std::size_t num_vars);
  /// Convenience: all variables free (the dependence-polyhedron case).
  static SimplexSolver all_free(std::size_t num_vars);

  std::size_t num_vars() const { return num_vars_; }

  /// Adds coeffs . x + constant >= 0.
  void add_inequality(RatVector coeffs, Rational constant);
  /// Adds coeffs . x + constant == 0.
  void add_equality(RatVector coeffs, Rational constant);

  struct Result {
    Status status = Status::kInfeasible;
    RatVector point;      // valid iff status == kOptimal
    Rational objective;   // valid iff status == kOptimal
  };

  /// min objective . x over the current constraint set.
  Result minimize(const RatVector& objective) const;

  /// max objective . x (negated minimize).
  Result maximize(const RatVector& objective) const;

  /// Any feasible point (phase-1 only).
  Result feasible_point() const;

 private:
  struct Row {
    RatVector coeffs;
    Rational constant;
    bool is_equality;
  };

  /// The exact Rational tableau (always correct, never fast).
  Result minimize_exact(const RatVector& objective) const;
  /// The int64 fast lane: same pivots, same Result, arena-backed integer
  /// rows; throws (internally) and defers to minimize_exact when any
  /// intermediate leaves the 62-bit safe range. See lp/fastlane.h.
  Result minimize_fast(const RatVector& objective) const;

  std::size_t num_vars_;
  std::vector<bool> nonneg_;
  std::vector<Row> rows_;
};

}  // namespace pf::lp
