// Process-wide switch for the int64 fast lane.
//
// The fast lane (lp/simplex.cpp's integer tableau, poly/set.cpp's integer
// Fourier-Motzkin combination, and the scheduler's warm-started lexmin) is
// a pure performance feature: every answer it produces is byte-identical
// to the exact Rational path, and any solve it cannot finish (an
// intermediate outside the 2^62 safety bound) falls back transparently.
// The switch exists for differential testing and for the byte-identity
// acceptance check: set POLYFUSE_NO_FASTLANE=1 (or pass --no-fastlane)
// and the whole pipeline runs the Rational lane only.
#pragma once

namespace pf::lp {

/// True when the int64 fast lane is active. Reads POLYFUSE_NO_FASTLANE
/// once on first call (disabled when set, non-empty, and not "0"); later
/// calls are a relaxed atomic load.
bool fastlane_enabled();

/// Override the lane state (CLI --no-fastlane, differential tests).
void set_fastlane_enabled(bool enabled);

}  // namespace pf::lp
